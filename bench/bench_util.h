// Shared plumbing for the figure-reproduction benchmarks: random stripes,
// MB/s timing loops, the paper's "worst e for a given s" selection, and the
// environment/JSON conventions every bench follows (smoke mode, thread
// sweeps, where BENCH_*.json files land).
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "sd/sd_code.h"
#include "stair/cost_model.h"
#include "stair/stair_code.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace stair::bench {

/// The environment every bench parses the same way: smoke mode
/// (STAIR_BENCH_SMOKE=1 or --smoke — the CI configuration) plus the
/// execution widths the parallel benches report in their JSON.
struct BenchEnv {
  bool smoke = false;
  std::size_t hardware_threads = 1;

  /// Default pool concurrency (incl. caller). A method, not a field, so the
  /// single-threaded benches never instantiate the process pool just by
  /// calling parse_env.
  std::size_t pool_width() const { return ThreadPool::default_pool().concurrency(); }
};

inline BenchEnv parse_env(int argc, char** argv) {
  BenchEnv env;
  // Loud parsing, both knobs: a typo'd flag or STAIR_BENCH_SMOKE=ture
  // silently running the wrong configuration poisons the perf trajectory;
  // exit(2) is cheaper than a misfiled bench JSON.
  if (const char* s = std::getenv("STAIR_BENCH_SMOKE")) {
    std::string v(s);
    for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (v == "1" || v == "true" || v == "yes" || v == "on") {
      env.smoke = true;
    } else if (!(v.empty() || v == "0" || v == "false" || v == "no" || v == "off")) {
      std::cerr << "STAIR_BENCH_SMOKE: unknown value '" << s
                << "' (want 1/true/yes/on or 0/false/no/off)\n";
      std::exit(2);
    }
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--smoke") {
      env.smoke = true;
    } else {
      std::cerr << "unknown bench flag '" << arg << "' (supported: --smoke)\n";
      std::exit(2);
    }
  }
  env.hardware_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return env;
}

/// Where a BENCH_*.json lands: $STAIR_BENCH_JSON_DIR wins when set; smoke
/// runs otherwise write to the repo root (the perf-trajectory tracker scans
/// there and CI uploads the bundle from it); full runs write to the cwd.
inline std::string json_output_path(const std::string& filename, bool smoke) {
  if (const char* dir = std::getenv("STAIR_BENCH_JSON_DIR"))
    return std::string(dir) + "/" + filename;
#ifdef STAIR_SOURCE_DIR
  if (smoke) return std::string(STAIR_SOURCE_DIR) + "/" + filename;
#endif
  return filename;
}

/// The 1..N sweep shape the scaling benches share: every count to 4, then
/// powers of two, then the hardware width — deduped, sorted, and capped at
/// max(8, hw) so the knee at the physical core count is always visible.
inline std::vector<std::size_t> thread_sweep(std::size_t hw) {
  std::vector<std::size_t> counts{1, 2, 3, 4, 6, 8, 16};
  counts.push_back(hw);
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  counts.erase(std::remove_if(counts.begin(), counts.end(),
                              [&](std::size_t t) { return t > std::max<std::size_t>(8, hw); }),
               counts.end());
  return counts;
}

/// Times `fn` (one full-stripe operation) until `min_seconds` of work has
/// accumulated (at least `min_iters` runs) and returns MB/s over
/// `bytes_per_iter`.
inline double measure_mbps(const std::function<void()>& fn, std::size_t bytes_per_iter,
                           double min_seconds = 0.15, int min_iters = 3) {
  fn();  // warmup (also builds lazy schedules)
  Stopwatch watch;
  int iters = 0;
  do {
    fn();
    ++iters;
  } while (iters < min_iters || watch.elapsed_seconds() < min_seconds);
  return static_cast<double>(bytes_per_iter) * iters / watch.elapsed_seconds() / (1024.0 * 1024.0);
}

/// Builds an encoded random stripe for `code` with the given symbol size.
inline StripeBuffer make_encoded_stripe(const StairCode& code, std::size_t symbol_size,
                                        std::uint64_t seed = 42) {
  StripeBuffer stripe(code, symbol_size);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(seed);
  rng.fill(data);
  stripe.set_data(data);
  code.encode(stripe.view());
  return stripe;
}

/// The paper evaluates STAIR conservatively: for a given s it tests every
/// coverage vector e and reports the slowest (§6.2.1). We pick the vector
/// with the largest best-method Mult_XOR count — the deterministic proxy for
/// the slowest config (schedule cost is what drives throughput).
inline std::vector<std::size_t> worst_e_for_s(std::size_t n, std::size_t r, std::size_t m,
                                              std::size_t s, int w) {
  std::vector<std::size_t> worst;
  std::size_t worst_cost = 0;
  for (const auto& e : enumerate_coverage_vectors(s, r, n - m)) {
    StairConfig cfg{.n = n, .r = r, .m = m, .e = e, .w = w};
    try {
      cfg.validate();
    } catch (...) {
      continue;
    }
    const std::size_t cost =
        std::min(upstairs_mult_xors(cfg), downstairs_mult_xors(cfg));
    if (cost >= worst_cost) {
      worst_cost = cost;
      worst = e;
    }
  }
  return worst;
}

/// Symbol size giving a stripe of roughly `stripe_bytes` for an r x n layout.
/// Rounded down to a multiple of 16 (covers all word sizes), minimum 16.
inline std::size_t symbol_size_for_stripe(std::size_t stripe_bytes, std::size_t n,
                                          std::size_t r) {
  std::size_t symbol = stripe_bytes / (n * r);
  symbol -= symbol % 16;
  return symbol < 16 ? 16 : symbol;
}

/// "(1,1,2)" — label for coverage vectors in tables.
inline std::string e_label(const std::vector<std::size_t>& e) {
  std::string s = "(";
  for (std::size_t i = 0; i < e.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(e[i]);
  }
  return s + ")";
}

/// SD stripe helper: r*n aligned regions with encoded random data.
struct SdStripe {
  std::vector<AlignedBuffer> bufs;
  std::vector<std::span<std::uint8_t>> regions;

  SdStripe(const SdCode& code, std::size_t symbol_size, std::uint64_t seed = 43) {
    for (std::size_t z = 0; z < code.symbol_count(); ++z) bufs.emplace_back(symbol_size);
    for (auto& b : bufs) regions.push_back(b.span());
    Rng rng(seed);
    for (std::size_t z : code.data_positions()) rng.fill(regions[z]);
    code.encode(regions);
  }
};

}  // namespace stair::bench
