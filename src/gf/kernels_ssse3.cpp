// SSSE3 backend: this translation unit is compiled with -mssse3 (see the
// per-file flags in CMakeLists.txt), turning the kernels_impl.h bodies into
// pshufb split-table kernels at 16 bytes per iteration. Only dispatched to
// after a runtime CPUID check.
#include "gf/kernels_impl.h"

#ifndef __SSSE3__
#error "kernels_ssse3.cpp must be compiled with SSSE3 enabled (-mssse3)"
#endif

namespace stair::gf::detail {

KernelFns ssse3_kernel_fns() { return impl_kernel_fns(); }

}  // namespace stair::gf::detail
