// Disk scrubbing model (§8's related mitigation, used by the examples to put
// STAIR's coverage choice in context).
//
// Latent sector errors accumulate between scrub passes; a pass detects and
// repairs them. With errors arriving as a Poisson process at `rate_per_hour`
// per sector and a scrub period of T hours, a sector observed at a uniformly
// random time has been accumulating errors for U ~ Uniform(0, T) hours, so
// the stationary probability it is currently bad is E[1 - e^(-rate U)].
#pragma once

#include <cstddef>

namespace stair::sim {

/// Scrubbing parameters.
struct ScrubPolicy {
  double period_hours = 7.0 * 24.0;  ///< full-pass scrub interval
  double error_rate_per_hour = 0.0;  ///< per-sector latent error arrival rate
};

/// Stationary probability that a sector holds an undetected latent error
/// under the policy (exact expectation, not the small-rate approximation).
double latent_error_probability(const ScrubPolicy& policy);

/// Equivalent p_sec to feed the §7 reliability models when scrubbing with
/// `policy` replaces a scrub-less baseline probability accumulated over
/// `exposure_hours`.
double scrubbed_p_sec(double error_rate_per_hour, double period_hours);

/// The token-bucket rate (MB/s of scanned store bytes) a stair::Scrubber
/// needs to finish one full pass over `store_bytes` every `period_hours` —
/// the knob that turns this analytic policy into ScrubOptions::rate_mbps
/// for the operational loop (stair/scrub_repair.h). 0 when either input is
/// degenerate (read as "unpaced").
double pass_rate_mbps(double store_bytes, double period_hours);

/// The scrub period the hardware can actually deliver: a pass over
/// `store_bytes` at `scan_mbps` takes store_bytes / rate hours, and no policy
/// can recheck a sector more often than back-to-back passes. Boundary
/// semantics (the cases a naive `period_hours` plumb-through gets wrong):
///  * period <= 0 ("scrub continuously") -> one pass time, i.e. back-to-back
///    passes; 0 when the scan rate is unbounded (scan_mbps <= 0).
///  * period shorter than one pass -> clamped up to the pass time.
///  * scan_mbps <= 0 (unbounded) or store_bytes <= 0 -> the requested period
///    (floored at 0).
/// Feed the result, not the request, to scrubbed_p_sec and to simulators.
double effective_scrub_period(double period_hours, double store_bytes,
                              double scan_mbps);

}  // namespace stair::sim
