#include "gf/region.h"

#include <cassert>
#include <cstring>

#include "gf/kernel.h"

namespace stair::gf {

void xor_region(std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  std::size_t i = 0;
  const std::size_t n = src.size();
  // Word-at-a-time XOR; compilers vectorize this loop readily.
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, src.data() + i, 8);
    std::memcpy(&b, dst.data() + i, 8);
    b ^= a;
    std::memcpy(dst.data() + i, &b, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void mult_xor_region(const Field& f, std::uint32_t a,
                     std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  if (a == 0 || src.empty()) return;
  if (a == 1) {
    xor_region(src, dst);
    return;
  }
  compiled_kernel(f, a)->mult_xor(src, dst);
}

void mult_region(const Field& f, std::uint32_t a,
                 std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  if (a == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (a == 1) {
    if (dst.data() != src.data()) std::memcpy(dst.data(), src.data(), src.size());
    return;
  }
  if (src.empty()) return;
  // The overwrite kernels never read dst, so exact aliasing (in-place scale)
  // is safe: every block is fully loaded before it is stored.
  compiled_kernel(f, a)->mult(src, dst);
}

bool has_simd_w8() { return active_backend() != Backend::kScalar; }

}  // namespace stair::gf
