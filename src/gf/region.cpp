#include "gf/region.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "gf/kernel.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace stair::gf {

void xor_region(std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  std::size_t i = 0;
  const std::size_t n = src.size();
  // Word-at-a-time XOR; compilers vectorize this loop readily.
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, src.data() + i, 8);
    std::memcpy(&b, dst.data() + i, 8);
    b ^= a;
    std::memcpy(dst.data() + i, &b, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void mult_xor_region(const Field& f, std::uint32_t a,
                     std::span<const std::uint8_t> src, std::span<std::uint8_t> dst,
                     RegionLayout layout) {
  assert(src.size() == dst.size());
  if (a == 0 || src.empty()) return;
  if (a == 1) {
    xor_region(src, dst);
    return;
  }
  compiled_kernel(f, a)->mult_xor(src, dst, layout);
}

void mult_region(const Field& f, std::uint32_t a,
                 std::span<const std::uint8_t> src, std::span<std::uint8_t> dst,
                 RegionLayout layout) {
  assert(src.size() == dst.size());
  if (a == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (a == 1) {
    if (dst.data() != src.data()) std::memcpy(dst.data(), src.data(), src.size());
    return;
  }
  if (src.empty()) return;
  // The overwrite kernels never read dst, so exact aliasing (in-place scale)
  // is safe: every block is fully loaded before it is stored.
  compiled_kernel(f, a)->mult(src, dst, layout);
}

bool has_simd(int w) {
  if (active_backend() == Backend::kScalar) return false;
  // Standard-layout w = 32 is the scalar wide-table loop on every backend;
  // the width only vectorizes through altmap. w = 16 has a (partially
  // vectorized) standard SIMD kernel, so it counts in either layout.
  if (w == 32) return preferred_layout(w) == RegionLayout::kAltmap;
  return true;
}

namespace {

// L2 size via Linux sysfs: walk the cpu0 cache indices for a level-2
// entry. The "size" files read like "1024K" / "2M".
std::size_t l2_from_sysfs() {
#if defined(__linux__)
  for (int idx = 0; idx < 8; ++idx) {
    char path[96];
    std::snprintf(path, sizeof path,
                  "/sys/devices/system/cpu/cpu0/cache/index%d/level", idx);
    std::FILE* f = std::fopen(path, "r");
    if (!f) break;  // indices are contiguous; first miss ends the walk
    int level = 0;
    const bool got_level = std::fscanf(f, "%d", &level) == 1;
    std::fclose(f);
    if (!got_level || level != 2) continue;
    std::snprintf(path, sizeof path,
                  "/sys/devices/system/cpu/cpu0/cache/index%d/size", idx);
    f = std::fopen(path, "r");
    if (!f) continue;
    long value = 0;
    char unit = 0;
    const int fields = std::fscanf(f, "%ld%c", &value, &unit);
    std::fclose(f);
    if (fields < 1 || value <= 0) continue;
    std::size_t bytes = static_cast<std::size_t>(value);
    if (fields == 2 && (unit == 'K' || unit == 'k')) bytes *= 1024;
    if (fields == 2 && (unit == 'M' || unit == 'm')) bytes *= 1024 * 1024;
    return bytes;
  }
#endif
  return 0;
}

// CPUID leaf 4 (Intel "deterministic cache parameters"; AMD mirrors it on
// leaf 0x8000001d) — fallback when sysfs is unavailable.
std::size_t l2_from_cpuid() {
#if defined(__x86_64__) || defined(__i386__)
  for (const unsigned leaf : {0x4u, 0x8000001du}) {
    if (leaf >= 0x80000000u) {
      unsigned a, b, c, d;
      if (!__get_cpuid(0x80000000u, &a, &b, &c, &d) || a < leaf) continue;
    }
    for (unsigned sub = 0; sub < 8; ++sub) {
      unsigned a = 0, b = 0, c = 0, d = 0;
      if (!__get_cpuid_count(leaf, sub, &a, &b, &c, &d)) break;
      const unsigned type = a & 0x1f;  // 0 = no more caches
      if (type == 0) break;
      const unsigned level = (a >> 5) & 0x7;
      if (level != 2 || type == 2) continue;  // want L2 data or unified
      const std::size_t ways = ((b >> 22) & 0x3ff) + 1;
      const std::size_t partitions = ((b >> 12) & 0x3ff) + 1;
      const std::size_t line = (b & 0xfff) + 1;
      const std::size_t sets = static_cast<std::size_t>(c) + 1;
      return ways * partitions * line * sets;
    }
  }
#endif
  return 0;
}

// 0 = no installed budget (use the detected default).
std::atomic<std::size_t> g_installed_budget{0};

}  // namespace

std::size_t detected_l2_cache_bytes() {
  static const std::size_t bytes = [] {
    const std::size_t sysfs = l2_from_sysfs();
    return sysfs ? sysfs : l2_from_cpuid();
  }();
  return bytes;
}

void set_region_cache_budget(std::size_t bytes) {
  g_installed_budget.store(bytes, std::memory_order_relaxed);
}

std::size_t region_cache_budget() {
  // Environment pin wins (read once, like every other STAIR_* override).
  static const std::size_t env_budget = [] {
    if (const char* env = std::getenv("STAIR_STRIP_BYTES")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }();
  if (env_budget) return env_budget;
  if (const std::size_t installed = g_installed_budget.load(std::memory_order_relaxed))
    return installed;
  // Half the detected L2 leaves room for split tables, stacks and the
  // pool's bookkeeping next to the strips; clamp so exotic parts (tiny
  // embedded L2s, huge sliced server L2s) stay in a sane band.
  static const std::size_t detected_budget = [] {
    const std::size_t l2 = detected_l2_cache_bytes();
    if (!l2) return std::size_t{768} * 1024;  // half of a typical 1.5 MiB L2
    return std::clamp<std::size_t>(l2 / 2, 128 * 1024, 8 * 1024 * 1024);
  }();
  return detected_budget;
}

std::size_t cache_aware_slice_bytes(std::size_t region_bytes, std::size_t participants,
                                    std::size_t touched_regions) {
  if (participants == 0) participants = 1;
  if (region_bytes <= 64) return region_bytes;
  // ~2 slices per participant balances load; fewer would make the slowest
  // slice the critical path, many more would pay per-slice dispatch.
  std::size_t slice = (region_bytes + 2 * participants - 1) / (2 * participants);
  // 64-byte granularity keeps slices symbol-aligned for every supported w.
  std::size_t cache_cap = region_cache_budget() / (touched_regions ? touched_regions : 1);
  cache_cap = std::max<std::size_t>(64, cache_cap & ~std::size_t{63});
  if (slice > cache_cap) slice = cache_cap;
  slice &= ~std::size_t{63};
  if (slice < 64) slice = 64;
  // Dispatch-overhead floor — don't shred big regions into tiny slices —
  // capped by cache_cap so the budget guarantee above is never violated.
  const std::size_t floor_bytes = std::min<std::size_t>(4096, cache_cap);
  if (slice < floor_bytes && region_bytes > participants * floor_bytes) slice = floor_bytes;
  return slice < region_bytes ? slice : region_bytes;
}

}  // namespace stair::gf
