// Systematic MDS code tests: systematic form, exhaustive erasure recovery
// for small codes, recovery-matrix algebra, and region encode/decode
// round-trips — parameterized over generator kind, shape, and word size.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <numeric>

#include "rs/mds_code.h"
#include "util/buffer.h"
#include "util/rng.h"

namespace stair {
namespace {

struct RsCase {
  std::size_t kappa, eta;
  int w;
  SystematicMdsCode::Kind kind;

  std::string name() const {
    return "k" + std::to_string(kappa) + "n" + std::to_string(eta) + "w" +
           std::to_string(w) +
           (kind == SystematicMdsCode::Kind::kCauchy ? "Cauchy" : "Vand");
  }
};

class MdsCodeTest : public ::testing::TestWithParam<RsCase> {
 protected:
  SystematicMdsCode make() const {
    const RsCase& c = GetParam();
    return SystematicMdsCode(gf::field(c.w), c.kappa, c.eta, c.kind);
  }

  // Scalar codeword from scalar data via the generator.
  std::vector<std::uint32_t> codeword(const SystematicMdsCode& code,
                                      std::span<const std::uint32_t> data) const {
    std::vector<std::uint32_t> cw(code.eta(), 0);
    const auto& g = code.generator();
    for (std::size_t j = 0; j < code.eta(); ++j) {
      std::uint32_t acc = 0;
      for (std::size_t i = 0; i < code.kappa(); ++i)
        acc ^= code.field().mul(g.at(i, j), data[i]);
      cw[j] = acc;
    }
    return cw;
  }
};

TEST_P(MdsCodeTest, GeneratorIsSystematic) {
  const auto code = make();
  for (std::size_t i = 0; i < code.kappa(); ++i)
    for (std::size_t j = 0; j < code.kappa(); ++j)
      EXPECT_EQ(code.generator().at(i, j), i == j ? 1u : 0u);
}

TEST_P(MdsCodeTest, AnyKappaPositionsRecoverEverything) {
  const auto code = make();
  Rng rng(99);
  std::vector<std::uint32_t> data(code.kappa());
  for (auto& d : data)
    d = static_cast<std::uint32_t>(rng.next_u64() & code.field().max_element());
  const auto cw = codeword(code, data);

  // Exhaust all kappa-subsets of positions as the "available" set.
  std::vector<std::size_t> avail(code.kappa());
  std::vector<std::size_t> targets(code.eta());
  std::iota(targets.begin(), targets.end(), 0);

  std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t depth,
                                                          std::size_t start) {
    if (depth == code.kappa()) {
      const Matrix r = code.recovery_matrix(avail, targets);
      for (std::size_t t = 0; t < code.eta(); ++t) {
        std::uint32_t acc = 0;
        for (std::size_t j = 0; j < code.kappa(); ++j)
          acc ^= code.field().mul(r.at(t, j), cw[avail[j]]);
        ASSERT_EQ(acc, cw[t]) << "target " << t;
      }
      return;
    }
    for (std::size_t p = start; p < code.eta(); ++p) {
      avail[depth] = p;
      rec(depth + 1, p + 1);
    }
  };
  rec(0, 0);
}

TEST_P(MdsCodeTest, RegionEncodeMatchesScalarGenerator) {
  const auto code = make();
  const std::size_t symbol = 64;
  Rng rng(7);

  std::vector<AlignedBuffer> bufs;
  std::vector<std::span<const std::uint8_t>> data;
  std::vector<std::span<std::uint8_t>> parity;
  for (std::size_t i = 0; i < code.eta(); ++i) bufs.emplace_back(symbol);
  for (std::size_t i = 0; i < code.kappa(); ++i) {
    rng.fill(bufs[i].span());
    data.push_back(bufs[i].span());
  }
  for (std::size_t p = code.kappa(); p < code.eta(); ++p) parity.push_back(bufs[p].span());
  code.encode(data, parity);

  // Check one w-bit word of every region against the scalar path. For w = 4
  // the kernel packs two field elements per byte; check the low nibble.
  const std::size_t bytes = GetParam().w >= 8 ? GetParam().w / 8 : 1;
  const std::uint32_t mask = GetParam().w == 4
                                 ? 0xfu
                                 : (bytes == 4 ? 0xffffffffu : (1u << (8 * bytes)) - 1);
  std::vector<std::uint32_t> data_words(code.kappa(), 0);
  for (std::size_t i = 0; i < code.kappa(); ++i) {
    std::memcpy(&data_words[i], bufs[i].data(), bytes);
    data_words[i] &= mask;
  }
  const auto cw = codeword(code, data_words);
  for (std::size_t j = 0; j < code.eta(); ++j) {
    std::uint32_t word = 0;
    std::memcpy(&word, bufs[j].data(), bytes);
    EXPECT_EQ(word & mask, cw[j] & mask);
  }
}

TEST_P(MdsCodeTest, RegionDecodeRecoversAllErasurePatterns) {
  const auto code = make();
  if (code.eta() > 10) GTEST_SKIP() << "exhaustive pattern sweep for small codes only";
  const std::size_t symbol = 32;
  Rng rng(11);

  // Golden encoded stripe.
  std::vector<AlignedBuffer> golden;
  for (std::size_t i = 0; i < code.eta(); ++i) golden.emplace_back(symbol);
  {
    std::vector<std::span<const std::uint8_t>> data;
    std::vector<std::span<std::uint8_t>> parity;
    for (std::size_t i = 0; i < code.kappa(); ++i) {
      rng.fill(golden[i].span());
      data.push_back(golden[i].span());
    }
    for (std::size_t p = code.kappa(); p < code.eta(); ++p)
      parity.push_back(golden[p].span());
    code.encode(data, parity);
  }

  // Every erasure pattern of size exactly eta - kappa.
  const std::size_t erasures = code.parity_count();
  std::vector<std::size_t> pattern(erasures);
  std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t depth,
                                                          std::size_t start) {
    if (depth == erasures) {
      std::vector<AlignedBuffer> work;
      for (std::size_t i = 0; i < code.eta(); ++i) {
        work.emplace_back(symbol);
        std::memcpy(work[i].data(), golden[i].data(), symbol);
      }
      std::vector<bool> erased(code.eta(), false);
      for (std::size_t p : pattern) {
        erased[p] = true;
        rng.fill(work[p].span());
      }
      std::vector<std::size_t> avail;
      std::vector<std::span<const std::uint8_t>> avail_regions;
      for (std::size_t i = 0; i < code.eta() && avail.size() < code.kappa(); ++i) {
        if (erased[i]) continue;
        avail.push_back(i);
        avail_regions.push_back(work[i].span());
      }
      std::vector<std::span<std::uint8_t>> lost_regions;
      for (std::size_t p : pattern) lost_regions.push_back(work[p].span());
      code.decode(avail, avail_regions, pattern, lost_regions);
      for (std::size_t i = 0; i < code.eta(); ++i)
        ASSERT_EQ(std::memcmp(work[i].data(), golden[i].data(), symbol), 0)
            << "position " << i;
      return;
    }
    for (std::size_t p = start; p < code.eta(); ++p) {
      pattern[depth] = p;
      rec(depth + 1, p + 1);
    }
  };
  rec(0, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MdsCodeTest,
    ::testing::Values(
        RsCase{2, 4, 8, SystematicMdsCode::Kind::kCauchy},
        RsCase{4, 6, 8, SystematicMdsCode::Kind::kCauchy},
        RsCase{4, 8, 8, SystematicMdsCode::Kind::kCauchy},
        RsCase{6, 9, 8, SystematicMdsCode::Kind::kCauchy},
        RsCase{3, 6, 4, SystematicMdsCode::Kind::kCauchy},
        RsCase{4, 7, 16, SystematicMdsCode::Kind::kCauchy},
        RsCase{2, 4, 8, SystematicMdsCode::Kind::kVandermonde},
        RsCase{4, 6, 8, SystematicMdsCode::Kind::kVandermonde},
        RsCase{4, 8, 16, SystematicMdsCode::Kind::kVandermonde},
        RsCase{6, 10, 8, SystematicMdsCode::Kind::kVandermonde}),
    [](const auto& info) { return info.param.name(); });

TEST(MdsCodeValidation, RejectsBadShapes) {
  const auto& f = gf::field(8);
  EXPECT_THROW(SystematicMdsCode(f, 0, 4), std::invalid_argument);
  EXPECT_THROW(SystematicMdsCode(f, 4, 4), std::invalid_argument);
  EXPECT_THROW(SystematicMdsCode(f, 4, 300), std::invalid_argument);
}

TEST(MdsCodeValidation, RecoveryMatrixRejectsBadPositions) {
  SystematicMdsCode code(gf::field(8), 3, 5);
  const std::vector<std::size_t> too_few{0, 1};
  const std::vector<std::size_t> out_of_range{0, 1, 9};
  const std::vector<std::size_t> ok{0, 1, 2};
  const std::vector<std::size_t> bad_target{7};
  EXPECT_THROW(code.recovery_matrix(too_few, ok), std::invalid_argument);
  EXPECT_THROW(code.recovery_matrix(out_of_range, ok), std::invalid_argument);
  EXPECT_THROW(code.recovery_matrix(ok, bad_target), std::invalid_argument);
}

TEST(MdsCodeValidation, IdentityRecoveryForAvailableTargets) {
  SystematicMdsCode code(gf::field(8), 3, 6);
  const std::vector<std::size_t> avail{1, 3, 5};
  const Matrix r = code.recovery_matrix(avail, avail);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(r.at(i, j), i == j ? 1u : 0u);
}

}  // namespace
}  // namespace stair
