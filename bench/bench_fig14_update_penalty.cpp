// Figure 14: update penalty (average parity symbols touched per data-symbol
// update) of STAIR codes for every e with s = 4, at n = 16 and
// r in {8, 16, 24, 32}, m in {1, 2, 3}.
//
// Expected shape: penalty grows with m; for a fixed s it tends to grow with
// e_max (larger e_max => more parity rows entangled with the globals).

#include <iostream>

#include "bench_util.h"
#include "stair/update_analysis.h"

using namespace stair;
using namespace stair::bench;

int main() {
  const std::size_t n = 16, s = 4;
  std::cout << "=== Figure 14: update penalty of STAIR codes, n=" << n << " s=" << s
            << " ===\n\n";

  for (std::size_t r : {8, 16, 24, 32}) {
    TablePrinter table("r = " + std::to_string(r) + "  (avg parity updates per data update)");
    table.set_header({"e", "m=1", "m=2", "m=3"});
    for (const auto& e : enumerate_coverage_vectors(s, s, s)) {
      std::vector<std::string> row{e_label(e)};
      for (std::size_t m : {1, 2, 3}) {
        const StairCode code({.n = n, .r = r, .m = m, .e = e});
        row.push_back(format_sig(update_penalty(code).average, 4));
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }

  std::cout << "Shape check: penalty increases with m; for fixed s it generally\n"
               "increases with e_max — e=(4) worst, e=(1,1,1,1) mildest (§6.3).\n";
  return 0;
}
