#include "stair/scrub_repair.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace stair {

SharedBandwidth::SharedBandwidth(double rate_mbps, double burst_bytes)
    : rate_mbps_(rate_mbps), burst_bytes_(burst_bytes) {}

bool SharedBandwidth::acquire(std::size_t bytes, const std::function<bool()>& cancel) {
  granted_.fetch_add(bytes, std::memory_order_relaxed);
  if (!(rate_mbps_ > 0.0)) return false;
  using clock = std::chrono::steady_clock;
  const double rate = rate_mbps_ * 1024.0 * 1024.0;
  const double burst = std::max(burst_bytes_, static_cast<double>(bytes));
  bool waited = false;
  while (!(cancel && cancel())) {
    double deficit_s = 0.0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto now = clock::now();
      if (refill_ == clock::time_point{}) refill_ = now;
      tokens_ = std::min(
          burst, tokens_ + std::chrono::duration<double>(now - refill_).count() * rate);
      refill_ = now;
      if (tokens_ >= static_cast<double>(bytes)) {
        tokens_ -= static_cast<double>(bytes);
        return waited;
      }
      deficit_s = (static_cast<double>(bytes) - tokens_) / rate;
    }
    waited = true;
    std::this_thread::sleep_for(std::chrono::duration<double>(std::min(deficit_s, 0.01)));
  }
  return waited;
}

void ScrubReport::accumulate(const ScrubReport& p) {
  ok = ok && p.ok;
  completed = completed && p.completed;
  if (error.empty()) error = p.error;
  stripes = p.stripes;
  stripes_scanned += p.stripes_scanned;
  stripes_degraded += p.stripes_degraded;
  stripes_unrecoverable += p.stripes_unrecoverable;
  chunks_missing += p.chunks_missing;
  sectors_corrupt += p.sectors_corrupt;
  sectors_repaired += p.sectors_repaired;
  repair_failures += p.repair_failures;
  throttle_stalls += p.throttle_stalls;
  bytes_read += p.bytes_read;
  bytes_written += p.bytes_written;
}

/// One leased stripe slot: the StripeBuffer reconstruction happens in, plus
/// aligned chunk staging leases for reads and whole-chunk repair writes.
/// Reused warm — leases stick to the slot across stripes (prepare re-leases
/// only on geometry change).
struct Scrubber::Slot {
  std::optional<StripeBuffer> buf;
  std::vector<IoBufferPool::Lease> chunks;
  std::vector<io::Result> results;
  std::vector<bool> mask;
  /// Per-sector verdicts written by verify_chunk, one byte per sector at
  /// [i * n + j] (bytes, not vector<bool>: concurrent verifiers write
  /// disjoint columns, which packed bits cannot do safely). Published to the
  /// assembling thread by the `pending` acq_rel countdown.
  std::vector<std::uint8_t> sector_bad;
  std::atomic<std::size_t> pending{0};
};

/// Per-pass shared state; lives on the run_pass stack, drain() guarantees
/// no callback outlives it (the IoPipeline::Run idiom).
struct Scrubber::Pass {
  const StripeStore* store = nullptr;
  std::string dir;
  std::optional<std::size_t> rebuild;  // device being rebuilt, if any
  bool repair = true;
  io::IoPhase read_phase = io::IoPhase::kScrub;
  std::size_t symbol_bytes = 0;
  std::size_t chunk_bytes = 0;
  std::size_t padded_chunk = 0;  // on-disk stride/transfer length per chunk
  /// Open mode for chunk reads and the rebuild target (whole aligned
  /// transfers only). Sector-patch open_update fds stay buffered.
  io::OpenMode dev_mode = io::OpenMode::kBuffered;

  std::vector<int> read_fds;   // -1: missing/skip (rebuild target)
  std::vector<int> write_fds;  // -2: not opened yet; guarded by fd_mu
  std::mutex fd_mu;

  std::mutex mu;
  std::condition_variable cv;
  std::size_t in_flight = 0;  // guarded by mu
  std::string error;          // first fatal failure; guarded by mu

  std::atomic<std::size_t> scanned{0}, degraded{0}, unrecoverable{0}, missing{0},
      corrupt{0}, repaired{0}, repair_failed{0}, stalls{0};
  std::atomic<std::uint64_t> bytes_read{0}, bytes_written{0};

  bool has_fatal() {
    std::lock_guard<std::mutex> lock(mu);
    return !error.empty();
  }
  void fatal(std::string message) {
    std::lock_guard<std::mutex> lock(mu);
    if (error.empty()) error = std::move(message);
  }
  void retire() {
    // Notify under the lock: once in_flight hits 0 a racing drain returns
    // and this stack-allocated Pass is destroyed.
    std::lock_guard<std::mutex> lock(mu);
    --in_flight;
    cv.notify_all();
  }
};

Scrubber::Scrubber(Codec& codec, ScrubOptions options)
    : codec_(codec), options_(std::move(options)) {
  if (options_.stripes_in_flight == 0) options_.stripes_in_flight = 1;
  if (options_.engine) {
    engine_ = options_.engine;
  } else {
    const io::Backend requested = options_.backend == io::Backend::kAuto
                                      ? io::backend_from_env()
                                      : options_.backend;
    owned_engine_ = io::Engine::create(requested, options_.io);
    engine_ = owned_engine_.get();
  }
  background_report_.ok = background_report_.completed = true;
}

Scrubber::~Scrubber() { stop(); }

ScrubReport Scrubber::scrub(const std::string& store_dir) {
  return run_pass(store_dir, std::nullopt);
}

ScrubReport Scrubber::rebuild_device(const std::string& store_dir, std::size_t device) {
  return run_pass(store_dir, device);
}

void Scrubber::pace(Pass& pass, std::size_t bytes) {
  using clock = std::chrono::steady_clock;
  bool stalled = false;
  // Idle-slot gate: foreground pressure is Codec jobs beyond this
  // Scrubber's own in-flight decodes. Bounded: a node that is never idle
  // still gets scrubbed, just never at full tilt.
  auto gated = [&] {
    if (options_.hold) return options_.hold();
    if (!options_.yield_to_foreground) return false;
    return codec_.jobs_in_flight() > own_jobs_.load(std::memory_order_relaxed);
  };
  const auto gate_deadline = clock::now() + options_.max_stall;
  while (!stop_.load(std::memory_order_relaxed) && gated() && clock::now() < gate_deadline) {
    stalled = true;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  // Token bucket on scanned bytes: refill at rate, spend per stripe, sleep
  // off the deficit in short slices so stop() stays responsive.
  if (options_.rate_mbps > 0.0) {
    const double rate = options_.rate_mbps * 1024.0 * 1024.0;
    const double burst = std::max<double>(options_.burst_bytes, static_cast<double>(bytes));
    while (!stop_.load(std::memory_order_relaxed)) {
      double deficit_s = 0.0;
      {
        std::lock_guard<std::mutex> lock(bucket_mu_);
        const auto now = clock::now();
        if (bucket_refill_ == clock::time_point{}) bucket_refill_ = now;
        tokens_ = std::min(burst,
                           tokens_ + std::chrono::duration<double>(now - bucket_refill_).count() * rate);
        bucket_refill_ = now;
        if (tokens_ >= static_cast<double>(bytes)) {
          tokens_ -= static_cast<double>(bytes);
          break;
        }
        deficit_s = (static_cast<double>(bytes) - tokens_) / rate;
      }
      stalled = true;
      std::this_thread::sleep_for(std::chrono::duration<double>(std::min(deficit_s, 0.01)));
    }
  }
  // Cluster-wide cap last: an array throttled by its own bucket should not
  // hold shared tokens it cannot spend yet.
  if (options_.shared_bandwidth &&
      options_.shared_bandwidth->acquire(
          bytes, [this] { return stop_.load(std::memory_order_relaxed); }))
    stalled = true;
  if (stalled) pass.stalls.fetch_add(1, std::memory_order_relaxed);
}

ScrubReport Scrubber::run_pass(const std::string& store_dir,
                               std::optional<std::size_t> rebuild) {
  ScrubReport rep;
  StripeStore store;
  try {
    store = StripeStore::load(store_dir);
  } catch (const std::exception& e) {
    rep.error = e.what();
    return rep;
  }
  const StairCode& code = codec_.code();
  if (!(store.cfg == code.config())) {
    rep.error = "store config " + store.cfg.to_string() + " does not match codec config " +
                code.config().to_string();
    return rep;
  }
  if (rebuild && *rebuild >= store.cfg.n) {
    rep.error = "rebuild device out of range";
    return rep;
  }

  Pass pass;
  pass.store = &store;
  pass.dir = store_dir;
  pass.rebuild = rebuild;
  pass.repair = rebuild ? true : options_.repair;
  pass.read_phase = rebuild ? io::IoPhase::kRebuild : io::IoPhase::kScrub;
  pass.symbol_bytes = store.symbol_bytes;
  pass.chunk_bytes = store.chunk_bytes();
  pass.padded_chunk = store.padded_chunk_bytes();
  // Direct only engages on padded stores: a legacy (block 1) layout has no
  // alignment to offer, so it always reads buffered regardless of the knob.
  pass.dev_mode = options_.direct && store.block_bytes > 1 ? io::OpenMode::kDirect
                                                          : io::OpenMode::kBuffered;
  // One pass runs at a time per Scrubber, so swapping the staging pool at
  // pass start is safe (outstanding leases pin the old backing store).
  const std::size_t align = std::max<std::size_t>(store.block_bytes, 64);
  if (!buffers_ || buffers_->buffer_bytes() < pass.padded_chunk ||
      buffers_->alignment() != align)
    buffers_ = std::make_unique<IoBufferPool>(
        pass.padded_chunk, align, options_.stripes_in_flight * store.cfg.n);
  pass.read_fds.assign(store.cfg.n, -1);
  pass.write_fds.assign(store.cfg.n, -2);
  for (std::size_t j = 0; j < store.cfg.n; ++j) {
    if (rebuild && *rebuild == j) continue;  // target column is re-derived
    pass.read_fds[j] =
        engine_->open_read(StripeStore::device_path(store_dir, j), pass.dev_mode);
  }
  if (rebuild) {
    // The target file is recreated from scratch (truncate): every chunk is
    // about to be reconstructed and written back in stripe order. It only
    // ever takes whole padded-chunk writes from aligned staging, so it is
    // direct-capable like the read side.
    pass.write_fds[*rebuild] = engine_->open_write(
        StripeStore::device_path(store_dir, *rebuild), pass.dev_mode);
    if (pass.write_fds[*rebuild] < 0)
      pass.fatal("cannot recreate " + StripeStore::device_path(store_dir, *rebuild));
  }

  for (std::size_t s = 0; s < store.stripes; ++s) {
    if (stop_.load(std::memory_order_relaxed) || pass.has_fatal()) break;
    pace(pass, store.cfg.n * pass.padded_chunk);
    if (stop_.load(std::memory_order_relaxed)) break;
    scan_stripe(pass, s);
  }
  {
    std::unique_lock<std::mutex> lock(pass.mu);
    pass.cv.wait(lock, [&] { return pass.in_flight == 0; });
  }
  // No engine flush: every transfer this pass submitted has retired through
  // its slot countdown, and flushing would also wait out unrelated
  // foreground IO on a shared engine.
  for (int fd : pass.read_fds) engine_->close(fd);
  for (int fd : pass.write_fds)
    if (fd >= 0) engine_->close(fd);

  rep.stripes = store.stripes;
  rep.stripes_scanned = pass.scanned.load();
  rep.stripes_degraded = pass.degraded.load();
  rep.stripes_unrecoverable = pass.unrecoverable.load();
  rep.chunks_missing = pass.missing.load();
  rep.sectors_corrupt = pass.corrupt.load();
  rep.sectors_repaired = pass.repaired.load();
  rep.repair_failures = pass.repair_failed.load();
  rep.throttle_stalls = pass.stalls.load();
  rep.bytes_read = pass.bytes_read.load();
  rep.bytes_written = pass.bytes_written.load();
  {
    std::lock_guard<std::mutex> lock(pass.mu);
    rep.error = pass.error;
  }
  if (rep.error.empty() && rep.sectors_repaired > 0) {
    // Repair rewrote store content to its manifest-proven state; re-saving
    // refreshes the recovery point canonically (atomic temp + rename).
    try {
      store.save(store_dir);
    } catch (const std::exception& e) {
      rep.error = e.what();
    }
  }
  rep.ok = rep.error.empty();
  rep.completed = rep.ok && rep.stripes_scanned == rep.stripes;
  return rep;
}

void Scrubber::scan_stripe(Pass& pass, std::size_t stripe) {
  {
    std::unique_lock<std::mutex> lock(pass.mu);
    pass.cv.wait(lock, [&] { return pass.in_flight < options_.stripes_in_flight; });
    ++pass.in_flight;
  }
  WorkspacePool<Slot>::Lease slot = slots_.acquire();
  const StairConfig& cfg = pass.store->cfg;
  if (!slot->buf || slot->buf->symbol_size() != pass.symbol_bytes)
    slot->buf.emplace(codec_.code(), pass.symbol_bytes);
  slot->chunks.resize(cfg.n);
  for (auto& lease : slot->chunks)
    if (!lease || lease->bytes < pass.padded_chunk) lease = buffers_->acquire();
  slot->results.assign(cfg.n, io::Result{});
  slot->sector_bad.assign(cfg.r * cfg.n, 0);
  slot->pending.store(cfg.n, std::memory_order_relaxed);
  pass.scanned.fetch_add(1, std::memory_order_relaxed);

  Slot* raw = slot.get();
  io::PhaseScope phase(pass.read_phase);
  for (std::size_t j = 0; j < cfg.n; ++j) {
    auto complete = [this, &pass, slot, stripe, j](const io::Result& r) mutable {
      slot->results[j] = r;  // devices are disjoint; countdown publishes
      // Verify (r checksum passes) is real work: bounce it onto the codec
      // pool so engine completion threads keep completing IO. Per chunk, not
      // per stripe — the bytes are hashed while they are still warm.
      codec_.pool().submit([this, &pass, slot = std::move(slot), stripe, j]() mutable {
        verify_chunk(pass, std::move(slot), stripe, j);
      });
    };
    if (pass.read_fds[j] < 0) {
      complete(io::Result{ENOENT, 0});
    } else {
      engine_->read(pass.read_fds[j], pass.store->chunk_offset(stripe),
                    std::span(raw->chunks[j]->data, pass.padded_chunk), complete);
    }
  }
}

void Scrubber::verify_chunk(Pass& pass, WorkspacePool<Slot>::Lease slot,
                            std::size_t stripe, std::size_t device) {
  Slot& sl = *slot;
  const StairConfig& cfg = pass.store->cfg;
  const std::size_t j = device;
  const bool is_target = pass.rebuild && *pass.rebuild == j;
  const io::Result& r = sl.results[j];
  if (!is_target && r.error == 0 && r.bytes == pass.padded_chunk) {
    const std::uint8_t* data = sl.chunks[j]->data;
    for (std::size_t i = 0; i < cfg.r; ++i) {
      std::span<const std::uint8_t> sec(data + i * pass.symbol_bytes, pass.symbol_bytes);
      const bool bad =
          content_hash64(sec) != pass.store->sector_checksum(stripe, j, i);
      sl.sector_bad[i * cfg.n + j] = bad ? 1 : 0;
      // When decode cannot run zero-copy over the staging (odd symbol
      // size), rebuild stages surviving sectors into the stripe buffer
      // here, warm — every rebuild stripe decodes. Scrub passes defer the
      // copy to assemble_stripe, paying it only on the rare damaged stripe.
      if (pass.rebuild && !bad && pass.symbol_bytes % 64 != 0)
        std::memcpy(sl.buf->symbol(i, j).data(), sec.data(), pass.symbol_bytes);
    }
  }
  if (sl.pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
    assemble_stripe(pass, std::move(slot), stripe);
}

void Scrubber::assemble_stripe(Pass& pass, WorkspacePool<Slot>::Lease slot,
                               std::size_t stripe) {
  try {
    const StairConfig& cfg = pass.store->cfg;
    Slot& sl = *slot;
    sl.mask.assign(cfg.r * cfg.n, false);
    bool damage = false;  // damage beyond the rebuild premise
    for (std::size_t j = 0; j < cfg.n; ++j) {
      const bool is_target = pass.rebuild && *pass.rebuild == j;
      const io::Result& r = sl.results[j];
      if (!is_target) pass.bytes_read.fetch_add(r.bytes, std::memory_order_relaxed);
      if (is_target || r.error != 0 || r.bytes != pass.padded_chunk) {
        for (std::size_t i = 0; i < cfg.r; ++i) sl.mask[i * cfg.n + j] = true;
        if (!is_target) {
          pass.missing.fetch_add(1, std::memory_order_relaxed);
          damage = true;
        }
        continue;
      }
      for (std::size_t i = 0; i < cfg.r; ++i) {
        if (sl.sector_bad[i * cfg.n + j]) {
          pass.corrupt.fetch_add(1, std::memory_order_relaxed);
          sl.mask[i * cfg.n + j] = true;
          damage = true;
        }
      }
    }
    if (damage) pass.degraded.fetch_add(1, std::memory_order_relaxed);
    const bool masked = damage || pass.rebuild.has_value();
    if (!masked || !pass.repair) {
      if (masked && !pass.repair) {
        // Detect-only scrub still reports coverage misses.
        if (!codec_.code().is_recoverable(sl.mask))
          pass.unrecoverable.fetch_add(1, std::memory_order_relaxed);
      }
      slot.reset();
      pass.retire();
      return;
    }
    // Decode zero-copy where the layout allows it: surviving symbols are
    // read straight out of the aligned staging leases (still warm from the
    // hash pass) and only the reconstructed symbols land in the stripe
    // buffer. The 64-byte guard keeps kernel and altmap regions on the
    // alignment every other call site gives them; odd symbol sizes take the
    // staging copy instead.
    StripeView view = sl.buf->view();
    const bool zero_copy = pass.symbol_bytes % 64 == 0;
    for (std::size_t j = 0; j < cfg.n; ++j) {
      const io::Result& r = sl.results[j];
      if (r.error != 0 || r.bytes != pass.padded_chunk) continue;
      if (pass.rebuild && *pass.rebuild == j) continue;
      for (std::size_t i = 0; i < cfg.r; ++i) {
        if (sl.mask[i * cfg.n + j]) continue;
        if (zero_copy)
          view.stored[i * cfg.n + j] =
              std::span(sl.chunks[j]->data + i * pass.symbol_bytes, pass.symbol_bytes);
        else if (!pass.rebuild)  // rebuild staged these warm in verify_chunk
          std::memcpy(sl.buf->symbol(i, j).data(),
                      sl.chunks[j]->data + i * pass.symbol_bytes, pass.symbol_bytes);
      }
    }
    own_jobs_.fetch_add(1, std::memory_order_relaxed);
    // The degraded read resolves through the session plan cache: a rebuild
    // (or a recurring corruption shape) pays one inversion for the epoch.
    codec_.submit_decode(view, sl.mask,
                         [this, &pass, slot = std::move(slot), stripe](bool ok) mutable {
                           own_jobs_.fetch_sub(1, std::memory_order_relaxed);
                           if (!ok) {
                             // Outside coverage: counted, never thrown.
                             pass.unrecoverable.fetch_add(1, std::memory_order_relaxed);
                             slot.reset();
                             pass.retire();
                             return;
                           }
                           repair_stripe(pass, std::move(slot), stripe);
                         });
  } catch (const std::exception& e) {
    pass.fatal(std::string("scrub verify failed: ") + e.what());
    slot.reset();
    pass.retire();
  }
}

void Scrubber::repair_stripe(Pass& pass, WorkspacePool<Slot>::Lease slot,
                             std::size_t stripe) {
  try {
    const StairConfig& cfg = pass.store->cfg;
    Slot& sl = *slot;
    // Re-verify before rewrite: every reconstructed sector must match its
    // manifest checksum, or the repair writes nothing — a scrubber must
    // never "repair" a store with bytes it cannot prove.
    for (std::size_t j = 0; j < cfg.n; ++j)
      for (std::size_t i = 0; i < cfg.r; ++i)
        if (sl.mask[i * cfg.n + j] &&
            content_hash64(sl.buf->symbol(i, j)) !=
                pass.store->sector_checksum(stripe, j, i)) {
          pass.repair_failed.fetch_add(1, std::memory_order_relaxed);
          slot.reset();
          pass.retire();
          return;
        }

    // Plan the write set per device: a fully-masked column rewrites its
    // chunk in one transfer (gathered into the chunk staging), scattered
    // sector hits are patched individually straight from the stripe buffer.
    struct WriteOp {
      int fd;
      std::uint64_t offset;
      std::span<const std::uint8_t> bytes;
      std::size_t sectors;
    };
    std::vector<WriteOp> writes;
    for (std::size_t j = 0; j < cfg.n; ++j) {
      std::size_t masked = 0;
      for (std::size_t i = 0; i < cfg.r; ++i) masked += sl.mask[i * cfg.n + j];
      if (masked == 0) continue;
      int fd;
      {
        std::lock_guard<std::mutex> lock(pass.fd_mu);
        if (pass.write_fds[j] == -2)
          pass.write_fds[j] = engine_->open_update(StripeStore::device_path(pass.dir, j));
        fd = pass.write_fds[j];
      }
      if (fd < 0) {
        pass.repair_failed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (masked == cfg.r) {
        // Whole chunk in one padded transfer from the aligned staging (pad
        // tail zeroed — the store is byte-identical across modes), which is
        // also what keeps the rebuild target's O_DIRECT fd happy.
        IoBuffer& chunk = *sl.chunks[j];
        for (std::size_t i = 0; i < cfg.r; ++i)
          std::memcpy(chunk.data + i * pass.symbol_bytes, sl.buf->symbol(i, j).data(),
                      pass.symbol_bytes);
        if (pass.padded_chunk > pass.chunk_bytes)
          std::memset(chunk.data + pass.chunk_bytes, 0,
                      pass.padded_chunk - pass.chunk_bytes);
        writes.push_back({fd, pass.store->chunk_offset(stripe),
                          std::span<const std::uint8_t>(chunk.data, pass.padded_chunk),
                          cfg.r});
      } else {
        for (std::size_t i = 0; i < cfg.r; ++i)
          if (sl.mask[i * cfg.n + j])
            writes.push_back({fd,
                              pass.store->chunk_offset(stripe) + i * pass.symbol_bytes,
                              std::span<const std::uint8_t>(sl.buf->symbol(i, j)), 1});
      }
    }
    if (writes.empty()) {
      slot.reset();
      pass.retire();
      return;
    }
    sl.pending.store(writes.size(), std::memory_order_relaxed);
    io::PhaseScope phase(io::IoPhase::kRepair);
    for (const WriteOp& w : writes) {
      engine_->write(w.fd, w.offset, w.bytes,
                     [this, &pass, slot, len = w.bytes.size(),
                      sectors = w.sectors](const io::Result& r) mutable {
                       pass.bytes_written.fetch_add(r.bytes, std::memory_order_relaxed);
                       if (r.error || r.bytes < len)
                         pass.repair_failed.fetch_add(1, std::memory_order_relaxed);
                       else
                         pass.repaired.fetch_add(sectors, std::memory_order_relaxed);
                       if (slot->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                         slot.reset();
                         pass.retire();
                       }
                     });
    }
  } catch (const std::exception& e) {
    pass.fatal(std::string("scrub repair failed: ") + e.what());
    slot.reset();
    pass.retire();
  }
}

void Scrubber::start(const std::string& store_dir, std::chrono::milliseconds pass_gap) {
  if (loop_.joinable()) return;
  stop_.store(false);
  loop_ = std::thread([this, store_dir, pass_gap] {
    while (!stop_.load()) {
      ScrubReport rep = run_pass(store_dir, std::nullopt);
      {
        std::lock_guard<std::mutex> lock(report_mu_);
        background_report_.accumulate(rep);
      }
      if (rep.completed) passes_completed_.fetch_add(1, std::memory_order_relaxed);
      const auto deadline = std::chrono::steady_clock::now() + pass_gap;
      while (!stop_.load() && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
}

ScrubReport Scrubber::stop() {
  stop_.store(true);
  if (loop_.joinable()) loop_.join();
  stop_.store(false);
  std::lock_guard<std::mutex> lock(report_mu_);
  ScrubReport rep = background_report_;
  background_report_ = ScrubReport{};
  background_report_.ok = background_report_.completed = true;
  return rep;
}

ScrubReport Scrubber::background_report() const {
  std::lock_guard<std::mutex> lock(report_mu_);
  return background_report_;
}

}  // namespace stair
