// Figure 9: Mult_XORs per stripe of the three encoding methods (standard,
// upstairs, downstairs) for every e with s = 4, at n = 8, m = 2 and
// r in {8, 16, 24, 32}.
//
// Expected shape (§5.3): upstairs/downstairs far below standard in most
// configurations; upstairs cost grows with e_max, downstairs with m'; small
// m' favours downstairs, large m' upstairs.

#include <iostream>

#include "bench_util.h"

using namespace stair;
using namespace stair::bench;

int main() {
  const std::size_t n = 8, m = 2, s = 4;
  std::cout << "=== Figure 9: encoding complexity (Mult_XORs per stripe), n=" << n
            << " m=" << m << " s=" << s << " ===\n\n";

  for (std::size_t r : {8, 16, 24, 32}) {
    TablePrinter table("r = " + std::to_string(r));
    table.set_header({"e", "standard", "upstairs", "downstairs", "chosen"});
    for (const auto& e : enumerate_coverage_vectors(s, s, s)) {
      const StairConfig cfg{.n = n, .r = r, .m = m, .e = e};
      const StairCode code(cfg);
      const EncodingCosts costs = analyze_costs(code);
      const char* chosen = costs.best == EncodingMethod::kStandard ? "standard"
                           : costs.best == EncodingMethod::kUpstairs ? "upstairs"
                                                                     : "downstairs";
      table.add_row({e_label(e), std::to_string(costs.standard),
                     std::to_string(costs.upstairs), std::to_string(costs.downstairs),
                     chosen});
    }
    table.print(std::cout);
  }

  std::cout << "Shape check: for e=(4) (m'=1) downstairs must win; for e=(1,1,1,1)\n"
               "(m'=4) upstairs must win; both must beat standard for most e.\n";
  return 0;
}
