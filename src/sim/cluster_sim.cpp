#include "sim/cluster_sim.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include "sim/scrubber.h"
#include "stair/io_pipeline.h"
#include "stair/scrub_repair.h"
#include "util/rng.h"

namespace stair::sim {
namespace {

namespace fs = std::filesystem;

constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kPiB = 1125899906842624.0;  // 2^50
constexpr double kHoursPerYear = 8766.0;
constexpr double kInf = std::numeric_limits<double>::infinity();

double bytes_per_hour(double mbps) { return mbps * kMiB * 3600.0; }

/// Latest scrub-pass completion at or before `t` for an array whose passes
/// land at offset + k * period (k >= 0), or -inf when none has happened yet.
double last_scrub_before(double t, double offset, double period) {
  if (t < offset) return -kInf;
  if (!(period > 0.0)) return t;  // continuous scrubbing: always just cleaned
  return offset + std::floor((t - offset) / period) * period;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = std::min(v.size() - 1,
                            static_cast<std::size_t>(q / 100.0 * static_cast<double>(v.size())));
  return v[idx];
}

void flip_on_disk(const std::string& path, std::uint64_t offset, std::size_t len) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) throw std::runtime_error("cluster_sim: cannot open " + path);
  std::vector<char> buf(len);
  f.seekg(static_cast<std::streamoff>(offset));
  f.read(buf.data(), static_cast<std::streamsize>(len));
  for (char& c : buf) c = static_cast<char>(c ^ 0xA5);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(buf.data(), static_cast<std::streamsize>(len));
  if (!f) throw std::runtime_error("cluster_sim: cannot corrupt " + path);
}

/// Clears latent sectors off `mask` (bottom row up, skipping the failed
/// device columns) until the pattern is back inside the coverage — the
/// "one error fewer" sibling of a loss mask, used to prove the real repair
/// path recovers what coverage says it should.
std::vector<bool> recoverable_variant(const StairCode& code, std::vector<bool> mask,
                                      const std::vector<std::size_t>& failed_devices) {
  const std::size_t n = code.config().n, r = code.config().r;
  std::vector<bool> device_failed(n, false);
  for (std::size_t d : failed_devices) device_failed[d] = true;
  if (code.is_recoverable(mask)) return mask;
  for (std::size_t i = r; i-- > 0;) {
    for (std::size_t j = 0; j < n; ++j) {
      if (device_failed[j] || !mask[i * n + j]) continue;
      mask[i * n + j] = false;
      if (code.is_recoverable(mask)) return mask;
    }
  }
  return mask;  // failed-device columns only: recoverable for any m >= 1 code
}

}  // namespace

void ValidationStats::finalize() {
  calm_samples = calm_ms.size();
  storm_samples = storm_ms.size();
  calm_p50_ms = percentile(calm_ms, 50.0);
  calm_p99_ms = percentile(calm_ms, 99.0);
  storm_p50_ms = percentile(storm_ms, 50.0);
  storm_p99_ms = percentile(storm_ms, 99.0);
}

ClusterSim::ClusterSim(ClusterConfig config) : config_(std::move(config)) {
  if (config_.arrays == 0) throw std::invalid_argument("cluster_sim: arrays must be > 0");
  if (config_.stripes_per_array == 0)
    throw std::invalid_argument("cluster_sim: stripes_per_array must be > 0");
  if (!(config_.device_bytes > 0.0))
    throw std::invalid_argument("cluster_sim: device_bytes must be > 0");
  if (!(config_.mttf_hours > 0.0))
    throw std::invalid_argument("cluster_sim: mttf_hours must be > 0");
  if (!(config_.repair_mbps_per_array > 0.0))
    throw std::invalid_argument("cluster_sim: repair_mbps_per_array must be > 0");
  if (!(config_.sim_hours > 0.0))
    throw std::invalid_argument("cluster_sim: sim_hours must be > 0");
}

reliability::PredictionQuery ClusterSim::prediction_query() const {
  const StairConfig& c = config_.code;
  reliability::PredictionQuery q;
  q.system.n = c.n;
  q.system.r = c.r;
  q.system.m = c.m;
  q.system.mttf_hours = config_.mttf_hours;
  q.system.device_bytes = config_.device_bytes;
  // Eq. 11 derives stripes-per-array as C / (S * r); invert that so the
  // analytic array has exactly the simulated stripe count.
  q.system.sector_bytes =
      config_.device_bytes / (static_cast<double>(config_.stripes_per_array) *
                              static_cast<double>(c.r));
  // Deterministic solo rebuild: the renewal model's T.
  q.system.rebuild_hours =
      config_.device_bytes / bytes_per_hour(config_.repair_mbps_per_array);
  q.system.user_bytes = c.storage_efficiency() * static_cast<double>(c.n) *
                        config_.device_bytes * static_cast<double>(config_.arrays);
  q.e = c.e;
  q.correlated = config_.sector_model == SectorModel::kCorrelated;
  q.b1 = config_.b1;
  q.alpha = config_.alpha;
  if (config_.fixed_p_sec >= 0.0) {
    q.p_sec = config_.fixed_p_sec;
  } else if (config_.scrub_period_hours < 0.0) {
    // No scrubbing: errors age for the whole run; the stationary stand-in is
    // a pass that never comes, i.e. a period of sim_hours.
    q.p_sec = scrubbed_p_sec(config_.latent_error_rate_per_hour, config_.sim_hours);
  } else {
    const double period = effective_scrub_period(
        config_.scrub_period_hours,
        static_cast<double>(config_.code.n) * config_.device_bytes,
        config_.scrub_scan_mbps);
    q.p_sec = scrubbed_p_sec(config_.latent_error_rate_per_hour, period);
  }
  return q;
}

std::optional<CriticalLoss> ClusterSim::sample_critical_loss(
    const StairCode& code, std::size_t stripes, InjectorParams sector,
    const std::vector<std::size_t>& failed_devices, std::uint64_t seed) {
  const std::size_t n = code.config().n, r = code.config().r;
  FailureInjector injector(sector, seed);
  if (!(sector.p_sec > 0.0)) {
    // No latent errors: every stripe draws the identical device-only mask,
    // so one recoverability check covers the array.
    auto mask = injector.sample_stripe_mask(n, r, failed_devices);
    if (!code.is_recoverable(mask)) return CriticalLoss{0, std::move(mask)};
    return std::nullopt;
  }
  for (std::size_t k = 0; k < stripes; ++k) {
    auto mask = injector.sample_stripe_mask(n, r, failed_devices);
    if (!code.is_recoverable(mask)) return CriticalLoss{k, std::move(mask)};
  }
  return std::nullopt;
}

std::optional<CriticalLoss> ClusterSim::replay_loss(const LossEvent& event) const {
  if (event.kind != LossKind::kSectorLoss) return std::nullopt;
  const StairCode code(config_.code);
  InjectorParams sector;
  sector.model = config_.sector_model;
  sector.p_sec = event.p_latent;
  sector.b1 = config_.b1;
  sector.alpha = config_.alpha;
  return sample_critical_loss(code, config_.stripes_per_array, sector,
                              event.failed_devices, event.episode_seed);
}

ClusterReport ClusterSim::run() {
  const ClusterConfig& cfg = config_;
  const StairCode code(cfg.code);
  const std::size_t n = cfg.code.n;
  Rng rng(cfg.seed);

  ClusterReport report;
  report.seed = cfg.seed;
  report.sim_hours = cfg.sim_hours;

  const bool scrub_enabled = cfg.scrub_period_hours >= 0.0;
  const double scrub_period =
      scrub_enabled ? effective_scrub_period(
                          cfg.scrub_period_hours,
                          static_cast<double>(n) * cfg.device_bytes,
                          cfg.scrub_scan_mbps)
                    : -1.0;
  report.effective_scrub_period_hours = scrub_enabled ? scrub_period : -1.0;

  struct ArrayState {
    bool rebuilding = false;
    double next_fail = 0.0;       // absolute hours of the next device failure
    std::size_t failed_device = kNoDevice;
    double remaining_bytes = 0.0; // rebuild work left
    double last_clean = 0.0;      // last rebuild end (latent age anchor)
    double scrub_offset = 0.0;    // this array's scrub phase
  };
  std::vector<ArrayState> arrays(cfg.arrays);
  // All master-Rng draws happen in deterministic event order; init is pass 1.
  for (auto& a : arrays) {
    a.scrub_offset = scrub_enabled && scrub_period > 0.0
                         ? rng.next_double() * scrub_period
                         : 0.0;
    a.next_fail = rng.next_exponential(cfg.mttf_hours / static_cast<double>(n));
  }

  std::vector<InjectedFailure> injected = cfg.injected_failures;
  std::stable_sort(injected.begin(), injected.end(),
                   [](const InjectedFailure& x, const InjectedFailure& y) {
                     return x.time_hours < y.time_hours;
                   });
  std::size_t next_injected = 0;

  std::size_t rebuilding_count = 0;
  double share_mbps = cfg.repair_mbps_per_array;  // per-rebuild share (equal split)
  auto recompute_share = [&] {
    if (rebuilding_count == 0) return;
    share_mbps = cfg.repair_cap_mbps > 0.0
                     ? std::min(cfg.repair_mbps_per_array,
                                cfg.repair_cap_mbps / static_cast<double>(rebuilding_count))
                     : cfg.repair_mbps_per_array;
    report.max_concurrent_rebuilds =
        std::max(report.max_concurrent_rebuilds, rebuilding_count);
    report.max_aggregate_repair_mbps =
        std::max(report.max_aggregate_repair_mbps,
                 share_mbps * static_cast<double>(rebuilding_count));
  };

  double now = 0.0;
  auto advance_work = [&](double t) {
    if (rebuilding_count > 0 && t > now) {
      const double work = bytes_per_hour(share_mbps) * (t - now);
      for (auto& a : arrays) {
        if (!a.rebuilding) continue;
        const double done = std::min(work, a.remaining_bytes);
        a.remaining_bytes -= done;
        // n-1 chunk reads plus 1 chunk write per rebuilt byte.
        report.repair_traffic_bytes += done * static_cast<double>(n);
      }
    }
    now = t;
  };

  char line[256];
  auto trace = [&](const char* fmt, auto... args) {
    if (!cfg.record_trace || report.trace.size() >= cfg.trace_limit) return;
    std::snprintf(line, sizeof line, fmt, args...);
    report.trace.emplace_back(line);
  };

  const double complete_eps = 1e-6 * cfg.device_bytes;
  auto mask_popcount = [](const std::vector<bool>& mask) {
    std::size_t c = 0;
    for (bool b : mask) c += b;
    return c;
  };

  // One device of array `a` fails at `now` (natural or injected).
  auto on_failure = [&](std::size_t ai, std::size_t device) {
    ArrayState& a = arrays[ai];
    if (!a.rebuilding) {
      a.rebuilding = true;
      a.failed_device = device != kNoDevice ? device : rng.next_below(n);
      a.remaining_bytes = cfg.device_bytes;
      ++rebuilding_count;
      recompute_share();
      ++report.device_failures;
      a.next_fail = now + rng.next_exponential(cfg.mttf_hours /
                                               static_cast<double>(n - 1));
      trace("t=%.9f fail array=%zu dev=%zu rebuilding=%zu", now, ai,
            a.failed_device, rebuilding_count);
      return;
    }
    // Second failure mid-rebuild: device overflow (the m = 1 race lost).
    std::size_t second = device;
    if (second == kNoDevice) {
      second = rng.next_below(n - 1);
      if (second >= a.failed_device) ++second;
    }
    ++report.device_failures;
    LossEvent loss;
    loss.time_hours = now;
    loss.array = ai;
    loss.kind = LossKind::kDeviceOverflow;
    loss.failed_devices = {a.failed_device, second};
    report.losses.push_back(std::move(loss));
    ++report.device_overflow_losses;
    trace("t=%.9f overflow array=%zu dev=%zu,%zu", now, ai, a.failed_device, second);
    // The array is restored (fresh data) and re-enters the healthy state.
    a.rebuilding = false;
    a.failed_device = kNoDevice;
    a.remaining_bytes = 0.0;
    a.last_clean = now;
    --rebuilding_count;
    recompute_share();
    a.next_fail = now + rng.next_exponential(cfg.mttf_hours / static_cast<double>(n));
  };

  auto on_rebuild_complete = [&](std::size_t ai) {
    ArrayState& a = arrays[ai];
    ++report.rebuilds_completed;
    report.rebuilt_bytes += cfg.device_bytes;

    double p_latent = 0.0;
    if (cfg.fixed_p_sec >= 0.0) {
      p_latent = cfg.fixed_p_sec;
    } else if (cfg.latent_error_rate_per_hour > 0.0) {
      double anchor = a.last_clean;
      if (scrub_enabled)
        anchor = std::max(anchor,
                          last_scrub_before(now, a.scrub_offset, scrub_period));
      const double age = std::max(0.0, now - anchor);
      p_latent = -std::expm1(-cfg.latent_error_rate_per_hour * age);
    }
    // The child seed is drawn unconditionally so the master stream does not
    // depend on whether the draw is skippable.
    const std::uint64_t episode_seed = rng.next_u64();
    std::optional<CriticalLoss> loss;
    if (p_latent > 0.0 || cfg.fixed_p_sec > 0.0) {
      InjectorParams sector;
      sector.model = cfg.sector_model;
      sector.p_sec = p_latent;
      sector.b1 = cfg.b1;
      sector.alpha = cfg.alpha;
      loss = sample_critical_loss(code, cfg.stripes_per_array, sector,
                                  {a.failed_device}, episode_seed);
    }
    if (loss) {
      LossEvent ev;
      ev.time_hours = now;
      ev.array = ai;
      ev.kind = LossKind::kSectorLoss;
      ev.failed_devices = {a.failed_device};
      ev.episode_seed = episode_seed;
      ev.p_latent = p_latent;
      ev.stripe = loss->stripe;
      ev.mask = loss->mask;
      trace("t=%.9f sector-loss array=%zu dev=%zu stripe=%zu lost=%zu seed=%llu",
            now, ai, a.failed_device, ev.stripe, mask_popcount(ev.mask),
            static_cast<unsigned long long>(episode_seed));
      report.losses.push_back(std::move(ev));
      ++report.sector_losses;
    } else {
      trace("t=%.9f rebuilt array=%zu dev=%zu p_latent=%.3e", now, ai,
            a.failed_device, p_latent);
    }
    a.rebuilding = false;
    a.failed_device = kNoDevice;
    a.remaining_bytes = 0.0;
    a.last_clean = now;  // the rebuild pass re-verified the survivors
    --rebuilding_count;
    recompute_share();
    a.next_fail = now + rng.next_exponential(cfg.mttf_hours / static_cast<double>(n));
  };

  while (true) {
    double t_fail = kInf;
    std::size_t fail_array = 0;
    double min_remaining = kInf;
    for (std::size_t i = 0; i < arrays.size(); ++i) {
      if (arrays[i].next_fail < t_fail) {
        t_fail = arrays[i].next_fail;
        fail_array = i;
      }
      if (arrays[i].rebuilding)
        min_remaining = std::min(min_remaining, arrays[i].remaining_bytes);
    }
    const double t_complete =
        rebuilding_count > 0
            ? now + std::max(0.0, min_remaining) / bytes_per_hour(share_mbps)
            : kInf;
    double t_injected = kInf;
    while (next_injected < injected.size() &&
           injected[next_injected].array >= cfg.arrays)
      ++next_injected;  // out-of-range trace entries are ignored
    if (next_injected < injected.size())
      t_injected = injected[next_injected].time_hours;

    const double t_next =
        std::min({t_fail, t_complete, t_injected, cfg.sim_hours});
    advance_work(t_next);
    if (t_next >= cfg.sim_hours) break;

    if (t_injected <= t_complete && t_injected <= t_fail) {
      const InjectedFailure& inj = injected[next_injected++];
      on_failure(inj.array, inj.device);
    } else if (t_complete <= t_fail) {
      // Everything that reached zero work completes at this instant.
      for (std::size_t i = 0; i < arrays.size(); ++i)
        if (arrays[i].rebuilding && arrays[i].remaining_bytes <= complete_eps)
          on_rebuild_complete(i);
    } else {
      on_failure(fail_array, kNoDevice);
    }
  }

  // Roll-ups.
  report.loss_events = report.losses.size();
  if (scrub_enabled && scrub_period > 0.0) {
    for (const auto& a : arrays) {
      if (cfg.sim_hours < a.scrub_offset) continue;
      const double passes =
          std::floor((cfg.sim_hours - a.scrub_offset) / scrub_period) + 1.0;
      report.scrub_passes += passes;
      report.scrub_bytes += passes * static_cast<double>(n) * cfg.device_bytes;
    }
  }
  report.repair_amplification =
      report.rebuilt_bytes > 0.0
          ? report.repair_traffic_bytes / report.rebuilt_bytes
          : 0.0;

  const double user_bytes_per_array = cfg.code.storage_efficiency() *
                                      static_cast<double>(n) * cfg.device_bytes;
  report.user_pb_years = static_cast<double>(cfg.arrays) * user_bytes_per_array /
                         kPiB * cfg.sim_hours / kHoursPerYear;
  report.losses_per_pb_year =
      report.user_pb_years > 0.0
          ? static_cast<double>(report.loss_events) / report.user_pb_years
          : 0.0;

  // Analytic comparison (the m = 1 restriction of §7 applies; other codes
  // simulate fine but compare against an empty prediction).
  try {
    report.prediction = reliability::predict_reliability(prediction_query());
    const double expected =
        std::isfinite(report.prediction.mttdl_renewal_hours)
            ? static_cast<double>(cfg.arrays) * cfg.sim_hours /
                  report.prediction.mttdl_renewal_hours
            : 0.0;
    report.band = reliability::poisson_band(expected);
    report.within_band = reliability::within_band(
        report.band, static_cast<double>(report.loss_events));
  } catch (const std::exception&) {
    report.band = reliability::poisson_band(0.0);
    report.within_band = false;
  }

  if (cfg.validation == ValidationMode::kDataPath) {
    for (const auto& ev : report.losses) {
      if (report.validation.events_checked >= cfg.max_validated_events) break;
      if (ev.kind != LossKind::kSectorLoss) continue;
      validate_on_data_path(ev, report.validation);
    }
    report.validation.finalize();
  }
  return report;
}

void ClusterSim::validate_on_data_path(const LossEvent& event,
                                       ValidationStats& stats,
                                       const std::string& scratch_dir) const {
  const ClusterConfig& cfg = config_;
  const fs::path base =
      scratch_dir.empty() ? fs::temp_directory_path() : fs::path(scratch_dir);
  const fs::path dir =
      base / ("stair_cluster_sim_" + std::to_string(::getpid()) + "_" +
              std::to_string(event.episode_seed));
  try {
    fs::remove_all(dir);
    fs::create_directories(dir);

    const StairCode code(cfg.code);
    const std::size_t n = cfg.code.n, r = cfg.code.r;
    const std::size_t symbol = cfg.validation_symbol_bytes;
    const std::size_t stripes = std::max<std::size_t>(cfg.validation_stripes, 2);
    const std::size_t stripe_data = cfg.code.data_symbols_inside() * symbol;

    // A real store holding seeded random bytes.
    std::vector<std::uint8_t> input(stripes * stripe_data);
    Rng data_rng(cfg.seed ^ event.episode_seed);
    data_rng.fill(input);
    const fs::path input_path = dir / "input.bin";
    {
      std::ofstream out(input_path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(input.data()),
                static_cast<std::streamsize>(input.size()));
      if (!out) throw std::runtime_error("cluster_sim: cannot write input");
    }
    Codec codec(cfg.code);
    IoPipeline::Options popt;
    popt.symbol_bytes = symbol;
    IoPipeline pipeline(codec, popt);
    const std::string sdir = (dir / "store").string();
    auto enc = pipeline.encode_file(input_path.string(), sdir);
    if (!enc.ok) throw std::runtime_error("cluster_sim: encode failed: " + enc.error);
    const StripeStore store = StripeStore::load(sdir);

    // Calm-store latency baseline.
    Rng probe_rng(event.episode_seed ^ 0x5ca1ab1eULL);
    std::vector<std::uint8_t> out(std::min<std::size_t>(4096, input.size()));
    auto probe = [&](std::vector<double>& samples) {
      const std::uint64_t off = probe_rng.next_below(input.size() - out.size() + 1);
      const auto t0 = std::chrono::steady_clock::now();
      auto st = pipeline.read_range(store, sdir, off, out);
      const auto t1 = std::chrono::steady_clock::now();
      if (st.ok)
        samples.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
      return st.ok;
    };
    for (int i = 0; i < 32; ++i)
      if (!probe(stats.calm_ms)) ++stats.mismatches;

    // Phase A: the event's recoverable sibling — failed device gone, latent
    // sectors short of the coverage edge — must rebuild and repair to a
    // byte-exact store while foreground reads keep being served.
    const std::size_t failed = event.failed_devices.front();
    const auto soft_mask = recoverable_variant(code, event.mask, event.failed_devices);
    auto corrupt_stripe = [&](std::size_t stripe, const std::vector<bool>& mask) {
      for (std::size_t i = 0; i < r; ++i)
        for (std::size_t j = 0; j < n; ++j) {
          if (!mask[i * n + j] || j == failed) continue;
          flip_on_disk(StripeStore::device_path(sdir, j),
                       store.chunk_offset(stripe) + i * symbol, symbol);
        }
    };
    fs::remove(StripeStore::device_path(sdir, failed));
    corrupt_stripe(0, soft_mask);

    // Pace the rebuild so the storm window is wide enough to sample, and run
    // it through the cluster-wide governor when one is configured.
    const double scan_bytes =
        static_cast<double>(stripes) * static_cast<double>(n) *
        static_cast<double>(store.padded_chunk_bytes());
    ScrubOptions sopt;
    sopt.rate_mbps = std::max(0.5, scan_bytes / kMiB / 0.25);
    sopt.burst_bytes = static_cast<double>(store.padded_chunk_bytes());
    SharedBandwidth shared(cfg.repair_cap_mbps);
    if (cfg.repair_cap_mbps > 0.0) sopt.shared_bandwidth = &shared;
    Scrubber scrubber(codec, sopt);

    ScrubReport rebuilt;
    std::atomic<bool> done{false};
    const auto r0 = std::chrono::steady_clock::now();
    std::thread rebuilder([&] {
      rebuilt = scrubber.rebuild_device(sdir, failed);
      done.store(true, std::memory_order_release);
    });
    while (!done.load(std::memory_order_acquire) && stats.storm_ms.size() < 20000)
      if (!probe(stats.storm_ms)) ++stats.mismatches;
    rebuilder.join();
    const double rebuild_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - r0).count();
    if (rebuild_s > 0.0)
      stats.rebuild_mbps = static_cast<double>(rebuilt.bytes_read +
                                               rebuilt.bytes_written) /
                           kMiB / rebuild_s;
    stats.sectors_repaired += rebuilt.sectors_repaired;
    if (!rebuilt.ok || rebuilt.stripes_unrecoverable != 0) ++stats.mismatches;

    // The recovered store must decode byte-exactly.
    const fs::path decoded = dir / "decoded.bin";
    auto dec = pipeline.decode_file(sdir, decoded.string());
    std::vector<std::uint8_t> round;
    {
      std::ifstream in(decoded, std::ios::binary);
      round.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    }
    if (!dec.ok || round != input) ++stats.mismatches;

    // Phase B: the loss mask itself — coverage called it unrecoverable, so
    // the production path must agree (fail that stripe, not "repair" it).
    const std::size_t loss_stripe = event.stripe % stripes;
    fs::remove(StripeStore::device_path(sdir, failed));
    corrupt_stripe(loss_stripe, event.mask);
    Scrubber fast(codec);
    auto verdict = fast.rebuild_device(sdir, failed);
    if (verdict.stripes_unrecoverable == 0) ++stats.mismatches;

    ++stats.events_checked;
  } catch (const std::exception& e) {
    if (stats.error.empty()) stats.error = e.what();
    ++stats.mismatches;
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace stair::sim
