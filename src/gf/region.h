// Region (bulk) Galois-field operations — the Mult_XOR primitive of the paper.
//
// Mult_XOR(R1, R2, a): multiply region R1 by the w-bit constant a in GF(2^w)
// and XOR the product into region R2 (paper §5.3, after [Plank FAST'13]).
// All erasure-code throughput in this library reduces to calls here.
//
// Layouts: a region is an array of w-bit symbols, in one of two layouts
// (carried per call; the buffer itself is just bytes):
//
//  * kStandard — the interchange format. For w = 8 plain bytes; for
//    w = 16/32, little-endian words (region sizes must be multiples of w/8
//    bytes). For w = 4, two field elements are packed per byte and the
//    kernel operates on both nibbles at once.
//
//  * kAltmap — the SIMD-friendly planar format for the wide widths
//    (GF-Complete's SPLIT altmap idea). Each 64-byte block is transposed so
//    equal-significance bytes are contiguous:
//      w = 16: bytes [0,32) hold the low bytes of the block's 32 symbols in
//              order, bytes [32,64) the high bytes;
//      w = 32: bytes [16b, 16b+16) hold byte b of the block's 16 symbols.
//    The trailing (size mod 64) bytes of a region stay in standard layout,
//    and for w = 4/8 the two layouts coincide (byte-linear widths), so
//    conversion is exact for every valid region size. In altmap the nibbles
//    of a symbol sit in per-byte lanes, so the w = 16/32 kernels run the
//    same pshufb split-table (or GFNI affine) chain as w = 8 instead of the
//    partially-vectorized (w = 16) or scalar wide-table (w = 32) standard
//    paths.
//
// Fast paths: every (layout, word size) pair dispatches to runtime-selected
// kernels (scalar / SSSE3 pshufb / AVX2 vpshufb / GFNI gf2p8affineqb) with
// per-coefficient tables cached across calls. Backend selection, overrides,
// and the kernel cache live in gf/kernel.h; all backends produce
// bit-identical results in both layouts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "gf/gf.h"

namespace stair::gf {

/// How a region's symbol bytes are arranged (see the header comment).
/// Conversion granularity is the 64-byte block, so any 64-byte-granular
/// range of a region converts independently — layout commutes with the
/// byte-range slicing the parallel engine uses.
enum class RegionLayout : std::uint8_t { kStandard = 0, kAltmap = 1 };

/// "standard" / "altmap".
const char* layout_name(RegionLayout layout);

/// Altmap transform granularity: whole 64-byte blocks; shorter tails keep
/// the standard layout.
inline constexpr std::size_t kAltmapBlockBytes = 64;

/// dst[i] ^= a * src[i] for every symbol i (the paper's Mult_XOR). Both
/// regions must be in `layout`. src and dst must be the same size, a
/// multiple of the symbol width.
void mult_xor_region(const Field& f, std::uint32_t a,
                     std::span<const std::uint8_t> src, std::span<std::uint8_t> dst,
                     RegionLayout layout = RegionLayout::kStandard);

/// dst[i] = a * src[i] (overwrites dst; never reads it, so exact aliasing
/// src == dst is allowed — partial overlap is not).
void mult_region(const Field& f, std::uint32_t a,
                 std::span<const std::uint8_t> src, std::span<std::uint8_t> dst,
                 RegionLayout layout = RegionLayout::kStandard);

/// dst[i] ^= src[i] — the a = 1 special case, kept separate because it
/// needs no tables and vectorizes trivially. XOR is pointwise on bytes, so
/// it is layout-agnostic.
void xor_region(std::span<const std::uint8_t> src, std::span<std::uint8_t> dst);

/// In-place layout conversion of `data` (size a multiple of w/8). A no-op
/// when from == to and for the byte-linear widths (w = 4/8, where the
/// layouts coincide). from_altmap(to_altmap(x)) == x for every region size.
void convert_region(int w, RegionLayout from, RegionLayout to,
                    std::span<std::uint8_t> data);

/// The layout the active backend replays fastest at width `w` — kAltmap for
/// w = 16/32 on SIMD backends (standard w = 32 is the scalar wide-table
/// loop even there), kStandard otherwise. This is what the compiled-replay
/// layer uses to pick the internal layout; force_layout() or the
/// STAIR_GF_LAYOUT environment variable (standard | altmap) pin the answer
/// for tests and benchmarks, reset_layout() reverts to auto.
RegionLayout preferred_layout(int w);
void force_layout(RegionLayout layout);
void reset_layout();

/// True while the layout choice is pinned — by force_layout() or the
/// STAIR_GF_LAYOUT environment variable. Measured-policy layers (the
/// autotuner's per-code layout selection) must defer to a pin, exactly as
/// preferred_layout does.
bool layout_forced();

/// True if the active backend (see gf/kernel.h) runs a vectorized Mult_XOR
/// at width `w` in that width's preferred layout. Replaces the misleading
/// has_simd_w8(): since the altmap kernels, SIMD coverage is per-width —
/// e.g. standard-layout w = 32 is scalar on every backend, altmap w = 32 is
/// vectorized on all SIMD backends.
bool has_simd(int w);

/// Cache-aware byte-slice size for splitting region work across
/// `participants` threads. Region ops are pointwise (and altmap blocks are
/// 64-byte-aligned), so any 64-byte-granular slicing is exact; this picks
/// the slice so that
///  * there are at least ~2 slices per participant (load balance without a
///    work-stealing scheduler), and
///  * one slice of every one of the `touched_regions` regions a replay
///    references fits an L2-sized budget together (STAIR_STRIP_BYTES
///    overrides; same budget compiled-schedule strip-mining uses), so a
///    slice's working set stays cache-resident instead of streaming the
///    whole stripe through L3 per thread.
/// Returns a multiple of 64 in [64, region_bytes] (region_bytes if smaller).
std::size_t cache_aware_slice_bytes(std::size_t region_bytes, std::size_t participants,
                                    std::size_t touched_regions);

/// The cache budget behind cache_aware_slice_bytes and compiled-schedule
/// strip-mining: the combined footprint allowed for one strip of every
/// referenced region. Resolution order: the STAIR_STRIP_BYTES environment
/// variable (read once) > a budget installed via set_region_cache_budget()
/// (the autotuner's measured value) > half the detected per-core L2
/// (sysfs/CPUID), falling back to half of 1.5 MiB when detection fails —
/// half so split tables and bookkeeping fit alongside the strips.
std::size_t region_cache_budget();

/// Installs a measured cache budget (bytes; 0 reverts to the detected
/// default). The environment override still wins. This is the hook the
/// stair-layer autotuner drives — gf/ stays independent of it.
void set_region_cache_budget(std::size_t bytes);

/// Per-core L2 data-cache size detected from sysfs (Linux) or CPUID
/// deterministic cache parameters; 0 when neither reports one. Exposed so
/// tests and benches can report what the budget default was derived from.
std::size_t detected_l2_cache_bytes();

}  // namespace stair::gf
