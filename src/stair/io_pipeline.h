// IoPipeline — async stripe IO feeding the Codec session.
//
// The Codec (stair/codec.h) turned the coding path into a stripe-batch
// pipeline, but it still assumed every stripe was resident in memory. This
// layer closes the remaining seam named by the roadmap: chunk-file IO runs
// through an async engine (util/stripe_io.h) with a bounded ring of leased
// stripe slots, and IO completions chain directly into submit_encode /
// submit_decode (and compute completions chain back into writes), so disk
// work for stripe k+d overlaps region work for stripe k with no thread ever
// blocked between the stages:
//
//   encode:  read(input chunk k) ──▶ submit_encode ──▶ write(n device chunks)
//   decode:  read(n device chunks k) ─▶ [verify checksums, build mask]
//              ├─ clean: write(output chunk k)
//              └─ degraded: submit_decode via the session plan cache ─▶ write
//
// The on-disk layout is a StripeStore: one dev_NN.bin per device (stripe k's
// chunk of device j at byte k * r * symbol_bytes), plus a manifest recording
// the config and a checksum per (stripe, device) chunk. Checksums are what
// make degraded reads honest: a chunk that is missing, short, unreadable
// (EIO), or torn (checksum mismatch) is treated as erased for exactly its
// stripe, the mask is resolved through the session's DecodePlanCache (every
// stripe of a failure epoch shares one inversion+compile), and the stripe is
// reconstructed in the pipeline. Patterns outside the code's coverage fail
// that stripe's handle and are counted — never thrown mid-pipeline.
//
// Depth: `queue_depth` stripes are in flight at once, each leasing a slot
// (StripeBuffer + staging) from a WorkspacePool that settles at the depth
// high-water mark. IO transfers are bounded by depth x (n + 1), so the
// engine never needs its own backpressure against the pipeline.
//
// A pipeline is bound to one Codec (whose code defines the stripe geometry)
// and runs one file operation at a time; distinct pipelines on distinct
// codecs may run concurrently.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "stair/codec.h"
#include "util/stripe_io.h"
#include "util/workspace_pool.h"

namespace stair {

/// Parses a comma-separated coverage vector ("1,2" -> {1, 2}) — the format
/// both the manifest and file_codec's CLI use for `e`.
std::vector<std::size_t> parse_coverage_list(const std::string& text);

/// 64-bit content hash over a byte span — the sector checksum. A word-wise
/// multiply-rotate mixer (~8 bytes/cycle of input vs 1 for classic FNV): the
/// checksum pass must not become the pipeline's bottleneck next to the SIMD
/// region kernels. Deterministic for a given platform endianness; plenty for
/// torn-write/bit-rot detection, not a cryptographic integrity layer.
std::uint64_t content_hash64(std::span<const std::uint8_t> bytes);

/// Fold of a sequence of 64-bit hashes (hashed as 8-byte LE words in
/// sequence order): the per-stripe data hash folds its data sectors' hashes,
/// the manifest's data_checksum folds the per-stripe hashes. Exposed so a
/// layer that rewrites stripes in place (the StorageNode write path) can
/// refresh the whole-file fold from the manifest's sector checksums without
/// re-reading content bytes.
std::uint64_t combine_hashes(std::span<const std::uint64_t> hashes);

/// The on-disk stripe store: per-device chunk files plus the manifest that
/// decode needs (config, geometry, per-sector checksums, whole-file check).
struct StripeStore {
  StairConfig cfg;
  std::size_t symbol_bytes = 0;
  std::size_t file_size = 0;   // original file bytes (tail stripe is padded)
  std::size_t stripes = 0;
  /// Layout block size: each stripe's chunk row is padded to a multiple of
  /// this, so every chunk transfer is block-aligned in offset and length —
  /// the alignment O_DIRECT demands, solved once in the layout instead of
  /// per-IO. 1 = the legacy unpadded layout (manifests without a `block`
  /// line load as 1, so old stores keep working byte-for-byte).
  std::size_t block_bytes = 1;
  /// FNV over the per-stripe data checksums (8-byte LE each, stripe order) —
  /// order-independent to compute with stripes completing out of order.
  std::uint64_t data_checksum = 0;
  /// Checksum of each stored sector — symbol (row i, device j) of stripe k at
  /// [(k * cfg.n + j) * cfg.r + i]. Sector granularity is what lets decode
  /// erase exactly the torn/rotted sectors of a surviving device instead of
  /// writing off its whole chunk: the mixed device+sector failure patterns
  /// STAIR's coverage is about.
  std::vector<std::uint64_t> sector_checksums;

  std::size_t chunk_bytes() const { return cfg.r * symbol_bytes; }
  /// chunk_bytes rounded up to the layout block — the on-disk stride and
  /// transfer length for one stripe's chunk (pad bytes are written as zero).
  std::size_t padded_chunk_bytes() const {
    return (chunk_bytes() + block_bytes - 1) / block_bytes * block_bytes;
  }
  /// Byte offset of stripe `stripe`'s chunk within each device file.
  std::uint64_t chunk_offset(std::size_t stripe) const {
    return std::uint64_t{stripe} * padded_chunk_bytes();
  }
  std::uint64_t sector_checksum(std::size_t stripe, std::size_t device,
                                std::size_t row) const {
    return sector_checksums[(stripe * cfg.n + device) * cfg.r + row];
  }

  static std::string device_path(const std::string& dir, std::size_t device);
  static std::string manifest_path(const std::string& dir);

  /// Writes manifest.txt into `dir` atomically (unique temp file + rename,
  /// so a power cut mid-save leaves the previous manifest intact — the
  /// manifest is the store's recovery point). Throws on IO failure.
  void save(const std::string& dir) const;
  /// Loads and validates manifest.txt. Every field is parse-checked and
  /// bounds-checked before it is used to size or index sector_checksums: a
  /// truncated, garbled, or adversarial manifest throws std::runtime_error
  /// with a "manifest" message — never UB. (sector_checksum() itself stays
  /// unchecked; a loaded store is guaranteed self-consistent.)
  static StripeStore load(const std::string& dir);
};

class IoPipeline {
 public:
  struct Options {
    /// Stripes in flight (ring depth). 1 degrades to read-compute-write
    /// lockstep; >= 4 keeps IO and compute overlapped.
    std::size_t queue_depth = 4;
    /// Bytes per symbol when encoding (decode takes it from the manifest).
    std::size_t symbol_bytes = 4096;
    /// Encoding method for encode_file.
    EncodingMethod method = EncodingMethod::kAuto;
    /// Raw-device mode (STAIR_IO_DIRECT): encode pads the store layout to
    /// `block_bytes` and chunk files are opened O_DIRECT; decode/read_range
    /// open O_DIRECT whenever the store is padded. Filesystems that refuse
    /// O_DIRECT fall back to buffered opens transparently (the padded
    /// layout and aligned transfers are valid either way, so the store is
    /// byte-identical across modes).
    bool direct = io::direct_from_env();
    /// Layout block for newly encoded stores when `direct` is set (the
    /// device's logical block size; 4096 covers 512e/4Kn disks).
    std::size_t block_bytes = 4096;
    /// Lease chunk staging from a registered buffer pool and issue
    /// READ_FIXED/WRITE_FIXED on engines that support registration (uring).
    /// Engines that don't (or a failed registration) degrade to plain
    /// transfers on the same aligned buffers.
    bool fixed_buffers = true;
    /// IO engine to run on (borrowed; fault-injection tests pass a wrapped
    /// one). nullptr: the pipeline creates and owns one per `backend`.
    io::Engine* engine = nullptr;
    io::Backend backend = io::Backend::kAuto;  // used only when engine == nullptr
    io::Engine::Options io;                    // used only when engine == nullptr
  };

  /// Per-operation outcome + counters. `ok` is the everything-checks-out
  /// bit: no fatal IO error, no unrecoverable stripe, and (decode) the
  /// reassembled data matching the manifest checksum.
  struct Stats {
    bool ok = false;
    std::string error;                 // first fatal error (empty when ok)
    std::size_t stripes = 0;
    std::size_t degraded_stripes = 0;  // reconstructed through the plan cache
    std::size_t failed_stripes = 0;    // pattern outside the code's coverage
    std::size_t chunks_missing = 0;    // open/read failure or short chunk
    std::size_t sectors_corrupt = 0;   // read fine, sector checksum mismatch
    std::size_t manifest_errors = 0;   // manifest missing/truncated/garbled
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
  };

  explicit IoPipeline(Codec& codec);
  IoPipeline(Codec& codec, Options options);
  ~IoPipeline();

  IoPipeline(const IoPipeline&) = delete;
  IoPipeline& operator=(const IoPipeline&) = delete;

  /// Splits `input_path` into stripes, encodes each through the Codec, and
  /// writes the StripeStore into `store_dir` (created if needed). Returns
  /// stats; never throws for IO-shaped failures (see Stats.error).
  Stats encode_file(const std::string& input_path, const std::string& store_dir);

  /// Reassembles the original file from `store_dir` into `output_path`,
  /// serving degraded stripes through the session plan cache. Stats.ok is
  /// false when any stripe was unrecoverable or the final checksum failed;
  /// whatever was recoverable has still been written.
  Stats decode_file(const std::string& store_dir, const std::string& output_path);

  /// Serves the original-file byte range [offset, offset + out.size()) from
  /// the store without touching stripes outside it. The happy path reads
  /// *only the sectors the range needs* (sector-granular positioned reads)
  /// and verifies each against the manifest; any miss — a missing/short
  /// chunk, a torn sector, a device mid-rebuild — escalates that stripe to a
  /// degraded read through StairCode::build_degraded_read_schedule, decoding
  /// only the wanted symbols (a backward slice of the full decode plan, not
  /// a stripe repair). This is how client reads keep being served *during*
  /// a device rebuild. Stats.ok is false when the range exceeds the file or
  /// a needed stripe is unrecoverable.
  Stats read_range(const StripeStore& store, const std::string& store_dir,
                   std::uint64_t offset, std::span<std::uint8_t> out);
  /// read_range loading the manifest itself (convenience; per-call load).
  Stats read_range(const std::string& store_dir, std::uint64_t offset,
                   std::span<std::uint8_t> out);

  io::Engine& engine() { return *engine_; }
  Codec& codec() { return codec_; }
  /// Slot-pool high-water mark (== stripes concurrently in flight, settles
  /// at queue_depth).
  std::size_t slots_created() const { return slots_.created(); }
  /// The aligned chunk-staging pool (nullptr until the first operation) —
  /// exposed for tests asserting registration/overflow behavior.
  const IoBufferPool* buffer_pool() const { return buffers_.get(); }
  /// True while the staging pool is registered with the engine (fixed-path
  /// transfers engaged).
  bool fixed_buffers_active() const { return fixed_active_; }

 private:
  struct Slot;
  struct Run;

  using SlotLease = WorkspacePool<Slot>::Lease;

  /// (Re)builds the aligned staging pool for the given chunk geometry and
  /// registers it with the engine when fixed_buffers is on.
  void ensure_buffers(std::size_t bytes, std::size_t alignment, std::size_t capacity);
  void prepare_slot(Slot& slot, const StairCode& code, const Run& run,
                    std::size_t devices);
  SlotLease acquire_slot(Run& run);
  void retire_slot(Run& run);
  void fatal(Run& run, std::string message);
  void drain(Run& run);

  // Stage bodies (each runs on an engine/pool thread; must not throw).
  void encode_on_input_read(Run& run, SlotLease slot, std::size_t stripe,
                            std::size_t data_len, const io::Result& r);
  void encode_on_encoded(Run& run, SlotLease slot, std::size_t stripe, bool ok);
  void decode_on_chunk_read(Run& run, SlotLease slot, std::size_t stripe,
                            std::size_t device, const io::Result& r);
  void decode_assemble(Run& run, SlotLease slot, std::size_t stripe);
  void decode_write_data(Run& run, SlotLease slot, std::size_t stripe);

  Codec& codec_;
  Options options_;
  std::unique_ptr<io::Engine> owned_engine_;
  io::Engine* engine_;
  WorkspacePool<Slot> slots_;
  std::unique_ptr<IoBufferPool> buffers_;  // chunk staging, see ensure_buffers
  bool fixed_active_ = false;  // staging pool currently registered with engine_
};

}  // namespace stair
