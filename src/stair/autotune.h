// Probe-once measured autotuner — the empirical half of stair/cost_model.
//
// cost_model.h predicts *how many* Mult_XORs a plan costs (Eqs. 5-6); this
// module measures *how fast* each (backend, layout, w) runs them on the
// machine at hand, GF-Complete-style: a short in-process microbenchmark at
// first Codec construction (a few milliseconds, cached to disk afterwards)
// whose table then drives the execution-layer decisions that were fixed
// heuristics before:
//
//  * the region cache budget behind gf::cache_aware_slice_bytes and
//    compiled-schedule strip-mining (installed via
//    gf::set_region_cache_budget from a measured streaming-size sweep),
//  * the Codec's batch-vs-slice crossover — a stripe is only worth
//    range-slicing when one slice's measured compute time clears the
//    measured pool dispatch overhead by a comfortable factor,
//  * per-code RegionLayout selection — altmap only when the measured
//    altmap-vs-standard throughput gap beats the boundary conversion cost
//    at the stripe's actual region size (small stripes often lose).
//
// Every decision is performance-only: encode/decode bytes are identical
// whatever the tuner picks, so falling back to today's constants
// (STAIR_AUTOTUNE=0, probe failure, unmeasured cells) is always safe.
//
// Environment:
//   STAIR_AUTOTUNE=0   disable: all decisions fall back to the fixed
//                      heuristics (gf::preferred_layout, 4096-byte slice
//                      floor, detected-L2 cache budget).
//   STAIR_TUNE_FILE    path for the serialized profile (default
//                      ~/.cache/stair_tune.json). Loaded when the stored
//                      fingerprint (CPU brand + compiled/supported backend
//                      set + format version) matches, else re-probed and
//                      rewritten (best-effort; failures are silent).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "gf/kernel.h"
#include "gf/region.h"

namespace stair {

inline constexpr int kTuneProfileVersion = 1;

/// One measured throughput point: Mult_XOR MB/s for (backend, layout, w) at
/// a given region size (src+dst each of region_bytes). Conversion cells
/// reuse the struct with layout fixed to altmap and mbps meaning round-trip
/// (to+from altmap) pass throughput.
struct TuneCell {
  int backend = 0;  // int value of gf::Backend
  int layout = 0;   // int value of gf::RegionLayout
  int w = 0;
  std::size_t region_bytes = 0;
  double mbps = 0.0;
};

/// The whole measured surface, JSON-serializable. `measured` is false for a
/// default-constructed (fallback) profile; decisions then use the fixed
/// heuristics.
struct TuneProfile {
  int version = kTuneProfileVersion;
  std::string fingerprint;  // CPU brand + backend availability set
  bool measured = false;
  double memcpy_mbps = 0.0;
  double xor_mbps = 0.0;
  double dispatch_overhead_ns = 0.0;  // one ThreadPool::submit round trip
  std::size_t cache_budget_bytes = 0;
  std::vector<TuneCell> cells;          // mult_xor throughput
  std::vector<TuneCell> convert_cells;  // altmap round-trip throughput

  /// Measured Mult_XOR MB/s for (backend, layout, w) at the cell size
  /// closest to `region_bytes` (0 picks the largest measured size).
  /// Returns 0 when unmeasured.
  double mult_xor_mbps(gf::Backend backend, gf::RegionLayout layout, int w,
                       std::size_t region_bytes = 0) const;

  /// Measured altmap round-trip conversion MB/s for (backend, w); 0 when
  /// unmeasured.
  double convert_mbps(gf::Backend backend, int w) const;

  std::string to_json() const;
  /// Strict enough for round-tripping to_json output; returns false (out
  /// untouched) on malformed input.
  static bool from_json(const std::string& text, TuneProfile* out);
};

/// Process-wide tuner singleton. ensure() is idempotent and cheap after the
/// first call; the Codec constructor invokes it, so any session-based user
/// gets tuned decisions with zero setup.
class Autotune {
 public:
  static Autotune& instance();

  /// Load-or-probe once: try the tune file, validate its fingerprint, probe
  /// and save on miss. No-op when disabled. Installs the measured cache
  /// budget into gf::set_region_cache_budget.
  void ensure();

  /// STAIR_AUTOTUNE != "0" (and not overridden by set_enabled_for_testing).
  bool enabled() const;

  /// The active profile (ensure()d first). Unmeasured when disabled.
  const TuneProfile& profile();

  /// Layout for a replay at width `w` whose plan performs
  /// `mult_xors_per_region` region ops per referenced region, over regions
  /// of `region_bytes`. Defers to gf::preferred_layout when the tuner is
  /// disabled, the layout is pinned (gf::layout_forced), w < 16, or the
  /// relevant cells are unmeasured.
  gf::RegionLayout choose_layout(int w, double mult_xors_per_region,
                                 std::size_t region_bytes);

  /// Minimum stripe bytes worth range-slicing at (w, layout): the size
  /// whose per-slice compute time clears the measured dispatch overhead.
  /// Falls back to the fixed 4096 when disabled or unmeasured.
  std::size_t min_slice_bytes(int w, gf::RegionLayout layout);

  // --- test hooks -----------------------------------------------------------

  /// Replaces the profile (marks ensure() done; no probe will run).
  void set_profile_for_testing(TuneProfile p);
  /// Overrides the STAIR_AUTOTUNE switch: 0 = force off, 1 = force on,
  /// -1 = back to the environment.
  void set_enabled_for_testing(int mode);
  /// Clears profile + overrides; next ensure() re-resolves everything.
  void reset_for_testing();

  // --- building blocks (exposed for tests and benches) ----------------------

  /// Runs the measurement pass now (irrespective of the enable switch) and
  /// returns the profile. A few milliseconds; briefly forces each supported
  /// backend (restoring the active one afterwards).
  static TuneProfile probe_now();

  /// STAIR_TUNE_FILE, else $HOME/.cache/stair_tune.json, else "" (no
  /// caching possible).
  static std::string default_tune_path();

  /// Atomic (temp + rename) best-effort write; false on any failure.
  static bool save_profile(const TuneProfile& p, const std::string& path);
  /// Loads and parses; false on missing/malformed file. Does NOT check the
  /// fingerprint — ensure() does.
  static bool load_profile(const std::string& path, TuneProfile* out);

  /// CPU brand string + compiled/supported backend letters — what makes a
  /// stored profile transferable to this process.
  static std::string cpu_fingerprint();

 private:
  Autotune() = default;

  mutable std::mutex mu_;
  bool ensured_ = false;
  int enabled_override_ = -1;  // -1 env, 0 off, 1 on
  TuneProfile profile_;
};

}  // namespace stair
