// Internal: schedule builders for the three encoding methods and the
// upstairs decoder. Implemented in upstairs.cpp / downstairs.cpp /
// standard.cpp / decoder.cpp; consumed only by stair_code.cpp.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "rs/mds_code.h"
#include "stair/schedule.h"

namespace stair {

class StairCode;

namespace internal {

/// §5.1.1 (inside globals) or §4.1-style virtual encoding (outside globals).
/// Mult_XOR count equals Eq. 5 exactly.
Schedule build_upstairs_schedule(const StairCode& code);

/// §5.1.2 (inside) / the §3 baseline two-phase encoding (outside).
/// Mult_XOR count equals Eq. 6 exactly.
Schedule build_downstairs_schedule(const StairCode& code);

/// Direct linear combinations from data symbols, coefficients derived by
/// propagating unit vectors through the upstairs schedule (§5.2/§5.3).
Schedule build_standard_schedule(const StairCode& code);

/// Full generator coefficients: parity_ids() x data_ids().
Matrix compute_coefficients(const StairCode& code);

/// §4.2/§4.3 decoder; nullopt when the pattern exceeds the m + e coverage.
std::optional<Schedule> build_decode_schedule(const StairCode& code,
                                              const std::vector<bool>& erased);

/// Pattern-only feasibility check (no schedule construction).
bool pattern_recoverable(const StairCode& code, const std::vector<bool>& erased);

/// Appends one op per target: codeword[target] recomputed from the kappa
/// codeword positions in `available`, with positions translated to canonical
/// symbol ids by `pos_to_id`. Shared by all builders; for Crow ops positions
/// are canonical columns, for Ccol ops canonical rows.
void emit_recovery_ops(Schedule& schedule, const SystematicMdsCode& code,
                       std::span<const std::size_t> available,
                       std::span<const std::size_t> targets,
                       const std::function<std::uint32_t(std::size_t)>& pos_to_id);

}  // namespace internal
}  // namespace stair
