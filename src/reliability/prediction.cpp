#include "reliability/prediction.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "reliability/pstr.h"

namespace stair::reliability {

ReliabilityPrediction predict_reliability(const PredictionQuery& query) {
  const SystemParams& p = query.system;
  if (p.m != 1)
    throw std::invalid_argument("predict_reliability: the §7 model covers m = 1 only");
  if (!(query.p_sec >= 0.0) || query.p_sec > 1.0)
    throw std::invalid_argument("predict_reliability: p_sec must be in [0, 1]");
  if (!std::is_sorted(query.e.begin(), query.e.end()))
    throw std::invalid_argument("predict_reliability: e must be ascending");

  ReliabilityPrediction out;
  out.pchk = query.correlated
                 ? correlated_chunk_pmf(query.p_sec,
                                        BurstDistribution(query.b1, query.alpha), p.r)
                 : independent_chunk_pmf(query.p_sec, p.r);
  const std::size_t chunks = p.n - p.m;  // surviving chunks in critical mode
  out.pstr = query.e.empty() ? pstr_rs(out.pchk, chunks)
                             : pstr_stair(out.pchk, chunks, query.e);
  out.p_arr = p_arr(p, out.pstr);
  out.mttdl_hours = mttdl_array(p, out.p_arr);

  // Renewal form: episodes start at rate n*lambda; in critical mode a second
  // failure (rate rho = (n-1)*lambda) races a deterministic rebuild of
  // duration T. Loss per episode = P(race lost) + P(race won) * P_arr; the
  // MTTDL is the mean cycle length over the loss probability.
  const double lambda = 1.0 / p.mttf_hours;
  const double n = static_cast<double>(p.n);
  const double rho = (n - 1.0) * lambda;
  const double T = p.rebuild_hours;
  const double q_dev = -std::expm1(-rho * T);
  out.loss_per_episode = q_dev + (1.0 - q_dev) * out.p_arr;
  out.episode_rate_per_hour = n * lambda;
  // E[time in critical mode] = E[min(T, Exp(rho))] = (1 - e^(-rho T)) / rho.
  const double critical_hours = rho > 0.0 ? q_dev / rho : T;
  const double cycle_hours = 1.0 / out.episode_rate_per_hour + critical_hours;
  out.mttdl_renewal_hours = out.loss_per_episode > 0.0
                                ? cycle_hours / out.loss_per_episode
                                : std::numeric_limits<double>::infinity();

  std::size_t s = 0;
  for (std::size_t ei : query.e) s += ei;
  const double efficiency = storage_efficiency(p.n, p.r, p.m, s);
  out.user_bytes_per_array = efficiency * n * p.device_bytes;
  const double pb = out.user_bytes_per_array / 1125899906842624.0;  // 2^50
  out.loss_per_pb_year = pb > 0.0 && std::isfinite(out.mttdl_renewal_hours)
                             ? 8766.0 / out.mttdl_renewal_hours / pb
                             : 0.0;
  return out;
}

AgreementBand poisson_band(double expected_events, double z) {
  AgreementBand band;
  band.expected = expected_events;
  band.z = z;
  const double sigma = std::sqrt(std::max(expected_events, 0.0));
  // The +z floor keeps the band non-degenerate for tiny expectations: with
  // E ~ 0.1 expected events, observing 1 is unremarkable, not a divergence.
  band.lo = std::max(0.0, expected_events - z * sigma - z);
  band.hi = expected_events + z * sigma + z;
  return band;
}

bool within_band(const AgreementBand& band, double observed_events) {
  return observed_events >= band.lo && observed_events <= band.hi;
}

}  // namespace stair::reliability
