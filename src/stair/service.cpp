#include "stair/service.h"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.h"

namespace stair {

namespace detail {

/// One submitted request's lifetime: queue bookkeeping while queued, the
/// completion rendezvous afterwards. Futures share it; the scheduler holds
/// one reference while the request is queued or in service.
struct RequestState {
  Request req;
  Response response;

  std::chrono::steady_clock::time_point admitted{};
  std::chrono::steady_clock::time_point dispatched{};

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  std::atomic<bool> done{false};
};

}  // namespace detail

using detail::RequestState;

bool StorageNode::Future::done() const {
  return state_ && state_->done.load(std::memory_order_acquire);
}

const Response& StorageNode::Future::wait() const {
  if (!state_) throw std::runtime_error("StorageNode::Future: invalid handle");
  if (!state_->done.load(std::memory_order_acquire)) {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock,
                    [&] { return state_->done.load(std::memory_order_acquire); });
  }
  return state_->response;
}

// ---------------------------------------------------------------------------
// Scheduler storage + per-worker scratch
// ---------------------------------------------------------------------------

struct StorageNode::Queues {
  /// q[tenant][class] — bounded per tenant across classes, FIFO per class.
  std::vector<std::array<std::deque<StatePtr>, kRequestClasses>> q;

  std::size_t tenant_depth(std::size_t t) const {
    std::size_t total = 0;
    for (const auto& d : q[t]) total += d.size();
    return total;
  }
};

struct StorageNode::WriteSlot {
  /// Stripe coding scratch, sized for the session geometry on first write.
  std::unique_ptr<StripeBuffer> stripe;
  /// Full-width data staging (tail-stripe payloads are shorter than the
  /// stripe's data extent; the remainder must encode as zeros).
  AlignedBuffer data;
  /// Batch-read staging: the union stripe span a read batch shares.
  std::vector<std::uint8_t> span;
};

// ---------------------------------------------------------------------------
// StripeRangeLock
// ---------------------------------------------------------------------------

void StorageNode::StripeRangeLock::resize(std::size_t stripes) {
  std::lock_guard<std::mutex> lock(mu_);
  state_.assign(stripes, 0);
}

void StorageNode::StripeRangeLock::lock_shared(std::size_t lo, std::size_t hi) {
  std::unique_lock<std::mutex> lock(mu_);
  for (std::size_t s = lo; s <= hi; ++s) {
    cv_.wait(lock, [&] { return state_[s] >= 0; });
    ++state_[s];
  }
}

void StorageNode::StripeRangeLock::unlock_shared(std::size_t lo, std::size_t hi) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t s = lo; s <= hi; ++s) --state_[s];
  cv_.notify_all();
}

void StorageNode::StripeRangeLock::lock_exclusive(std::size_t stripe) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return state_[stripe] == 0; });
  state_[stripe] = -1;
}

void StorageNode::StripeRangeLock::unlock_exclusive(std::size_t stripe) {
  std::lock_guard<std::mutex> lock(mu_);
  state_[stripe] = 0;
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

StorageNode::StorageNode(Codec& codec, std::string store_dir)
    : StorageNode(codec, std::move(store_dir), Options{}) {}

StorageNode::StorageNode(Codec& codec, std::string store_dir, Options options)
    : codec_(codec), store_dir_(std::move(store_dir)), options_(options) {
  if (options_.tenants == 0) throw std::runtime_error("StorageNode: tenants must be >= 1");
  if (options_.queue_capacity == 0)
    throw std::runtime_error("StorageNode: queue_capacity must be >= 1");
  if (options_.batch_limit == 0) options_.batch_limit = 1;
}

StorageNode::~StorageNode() {
  try {
    stop();
  } catch (...) {
    // Destruction must not throw; a failed final manifest save leaves the
    // previous manifest intact (atomic rename), so the store stays loadable.
  }
}

void StorageNode::start() {
  if (started_) throw std::runtime_error("StorageNode: already started");
  store_ = StripeStore::load(store_dir_);
  if (!(store_.cfg == codec_.code().config())) {
    throw std::runtime_error("StorageNode: store config " + store_.cfg.to_string() +
                             " does not match codec config " +
                             codec_.code().config().to_string());
  }
  stripe_data_ = codec_.code().data_symbol_count() * store_.symbol_bytes;

  const StairLayout& layout = codec_.code().layout();
  data_positions_.clear();
  data_positions_.reserve(layout.data_ids().size());
  for (std::uint32_t id : layout.data_ids())
    data_positions_.emplace_back(layout.row_of(id), layout.col_of(id));

  // Per-stripe data-hash folds, maintained incrementally by the write path so
  // flush_manifest never re-reads content bytes.
  stripe_hashes_.assign(store_.stripes, 0);
  for (std::size_t s = 0; s < store_.stripes; ++s) stripe_hashes_[s] = stripe_hash(s);

  if (options_.io.engine) {
    engine_ = options_.io.engine;
  } else {
    owned_engine_ = io::Engine::create(options_.io.backend, options_.io.io);
    engine_ = owned_engine_.get();
  }

  // Long-lived write-path fds. O_DIRECT only when the layout is padded (a
  // block-1 legacy store has no alignment to offer), mirroring the pipeline.
  const bool direct = options_.io.direct && store_.block_bytes > 1;
  const io::OpenMode mode = direct ? io::OpenMode::kDirect : io::OpenMode::kBuffered;
  dev_fds_.assign(store_.cfg.n, -1);
  for (std::size_t j = 0; j < store_.cfg.n; ++j) {
    dev_fds_[j] = engine_->open_update(StripeStore::device_path(store_dir_, j), mode);
    if (dev_fds_[j] < 0) {
      const int err = errno;
      for (int fd : dev_fds_)
        if (fd >= 0) engine_->close(fd);
      dev_fds_.clear();
      throw std::runtime_error("StorageNode: cannot open " +
                               StripeStore::device_path(store_dir_, j) + ": " +
                               std::strerror(err));
    }
  }

  std::size_t workers = options_.workers;
  if (workers == 0)
    workers = std::min<std::size_t>(4, std::max<std::size_t>(2, codec_.pool().concurrency()));

  // One pipeline per worker: read_range mutates per-pipeline staging on first
  // use, and the engine's single registered-buffer set cannot be shared — so
  // workers never share a pipeline, and none of them registers (fixed off).
  IoPipeline::Options popt = options_.io;
  popt.engine = engine_;
  popt.fixed_buffers = false;
  pipelines_.clear();
  write_slots_.clear();
  for (std::size_t w = 0; w < workers; ++w) {
    pipelines_.push_back(std::make_unique<IoPipeline>(codec_, popt));
    write_slots_.push_back(std::make_unique<WriteSlot>());
  }
  write_staging_ = std::make_unique<IoBufferPool>(
      store_.padded_chunk_bytes(), std::max<std::size_t>(store_.block_bytes, 64),
      workers * store_.cfg.n);

  range_lock_.resize(store_.stripes);
  queues_ = std::make_unique<Queues>();
  queues_->q.resize(options_.tenants);
  tenant_counters_.clear();
  for (std::size_t t = 0; t < options_.tenants; ++t)
    tenant_counters_.push_back(std::make_unique<TenantCounters>());
  queued_total_.store(0, std::memory_order_relaxed);
  in_service_.store(0, std::memory_order_relaxed);
  rr_cursor_.fill(0);
  draining_ = false;
  stopping_ = false;
  stopped_ = false;

  started_ = true;  // before worker/scrubber spawn: both read node state

  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });

  if (options_.scrub) {
    ScrubOptions sopt = options_.scrub_options;
    if (!sopt.engine) sopt.engine = engine_;
    if (!sopt.hold) {
      // One priority policy: scrub holds while the node has foreground work
      // queued or in service, composing with the Scrubber's own Codec
      // idle-slot gate (and bounded by its max_stall, so a saturated node
      // still gets scrubbed eventually).
      sopt.hold = [this] { return foreground_pressure(); };
    }
    scrubber_ = std::make_unique<Scrubber>(codec_, sopt);
    scrubber_->start(store_dir_);
  }
}

bool StorageNode::foreground_pressure() const {
  return queued_total_.load(std::memory_order_relaxed) > 0 ||
         in_service_.load(std::memory_order_relaxed) > 0;
}

void StorageNode::drain() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    if (draining_) {
      // Second drainer: just wait for quiescence below.
    }
    draining_ = true;
  }
  // Stop background maintenance first — the remaining queue drains faster
  // with the codec to itself, and the scrubber's hold gate dies with it.
  if (scrubber_) {
    scrub_final_.accumulate(scrubber_->stop());
  }
  {
    std::unique_lock<std::mutex> lock(sched_mu_);
    drain_cv_.wait(lock, [&] {
      return queued_total_.load(std::memory_order_relaxed) == 0 &&
             in_service_.load(std::memory_order_relaxed) == 0;
    });
  }
  flush_manifest();
}

void StorageNode::stop() {
  if (!started_ || stopped_) return;
  drain();
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    stopping_ = true;
  }
  sched_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  scrubber_.reset();
  pipelines_.clear();
  write_staging_.reset();
  for (int fd : dev_fds_) engine_->close(fd);
  dev_fds_.clear();
  stopped_ = true;
  started_ = false;
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

StorageNode::Future StorageNode::submit(Request request) {
  if (!started_) throw std::runtime_error("StorageNode: not started");
  if (request.tenant >= options_.tenants)
    throw std::runtime_error("StorageNode: tenant " + std::to_string(request.tenant) +
                             " out of range (tenants=" + std::to_string(options_.tenants) + ")");

  auto state = std::make_shared<RequestState>();
  state->req = request;
  state->admitted = std::chrono::steady_clock::now();

  TenantCounters& tc = *tenant_counters_[request.tenant];
  tc.submitted.fetch_add(1, std::memory_order_relaxed);

  // Shape checks complete immediately (ok=false), they don't reject: the
  // request was understood and refused on its merits, not on queue pressure.
  std::string shape_error;
  if (request.type == RequestType::kWrite) {
    if (request.stripe >= store_.stripes) {
      shape_error = "write stripe out of range";
    } else {
      const std::size_t expected =
          std::min(stripe_data_, store_.file_size - request.stripe * stripe_data_);
      if (request.data.size() != expected)
        shape_error = "write payload is " + std::to_string(request.data.size()) +
                      " bytes, stripe holds " + std::to_string(expected);
    }
  } else {
    if (request.offset + request.out.size() > store_.file_size)
      shape_error = "read past end of file";
  }
  if (!shape_error.empty()) {
    Response r;
    r.ok = false;
    r.error = std::move(shape_error);
    complete(state, std::move(r));
    return Future(state);
  }
  if (request.type != RequestType::kWrite && request.out.empty()) {
    Response r;
    r.ok = true;
    complete(state, std::move(r));
    return Future(state);
  }

  bool was_draining = false;
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    was_draining = draining_;
    if (!draining_ && queues_->tenant_depth(request.tenant) < options_.queue_capacity) {
      queues_->q[request.tenant][static_cast<std::size_t>(request.type)].push_back(state);
      queued_total_.fetch_add(1, std::memory_order_relaxed);
      sched_cv_.notify_one();
      return Future(state);
    }
  }

  // Reject-with-backpressure: full tenant queue or draining node. The caller
  // learns immediately; no queue ever grows past its bound.
  tc.rejected.fetch_add(1, std::memory_order_relaxed);
  Response r;
  r.ok = false;
  r.rejected = true;
  r.error = was_draining ? "node draining" : "tenant queue full";
  complete(state, std::move(r));
  return Future(state);
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

std::vector<StorageNode::StatePtr> StorageNode::next_batch() {
  std::unique_lock<std::mutex> lock(sched_mu_);
  sched_cv_.wait(lock, [&] {
    return stopping_ || queued_total_.load(std::memory_order_relaxed) > 0;
  });
  if (queued_total_.load(std::memory_order_relaxed) == 0) return {};  // stopping

  // Strict priority across classes, round-robin across tenants within one.
  std::vector<StatePtr> batch;
  batch.reserve(1);
  std::size_t cls = 0, leader_tenant = 0;
  for (; cls < kRequestClasses; ++cls) {
    for (std::size_t i = 0; i < options_.tenants; ++i) {
      const std::size_t t = (rr_cursor_[cls] + i) % options_.tenants;
      auto& dq = queues_->q[t][cls];
      if (dq.empty()) continue;
      batch.push_back(std::move(dq.front()));
      dq.pop_front();
      leader_tenant = t;
      rr_cursor_[cls] = (t + 1) % options_.tenants;
      break;
    }
    if (!batch.empty()) break;
  }
  if (batch.empty()) return {};
  std::size_t taken = 1;

  // Backlogged reads coalesce: riders whose whole range lies inside the
  // leader's stripe span share its read_range submission. Riders are pulled
  // round-robin from the leader's successor so coalescing never becomes a
  // side door around fairness.
  if (cls == static_cast<std::size_t>(RequestType::kRead) && options_.batch_limit > 1 &&
      queued_total_.load(std::memory_order_relaxed) - taken >= options_.batch_min_backlog) {
    const Request& lead = batch[0]->req;
    const std::size_t s0 = static_cast<std::size_t>(lead.offset / stripe_data_);
    const std::size_t s1 =
        static_cast<std::size_t>((lead.offset + lead.out.size() - 1) / stripe_data_);
    const std::uint64_t span_lo = std::uint64_t{s0} * stripe_data_;
    const std::uint64_t span_hi =
        std::min<std::uint64_t>(std::uint64_t{s1 + 1} * stripe_data_, store_.file_size);
    for (std::size_t i = 0; i < options_.tenants && batch.size() < options_.batch_limit; ++i) {
      const std::size_t t = (leader_tenant + 1 + i) % options_.tenants;
      auto& dq = queues_->q[t][cls];
      for (auto it = dq.begin(); it != dq.end() && batch.size() < options_.batch_limit;) {
        const Request& r = (*it)->req;
        if (r.offset >= span_lo && r.offset + r.out.size() <= span_hi) {
          batch.push_back(std::move(*it));
          it = dq.erase(it);
          ++taken;
        } else {
          ++it;
        }
      }
    }
  }

  queued_total_.fetch_sub(taken, std::memory_order_relaxed);
  in_service_.fetch_add(batch.size(), std::memory_order_relaxed);
  return batch;
}

void StorageNode::worker_loop(std::size_t worker) {
  for (;;) {
    std::vector<StatePtr> batch = next_batch();
    if (batch.empty()) return;

    const auto now = std::chrono::steady_clock::now();
    for (const StatePtr& s : batch) s->dispatched = now;

    if (batch[0]->req.type == RequestType::kWrite) {
      serve_write(worker, batch[0]);
    } else {
      serve_reads(worker, batch);
    }

    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      in_service_.fetch_sub(batch.size(), std::memory_order_relaxed);
    }
    drain_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Serving
// ---------------------------------------------------------------------------

void StorageNode::serve_reads(std::size_t worker, std::vector<StatePtr>& batch) {
  IoPipeline& pipeline = *pipelines_[worker];

  // The union span is the leader's stripe span (riders were chosen inside
  // it); lock it shared so a concurrent stripe write cannot tear the bytes.
  std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
  for (const StatePtr& s : batch) {
    lo = std::min(lo, s->req.offset);
    hi = std::max(hi, s->req.offset + s->req.out.size());
  }
  const std::size_t s0 = static_cast<std::size_t>(lo / stripe_data_);
  const std::size_t s1 = static_cast<std::size_t>((hi - 1) / stripe_data_);
  range_lock_.lock_shared(s0, s1);

  IoPipeline::Stats st;
  if (batch.size() == 1) {
    st = pipeline.read_range(store_, store_dir_, batch[0]->req.offset, batch[0]->req.out);
  } else {
    // One shared submission serves the whole batch: read the union span into
    // worker staging, then scatter each member's sub-range.
    WriteSlot& slot = *write_slots_[worker];
    const std::uint64_t span_lo = std::uint64_t{s0} * stripe_data_;
    const std::uint64_t span_hi =
        std::min<std::uint64_t>(std::uint64_t{s1 + 1} * stripe_data_, store_.file_size);
    slot.span.resize(static_cast<std::size_t>(span_hi - span_lo));
    st = pipeline.read_range(store_, store_dir_, span_lo, slot.span);
    if (st.ok) {
      for (const StatePtr& s : batch) {
        std::memcpy(s->req.out.data(), slot.span.data() + (s->req.offset - span_lo),
                    s->req.out.size());
      }
    }
  }

  range_lock_.unlock_shared(s0, s1);

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const StatePtr& s = batch[i];
    Response r;
    r.ok = st.ok;
    r.error = st.error;
    r.degraded_stripes = st.degraded_stripes;
    r.bytes = st.ok ? s->req.out.size() : 0;
    if (i > 0) {
      tenant_counters_[s->req.tenant]->batched.fetch_add(1, std::memory_order_relaxed);
      batched_reads_.fetch_add(1, std::memory_order_relaxed);
    }
    complete(s, std::move(r));
  }
}

void StorageNode::serve_write(std::size_t worker, const StatePtr& state) {
  const Request& req = state->req;
  const StairConfig& cfg = store_.cfg;
  WriteSlot& slot = *write_slots_[worker];
  Response resp;

  if (!slot.stripe) {
    slot.stripe = std::make_unique<StripeBuffer>(codec_.code(), store_.symbol_bytes);
    slot.data = AlignedBuffer(slot.stripe->data_size());
  }

  // Stage the payload at full stripe width (tail stripes encode zero-padded,
  // exactly like encode_file laid them down).
  std::memcpy(slot.data.data(), req.data.data(), req.data.size());
  if (req.data.size() < slot.data.size())
    std::memset(slot.data.data() + req.data.size(), 0, slot.data.size() - req.data.size());
  slot.stripe->set_data(slot.data.span());

  range_lock_.lock_exclusive(req.stripe);

  Codec::Handle encoded = codec_.submit_encode(slot.stripe->view());
  bool ok = true;
  std::string error;
  try {
    encoded.wait();
  } catch (const std::exception& e) {
    ok = false;
    error = e.what();
  }

  std::vector<std::uint64_t> new_checksums;
  if (ok) {
    // Gather each device's chunk into aligned staging, hash its sectors, and
    // rewrite all n chunks in place through the long-lived fds.
    new_checksums.assign(cfg.n * cfg.r, 0);
    const std::size_t padded = store_.padded_chunk_bytes();
    const StripeView& view = slot.stripe->view();

    std::mutex io_mu;
    std::condition_variable io_cv;
    std::size_t io_pending = cfg.n;
    int io_error = 0;

    std::vector<IoBufferPool::Lease> chunks(cfg.n);
    for (std::size_t j = 0; j < cfg.n; ++j) {
      chunks[j] = write_staging_->acquire();
      IoBuffer& chunk = *chunks[j];
      for (std::size_t i = 0; i < cfg.r; ++i) {
        std::span<const std::uint8_t> sym = view.stored[i * cfg.n + j];
        std::memcpy(chunk.data + i * store_.symbol_bytes, sym.data(), sym.size());
        new_checksums[j * cfg.r + i] = content_hash64(sym);
      }
      if (padded > store_.chunk_bytes())
        std::memset(chunk.data + store_.chunk_bytes(), 0, padded - store_.chunk_bytes());
      engine_->write(dev_fds_[j], store_.chunk_offset(req.stripe),
                     std::span<const std::uint8_t>(chunk.data, padded),
                     [&](const io::Result& r) {
                       std::lock_guard<std::mutex> lock(io_mu);
                       if (!r.ok() && io_error == 0) io_error = r.error;
                       if (--io_pending == 0) io_cv.notify_all();
                     });
    }
    {
      std::unique_lock<std::mutex> lock(io_mu);
      io_cv.wait(lock, [&] { return io_pending == 0; });
    }
    if (io_error != 0) {
      ok = false;
      error = std::string("chunk write failed: ") + std::strerror(io_error);
    }
  }

  if (ok) {
    // The store's new truth: sector checksums, this stripe's data fold, the
    // whole-file fold — then the manifest on disk, so the recovery point
    // trails each write by at most one save.
    std::lock_guard<std::mutex> lock(manifest_mu_);
    for (std::size_t j = 0; j < cfg.n; ++j)
      for (std::size_t i = 0; i < cfg.r; ++i)
        store_.sector_checksums[(req.stripe * cfg.n + j) * cfg.r + i] =
            new_checksums[j * cfg.r + i];
    stripe_hashes_[req.stripe] = stripe_hash(req.stripe);
    store_.data_checksum = combine_hashes(stripe_hashes_);
    try {
      store_.save(store_dir_);
    } catch (const std::exception& e) {
      // Chunks are on disk and self-consistent in memory; the on-disk
      // manifest is stale until the next successful flush (drain retries).
      manifest_dirty_ = true;
      error = e.what();
    }
  }

  range_lock_.unlock_exclusive(req.stripe);

  resp.ok = ok;
  resp.error = std::move(error);
  resp.bytes = ok ? req.data.size() : 0;
  complete(state, std::move(resp));
}

std::uint64_t StorageNode::stripe_hash(std::size_t stripe) const {
  std::vector<std::uint64_t> hashes;
  hashes.reserve(data_positions_.size());
  for (const auto& [row, dev] : data_positions_)
    hashes.push_back(store_.sector_checksums[(stripe * store_.cfg.n + dev) * store_.cfg.r + row]);
  return combine_hashes(hashes);
}

void StorageNode::flush_manifest() {
  std::lock_guard<std::mutex> lock(manifest_mu_);
  store_.data_checksum = combine_hashes(stripe_hashes_);
  store_.save(store_dir_);
  manifest_dirty_ = false;
}

void StorageNode::complete(const StatePtr& state, Response response) {
  const auto now = std::chrono::steady_clock::now();
  const bool dispatched = state->dispatched.time_since_epoch().count() != 0;
  response.queue_seconds =
      std::chrono::duration<double>((dispatched ? state->dispatched : now) - state->admitted)
          .count();
  response.service_seconds =
      dispatched ? std::chrono::duration<double>(now - state->dispatched).count() : 0.0;
  const std::uint64_t total_nanos = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - state->admitted).count());

  if (!response.rejected) {
    switch (state->req.type) {
      case RequestType::kRead:
        reads_.fetch_add(1, std::memory_order_relaxed);
        read_latency_.record(total_nanos);
        break;
      case RequestType::kWrite:
        writes_.fetch_add(1, std::memory_order_relaxed);
        write_latency_.record(total_nanos);
        break;
      case RequestType::kScan:
        scans_.fetch_add(1, std::memory_order_relaxed);
        scan_latency_.record(total_nanos);
        break;
    }
    if (response.degraded_stripes > 0)
      degraded_reads_.fetch_add(1, std::memory_order_relaxed);
    if (!response.ok) failed_requests_.fetch_add(1, std::memory_order_relaxed);
    tenant_counters_[state->req.tenant]->completed.fetch_add(1, std::memory_order_relaxed);
  }

  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->response = std::move(response);
    state->done.store(true, std::memory_order_release);
  }
  state->cv.notify_all();
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

StorageNode::Stats StorageNode::stats() const {
  Stats s;
  s.tenants.resize(options_.tenants);
  for (std::size_t t = 0; t < tenant_counters_.size(); ++t) {
    const TenantCounters& tc = *tenant_counters_[t];
    s.tenants[t].submitted = tc.submitted.load(std::memory_order_relaxed);
    s.tenants[t].completed = tc.completed.load(std::memory_order_relaxed);
    s.tenants[t].rejected = tc.rejected.load(std::memory_order_relaxed);
    s.tenants[t].batched = tc.batched.load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    if (queues_) {
      for (std::size_t t = 0; t < options_.tenants; ++t)
        s.tenants[t].queue_depth = queues_->tenant_depth(t);
    }
    s.queue_depth = queued_total_.load(std::memory_order_relaxed);
    s.in_service = in_service_.load(std::memory_order_relaxed);
  }
  s.reads = reads_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.scans = scans_.load(std::memory_order_relaxed);
  s.degraded_reads = degraded_reads_.load(std::memory_order_relaxed);
  s.failed_requests = failed_requests_.load(std::memory_order_relaxed);
  s.batched_reads = batched_reads_.load(std::memory_order_relaxed);
  s.scrub = scrubber_ ? scrubber_->background_report() : ScrubReport{};
  s.scrub.accumulate(scrub_final_);
  if (engine_) s.io = engine_->stats();
  s.read_latency = read_latency_.snapshot();
  s.write_latency = write_latency_.snapshot();
  s.scan_latency = scan_latency_.snapshot();
  return s;
}

// ---------------------------------------------------------------------------
// Environment knobs
// ---------------------------------------------------------------------------

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (errno != 0 || end == raw || *end != '\0')
    throw std::runtime_error(std::string(name) + ": invalid value '" + raw + "'");
  return static_cast<std::size_t>(v);
}

bool env_bool(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  const std::string v(raw);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::runtime_error(std::string(name) + ": invalid value '" + v + "'");
}

}  // namespace

StorageNode::Options node_options_from_env(StorageNode::Options base) {
  base.tenants = env_size("STAIR_NODE_TENANTS", base.tenants);
  base.queue_capacity = env_size("STAIR_NODE_QUEUE", base.queue_capacity);
  base.workers = env_size("STAIR_NODE_WORKERS", base.workers);
  base.batch_limit = env_size("STAIR_NODE_BATCH", base.batch_limit);
  base.scrub = env_bool("STAIR_NODE_SCRUB", base.scrub);
  if (base.tenants == 0) throw std::runtime_error("STAIR_NODE_TENANTS: must be >= 1");
  if (base.queue_capacity == 0) throw std::runtime_error("STAIR_NODE_QUEUE: must be >= 1");
  return base;
}

}  // namespace stair
