// Codec — the session layer: one execution path from a single call to many
// stripes in flight.
//
// The paper's speed numbers (§6.2) are per-stripe, but a serving system sees
// millions of stripes, not one: the way to keep a multi-core machine busy is
// N whole stripes in flight — one stripe per pool task — not one stripe
// sliced ever thinner across workers. A Codec is a session that owns
// everything a stream of coding operations amortizes:
//
//   * the StairCode (schedules compile once per session),
//   * a DecodePlanCache (failure-epoch masks invert once per session),
//   * a lazily built UpdateEngine (patch lists resolve once per session),
//   * a WorkspacePool of reusable scratch (allocations settle at the
//     in-flight high-water mark),
//   * a handle to the persistent ThreadPool (threads park once per process).
//
// submit_encode / submit_decode / submit_update enqueue one stripe's work and
// return a completion Handle immediately; Handle::wait() blocks (and
// rethrows) for that stripe only, wait_all() drains the session. When a
// submission arrives while the pool has idle lanes — a batch too small to
// fill the machine — the stripe is internally range-sliced across the idle
// width, so batch=1 behaves like the classic pooled `*_parallel` call and a
// deep batch runs stripe-per-task: the same execution path, saturating in
// both regimes. Underneath, everything funnels into the ExecPolicy-unified
// StairCode/UpdateEngine layer; Codec adds no coding logic of its own.
//
// Usage sketch:
//   Codec codec({.n = 8, .r = 16, .m = 2, .e = {1, 2}});
//   std::vector<Codec::Handle> h;
//   for (auto& stripe : stripes) h.push_back(codec.submit_encode(stripe.view()));
//   codec.wait_all();                        // or h[i].wait() individually
//
// Thread-safety: submits and waits may come from any thread. The stripe
// regions (and an update's new_content) must stay valid and untouched until
// the handle completes; concurrent jobs must target disjoint stripes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "gf/region.h"
#include "stair/plan_cache.h"
#include "stair/stair_code.h"
#include "stair/update_engine.h"
#include "util/buffer.h"
#include "util/workspace_pool.h"

namespace stair {

class ThreadPool;
struct CodecJob;  // internal job state (codec.cpp)

class Codec {
 public:
  struct Options {
    /// Distinct erasure masks the session's decode-plan cache keeps.
    std::size_t plan_cache_capacity = 64;
    /// Pool to run on; nullptr = the process-wide ThreadPool::default_pool().
    ThreadPool* pool = nullptr;
    /// Symbols below this size are never range-sliced (slicing overhead
    /// dominates); they run as one task. 0 (the default) delegates the
    /// threshold to the measured autotuner (stair/autotune.h) — per-slice
    /// compute time must clear the measured pool dispatch overhead — with
    /// the classic 4096 as the fallback when tuning is off or unmeasured.
    /// A nonzero value pins the threshold exactly as before.
    std::size_t min_slice_bytes = 0;
  };

  /// One submitted job's completion handle. Cheap to copy; default-constructed
  /// handles are invalid. Handles may outlive neither the Codec nor the
  /// stripe they reference.
  class Handle {
   public:
    Handle() = default;

    bool valid() const { return job_ != nullptr; }
    /// True once every subtask of the job has retired (non-blocking poll).
    bool done() const;
    /// Blocks until the job completes; rethrows the first subtask exception.
    void wait() const;
    /// wait(), then the job's outcome: false only for a decode whose mask is
    /// outside the code's coverage (encode/update always true).
    bool ok() const;

   private:
    friend class Codec;
    explicit Handle(std::shared_ptr<CodecJob> job) : job_(std::move(job)) {}
    std::shared_ptr<CodecJob> job_;
  };

  /// Session over a code built from `cfg` (owned by the session).
  explicit Codec(StairConfig cfg);
  Codec(StairConfig cfg, Options options);
  /// Session over an existing code (not owned; must outlive the session).
  explicit Codec(const StairCode& code);
  Codec(const StairCode& code, Options options);

  /// Destruction drains the session (wait_all).
  ~Codec();

  Codec(const Codec&) = delete;
  Codec& operator=(const Codec&) = delete;

  const StairCode& code() const { return *code_; }
  ThreadPool& pool() const { return *pool_; }
  DecodePlanCache& plan_cache() { return plan_cache_; }
  const DecodePlanCache& plan_cache() const { return plan_cache_; }
  /// The session's update engine (built on first use).
  const UpdateEngine& update_engine() const;

  // --- submission -----------------------------------------------------------

  /// Optional continuation attached to a submit: runs exactly once when the
  /// job completes, with `ok` false for a failed decode or a job that threw
  /// (Handle::wait still rethrows). It fires on the worker that retires the
  /// job's last subtask — before the job is counted complete by wait_all(),
  /// though an individual Handle::wait may return concurrently — and must
  /// not throw or block on this Codec's completions. This is the hook the
  /// IO pipeline chains disk writes onto, so compute completions flow back
  /// into IO without a blocked thread in between. For an immediately-done
  /// submission (unrecoverable decode mask) it runs inline on the submitter.
  using Completion = std::function<void(bool ok)>;

  /// Enqueues one stripe encode. Malformed views throw here, not in the job.
  Handle submit_encode(const StripeView& stripe,
                       EncodingMethod method = EncodingMethod::kAuto,
                       Completion then = nullptr);

  /// Enqueues one stripe decode through the session plan cache. The mask is
  /// resolved to a compiled plan at submit time (cache hit: O(1); miss: one
  /// inversion+compile, shared with every later stripe of the epoch). An
  /// unrecoverable mask yields an immediately-done handle with ok() false.
  Handle submit_decode(const StripeView& stripe, const std::vector<bool>& erased,
                       Completion then = nullptr);

  /// Enqueues one incremental update (data_index, new bytes) on a stripe.
  Handle submit_update(const StripeView& stripe, std::size_t data_index,
                       std::span<const std::uint8_t> new_content,
                       Completion then = nullptr);

  /// Blocks until every job submitted so far has completed. Does NOT rethrow
  /// job exceptions (those surface through each Handle::wait / ok).
  void wait_all();

  // --- introspection --------------------------------------------------------

  /// Jobs submitted / completed over the session lifetime.
  std::uint64_t jobs_submitted() const { return jobs_submitted_.load(std::memory_order_relaxed); }
  std::uint64_t jobs_completed() const { return jobs_completed_.load(std::memory_order_relaxed); }
  /// Jobs not yet completed.
  std::size_t jobs_in_flight() const;
  /// Workspace slots the session ever allocated (== in-flight high-water mark).
  std::size_t workspaces_created() const { return workspaces_.created(); }

 private:
  std::size_t decide_subtasks(std::size_t symbol_size, std::size_t touched,
                              gf::RegionLayout layout, std::size_t* slice_bytes) const;
  Handle launch(const std::shared_ptr<CodecJob>& job, std::size_t subtasks);

  std::unique_ptr<const StairCode> owned_code_;  // cfg constructor only
  const StairCode* code_;
  ThreadPool* pool_;
  Options options_;
  DecodePlanCache plan_cache_;
  WorkspacePool<Workspace> workspaces_;
  WorkspacePool<AlignedBuffer> delta_buffers_;  // update jobs' delta scratch

  mutable std::mutex engine_mu_;
  mutable std::unique_ptr<UpdateEngine> update_engine_;  // lazy, engine_mu_

  std::atomic<std::uint64_t> jobs_submitted_{0}, jobs_completed_{0};
  std::atomic<std::size_t> subtasks_in_flight_{0};  // slicing decisions read this

  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::size_t jobs_open_ = 0;  // guarded by jobs_mu_; wait_all watches it
};

}  // namespace stair
