// Incremental data updates (§6.3 in practice).
//
// Rewriting one data sector in place must patch every parity symbol that
// depends on it. Re-encoding the whole stripe costs the full Eq. 5/6 work;
// the linear structure allows the minimal alternative
//     parity ^= coeff * (old_data ^ new_data)
// touching exactly the symbols the update-penalty analysis counts. This is
// the read-modify-write path storage systems actually run, and the reason
// §6.3 steers STAIR at WORM/backup workloads: `parity_writes()` per update is
// the device-write amplification.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stair/stair_code.h"

namespace stair {

/// Pre-compiled per-data-symbol parity patch lists for one code.
class UpdateEngine {
 public:
  /// Builds the patch lists from the code's generator coefficients (triggers
  /// coefficient derivation on first use; cached thereafter).
  explicit UpdateEngine(const StairCode& code);

  const StairCode& code() const { return *code_; }

  /// Overwrites data symbol `data_index` (index into layout().data_ids())
  /// with `new_content` and incrementally patches all dependent parities.
  /// The stripe must be consistently encoded beforehand; it is consistently
  /// encoded afterwards.
  void update(const StripeView& stripe, std::size_t data_index,
              std::span<const std::uint8_t> new_content) const;

  /// update() with the delta computation and every parity patch spread over
  /// up to `threads` pool participants (0 = pool width) in cache-aware byte
  /// slices: each slice computes its delta range and applies all patches
  /// while that range is cache-resident. Byte-identical to update();
  /// worthwhile for megabyte symbols.
  void update_parallel(const StripeView& stripe, std::size_t data_index,
                       std::span<const std::uint8_t> new_content,
                       std::size_t threads = 0) const;

  /// Number of parity symbols rewritten by an update of `data_index` —
  /// exactly the §6.3 update penalty of that symbol.
  std::size_t parity_writes(std::size_t data_index) const {
    return patches_[data_index].size();
  }

  /// Mult_XOR count of one update (1 delta + one per parity patch).
  std::size_t update_cost(std::size_t data_index) const {
    return 1 + patches_[data_index].size();
  }

 private:
  struct Patch {
    std::uint32_t coeff;
    // The coefficient resolved to its cached split-table kernel at engine
    // build time, so the per-update patch loop performs no table work.
    std::shared_ptr<const gf::CompiledKernel> kernel;
    std::size_t stored_index;  // row * n + col of the parity symbol
    std::size_t global_index;  // index into outside_globals, or SIZE_MAX
  };

  const StairCode* code_;
  std::vector<std::vector<Patch>> patches_;  // indexed by data symbol
};

}  // namespace stair
