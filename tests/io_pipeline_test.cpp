// IO pipeline battery: clean round trips on every IO backend, the
// fault-injection matrix (device-only / sector-only / mixed patterns, EIO,
// short reads, torn writes — every recoverable class reconstructs
// byte-identically, unrecoverable classes surface as failed handles), the
// deterministic seeded injector, and cross-backend determinism of the whole
// file path (GF backend x region layout x IO backend x pool width).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "gf/kernel.h"
#include "gf/region.h"
#include "stair/io_pipeline.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace stair {
namespace {

namespace fs = std::filesystem;

// --- plumbing ---------------------------------------------------------------

struct TempDir {
  fs::path path;

  explicit TempDir(const std::string& hint) {
    path = fs::temp_directory_path() /
           ("stair_io_test_" + hint + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }

  std::string str() const { return path.string(); }
};

std::vector<std::uint8_t> write_random_file(const fs::path& p, std::size_t bytes,
                                            std::uint64_t seed) {
  std::vector<std::uint8_t> data(bytes);
  Rng rng(seed);
  rng.fill(data);
  std::ofstream out(p, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return data;
}

std::vector<std::uint8_t> read_all(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Flips bytes in [offset, offset+len) of `p` — guaranteed content change,
/// so the sector checksums must mismatch.
void flip_bytes(const fs::path& p, std::uint64_t offset, std::size_t len) {
  std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f) << "cannot open " << p;
  std::vector<char> buf(len);
  f.seekg(static_cast<std::streamoff>(offset));
  f.read(buf.data(), static_cast<std::streamsize>(len));
  for (char& c : buf) c = static_cast<char>(c ^ 0xA5);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(buf.data(), static_cast<std::streamsize>(len));
}

struct StoreCase {
  StairConfig cfg;
  std::size_t symbol;
};

// Three configs spanning the coverage shapes (m=1/2, two- and three-entry e).
std::vector<StoreCase> fault_cases() {
  return {
      {{.n = 6, .r = 4, .m = 1, .e = {1, 2}, .w = 8}, 512},
      {{.n = 8, .r = 6, .m = 2, .e = {1, 2}, .w = 8}, 256},
      {{.n = 9, .r = 4, .m = 2, .e = {1, 1, 2}, .w = 8}, 384},
  };
}

std::vector<io::Backend> io_backends() {
  std::vector<io::Backend> b{io::Backend::kThreads};
  if (io::Engine::uring_supported()) b.push_back(io::Backend::kUring);
  return b;
}

/// Encodes `bytes` of seeded random data into dir/store and returns them.
std::vector<std::uint8_t> encode_store(const TempDir& dir, const StoreCase& c,
                                       std::size_t bytes, std::uint64_t seed,
                                       IoPipeline::Options opts = {},
                                       IoPipeline::Stats* stats_out = nullptr) {
  const auto data = write_random_file(dir.path / "input.bin", bytes, seed);
  Codec codec(c.cfg);
  opts.symbol_bytes = c.symbol;
  IoPipeline pipeline(codec, opts);
  const auto st = pipeline.encode_file((dir.path / "input.bin").string(),
                                       (dir.path / "store").string());
  if (stats_out) *stats_out = st;
  EXPECT_TRUE(st.ok) << st.error;
  return data;
}

IoPipeline::Stats decode_store(const TempDir& dir, const StoreCase& c,
                               IoPipeline::Options opts = {}) {
  Codec codec(c.cfg);
  IoPipeline pipeline(codec, opts);
  return pipeline.decode_file((dir.path / "store").string(),
                              (dir.path / "output.bin").string());
}

std::string dev_path(const TempDir& dir, std::size_t j) {
  return StripeStore::device_path((dir.path / "store").string(), j);
}

// --- clean round trips ------------------------------------------------------

TEST(IoPipeline, RoundTripAllBackendsAndDepths) {
  for (io::Backend backend : io_backends()) {
    for (std::size_t depth : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE(std::string(io::backend_name(backend)) + " depth=" +
                   std::to_string(depth));
      const StoreCase c = fault_cases()[0];
      TempDir dir("roundtrip");
      // 4 full stripes + a partial tail exercises padding and ftruncate.
      Codec codec(c.cfg);
      const std::size_t data_bytes =
          codec.code().data_symbol_count() * c.symbol * 4 + 1234;
      IoPipeline::Stats enc;
      const auto data = encode_store(dir, c, data_bytes, 42,
                                     {.queue_depth = depth, .backend = backend}, &enc);
      EXPECT_EQ(enc.stripes, 5u);
      const auto dec = decode_store(dir, c, {.queue_depth = depth, .backend = backend});
      EXPECT_TRUE(dec.ok) << dec.error;
      EXPECT_EQ(dec.degraded_stripes, 0u);
      EXPECT_EQ(read_all(dir.path / "output.bin"), data);
    }
  }
}

TEST(IoPipeline, EmptyFileRoundTrip) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("empty");
  const auto data = encode_store(dir, c, 0, 1);
  const auto dec = decode_store(dir, c);
  EXPECT_TRUE(dec.ok) << dec.error;
  EXPECT_EQ(dec.stripes, 0u);
  EXPECT_EQ(read_all(dir.path / "output.bin"), data);
}

TEST(IoPipeline, SlotRingSettlesAtQueueDepth) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("slots");
  write_random_file(dir.path / "input.bin", 64 * 1024, 7);
  Codec codec(c.cfg);
  IoPipeline pipeline(codec, {.queue_depth = 3, .symbol_bytes = c.symbol});
  const auto enc = pipeline.encode_file((dir.path / "input.bin").string(),
                                        (dir.path / "store").string());
  ASSERT_TRUE(enc.ok) << enc.error;
  const auto dec = pipeline.decode_file((dir.path / "store").string(),
                                        (dir.path / "output.bin").string());
  ASSERT_TRUE(dec.ok) << dec.error;
  // The ring bounds stripes in flight; the pool may briefly overshoot while
  // a retiring slot's lease unwinds, but it must not grow with stripe count.
  EXPECT_LE(pipeline.slots_created(), 3u + 2u);
}

// --- recoverable fault classes ----------------------------------------------

// Every recoverable pattern class (device-only, sector-only, mixed), for all
// three coverage shapes. Each asserts byte-identical reconstruction and that
// the degraded path actually ran.

TEST(IoPipelineFaults, DeviceOnlyPatterns) {
  for (const StoreCase& c : fault_cases()) {
    SCOPED_TRACE(c.cfg.to_string());
    TempDir dir("dev_only");
    const auto data = encode_store(dir, c, 150 * 1000, 11);
    // Lose exactly m whole devices — the paper's device-failure budget.
    for (std::size_t j = 0; j < c.cfg.m; ++j)
      ASSERT_TRUE(fs::remove(dev_path(dir, j + 1)));
    const auto dec = decode_store(dir, c);
    EXPECT_TRUE(dec.ok) << dec.error;
    EXPECT_EQ(dec.degraded_stripes, dec.stripes);
    EXPECT_EQ(dec.chunks_missing, c.cfg.m * dec.stripes);
    EXPECT_EQ(dec.failed_stripes, 0u);
    EXPECT_EQ(read_all(dir.path / "output.bin"), data);
  }
}

TEST(IoPipelineFaults, SectorOnlyPatterns) {
  for (const StoreCase& c : fault_cases()) {
    SCOPED_TRACE(c.cfg.to_string());
    TempDir dir("sector_only");
    const auto data = encode_store(dir, c, 120 * 1000, 12);
    // Per stripe 0 and 1: chunk of device k+1 gets exactly e[k] corrupt
    // sectors — the maximal sector-only pattern the coverage vector admits.
    // Offsets come from the manifest: the chunk stride is padded when the
    // store was encoded in direct mode.
    const auto store = StripeStore::load((dir.path / "store").string());
    std::size_t expect_corrupt = 0;
    for (std::size_t s = 0; s < 2; ++s)
      for (std::size_t k = 0; k < c.cfg.e.size(); ++k)
        for (std::size_t i = 0; i < c.cfg.e[k]; ++i) {
          flip_bytes(dev_path(dir, k + 1), store.chunk_offset(s) + i * c.symbol, 64);
          ++expect_corrupt;
        }
    const auto dec = decode_store(dir, c);
    EXPECT_TRUE(dec.ok) << dec.error;
    EXPECT_EQ(dec.degraded_stripes, 2u);
    EXPECT_EQ(dec.sectors_corrupt, expect_corrupt);
    EXPECT_EQ(read_all(dir.path / "output.bin"), data);
  }
}

TEST(IoPipelineFaults, MixedDeviceAndSectorPatterns) {
  for (const StoreCase& c : fault_cases()) {
    SCOPED_TRACE(c.cfg.to_string());
    TempDir dir("mixed");
    const auto data = encode_store(dir, c, 130 * 1000, 13);
    // m whole devices lost AND the full e-shaped sector pattern on surviving
    // devices — the exact worst case the STAIR construction guarantees.
    for (std::size_t j = 0; j < c.cfg.m; ++j)
      ASSERT_TRUE(fs::remove(dev_path(dir, j)));
    const auto store = StripeStore::load((dir.path / "store").string());
    for (std::size_t s = 0; s < 2; ++s)
      for (std::size_t k = 0; k < c.cfg.e.size(); ++k)
        for (std::size_t i = 0; i < c.cfg.e[k]; ++i)
          flip_bytes(dev_path(dir, c.cfg.m + k), store.chunk_offset(s) + i * c.symbol, 32);
    const auto dec = decode_store(dir, c);
    EXPECT_TRUE(dec.ok) << dec.error;
    EXPECT_EQ(dec.degraded_stripes, dec.stripes);
    EXPECT_EQ(dec.failed_stripes, 0u);
    EXPECT_EQ(read_all(dir.path / "output.bin"), data);
  }
}

// --- injected IO faults (engine-level) --------------------------------------

TEST(IoPipelineFaults, EioChunkReadActsAsDeviceLossForItsStripe) {
  const StoreCase c = fault_cases()[1];
  TempDir dir("eio");
  const auto data = encode_store(dir, c, 100 * 1000, 14);
  const auto store = StripeStore::load((dir.path / "store").string());

  auto injected = std::make_unique<io::FaultInjectingEngine>(
      io::Engine::create(io::Backend::kThreads));
  // Chunk (stripe 1, device 3) dies with EIO; stripe 0/2... stay clean.
  injected->add_fault({.kind = io::Fault::Kind::kReadError,
                       .file = "dev_03.bin",
                       .offset = store.chunk_offset(1),
                       .length = store.padded_chunk_bytes()});
  const auto dec = decode_store(dir, c, {.engine = injected.get()});
  EXPECT_TRUE(dec.ok) << dec.error;
  EXPECT_EQ(dec.degraded_stripes, 1u);
  EXPECT_EQ(dec.chunks_missing, 1u);
  EXPECT_GE(injected->hits(), 1u);
  EXPECT_EQ(read_all(dir.path / "output.bin"), data);
}

TEST(IoPipelineFaults, ShortChunkReadActsAsDeviceLossForItsStripe) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("short");
  const auto data = encode_store(dir, c, 90 * 1000, 15);
  const auto store = StripeStore::load((dir.path / "store").string());

  auto injected = std::make_unique<io::FaultInjectingEngine>(
      io::Engine::create(io::Backend::kThreads));
  injected->add_fault({.kind = io::Fault::Kind::kShortRead,
                       .file = "dev_02.bin",
                       .offset = 0,
                       .length = store.padded_chunk_bytes(),
                       .keep_bytes = store.padded_chunk_bytes() / 2});
  const auto dec = decode_store(dir, c, {.engine = injected.get()});
  EXPECT_TRUE(dec.ok) << dec.error;
  EXPECT_EQ(dec.degraded_stripes, 1u);
  EXPECT_EQ(dec.chunks_missing, 1u);
  EXPECT_EQ(read_all(dir.path / "output.bin"), data);
}

TEST(IoPipelineFaults, TornWriteIsCaughtBySectorChecksumsOnRead) {
  const StoreCase c = fault_cases()[1];
  TempDir dir("torn");
  const std::size_t chunk_bytes = c.cfg.r * c.symbol;

  auto injected = std::make_unique<io::FaultInjectingEngine>(
      io::Engine::create(io::Backend::kThreads));
  // The write of chunk (stripe 0, device 5) tears after 1.5 symbols but
  // REPORTS success: encode must complete "ok" — this is silent corruption.
  injected->add_fault({.kind = io::Fault::Kind::kTornWrite,
                       .file = "dev_05.bin",
                       .offset = 0,
                       .length = chunk_bytes,
                       .keep_bytes = c.symbol + c.symbol / 2});
  IoPipeline::Stats enc;
  const auto data =
      encode_store(dir, c, 110 * 1000, 16, {.engine = injected.get()}, &enc);
  ASSERT_TRUE(enc.ok) << enc.error;  // the tear is not observable at write time
  EXPECT_GE(injected->hits(), 1u);

  // An unmodified engine decodes: the checksums catch the lie, the torn
  // sectors (all but the first whole one) are erased and reconstructed.
  const auto dec = decode_store(dir, c);
  EXPECT_TRUE(dec.ok) << dec.error;
  EXPECT_EQ(dec.degraded_stripes, 1u);
  EXPECT_GE(dec.sectors_corrupt, c.cfg.r - 2);
  EXPECT_EQ(read_all(dir.path / "output.bin"), data);
}

TEST(IoPipelineFaults, DeviceWriteErrorFailsEncodeCleanly) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("werr");
  write_random_file(dir.path / "input.bin", 80 * 1000, 17);
  auto injected = std::make_unique<io::FaultInjectingEngine>(
      io::Engine::create(io::Backend::kThreads));
  injected->add_fault({.kind = io::Fault::Kind::kWriteError, .file = "dev_01.bin"});
  Codec codec(c.cfg);
  IoPipeline pipeline(codec, {.symbol_bytes = c.symbol, .engine = injected.get()});
  const auto st = pipeline.encode_file((dir.path / "input.bin").string(),
                                       (dir.path / "store").string());
  EXPECT_FALSE(st.ok);
  EXPECT_FALSE(st.error.empty());
}

// --- unrecoverable patterns -------------------------------------------------

TEST(IoPipelineFaults, UnrecoverableDevicePatternFailsWithoutCrashing) {
  for (const StoreCase& c : fault_cases()) {
    SCOPED_TRACE(c.cfg.to_string());
    TempDir dir("unrec_dev");
    encode_store(dir, c, 100 * 1000, 18);
    for (std::size_t j = 0; j <= c.cfg.m; ++j)  // m+1 devices: over budget
      ASSERT_TRUE(fs::remove(dev_path(dir, j)));
    const auto dec = decode_store(dir, c);
    EXPECT_FALSE(dec.ok);
    EXPECT_EQ(dec.failed_stripes, dec.stripes);
    EXPECT_FALSE(dec.error.empty());
    // The output exists at full size (holes where nothing was recoverable).
    EXPECT_TRUE(fs::exists(dir.path / "output.bin"));
    EXPECT_EQ(fs::file_size(dir.path / "output.bin"),
              StripeStore::load((dir.path / "store").string()).file_size);
  }
}

TEST(IoPipelineFaults, UnrecoverableSectorPatternFailsOnlyItsStripe) {
  const StoreCase c = fault_cases()[0];  // m=1, e={1,2}
  TempDir dir("unrec_sector");
  const auto data = encode_store(dir, c, 100 * 1000, 19);
  const auto store = StripeStore::load((dir.path / "store").string());
  // Stripe 1: corrupt the SAME row in m + m' + 1 = 4 distinct chunks — one
  // row with 4 erasures exceeds the row code's m + m' budget, and as chunk
  // errors {1,1,1,1} it cannot fit m plus e = {1,2} either. Self-check the
  // pattern is really outside the guarantee before asserting on the stats.
  std::vector<bool> stripe_mask(c.cfg.r * c.cfg.n, false);
  for (std::size_t j = 0; j < 4; ++j) {
    flip_bytes(dev_path(dir, j), store.chunk_offset(1) + 0 * c.symbol, 16);
    stripe_mask[0 * c.cfg.n + j] = true;
  }
  ASSERT_FALSE(StairCode(c.cfg).is_recoverable(stripe_mask));
  const auto dec = decode_store(dir, c);
  EXPECT_FALSE(dec.ok);
  EXPECT_EQ(dec.failed_stripes, 1u);
  // Every other stripe still reconstructed: compare all bytes outside
  // stripe 1's data range.
  Codec codec(c.cfg);
  const std::size_t stripe_data = codec.code().data_symbol_count() * c.symbol;
  const auto out = read_all(dir.path / "output.bin");
  ASSERT_EQ(out.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i >= stripe_data && i < 2 * stripe_data) continue;
    ASSERT_EQ(out[i], data[i]) << "byte " << i << " outside the failed stripe";
  }
}

// --- seeded injector determinism --------------------------------------------

// The soak/fault harness promise: a fault plan drawn from a seed behaves
// identically on every run — same stats, same bytes — so any failure
// reproduces from its logged seed.
TEST(IoPipelineFaults, SeededFaultPlanIsDeterministic) {
  const StoreCase c = fault_cases()[1];
  const std::uint64_t seed = 0xF00D;
  SCOPED_TRACE("fault plan seed=" + std::to_string(seed));
  TempDir dir("seeded");
  const auto data = encode_store(dir, c, 140 * 1000, 20);
  const std::size_t chunk_bytes = c.cfg.r * c.symbol;
  const std::size_t stripes = StripeStore::load((dir.path / "store").string()).stripes;

  auto build_plan = [&](io::FaultInjectingEngine& eng) {
    Rng rng(seed);
    for (int k = 0; k < 3; ++k) {
      const std::size_t s = rng.next_below(stripes);
      const std::size_t j = rng.next_below(c.cfg.n);
      char file[16];
      std::snprintf(file, sizeof file, "dev_%02zu.bin", j);
      const auto kind = rng.chance(0.5) ? io::Fault::Kind::kReadError
                                        : io::Fault::Kind::kShortRead;
      eng.add_fault({.kind = kind,
                     .file = file,
                     .offset = s * chunk_bytes,
                     .length = chunk_bytes,
                     .keep_bytes = chunk_bytes / 4});
    }
  };

  auto run_once = [&](const fs::path& out) {
    auto injected = std::make_unique<io::FaultInjectingEngine>(
        io::Engine::create(io::Backend::kThreads));
    build_plan(*injected);
    Codec codec(c.cfg);
    IoPipeline pipeline(codec, {.engine = injected.get()});
    return pipeline.decode_file((dir.path / "store").string(), out.string());
  };

  const auto first = run_once(dir.path / "out1.bin");
  const auto second = run_once(dir.path / "out2.bin");
  EXPECT_EQ(first.ok, second.ok);
  EXPECT_EQ(first.degraded_stripes, second.degraded_stripes);
  EXPECT_EQ(first.failed_stripes, second.failed_stripes);
  EXPECT_EQ(first.chunks_missing, second.chunks_missing);
  EXPECT_EQ(read_all(dir.path / "out1.bin"), read_all(dir.path / "out2.bin"));
  if (first.ok) EXPECT_EQ(read_all(dir.path / "out1.bin"), data);
}

// --- cross-backend determinism ----------------------------------------------

// Extends stair_sweep_test's LayoutAndBackendEquivalence to the IO path: the
// bytes that land on disk (device files AND manifest) and the bytes decoded
// back must be identical across every GF backend x region layout x IO
// backend x pool width for a golden config set.
TEST(IoPipelineDeterminism, CrossBackendByteIdenticalStores) {
  struct DispatchGuard {
    ~DispatchGuard() {
      gf::reset_layout();
      gf::reset_backend();
    }
  } guard;

  for (StoreCase c : {StoreCase{{.n = 6, .r = 4, .m = 1, .e = {1, 2}, .w = 8}, 256},
                      StoreCase{{.n = 6, .r = 4, .m = 1, .e = {1, 2}, .w = 16}, 256}}) {
    SCOPED_TRACE(c.cfg.to_string());
    TempDir dir("xdet");
    const auto data = write_random_file(dir.path / "input.bin", 90 * 1000, 21);

    std::vector<std::vector<std::uint8_t>> ref_devs;
    std::vector<std::uint8_t> ref_manifest;

    for (gf::Backend gfb : {gf::Backend::kScalar, gf::Backend::kSsse3,
                            gf::Backend::kAvx2, gf::Backend::kGfni}) {
      if (!gf::backend_supported(gfb)) continue;
      ASSERT_TRUE(gf::force_backend(gfb));
      for (gf::RegionLayout layout :
           {gf::RegionLayout::kStandard, gf::RegionLayout::kAltmap}) {
        gf::force_layout(layout);
        for (io::Backend iob : io_backends()) {
          for (std::size_t width : {std::size_t{1}, std::size_t{3}}) {
            SCOPED_TRACE(std::string(gf::backend_name(gfb)) + "/" +
                         gf::layout_name(layout) + "/" + io::backend_name(iob) +
                         "/pool" + std::to_string(width));
            const fs::path store = dir.path / "store";
            fs::remove_all(store);

            ThreadPool pool(width);
            Codec codec(c.cfg, {.pool = &pool});
            IoPipeline pipeline(codec, {.queue_depth = 3,
                                        .symbol_bytes = c.symbol,
                                        .backend = iob});
            const auto enc = pipeline.encode_file((dir.path / "input.bin").string(),
                                                  store.string());
            ASSERT_TRUE(enc.ok) << enc.error;

            std::vector<std::vector<std::uint8_t>> devs;
            for (std::size_t j = 0; j < c.cfg.n; ++j)
              devs.push_back(read_all(dev_path(dir, j)));
            auto manifest = read_all(store / "manifest.txt");
            if (ref_devs.empty()) {
              ref_devs = std::move(devs);
              ref_manifest = std::move(manifest);
            } else {
              ASSERT_EQ(devs, ref_devs) << "device bytes diverged";
              ASSERT_EQ(manifest, ref_manifest) << "manifest diverged";
            }

            // Degraded decode must agree too: lose device 2, flip a sector.
            ASSERT_TRUE(fs::remove(dev_path(dir, 2)));
            flip_bytes(dev_path(dir, 4), c.symbol, 16);
            const auto dec = pipeline.decode_file(
                store.string(), (dir.path / "output.bin").string());
            ASSERT_TRUE(dec.ok) << dec.error;
            ASSERT_EQ(read_all(dir.path / "output.bin"), data);
          }
        }
      }
    }
  }
}

// --- manifest hardening -----------------------------------------------------

namespace {

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const fs::path& p, const std::string& text) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out << text;
}

/// Replaces the first occurrence of `from` in the manifest with `to`.
void patch_manifest(const TempDir& dir, const std::string& from, const std::string& to) {
  const fs::path mpath = dir.path / "store" / "manifest.txt";
  std::string text = slurp(mpath);
  const auto pos = text.find(from);
  ASSERT_NE(pos, std::string::npos) << "manifest lacks '" << from << "'";
  text.replace(pos, from.size(), to);
  spit(mpath, text);
}

}  // namespace

// A manifest cut off mid-file (power cut before the atomic rename existed,
// or plain disk damage) must fail decode with a clean, counted error — the
// old loader zero-filled every unread field and checksum, silently treating
// most of the store as torn.
TEST(ManifestHardening, TruncatedManifestFailsCleanly) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("mtrunc");
  encode_store(dir, c, 48 * 1000, 30);

  const fs::path mpath = dir.path / "store" / "manifest.txt";
  const std::string text = slurp(mpath);
  spit(mpath, text.substr(0, text.size() / 2));

  const auto st = decode_store(dir, c);
  EXPECT_FALSE(st.ok);
  EXPECT_NE(st.error.find("manifest"), std::string::npos) << st.error;
  EXPECT_EQ(st.manifest_errors, 1u);
  EXPECT_EQ(st.bytes_written, 0u);

  Codec codec(c.cfg);
  IoPipeline pipeline(codec, {.symbol_bytes = c.symbol});
  std::vector<std::uint8_t> out(512);
  const auto rr = pipeline.read_range((dir.path / "store").string(), 0, out);
  EXPECT_FALSE(rr.ok);
  EXPECT_EQ(rr.manifest_errors, 1u);
}

// An adversarial stripe count must be stopped before it sizes the checksum
// table — the old loader computed stripes * n * r in size_t and happily
// indexed the wrapped-around allocation.
TEST(ManifestHardening, ImplausibleGeometryRejectedBeforeAllocation) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("mgeom");
  encode_store(dir, c, 24 * 1000, 31);

  patch_manifest(dir, "stripes ", "stripes 4294967296 ignored_");
  const auto st = decode_store(dir, c);
  EXPECT_FALSE(st.ok);
  EXPECT_NE(st.error.find("manifest"), std::string::npos) << st.error;
  EXPECT_EQ(st.manifest_errors, 1u);
}

// A chunk line pointing outside the declared geometry is an indexing attack
// on sector_checksums; it must be a parse error, not an OOB write.
TEST(ManifestHardening, OutOfRangeChunkLineRejected) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("mchunk");
  encode_store(dir, c, 24 * 1000, 32);

  patch_manifest(dir, "chunk 0 0", "chunk 999999 0");
  const auto st = decode_store(dir, c);
  EXPECT_FALSE(st.ok);
  EXPECT_NE(st.error.find("manifest"), std::string::npos) << st.error;
  EXPECT_EQ(st.manifest_errors, 1u);
}

// Garbage where a checksum should be (non-numeric token) must fail the parse
// instead of istream writing a zero and the loop resynchronizing mid-line.
TEST(ManifestHardening, GarbledChecksumTokenRejected) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("mgarble");
  encode_store(dir, c, 24 * 1000, 33);

  patch_manifest(dir, "chunk 0 1", "chunk 0 garble");
  const auto st = decode_store(dir, c);
  EXPECT_FALSE(st.ok);
  EXPECT_NE(st.error.find("manifest"), std::string::npos) << st.error;
  EXPECT_EQ(st.manifest_errors, 1u);
}

// --- ranged reads -----------------------------------------------------------

// read_range serves exact byte windows, sector-granular: offsets that are
// unaligned, cross stripe boundaries, or graze the padded tail all come back
// byte-identical to the original file without reading the whole store.
TEST(IoPipelineRangedRead, ByteExactAcrossOffsetsAndBoundaries) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("range");
  const std::size_t bytes = 48 * 1000;
  const auto data = encode_store(dir, c, bytes, 34);

  Codec codec(c.cfg);
  IoPipeline pipeline(codec, {.symbol_bytes = c.symbol});
  const auto store = StripeStore::load((dir.path / "store").string());
  const std::size_t stripe_data =
      codec.code().layout().data_ids().size() * c.symbol;

  const struct {
    std::uint64_t offset;
    std::size_t len;
  } windows[] = {
      {0, 1},                                  // first byte
      {0, 4096},                               // head block
      {c.symbol - 7, 100},                     // straddles a sector boundary
      {stripe_data - 13, 37},                  // straddles a stripe boundary
      {bytes - 1, 1},                          // last byte
      {bytes - 900, 900},                      // padded tail stripe
      {stripe_data / 2, 2 * stripe_data + 5},  // three stripes
      {17, 0},                                 // empty range
  };
  for (const auto& w : windows) {
    SCOPED_TRACE("offset=" + std::to_string(w.offset) + " len=" + std::to_string(w.len));
    std::vector<std::uint8_t> out(w.len, 0xEE);
    const auto st = pipeline.read_range(store, (dir.path / "store").string(),
                                        w.offset, out);
    ASSERT_TRUE(st.ok) << st.error;
    EXPECT_EQ(st.degraded_stripes, 0u);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin() + w.offset));
  }

  // Sector-granular promise: a one-byte read costs one sector, not a stripe
  // — in aligned (direct) mode, the sector's block-rounded window.
  std::vector<std::uint8_t> one(1);
  const auto st = pipeline.read_range(store, (dir.path / "store").string(), 0, one);
  ASSERT_TRUE(st.ok) << st.error;
  std::size_t expect_read = c.symbol;
  if (io::direct_from_env() && store.block_bytes > 1)
    expect_read = std::min(store.padded_chunk_bytes(),
                           (c.symbol + store.block_bytes - 1) / store.block_bytes *
                               store.block_bytes);
  EXPECT_EQ(st.bytes_read, expect_read);
}

TEST(IoPipelineRangedRead, OutOfBoundsRangeFailsCleanly) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("rangeoob");
  const std::size_t bytes = 24 * 1000;
  encode_store(dir, c, bytes, 35);

  Codec codec(c.cfg);
  IoPipeline pipeline(codec, {.symbol_bytes = c.symbol});
  std::vector<std::uint8_t> out(256);
  EXPECT_FALSE(pipeline.read_range((dir.path / "store").string(), bytes, out).ok);
  EXPECT_FALSE(
      pipeline.read_range((dir.path / "store").string(), bytes - 100, out).ok);
  // A range that ends exactly at EOF is fine.
  EXPECT_TRUE(
      pipeline.read_range((dir.path / "store").string(), bytes - 256, out).ok);
}

// The rebuild-serving path: with a device gone and a sector torn elsewhere,
// ranged reads escalate per-stripe to build_degraded_read_schedule and still
// return exact bytes — verified against the manifest before they're copied.
TEST(IoPipelineRangedRead, DegradedRangesServedByteExact) {
  for (const auto& c : fault_cases()) {
    SCOPED_TRACE(c.cfg.to_string());
    for (io::Backend iob : io_backends()) {
      SCOPED_TRACE(io::backend_name(iob));
      TempDir dir("rangedeg");
      const std::size_t bytes = 48 * 1000;
      const auto data = encode_store(dir, c, bytes, 36);
      ASSERT_TRUE(fs::remove(dev_path(dir, 1)));     // whole device out
      flip_bytes(dev_path(dir, 3), 2 * c.symbol, 32);  // torn sector, stripe 0

      Codec codec(c.cfg);
      IoPipeline pipeline(codec, {.symbol_bytes = c.symbol, .backend = iob});
      for (const std::uint64_t offset : {std::uint64_t{0}, std::uint64_t{bytes / 3}}) {
        std::vector<std::uint8_t> out(8192);
        const auto st = pipeline.read_range((dir.path / "store").string(), offset, out);
        ASSERT_TRUE(st.ok) << st.error;
        EXPECT_GE(st.degraded_stripes, 1u);
        EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin() + offset));
      }
    }
  }
}

// --- raw-device layout edge cases -------------------------------------------

// Symbol sizes with no alignment to speak of (1000 = 8·125, not sector-sized)
// force the padded layout to earn its keep: chunk rows of 4000 bytes pad to
// 4096, every transfer is still block-aligned, and the tail sectors of a
// non-multiple input survive the round trip. Also the odd-symbol fallback for
// the zero-copy scrub path, so both pipelines see this shape.
TEST(RawDeviceLayout, OddSymbolSizesAndTailSectorsRoundTrip) {
  const StoreCase c{{.n = 6, .r = 4, .m = 1, .e = {1, 2}, .w = 8}, 1000};
  const std::size_t bytes = 37 * 1000 + 123;  // ragged tail in the last stripe
  for (io::Backend iob : io_backends()) {
    SCOPED_TRACE(io::backend_name(iob));
    TempDir dir("oddsym");
    const auto data = encode_store(dir, c, bytes, 41,
                                   {.direct = true, .backend = iob});

    const auto store = StripeStore::load((dir.path / "store").string());
    EXPECT_EQ(store.block_bytes, 4096u);
    EXPECT_EQ(store.chunk_bytes(), 4000u);
    EXPECT_EQ(store.padded_chunk_bytes(), 4096u);
    // Device files are padded-stride long, not chunk-stride long.
    EXPECT_EQ(fs::file_size(dev_path(dir, 0)),
              store.stripes * store.padded_chunk_bytes());

    const auto dec = decode_store(dir, c, {.direct = true, .backend = iob});
    ASSERT_TRUE(dec.ok) << dec.error;
    EXPECT_EQ(read_all(dir.path / "output.bin"), data);

    // Tail sectors through the ranged path: the last 100 bytes live in a
    // partially-filled final stripe whose aligned read window is clamped to
    // the padded chunk.
    Codec codec(c.cfg);
    IoPipeline pipeline(codec, {.symbol_bytes = c.symbol, .direct = true,
                                .backend = iob});
    std::vector<std::uint8_t> out(100);
    const auto st =
        pipeline.read_range((dir.path / "store").string(), bytes - 100, out);
    ASSERT_TRUE(st.ok) << st.error;
    EXPECT_TRUE(std::equal(out.begin(), out.end(), data.end() - 100));
  }
}

// Stores written before the layout carried a block size have no `block`
// manifest line; they must load as block 1 (unpadded) and decode byte-exact.
TEST(RawDeviceLayout, LegacyManifestWithoutBlockLineLoadsUnpadded) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("legacy");
  const auto data = encode_store(dir, c, 30 * 1000, 42, {.direct = false});

  // A buffered-mode store is unpadded, so dropping the line leaves a valid
  // pre-raw-IO manifest rather than a lying one.
  patch_manifest(dir, "\nblock 1", "");
  const auto store = StripeStore::load((dir.path / "store").string());
  EXPECT_EQ(store.block_bytes, 1u);
  EXPECT_EQ(store.padded_chunk_bytes(), store.chunk_bytes());

  // Decoding with direct *requested* must not try to impose the padded
  // layout on a legacy store — block 1 keeps every open buffered.
  const auto dec = decode_store(dir, c, {.direct = true});
  ASSERT_TRUE(dec.ok) << dec.error;
  EXPECT_EQ(read_all(dir.path / "output.bin"), data);
}

// A filesystem that refuses O_DIRECT must not change a single stored byte:
// the layout follows the *request*, the opens quietly fall back to buffered.
// FaultInjectingEngine::set_reject_direct is the deterministic stand-in for
// such a filesystem (tmpfs on modern kernels accepts O_DIRECT).
TEST(RawDeviceLayout, RejectedDirectFallsBackToBufferedByteIdentically) {
  const StoreCase c = fault_cases()[1];
  for (io::Backend iob : io_backends()) {
    SCOPED_TRACE(io::backend_name(iob));
    TempDir dir_direct("rejdir_a");
    TempDir dir_reject("rejdir_b");

    encode_store(dir_direct, c, 60 * 1000, 43, {.direct = true, .backend = iob});

    auto injected = std::make_unique<io::FaultInjectingEngine>(
        io::Engine::create(iob, {}));
    injected->set_reject_direct(true);
    encode_store(dir_reject, c, 60 * 1000, 43,
                 {.direct = true, .engine = injected.get()});
    EXPECT_EQ(injected->stats().direct_opens, 0u)
        << "reject_direct must keep O_DIRECT away from the inner engine";

    for (std::size_t j = 0; j < c.cfg.n; ++j)
      EXPECT_EQ(read_all(dev_path(dir_reject, j)), read_all(dev_path(dir_direct, j)))
          << "device " << j;
    EXPECT_EQ(read_all(dir_reject.path / "store" / "manifest.txt"),
              read_all(dir_direct.path / "store" / "manifest.txt"));

    // And the fallback store decodes like any other.
    const auto dec = decode_store(dir_reject, c, {.engine = injected.get()});
    ASSERT_TRUE(dec.ok) << dec.error;
  }
}

// fixed_buffers off vs on is a pure transport switch: same bytes on disk,
// different submission path. On uring the fixed path must actually engage
// (fixed ops counted, zero fallbacks) when the registered pool covers the
// ring; with registration disabled every transfer is a counted fallback.
TEST(RawDeviceLayout, FixedBufferSwitchIsByteIdenticalAndObservable) {
  const StoreCase c = fault_cases()[0];
  for (io::Backend iob : io_backends()) {
    SCOPED_TRACE(io::backend_name(iob));
    TempDir dir_fixed("fixed_a");
    TempDir dir_plain("fixed_b");

    Codec codec(c.cfg);
    IoPipeline fixed_pipe(codec, {.symbol_bytes = c.symbol, .direct = true,
                                  .fixed_buffers = true, .backend = iob});
    IoPipeline plain_pipe(codec, {.symbol_bytes = c.symbol, .direct = true,
                                  .fixed_buffers = false, .backend = iob});

    const auto input_a = write_random_file(dir_fixed.path / "input.bin", 50 * 1000, 44);
    const auto input_b = write_random_file(dir_plain.path / "input.bin", 50 * 1000, 44);
    ASSERT_EQ(input_a, input_b);
    ASSERT_TRUE(fixed_pipe.encode_file((dir_fixed.path / "input.bin").string(),
                                       (dir_fixed.path / "store").string()).ok);
    ASSERT_TRUE(plain_pipe.encode_file((dir_plain.path / "input.bin").string(),
                                       (dir_plain.path / "store").string()).ok);

    for (std::size_t j = 0; j < c.cfg.n; ++j)
      EXPECT_EQ(read_all(StripeStore::device_path((dir_fixed.path / "store").string(), j)),
                read_all(StripeStore::device_path((dir_plain.path / "store").string(), j)))
          << "device " << j;

    const auto fixed_stats = fixed_pipe.engine().stats();
    const auto plain_stats = plain_pipe.engine().stats();
    if (iob == io::Backend::kUring) {
      EXPECT_TRUE(fixed_pipe.fixed_buffers_active());
      EXPECT_GT(fixed_stats.fixed_writes, 0u);
      EXPECT_EQ(fixed_stats.fixed_fallbacks, 0u);
    }
    EXPECT_FALSE(plain_pipe.fixed_buffers_active());
    EXPECT_EQ(plain_stats.fixed_writes, 0u);
  }
}

}  // namespace
}  // namespace stair
