#include "stair/stair_code.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <stdexcept>
#include <type_traits>

#include "gf/region.h"

#include "stair/autotune.h"
#include "stair/builders.h"
#include "stair/plan_cache.h"
#include "util/thread_pool.h"

namespace stair {

namespace {
std::uint64_t next_code_uid() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;  // ids start at 1
}
}  // namespace

StairCode::StairCode(StairConfig cfg, GlobalParityMode mode, SystematicMdsCode::Kind kind)
    : layout_(cfg, mode),
      crow_(gf::field(cfg.w), cfg.n - cfg.m, cfg.n + cfg.m_prime(), kind),
      ccol_(gf::field(cfg.w), cfg.r, cfg.r + cfg.e_max(), kind),
      uid_(next_code_uid()) {}

const Schedule& StairCode::encoding_schedule(EncodingMethod method) const {
  std::lock_guard<std::recursive_mutex> lock(lazy_mu_);
  switch (method) {
    case EncodingMethod::kUpstairs:
      if (!upstairs_) upstairs_ = std::make_unique<Schedule>(internal::build_upstairs_schedule(*this));
      return *upstairs_;
    case EncodingMethod::kDownstairs:
      if (!downstairs_)
        downstairs_ = std::make_unique<Schedule>(internal::build_downstairs_schedule(*this));
      return *downstairs_;
    case EncodingMethod::kStandard:
      if (!standard_) standard_ = std::make_unique<Schedule>(internal::build_standard_schedule(*this));
      return *standard_;
    case EncodingMethod::kAuto:
      break;
  }
  throw std::invalid_argument("encoding_schedule: pass a concrete method, not kAuto");
}

const CompiledSchedule& StairCode::compiled_encoding_schedule(EncodingMethod method) const {
  std::lock_guard<std::recursive_mutex> lock(lazy_mu_);
  std::unique_ptr<CompiledSchedule>* slot = nullptr;
  switch (method) {
    case EncodingMethod::kUpstairs: slot = &upstairs_c_; break;
    case EncodingMethod::kDownstairs: slot = &downstairs_c_; break;
    case EncodingMethod::kStandard: slot = &standard_c_; break;
    case EncodingMethod::kAuto:
      throw std::invalid_argument(
          "compiled_encoding_schedule: pass a concrete method, not kAuto");
  }
  if (!*slot) *slot = std::make_unique<CompiledSchedule>(encoding_schedule(method));
  return **slot;
}

EncodingMethod StairCode::select_method() const {
  // §5.3: pre-compute the Mult_XOR count of every method, keep the cheapest.
  // Up/downstairs counts come from the closed forms, so selection does not
  // force building all schedules; the standard method's count requires the
  // coefficient matrix, which its schedule shares.
  const std::size_t up = mult_xor_count(EncodingMethod::kUpstairs);
  const std::size_t down = mult_xor_count(EncodingMethod::kDownstairs);
  const std::size_t std_cost = mult_xor_count(EncodingMethod::kStandard);
  if (std_cost <= up && std_cost <= down) return EncodingMethod::kStandard;
  return up <= down ? EncodingMethod::kUpstairs : EncodingMethod::kDownstairs;
}

std::size_t StairCode::mult_xor_count(EncodingMethod method) const {
  if (method == EncodingMethod::kAuto) method = select_method();
  return encoding_schedule(method).mult_xor_count();
}

const Matrix& StairCode::coefficients() const {
  std::lock_guard<std::recursive_mutex> lock(lazy_mu_);
  if (!coefficients_) coefficients_ = std::make_unique<Matrix>(internal::compute_coefficients(*this));
  return *coefficients_;
}

void StairCode::prepare_workspace(const StripeView& stripe, Workspace& ws) const {
  const StairConfig& cfg = config();
  const std::size_t total = layout_.total_symbols();
  const std::size_t stored = layout_.stored_count();
  if (stripe.stored.size() != stored)
    throw std::invalid_argument("stripe view has wrong stored symbol count");
  if (mode() == GlobalParityMode::kOutside &&
      stripe.outside_globals.size() != cfg.s())
    throw std::invalid_argument("outside-global mode needs s external regions");

  const std::size_t scratch_symbols = total - stored;
  if (ws.owner_uid_ != uid_ || ws.scratch_symbols_ != scratch_symbols ||
      ws.symbol_size_ != stripe.symbol_size) {
    // AlignedBuffer zero-initializes, which is what keeps the fixed-zero
    // scratch regions (the structural zeros of §5.1) correct: no schedule of
    // THIS code ever writes them. The owner check matters as much as the
    // size checks — a workspace carried over from a different StairCode can
    // have an identical footprint while a region this code needs zero holds
    // the other code's written intermediates, so same-size reuse across
    // codes must still re-establish the zeroed scratch. Keyed on the uid,
    // not the address: a successor code constructed at the same address
    // must not inherit the scratch either.
    ws.scratch_ = AlignedBuffer(scratch_symbols * stripe.symbol_size);
    ws.scratch_symbols_ = scratch_symbols;
    ws.symbol_size_ = stripe.symbol_size;
    ws.owner_uid_ = uid_;
  }

  ws.symbols_.assign(total, {});
  ws.caller_owned_.assign(total, false);
  std::size_t next_scratch = 0;
  auto scratch_region = [&](std::size_t idx) {
    return ws.scratch_.region(idx * stripe.symbol_size, stripe.symbol_size);
  };
  for (std::size_t row = 0; row < layout_.canonical_rows(); ++row) {
    for (std::size_t col = 0; col < layout_.canonical_cols(); ++col) {
      const std::uint32_t sid = layout_.id(row, col);
      if (layout_.is_stored(row, col)) {
        ws.symbols_[sid] = stripe.stored[layout_.stored_index(row, col)];
        ws.caller_owned_[sid] = true;
      } else {
        ws.symbols_[sid] = scratch_region(next_scratch++);
      }
    }
  }
  if (mode() == GlobalParityMode::kOutside) {
    const auto& globals = layout_.outside_global_ids();
    for (std::size_t g = 0; g < globals.size(); ++g) {
      ws.symbols_[globals[g]] = stripe.outside_globals[g];
      ws.caller_owned_[globals[g]] = true;
    }
  }
}

namespace {

// One byte range of a replay: compiled schedules go through the
// boundary-conversion sandwich (CompiledSchedule::execute_range_converted —
// each stripe byte converts exactly once per call, at the replay boundary,
// never inside the strip-mined loop); the uncompiled Schedule is the
// standard-layout reference path and never converts.
template <typename Sched>
void replay_range(const Sched& schedule, const std::vector<std::span<std::uint8_t>>& symbols,
                  const std::vector<bool>& caller_owned, gf::RegionLayout layout,
                  std::size_t offset, std::size_t length) {
  if constexpr (std::is_same_v<Sched, CompiledSchedule>) {
    schedule.execute_range_converted(symbols, caller_owned, layout, offset, length);
  } else {
    (void)caller_owned;
    (void)layout;
    schedule.execute_range(symbols, offset, length);
  }
}

// Shared slicing loop for the parallel replays: region ops are pointwise, so
// running the full schedule on disjoint byte ranges is exact. Ranges are
// claimed from the persistent pool (no per-call thread spawns) and sized by
// gf::cache_aware_slice_bytes so one slice of every referenced region stays
// cache-resident; workers replay directly against the shared symbol table
// via execute_range — no per-thread sliced span vectors.
template <typename Sched>
void replay_pooled(const Sched& schedule, const std::vector<std::span<std::uint8_t>>& symbols,
                   const std::vector<bool>& caller_owned, gf::RegionLayout layout,
                   std::size_t size, std::size_t threads, std::size_t touched) {
  ThreadPool& pool = ThreadPool::default_pool();
  if (threads == 0) threads = pool.concurrency();
  const std::size_t participants = std::min(threads, pool.concurrency());
  if (participants <= 1 || size < 128) {
    replay_range(schedule, symbols, caller_owned, layout, 0, size);
    return;
  }
  const std::size_t slice = gf::cache_aware_slice_bytes(size, participants, touched);
  const std::size_t slices = (size + slice - 1) / slice;
  pool.parallel_for(
      slices,
      [&](std::size_t i) {
        const std::size_t offset = i * slice;
        replay_range(schedule, symbols, caller_owned, layout, offset,
                     std::min(slice, size - offset));
      },
      participants);
}

}  // namespace

template <typename Sched>
void StairCode::run_schedule(const Sched& schedule, const StripeView& stripe, Workspace* ws,
                             ExecPolicy policy, std::size_t touched) const {
  Workspace local;
  Workspace& w = ws ? *ws : local;
  prepare_workspace(stripe, w);
  // The compiled hot path replays in the measured best layout for this code
  // and stripe size (falling back to the backend's preferred layout when
  // the tuner is off); the uncompiled Schedule overload stays standard
  // (reference path).
  gf::RegionLayout layout = gf::RegionLayout::kStandard;
  if constexpr (std::is_same_v<Sched, CompiledSchedule>)
    layout = Autotune::instance().choose_layout(
        field().w(),
        static_cast<double>(schedule.mult_xor_count()) /
            std::max<std::size_t>(1, schedule.touched_symbols()),
        stripe.symbol_size);
  if (policy.mode == ExecPolicy::Mode::kSerial) {
    replay_range(schedule, w.symbols_, w.caller_owned_, layout, 0, stripe.symbol_size);
    return;
  }
  replay_pooled(schedule, w.symbols_, w.caller_owned_, layout, stripe.symbol_size,
                policy.threads, touched);
}

void StairCode::execute(const Schedule& schedule, const StripeView& stripe, Workspace* ws,
                        ExecPolicy policy) const {
  run_schedule(schedule, stripe, ws, policy, schedule.touched_symbol_count());
}

void StairCode::execute(const CompiledSchedule& schedule, const StripeView& stripe,
                        Workspace* ws, ExecPolicy policy) const {
  run_schedule(schedule, stripe, ws, policy, schedule.touched_symbols());
}

void StairCode::encode(const StripeView& stripe, EncodingMethod method, Workspace* ws,
                       ExecPolicy policy) const {
  if (method == EncodingMethod::kAuto) method = select_method();
  execute(compiled_encoding_schedule(method), stripe, ws, policy);
}

bool StairCode::is_recoverable(const std::vector<bool>& erased) const {
  return internal::pattern_recoverable(*this, erased);
}

std::optional<Schedule> StairCode::build_decode_schedule(const std::vector<bool>& erased) const {
  return internal::build_decode_schedule(*this, erased);
}

bool StairCode::decode(const StripeView& stripe, const std::vector<bool>& erased,
                       Workspace* ws, DecodePlanCache* cache, ExecPolicy policy) const {
  if (cache) {
    // Failure-epoch fast path: the cache hands back a fully compiled plan,
    // so a recurring mask pays zero inversions and zero table builds.
    auto plan = cache->plan(erased);
    if (!plan) return false;
    execute(*plan, stripe, ws, policy);
    return true;
  }
  auto schedule = build_decode_schedule(erased);
  if (!schedule) return false;
  // Compiling resolves coefficients against the shared kernel cache, so for
  // the recurring masks of a failure epoch the tables are already built.
  execute(CompiledSchedule(*schedule), stripe, ws, policy);
  return true;
}

std::optional<Schedule> StairCode::build_degraded_read_schedule(
    const std::vector<bool>& erased, const std::vector<std::size_t>& wanted) const {
  auto full = build_decode_schedule(erased);
  if (!full) return std::nullopt;
  std::vector<std::uint32_t> wanted_ids;
  wanted_ids.reserve(wanted.size());
  for (std::size_t idx : wanted) {
    if (idx >= layout_.stored_count())
      throw std::invalid_argument("degraded read: stored index out of range");
    wanted_ids.push_back(
        layout_.id(idx / config().n, idx % config().n));
  }
  return full->pruned_for(wanted_ids);
}

// ---------------------------------------------------------------------------
// StripeBuffer
// ---------------------------------------------------------------------------

StripeBuffer::StripeBuffer(const StairCode& code, std::size_t symbol_size)
    : code_(&code), symbol_size_(symbol_size) {
  if (symbol_size == 0 || symbol_size % (code.config().w >= 8 ? code.config().w / 8 : 1) != 0)
    throw std::invalid_argument("StripeBuffer: symbol size must be a nonzero multiple of w/8");
  const StairLayout& layout = code.layout();
  const std::size_t stored = layout.stored_count();
  const std::size_t globals =
      code.mode() == GlobalParityMode::kOutside ? code.config().s() : 0;
  storage_ = AlignedBuffer((stored + globals) * symbol_size);

  view_.symbol_size = symbol_size;
  view_.stored.resize(stored);
  for (std::size_t idx = 0; idx < stored; ++idx)
    view_.stored[idx] = storage_.region(idx * symbol_size, symbol_size);
  view_.outside_globals.resize(globals);
  for (std::size_t g = 0; g < globals; ++g)
    view_.outside_globals[g] = storage_.region((stored + g) * symbol_size, symbol_size);
}

std::span<std::uint8_t> StripeBuffer::symbol(std::size_t row, std::size_t col) {
  return view_.stored[code_->layout().stored_index(row, col)];
}

std::span<const std::uint8_t> StripeBuffer::symbol(std::size_t row, std::size_t col) const {
  return view_.stored[code_->layout().stored_index(row, col)];
}

std::size_t StripeBuffer::data_size() const {
  return code_->data_symbol_count() * symbol_size_;
}

void StripeBuffer::set_data(std::span<const std::uint8_t> data) {
  if (data.size() != data_size())
    throw std::invalid_argument("set_data: expected exactly data_size() bytes");
  const StairLayout& layout = code_->layout();
  std::size_t offset = 0;
  for (std::uint32_t sid : layout.data_ids()) {
    const std::size_t idx = layout.stored_index(layout.row_of(sid), layout.col_of(sid));
    std::memcpy(view_.stored[idx].data(), data.data() + offset, symbol_size_);
    offset += symbol_size_;
  }
}

void StripeBuffer::get_data(std::span<std::uint8_t> out) const {
  if (out.size() != data_size())
    throw std::invalid_argument("get_data: expected exactly data_size() bytes");
  const StairLayout& layout = code_->layout();
  std::size_t offset = 0;
  for (std::uint32_t sid : layout.data_ids()) {
    const std::size_t idx = layout.stored_index(layout.row_of(sid), layout.col_of(sid));
    std::memcpy(out.data() + offset, view_.stored[idx].data(), symbol_size_);
    offset += symbol_size_;
  }
}

}  // namespace stair
