// P_str — the probability that a stripe in critical mode (one device already
// failed and rebuilding) has unrecoverable sector failures in its surviving
// chunks (§7.1.1, Appendix B).
//
// Besides the paper's closed forms for special coverage vectors (Eqs. 18-26,
// used as cross-checks in tests), this module provides the *general*
// formulas by enumerating recoverable per-chunk failure-count multisets —
// this is what lets the reliability benchmarks sweep arbitrary e.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace stair::reliability {

/// Eq. 18: Reed-Solomon (no tolerance for sector failures in critical mode).
/// `pchk` is the chunk pmf (size r + 1); `chunks` is n - m.
double pstr_rs(std::span<const double> pchk, std::size_t chunks);

/// General STAIR P_str for any coverage vector e: one minus the probability
/// that the per-chunk failure counts, sorted, fit under e.
double pstr_stair(std::span<const double> pchk, std::size_t chunks,
                  std::span<const std::size_t> e);

/// General SD P_str for any s: one minus the probability that the total
/// number of failed sectors across chunks is at most s.
double pstr_sd(std::span<const double> pchk, std::size_t chunks, std::size_t s);

// --- Appendix B closed forms (test oracles) --------------------------------

/// Eq. 19: STAIR with e = (s).
double pstr_stair_e_s(std::span<const double> pchk, std::size_t chunks, std::size_t s);
/// Eq. 20: STAIR with e = (1, s-1), s >= 2.
double pstr_stair_e_1_s1(std::span<const double> pchk, std::size_t chunks, std::size_t s);
/// Eq. 21: STAIR with e = (2, s-2), s >= 4.
double pstr_stair_e_2_s2(std::span<const double> pchk, std::size_t chunks, std::size_t s);
/// Eq. 22: STAIR with e = (1, 1, s-2), s >= 3.
double pstr_stair_e_11_s2(std::span<const double> pchk, std::size_t chunks, std::size_t s);
/// Eq. 23: STAIR with e = (1, 1, ..., 1), s ones.
double pstr_stair_e_ones(std::span<const double> pchk, std::size_t chunks, std::size_t s);
/// Eqs. 24-26: SD codes with s in {1, 2, 3}.
double pstr_sd_closed(std::span<const double> pchk, std::size_t chunks, std::size_t s);

}  // namespace stair::reliability
