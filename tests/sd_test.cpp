// SD code tests: construction across word sizes, encode/decode round trips,
// exhaustive coverage verification on small configs (any m disks + any s
// sectors), and the dense no-reuse encoding structure the benchmarks rely on.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <vector>

#include "sd/sd_code.h"
#include "util/buffer.h"
#include "util/rng.h"

namespace stair {
namespace {

class SdFixture {
 public:
  SdFixture(SdConfig cfg, std::size_t symbol = 8) : code_(cfg), symbol_(symbol) {
    const std::size_t total = code_.symbol_count();
    for (std::size_t z = 0; z < total; ++z) bufs_.emplace_back(symbol_);
    regions_.reserve(total);
    for (auto& b : bufs_) regions_.push_back(b.span());

    Rng rng(4242);
    for (std::size_t z : code_.data_positions()) rng.fill(regions_[z]);
    code_.encode(regions_);
    golden_ = snapshot();
  }

  const SdCode& code() const { return code_; }

  std::vector<std::uint8_t> snapshot() const {
    std::vector<std::uint8_t> out;
    for (const auto& b : bufs_) out.insert(out.end(), b.span().begin(), b.span().end());
    return out;
  }

  bool corrupt_and_recover(const std::vector<bool>& mask) {
    restore();
    Rng garbage(99);
    for (std::size_t z = 0; z < mask.size(); ++z)
      if (mask[z]) garbage.fill(regions_[z]);
    if (!code_.decode(regions_, mask)) {
      restore();
      return false;
    }
    const bool ok = snapshot() == golden_;
    restore();
    return ok;
  }

  void restore() {
    std::size_t off = 0;
    for (auto& b : bufs_) {
      std::memcpy(b.data(), golden_.data() + off, symbol_);
      off += symbol_;
    }
  }

 private:
  SdCode code_;
  std::size_t symbol_;
  std::vector<AlignedBuffer> bufs_;
  std::vector<std::span<std::uint8_t>> regions_;
  std::vector<std::uint8_t> golden_;
};

void for_each_subset(std::size_t n, std::size_t k,
                     const std::function<void(const std::vector<std::size_t>&)>& fn) {
  std::vector<std::size_t> subset(k);
  std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t d, std::size_t s) {
    if (d == k) {
      fn(subset);
      return;
    }
    for (std::size_t v = s; v < n; ++v) {
      subset[d] = v;
      rec(d + 1, v + 1);
    }
  };
  rec(0, 0);
}

TEST(SdConfigTest, WordSizeSelection) {
  EXPECT_EQ(SdConfig::choose_w(8, 16), 8);    // 128 <= 255
  EXPECT_EQ(SdConfig::choose_w(16, 15), 8);   // 240 <= 255
  EXPECT_EQ(SdConfig::choose_w(16, 16), 16);  // 256 > 255 — the paper's w jump
  EXPECT_EQ(SdConfig::choose_w(32, 32), 16);
}

TEST(SdConfigTest, Validation) {
  EXPECT_THROW((SdConfig{.n = 1, .r = 4, .m = 0, .s = 1}).validate(), std::invalid_argument);
  EXPECT_THROW((SdConfig{.n = 8, .r = 4, .m = 8, .s = 1}).validate(), std::invalid_argument);
  EXPECT_THROW((SdConfig{.n = 8, .r = 4, .m = 2, .s = 0}).validate(), std::invalid_argument);
  EXPECT_THROW((SdConfig{.n = 8, .r = 4, .m = 2, .s = 7}).validate(), std::invalid_argument);
  EXPECT_NO_THROW((SdConfig{.n = 8, .r = 4, .m = 2, .s = 3}).validate());
}

TEST(SdCodeTest, EncodeIsDeterministicAndPreservesData) {
  SdFixture fx({.n = 6, .r = 4, .m = 1, .s = 2});
  const auto before = fx.snapshot();
  // Re-encoding changes nothing.
  SdFixture fx2({.n = 6, .r = 4, .m = 1, .s = 2});
  EXPECT_EQ(before, fx2.snapshot());
}

struct SdSweepCase {
  SdConfig cfg;
  std::string name() const {
    return "n" + std::to_string(cfg.n) + "r" + std::to_string(cfg.r) + "m" +
           std::to_string(cfg.m) + "s" + std::to_string(cfg.s);
  }
};

class SdToleranceTest : public ::testing::TestWithParam<SdSweepCase> {};

TEST_P(SdToleranceTest, ExhaustiveDiskPlusSectorPatterns) {
  const SdConfig& cfg = GetParam().cfg;
  SdFixture fx(cfg);
  const std::size_t n = cfg.n, r = cfg.r;

  // All choices of m failed disks, then all placements of s extra sectors
  // among the surviving disks' sectors.
  std::size_t tested = 0;
  for_each_subset(n, cfg.m, [&](const std::vector<std::size_t>& disks) {
    std::vector<bool> base(n * r, false);
    std::vector<std::size_t> survivors;
    for (std::size_t d : disks)
      for (std::size_t i = 0; i < r; ++i) base[i * n + d] = true;
    for (std::size_t z = 0; z < n * r; ++z)
      if (!base[z]) survivors.push_back(z);

    for_each_subset(survivors.size(), cfg.s, [&](const std::vector<std::size_t>& pick) {
      std::vector<bool> mask = base;
      for (std::size_t p : pick) mask[survivors[p]] = true;
      ASSERT_TRUE(fx.code().within_coverage(mask));
      ASSERT_TRUE(fx.corrupt_and_recover(mask)) << "pattern failed";
      ++tested;
    });
  });
  EXPECT_GT(tested, 0u);
}

INSTANTIATE_TEST_SUITE_P(SmallConfigs, SdToleranceTest,
                         ::testing::Values(SdSweepCase{{.n = 4, .r = 3, .m = 1, .s = 1}},
                                           SdSweepCase{{.n = 5, .r = 3, .m = 1, .s = 2}},
                                           SdSweepCase{{.n = 4, .r = 4, .m = 2, .s = 1}},
                                           SdSweepCase{{.n = 5, .r = 2, .m = 2, .s = 2}}),
                         [](const auto& info) { return info.param.name(); });

TEST(SdCodeTest, BeyondCoverageRejectedOrDetected) {
  SdFixture fx({.n = 5, .r = 3, .m = 1, .s = 1});
  // Two whole disks with m = 1: outside coverage.
  std::vector<bool> mask(15, false);
  for (std::size_t i = 0; i < 3; ++i) {
    mask[i * 5 + 0] = true;
    mask[i * 5 + 1] = true;
  }
  EXPECT_FALSE(fx.code().within_coverage(mask));
  EXPECT_FALSE(fx.corrupt_and_recover(mask));
}

TEST(SdCodeTest, DenseEncodingHasNoReuse) {
  // Every parity op reads (almost) all data symbols — the "decoding manner"
  // structure whose cost STAIR's reuse beats (§6.2).
  SdCode code({.n = 8, .r = 4, .m = 2, .s = 2});
  const Schedule& sch = code.encoding_schedule();
  EXPECT_EQ(sch.ops().size(), code.parity_count());
  std::size_t dense_ops = 0;
  for (const auto& op : sch.ops())
    if (op.terms.size() > code.data_count() / 2) ++dense_ops;
  // The s global parities are necessarily dense; row parities may be sparse
  // for the canonical construction, but at least the globals must be.
  EXPECT_GE(dense_ops, code.config().s);
}

TEST(SdCodeTest, UpdatePenaltyExceedsRs) {
  // SD update penalty must exceed the plain-RS value m (§6.3 / Figure 15).
  SdCode code({.n = 16, .r = 16, .m = 2, .s = 2});
  EXPECT_GT(code.update_penalty(), 2.0);
}

TEST(SdCodeTest, W16ConfigurationWorks) {
  // n = r = 16 forces w = 16 (the Figure 11-13 regime).
  SdCode code({.n = 16, .r = 16, .m = 1, .s = 1});
  EXPECT_EQ(code.config().w, 16);
  SdFixture fx({.n = 16, .r = 16, .m = 1, .s = 1}, 16);
  std::vector<bool> mask(16 * 16, false);
  for (std::size_t i = 0; i < 16; ++i) mask[i * 16 + 3] = true;  // one disk
  mask[5 * 16 + 7] = true;                                       // one sector
  EXPECT_TRUE(fx.corrupt_and_recover(mask));
}

}  // namespace
}  // namespace stair
