// Scrub/repair cost model: what background scrubbing does to foreground
// read latency, and how whole-device rebuild throughput scales with the
// Scrubber's concurrency bound.
//
// Two measurements:
//   foreground — p50/p99 latency of ranged reads (read_range) against the
//                store, first alone, then with a continuous background scrub
//                running in its shipping shape: repair on, idle-slot gate
//                on, token bucket capping sustained scan rate. The
//                acceptance shape: so configured, scrub-on p99 stays within
//                2x of scrub-off (CI gates on `fg_p99_ratio`, skipped on
//                starved runners with pool_width < 4 where the gate has no
//                slack to work with).
//   rebuild    — MB/s of rebuilt device bytes vs stripes_in_flight: the
//                bounded stream of degraded reads + re-encodes should scale
//                until IO or the pool saturates.
//
// Results land in BENCH_scrub_repair.json; STAIR_BENCH_SMOKE=1 is the CI
// configuration (smaller store, JSON to the repo root).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gf/kernel.h"
#include "stair/io_pipeline.h"
#include "stair/scrub_repair.h"
#include "util/latency.h"

using namespace stair;
using namespace stair::bench;

namespace fs = std::filesystem;

int main(int argc, char** argv) {
  const BenchEnv env = parse_env(argc, argv);
  const StairConfig cfg{.n = 8, .r = 8, .m = 2, .e = {1, 2}};
  const std::size_t symbol = env.smoke ? (8u * 1024) : (32u * 1024);
  const std::size_t stripes = env.smoke ? 12 : 48;
  const std::size_t samples = env.smoke ? 300 : 2000;
  const std::size_t read_bytes = 64 * 1024;

  const StairCode code(cfg);
  Codec codec(code);
  const std::size_t chunk_bytes = cfg.r * symbol;
  const std::size_t stripe_data = code.data_symbol_count() * symbol;
  const std::size_t file_bytes = stripes * stripe_data;

  const fs::path dir = fs::temp_directory_path() / "stair_bench_scrub_repair";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path input = dir / "input.bin";
  const std::string store = (dir / "store").string();
  {
    std::vector<std::uint8_t> bytes(file_bytes);
    Rng rng(11);
    rng.fill(bytes);
    std::ofstream out(input, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  IoPipeline pipeline(codec, {.symbol_bytes = symbol});
  const char* io_backend = io::backend_name(pipeline.engine().backend());
  {
    const auto st = pipeline.encode_file(input.string(), store);
    if (!st.ok) {
      std::fprintf(stderr, "encode failed: %s\n", st.error.c_str());
      return 1;
    }
  }
  const StripeStore manifest = StripeStore::load(store);

  std::cout << "=== scrub/repair: foreground latency under scrub + rebuild scaling ===\n"
            << cfg.to_string() << ", " << stripes << " stripes ("
            << (file_bytes >> 20) << " MB), " << (read_bytes >> 10)
            << " KB ranged reads, pool width " << env.pool_width()
            << ", IO backend " << io_backend << (env.smoke ? "  [smoke]" : "")
            << "\n\n";

  // --- foreground ranged-read latency, scrub off then on --------------------
  // Log-bucketed histograms (util/latency.h), not a sorted sample vector:
  // p99 of 300 sorted samples sat on 3 observations and wandered 4x run to
  // run; the histogram is exact to ~3% bucket resolution at any sample
  // count and gives p999 for free.
  Rng offsets(23);
  auto sample_reads = [&](LatencyHistogram& hist) {
    std::vector<std::uint8_t> buf(read_bytes);
    for (std::size_t i = 0; i < samples; ++i) {
      const std::uint64_t offset = offsets.next_below(file_bytes - read_bytes);
      Stopwatch watch;
      const auto st = pipeline.read_range(manifest, store, offset, buf);
      hist.record_seconds(watch.elapsed_seconds());
      if (!st.ok) {
        std::fprintf(stderr, "read_range failed: %s\n", st.error.c_str());
        std::exit(1);
      }
    }
  };

  LatencyHistogram off_hist, on_hist;
  sample_reads(off_hist);  // warm path + scrub-off baseline

  // The shipping shape: bounded ring, idle-slot gate (default), and a token
  // bucket capping the sustained scan rate — a continuous-but-considerate
  // background pass, not a flat-out scan.
  Scrubber background(codec, {.stripes_in_flight = 2, .rate_mbps = 128.0});
  background.start(store);
  sample_reads(on_hist);
  const ScrubReport scrub_rep = background.stop();
  if (!scrub_rep.ok) {
    std::fprintf(stderr, "background scrub failed: %s\n", scrub_rep.error.c_str());
    return 1;
  }

  const double p50_off = off_hist.percentile_ms(50), p99_off = off_hist.percentile_ms(99);
  const double p999_off = off_hist.percentile_ms(99.9);
  const double p50_on = on_hist.percentile_ms(50), p99_on = on_hist.percentile_ms(99);
  const double p999_on = on_hist.percentile_ms(99.9);
  const double p99_ratio = p99_off > 0 ? p99_on / p99_off : 0.0;
  std::printf("foreground reads:  scrub off  p50 %.3f ms  p99 %.3f ms  p999 %.3f ms\n",
              p50_off, p99_off, p999_off);
  std::printf("                   scrub on   p50 %.3f ms  p99 %.3f ms  p999 %.3f ms  (p99 ratio %.2fx,\n",
              p50_on, p99_on, p999_on, p99_ratio);
  std::printf("                   %llu scrub passes, %zu throttle stalls)\n\n",
              (unsigned long long)background.passes_completed(), scrub_rep.throttle_stalls);

  // --- rebuild MB/s vs concurrency bound ------------------------------------
  struct RebuildCell {
    std::size_t bound;
    double mbps;
  };
  std::vector<RebuildCell> rebuild_cells;
  TablePrinter table("device rebuild (MB/s of rebuilt bytes) vs stripes_in_flight");
  table.set_header({"bound", "rebuild MB/s"});
  const std::size_t victim = 3;
  for (std::size_t bound : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    fs::remove(StripeStore::device_path(store, victim));
    Scrubber rebuilder(codec, {.stripes_in_flight = bound, .yield_to_foreground = false});
    Stopwatch watch;
    const ScrubReport rep = rebuilder.rebuild_device(store, victim);
    const double secs = watch.elapsed_seconds();
    if (!rep.ok || !rep.completed) {
      std::fprintf(stderr, "rebuild failed: %s\n", rep.error.c_str());
      return 1;
    }
    const double mbps =
        static_cast<double>(stripes * chunk_bytes) / secs / (1024.0 * 1024.0);
    rebuild_cells.push_back({bound, mbps});
    table.add_row({std::to_string(bound), format_sig(mbps, 4)});
  }
  table.print(std::cout);

  const std::string path = json_output_path("BENCH_scrub_repair.json", env.smoke);
  {
    std::ofstream out(path);
    out << "{\n  \"bench\": \"scrub_repair\",\n"
        << "  \"backend\": \"" << gf::backend_name(gf::active_backend()) << "\",\n"
        << "  \"io_backend\": \"" << io_backend << "\",\n"
        << "  \"smoke\": " << (env.smoke ? "true" : "false") << ",\n"
        << "  \"hardware_threads\": " << env.hardware_threads << ",\n"
        << "  \"pool_width\": " << env.pool_width() << ",\n"
        << "  \"file_bytes\": " << file_bytes << ",\n"
        << "  \"read_bytes\": " << read_bytes << ",\n"
        << "  \"samples\": " << samples << ",\n"
        << "  \"fg_p50_off_ms\": " << p50_off << ",\n"
        << "  \"fg_p99_off_ms\": " << p99_off << ",\n"
        << "  \"fg_p999_off_ms\": " << p999_off << ",\n"
        << "  \"fg_p50_scrub_ms\": " << p50_on << ",\n"
        << "  \"fg_p99_scrub_ms\": " << p99_on << ",\n"
        << "  \"fg_p999_scrub_ms\": " << p999_on << ",\n"
        << "  \"fg_p99_ratio\": " << p99_ratio << ",\n"
        << "  \"fg_samples_off\": " << off_hist.count() << ",\n"
        << "  \"fg_samples_scrub\": " << on_hist.count() << ",\n"
        << "  \"scrub_passes\": " << background.passes_completed() << ",\n"
        << "  \"throttle_stalls\": " << scrub_rep.throttle_stalls << ",\n"
        << "  \"rebuild\": [\n";
    for (std::size_t i = 0; i < rebuild_cells.size(); ++i)
      out << "    {\"stripes_in_flight\": " << rebuild_cells[i].bound
          << ", \"mbps\": " << rebuild_cells[i].mbps << "}"
          << (i + 1 < rebuild_cells.size() ? "," : "") << "\n";
    out << "  ]\n}\n";
  }
  std::cout << "\nWrote " << path << "\n"
            << "Shape check: fg_p99_ratio <= 2 (the idle-slot gate keeping scrub\n"
               "out of the foreground's way); rebuild MB/s rising with the bound\n"
               "until IO or the pool saturates.\n";
  fs::remove_all(dir);
  return 0;
}
