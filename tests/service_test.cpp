// StorageNode battery: the service layer's contracts under contention.
// Round trips through submit() across tenants and classes, write-path
// persistence (manifest refresh, drain/restart byte-identity, decode_file
// agreement), admission control (fail-fast rejects, bounded queues under
// flood), multi-tenant fairness (a flooding tenant cannot starve another's
// reads), priority (queued reads dispatch ahead of queued scans), degraded
// serving during device loss, scrub-while-serving integration, and the
// TSan-watched races: concurrent submitters, reader-vs-writer on one
// stripe, stats() vs everything.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "stair/io_pipeline.h"
#include "stair/service.h"
#include "util/rng.h"

namespace stair {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;

  explicit TempDir(const std::string& hint) {
    path = fs::temp_directory_path() /
           ("stair_service_test_" + hint + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }

  std::string str() const { return path.string(); }
};

std::vector<std::uint8_t> write_random_file(const fs::path& p, std::size_t bytes,
                                            std::uint64_t seed) {
  std::vector<std::uint8_t> data(bytes);
  Rng rng(seed);
  rng.fill(data);
  std::ofstream out(p, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return data;
}

const StairConfig kCfg{.n = 6, .r = 4, .m = 1, .e = {1, 2}, .w = 8};
constexpr std::size_t kSymbol = 512;

std::string store_dir(const TempDir& dir) { return (dir.path / "store").string(); }

/// Encodes `bytes` of random data into dir/store; returns the plaintext.
std::vector<std::uint8_t> encode_store(const TempDir& dir, std::size_t bytes,
                                       std::uint64_t seed) {
  const auto data = write_random_file(dir.path / "input.bin", bytes, seed);
  Codec codec(kCfg);
  IoPipeline pipeline(codec, {.symbol_bytes = kSymbol});
  const auto st = pipeline.encode_file((dir.path / "input.bin").string(), store_dir(dir));
  EXPECT_TRUE(st.ok) << st.error;
  return data;
}

Request read_req(std::size_t tenant, std::uint64_t offset, std::span<std::uint8_t> out,
                 RequestType type = RequestType::kRead) {
  Request r;
  r.type = type;
  r.tenant = tenant;
  r.offset = offset;
  r.out = out;
  return r;
}

Request write_req(std::size_t tenant, std::size_t stripe,
                  std::span<const std::uint8_t> data) {
  Request r;
  r.type = RequestType::kWrite;
  r.tenant = tenant;
  r.stripe = stripe;
  r.data = data;
  return r;
}

// --- round trips -------------------------------------------------------------

TEST(ServiceTest, ReadsRoundTripAcrossTenantsAndClasses) {
  TempDir dir("roundtrip");
  const auto data = encode_store(dir, 50'000, 1);

  Codec codec(kCfg);
  StorageNode node(codec, store_dir(dir), {.tenants = 3, .workers = 2});
  node.start();

  Rng rng(7);
  std::vector<std::vector<std::uint8_t>> bufs;
  std::vector<StorageNode::Future> futures;
  std::vector<std::uint64_t> offsets;
  for (int i = 0; i < 48; ++i) {
    const std::uint64_t off = rng.next_below(data.size());
    const std::size_t len =
        std::min<std::size_t>(1 + rng.next_below(4000), data.size() - off);
    bufs.emplace_back(len);
    offsets.push_back(off);
  }
  for (int i = 0; i < 48; ++i) {
    const auto type = (i % 3 == 2) ? RequestType::kScan : RequestType::kRead;
    futures.push_back(node.submit(read_req(i % 3, offsets[i], bufs[i], type)));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Response& r = futures[i].wait();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.rejected);
    EXPECT_EQ(r.bytes, bufs[i].size());
    EXPECT_EQ(0, std::memcmp(bufs[i].data(), data.data() + offsets[i], bufs[i].size()));
  }

  const auto st = node.stats();
  EXPECT_EQ(st.reads + st.scans, 48u);
  EXPECT_EQ(st.failed_requests, 0u);
  EXPECT_EQ(st.read_latency.count() + st.scan_latency.count(), 48u);
  EXPECT_GT(st.read_latency.percentile_nanos(99), 0u);
  node.stop();
}

TEST(ServiceTest, WriteUpdatesStoreAndManifest) {
  TempDir dir("write");
  auto data = encode_store(dir, 40'000, 2);

  Codec codec(kCfg);
  StorageNode node(codec, store_dir(dir), {.tenants = 2, .workers = 2});
  node.start();
  const std::size_t stripe_data = node.stripe_data_bytes();
  const std::size_t stripes = node.store().stripes;
  ASSERT_GE(stripes, 2u);

  // Rewrite stripe 1 and the (possibly short) tail stripe.
  Rng rng(9);
  for (const std::size_t s : {std::size_t{1}, stripes - 1}) {
    const std::size_t len = std::min(stripe_data, data.size() - s * stripe_data);
    std::vector<std::uint8_t> fresh(len);
    rng.fill(fresh);
    const Response r = node.submit(write_req(0, s, fresh)).wait();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.bytes, len);
    std::memcpy(data.data() + s * stripe_data, fresh.data(), len);
  }

  // Served reads see the new bytes immediately.
  std::vector<std::uint8_t> got(data.size());
  ASSERT_TRUE(node.submit(read_req(1, 0, got)).wait().ok);
  EXPECT_EQ(got, data);
  node.stop();

  // The re-saved manifest verifies end-to-end through a fresh decode.
  Codec codec2(kCfg);
  IoPipeline pipeline(codec2, {.symbol_bytes = kSymbol});
  const auto st = pipeline.decode_file(store_dir(dir), (dir.path / "out.bin").string());
  ASSERT_TRUE(st.ok) << st.error;
  std::ifstream in(dir.path / "out.bin", std::ios::binary);
  std::vector<std::uint8_t> decoded{std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>()};
  EXPECT_EQ(decoded, data);
}

TEST(ServiceTest, DrainRestartRoundTripsByteIdentically) {
  TempDir dir("restart");
  auto data = encode_store(dir, 30'000, 3);

  {
    Codec codec(kCfg);
    StorageNode node(codec, store_dir(dir), {.tenants = 2, .workers = 2});
    node.start();
    const std::size_t stripe_data = node.stripe_data_bytes();
    std::vector<std::uint8_t> fresh(std::min(stripe_data, data.size()));
    Rng(11).fill(fresh);
    ASSERT_TRUE(node.submit(write_req(0, 0, fresh)).wait().ok);
    std::memcpy(data.data(), fresh.data(), fresh.size());
    node.drain();
    // A drained node rejects new work but still answers stats.
    const Response r = node.submit(read_req(0, 0, fresh)).wait();
    EXPECT_TRUE(r.rejected);
    node.stop();
  }

  // A new node on the same directory serves the written bytes.
  Codec codec(kCfg);
  StorageNode node(codec, store_dir(dir), {.tenants = 1, .workers = 2});
  node.start();
  std::vector<std::uint8_t> got(data.size());
  const Response r = node.submit(read_req(0, 0, got)).wait();
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(got, data);
  node.stop();
}

// --- admission control -------------------------------------------------------

TEST(ServiceTest, MalformedRequestsFailWithoutRejecting) {
  TempDir dir("shape");
  encode_store(dir, 20'000, 4);
  Codec codec(kCfg);
  StorageNode node(codec, store_dir(dir), {.tenants = 2, .workers = 2});
  node.start();

  std::vector<std::uint8_t> buf(64);
  // Read past EOF: understood, refused, not a backpressure reject.
  const Response past = node.submit(read_req(0, node.store().file_size - 8, buf)).wait();
  EXPECT_FALSE(past.ok);
  EXPECT_FALSE(past.rejected);

  // Write with the wrong payload size.
  const Response bad_len =
      node.submit(write_req(0, 0, std::span<const std::uint8_t>(buf.data(), 64))).wait();
  EXPECT_FALSE(bad_len.ok);
  EXPECT_FALSE(bad_len.rejected);

  // Write to a stripe the store doesn't have.
  const Response bad_stripe =
      node.submit(write_req(0, node.store().stripes + 3, buf)).wait();
  EXPECT_FALSE(bad_stripe.ok);

  // Tenant out of range is a caller bug: loud throw, not a Response.
  EXPECT_THROW(node.submit(read_req(99, 0, buf)), std::runtime_error);

  // Zero-length reads complete immediately.
  EXPECT_TRUE(node.submit(read_req(0, 0, std::span<std::uint8_t>())).wait().ok);
  node.stop();
}

TEST(ServiceTest, FullQueueRejectsFastAndStaysBounded) {
  TempDir dir("bounded");
  encode_store(dir, 30'000, 5);

  Codec codec(kCfg);
  // One worker and a tiny queue: the flood must hit the bound immediately.
  StorageNode node(codec, store_dir(dir),
                   {.tenants = 2, .queue_capacity = 4, .workers = 1});
  node.start();

  constexpr int kFlood = 600;
  std::size_t rejected = 0;
  std::atomic<std::size_t> max_depth{0};
  std::atomic<bool> stop_sampler{false};
  std::vector<std::uint8_t> scratch(256);

  std::thread sampler([&] {
    while (!stop_sampler.load(std::memory_order_relaxed)) {
      const auto st = node.stats();
      std::size_t prev = max_depth.load();
      while (st.queue_depth > prev &&
             !max_depth.compare_exchange_weak(prev, st.queue_depth)) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::vector<StorageNode::Future> futures;
  futures.reserve(kFlood);
  const auto flood_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kFlood; ++i)
    futures.push_back(node.submit(read_req(i % 2, 0, scratch)));
  const double flood_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - flood_start)
          .count();

  for (auto& f : futures)
    if (f.wait().rejected) ++rejected;
  stop_sampler.store(true);
  sampler.join();

  // Most of the flood bounced, and none of it blocked the submitter: 600
  // admissions against a depth-8 system return fast because a full queue
  // answers immediately instead of waiting for service progress.
  EXPECT_GT(rejected, std::size_t{kFlood / 2});
  EXPECT_LT(flood_seconds, 5.0);
  // The admission bound held: tenants * capacity is the queue ceiling.
  EXPECT_LE(max_depth.load(), 2u * 4u);

  const auto st = node.stats();
  EXPECT_EQ(st.tenants[0].rejected + st.tenants[1].rejected, rejected);
  EXPECT_EQ(st.tenants[0].submitted + st.tenants[1].submitted,
            static_cast<std::uint64_t>(kFlood));
  node.stop();
}

// --- fairness + priority -----------------------------------------------------

TEST(ServiceTest, FloodingTenantCannotStarveAnother) {
  TempDir dir("fairness");
  const auto data = encode_store(dir, 60'000, 6);

  Codec codec(kCfg);
  StorageNode node(codec, store_dir(dir),
                   {.tenants = 2, .queue_capacity = 16, .workers = 2});
  node.start();

  std::atomic<bool> stop_flood{false};
  std::thread flooder([&] {
    // One buffer per in-flight request: the buffer contract forbids two
    // concurrently serviced reads scattering into the same output span.
    std::vector<std::vector<std::uint8_t>> bufs(
        64, std::vector<std::uint8_t>(2048));
    std::vector<StorageNode::Future> inflight;
    while (!stop_flood.load(std::memory_order_relaxed)) {
      inflight.push_back(node.submit(read_req(0, 0, bufs[inflight.size()])));
      if (inflight.size() >= 64) {
        for (auto& f : inflight) f.wait();
        inflight.clear();
      }
    }
    for (auto& f : inflight) f.wait();
  });

  // The victim runs closed-loop: one read at a time, so its queue depth
  // never exceeds 1 and admission can never bounce it.
  std::vector<std::uint8_t> buf(1024);
  double max_seconds = 0.0;
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t off = (i * 997) % (data.size() - buf.size());
    const Response r = node.submit(read_req(1, off, buf)).wait();
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_FALSE(r.rejected);
    max_seconds = std::max(max_seconds, r.queue_seconds + r.service_seconds);
    EXPECT_EQ(0, std::memcmp(buf.data(), data.data() + off, buf.size()));
  }
  stop_flood.store(true);
  flooder.join();

  const auto st = node.stats();
  EXPECT_EQ(st.tenants[1].rejected, 0u);
  EXPECT_GE(st.tenants[1].completed, 40u);
  // Round-robin bounds the victim's wait to its place in the round, not the
  // flooder's backlog: a starved victim would sit behind ~16 queued reads
  // per request. Generous wall-clock bound to stay robust on loaded CI.
  EXPECT_LT(max_seconds, 5.0);
  node.stop();
}

TEST(ServiceTest, QueuedReadsDispatchAheadOfQueuedScans) {
  TempDir dir("priority");
  const auto data = encode_store(dir, 60'000, 7);

  Codec codec(kCfg);
  StorageNode node(codec, store_dir(dir),
                   {.tenants = 1, .queue_capacity = 64, .workers = 1, .batch_limit = 1});
  node.start();

  // Occupy the single worker, then queue scans BEFORE reads. Priority must
  // dispatch every queued read ahead of every queued scan regardless.
  std::vector<std::uint8_t> big(data.size());
  auto blocker = node.submit(read_req(0, 0, big));

  std::vector<std::vector<std::uint8_t>> bufs(12, std::vector<std::uint8_t>(512));
  std::vector<StorageNode::Future> scans, reads;
  for (int i = 0; i < 6; ++i)
    scans.push_back(node.submit(read_req(0, i * 1024, bufs[i], RequestType::kScan)));
  for (int i = 0; i < 6; ++i)
    reads.push_back(node.submit(read_req(0, i * 2048, bufs[6 + i])));

  blocker.wait();
  double scan_queue_min = 1e9, read_queue_max = 0.0;
  for (auto& f : scans) scan_queue_min = std::min(scan_queue_min, f.wait().queue_seconds);
  for (auto& f : reads) read_queue_max = std::max(read_queue_max, f.wait().queue_seconds);

  // Scans were admitted earlier yet dispatched later than every read, so
  // each scan's queue time strictly dominates each read's.
  EXPECT_GT(scan_queue_min, read_queue_max * 0.99);
  node.stop();
}

TEST(ServiceTest, BackloggedReadsCoalesceIntoSharedSubmissions) {
  TempDir dir("batch");
  const auto data = encode_store(dir, 60'000, 8);

  Codec codec(kCfg);
  StorageNode node(codec, store_dir(dir),
                   {.tenants = 2, .queue_capacity = 64, .workers = 1,
                    .batch_limit = 8, .batch_min_backlog = 1});
  node.start();
  const std::size_t stripe_data = node.stripe_data_bytes();
  ASSERT_GT(data.size(), 2 * stripe_data) << "need at least two full stripes";

  // Occupy the worker so a backlog of same-stripe reads builds behind it.
  std::vector<std::uint8_t> big(data.size());
  auto blocker = node.submit(read_req(0, 0, big));

  std::vector<std::vector<std::uint8_t>> bufs(24, std::vector<std::uint8_t>(128));
  std::vector<std::uint64_t> offsets;
  std::vector<StorageNode::Future> futures;
  for (int i = 0; i < 24; ++i) {
    // All inside stripe 1's span, from both tenants.
    const std::uint64_t off = stripe_data + (i * 131) % (stripe_data - 128);
    offsets.push_back(off);
    futures.push_back(node.submit(read_req(i % 2, off, bufs[i])));
  }
  blocker.wait();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Response& r = futures[i].wait();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(0, std::memcmp(bufs[i].data(), data.data() + offsets[i], bufs[i].size()));
  }

  const auto st = node.stats();
  EXPECT_GT(st.batched_reads, 0u);
  EXPECT_EQ(st.batched_reads, st.tenants[0].batched + st.tenants[1].batched);
  node.stop();
}

// --- degraded serving + scrub integration ------------------------------------

TEST(ServiceTest, ServesDegradedReadsThroughDeviceLoss) {
  TempDir dir("degraded");
  const auto data = encode_store(dir, 40'000, 9);
  fs::remove(StripeStore::device_path(store_dir(dir), 2));

  Codec codec(kCfg);
  StorageNode node(codec, store_dir(dir), {.tenants = 1, .workers = 2});
  node.start();

  std::vector<std::uint8_t> got(data.size());
  const Response r = node.submit(read_req(0, 0, got)).wait();
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(got, data);
  EXPECT_GT(r.degraded_stripes, 0u);
  EXPECT_GT(node.stats().degraded_reads, 0u);
  node.stop();
}

TEST(ServiceTest, ScrubsAndRepairsWhileServing) {
  TempDir dir("scrub");
  const auto data = encode_store(dir, 40'000, 10);

  // Rot a few sectors of one device before the node comes up.
  {
    const std::string dev = StripeStore::device_path(store_dir(dir), 1);
    std::fstream f(dev, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f);
    char buf[64];
    f.seekg(100);
    f.read(buf, sizeof buf);
    for (char& c : buf) c = static_cast<char>(c ^ 0x5A);
    f.seekp(100);
    f.write(buf, sizeof buf);
  }

  Codec codec(kCfg);
  StorageNode::Options opts{.tenants = 2, .workers = 2, .scrub = true};
  opts.scrub_options.stripes_in_flight = 2;
  opts.scrub_options.max_stall = std::chrono::milliseconds(1);
  StorageNode node(codec, store_dir(dir), opts);
  node.start();

  // Foreground load while scrub hunts: every read must still verify.
  std::vector<std::uint8_t> buf(4096);
  for (int i = 0; i < 60; ++i) {
    const std::uint64_t off = (i * 613) % (data.size() - buf.size());
    const Response r = node.submit(read_req(i % 2, off, buf)).wait();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(0, std::memcmp(buf.data(), data.data() + off, buf.size()));
  }
  // Give the scrubber a window to finish at least one repairing pass.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (node.stats().scrub.sectors_repaired == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  node.drain();

  const auto st = node.stats();
  EXPECT_GT(st.scrub.stripes_scanned, 0u);
  EXPECT_GT(st.scrub.sectors_repaired, 0u);
  EXPECT_EQ(st.failed_requests, 0u);
  node.stop();

  // The repaired, re-saved store decodes clean.
  Codec codec2(kCfg);
  IoPipeline pipeline(codec2, {.symbol_bytes = kSymbol});
  const auto dst = pipeline.decode_file(store_dir(dir), (dir.path / "out.bin").string());
  EXPECT_TRUE(dst.ok) << dst.error;
  EXPECT_EQ(dst.degraded_stripes, 0u) << "scrub should have healed the rot";
}

// --- races the sanitizers watch ----------------------------------------------

TEST(ServiceTest, ConcurrentReadersAndWriterStayConsistent) {
  TempDir dir("rw_race");
  const auto data = encode_store(dir, 40'000, 11);

  Codec codec(kCfg);
  StorageNode node(codec, store_dir(dir), {.tenants = 2, .workers = 3});
  node.start();
  const std::size_t stripe_data = node.stripe_data_bytes();
  const std::size_t len = std::min(stripe_data, data.size());

  std::vector<std::uint8_t> fresh(len);
  Rng(13).fill(fresh);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const Response r = node.submit(write_req(0, 0, fresh)).wait();
      EXPECT_TRUE(r.ok) << r.error;
    }
  });

  // Readers of the contested stripe must always see a whole version — the
  // original or the rewrite — never a tear (which the range lock prevents
  // and the sector checksums would unmask as a failed read).
  std::vector<std::uint8_t> buf(len);
  for (int i = 0; i < 30; ++i) {
    const Response r = node.submit(read_req(1, 0, buf)).wait();
    ASSERT_TRUE(r.ok) << r.error;
    const bool is_old = std::memcmp(buf.data(), data.data(), len) == 0;
    const bool is_new = std::memcmp(buf.data(), fresh.data(), len) == 0;
    EXPECT_TRUE(is_old || is_new) << "torn read at iteration " << i;
  }
  stop.store(true);
  writer.join();
  node.stop();
}

// --- env knobs ---------------------------------------------------------------

TEST(ServiceTest, EnvOverridesParseLoudly) {
  ::setenv("STAIR_NODE_TENANTS", "7", 1);
  ::setenv("STAIR_NODE_QUEUE", "128", 1);
  ::setenv("STAIR_NODE_WORKERS", "3", 1);
  ::setenv("STAIR_NODE_BATCH", "4", 1);
  ::setenv("STAIR_NODE_SCRUB", "yes", 1);
  auto opts = node_options_from_env();
  EXPECT_EQ(opts.tenants, 7u);
  EXPECT_EQ(opts.queue_capacity, 128u);
  EXPECT_EQ(opts.workers, 3u);
  EXPECT_EQ(opts.batch_limit, 4u);
  EXPECT_TRUE(opts.scrub);

  ::setenv("STAIR_NODE_TENANTS", "lots", 1);
  EXPECT_THROW(node_options_from_env(), std::runtime_error);
  ::setenv("STAIR_NODE_TENANTS", "0", 1);
  EXPECT_THROW(node_options_from_env(), std::runtime_error);
  ::unsetenv("STAIR_NODE_TENANTS");
  ::setenv("STAIR_NODE_SCRUB", "maybe", 1);
  EXPECT_THROW(node_options_from_env(), std::runtime_error);

  ::unsetenv("STAIR_NODE_QUEUE");
  ::unsetenv("STAIR_NODE_WORKERS");
  ::unsetenv("STAIR_NODE_BATCH");
  ::unsetenv("STAIR_NODE_SCRUB");
}

}  // namespace
}  // namespace stair
