// Simulator tests: byte-exact end-to-end recovery through DataPathArray,
// failure-injection statistics matching the configured models, Monte-Carlo
// MTTDL agreeing with the analytic §7 model at inflated rates, and the
// scrubbing model's limits.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "reliability/mttdl.h"
#include "reliability/pstr.h"
#include "reliability/sector_models.h"
#include "sim/array_sim.h"
#include "sim/scrubber.h"

namespace stair::sim {
namespace {

/// Pearson chi-squared statistic over `observed` counts vs `expected`
/// (same total). Buckets with expected < 5 must be merged by the caller.
double chi_squared(const std::vector<double>& observed,
                   const std::vector<double>& expected) {
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double d = observed[i] - expected[i];
    stat += d * d / expected[i];
  }
  return stat;
}

/// Merges the histogram tail so every expected bucket has >= 5 mass;
/// returns (observed, expected) ready for chi_squared.
std::pair<std::vector<double>, std::vector<double>> merge_tail(
    const std::vector<double>& observed, const std::vector<double>& expected) {
  std::vector<double> obs, want;
  double tail_obs = 0.0, tail_want = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (tail_want > 0.0 || expected[i] < 5.0) {
      tail_obs += observed[i];
      tail_want += expected[i];
    } else {
      obs.push_back(observed[i]);
      want.push_back(expected[i]);
    }
  }
  if (tail_want >= 5.0 || obs.empty()) {
    if (tail_want > 0.0) {
      obs.push_back(tail_obs);
      want.push_back(tail_want);
    }
  } else if (tail_want > 0.0) {
    // Residual tail still under 5: fold it into the last kept bucket so no
    // expected cell is tiny (a near-empty cell makes the statistic explode
    // on a single stray observation).
    obs.back() += tail_obs;
    want.back() += tail_want;
  }
  return {obs, want};
}

/// Wilson–Hilferty upper critical value of chi-squared at p ~ 0.001
/// (z = 3.09): with the fixed seeds below the statistic is deterministic,
/// but the bound documents how much slack a reseed is entitled to.
double chi_squared_critical(std::size_t df) {
  const double d = static_cast<double>(df);
  const double t = 1.0 - 2.0 / (9.0 * d) + 3.09 * std::sqrt(2.0 / (9.0 * d));
  return d * t * t * t;
}

TEST(FailureInjector, IndependentRateMatchesConfig) {
  FailureInjector inj({SectorModel::kIndependent, 0.05}, 9);
  const std::size_t n = 8, r = 16, trials = 400;
  std::size_t losses = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto mask = inj.sample_stripe_mask(n, r, {});
    for (bool b : mask) losses += b;
  }
  const double rate = static_cast<double>(losses) / (trials * n * r);
  EXPECT_NEAR(rate, 0.05, 0.01);
}

TEST(FailureInjector, DeviceFailureMarksWholeChunk) {
  FailureInjector inj({SectorModel::kIndependent, 0.0}, 10);
  const auto mask = inj.sample_stripe_mask(6, 4, {2, 5});
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_EQ(mask[i * 6 + j], j == 2 || j == 5);
}

TEST(FailureInjector, CorrelatedModeProducesBursts) {
  InjectorParams params{SectorModel::kCorrelated, 0.02, 0.5, 1.0};  // heavy bursts
  FailureInjector inj(params, 11);
  const std::size_t n = 4, r = 32, trials = 500;
  std::size_t adjacent_pairs = 0, losses = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto mask = inj.sample_stripe_mask(n, r, {});
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < r; ++i) {
        if (!mask[i * n + j]) continue;
        ++losses;
        if (i + 1 < r && mask[(i + 1) * n + j]) ++adjacent_pairs;
      }
  }
  ASSERT_GT(losses, 0u);
  // With b1 = 0.5 and alpha = 1, a large share of lost sectors must sit in
  // vertical runs; under the independent model this ratio would be ~2%.
  EXPECT_GT(static_cast<double>(adjacent_pairs) / static_cast<double>(losses), 0.15);
}

TEST(FailureInjector, IndependentChunkHistogramMatchesPmf) {
  // Shape, not just the mean: the per-chunk failure-count histogram must
  // match Eq. 13's Binomial(r, p_sec) — a chi-squared fit, so a subtly wrong
  // sampler (right rate, wrong clustering) fails even when the marginal
  // rate test above passes.
  const double p_sec = 0.02;
  const std::size_t n = 8, r = 16, trials = 4000;
  FailureInjector inj({SectorModel::kIndependent, p_sec}, 21);

  std::vector<double> observed(r + 1, 0.0);
  for (std::size_t t = 0; t < trials; ++t) {
    const auto mask = inj.sample_stripe_mask(n, r, {});
    for (std::size_t j = 0; j < n; ++j) {
      std::size_t count = 0;
      for (std::size_t i = 0; i < r; ++i) count += mask[i * n + j];
      observed[count] += 1.0;
    }
  }

  const auto pmf = reliability::independent_chunk_pmf(p_sec, r);
  std::vector<double> expected(pmf.size());
  for (std::size_t i = 0; i < pmf.size(); ++i)
    expected[i] = pmf[i] * static_cast<double>(trials * n);

  const auto [obs, want] = merge_tail(observed, expected);
  ASSERT_GE(obs.size(), 4u);  // counts 0..3 individually resolvable
  const double stat = chi_squared(obs, want);
  EXPECT_LT(stat, chi_squared_critical(obs.size() - 1))
      << "buckets=" << obs.size();
}

TEST(FailureInjector, CorrelatedBurstLengthsMatchPareto) {
  // sample_burst_length must reproduce the fitted distribution exactly: mass
  // b1 at length 1, discrete Pareto (scale 2, index alpha) beyond, truncated
  // at r_max with the tail lumped into the last bin — i.e. the same pmf the
  // analytic correlated_chunk_pmf consumes.
  const double b1 = 0.7, alpha = 1.5;
  const std::size_t r_max = 32, draws = 20000;
  FailureInjector inj({SectorModel::kCorrelated, 0.01, b1, alpha}, 22);

  std::vector<double> observed(r_max + 1, 0.0);
  for (std::size_t d = 0; d < draws; ++d) {
    const std::size_t len = inj.sample_burst_length(r_max);
    ASSERT_GE(len, 1u);
    ASSERT_LE(len, r_max);
    observed[len] += 1.0;
  }

  const auto pmf = reliability::BurstDistribution(b1, alpha).pmf(r_max);
  std::vector<double> obs_from1(observed.begin() + 1, observed.end());
  std::vector<double> exp_from1(pmf.size() - 1);
  for (std::size_t i = 1; i < pmf.size(); ++i)
    exp_from1[i - 1] = pmf[i] * static_cast<double>(draws);

  const auto [obs, want] = merge_tail(obs_from1, exp_from1);
  ASSERT_GE(obs.size(), 8u);  // the Pareto tail is individually resolvable
  const double stat = chi_squared(obs, want);
  EXPECT_LT(stat, chi_squared_critical(obs.size() - 1))
      << "buckets=" << obs.size();
}

TEST(FailureInjector, CorrelatedMarginalRateMatchesPSec) {
  // The correlated model reshapes *where* failures land, not how many: the
  // per-sector marginal must stay p_sec (burst starts are thinned by the
  // mean burst length). r = 64 keeps boundary clipping negligible.
  const double p_sec = 0.02;
  FailureInjector inj({SectorModel::kCorrelated, p_sec, 0.7, 1.5}, 23);
  const std::size_t n = 4, r = 64, trials = 2000;
  std::size_t losses = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto mask = inj.sample_stripe_mask(n, r, {});
    for (bool b : mask) losses += b;
  }
  const double rate = static_cast<double>(losses) / (trials * n * r);
  EXPECT_NEAR(rate, p_sec, 0.15 * p_sec);
}

TEST(DataPathArray, EndToEndDeviceAndSectorRecovery) {
  const StairCode code({.n = 8, .r = 8, .m = 2, .e = {1, 2}});
  DataPathArray array(code, 6, 512, 123);
  ASSERT_TRUE(array.verify());

  array.fail_device(1);
  array.fail_device(6);  // one data device, one parity device
  // Plus a burst in another chunk of stripe 3, within e = (1,2).
  std::vector<bool> extra(8 * 8, false);
  extra[4 * 8 + 3] = true;
  extra[5 * 8 + 3] = true;
  array.corrupt(3, extra);

  EXPECT_EQ(array.repair_all(), 0u);
  EXPECT_TRUE(array.verify());
}

TEST(DataPathArray, UnrecoverableStripesAreReported) {
  const StairCode code({.n = 6, .r = 4, .m = 1, .e = {1}});
  DataPathArray array(code, 3, 256, 321);
  // Two dead devices with m = 1: stripe 0 unrecoverable.
  std::vector<bool> mask(6 * 4, false);
  for (std::size_t i = 0; i < 4; ++i) {
    mask[i * 6 + 0] = true;
    mask[i * 6 + 1] = true;
  }
  array.corrupt(0, mask);
  EXPECT_EQ(array.repair_all(), 1u);
}

TEST(DataPathArray, RepeatedDamageRepairCycles) {
  const StairCode code({.n = 8, .r = 8, .m = 2, .e = {1, 1, 2}});
  DataPathArray array(code, 4, 128, 77);
  FailureInjector inj({SectorModel::kCorrelated, 0.01, 0.9, 1.5}, 78);
  for (int round = 0; round < 12; ++round) {
    for (std::size_t s = 0; s < array.stripe_count(); ++s) {
      auto mask = inj.sample_stripe_mask(8, 8, {});
      if (!array.code().is_recoverable(mask)) continue;  // skip overload rounds
      array.corrupt(s, mask);
    }
    ASSERT_EQ(array.repair_all(), 0u) << "round " << round;
    ASSERT_TRUE(array.verify()) << "round " << round;
  }
}

TEST(MonteCarlo, PureDeviceFailureMttdlMatchesMarkov) {
  // With sector failures off, the analytic m = 1 model reduces to the classic
  // double-failure MTTDL; the simulation must land on it within noise.
  MonteCarloParams params;
  params.n = 8;
  params.r = 8;
  params.stripes = 1;
  params.mttf_hours = 1000.0;
  params.rebuild_hours = 50.0;  // inflated to make losses common
  params.sector.p_sec = 0.0;
  params.episodes = 6000;
  params.seed = 5;

  const auto result =
      simulate_array_mttdl(params, [](const std::vector<bool>&) { return true; });
  ASSERT_GT(result.data_loss_events, 100u);

  reliability::SystemParams p;
  p.n = params.n;
  p.mttf_hours = params.mttf_hours;
  p.rebuild_hours = params.rebuild_hours;
  const double analytic = reliability::mttdl_array(p, 0.0);
  EXPECT_NEAR(result.mttdl_hours / analytic, 1.0, 0.15);
}

TEST(MonteCarlo, SectorFailuresMatchAnalyticParr) {
  // Inflate p_sec so critical-mode losses dominate, then compare against the
  // analytic MTTDL built from the same P_str.
  MonteCarloParams params;
  params.n = 8;
  params.r = 16;
  params.stripes = 50;
  params.mttf_hours = 10000.0;
  params.rebuild_hours = 1.0;  // second-device losses negligible
  params.sector = {SectorModel::kIndependent, 2e-3};
  params.episodes = 4000;
  params.seed = 17;

  // Code under test: STAIR e = (1,2) pattern feasibility.
  const StairConfig cfg{.n = 8, .r = 16, .m = 1, .e = {1, 2}};
  const StairCode code(cfg);
  const auto check = [&](const std::vector<bool>& mask) {
    return code.is_recoverable(mask);
  };
  const auto result = simulate_array_mttdl(params, check);
  ASSERT_GT(result.sector_loss_events, 30u);

  reliability::SystemParams p;
  p.n = params.n;
  p.r = params.r;
  p.mttf_hours = params.mttf_hours;
  p.rebuild_hours = params.rebuild_hours;
  p.device_bytes = params.stripes * p.sector_bytes * params.r;  // 50 stripes
  const auto pchk = reliability::independent_chunk_pmf(params.sector.p_sec, params.r);
  const double pstr = reliability::pstr_stair(pchk, params.n - 1, cfg.e);
  const double analytic = reliability::mttdl_array(p, reliability::p_arr(p, pstr));
  EXPECT_NEAR(result.mttdl_hours / analytic, 1.0, 0.35);
}

TEST(Scrubber, LatentErrorProbabilityLimits) {
  EXPECT_DOUBLE_EQ(latent_error_probability({100.0, 0.0}), 0.0);
  // Tiny rate: p ~ rate * T / 2 (mid-period exposure).
  const double p = latent_error_probability({100.0, 1e-8});
  EXPECT_NEAR(p, 1e-8 * 100.0 / 2.0, 1e-10);
  // Huge rate: saturates towards 1.
  EXPECT_GT(latent_error_probability({1000.0, 1.0}), 0.99);
  // Longer scrub period -> more exposure.
  EXPECT_LT(scrubbed_p_sec(1e-6, 24.0), scrubbed_p_sec(1e-6, 24.0 * 30));
}

TEST(Scrubber, LatentErrorProbabilityBoundaries) {
  // Degenerate policies are exactly zero exposure, never NaN.
  EXPECT_DOUBLE_EQ(latent_error_probability({0.0, 1e-3}), 0.0);   // period 0
  EXPECT_DOUBLE_EQ(latent_error_probability({24.0, 0.0}), 0.0);   // rate 0
  EXPECT_DOUBLE_EQ(latent_error_probability({0.0, 0.0}), 0.0);

  // rate*t underflows to 0 while both factors are positive: the naive
  // expm1(-x)/x form evaluates 0/0 here.
  const double tiny = latent_error_probability({1e-200, 1e-200});
  EXPECT_FALSE(std::isnan(tiny));
  EXPECT_DOUBLE_EQ(tiny, 0.0);

  // Small-x precision: p = x/2 - x^2/6 + ... — the 1-(expm1 ratio) form
  // loses ~1e-16 absolute to cancellation, swamping the answer at x=1e-12.
  const double x = 1e-12;
  EXPECT_NEAR(latent_error_probability({1.0, x}), x / 2.0, x * 1e-6);

  // Continuity across the series/closed-form switch at x = 1e-4.
  const double below = latent_error_probability({1.0, 0.99e-4});
  const double above = latent_error_probability({1.0, 1.01e-4});
  EXPECT_LT(below, above);
  EXPECT_NEAR(above - below, (1.01e-4 - 0.99e-4) / 2.0, 1e-10);
}

TEST(Scrubber, PassRateMbpsSizesTheScrubTokenBucket) {
  // A 1 GiB store scanned once per hour: 1 GiB / 3600 s in MiB/s.
  const double bytes = 1024.0 * 1024.0 * 1024.0;
  EXPECT_NEAR(pass_rate_mbps(bytes, 1.0), 1024.0 / 3600.0, 1e-9);
  // Halving the period doubles the required rate.
  EXPECT_NEAR(pass_rate_mbps(bytes, 0.5), 2.0 * 1024.0 / 3600.0, 1e-9);
  // Degenerate inputs are 0, not inf/NaN.
  EXPECT_DOUBLE_EQ(pass_rate_mbps(0.0, 24.0), 0.0);
  EXPECT_DOUBLE_EQ(pass_rate_mbps(bytes, 0.0), 0.0);
}

TEST(Scrubber, EffectiveScrubPeriodBoundaries) {
  // 1 GiB scanned at 64 MiB/s: one pass takes 16 s.
  const double bytes = 1024.0 * 1024.0 * 1024.0;
  const double pass_hours = 16.0 / 3600.0;

  // "Scrub continuously" (period 0) means back-to-back passes, so the
  // delivered period is one pass time — not zero exposure.
  EXPECT_NEAR(effective_scrub_period(0.0, bytes, 64.0), pass_hours, 1e-12);
  // A negative period is the same request as zero.
  EXPECT_NEAR(effective_scrub_period(-5.0, bytes, 64.0), pass_hours, 1e-12);
  // Continuous scrubbing with an unbounded scanner really is instant.
  EXPECT_DOUBLE_EQ(effective_scrub_period(0.0, bytes, 0.0), 0.0);

  // A period shorter than one pass is physically undeliverable: clamped up.
  EXPECT_NEAR(effective_scrub_period(pass_hours / 2.0, bytes, 64.0), pass_hours,
              1e-12);
  // A period longer than one pass is delivered as requested.
  EXPECT_DOUBLE_EQ(effective_scrub_period(10.0, bytes, 64.0), 10.0);

  // Degenerate store or unbounded scan: the request passes through (floored
  // at 0 so downstream exposure math never sees a negative period).
  EXPECT_DOUBLE_EQ(effective_scrub_period(5.0, 0.0, 64.0), 5.0);
  EXPECT_DOUBLE_EQ(effective_scrub_period(5.0, bytes, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(effective_scrub_period(-3.0, 0.0, 64.0), 0.0);

  // Round trip with pass_rate_mbps: a scanner sized for period T delivers T.
  const double rate = pass_rate_mbps(bytes, 24.0);
  EXPECT_NEAR(effective_scrub_period(0.0, bytes, rate), 24.0, 1e-9);
  EXPECT_NEAR(effective_scrub_period(24.0, bytes, rate), 24.0, 1e-9);
}

}  // namespace
}  // namespace stair::sim
