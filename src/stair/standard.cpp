// Standard encoding (§5.3) and the generator-coefficient analysis (§5.2).
//
// Every parity symbol of a STAIR stripe is a fixed linear function of the
// data symbols. We obtain the coefficients generically by propagating
// unit data vectors through the upstairs schedule (both encoding methods
// provably produce identical parities, §5.1.3, so either would do). The
// nonzero pattern realizes the uneven parity relations of Property 5.1, and
// its size is the standard method's Mult_XOR cost reported in Figure 9.

#include <cassert>

#include "stair/builders.h"
#include "stair/stair_code.h"

namespace stair::internal {

namespace {

// Coefficient vectors (over the data symbols) for every canonical symbol id,
// computed by symbolically replaying the upstairs schedule.
std::vector<std::vector<std::uint32_t>> propagate_coefficients(const StairCode& code) {
  const StairLayout& layout = code.layout();
  const gf::Field& f = code.field();
  const std::size_t total = layout.total_symbols();
  const std::size_t d = layout.data_ids().size();

  std::vector<std::vector<std::uint32_t>> coeff(total);
  // Seed: data symbols are unit vectors; every other referenced input
  // (outside globals in inside mode) is zero. Unseeded symbols start zero
  // and become defined when an op outputs them.
  for (std::size_t idx = 0; idx < d; ++idx) {
    coeff[layout.data_ids()[idx]].assign(d, 0);
    coeff[layout.data_ids()[idx]][idx] = 1;
  }

  const Schedule& upstairs = code.encoding_schedule(EncodingMethod::kUpstairs);
  for (const auto& op : upstairs.ops()) {
    std::vector<std::uint32_t> acc(d, 0);
    for (const auto& term : op.terms) {
      if (term.coeff == 0) continue;
      const auto& in = coeff[term.input];
      if (in.empty()) continue;  // known-zero symbol
      for (std::size_t k = 0; k < d; ++k)
        if (in[k]) acc[k] ^= f.mul(term.coeff, in[k]);
    }
    coeff[op.output] = std::move(acc);
  }
  return coeff;
}

}  // namespace

Matrix compute_coefficients(const StairCode& code) {
  const StairLayout& layout = code.layout();
  const auto coeff = propagate_coefficients(code);
  const std::size_t d = layout.data_ids().size();

  Matrix out(code.field(), layout.parity_ids().size(), d);
  for (std::size_t p = 0; p < layout.parity_ids().size(); ++p) {
    const auto& vec = coeff[layout.parity_ids()[p]];
    assert(!vec.empty() && "parity symbol never produced by upstairs schedule");
    for (std::size_t k = 0; k < d; ++k) out.set(p, k, vec[k]);
  }
  return out;
}

Schedule build_standard_schedule(const StairCode& code) {
  const StairLayout& layout = code.layout();
  const Matrix& coeff = code.coefficients();

  Schedule sch(code.field());
  for (std::size_t p = 0; p < layout.parity_ids().size(); ++p) {
    ScheduleOp op;
    op.output = layout.parity_ids()[p];
    for (std::size_t k = 0; k < coeff.cols(); ++k)
      if (coeff.at(p, k) != 0) op.terms.push_back({coeff.at(p, k), layout.data_ids()[k]});
    sch.add_op(std::move(op));
  }
  return sch;
}

}  // namespace stair::internal
