// Ablation A1 (§5.3): what parity reuse is worth. Measures encode throughput
// of the standard (no-reuse) method against upstairs/downstairs (reuse),
// the automatic selection, and the zero-input-skipping optimized schedule,
// at n = 16, r = 16, m = 2 over several coverage vectors.
//
// Expected: reuse methods beat standard whenever their Mult_XOR count is
// lower (tracking Figure 9); zero-skip shaves a further slice off upstairs.

#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace stair;
using namespace stair::bench;

namespace {

constexpr std::size_t kSymbol = 32 * 1024;  // ~8 MB stripes

const std::vector<std::vector<std::size_t>> kCoverages{{4}, {2, 2}, {1, 1, 2}, {1, 1, 1, 1}};

StairCode make_code(int e_index) {
  return StairCode({.n = 16, .r = 16, .m = 2, .e = kCoverages[e_index]});
}

void report(benchmark::State& state, const StairCode& code, std::size_t mult_xors) {
  const std::size_t stripe_bytes = kSymbol * code.config().n * code.config().r;
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * stripe_bytes);
  state.counters["mult_xors"] = static_cast<double>(mult_xors);
}

void BM_EncodeMethod(benchmark::State& state, EncodingMethod method) {
  const StairCode code = make_code(static_cast<int>(state.range(0)));
  StripeBuffer stripe = make_encoded_stripe(code, kSymbol);
  Workspace ws;
  for (auto _ : state) code.encode(stripe.view(), method, &ws);
  report(state, code, code.mult_xor_count(method));
}

void BM_EncodeZeroSkip(benchmark::State& state) {
  const StairCode code = make_code(static_cast<int>(state.range(0)));
  std::vector<bool> zeros(code.layout().total_symbols(), false);
  for (std::uint32_t g : code.layout().outside_global_ids()) zeros[g] = true;
  const Schedule trimmed = code.encoding_schedule(EncodingMethod::kUpstairs).optimized(zeros);
  const CompiledSchedule compiled = trimmed.compile();
  StripeBuffer stripe = make_encoded_stripe(code, kSymbol);
  Workspace ws;
  for (auto _ : state) code.execute(compiled, stripe.view(), &ws);
  report(state, code, trimmed.mult_xor_count());
}

}  // namespace

BENCHMARK_CAPTURE(BM_EncodeMethod, standard, EncodingMethod::kStandard)
    ->DenseRange(0, 3)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EncodeMethod, upstairs, EncodingMethod::kUpstairs)
    ->DenseRange(0, 3)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EncodeMethod, downstairs, EncodingMethod::kDownstairs)
    ->DenseRange(0, 3)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EncodeMethod, auto_selected, EncodingMethod::kAuto)
    ->DenseRange(0, 3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EncodeZeroSkip)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
