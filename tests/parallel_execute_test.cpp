// Parallel-equivalence battery: execute_parallel / encode_parallel /
// decode_parallel through the persistent pool must be byte-identical to the
// serial paths for every thread count, including thread counts above the
// hardware width, odd symbol sizes, and symbols smaller than the thread
// count. Also runs under the ThreadSanitizer CI job.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "stair/plan_cache.h"
#include "stair/stair_code.h"
#include "stair/update_engine.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace stair {
namespace {

// Force a multi-worker default pool even on single-vCPU hosts (overwrite=0
// keeps an explicit user STAIR_THREADS), so the slicing paths really run
// concurrently everywhere this suite runs. Must happen before the first
// default_pool() use anywhere in the binary.
const std::size_t g_pool_width = [] {
  ::setenv("STAIR_THREADS", "4", /*overwrite=*/0);
  return ThreadPool::default_pool().concurrency();
}();

std::vector<std::uint8_t> all_bytes(const StripeView& view) {
  std::vector<std::uint8_t> out;
  for (const auto& r : view.stored) out.insert(out.end(), r.begin(), r.end());
  for (const auto& r : view.outside_globals) out.insert(out.end(), r.begin(), r.end());
  return out;
}

std::vector<std::size_t> thread_matrix() {
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> threads{1, 2, 3, 7, hw, 0 /* = pool default */};
  return threads;
}

struct ConfigCase {
  StairConfig cfg;
  GlobalParityMode mode;
};

std::vector<ConfigCase> config_matrix() {
  return {
      {{.n = 8, .r = 8, .m = 2, .e = {1, 2}}, GlobalParityMode::kInside},
      {{.n = 6, .r = 4, .m = 1, .e = {1, 1}}, GlobalParityMode::kInside},
      {{.n = 8, .r = 6, .m = 2, .e = {2}}, GlobalParityMode::kOutside},
      {{.n = 9, .r = 5, .m = 1, .e = {1, 2}}, GlobalParityMode::kInside},
  };
}

// Odd sizes exercise ragged final slices; 16 exercises symbols far smaller
// than 64-byte slicing granularity and most thread counts. All are multiples
// of w/8 = 1 for the w = 8 configs above.
const std::size_t kSymbolSizes[] = {16, 72, 1000, 4096 + 64, 9999};

void scramble(const StairCode& code, StripeBuffer& stripe, const std::vector<bool>& mask,
              std::uint64_t seed) {
  Rng garbage(seed);
  for (std::size_t idx = 0; idx < mask.size(); ++idx)
    if (mask[idx]) garbage.fill(stripe.view().stored[idx]);
  (void)code;
}

// Wide widths route the pooled replay through per-range altmap conversions
// on SIMD backends (each worker converts exactly the byte range it replays);
// serial and parallel must still agree bytewise for sizes with ragged
// slices and partial trailing altmap blocks. Sizes are multiples of w/8.
TEST(ParallelExecute, WideWidthEncodeDecodeMatchesSerial) {
  for (int w : {16, 32}) {
    const StairConfig cfg{.n = 8, .r = 6, .m = 2, .e = {1, 2}, .w = w};
    const StairCode code(cfg);
    std::vector<bool> mask(cfg.n * cfg.r, false);
    for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + 1] = true;
    mask[3 * cfg.n + 6] = true;
    ASSERT_TRUE(code.is_recoverable(mask));

    for (std::size_t symbol : {std::size_t{72}, std::size_t{1000}, std::size_t{4096 + 64},
                               std::size_t{9996}}) {
      StripeBuffer serial(code, symbol);
      std::vector<std::uint8_t> data(serial.data_size());
      Rng rng(7000 + w + symbol);
      rng.fill(data);
      serial.set_data(data);
      code.encode(serial.view());
      const auto expected = all_bytes(serial.view());

      for (std::size_t threads : thread_matrix()) {
        StripeBuffer parallel(code, symbol);
        parallel.set_data(data);
        Workspace ws;
        code.encode_parallel(parallel.view(), threads, EncodingMethod::kAuto, &ws);
        ASSERT_EQ(all_bytes(parallel.view()), expected)
            << "encode w=" << w << " symbol=" << symbol << " threads=" << threads;

        scramble(code, parallel, mask, 99 + threads);
        ASSERT_TRUE(code.decode_parallel(parallel.view(), mask, threads, &ws));
        ASSERT_EQ(all_bytes(parallel.view()), expected)
            << "decode w=" << w << " symbol=" << symbol << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelExecute, EncodeMatchesSerialAcrossMatrix) {
  for (const auto& c : config_matrix()) {
    const StairCode code(c.cfg, c.mode);
    for (std::size_t symbol : kSymbolSizes) {
      StripeBuffer serial(code, symbol);
      std::vector<std::uint8_t> data(serial.data_size());
      Rng rng(1000 + symbol);
      rng.fill(data);
      serial.set_data(data);
      code.encode(serial.view());
      const auto expected = all_bytes(serial.view());

      for (std::size_t threads : thread_matrix()) {
        StripeBuffer parallel(code, symbol);
        parallel.set_data(data);
        Workspace ws;
        code.encode_parallel(parallel.view(), threads, EncodingMethod::kAuto, &ws);
        ASSERT_EQ(all_bytes(parallel.view()), expected)
            << c.cfg.to_string() << " symbol=" << symbol << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelExecute, BothScheduleOverloadsMatchSerial) {
  const StairConfig cfg{.n = 8, .r = 8, .m = 2, .e = {1, 2}};
  const StairCode code(cfg);
  const std::size_t symbol = 1000;
  const Schedule& sched = code.encoding_schedule(EncodingMethod::kUpstairs);
  const CompiledSchedule& compiled = code.compiled_encoding_schedule(EncodingMethod::kUpstairs);

  StripeBuffer reference(code, symbol);
  std::vector<std::uint8_t> data(reference.data_size());
  Rng rng(2024);
  rng.fill(data);
  reference.set_data(data);
  code.execute(sched, reference.view());
  const auto expected = all_bytes(reference.view());

  for (std::size_t threads : thread_matrix()) {
    StripeBuffer via_schedule(code, symbol), via_compiled(code, symbol);
    via_schedule.set_data(data);
    via_compiled.set_data(data);
    code.execute_parallel(sched, via_schedule.view(), threads);
    code.execute_parallel(compiled, via_compiled.view(), threads);
    ASSERT_EQ(all_bytes(via_schedule.view()), expected) << "Schedule overload t=" << threads;
    ASSERT_EQ(all_bytes(via_compiled.view()), expected) << "Compiled overload t=" << threads;
  }
}

TEST(ParallelExecute, DecodeParallelRecoversAcrossMatrix) {
  for (const auto& c : config_matrix()) {
    const StairCode code(c.cfg, c.mode);
    const std::size_t symbol = 1000;
    StripeBuffer stripe(code, symbol);
    std::vector<std::uint8_t> data(stripe.data_size());
    Rng rng(77);
    rng.fill(data);

    // Lose one whole chunk plus one extra sector — inside every config's
    // coverage (m >= 1, e_max >= 1).
    std::vector<bool> mask(c.cfg.n * c.cfg.r, false);
    for (std::size_t i = 0; i < c.cfg.r; ++i) mask[i * c.cfg.n + 0] = true;
    mask[(c.cfg.r - 1) * c.cfg.n + 2] = true;

    for (std::size_t threads : thread_matrix()) {
      stripe.set_data(data);
      code.encode(stripe.view());
      scramble(code, stripe, mask, 88 + threads);
      Workspace ws;
      ASSERT_TRUE(code.decode_parallel(stripe.view(), mask, threads, &ws))
          << c.cfg.to_string() << " threads=" << threads;
      std::vector<std::uint8_t> out(stripe.data_size());
      stripe.get_data(out);
      ASSERT_EQ(out, data) << c.cfg.to_string() << " threads=" << threads;
    }
  }
}

TEST(ParallelExecute, DecodeParallelThroughCacheMatchesSerial) {
  const StairConfig cfg{.n = 8, .r = 8, .m = 2, .e = {1, 2}};
  const StairCode code(cfg);
  DecodePlanCache cache(code, 8);
  const std::size_t symbol = 4096 + 64;

  StripeBuffer stripe(code, symbol);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(99);
  rng.fill(data);

  std::vector<bool> mask(cfg.n * cfg.r, false);
  for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + 3] = true;
  mask[2 * cfg.n + 5] = true;

  for (std::size_t threads : thread_matrix()) {
    stripe.set_data(data);
    code.encode(stripe.view());
    scramble(code, stripe, mask, 100 + threads);
    ASSERT_TRUE(code.decode_parallel(stripe.view(), mask, threads, nullptr, &cache));
    std::vector<std::uint8_t> out(stripe.data_size());
    stripe.get_data(out);
    ASSERT_EQ(out, data) << "threads=" << threads;
  }
  EXPECT_EQ(cache.misses(), 1u);  // one mask: compiled once, replayed per thread count
}

TEST(ParallelExecute, WorkspaceIsReusedAcrossParallelCalls) {
  const StairConfig cfg{.n = 8, .r = 8, .m = 2, .e = {1, 2}};
  const StairCode code(cfg);
  const std::size_t symbol = 1000;
  StripeBuffer a(code, symbol), b(code, symbol);
  std::vector<std::uint8_t> data(a.data_size());
  Rng rng(55);
  rng.fill(data);
  a.set_data(data);
  b.set_data(data);

  // Same workspace across serial and parallel calls, and across repeated
  // parallel calls — the scratch must be re-mapped, never stale.
  Workspace ws;
  code.encode(a.view(), EncodingMethod::kAuto, &ws);
  code.encode_parallel(b.view(), 3, EncodingMethod::kAuto, &ws);
  EXPECT_EQ(all_bytes(a.view()), all_bytes(b.view()));
  code.encode_parallel(b.view(), 7, EncodingMethod::kAuto, &ws);
  EXPECT_EQ(all_bytes(a.view()), all_bytes(b.view()));
}

// Byte-equality sweep for the update path across the full config x thread
// matrix — the same battery the encode/decode paths get above. Odd symbol
// size keeps a ragged final slice in play at every thread count.
TEST(ParallelExecute, UpdateParallelMatchesSerialAcrossMatrix) {
  for (const auto& c : config_matrix()) {
    const StairCode code(c.cfg, c.mode);
    const UpdateEngine engine(code);
    const std::size_t symbol = 9999;

    for (std::size_t threads : thread_matrix()) {
      StripeBuffer serial(code, symbol), parallel(code, symbol);
      std::vector<std::uint8_t> data(serial.data_size());
      Rng rng(123 + threads);
      rng.fill(data);
      serial.set_data(data);
      parallel.set_data(data);
      code.encode(serial.view());
      code.encode(parallel.view());

      std::vector<std::uint8_t> fresh(symbol);
      for (std::size_t idx = 0; idx < code.data_symbol_count(); idx += 7) {
        rng.fill(fresh);
        engine.update(serial.view(), idx, fresh);
        engine.update_parallel(parallel.view(), idx, fresh, threads);
        ASSERT_EQ(all_bytes(serial.view()), all_bytes(parallel.view()))
            << c.cfg.to_string() << " data index " << idx << " threads=" << threads;
      }
    }
  }
}

// The ExecPolicy entry point drives the same single implementation: policy
// serial() == the plain call, sliced(t) == update_parallel(t).
TEST(ParallelExecute, UpdatePolicyFormsAgree) {
  const StairConfig cfg{.n = 8, .r = 6, .m = 2, .e = {1, 2}};
  const StairCode code(cfg);
  const UpdateEngine engine(code);
  const std::size_t symbol = 4096 + 64;

  StripeBuffer a(code, symbol), b(code, symbol), c(code, symbol);
  std::vector<std::uint8_t> data(a.data_size());
  Rng rng(321);
  rng.fill(data);
  for (auto* s : {&a, &b, &c}) {
    s->set_data(data);
    code.encode(s->view());
  }
  std::vector<std::uint8_t> fresh(symbol);
  rng.fill(fresh);
  engine.update(a.view(), 2, fresh);
  engine.update(b.view(), 2, fresh, ExecPolicy::serial());
  engine.update(c.view(), 2, fresh, ExecPolicy::pooled());
  EXPECT_EQ(all_bytes(a.view()), all_bytes(b.view()));
  EXPECT_EQ(all_bytes(a.view()), all_bytes(c.view()));
}

TEST(ParallelExecute, ManyMoreThreadsThanBytes) {
  const StairConfig cfg{.n = 6, .r = 4, .m = 1, .e = {1, 1}};
  const StairCode code(cfg);
  const std::size_t symbol = 8;  // fewer bytes than requested threads
  StripeBuffer serial(code, symbol), parallel(code, symbol);
  std::vector<std::uint8_t> data(serial.data_size());
  Rng rng(7);
  rng.fill(data);
  serial.set_data(data);
  parallel.set_data(data);
  code.encode(serial.view());
  code.encode_parallel(parallel.view(), 64);
  EXPECT_EQ(all_bytes(serial.view()), all_bytes(parallel.view()));
}

}  // namespace
}  // namespace stair
