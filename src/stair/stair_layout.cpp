#include "stair/stair_layout.h"

namespace stair {

StairLayout::StairLayout(const StairConfig& cfg, GlobalParityMode mode)
    : cfg_(cfg), mode_(mode) {
  cfg_.validate();

  for (std::size_t i = 0; i < cfg_.r; ++i)
    for (std::size_t j = 0; j < cfg_.n; ++j)
      if (is_data(i, j)) data_ids_.push_back(id(i, j));

  for (std::size_t i = 0; i < cfg_.r; ++i)
    for (std::size_t j = cfg_.n - cfg_.m; j < cfg_.n; ++j)
      parity_ids_.push_back(id(i, j));

  for (std::size_t l = 0; l < cfg_.m_prime(); ++l)
    for (std::size_t h = 0; h < cfg_.e[l]; ++h)
      outside_global_ids_.push_back(id(cfg_.r + h, cfg_.n + l));

  if (mode_ == GlobalParityMode::kInside) {
    for (std::size_t l = 0; l < cfg_.m_prime(); ++l)
      for (std::size_t i = cfg_.r - cfg_.e[l]; i < cfg_.r; ++i)
        parity_ids_.push_back(id(i, global_column(l)));
  } else {
    for (std::uint32_t g : outside_global_ids_) parity_ids_.push_back(g);
  }
}

std::size_t StairLayout::slot_of_column(std::size_t col) const {
  const std::size_t first = cfg_.n - cfg_.m - cfg_.m_prime();
  if (col < first || col >= cfg_.n - cfg_.m) return cfg_.m_prime();
  return col - first;
}

bool StairLayout::is_inside_global(std::size_t row, std::size_t col) const {
  if (mode_ != GlobalParityMode::kInside) return false;
  if (!is_stored(row, col) || col >= cfg_.n - cfg_.m) return false;
  const std::size_t l = slot_of_column(col);
  if (l == cfg_.m_prime()) return false;
  return row >= cfg_.r - cfg_.e[l];
}

bool StairLayout::is_data(std::size_t row, std::size_t col) const {
  return is_stored(row, col) && col < cfg_.n - cfg_.m && !is_inside_global(row, col);
}

}  // namespace stair
