#include "stair/io_pipeline.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>

#include <unistd.h>

#include "util/thread_pool.h"

namespace stair {

std::vector<std::size_t> parse_coverage_list(const std::string& text) {
  std::vector<std::size_t> values;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t next = text.find(',', pos);
    if (next == std::string::npos) next = text.size();
    values.push_back(std::strtoull(text.substr(pos, next - pos).c_str(), nullptr, 10));
    pos = next + 1;
  }
  return values;
}

std::uint64_t content_hash64(std::span<const std::uint8_t> bytes) {
  // 8 input bytes per multiply+rotate round; sectors are hashed on the hot
  // pipeline path, so this must keep pace with the region kernels.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ (bytes.size() * 0x100000001b3ULL);
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t w;
    std::memcpy(&w, bytes.data() + i, 8);
    h ^= w;
    h *= 0xff51afd7ed558ccdULL;
    h = (h << 31) | (h >> 33);
  }
  std::uint64_t tail = 0;
  for (int k = 0; i < bytes.size(); ++i, k += 8) tail |= std::uint64_t{bytes[i]} << k;
  h ^= tail ^ 0xc4ceb9fe1a85ec53ULL;
  h *= 0xc4ceb9fe1a85ec53ULL;
  return h ^ (h >> 29);
}

namespace {

/// Hash over a sequence of 64-bit hashes (8-byte LE each, in order): the
/// per-stripe data hash folds its data sectors' hashes, the whole-file check
/// folds the per-stripe hashes. Stripes retire out of order; this stays
/// deterministic and never rereads content bytes.
std::uint64_t combine_hashes(std::span<const std::uint64_t> hashes) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(hashes.size() * 8);
  for (std::uint64_t h : hashes)
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(h >> (8 * i)));
  return content_hash64(bytes);
}

}  // namespace

// ---------------------------------------------------------------------------
// StripeStore
// ---------------------------------------------------------------------------

std::string StripeStore::device_path(const std::string& dir, std::size_t device) {
  char name[32];
  std::snprintf(name, sizeof name, "dev_%02zu.bin", device);
  return dir + "/" + name;
}

std::string StripeStore::manifest_path(const std::string& dir) {
  return dir + "/manifest.txt";
}

void StripeStore::save(const std::string& dir) const {
  std::ofstream out(manifest_path(dir), std::ios::trunc);
  if (!out) throw std::runtime_error("StripeStore: cannot write " + manifest_path(dir));
  out << "stair_store 1\n"
      << "n " << cfg.n << "\nr " << cfg.r << "\nm " << cfg.m << "\ne ";
  for (std::size_t i = 0; i < cfg.e.size(); ++i) out << (i ? "," : "") << cfg.e[i];
  if (cfg.e.empty()) out << "-";
  out << "\nw " << cfg.w << "\nsymbol " << symbol_bytes << "\nfile_size " << file_size
      << "\nstripes " << stripes << "\ndata_checksum " << data_checksum << "\n";
  // One line per (stripe, device) chunk: its r sector checksums in row order.
  for (std::size_t s = 0; s < stripes; ++s)
    for (std::size_t j = 0; j < cfg.n; ++j) {
      out << "chunk " << s << " " << j;
      for (std::size_t i = 0; i < cfg.r; ++i)
        out << " " << sector_checksums[(s * cfg.n + j) * cfg.r + i];
      out << "\n";
    }
  out.flush();
  if (!out) throw std::runtime_error("StripeStore: write failed for " + manifest_path(dir));
}

StripeStore StripeStore::load(const std::string& dir) {
  std::ifstream in(manifest_path(dir));
  if (!in) throw std::runtime_error("StripeStore: missing " + manifest_path(dir));
  StripeStore store;
  std::string key;
  while (in >> key) {
    if (key == "stair_store") {
      int version;
      in >> version;
    } else if (key == "n") {
      in >> store.cfg.n;
    } else if (key == "r") {
      in >> store.cfg.r;
    } else if (key == "m") {
      in >> store.cfg.m;
    } else if (key == "e") {
      std::string v;
      in >> v;
      store.cfg.e = v == "-" ? std::vector<std::size_t>{} : parse_coverage_list(v);
    } else if (key == "w") {
      in >> store.cfg.w;
    } else if (key == "symbol") {
      in >> store.symbol_bytes;
    } else if (key == "file_size") {
      in >> store.file_size;
    } else if (key == "stripes") {
      in >> store.stripes;
    } else if (key == "data_checksum") {
      in >> store.data_checksum;
    } else if (key == "chunk") {
      // Header keys precede chunk lines (we write the manifest), so the
      // geometry is known here.
      if (store.cfg.n == 0 || store.cfg.r == 0)
        throw std::runtime_error("StripeStore: chunk line before geometry");
      std::size_t s, j;
      in >> s >> j;
      const std::size_t need = store.stripes * store.cfg.n * store.cfg.r;
      if (store.sector_checksums.size() != need) store.sector_checksums.assign(need, 0);
      if (s >= store.stripes || j >= store.cfg.n)
        throw std::runtime_error("StripeStore: chunk line out of range");
      for (std::size_t i = 0; i < store.cfg.r; ++i)
        in >> store.sector_checksums[(s * store.cfg.n + j) * store.cfg.r + i];
    }
  }
  store.cfg.validate();
  if (store.symbol_bytes == 0)
    throw std::runtime_error("StripeStore: manifest missing symbol size");
  if (store.sector_checksums.size() != store.stripes * store.cfg.n * store.cfg.r)
    throw std::runtime_error("StripeStore: manifest sector checksum count mismatch");
  return store;
}

// ---------------------------------------------------------------------------
// IoPipeline
// ---------------------------------------------------------------------------

/// One leased stripe slot: the StripeBuffer the Codec works on plus the
/// staging the IO side reads into / writes from. Reused warm via the pool.
struct IoPipeline::Slot {
  std::optional<StripeBuffer> buf;
  std::vector<std::uint8_t> data;                 // flat stripe data staging
  std::vector<std::vector<std::uint8_t>> chunks;  // per-device chunk staging
  std::vector<io::Result> results;                // decode: per-chunk outcome
  std::vector<bool> mask;                         // decode: erased symbols
  std::atomic<std::size_t> pending{0};            // countdown to stage change
};

/// Per-operation shared state. Lives on the encode_file/decode_file stack;
/// drain() guarantees no callback outlives it.
struct IoPipeline::Run {
  const StripeStore* store = nullptr;
  int file_fd = -1;  // input (encode) / output (decode)
  std::vector<int> dev_fds;
  std::size_t symbol_bytes = 0;
  std::size_t stripe_data = 0;  // data bytes per stripe
  std::size_t chunk_bytes = 0;
  // Data-symbol positions in data order: canonical ids from the layout,
  // decomposed to (row, device) once so the hash fold below needs no layout.
  std::vector<std::pair<std::size_t, std::size_t>> data_positions;
  std::vector<std::uint64_t> stripe_hashes;  // disjoint per-stripe writes
  std::vector<std::uint64_t>* sector_checksums = nullptr;  // encode fills these

  void set_data_positions(const StairLayout& layout) {
    data_positions.clear();
    data_positions.reserve(layout.data_ids().size());
    for (std::uint32_t id : layout.data_ids())
      data_positions.emplace_back(layout.row_of(id), layout.col_of(id));
  }

  /// The stripe's data hash: its data sectors' hashes folded in data order.
  /// `hash_of(row, device)` supplies each sector's hash (manifest/computed).
  template <typename HashOf>
  std::uint64_t stripe_data_hash(HashOf&& hash_of) const {
    std::vector<std::uint64_t> hashes;
    hashes.reserve(data_positions.size());
    for (const auto& [row, dev] : data_positions) hashes.push_back(hash_of(row, dev));
    return combine_hashes(hashes);
  }

  std::mutex mu;
  std::condition_variable cv;
  std::size_t in_flight = 0;  // stripes currently owning a slot; guarded by mu
  std::string error;          // first fatal failure; guarded by mu

  std::atomic<std::size_t> degraded{0}, failed{0}, missing{0}, corrupt{0};
  std::atomic<std::uint64_t> bytes_read{0}, bytes_written{0};

  bool has_fatal() {
    std::lock_guard<std::mutex> lock(mu);
    return !error.empty();
  }
};

IoPipeline::IoPipeline(Codec& codec) : IoPipeline(codec, Options{}) {}

IoPipeline::IoPipeline(Codec& codec, Options options)
    : codec_(codec), options_(options) {
  if (options_.queue_depth == 0) options_.queue_depth = 1;
  if (options_.engine) {
    engine_ = options_.engine;
  } else {
    // kAuto defers to STAIR_IO_BACKEND; an explicit option wins over the env.
    const io::Backend requested = options_.backend == io::Backend::kAuto
                                      ? io::backend_from_env()
                                      : options_.backend;
    owned_engine_ = io::Engine::create(requested, options_.io);
    engine_ = owned_engine_.get();
  }
}

IoPipeline::~IoPipeline() = default;

IoPipeline::SlotLease IoPipeline::acquire_slot(Run& run) {
  {
    std::unique_lock<std::mutex> lock(run.mu);
    run.cv.wait(lock, [&] { return run.in_flight < options_.queue_depth; });
    ++run.in_flight;
  }
  return slots_.acquire();
}

void IoPipeline::retire_slot(Run& run) {
  // Notify under the lock: once in_flight hits 0 a racing drain() returns
  // and the stack-allocated Run (and its cv) is destroyed.
  std::lock_guard<std::mutex> lock(run.mu);
  --run.in_flight;
  run.cv.notify_all();
}

void IoPipeline::fatal(Run& run, std::string message) {
  std::lock_guard<std::mutex> lock(run.mu);
  if (run.error.empty()) run.error = std::move(message);
}

void IoPipeline::drain(Run& run) {
  std::unique_lock<std::mutex> lock(run.mu);
  run.cv.wait(lock, [&] { return run.in_flight == 0; });
}

namespace {

std::string errno_text(int err) {
  return err ? std::string(std::strerror(err)) : std::string("short transfer");
}

}  // namespace

void IoPipeline::prepare_slot(Slot& slot, const StairCode& code, const Run& run,
                              std::size_t devices) {
  if (!slot.buf || slot.buf->symbol_size() != run.symbol_bytes)
    slot.buf.emplace(code, run.symbol_bytes);
  slot.data.resize(run.stripe_data);
  slot.chunks.resize(devices);
  for (auto& c : slot.chunks) c.resize(run.chunk_bytes);
  slot.results.resize(devices);
}

IoPipeline::Stats IoPipeline::encode_file(const std::string& input_path,
                                          const std::string& store_dir) {
  Stats st;
  const StairCode& code = codec_.code();
  const StairConfig& cfg = code.config();

  std::error_code ec;
  std::filesystem::create_directories(store_dir, ec);

  const int in_fd = engine_->open_read(input_path);
  if (in_fd < 0) {
    st.error = "cannot open input " + input_path;
    return st;
  }
  const std::uint64_t file_size = engine_->file_size(in_fd);

  Run run;
  run.symbol_bytes = options_.symbol_bytes;
  run.stripe_data = code.data_symbol_count() * run.symbol_bytes;
  run.chunk_bytes = cfg.r * run.symbol_bytes;
  run.set_data_positions(code.layout());
  const std::size_t stripes =
      file_size ? static_cast<std::size_t>((file_size + run.stripe_data - 1) / run.stripe_data)
                : 0;

  StripeStore store;
  store.cfg = cfg;
  store.symbol_bytes = run.symbol_bytes;
  store.file_size = static_cast<std::size_t>(file_size);
  store.stripes = stripes;
  store.sector_checksums.assign(stripes * cfg.n * cfg.r, 0);
  run.store = &store;
  run.sector_checksums = &store.sector_checksums;
  run.stripe_hashes.assign(stripes, 0);
  run.file_fd = in_fd;

  run.dev_fds.assign(cfg.n, -1);
  for (std::size_t j = 0; j < cfg.n; ++j) {
    run.dev_fds[j] = engine_->open_write(StripeStore::device_path(store_dir, j));
    if (run.dev_fds[j] < 0)
      fatal(run, "cannot create " + StripeStore::device_path(store_dir, j));
  }

  if (!run.has_fatal()) {
    for (std::size_t s = 0; s < stripes; ++s) {
      if (run.has_fatal()) break;
      SlotLease slot = acquire_slot(run);
      prepare_slot(*slot, code, run, cfg.n);
      const std::size_t offset = s * run.stripe_data;
      const std::size_t len =
          std::min<std::size_t>(run.stripe_data, static_cast<std::size_t>(file_size) - offset);
      std::fill(slot->data.begin() + static_cast<std::ptrdiff_t>(len), slot->data.end(), 0);
      Slot* raw = slot.get();
      // The continuation (1+ MB set_data + submit) is bounced onto the codec
      // pool: IO completion threads — the single uring reaper in particular —
      // must stay free to complete transfers, not process stripes.
      engine_->read(run.file_fd, offset, std::span(raw->data.data(), len),
                    [this, &run, slot = std::move(slot), s, len](const io::Result& r) mutable {
                      codec_.pool().submit([this, &run, slot = std::move(slot), s, len, r]() mutable {
                        encode_on_input_read(run, std::move(slot), s, len, r);
                      });
                    });
    }
  }
  drain(run);
  engine_->flush();
  engine_->close(in_fd);
  for (int fd : run.dev_fds) engine_->close(fd);

  st.stripes = stripes;
  st.bytes_read = run.bytes_read.load();
  st.bytes_written = run.bytes_written.load();
  {
    std::lock_guard<std::mutex> lock(run.mu);
    st.error = run.error;
  }
  if (st.error.empty()) {
    store.data_checksum = combine_hashes(run.stripe_hashes);
    try {
      store.save(store_dir);
      st.ok = true;
    } catch (const std::exception& e) {
      st.error = e.what();
    }
  }
  return st;
}

void IoPipeline::encode_on_input_read(Run& run, SlotLease slot, std::size_t stripe,
                                      std::size_t data_len, const io::Result& r) {
  run.bytes_read.fetch_add(r.bytes, std::memory_order_relaxed);
  if (r.error || r.bytes < data_len) {
    fatal(run, "input read failed at stripe " + std::to_string(stripe) + ": " +
                   errno_text(r.error));
    slot.reset();
    retire_slot(run);
    return;
  }
  try {
    slot->buf->set_data(slot->data);
    Slot* raw = slot.get();
    codec_.submit_encode(raw->buf->view(), options_.method,
                         [this, &run, slot = std::move(slot), stripe](bool ok) mutable {
                           encode_on_encoded(run, std::move(slot), stripe, ok);
                         });
  } catch (const std::exception& e) {
    fatal(run, std::string("submit_encode failed: ") + e.what());
    retire_slot(run);
  }
}

void IoPipeline::encode_on_encoded(Run& run, SlotLease slot, std::size_t stripe, bool ok) {
  if (!ok) {
    fatal(run, "encode job failed at stripe " + std::to_string(stripe));
    slot.reset();
    retire_slot(run);
    return;
  }
  try {
    const StairConfig& cfg = codec_.code().config();
    Slot& sl = *slot;
    // Gather each device's chunk (its r symbols, stripe-contiguous on disk)
    // and fingerprint every sector; the manifest rows are disjoint per stripe.
    for (std::size_t j = 0; j < cfg.n; ++j) {
      auto& chunk = sl.chunks[j];
      for (std::size_t i = 0; i < cfg.r; ++i) {
        const auto symbol = sl.buf->symbol(i, j);
        std::memcpy(chunk.data() + i * run.symbol_bytes, symbol.data(), run.symbol_bytes);
        (*run.sector_checksums)[(stripe * cfg.n + j) * cfg.r + i] = content_hash64(symbol);
      }
    }
    // The stripe's data hash folds the data sectors' hashes just computed —
    // no second pass over the bytes.
    run.stripe_hashes[stripe] = run.stripe_data_hash([&](std::size_t row, std::size_t dev) {
      return (*run.sector_checksums)[(stripe * cfg.n + dev) * cfg.r + row];
    });
    sl.pending.store(cfg.n, std::memory_order_relaxed);
    for (std::size_t j = 0; j < cfg.n; ++j) {
      Slot* raw = slot.get();
      engine_->write(run.dev_fds[j], stripe * run.chunk_bytes, raw->chunks[j],
                     [this, &run, slot](const io::Result& r) mutable {
                       run.bytes_written.fetch_add(r.bytes, std::memory_order_relaxed);
                       if (r.error || r.bytes < run.chunk_bytes)
                         fatal(run, "device write failed: " + errno_text(r.error));
                       if (slot->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                         slot.reset();
                         retire_slot(run);
                       }
                     });
    }
  } catch (const std::exception& e) {
    fatal(run, std::string("encode completion failed: ") + e.what());
    retire_slot(run);
  }
}

IoPipeline::Stats IoPipeline::decode_file(const std::string& store_dir,
                                          const std::string& output_path) {
  Stats st;
  StripeStore store;
  try {
    store = StripeStore::load(store_dir);
  } catch (const std::exception& e) {
    st.error = e.what();
    return st;
  }
  const StairCode& code = codec_.code();
  if (!(store.cfg == code.config())) {
    st.error = "store config " + store.cfg.to_string() + " does not match codec config " +
               code.config().to_string();
    return st;
  }

  Run run;
  run.store = &store;
  run.symbol_bytes = store.symbol_bytes;
  run.stripe_data = code.data_symbol_count() * store.symbol_bytes;
  run.chunk_bytes = store.chunk_bytes();
  run.set_data_positions(code.layout());
  run.stripe_hashes.assign(store.stripes, 0);

  run.dev_fds.assign(store.cfg.n, -1);
  for (std::size_t j = 0; j < store.cfg.n; ++j)
    run.dev_fds[j] = engine_->open_read(StripeStore::device_path(store_dir, j));

  run.file_fd = engine_->open_write(output_path);
  if (run.file_fd < 0) {
    for (int fd : run.dev_fds) engine_->close(fd);
    st.error = "cannot create output " + output_path;
    return st;
  }

  for (std::size_t s = 0; s < store.stripes; ++s) {
    if (run.has_fatal()) break;
    SlotLease slot = acquire_slot(run);
    prepare_slot(*slot, code, run, store.cfg.n);
    std::fill(slot->results.begin(), slot->results.end(), io::Result{});
    slot->pending.store(store.cfg.n, std::memory_order_relaxed);
    Slot* raw = slot.get();
    for (std::size_t j = 0; j < store.cfg.n; ++j) {
      if (run.dev_fds[j] < 0) {
        decode_on_chunk_read(run, slot, s, j, io::Result{ENOENT, 0});
      } else {
        engine_->read(run.dev_fds[j], s * run.chunk_bytes, raw->chunks[j],
                      [this, &run, slot, s, j](const io::Result& r) mutable {
                        decode_on_chunk_read(run, std::move(slot), s, j, r);
                      });
      }
    }
    slot.reset();  // stages own their copies now
  }
  drain(run);
  engine_->flush();
  // Failed trailing stripes must not shorten the file silently; recoverable
  // content has been written at its exact offsets either way.
  if (engine_->truncate(run.file_fd, store.file_size) != 0)
    fatal(run, "truncate on output failed");
  engine_->close(run.file_fd);
  for (int fd : run.dev_fds) engine_->close(fd);

  st.stripes = store.stripes;
  st.degraded_stripes = run.degraded.load();
  st.failed_stripes = run.failed.load();
  st.chunks_missing = run.missing.load();
  st.sectors_corrupt = run.corrupt.load();
  st.bytes_read = run.bytes_read.load();
  st.bytes_written = run.bytes_written.load();
  {
    std::lock_guard<std::mutex> lock(run.mu);
    st.error = run.error;
  }
  if (st.error.empty()) {
    if (st.failed_stripes) {
      st.error = std::to_string(st.failed_stripes) + " stripe(s) unrecoverable";
    } else if (combine_hashes(run.stripe_hashes) != store.data_checksum) {
      st.error = "reassembled data does not match the manifest checksum";
    } else {
      st.ok = true;
    }
  }
  return st;
}

void IoPipeline::decode_on_chunk_read(Run& run, SlotLease slot, std::size_t stripe,
                                      std::size_t device, const io::Result& r) {
  run.bytes_read.fetch_add(r.bytes, std::memory_order_relaxed);
  slot->results[device] = r;  // devices are disjoint; countdown publishes
  if (slot->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Assembly (per-sector verify + stripe scatter) is real work: bounce it
    // onto the codec pool so IO completion threads keep completing IO and
    // clean-stripe decode parallelizes across the pool, not the reaper.
    codec_.pool().submit([this, &run, slot = std::move(slot), stripe]() mutable {
      decode_assemble(run, std::move(slot), stripe);
    });
  }
}

void IoPipeline::decode_assemble(Run& run, SlotLease slot, std::size_t stripe) {
  try {
    const StairConfig& cfg = run.store->cfg;
    Slot& sl = *slot;
    sl.mask.assign(cfg.r * cfg.n, false);
    std::vector<bool>& mask = sl.mask;
    bool degraded = false;
    for (std::size_t j = 0; j < cfg.n; ++j) {
      const io::Result& r = sl.results[j];
      if (r.error != 0 || r.bytes != run.chunk_bytes) {
        // The transfer itself failed (missing device, EIO, short chunk):
        // nothing in this chunk can be trusted — erase the whole column.
        run.missing.fetch_add(1, std::memory_order_relaxed);
        for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + j] = true;
        degraded = true;
        continue;
      }
      // The transfer succeeded: verify sector by sector, erasing exactly the
      // sectors whose content lies (torn write, bit rot). This is what turns
      // a scribbled-on chunk into a *sector* failure pattern for the code's
      // e coverage instead of burning one of its m device credits.
      for (std::size_t i = 0; i < cfg.r; ++i) {
        std::memcpy(sl.buf->symbol(i, j).data(), sl.chunks[j].data() + i * run.symbol_bytes,
                    run.symbol_bytes);
        if (content_hash64(sl.buf->symbol(i, j)) != run.store->sector_checksum(stripe, j, i)) {
          run.corrupt.fetch_add(1, std::memory_order_relaxed);
          mask[i * cfg.n + j] = true;
          degraded = true;
        }
      }
    }
    if (!degraded) {
      decode_write_data(run, std::move(slot), stripe);
      return;
    }
    run.degraded.fetch_add(1, std::memory_order_relaxed);
    Slot* raw = slot.get();
    // The degraded-read path: the mask resolves through the session's plan
    // cache, so every stripe of a failure epoch replays one compiled plan.
    codec_.submit_decode(raw->buf->view(), mask,
                         [this, &run, slot = std::move(slot), stripe](bool ok) mutable {
                           if (!ok) {
                             // Outside the code's coverage: a failed stripe,
                             // counted, not thrown.
                             run.failed.fetch_add(1, std::memory_order_relaxed);
                             slot.reset();
                             retire_slot(run);
                             return;
                           }
                           decode_write_data(run, std::move(slot), stripe);
                         });
  } catch (const std::exception& e) {
    fatal(run, std::string("decode assemble failed: ") + e.what());
    retire_slot(run);
  }
}

void IoPipeline::decode_write_data(Run& run, SlotLease slot, std::size_t stripe) {
  try {
    const StairConfig& cfg = run.store->cfg;
    Slot& sl = *slot;
    // Fold the stripe's data hash from sector hashes: verified sectors reuse
    // the manifest value (verification just recomputed it), reconstructed
    // sectors are hashed fresh — the end-to-end check covers decode output.
    run.stripe_hashes[stripe] = run.stripe_data_hash([&](std::size_t row, std::size_t dev) {
      return sl.mask[row * cfg.n + dev]
                 ? content_hash64(sl.buf->symbol(row, dev))
                 : run.store->sector_checksum(stripe, dev, row);
    });
    sl.buf->get_data(sl.data);
    const std::size_t offset = stripe * run.stripe_data;
    const std::size_t len = std::min(run.stripe_data, run.store->file_size - offset);
    Slot* raw = slot.get();
    engine_->write(run.file_fd, offset, std::span(raw->data.data(), len),
                   [this, &run, slot = std::move(slot), len](const io::Result& r) mutable {
                     run.bytes_written.fetch_add(r.bytes, std::memory_order_relaxed);
                     if (r.error || r.bytes < len)
                       fatal(run, "output write failed: " + errno_text(r.error));
                     slot.reset();
                     retire_slot(run);
                   });
  } catch (const std::exception& e) {
    fatal(run, std::string("decode write failed: ") + e.what());
    retire_slot(run);
  }
}

}  // namespace stair
