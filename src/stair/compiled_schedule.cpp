#include "stair/compiled_schedule.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

namespace stair {

namespace {

// Combined footprint budget for one strip of every referenced symbol. Half a
// typical L2 so the split tables and replay bookkeeping fit alongside.
std::size_t strip_cache_budget() {
  static const std::size_t budget = [] {
    if (const char* env = std::getenv("STAIR_STRIP_BYTES")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{768} * 1024;
  }();
  return budget;
}

}  // namespace

CompiledSchedule::CompiledSchedule(const Schedule& schedule, std::size_t strip_bytes)
    : forced_strip_(strip_bytes) {
  std::unordered_set<std::uint32_t> touched;
  const gf::Field& f = schedule.field();
  ops_.reserve(schedule.ops().size());
  for (const auto& op : schedule.ops()) {
    Op compiled;
    compiled.output = op.output;
    touched.insert(op.output);
    bool self_ref = false;
    for (const auto& term : op.terms) {
      if (term.coeff == 0) continue;  // contributes nothing under replay
      if (term.input == op.output) self_ref = true;
      compiled.terms.push_back({gf::compiled_kernel(f, term.coeff), term.input});
      touched.insert(term.input);
    }
    compiled.zero_fill = self_ref || compiled.terms.empty();
    ops_.push_back(std::move(compiled));
  }
  touched_symbols_ = touched.size();
}

std::size_t CompiledSchedule::mult_xor_count() const {
  std::size_t count = 0;
  for (const auto& op : ops_) count += op.terms.size();
  return count;
}

std::size_t CompiledSchedule::strip_size(std::size_t symbol_size) const {
  std::size_t strip = forced_strip_
                          ? forced_strip_
                          : strip_cache_budget() / std::max<std::size_t>(1, touched_symbols_);
  strip &= ~std::size_t{63};  // keep strips 64-byte-granular (symbol-aligned for all w)
  if (strip < 64) strip = 64;
  return std::min(strip, symbol_size);
}

void CompiledSchedule::execute(std::span<const std::span<std::uint8_t>> symbols) const {
  if (ops_.empty()) return;
  const std::size_t size = symbols[ops_.front().output].size();
  if (size == 0) return;
  const std::size_t strip = strip_size(size);

  for (std::size_t offset = 0; offset < size; offset += strip) {
    const std::size_t len = std::min(strip, size - offset);
    for (const Op& op : ops_) {
      assert(op.output < symbols.size() && symbols[op.output].size() == size);
      auto dst = symbols[op.output].subspan(offset, len);
      if (op.zero_fill) {
        std::memset(dst.data(), 0, len);
        for (const Term& term : op.terms) {
          assert(term.input < symbols.size() && symbols[term.input].size() == size);
          term.kernel->mult_xor(symbols[term.input].subspan(offset, len), dst);
        }
        continue;
      }
      const Term& first = op.terms.front();
      assert(first.input < symbols.size() && symbols[first.input].size() == size);
      first.kernel->mult(symbols[first.input].subspan(offset, len), dst);
      for (std::size_t t = 1; t < op.terms.size(); ++t) {
        const Term& term = op.terms[t];
        assert(term.input < symbols.size() && symbols[term.input].size() == size);
        term.kernel->mult_xor(symbols[term.input].subspan(offset, len), dst);
      }
    }
  }
}

CompiledSchedule Schedule::compile(std::size_t strip_bytes) const {
  return CompiledSchedule(*this, strip_bytes);
}

}  // namespace stair
