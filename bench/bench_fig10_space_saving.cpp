// Figure 10: devices saved by STAIR codes over traditional erasure codes
// (which need m + m' parity chunks for the same coverage), as a function of
// r for s <= 4 and m' <= s. Also prints the §2 comparison against the IDR
// scheme and the SD saving (s - s/r) for reference.
//
// Expected shape: saving approaches m' as r grows; maximal at m' = s; SD's
// saving equals STAIR's best case but SD only exists for s <= 3.

#include <iostream>

#include "bench_util.h"
#include "idr/idr_scheme.h"

using namespace stair;
using namespace stair::bench;

int main() {
  std::cout << "=== Figure 10: space saving of STAIR over traditional erasure codes ===\n\n";

  for (std::size_t s = 1; s <= 4; ++s) {
    TablePrinter table("s = " + std::to_string(s) + "  (devices saved = m' - s/r)");
    std::vector<std::string> header{"r"};
    for (std::size_t mp = 1; mp <= s; ++mp) header.push_back("m'=" + std::to_string(mp));
    header.push_back("SD (s - s/r)");
    table.set_header(header);

    for (std::size_t r : {4, 8, 16, 24, 32}) {
      std::vector<std::string> row{std::to_string(r)};
      for (std::size_t mp = 1; mp <= s; ++mp) {
        // Any e with |e| = m' and sum s has the same saving; use the most
        // even split (ascending).
        std::vector<std::size_t> e(mp, s / mp);
        for (std::size_t i = 0; i < s % mp; ++i) ++e[mp - 1 - i];
        std::sort(e.begin(), e.end());
        const StairConfig cfg{.n = 16, .r = r, .m = 1, .e = e};
        row.push_back(format_sig(cfg.devices_saved(), 4));
      }
      row.push_back(format_sig(static_cast<double>(s) - static_cast<double>(s) / r, 4));
      table.add_row(row);
    }
    table.print(std::cout);
  }

  // §2's burst example: beta = 4, n = 8, m = 2 — IDR vs STAIR redundant sectors.
  const IdrConfig idr{.n = 8, .r = 16, .m = 2, .eps = 4};
  const StairConfig st{.n = 8, .r = 16, .m = 2, .e = {1, 4}};
  TablePrinter burst("§2 example: tolerating a burst of beta=4 (n=8, m=2, r=16)");
  burst.set_header({"scheme", "extra redundant sectors per stripe"});
  burst.add_row({"IDR eps=4", std::to_string(idr.redundancy() - idr.m * idr.r)});
  burst.add_row({"STAIR e=(1,4)", std::to_string(st.s())});
  burst.print(std::cout);

  std::cout << "Shape check: STAIR saving -> m' as r grows; STAIR reaches savings > 3\n"
               "devices for s = 4, beyond any known SD construction.\n";
  return 0;
}
