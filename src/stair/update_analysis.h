// Update-penalty analysis (§6.3): how many parity symbols must be rewritten
// when one data symbol changes. Derived from the generator coefficients, so
// it reflects the uneven parity relations of §5.2 exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "stair/stair_code.h"

namespace stair {

/// Per-data-symbol and aggregate update penalties for one code.
struct UpdatePenaltyStats {
  std::vector<std::size_t> per_symbol;  ///< parities touched per data symbol
  double average = 0;                   ///< the paper's "update penalty"
  std::size_t min = 0;
  std::size_t max = 0;
};

/// Counts, for every data symbol, the parity symbols whose value depends on
/// it (nonzero generator coefficient).
UpdatePenaltyStats update_penalty(const StairCode& code);

/// Update penalty of a plain MDS code with p parity chunks: every data symbol
/// touches exactly p parities (Reed-Solomon reference line of Figure 15).
inline double rs_update_penalty(std::size_t parity_chunks) {
  return static_cast<double>(parity_chunks);
}

}  // namespace stair
