#include "stair/cost_model.h"

namespace stair {

std::size_t upstairs_mult_xors(const StairConfig& cfg) {
  const std::size_t row_dir = (cfg.n - cfg.m) * (cfg.m * cfg.r + cfg.s());
  const std::size_t col_dir = cfg.r * ((cfg.n - cfg.m) * cfg.e_max());
  return row_dir + col_dir;
}

std::size_t downstairs_mult_xors(const StairConfig& cfg) {
  const std::size_t row_dir = (cfg.n - cfg.m) * ((cfg.m + cfg.m_prime()) * cfg.r);
  const std::size_t col_dir = cfg.r * cfg.s();
  return row_dir + col_dir;
}

std::size_t standard_mult_xors(const StairCode& code) {
  const Matrix& coeff = code.coefficients();
  std::size_t nonzero = 0;
  for (std::size_t p = 0; p < coeff.rows(); ++p)
    for (std::size_t k = 0; k < coeff.cols(); ++k)
      if (coeff.at(p, k) != 0) ++nonzero;
  return nonzero;
}

EncodingCosts analyze_costs(const StairCode& code) {
  EncodingCosts costs;
  costs.standard = standard_mult_xors(code);
  costs.upstairs = upstairs_mult_xors(code.config());
  costs.downstairs = downstairs_mult_xors(code.config());
  if (costs.standard <= costs.upstairs && costs.standard <= costs.downstairs)
    costs.best = EncodingMethod::kStandard;
  else
    costs.best = costs.upstairs <= costs.downstairs ? EncodingMethod::kUpstairs
                                                    : EncodingMethod::kDownstairs;
  return costs;
}

}  // namespace stair
