// STAIR decoding tests (§4): exhaustive recovery over every within-coverage
// failure pattern (arbitrary sector positions, not just the paper's WLOG
// bottom-of-chunk stair) for a family of small configs, rejection of
// beyond-coverage patterns, the practical row-local fast path, and fuzzed
// random patterns on larger configs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <vector>

#include "stair/stair_code.h"
#include "util/rng.h"

namespace stair {
namespace {

struct DecCase {
  StairConfig cfg;
  GlobalParityMode mode = GlobalParityMode::kInside;

  std::string name() const {
    std::string s = "n" + std::to_string(cfg.n) + "r" + std::to_string(cfg.r) + "m" +
                    std::to_string(cfg.m) + "e";
    for (std::size_t v : cfg.e) s += std::to_string(v) + "_";
    s += mode == GlobalParityMode::kInside ? "in" : "out";
    return s;
  }
};

class Fixture {
 public:
  Fixture(const StairConfig& cfg, GlobalParityMode mode, std::size_t symbol = 8)
      : code_(cfg, mode), stripe_(code_, symbol), symbol_(symbol) {
    std::vector<std::uint8_t> data(stripe_.data_size());
    Rng rng(1234);
    rng.fill(data);
    stripe_.set_data(data);
    code_.encode(stripe_.view());
    golden_ = snapshot();
  }

  const StairCode& code() const { return code_; }

  std::vector<std::uint8_t> snapshot() const {
    std::vector<std::uint8_t> out;
    for (const auto& r : stripe_.view().stored) out.insert(out.end(), r.begin(), r.end());
    return out;
  }

  // Corrupts `mask`, decodes, and returns true iff decode succeeded and every
  // byte matches the golden stripe.
  bool corrupt_and_recover(const std::vector<bool>& mask) {
    restore();
    Rng garbage(777);
    for (std::size_t idx = 0; idx < mask.size(); ++idx)
      if (mask[idx]) garbage.fill(stripe_.view().stored[idx]);
    if (!code_.decode(stripe_.view(), mask, &ws_)) {
      restore();
      return false;
    }
    const bool ok = snapshot() == golden_;
    restore();
    return ok;
  }

  void restore() {
    std::size_t off = 0;
    for (const auto& r : stripe_.view().stored) {
      std::memcpy(r.data(), golden_.data() + off, r.size());
      off += r.size();
    }
  }

 private:
  StairCode code_;
  StripeBuffer stripe_;
  std::size_t symbol_;
  std::vector<std::uint8_t> golden_;
  Workspace ws_;
};

// Enumerates all subsets of size k from [0, n); calls fn(subset).
void for_each_subset(std::size_t n, std::size_t k,
                     const std::function<void(const std::vector<std::size_t>&)>& fn) {
  std::vector<std::size_t> subset(k);
  std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t depth,
                                                          std::size_t start) {
    if (depth == k) {
      fn(subset);
      return;
    }
    for (std::size_t v = start; v < n; ++v) {
      subset[depth] = v;
      rec(depth + 1, v + 1);
    }
  };
  rec(0, 0);
}

class StairDecodingTest : public ::testing::TestWithParam<DecCase> {};

TEST_P(StairDecodingTest, ExhaustiveWorstCasePatternsRecover) {
  const StairConfig& cfg = GetParam().cfg;
  Fixture fx(cfg, GetParam().mode);
  const std::size_t n = cfg.n, r = cfg.r, m = cfg.m, mp = cfg.m_prime();

  std::size_t tested = 0;
  // Choose the m fully failed chunks, then distinct chunks for each coverage
  // slot, then arbitrary sector positions within each.
  for_each_subset(n, m, [&](const std::vector<std::size_t>& dead) {
    std::vector<bool> is_dead(n, false);
    for (std::size_t d : dead) is_dead[d] = true;
    std::vector<std::size_t> alive;
    for (std::size_t j = 0; j < n; ++j)
      if (!is_dead[j]) alive.push_back(j);

    // Assign coverage slots to distinct surviving chunks (combinations; the
    // sorted-count fit makes permutations of equal counts redundant).
    for_each_subset(alive.size(), mp, [&](const std::vector<std::size_t>& slot_pick) {
      // Sector positions: cycle through a few deterministic placements per
      // chunk instead of the full C(r, e_l) product, including top, bottom,
      // and a scattered pick — positions must not matter.
      for (int variant = 0; variant < 3; ++variant) {
        std::vector<bool> mask(n * r, false);
        for (std::size_t d : dead)
          for (std::size_t i = 0; i < r; ++i) mask[i * n + d] = true;
        for (std::size_t l = 0; l < mp; ++l) {
          const std::size_t chunk = alive[slot_pick[l]];
          const std::size_t count = cfg.e[l];
          for (std::size_t q = 0; q < count; ++q) {
            std::size_t row;
            if (variant == 0) row = r - 1 - q;                    // bottom (paper WLOG)
            else if (variant == 1) row = q;                        // top
            else row = (q * 2 + l + chunk) % r;                    // scattered
            while (mask[row * n + chunk]) row = (row + 1) % r;     // ensure distinct
            mask[row * n + chunk] = true;
          }
        }
        ASSERT_TRUE(fx.code().is_recoverable(mask)) << "pattern should be in coverage";
        ASSERT_TRUE(fx.corrupt_and_recover(mask));
        ++tested;
      }
    });
  });
  EXPECT_GT(tested, 0u);
}

TEST_P(StairDecodingTest, RandomSubCoveragePatternsRecover) {
  const StairConfig& cfg = GetParam().cfg;
  Fixture fx(cfg, GetParam().mode);
  Rng rng(555);
  const std::size_t n = cfg.n, r = cfg.r;

  for (int trial = 0; trial < 60; ++trial) {
    // Draw a random pattern, then keep it only if within coverage.
    std::vector<bool> mask(n * r, false);
    const std::size_t losses = rng.next_below(cfg.s() + cfg.m * r + 1);
    for (std::size_t q = 0; q < losses; ++q) mask[rng.next_below(n * r)] = true;
    if (!fx.code().is_recoverable(mask)) continue;
    ASSERT_TRUE(fx.corrupt_and_recover(mask));
  }
}

TEST_P(StairDecodingTest, BeyondCoveragePatternsAreRejected) {
  const StairConfig& cfg = GetParam().cfg;
  Fixture fx(cfg, GetParam().mode);
  const std::size_t n = cfg.n, r = cfg.r, m = cfg.m, mp = cfg.m_prime();

  // m + m' + 1 chunks each losing e_max sectors in the same rows: every such
  // row has m + m' + 1 > m losses, and m' + 1 chunks exceed the vector.
  if (m + mp + 1 <= n && cfg.e_max() >= 1) {
    std::vector<bool> mask(n * r, false);
    for (std::size_t j = 0; j <= m + mp; ++j)
      for (std::size_t q = 0; q < cfg.e_max(); ++q) mask[(r - 1 - q) * n + j] = true;
    EXPECT_FALSE(fx.code().is_recoverable(mask));
    EXPECT_FALSE(fx.code().build_decode_schedule(mask).has_value());
    EXPECT_FALSE(fx.corrupt_and_recover(mask));
  }

  // One chunk losing e_max + 1 sectors beside m dead chunks and the rest of
  // the stair fully loaded: the overloaded chunk cannot fit any slot.
  if (cfg.e_max() < r) {
    std::vector<bool> mask(n * r, false);
    for (std::size_t d = 0; d < m; ++d)
      for (std::size_t i = 0; i < r; ++i) mask[i * n + d] = true;
    for (std::size_t l = 0; l < mp; ++l) {
      const std::size_t chunk = m + l;
      const std::size_t count = cfg.e[l] + (l == mp - 1 ? 1 : 0);
      for (std::size_t q = 0; q < count && q < r; ++q) mask[(r - 1 - q) * n + chunk] = true;
    }
    // Rows at the bottom now have m + m' losses; with the extra sector the
    // sorted counts cannot fit e.
    if (mp + 1 <= r) {  // ensure the overload actually added a sector
      EXPECT_FALSE(fx.code().is_recoverable(mask));
    }
  }
}

TEST_P(StairDecodingTest, DeviceOnlyFailuresUseRowLocalRepair) {
  const StairConfig& cfg = GetParam().cfg;
  if (cfg.m == 0) GTEST_SKIP() << "no device tolerance configured";
  Fixture fx(cfg, GetParam().mode);
  const std::size_t n = cfg.n, r = cfg.r;

  std::vector<bool> mask(n * r, false);
  for (std::size_t d = 0; d < cfg.m; ++d)
    for (std::size_t i = 0; i < r; ++i) mask[i * n + d] = true;

  auto schedule = fx.code().build_decode_schedule(mask);
  ASSERT_TRUE(schedule.has_value());
  // §4.3: device-only failures decode like Reed-Solomon — every op is a
  // row-level Crow op of n - m inputs, and there are exactly m*r of them.
  EXPECT_EQ(schedule->ops().size(), cfg.m * r);
  for (const auto& op : schedule->ops())
    EXPECT_EQ(op.terms.size(), n - cfg.m);
  EXPECT_TRUE(fx.corrupt_and_recover(mask));
}

TEST_P(StairDecodingTest, EmptyMaskYieldsEmptySchedule) {
  const StairConfig& cfg = GetParam().cfg;
  Fixture fx(cfg, GetParam().mode);
  const std::vector<bool> mask(cfg.n * cfg.r, false);
  auto schedule = fx.code().build_decode_schedule(mask);
  ASSERT_TRUE(schedule.has_value());
  EXPECT_TRUE(schedule->empty());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StairDecodingTest,
    ::testing::Values(
        DecCase{{.n = 8, .r = 4, .m = 2, .e = {1, 1, 2}}, GlobalParityMode::kInside},
        DecCase{{.n = 8, .r = 4, .m = 2, .e = {1, 1, 2}}, GlobalParityMode::kOutside},
        DecCase{{.n = 6, .r = 4, .m = 1, .e = {1, 2}}, GlobalParityMode::kInside},
        DecCase{{.n = 6, .r = 4, .m = 1, .e = {1, 2}}, GlobalParityMode::kOutside},
        DecCase{{.n = 6, .r = 3, .m = 2, .e = {3}}, GlobalParityMode::kInside},
        DecCase{{.n = 5, .r = 4, .m = 0, .e = {1, 1}}, GlobalParityMode::kInside},
        DecCase{{.n = 6, .r = 4, .m = 2, .e = {1, 1, 1, 1}}, GlobalParityMode::kInside},
        DecCase{{.n = 7, .r = 5, .m = 2, .e = {2, 3}}, GlobalParityMode::kInside}),
    [](const auto& info) { return info.param.name(); });

TEST(StairDecodingFuzz, LargerConfigRandomPatterns) {
  const StairConfig cfg{.n = 16, .r = 16, .m = 2, .e = {1, 2, 4}};
  Fixture fx(cfg, GlobalParityMode::kInside, 16);
  Rng rng(31337);
  std::size_t recovered = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<bool> mask(cfg.n * cfg.r, false);
    // Compose a pattern from whole chunks, bursts, and scattered sectors.
    const std::size_t dead = rng.next_below(cfg.m + 1);
    for (std::size_t d = 0; d < dead; ++d) {
      const std::size_t j = rng.next_below(cfg.n);
      for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + j] = true;
    }
    for (int burst = 0; burst < 3; ++burst) {
      const std::size_t j = rng.next_below(cfg.n);
      const std::size_t start = rng.next_below(cfg.r);
      const std::size_t len = 1 + rng.next_below(4);
      for (std::size_t i = start; i < std::min(cfg.r, start + len); ++i)
        mask[i * cfg.n + j] = true;
    }
    const bool feasible = fx.code().is_recoverable(mask);
    const bool ok = fx.corrupt_and_recover(mask);
    ASSERT_EQ(ok, feasible);
    recovered += ok;
  }
  EXPECT_GT(recovered, 0u);
}

TEST(StairDecodingFuzz, MaskSizeValidated) {
  const StairCode code({.n = 8, .r = 4, .m = 2, .e = {1, 2}});
  EXPECT_THROW(code.is_recoverable(std::vector<bool>(7)), std::invalid_argument);
}

}  // namespace
}  // namespace stair
