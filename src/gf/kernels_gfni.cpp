// GFNI backend: compiled with -mavx2 -mgfni (see CMakeLists.txt). The
// byte-linear widths (w = 4/8) become single GF2P8AFFINEQB instructions per
// 32 bytes, and the altmap wide widths run the composed-affine grid: a
// (w/8 x w/8) set of affine matrices (one per source-byte/product-byte
// pair) applied to the planar block planes and XORed — 4 affines per 64 B
// at w = 16, 16 per 128 B at w = 32. Standard-layout w = 16 keeps the AVX2
// shuffle kernel and standard w = 32 the wide-table loop. Only dispatched
// to after a runtime CPUID check.
#include "gf/kernels_impl.h"

#if !defined(__GFNI__) || !defined(__AVX2__)
#error "kernels_gfni.cpp must be compiled with GFNI and AVX2 enabled (-mgfni -mavx2)"
#endif

namespace stair::gf::detail {

KernelFns gfni_kernel_fns() { return impl_kernel_fns(); }

}  // namespace stair::gf::detail
