// raid_array_sim: a storage array living through correlated sector-failure
// weather (the workload the paper's introduction motivates).
//
//   $ ./raid_array_sim [rounds=20] [seed=7]
//
// Simulates an 8-device array of STAIR(n=8, r=16, m=2, e=(1,2)) stripes with
// real bytes: every round injects bursty latent sector errors per the
// Schroeder et al. model, occasionally kills a device, scrubs/repairs, and
// verifies data byte-for-byte. Alongside, it runs the same weather over the
// pattern-level coverage of Reed-Solomon and IDR to show what each scheme
// would have survived at what redundancy cost.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "idr/idr_scheme.h"
#include "sim/array_sim.h"
#include "sim/scrubber.h"

using namespace stair;
using namespace stair::sim;

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 20;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  const StairConfig cfg{.n = 8, .r = 16, .m = 2, .e = {1, 2}};
  const StairCode code(cfg);
  const IdrConfig idr_cfg{.n = 8, .r = 16, .m = 2, .eps = 2};
  const IdrScheme idr(idr_cfg);

  std::printf("array:   16 stripes of %s, 1 KiB sectors\n", cfg.to_string().c_str());
  std::printf("weather: correlated bursts (b1=0.9, alpha=1.3), p_sec=2e-3 per round\n\n");

  DataPathArray array(code, 16, 1024, seed);
  FailureInjector weather({SectorModel::kCorrelated, 2e-3, 0.9, 1.3}, seed + 1);

  std::size_t stair_survived = 0, stair_skipped = 0;
  std::size_t rs_would_survive = 0, idr_would_survive = 0, sd_like = 0;
  for (int round = 0; round < rounds; ++round) {
    const bool device_death = weather.rng().chance(0.15);
    const std::size_t victim = weather.rng().next_below(cfg.n);

    std::size_t injected = 0;
    for (std::size_t s = 0; s < array.stripe_count(); ++s) {
      auto mask = weather.sample_stripe_mask(
          cfg.n, cfg.r, device_death ? std::vector<std::size_t>{victim}
                                     : std::vector<std::size_t>{});
      for (bool b : mask) injected += b;

      // Score the pattern against each scheme's coverage.
      std::size_t dead_chunks = 0, sector_chunks = 0, sectors = 0;
      for (std::size_t j = 0; j < cfg.n; ++j) {
        std::size_t c = 0;
        for (std::size_t i = 0; i < cfg.r; ++i) c += mask[i * cfg.n + j];
        if (c == cfg.r) ++dead_chunks;
        else if (c > 0) ++sector_chunks, sectors += c;
      }
      if (dead_chunks + sector_chunks <= cfg.m) ++rs_would_survive;  // RS(10,8)-style m=2
      if (idr.is_recoverable(mask)) ++idr_would_survive;
      if (dead_chunks <= cfg.m && sectors <= cfg.s()) ++sd_like;

      if (!code.is_recoverable(mask)) {
        // Outside coverage (e.g. a third dead device): a real deployment
        // would now pull from a replica; we skip the injection.
        ++stair_skipped;
        continue;
      }
      array.corrupt(s, mask);
    }

    const std::size_t failures = array.repair_all();
    const bool ok = failures == 0 && array.verify();
    stair_survived += ok;
    std::printf("round %2d: %s injected %4zu lost symbols -> %s\n", round,
                device_death ? "DEVICE+sectors," : "sectors,       ", injected,
                ok ? "recovered, data verified" : "DATA LOSS");
    if (!ok) return 1;
  }

  const std::size_t total = static_cast<std::size_t>(rounds) * array.stripe_count();
  std::printf("\nsummary over %zu stripe-rounds:\n", total);
  std::printf("  codec session: %llu jobs, %zu workspaces, plan cache %zu/%zu hit\n",
              static_cast<unsigned long long>(array.codec().jobs_completed()),
              array.codec().workspaces_created(),
              array.codec().plan_cache().hits(),
              array.codec().plan_cache().hits() + array.codec().plan_cache().misses());
  std::printf("  STAIR e=(1,2)   : survived all injected rounds (%zu outside coverage skipped)\n",
              stair_skipped);
  std::printf("  RS m=2 (same parity chunks) would survive %zu/%zu patterns\n",
              rs_would_survive, total);
  std::printf("  SD-like s=3 coverage would survive       %zu/%zu patterns\n", sd_like, total);
  std::printf("  IDR eps=2 (24 extra sectors vs STAIR's 3) survives %zu/%zu patterns\n",
              idr_would_survive, total);
  std::printf("\nscrubbing note: weekly scrubs at this latent rate give p_sec=%.2e\n",
              scrubbed_p_sec(2e-3 / (7 * 24), 7 * 24));
  return 0;
}
