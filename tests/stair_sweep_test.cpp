// Randomized configuration sweep: a wide net over the (n, r, m, e, w, mode,
// MDS-kind) space asserting the core invariants on every sampled code —
// encoding-method equivalence, Eq. 5/6 cost exactness, systematic data
// preservation, and recovery of randomly drawn within-coverage patterns.
// This is the property-test safety net behind the targeted suites.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gf/kernel.h"
#include "gf/region.h"
#include "stair/autotune.h"
#include "stair/codec.h"
#include "stair/cost_model.h"
#include "stair/stair_code.h"
#include "util/rng.h"

namespace stair {
namespace {

struct SweepCase {
  std::uint64_t seed;
  std::string name() const { return "seed" + std::to_string(seed); }
};

StairConfig random_config(Rng& rng) {
  for (;;) {
    StairConfig cfg;
    cfg.n = 4 + rng.next_below(12);          // 4..15
    cfg.r = 2 + rng.next_below(9);           // 2..10
    cfg.m = rng.next_below(std::min<std::size_t>(cfg.n - 1, 3) + 1);  // 0..3
    const std::size_t max_mp = std::min<std::size_t>(cfg.n - cfg.m, 4);
    const std::size_t mp = 1 + rng.next_below(max_mp);
    cfg.e.clear();
    for (std::size_t l = 0; l < mp; ++l) cfg.e.push_back(1 + rng.next_below(cfg.r));
    std::sort(cfg.e.begin(), cfg.e.end());
    cfg.w = rng.chance(0.15) ? 16 : 8;
    if (cfg.minimum_w() > cfg.w) cfg.w = cfg.minimum_w();
    try {
      cfg.validate();
      return cfg;
    } catch (...) {
      continue;  // redraw (e.g. coverage ate all the data)
    }
  }
}

class StairSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(StairSweepTest, CoreInvariantsHoldOnRandomConfigs) {
  Rng rng(GetParam().seed);
  for (int round = 0; round < 6; ++round) {
    const StairConfig cfg = random_config(rng);
    const GlobalParityMode mode =
        rng.chance(0.5) ? GlobalParityMode::kInside : GlobalParityMode::kOutside;
    const auto kind = rng.chance(0.25) ? SystematicMdsCode::Kind::kVandermonde
                                       : SystematicMdsCode::Kind::kCauchy;
    SCOPED_TRACE(cfg.to_string() +
                 (mode == GlobalParityMode::kInside ? " inside" : " outside"));
    const StairCode code(cfg, mode, kind);

    // Invariant 1: Eq. 5/6 equal the actual schedule sizes.
    ASSERT_EQ(code.mult_xor_count(EncodingMethod::kUpstairs), upstairs_mult_xors(cfg));
    ASSERT_EQ(code.mult_xor_count(EncodingMethod::kDownstairs), downstairs_mult_xors(cfg));

    // Invariant 2: the three methods produce identical stripes and encoding
    // preserves the data region. Each method is run twice — through the
    // compiled replay (encode()) and the uncompiled reference replay
    // (execute(Schedule)) — which must produce byte-identical stripes.
    const std::size_t symbol = 8;
    StripeBuffer stripe(code, symbol);
    std::vector<std::uint8_t> data(stripe.data_size());
    rng.fill(data);
    stripe.set_data(data);

    auto stripe_bytes = [&] {
      std::vector<std::uint8_t> bytes;
      for (const auto& region : stripe.view().stored)
        bytes.insert(bytes.end(), region.begin(), region.end());
      for (const auto& region : stripe.view().outside_globals)
        bytes.insert(bytes.end(), region.begin(), region.end());
      return bytes;
    };

    std::vector<std::uint8_t> reference;
    for (EncodingMethod method : {EncodingMethod::kUpstairs, EncodingMethod::kDownstairs,
                                  EncodingMethod::kStandard}) {
      code.encode(stripe.view(), method);
      std::vector<std::uint8_t> bytes = stripe_bytes();
      code.execute(code.encoding_schedule(method), stripe.view());
      ASSERT_EQ(stripe_bytes(), bytes) << "compiled replay diverged from reference";
      if (reference.empty())
        reference = std::move(bytes);
      else
        ASSERT_EQ(bytes, reference);
    }
    std::vector<std::uint8_t> out(stripe.data_size());
    stripe.get_data(out);
    ASSERT_EQ(out, data);

    // Invariant 3: a random within-coverage pattern decodes byte-exactly.
    std::vector<bool> mask(cfg.n * cfg.r, false);
    std::vector<std::size_t> chunks(cfg.n);
    for (std::size_t j = 0; j < cfg.n; ++j) chunks[j] = j;
    for (std::size_t j = cfg.n - 1; j > 0; --j)
      std::swap(chunks[j], chunks[rng.next_below(j + 1)]);
    std::size_t next = 0;
    const std::size_t dead = rng.next_below(cfg.m + 1);
    for (std::size_t d = 0; d < dead; ++d) {
      const std::size_t j = chunks[next++];
      for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + j] = true;
    }
    const std::size_t hit = rng.next_below(cfg.m_prime() + 1);
    for (std::size_t l = 0; l < hit; ++l) {
      const std::size_t j = chunks[next++];
      const std::size_t budget = cfg.e[cfg.m_prime() - 1 - l];  // descending slots
      const std::size_t losses = 1 + rng.next_below(budget);
      for (std::size_t q = 0; q < losses; ++q)
        mask[rng.next_below(cfg.r) * cfg.n + j] = true;  // dups fine
    }
    ASSERT_TRUE(code.is_recoverable(mask));
    Rng garbage(GetParam().seed * 7 + round);
    for (std::size_t idx = 0; idx < mask.size(); ++idx)
      if (mask[idx]) garbage.fill(stripe.view().stored[idx]);
    ASSERT_TRUE(code.decode(stripe.view(), mask));
    stripe.get_data(out);
    ASSERT_EQ(out, data);
  }
}

// Acceptance sweep for the region-layout refactor and the autotuner: the
// full encode + decode cycle must be byte-identical whichever layout the
// compiled replay uses internally (standard vs altmap) on every compiled
// backend, for every word size — including symbol sizes with partial
// trailing altmap blocks — and whether the measured autotuner is on or off
// (its decisions are performance-only). The scalar-backend standard-layout
// run is the reference; every other (backend, layout, autotune) pair must
// reproduce its stripes exactly, decode must restore them from a
// within-coverage erasure, and a Codec-session pass with the tuner choosing
// the layout itself must land on the same bytes.
TEST_P(StairSweepTest, LayoutAndBackendEquivalence) {
  // Restores auto-dispatch even when an ASSERT unwinds mid-sweep.
  struct DispatchGuard {
    ~DispatchGuard() {
      gf::reset_layout();
      gf::reset_backend();
      Autotune::instance().reset_for_testing();
    }
  } dispatch_guard;
  Rng rng(GetParam().seed * 131 + 7);

  // Injected measured profile (numbers are made up — only decisions change,
  // never bytes): altmap 4x standard at w>=16 with cheap conversion, so the
  // tuner actually picks altmap for multi-op regions instead of silently
  // deferring to the heuristics.
  TuneProfile tuned;
  tuned.measured = true;
  tuned.fingerprint = "sweep-fake";
  tuned.dispatch_overhead_ns = 100.0;
  for (gf::Backend b : {gf::Backend::kScalar, gf::Backend::kSsse3, gf::Backend::kAvx2,
                        gf::Backend::kGfni, gf::Backend::kAvx512}) {
    const int bk = static_cast<int>(b);
    tuned.cells.push_back({bk, static_cast<int>(gf::RegionLayout::kStandard), 8, 65536, 3000.0});
    for (int w : {16, 32}) {
      tuned.cells.push_back({bk, static_cast<int>(gf::RegionLayout::kStandard), w, 65536, 1000.0});
      tuned.cells.push_back({bk, static_cast<int>(gf::RegionLayout::kAltmap), w, 65536, 4000.0});
      tuned.convert_cells.push_back(
          {bk, static_cast<int>(gf::RegionLayout::kAltmap), w, 65536, 2000.0});
    }
  }

  for (int w : {8, 16, 32}) {
    StairConfig cfg{.n = 6, .r = 4, .m = 1, .e = {1, 2}, .w = w};
    if (cfg.minimum_w() > w) continue;
    const StairCode code(cfg);
    // 72 = one full 64-byte altmap block + a standard-layout tail;
    // 192 = exact blocks. Both multiples of w/8 for every width here.
    for (std::size_t symbol : {std::size_t{72}, std::size_t{192}}) {
      SCOPED_TRACE(cfg.to_string() + " symbol=" + std::to_string(symbol));
      StripeBuffer stripe(code, symbol);
      std::vector<std::uint8_t> data(stripe.data_size());
      rng.fill(data);

      // A fixed within-coverage erasure: one whole chunk + a sector hit.
      std::vector<bool> mask(cfg.n * cfg.r, false);
      for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + 2] = true;
      mask[1 * cfg.n + 4] = true;
      ASSERT_TRUE(code.is_recoverable(mask));

      auto stripe_bytes = [&] {
        std::vector<std::uint8_t> bytes;
        for (const auto& region : stripe.view().stored)
          bytes.insert(bytes.end(), region.begin(), region.end());
        return bytes;
      };

      std::vector<std::uint8_t> ref_encoded;
      for (gf::Backend b : {gf::Backend::kScalar, gf::Backend::kSsse3, gf::Backend::kAvx2,
                            gf::Backend::kGfni, gf::Backend::kAvx512}) {
        if (!gf::backend_supported(b)) continue;
        ASSERT_TRUE(gf::force_backend(b));
        for (bool autotune : {false, true}) {
          auto& tuner = Autotune::instance();
          tuner.set_enabled_for_testing(autotune ? 1 : 0);
          if (autotune) tuner.set_profile_for_testing(tuned);
          for (gf::RegionLayout layout :
               {gf::RegionLayout::kStandard, gf::RegionLayout::kAltmap}) {
            SCOPED_TRACE(std::string(gf::backend_name(b)) + "/" + gf::layout_name(layout) +
                         (autotune ? "/tuned" : "/untuned"));
            gf::force_layout(layout);

            stripe.set_data(data);
            code.encode(stripe.view());
            const std::vector<std::uint8_t> encoded = stripe_bytes();
            if (ref_encoded.empty())
              ref_encoded = encoded;
            else
              ASSERT_EQ(encoded, ref_encoded) << "encode diverged";

            Rng garbage(GetParam().seed + w + symbol);
            for (std::size_t idx = 0; idx < mask.size(); ++idx)
              if (mask[idx]) garbage.fill(stripe.view().stored[idx]);
            ASSERT_TRUE(code.decode(stripe.view(), mask));
            ASSERT_EQ(stripe_bytes(), ref_encoded) << "decode diverged";
          }

          // Codec-session pass with no forced layout: the tuner (or, when
          // off, the fixed heuristics) picks the layout and slicing on its
          // own — bytes must still match the scalar reference exactly.
          gf::reset_layout();
          SCOPED_TRACE(std::string(gf::backend_name(b)) +
                       (autotune ? "/codec-tuned" : "/codec-untuned"));
          Codec codec(code);
          stripe.set_data(data);
          auto eh = codec.submit_encode(stripe.view());
          eh.wait();
          ASSERT_EQ(stripe_bytes(), ref_encoded) << "codec encode diverged";

          Rng garbage(GetParam().seed + w + symbol);
          for (std::size_t idx = 0; idx < mask.size(); ++idx)
            if (mask[idx]) garbage.fill(stripe.view().stored[idx]);
          auto dh = codec.submit_decode(stripe.view(), mask);
          ASSERT_TRUE(dh.ok());
          ASSERT_EQ(stripe_bytes(), ref_encoded) << "codec decode diverged";
        }
      }
    }
  }
}

std::vector<SweepCase> sweep_seeds() {
  std::vector<SweepCase> cases;
  for (std::uint64_t s = 1; s <= 24; ++s) cases.push_back({s});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, StairSweepTest, ::testing::ValuesIn(sweep_seeds()),
                         [](const auto& info) { return info.param.name(); });

}  // namespace
}  // namespace stair
