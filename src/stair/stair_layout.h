// Canonical-stripe symbol addressing (paper §4.1, Figure 3).
//
// Every symbol a STAIR code ever touches lives on one grid: the canonical
// stripe of (r + e_max) rows by (n + m') columns.
//
//   rows 0..r-1, cols 0..n-1        stored stripe (data + row parity chunks)
//   rows 0..r-1, cols n..n+m'-1     intermediate parity symbols p'_{i,l}
//   rows r..r+e_max-1, cols 0..n-1  virtual parity symbols d*_{h,j} / p*_{h,k}
//   rows r.., cols n+l              outside global g_{h,l} if h < e_l, else dummy
//
// With inside global parities (§5), slot l's e_l global symbols additionally
// occupy the bottom of data column n - m - m' + l, and the outside globals are
// fixed at zero.
//
// Symbol ids are row-major over this grid; the layout answers every "what is
// at (row, col)" question so encoder/decoder builders stay readable.
#pragma once

#include <cstdint>
#include <vector>

#include "stair/stair_config.h"

namespace stair {

/// Where the s global parity symbols live (§3 vs §5).
enum class GlobalParityMode {
  kInside,   ///< at the bottom of the m' rightmost data chunks (§5, default)
  kOutside,  ///< in s externally stored symbols, always available (§3-§4)
};

/// Immutable geometry of one STAIR code's canonical stripe.
class StairLayout {
 public:
  StairLayout(const StairConfig& cfg, GlobalParityMode mode);

  const StairConfig& config() const { return cfg_; }
  GlobalParityMode mode() const { return mode_; }

  std::size_t canonical_rows() const { return cfg_.r + cfg_.e_max(); }
  std::size_t canonical_cols() const { return cfg_.n + cfg_.m_prime(); }
  std::size_t total_symbols() const { return canonical_rows() * canonical_cols(); }

  /// Row-major symbol id on the canonical grid.
  std::uint32_t id(std::size_t row, std::size_t col) const {
    return static_cast<std::uint32_t>(row * canonical_cols() + col);
  }
  std::size_t row_of(std::uint32_t id) const { return id / canonical_cols(); }
  std::size_t col_of(std::uint32_t id) const { return id % canonical_cols(); }

  // --- region predicates -------------------------------------------------

  /// Stored in the stripe proper (rows < r, cols < n).
  bool is_stored(std::size_t row, std::size_t col) const {
    return row < cfg_.r && col < cfg_.n;
  }
  /// Row parity chunk position (stored, cols n-m..n-1).
  bool is_row_parity(std::size_t row, std::size_t col) const {
    return is_stored(row, col) && col >= cfg_.n - cfg_.m;
  }
  /// Intermediate parity symbol p'_{row, col-n}.
  bool is_intermediate(std::size_t row, std::size_t col) const {
    return row < cfg_.r && col >= cfg_.n;
  }
  /// Augmented-row virtual parity symbol over a stored chunk.
  bool is_virtual(std::size_t row, std::size_t col) const {
    return row >= cfg_.r && col < cfg_.n;
  }
  /// Real outside global parity symbol g_{row-r, col-n} (h < e_l).
  bool is_outside_global(std::size_t row, std::size_t col) const {
    return row >= cfg_.r && col >= cfg_.n && row - cfg_.r < cfg_.e[col - cfg_.n];
  }
  /// Dummy augmented position that is never generated (Eq. 2's "*").
  bool is_dummy(std::size_t row, std::size_t col) const {
    return row >= cfg_.r && col >= cfg_.n && row - cfg_.r >= cfg_.e[col - cfg_.n];
  }

  // --- inside-global geometry ---------------------------------------------

  /// Data column carrying coverage slot l's inside globals: n - m - m' + l.
  std::size_t global_column(std::size_t l) const {
    return cfg_.n - cfg_.m - cfg_.m_prime() + l;
  }
  /// Inverse of global_column; m' if col carries no globals.
  std::size_t slot_of_column(std::size_t col) const;

  /// True iff (row, col) stores an inside global parity symbol. Always false
  /// in outside mode.
  bool is_inside_global(std::size_t row, std::size_t col) const;

  /// True iff (row, col) is a stored *data* symbol (stored, not row parity,
  /// not an inside global).
  bool is_data(std::size_t row, std::size_t col) const;

  // --- enumeration ----------------------------------------------------------

  /// Stored data positions in row-major order; index into this vector defines
  /// the data-symbol numbering used by StripeBuffer::set_data and the
  /// coefficient analyses.
  const std::vector<std::uint32_t>& data_ids() const { return data_ids_; }

  /// Stored parity ids: all row parities, then (inside mode) the s inside
  /// globals or (outside mode) the s outside globals, in (l, h) order.
  const std::vector<std::uint32_t>& parity_ids() const { return parity_ids_; }

  /// Outside-global ids in (l ascending, h ascending) order (size s); these
  /// are real symbols in outside mode and constant zeros in inside mode.
  const std::vector<std::uint32_t>& outside_global_ids() const {
    return outside_global_ids_;
  }

  /// Stored-symbol index (row * n + col) for masks over the stored stripe.
  std::size_t stored_index(std::size_t row, std::size_t col) const {
    return row * cfg_.n + col;
  }
  std::size_t stored_count() const { return cfg_.r * cfg_.n; }

 private:
  StairConfig cfg_;
  GlobalParityMode mode_;
  std::vector<std::uint32_t> data_ids_;
  std::vector<std::uint32_t> parity_ids_;
  std::vector<std::uint32_t> outside_global_ids_;
};

}  // namespace stair
