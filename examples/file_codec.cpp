// file_codec: STAIR-protect a real file across per-device chunk files.
//
//   $ ./file_codec encode <input> <dir> [n=8] [r=16] [m=2] [e=1,2]
//   $ ./file_codec damage <dir> <device> [device...]
//   $ ./file_codec decode <dir> <output>
//   $ ./file_codec            # self-demo: encode -> damage -> decode -> verify
//
// encode splits the input into stripes, encodes each, and writes one
// dev_NN.bin per device plus a manifest. damage deletes device files (a
// device failure). decode reconstructs the original file from whatever
// devices survive, as long as the losses are within the code's coverage.
//
// Both encode and decode run through a Codec session with a ring of stripes
// in flight: stripe K's region work overlaps stripe K-1's file IO and the
// pool stays saturated across stripes (decode additionally shares one
// compiled plan for the whole file — every stripe has the same failure
// pattern). Results are byte-identical to the serial per-stripe calls.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "stair/codec.h"
#include "stair/stair_code.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fs = std::filesystem;
using namespace stair;

namespace {

constexpr std::size_t kSymbolBytes = 4096;

/// Ring of stripes in flight through a Codec session, shared by the encode
/// and decode pipelines: begin(s) hands back stripe s's slot after draining
/// the submission that previously occupied it (slots recur in stripe order,
/// so per-device file IO stays ordered), and drain_all finishes the tail.
/// `drain` consumes one completed slot (wait + IO).
class StripeRing {
 public:
  struct Slot {
    std::optional<StripeBuffer> buf;
    Codec::Handle handle;
  };

  explicit StripeRing(std::function<void(Slot&)> drain)
      : slots_(std::min<std::size_t>(4, ThreadPool::default_pool().concurrency())),
        drain_(std::move(drain)) {}

  Slot& begin(std::size_t stripe, const StairCode& code, std::size_t symbol_bytes) {
    Slot& slot = slots_[stripe % slots_.size()];
    finish(slot);
    if (!slot.buf) slot.buf.emplace(code, symbol_bytes);
    return slot;
  }

  void drain_all(std::size_t next_stripe) {
    for (std::size_t d = 0; d < slots_.size(); ++d)
      finish(slots_[(next_stripe + d) % slots_.size()]);
  }

 private:
  void finish(Slot& slot) {
    if (!slot.handle.valid()) return;
    drain_(slot);
    slot.handle = Codec::Handle();
  }

  std::vector<Slot> slots_;
  std::function<void(Slot&)> drain_;
};

std::uint64_t fnv64(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<std::size_t> parse_e(const std::string& s) {
  std::vector<std::size_t> e;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    e.push_back(std::strtoull(s.substr(pos, next - pos).c_str(), nullptr, 10));
    pos = next + 1;
  }
  return e;
}

std::string device_file(const fs::path& dir, std::size_t j) {
  char name[32];
  std::snprintf(name, sizeof name, "dev_%02zu.bin", j);
  return (dir / name).string();
}

struct Manifest {
  StairConfig cfg;
  std::size_t file_size = 0;
  std::size_t stripes = 0;
  std::uint64_t checksum = 0;
};

void write_manifest(const fs::path& dir, const Manifest& m) {
  std::ofstream out(dir / "manifest.txt");
  out << "n " << m.cfg.n << "\nr " << m.cfg.r << "\nm " << m.cfg.m << "\ne ";
  for (std::size_t i = 0; i < m.cfg.e.size(); ++i) out << (i ? "," : "") << m.cfg.e[i];
  out << "\nw " << m.cfg.w << "\nsymbol " << kSymbolBytes << "\nfile_size " << m.file_size
      << "\nstripes " << m.stripes << "\nchecksum " << m.checksum << "\n";
}

Manifest read_manifest(const fs::path& dir) {
  std::ifstream in(dir / "manifest.txt");
  if (!in) throw std::runtime_error("missing manifest.txt in " + dir.string());
  Manifest m;
  std::string key;
  while (in >> key) {
    if (key == "n") in >> m.cfg.n;
    else if (key == "r") in >> m.cfg.r;
    else if (key == "m") in >> m.cfg.m;
    else if (key == "e") {
      std::string v;
      in >> v;
      m.cfg.e = parse_e(v);
    } else if (key == "w") in >> m.cfg.w;
    else if (key == "symbol") { std::size_t ignored; in >> ignored; }
    else if (key == "file_size") in >> m.file_size;
    else if (key == "stripes") in >> m.stripes;
    else if (key == "checksum") in >> m.checksum;
  }
  return m;
}

int cmd_encode(const fs::path& input, const fs::path& dir, StairConfig cfg) {
  cfg.w = std::max(cfg.minimum_w(), 8);
  cfg.validate();
  const StairCode code(cfg);

  std::ifstream in(input, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", input.string().c_str());
    return 1;
  }
  std::vector<std::uint8_t> file((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());

  const std::size_t stripe_data = code.data_symbol_count() * kSymbolBytes;
  const std::size_t stripes = (file.size() + stripe_data - 1) / stripe_data;
  Manifest manifest{cfg, file.size(), stripes, fnv64(file)};

  fs::create_directories(dir);
  std::vector<std::ofstream> devs;
  for (std::size_t j = 0; j < cfg.n; ++j)
    devs.emplace_back(device_file(dir, j), std::ios::binary);

  // Pipeline: a ring of stripes in flight through the codec session; a
  // slot's device writes happen when its slot comes around again, so stripe
  // K's encode overlaps stripe K-1's IO and device order is preserved. The
  // ring is declared before the codec so an exception unwinding mid-file
  // destroys the codec (draining in-flight jobs) before the buffers they
  // write to.
  StripeRing ring([&](StripeRing::Slot& slot) {
    slot.handle.wait();
    for (std::size_t j = 0; j < cfg.n; ++j)
      for (std::size_t i = 0; i < cfg.r; ++i)
        devs[j].write(reinterpret_cast<const char*>(slot.buf->symbol(i, j).data()),
                      static_cast<std::streamsize>(kSymbolBytes));
  });
  Codec codec(code);

  std::vector<std::uint8_t> chunk(stripe_data);
  for (std::size_t s = 0; s < stripes; ++s) {
    StripeRing::Slot& slot = ring.begin(s, code, kSymbolBytes);
    std::fill(chunk.begin(), chunk.end(), std::uint8_t{0});
    const std::size_t offset = s * stripe_data;
    const std::size_t len = std::min(stripe_data, file.size() - offset);
    std::memcpy(chunk.data(), file.data() + offset, len);
    slot.buf->set_data(chunk);
    slot.handle = codec.submit_encode(slot.buf->view());
  }
  ring.drain_all(stripes);
  write_manifest(dir, manifest);
  std::printf("encoded %zu bytes into %zu stripes across %zu device files (%s)\n",
              file.size(), stripes, cfg.n, cfg.to_string().c_str());
  return 0;
}

int cmd_damage(const fs::path& dir, const std::vector<std::size_t>& devices) {
  for (std::size_t j : devices) {
    const std::string path = device_file(dir, j);
    if (fs::remove(path))
      std::printf("destroyed device %zu (%s)\n", j, path.c_str());
    else
      std::printf("device %zu already missing\n", j);
  }
  return 0;
}

int cmd_decode(const fs::path& dir, const fs::path& output) {
  const Manifest manifest = read_manifest(dir);
  const StairCode code(manifest.cfg);
  const StairConfig& cfg = manifest.cfg;

  // Identify surviving devices and load them.
  std::vector<bool> dead(cfg.n, false);
  std::vector<std::vector<std::uint8_t>> dev_bytes(cfg.n);
  for (std::size_t j = 0; j < cfg.n; ++j) {
    std::ifstream in(device_file(dir, j), std::ios::binary);
    if (!in) {
      dead[j] = true;
      continue;
    }
    dev_bytes[j].assign((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    const std::size_t expect = manifest.stripes * cfg.r * kSymbolBytes;
    if (dev_bytes[j].size() != expect) {
      std::printf("device %zu truncated; treating as failed\n", j);
      dead[j] = true;
    }
  }
  std::size_t dead_count = 0;
  for (bool d : dead) dead_count += d;
  std::printf("devices missing: %zu of %zu\n", dead_count, cfg.n);

  std::vector<bool> mask(cfg.n * cfg.r, false);
  for (std::size_t j = 0; j < cfg.n; ++j)
    if (dead[j])
      for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + j] = true;
  if (!code.is_recoverable(mask)) {
    std::fprintf(stderr, "losses exceed the code's coverage; cannot recover\n");
    return 1;
  }

  // Pipeline mirror of cmd_encode: every stripe of the file shares this
  // failure pattern, so the session plan cache inverts and compiles exactly
  // once and all in-flight stripes replay the same plan. Ring before codec
  // for the same unwind-ordering reason as cmd_encode (the drain lambda can
  // throw with other decodes still in flight).
  std::vector<std::uint8_t> file;
  file.reserve(manifest.file_size);
  std::vector<std::uint8_t> chunk(code.data_symbol_count() * kSymbolBytes);
  auto append_data = [&](StripeBuffer& buf) {
    buf.get_data(chunk);
    const std::size_t want = std::min(chunk.size(), manifest.file_size - file.size());
    file.insert(file.end(), chunk.begin(), chunk.begin() + want);
  };
  StripeRing ring([&](StripeRing::Slot& slot) {
    if (!slot.handle.ok()) throw std::runtime_error("decode failed mid-file");
    append_data(*slot.buf);
  });
  Codec codec(code);

  for (std::size_t s = 0; s < manifest.stripes; ++s) {
    StripeRing::Slot& slot = ring.begin(s, code, kSymbolBytes);
    for (std::size_t j = 0; j < cfg.n; ++j) {
      if (dead[j]) continue;
      for (std::size_t i = 0; i < cfg.r; ++i)
        std::memcpy(slot.buf->symbol(i, j).data(),
                    dev_bytes[j].data() + (s * cfg.r + i) * kSymbolBytes, kSymbolBytes);
    }
    if (dead_count)
      slot.handle = codec.submit_decode(slot.buf->view(), mask);
    else
      append_data(*slot.buf);
  }
  ring.drain_all(manifest.stripes);

  if (fnv64(file) != manifest.checksum) {
    std::fprintf(stderr, "checksum mismatch after recovery\n");
    return 1;
  }
  std::ofstream out(output, std::ios::binary);
  out.write(reinterpret_cast<const char*>(file.data()),
            static_cast<std::streamsize>(file.size()));
  std::printf("recovered %zu bytes to %s (checksum verified)\n", file.size(),
              output.string().c_str());
  return 0;
}

int self_demo() {
  const fs::path dir = fs::temp_directory_path() / "stair_file_codec_demo";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // A 1.5 MB random file.
  const fs::path input = dir / "original.bin";
  {
    std::vector<std::uint8_t> bytes(3 * 512 * 1024 / 2);
    Rng rng(99);
    rng.fill(bytes);
    std::ofstream out(input, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  const fs::path store = dir / "store";
  if (cmd_encode(input, store, {.n = 8, .r = 16, .m = 2, .e = {1, 2}})) return 1;
  if (cmd_damage(store, {1, 6})) return 1;
  const fs::path restored = dir / "restored.bin";
  if (cmd_decode(store, restored)) return 1;
  std::printf("self-demo passed; artifacts in %s\n", dir.string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return self_demo();
  const std::string cmd = argv[1];
  if (cmd == "encode" && argc >= 4) {
    StairConfig cfg{.n = 8, .r = 16, .m = 2, .e = {1, 2}};
    if (argc > 4) cfg.n = std::strtoull(argv[4], nullptr, 10);
    if (argc > 5) cfg.r = std::strtoull(argv[5], nullptr, 10);
    if (argc > 6) cfg.m = std::strtoull(argv[6], nullptr, 10);
    if (argc > 7) cfg.e = parse_e(argv[7]);
    return cmd_encode(argv[2], argv[3], cfg);
  }
  if (cmd == "damage" && argc >= 4) {
    std::vector<std::size_t> devices;
    for (int i = 3; i < argc; ++i) devices.push_back(std::strtoull(argv[i], nullptr, 10));
    return cmd_damage(argv[2], devices);
  }
  if (cmd == "decode" && argc >= 4) return cmd_decode(argv[2], argv[3]);
  std::fprintf(stderr,
               "usage: %s encode <input> <dir> [n r m e] | damage <dir> <dev...> |\n"
               "       %s decode <dir> <output> | %s (self-demo)\n",
               argv[0], argv[0], argv[0]);
  return 2;
}
