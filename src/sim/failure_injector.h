// Failure injection: draws device- and sector-failure patterns for stripes
// under the §7.1.2 models (independent sector failures, or correlated bursts
// with the (b1, alpha) Pareto length distribution). Used by the Monte-Carlo
// reliability simulator, the integration tests, and the examples.
#pragma once

#include <cstdint>
#include <vector>

#include "reliability/sector_models.h"
#include "util/rng.h"

namespace stair::sim {

/// Which §7.1.2 sector-failure model to draw from.
enum class SectorModel { kIndependent, kCorrelated };

/// Injection parameters; b1/alpha are used by the correlated model only.
struct InjectorParams {
  SectorModel model = SectorModel::kIndependent;
  double p_sec = 1e-6;   ///< per-sector failure probability
  double b1 = 0.98;      ///< fraction of length-1 bursts
  double alpha = 1.79;   ///< Pareto tail index for lengths >= 2
};

/// Draws erasure masks over an r x n stripe (stored index = row * n + col).
class FailureInjector {
 public:
  FailureInjector(InjectorParams params, std::uint64_t seed);

  /// Sector failures only: marks lost sectors in every chunk not listed in
  /// `failed_devices`; chunks in `failed_devices` are marked entirely lost.
  std::vector<bool> sample_stripe_mask(std::size_t n, std::size_t r,
                                       const std::vector<std::size_t>& failed_devices);

  /// Draws a burst length from the configured distribution (>= 1).
  std::size_t sample_burst_length(std::size_t r_max);

  Rng& rng() { return rng_; }

 private:
  InjectorParams params_;
  Rng rng_;
  std::vector<double> burst_cdf_;  // rebuilt when r_max changes
  std::size_t burst_cdf_rmax_ = 0;
};

}  // namespace stair::sim
