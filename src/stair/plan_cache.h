// Decode-plan cache.
//
// Building a decode schedule means matrix inversions, and compiling one
// means kernel-table resolution; replaying a compiled plan is pure region
// arithmetic. Real arrays see the same erasure pattern for every stripe of a
// failure epoch (a dead device yields one mask shape), so caching *compiled*
// plans by mask amortizes both construction steps across millions of
// stripes: a cached-mask decode performs zero inversions and zero table
// builds (tests assert this via matrix_inversion_count() /
// gf::kernel_build_count()).
//
// Concurrency: one cache is meant to be shared by every decoder thread of a
// failure epoch. Hits — the steady state — take a shared lock and update
// recency with a relaxed atomic stamp, so concurrent replays of the hot mask
// never serialize. Misses build the plan outside any lock (two racing
// threads may both build; the first insert wins and the loser's work is
// dropped), then take the exclusive lock only to insert/evict.
//
// The Codec session layer (stair/codec.h) owns one of these per session and
// resolves every submit_decode through it, so a whole stripe batch of an
// epoch shares a single inversion+compile; standalone StairCode::decode
// callers can pass their own instance for the same effect.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "stair/stair_code.h"

namespace stair {

/// LRU cache of compiled decode plans keyed by erasure mask. Thread-safe;
/// share one instance across decoder threads.
class DecodePlanCache {
 public:
  /// A cached plan. shared_ptr (not a raw pointer) so a plan stays valid for
  /// as long as any caller replays it, even after capacity evictions or
  /// concurrent inserts; nullptr means the mask is unrecoverable.
  using PlanPtr = std::shared_ptr<const CompiledSchedule>;

  /// `capacity` is the number of distinct masks kept (>= 1).
  explicit DecodePlanCache(const StairCode& code, std::size_t capacity = 64);

  /// The compiled decode plan for `erased`, built and compiled on miss;
  /// nullptr if the pattern is outside the coverage (negative results are
  /// cached too, so a hot unrecoverable mask is rejected without re-analysis).
  PlanPtr plan(const std::vector<bool>& erased);

  std::size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Distinct masks currently cached (<= capacity()).
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    Entry(PlanPtr p, std::uint64_t s) : plan(std::move(p)), stamp(s) {}
    PlanPtr plan;  // nullptr = cached negative result
    std::atomic<std::uint64_t> stamp;  // recency; updated under the shared lock
  };

  struct MaskHash {
    std::size_t operator()(const std::vector<bool>& mask) const;
  };

  const StairCode* code_;
  std::size_t capacity_;
  mutable std::shared_mutex mu_;
  // unique_ptr values keep Entry (with its atomic stamp) pinned in memory
  // across rehashes and other threads' inserts.
  std::unordered_map<std::vector<bool>, std::unique_ptr<Entry>, MaskHash> map_;
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::size_t> hits_{0}, misses_{0};
};

}  // namespace stair
