#include "gf/kernel.h"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>

#include "gf/region.h"

namespace stair::gf {

namespace {

int widx_for(int w) {
  switch (w) {
    case 4: return 0;
    case 8: return 1;
    case 16: return 2;
    case 32: return 3;
    default: assert(false && "unsupported w"); return 0;
  }
}

bool cpu_supports(Backend b) {
#if defined(__x86_64__) || defined(__i386__)
  switch (b) {
    case Backend::kScalar: return true;
    case Backend::kSsse3: return __builtin_cpu_supports("ssse3");
    case Backend::kAvx2: return __builtin_cpu_supports("avx2");
    case Backend::kGfni:
      return __builtin_cpu_supports("gfni") && __builtin_cpu_supports("avx2");
    case Backend::kAvx512:
      // BW for zmm byte shuffles/shifts, VL because the TU's 128/256-bit
      // helper code (tails, conversions) compiles to EVEX encodings. GFNI is
      // NOT required: the TU selects vpshufb kernels at runtime without it.
      return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl");
  }
  return false;
#else
  return b == Backend::kScalar;
#endif
}

// -1 = not yet detected; otherwise the int value of the active Backend.
std::atomic<int> g_backend{-1};

// -2 = not yet detected; -1 = auto (preferred_layout decides per width);
// otherwise the int value of a forced RegionLayout.
std::atomic<int> g_layout{-2};

int detect_layout_mode() {
  if (const char* env = std::getenv("STAIR_GF_LAYOUT")) {
    const std::string want(env);
    if (want == layout_name(RegionLayout::kStandard)) return 0;
    if (want == layout_name(RegionLayout::kAltmap)) return 1;
    // Unknown request: fall through to auto.
  }
  return -1;
}

Backend detect_backend() {
  if (const char* env = std::getenv("STAIR_GF_BACKEND")) {
    const std::string want(env);
    for (Backend b : {Backend::kScalar, Backend::kSsse3, Backend::kAvx2, Backend::kGfni,
                      Backend::kAvx512})
      if (want == backend_name(b) && backend_supported(b)) return b;
    // Unknown or unsupported request: fall through to auto-detection.
  }
  for (Backend b : {Backend::kAvx512, Backend::kGfni, Backend::kAvx2, Backend::kSsse3})
    if (backend_supported(b)) return b;
  return Backend::kScalar;
}

const KernelFns& fns_for(Backend b) {
  static const KernelFns scalar = detail::scalar_kernel_fns();
#ifdef STAIR_HAVE_SSSE3
  static const KernelFns ssse3 = detail::ssse3_kernel_fns();
  if (b == Backend::kSsse3) return ssse3;
#endif
#ifdef STAIR_HAVE_AVX2
  static const KernelFns avx2 = detail::avx2_kernel_fns();
  if (b == Backend::kAvx2) return avx2;
#endif
#ifdef STAIR_HAVE_GFNI
  static const KernelFns gfni = detail::gfni_kernel_fns();
  if (b == Backend::kGfni) return gfni;
#endif
#ifdef STAIR_HAVE_AVX512
  static const KernelFns avx512 = detail::avx512_kernel_fns();
  if (b == Backend::kAvx512) return avx512;
#endif
  (void)b;
  return scalar;
}

const KernelFns& active_fns() { return fns_for(active_backend()); }

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar: return "scalar";
    case Backend::kSsse3: return "ssse3";
    case Backend::kAvx2: return "avx2";
    case Backend::kGfni: return "gfni";
    case Backend::kAvx512: return "avx512";
  }
  return "?";
}

bool backend_compiled(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kSsse3:
#ifdef STAIR_HAVE_SSSE3
      return true;
#else
      return false;
#endif
    case Backend::kAvx2:
#ifdef STAIR_HAVE_AVX2
      return true;
#else
      return false;
#endif
    case Backend::kGfni:
#ifdef STAIR_HAVE_GFNI
      return true;
#else
      return false;
#endif
    case Backend::kAvx512:
#ifdef STAIR_HAVE_AVX512
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool backend_supported(Backend b) { return backend_compiled(b) && cpu_supports(b); }

Backend active_backend() {
  int b = g_backend.load(std::memory_order_relaxed);
  if (b < 0) {
    b = static_cast<int>(detect_backend());
    g_backend.store(b, std::memory_order_relaxed);
  }
  return static_cast<Backend>(b);
}

bool force_backend(Backend b) {
  if (!backend_supported(b)) return false;
  g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
  return true;
}

void reset_backend() { g_backend.store(-1, std::memory_order_relaxed); }

bool avx512_shuffle_variant_fns(KernelFns* out) {
#ifdef STAIR_HAVE_AVX512
  if (!backend_supported(Backend::kAvx512)) return false;
  *out = detail::avx512_kernel_fns_variant(/*use_gfni=*/false);
  return true;
#else
  (void)out;
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Region layouts (declared in region.h; the dispatch tables live here)
// ---------------------------------------------------------------------------

const char* layout_name(RegionLayout layout) {
  return layout == RegionLayout::kAltmap ? "altmap" : "standard";
}

RegionLayout preferred_layout(int w) {
  // The byte-linear widths have one layout; never report altmap for them so
  // callers skip pointless (no-op) conversion passes.
  if (w < 16) return RegionLayout::kStandard;
  int mode = g_layout.load(std::memory_order_relaxed);
  if (mode == -2) {
    mode = detect_layout_mode();
    g_layout.store(mode, std::memory_order_relaxed);
  }
  if (mode >= 0) return static_cast<RegionLayout>(mode);
  // Altmap only pays when the wide widths actually vectorize: every SIMD
  // backend lifts w = 16/32 via altmap; the scalar wide-table loop is layout
  // agnostic, so standard avoids the conversion passes there.
  return active_backend() == Backend::kScalar ? RegionLayout::kStandard
                                              : RegionLayout::kAltmap;
}

void force_layout(RegionLayout layout) {
  g_layout.store(static_cast<int>(layout), std::memory_order_relaxed);
}

void reset_layout() { g_layout.store(-2, std::memory_order_relaxed); }

bool layout_forced() {
  int mode = g_layout.load(std::memory_order_relaxed);
  if (mode == -2) {
    mode = detect_layout_mode();
    g_layout.store(mode, std::memory_order_relaxed);
  }
  return mode >= 0;
}

void convert_region(int w, RegionLayout from, RegionLayout to,
                    std::span<std::uint8_t> data) {
  if (from == to || w < 16 || data.empty()) return;
  const KernelFns& fns = active_fns();
  const LayoutConvertFn fn = to == RegionLayout::kAltmap ? fns.to_altmap[widx_for(w)]
                                                         : fns.from_altmap[widx_for(w)];
  fn(data.data(), data.size());
}

// ---------------------------------------------------------------------------
// CompiledKernel: split-table construction (backend-independent)
// ---------------------------------------------------------------------------

namespace {

// The GF2P8AFFINEQB matrix operand for the byte-linear map x -> product(x):
// output bit i of a byte is parity(matrix.byte[7-i] & x), so byte 7-i holds,
// at bit j, bit i of the map's image of the unit byte 1 << j.
std::uint64_t affine_matrix(const std::uint8_t (&unit_image)[8]) {
  std::uint64_t m = 0;
  for (int i = 0; i < 8; ++i) {
    std::uint8_t row = 0;
    for (int j = 0; j < 8; ++j)
      if ((unit_image[j] >> i) & 1) row |= static_cast<std::uint8_t>(1u << j);
    m |= static_cast<std::uint64_t>(row) << (8 * (7 - i));
  }
  return m;
}

// The composed-affine decomposition of the wide widths: matrices[b][c] is
// the GF(2)-linear map "source byte c -> product byte b", i.e. the image of
// x under byte_b(a * (x << 8c)). The GFNI altmap kernels XOR these per-byte
// maps over the w/8 source planes of a block (kernels_impl.h).
void build_affine_wide(const Field& f, std::uint32_t a, int bytes,
                       std::uint64_t (&matrices)[4][4]) {
  for (int c = 0; c < bytes; ++c)
    for (int b = 0; b < bytes; ++b) {
      std::uint8_t unit[8];
      for (int j = 0; j < 8; ++j)
        unit[j] = static_cast<std::uint8_t>(f.mul(a, 1u << (8 * c + j)) >> (8 * b));
      matrices[b][c] = affine_matrix(unit);
    }
}

}  // namespace

namespace {
std::atomic<std::uint64_t> g_kernel_builds{0};
}  // namespace

std::uint64_t kernel_build_count() { return g_kernel_builds.load(std::memory_order_relaxed); }

CompiledKernel::CompiledKernel(const Field& f, std::uint32_t a)
    : a_(a), w_(f.w()), widx_(widx_for(f.w())) {
  g_kernel_builds.fetch_add(1, std::memory_order_relaxed);
  std::memset(t_.nib, 0, sizeof t_.nib);
  std::memset(t_.pack4, 0, sizeof t_.pack4);
  std::memset(t_.row8, 0, sizeof t_.row8);

  switch (w_) {
    case 4: {
      for (std::uint32_t x = 0; x < 256; ++x)
        t_.pack4[x] = static_cast<std::uint8_t>(f.mul(a, x & 0xf) | (f.mul(a, x >> 4) << 4));
      for (std::uint32_t v = 0; v < 16; ++v) {
        t_.nib[0][0][v] = static_cast<std::uint8_t>(f.mul(a, v));
        t_.nib[1][0][v] = static_cast<std::uint8_t>(f.mul(a, v) << 4);
      }
      std::uint8_t unit[8];  // both packed nibbles transform independently
      for (int j = 0; j < 8; ++j) unit[j] = t_.pack4[1u << j];
      t_.affine8 = affine_matrix(unit);
      break;
    }
    case 8: {
      std::memcpy(t_.row8, f.product_row8(a), sizeof t_.row8);
      for (std::uint32_t v = 0; v < 16; ++v) {
        t_.nib[0][0][v] = static_cast<std::uint8_t>(f.mul(a, v));
        t_.nib[1][0][v] = static_cast<std::uint8_t>(f.mul(a, v << 4));
      }
      std::uint8_t unit[8];
      for (int j = 0; j < 8; ++j) unit[j] = static_cast<std::uint8_t>(f.mul(a, 1u << j));
      t_.affine8 = affine_matrix(unit);
      break;
    }
    case 16:
      t_.wide16.resize(512);
      for (std::uint32_t x = 0; x < 256; ++x) {
        t_.wide16[x] = static_cast<std::uint16_t>(f.mul(a, x));
        t_.wide16[256 + x] = static_cast<std::uint16_t>(f.mul(a, x << 8));
      }
      for (int k = 0; k < 4; ++k)
        for (std::uint32_t v = 0; v < 16; ++v) {
          const std::uint32_t prod = f.mul(a, v << (4 * k));
          t_.nib[k][0][v] = static_cast<std::uint8_t>(prod);
          t_.nib[k][1][v] = static_cast<std::uint8_t>(prod >> 8);
        }
      build_affine_wide(f, a, 2, t_.affine_wide);
      break;
    case 32:
      t_.wide32.resize(1024);
      for (std::uint32_t b = 0; b < 4; ++b)
        for (std::uint32_t x = 0; x < 256; ++x)
          t_.wide32[b * 256 + x] = f.mul(a, x << (8 * b));
      for (int k = 0; k < 8; ++k)
        for (std::uint32_t v = 0; v < 16; ++v) {
          const std::uint32_t prod = f.mul(a, v << (4 * k));
          for (int b = 0; b < 4; ++b)
            t_.nib[k][b][v] = static_cast<std::uint8_t>(prod >> (8 * b));
        }
      build_affine_wide(f, a, 4, t_.affine_wide);
      break;
    default:
      assert(false && "unsupported w");
  }
}

void CompiledKernel::mult_xor(std::span<const std::uint8_t> src,
                              std::span<std::uint8_t> dst, RegionLayout layout) const {
  assert(src.size() == dst.size());
  assert(src.size() % (w_ >= 8 ? static_cast<std::size_t>(w_ / 8) : 1) == 0);
  if (src.empty() || a_ == 0) return;
  if (a_ == 1) {
    xor_region(src, dst);  // pointwise on bytes: layout-agnostic
    return;
  }
  active_fns().mult_xor[static_cast<int>(layout)][widx_](t_, src.data(), dst.data(),
                                                         src.size());
}

void CompiledKernel::mult(std::span<const std::uint8_t> src,
                          std::span<std::uint8_t> dst, RegionLayout layout) const {
  assert(src.size() == dst.size());
  if (src.empty()) return;
  if (a_ == 0) {
    std::memset(dst.data(), 0, dst.size());  // zero is zero in both layouts
    return;
  }
  if (a_ == 1) {
    if (dst.data() != src.data()) std::memcpy(dst.data(), src.data(), src.size());
    return;
  }
  active_fns().mult[static_cast<int>(layout)][widx_](t_, src.data(), dst.data(),
                                                     src.size());
}

// ---------------------------------------------------------------------------
// Kernel cache
// ---------------------------------------------------------------------------

namespace {

// Bounds the cache footprint (a w = 16 kernel is ~1.5 KiB); real schedules
// use at most a few hundred distinct coefficients, so the cap is a backstop
// against adversarial coefficient streams, not a working-set limit.
constexpr std::size_t kMaxCachedKernels = 4096;

struct KernelCache {
  std::mutex mu;
  std::unordered_map<std::uint32_t, std::shared_ptr<const CompiledKernel>> map;
};

KernelCache& cache_for(int w) {
  static KernelCache caches[4];
  return caches[widx_for(w)];
}

}  // namespace

std::shared_ptr<const CompiledKernel> compiled_kernel(const Field& f, std::uint32_t a) {
  KernelCache& cache = cache_for(f.w());
  std::lock_guard<std::mutex> lock(cache.mu);
  auto it = cache.map.find(a);
  if (it != cache.map.end()) return it->second;
  if (cache.map.size() >= kMaxCachedKernels) cache.map.clear();
  auto kernel = std::make_shared<const CompiledKernel>(f, a);
  cache.map.emplace(a, kernel);
  return kernel;
}

}  // namespace stair::gf
