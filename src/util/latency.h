// Log-bucketed latency histograms — the measurement discipline of the
// serving tier.
//
// A served system is judged by its tail, and a tail needs a distribution,
// not an average: the bench and metrics layers sweep offered load and report
// p50/p99/p999 per tier (the cluster-tuning methodology of sweeping load and
// reading the full latency distribution), which a sorted sample vector does
// badly — 300 samples put p99 on 3 observations and p999 on none, and the
// previous scrub bench's fg_p99 wandered 4x from exactly that sampling
// noise. The HDR-histogram idea fixes it at constant memory: bucket bounds
// grow geometrically (a power-of-two "octave" split into 2^kSubBits linear
// sub-buckets), so every recorded value lands in a bucket within 1/2^kSubBits
// (~3%) of its true value, any number of samples fit, and percentile
// extraction is one cumulative scan.
//
// Two types:
//   * LatencyHistogram — plain counters, single writer (or externally
//     synchronized). Mergeable: per-thread recording + merge at the end is
//     the zero-contention pattern the benches use.
//   * ConcurrentHistogram — sharded atomic counters for recording from many
//     threads without coordination (the StorageNode metrics surface): each
//     thread increments its own shard (relaxed, lock-free), snapshot()
//     merges shards into a LatencyHistogram.
//
// Units are nanoseconds on the way in; extraction helpers convert.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace stair {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: each power-of-two range splits into 2^kSubBits
  /// linear buckets, bounding relative bucket error at 2^-kSubBits (~3.1%).
  static constexpr int kSubBits = 5;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
  /// Covers the full uint64 nanosecond range (584 years) in ~1900 buckets.
  static constexpr std::size_t kBucketCount = (64 - kSubBits + 1) * kSubBuckets;

  /// Bucket index for a nanosecond value (monotone non-decreasing in nanos).
  static std::size_t bucket_index(std::uint64_t nanos);
  /// Smallest / largest nanosecond value mapping to bucket `index`.
  static std::uint64_t bucket_lower(std::size_t index);
  static std::uint64_t bucket_upper(std::size_t index);

  void record(std::uint64_t nanos);
  void record_seconds(double seconds);

  /// Folds `other` into this histogram (bucket-wise add).
  void merge(const LatencyHistogram& other);
  void clear();

  std::uint64_t count() const { return count_; }
  /// Sum of recorded values (exact, not bucketized).
  std::uint64_t total_nanos() const { return sum_; }
  double mean_nanos() const;
  /// Lower bound of the lowest / upper bound of the highest occupied bucket
  /// (0 when empty) — min/max to bucket resolution, which keeps them
  /// mergeable and snapshot-consistent.
  std::uint64_t min_nanos() const;
  std::uint64_t max_nanos() const;

  /// Value at percentile `pct` in (0, 100]: the upper bound of the bucket
  /// holding the ceil(pct/100 * count)-th smallest sample — conservative
  /// (never under-reports a tail) and exact to bucket resolution. 0 when
  /// empty.
  std::uint64_t percentile_nanos(double pct) const;
  double percentile_ms(double pct) const {
    return static_cast<double>(percentile_nanos(pct)) / 1e6;
  }

  const std::array<std::uint64_t, kBucketCount>& buckets() const { return counts_; }

 private:
  friend class ConcurrentHistogram;

  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

/// Multi-writer recorder: record() is lock-free (one relaxed fetch_add on
/// the calling thread's shard), snapshot() merges the shards. Threads map to
/// shards by a process-wide registration counter, so up to `shards` threads
/// record with zero sharing and more than that degrade to sharing a cache
/// line, never to a lock.
class ConcurrentHistogram {
 public:
  /// `shards` rounds up to a power of two; 0 picks a default from
  /// hardware_concurrency (capped at 16).
  explicit ConcurrentHistogram(std::size_t shards = 0);

  void record(std::uint64_t nanos);
  void record_seconds(double seconds);

  /// Merged view of every shard. Relaxed reads: records racing the snapshot
  /// may or may not be included, but bucket counts and the total are always
  /// of actually-recorded values.
  LatencyHistogram snapshot() const;

  std::uint64_t count() const;
  std::size_t shard_count() const { return shard_count_; }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, LatencyHistogram::kBucketCount> counts;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };

  static std::size_t thread_slot();

  std::unique_ptr<Shard[]> shards_;
  std::size_t shard_count_;
  std::size_t mask_;
};

}  // namespace stair
