#include "sim/failure_injector.h"

#include <algorithm>

namespace stair::sim {

FailureInjector::FailureInjector(InjectorParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {}

std::size_t FailureInjector::sample_burst_length(std::size_t r_max) {
  if (params_.model == SectorModel::kIndependent || r_max <= 1) return 1;
  if (burst_cdf_rmax_ != r_max) {
    burst_cdf_ = reliability::BurstDistribution(params_.b1, params_.alpha).cdf(r_max);
    burst_cdf_rmax_ = r_max;
  }
  const double u = rng_.next_double();
  for (std::size_t len = 1; len <= r_max; ++len)
    if (u < burst_cdf_[len]) return len;
  return r_max;
}

std::vector<bool> FailureInjector::sample_stripe_mask(
    std::size_t n, std::size_t r, const std::vector<std::size_t>& failed_devices) {
  std::vector<bool> mask(n * r, false);
  std::vector<bool> device_failed(n, false);
  for (std::size_t d : failed_devices) device_failed[d] = true;

  for (std::size_t j = 0; j < n; ++j) {
    if (device_failed[j]) {
      for (std::size_t i = 0; i < r; ++i) mask[i * n + j] = true;
      continue;
    }
    if (params_.model == SectorModel::kIndependent) {
      for (std::size_t i = 0; i < r; ++i)
        if (rng_.chance(params_.p_sec)) mask[i * n + j] = true;
    } else {
      // A sector starts a burst with probability p_sec / B (§7.1.2); the
      // burst is clipped at the chunk boundary, as the model assumes.
      const double mean =
          reliability::BurstDistribution(params_.b1, params_.alpha).mean(r);
      const double start_prob = params_.p_sec / mean;
      for (std::size_t i = 0; i < r; ++i) {
        if (!rng_.chance(start_prob)) continue;
        const std::size_t len = std::min(sample_burst_length(r), r - i);
        for (std::size_t b = 0; b < len; ++b) mask[(i + b) * n + j] = true;
      }
    }
  }
  return mask;
}

}  // namespace stair::sim
