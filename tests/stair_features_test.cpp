// Tests for the production-path features layered on the core construction:
// incremental updates (UpdateEngine), degraded reads (schedule slicing), and
// the decode-plan cache.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "stair/plan_cache.h"
#include "stair/stair_code.h"
#include "stair/update_analysis.h"
#include "stair/update_engine.h"
#include "util/rng.h"

namespace stair {
namespace {

std::vector<std::uint8_t> all_bytes(const StripeView& view) {
  std::vector<std::uint8_t> out;
  for (const auto& r : view.stored) out.insert(out.end(), r.begin(), r.end());
  for (const auto& r : view.outside_globals) out.insert(out.end(), r.begin(), r.end());
  return out;
}

class UpdateEngineTest : public ::testing::TestWithParam<GlobalParityMode> {};

TEST_P(UpdateEngineTest, IncrementalUpdateMatchesFullReencode) {
  const StairConfig cfg{.n = 8, .r = 6, .m = 2, .e = {1, 2}};
  const StairCode code(cfg, GetParam());
  const UpdateEngine engine(code);

  StripeBuffer incremental(code, 32), reencoded(code, 32);
  std::vector<std::uint8_t> data(incremental.data_size());
  Rng rng(10);
  rng.fill(data);
  incremental.set_data(data);
  reencoded.set_data(data);
  code.encode(incremental.view());
  code.encode(reencoded.view());

  std::vector<std::uint8_t> fresh(32);
  for (std::size_t idx = 0; idx < code.data_symbol_count(); idx += 5) {
    rng.fill(fresh);
    // Path 1: incremental patch.
    engine.update(incremental.view(), idx, fresh);
    // Path 2: full re-encode with the updated data.
    std::memcpy(data.data() + idx * 32, fresh.data(), 32);
    reencoded.set_data(data);
    code.encode(reencoded.view());
    ASSERT_EQ(all_bytes(incremental.view()), all_bytes(reencoded.view()))
        << "data symbol " << idx;
  }
}

TEST_P(UpdateEngineTest, ParityWritesEqualUpdatePenalty) {
  const StairConfig cfg{.n = 8, .r = 6, .m = 1, .e = {1, 1, 2}};
  const StairCode code(cfg, GetParam());
  const UpdateEngine engine(code);
  const UpdatePenaltyStats stats = update_penalty(code);
  for (std::size_t idx = 0; idx < code.data_symbol_count(); ++idx)
    EXPECT_EQ(engine.parity_writes(idx), stats.per_symbol[idx]) << idx;
}

TEST_P(UpdateEngineTest, UpdatedStripeStillDecodes) {
  const StairConfig cfg{.n = 8, .r = 6, .m = 2, .e = {1, 2}};
  const StairCode code(cfg, GetParam());
  const UpdateEngine engine(code);

  StripeBuffer stripe(code, 16);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(11);
  rng.fill(data);
  stripe.set_data(data);
  code.encode(stripe.view());

  std::vector<std::uint8_t> fresh(16);
  rng.fill(fresh);
  engine.update(stripe.view(), 7, fresh);
  std::memcpy(data.data() + 7 * 16, fresh.data(), 16);

  // Kill two devices + a sector; the incrementally patched parity must carry.
  std::vector<bool> lost(cfg.n * cfg.r, false);
  for (std::size_t i = 0; i < cfg.r; ++i) {
    lost[i * cfg.n + 0] = true;
    lost[i * cfg.n + 7] = true;
  }
  lost[3 * cfg.n + 4] = true;
  Rng garbage(3);
  for (std::size_t idx = 0; idx < lost.size(); ++idx)
    if (lost[idx]) garbage.fill(stripe.view().stored[idx]);
  ASSERT_TRUE(code.decode(stripe.view(), lost));

  std::vector<std::uint8_t> out(stripe.data_size());
  stripe.get_data(out);
  EXPECT_EQ(out, data);
}

TEST_P(UpdateEngineTest, RejectsBadArguments) {
  const StairCode code({.n = 6, .r = 4, .m = 1, .e = {1}}, GetParam());
  const UpdateEngine engine(code);
  StripeBuffer stripe(code, 16);
  std::vector<std::uint8_t> wrong(8);
  EXPECT_THROW(engine.update(stripe.view(), 0, wrong), std::invalid_argument);
  std::vector<std::uint8_t> right(16);
  EXPECT_THROW(engine.update(stripe.view(), code.data_symbol_count(), right),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Modes, UpdateEngineTest,
                         ::testing::Values(GlobalParityMode::kInside,
                                           GlobalParityMode::kOutside),
                         [](const auto& info) {
                           return info.param == GlobalParityMode::kInside ? "inside"
                                                                          : "outside";
                         });

// ---------------------------------------------------------------------------
// Degraded reads
// ---------------------------------------------------------------------------

TEST(DegradedRead, RecoversOnlyTheWantedSymbolCheaply) {
  const StairConfig cfg{.n = 16, .r = 16, .m = 2, .e = {1, 1, 2}};
  const StairCode code(cfg);
  StripeBuffer stripe(code, 64);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(21);
  rng.fill(data);
  stripe.set_data(data);
  code.encode(stripe.view());

  std::vector<std::uint8_t> golden;
  for (const auto& r : stripe.view().stored) golden.insert(golden.end(), r.begin(), r.end());

  // One dead device; read one of its sectors.
  std::vector<bool> lost(cfg.n * cfg.r, false);
  for (std::size_t i = 0; i < cfg.r; ++i) lost[i * cfg.n + 3] = true;
  Rng garbage(5);
  for (std::size_t idx = 0; idx < lost.size(); ++idx)
    if (lost[idx]) garbage.fill(stripe.view().stored[idx]);

  const std::size_t wanted = 9 * cfg.n + 3;
  auto degraded = code.build_degraded_read_schedule(lost, {wanted});
  ASSERT_TRUE(degraded.has_value());
  auto full = code.build_decode_schedule(lost);
  ASSERT_TRUE(full.has_value());
  EXPECT_LT(degraded->mult_xor_count(), full->mult_xor_count() / 4)
      << "reading one sector must cost far less than repairing the device";

  code.execute(*degraded, stripe.view());
  EXPECT_EQ(0, std::memcmp(stripe.view().stored[wanted].data(),
                           golden.data() + wanted * 64, 64));
  // Another lost sector of the same device stays unrepaired (still garbage).
  const std::size_t untouched = 2 * cfg.n + 3;
  EXPECT_NE(0, std::memcmp(stripe.view().stored[untouched].data(),
                           golden.data() + untouched * 64, 64));
}

TEST(DegradedRead, WorksThroughTheGlobalPath) {
  // The wanted symbol sits in a chunk that needs the upstairs pass.
  const StairConfig cfg{.n = 8, .r = 8, .m = 2, .e = {1, 2}};
  const StairCode code(cfg);
  StripeBuffer stripe(code, 32);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(22);
  rng.fill(data);
  stripe.set_data(data);
  code.encode(stripe.view());
  std::vector<std::uint8_t> golden;
  for (const auto& r : stripe.view().stored) golden.insert(golden.end(), r.begin(), r.end());

  // Three sectors lost in one row (> m): global path. Want the middle one.
  std::vector<bool> lost(cfg.n * cfg.r, false);
  for (std::size_t j : {1, 3, 5}) lost[7 * cfg.n + j] = true;
  Rng garbage(6);
  for (std::size_t idx = 0; idx < lost.size(); ++idx)
    if (lost[idx]) garbage.fill(stripe.view().stored[idx]);

  const std::size_t wanted = 7 * cfg.n + 3;
  auto degraded = code.build_degraded_read_schedule(lost, {wanted});
  ASSERT_TRUE(degraded.has_value());
  code.execute(*degraded, stripe.view());
  EXPECT_EQ(0, std::memcmp(stripe.view().stored[wanted].data(),
                           golden.data() + wanted * 32, 32));
}

TEST(DegradedRead, OutsideCoverageStillRejected) {
  const StairCode code({.n = 6, .r = 4, .m = 1, .e = {1}});
  std::vector<bool> lost(24, false);
  for (std::size_t i = 0; i < 4; ++i) {
    lost[i * 6 + 0] = true;
    lost[i * 6 + 1] = true;
  }
  EXPECT_FALSE(code.build_degraded_read_schedule(lost, {0}).has_value());
  EXPECT_THROW(code.build_degraded_read_schedule(std::vector<bool>(24, false), {999}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Decode-plan cache
// ---------------------------------------------------------------------------

TEST(PlanCache, HitsReturnTheSamePlan) {
  const StairCode code({.n = 8, .r = 4, .m = 2, .e = {1, 2}});
  DecodePlanCache cache(code, 4);

  std::vector<bool> mask(32, false);
  for (std::size_t i = 0; i < 4; ++i) mask[i * 8 + 2] = true;
  const auto first = cache.plan(mask);
  ASSERT_NE(first, nullptr);
  const auto second = cache.plan(mask);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCache, NegativeResultsAreCached) {
  const StairCode code({.n = 6, .r = 4, .m = 1, .e = {1}});
  DecodePlanCache cache(code, 4);
  std::vector<bool> bad(24, false);
  for (std::size_t i = 0; i < 4; ++i) {
    bad[i * 6 + 0] = true;
    bad[i * 6 + 1] = true;
  }
  EXPECT_EQ(cache.plan(bad), nullptr);
  EXPECT_EQ(cache.plan(bad), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  const StairCode code({.n = 8, .r = 4, .m = 2, .e = {1, 2}});
  DecodePlanCache cache(code, 2);

  auto mask_for = [&](std::size_t col) {
    std::vector<bool> mask(32, false);
    for (std::size_t i = 0; i < 4; ++i) mask[i * 8 + col] = true;
    return mask;
  };
  cache.plan(mask_for(0));  // miss
  cache.plan(mask_for(1));  // miss
  cache.plan(mask_for(0));  // hit, refreshes 0
  cache.plan(mask_for(2));  // miss, evicts 1
  cache.plan(mask_for(1));  // miss again (was evicted)
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(PlanCache, CachedPlansDecodeCorrectly) {
  const StairConfig cfg{.n = 8, .r = 4, .m = 2, .e = {1, 2}};
  const StairCode code(cfg);
  DecodePlanCache cache(code, 8);
  StripeBuffer stripe(code, 16);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(30);
  rng.fill(data);
  stripe.set_data(data);
  code.encode(stripe.view());

  std::vector<bool> mask(32, false);
  for (std::size_t i = 0; i < 4; ++i) mask[i * 8 + 1] = true;
  mask[3 * 8 + 4] = true;
  Rng garbage(31);
  for (std::size_t idx = 0; idx < mask.size(); ++idx)
    if (mask[idx]) garbage.fill(stripe.view().stored[idx]);

  const auto plan = cache.plan(mask);
  ASSERT_NE(plan, nullptr);
  code.execute(*plan, stripe.view());
  std::vector<std::uint8_t> out(stripe.data_size());
  stripe.get_data(out);
  EXPECT_EQ(out, data);
}

TEST(PlanCache, ZeroCapacityRejected) {
  const StairCode code({.n = 6, .r = 4, .m = 1, .e = {1}});
  EXPECT_THROW(DecodePlanCache(code, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Parallel execution
// ---------------------------------------------------------------------------

class ParallelEncodeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelEncodeTest, MatchesSerialEncodeExactly) {
  const StairConfig cfg{.n = 8, .r = 8, .m = 2, .e = {1, 2}};
  const StairCode code(cfg);
  // Symbol size deliberately not a multiple of 64 * threads to exercise the
  // ragged final slice.
  const std::size_t symbol = 1000 * 16;
  StripeBuffer serial(code, symbol), parallel(code, symbol);
  std::vector<std::uint8_t> data(serial.data_size());
  Rng rng(91);
  rng.fill(data);
  serial.set_data(data);
  parallel.set_data(data);

  code.encode(serial.view());
  code.encode_parallel(parallel.view(), GetParam());
  ASSERT_EQ(all_bytes(serial.view()), all_bytes(parallel.view()));
}

TEST_P(ParallelEncodeTest, ParallelDecodePlansWork) {
  const StairConfig cfg{.n = 8, .r = 8, .m = 2, .e = {1, 2}};
  const StairCode code(cfg);
  StripeBuffer stripe(code, 64 * 32);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(92);
  rng.fill(data);
  stripe.set_data(data);
  code.encode(stripe.view());

  std::vector<bool> lost(cfg.n * cfg.r, false);
  for (std::size_t i = 0; i < cfg.r; ++i) lost[i * cfg.n + 2] = true;
  lost[5 * cfg.n + 4] = true;
  Rng garbage(93);
  for (std::size_t idx = 0; idx < lost.size(); ++idx)
    if (lost[idx]) garbage.fill(stripe.view().stored[idx]);

  auto plan = code.build_decode_schedule(lost);
  ASSERT_TRUE(plan.has_value());
  code.execute_parallel(*plan, stripe.view(), GetParam());
  std::vector<std::uint8_t> out(stripe.data_size());
  stripe.get_data(out);
  EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelEncodeTest, ::testing::Values(1, 2, 3, 8),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace stair
