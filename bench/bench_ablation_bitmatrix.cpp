// Ablation A4 (§8): table-lookup GF(2^w) kernels versus the pure-XOR
// bit-matrix backend (the CRS array-code transform of Plank & Xu). Compares
// encode throughput and operation counts for a STAIR configuration.
//
// Expected: on SIMD-capable CPUs the pshufb table kernel wins (fewer, wider
// ops); the XOR backend is the portable fallback and its packet-XOR count
// (~w/2 per Mult_XOR after the identity discount) quantifies the trade.

#include <iostream>

#include "bench_util.h"
#include "stair/xor_executor.h"

using namespace stair;
using namespace stair::bench;

int main() {
  const StairConfig cfg{.n = 16, .r = 16, .m = 2, .e = {1, 1, 2}};
  const StairCode code(cfg);
  const std::size_t symbol = 32 * 1024;  // 8 MB stripe
  const std::size_t stripe_bytes = symbol * cfg.n * cfg.r;
  std::cout << "=== Ablation: table kernels vs pure-XOR bit-matrix backend ===\n"
            << cfg.to_string() << ", 8 MB stripes, w = " << cfg.w << "\n\n";

  TablePrinter table("encode backends");
  table.set_header({"backend", "ops per stripe", "MB/s"});

  // Table-kernel path.
  StripeBuffer stripe = make_encoded_stripe(code, symbol);
  Workspace ws;
  const Schedule& sch = code.encoding_schedule(EncodingMethod::kUpstairs);
  table.add_row({"GF tables (Mult_XOR)", std::to_string(sch.mult_xor_count()),
                 format_sig(measure_mbps(
                                [&] { code.encode(stripe.view(), EncodingMethod::kUpstairs, &ws); },
                                stripe_bytes),
                            4)});

  // Bit-matrix path over a bit-plane canonical symbol table.
  const XorExecutor xor_exec(sch, code.field());
  const auto& layout = code.layout();
  std::vector<AlignedBuffer> planes;
  std::vector<std::span<std::uint8_t>> spans;
  for (std::size_t id = 0; id < layout.total_symbols(); ++id) planes.emplace_back(symbol);
  for (auto& p : planes) spans.push_back(p.span());
  for (std::size_t row = 0; row < cfg.r; ++row)
    for (std::size_t col = 0; col < cfg.n; ++col)
      gf::to_bitplane(code.field(), stripe.symbol(row, col), spans[layout.id(row, col)]);
  table.add_row({"bit-matrix (packet XOR)", std::to_string(xor_exec.xor_op_count()),
                 format_sig(measure_mbps([&] { xor_exec.execute(spans); }, stripe_bytes), 4)});

  table.print(std::cout);
  std::cout << "Shape check: the SIMD table kernel should win here; the XOR\n"
               "backend trades ~" << xor_exec.xor_op_count() / sch.mult_xor_count()
            << "x more (narrower) ops for zero table/shuffle hardware needs.\n";
  return 0;
}
