// Ablation A5 (§6.2.1): "encoding operations can also be parallelized with
// modern multi-core CPUs". Measures encode_parallel() scaling across thread
// counts on a large stripe.
//
// Expected: near-linear scaling up to the physical core count (on a
// single-vCPU machine the curve is flat — the mechanism is what's tested
// here; the speedup depends on the host).

#include <iostream>
#include <thread>

#include "bench_util.h"

using namespace stair;
using namespace stair::bench;

int main() {
  const StairConfig cfg{.n = 16, .r = 16, .m = 2, .e = {1, 1, 2}};
  const StairCode code(cfg);
  const std::size_t symbol = 512 * 1024;  // 128 MB stripe
  const std::size_t stripe_bytes = symbol * cfg.n * cfg.r;
  std::cout << "=== Ablation: multi-threaded encoding (§6.2.1) ===\n"
            << cfg.to_string() << ", 128 MB stripes, "
            << std::thread::hardware_concurrency() << " hardware threads\n\n";

  StripeBuffer stripe = make_encoded_stripe(code, symbol);
  Workspace ws;

  TablePrinter table("encode_parallel scaling");
  table.set_header({"threads", "MB/s", "speedup"});
  double base = 0.0;
  for (std::size_t threads : {1, 2, 4, 8}) {
    const double mbps = measure_mbps(
        [&] { code.encode_parallel(stripe.view(), threads, EncodingMethod::kAuto, &ws); },
        stripe_bytes);
    if (threads == 1) base = mbps;
    table.add_row({std::to_string(threads), format_sig(mbps, 4),
                   format_sig(mbps / base, 3) + "x"});
  }
  table.print(std::cout);

  std::cout << "Shape check: monotone non-decreasing MB/s with threads, approaching\n"
               "linear speedup up to the machine's physical core count.\n";
  return 0;
}
