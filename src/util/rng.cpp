#include "util/rng.h"

#include <cmath>

namespace stair {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed through splitmix64 as the xoshiro authors recommend, so
  // that low-entropy seeds (0, 1, 2, ...) still produce well-mixed states.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias; the loop almost never iterates.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

void Rng::fill(std::span<std::uint8_t> out) {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    const std::uint64_t word = next_u64();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(word >> (8 * b));
  }
  std::uint64_t word = next_u64();
  while (i < out.size()) {
    out[i++] = static_cast<std::uint8_t>(word);
    word >>= 8;
  }
}

double Rng::next_exponential(double mean) {
  // Inverse-CDF sampling; (1 - u) keeps log() away from zero.
  return -mean * std::log(1.0 - next_double());
}

}  // namespace stair
