#include "stair/autotune.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>
#include <utility>

#include "gf/gf.h"
#include "util/buffer.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif
#if !defined(_WIN32)
#include <sys/stat.h>
#endif

namespace stair {

namespace {

constexpr double kBytesPerMb = 1000.0 * 1000.0;

// Probe sizing. Two region sizes straddle the slice sizes the execution
// layer actually uses; per-cell time floors keep the whole probe in the
// tens-of-milliseconds band even for the slow scalar cells (and the result
// is disk-cached, so the cost is per-machine, not per-process).
constexpr std::size_t kProbeSizes[] = {64 * 1024, 256 * 1024};
constexpr double kMinCellSeconds = 1e-4;
constexpr int kMinCellIters = 2;

// Times `fn` (touching `bytes` per call) until the floor is met; MB/s.
template <typename Fn>
double measure_mbps(std::size_t bytes, Fn&& fn) {
  fn();  // warm tables, faults, branch history
  Stopwatch sw;
  int iters = 0;
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = sw.elapsed_seconds();
  } while (iters < kMinCellIters || elapsed < kMinCellSeconds);
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(bytes) * iters / elapsed / kBytesPerMb;
}

int widx_of(int w) { return w == 4 ? 0 : w == 8 ? 1 : w == 16 ? 2 : 3; }

}  // namespace

// ---------------------------------------------------------------------------
// TuneProfile lookups
// ---------------------------------------------------------------------------

double TuneProfile::mult_xor_mbps(gf::Backend backend, gf::RegionLayout layout, int w,
                                  std::size_t region_bytes) const {
  const TuneCell* best = nullptr;
  for (const TuneCell& c : cells) {
    if (c.backend != static_cast<int>(backend) || c.layout != static_cast<int>(layout) ||
        c.w != w)
      continue;
    if (!best) {
      best = &c;
      continue;
    }
    if (region_bytes == 0) {
      if (c.region_bytes > best->region_bytes) best = &c;
    } else {
      const auto dist = [&](std::size_t s) {
        return s > region_bytes ? s - region_bytes : region_bytes - s;
      };
      if (dist(c.region_bytes) < dist(best->region_bytes)) best = &c;
    }
  }
  return best ? best->mbps : 0.0;
}

double TuneProfile::convert_mbps(gf::Backend backend, int w) const {
  for (const TuneCell& c : convert_cells)
    if (c.backend == static_cast<int>(backend) && c.w == w) return c.mbps;
  return 0.0;
}

// ---------------------------------------------------------------------------
// JSON serialization — hand-rolled for our own format (no dependencies).
// ---------------------------------------------------------------------------

namespace {

void append_escaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(ch) >= 0x20) out->push_back(ch);
  }
  out->push_back('"');
}

void append_cells(std::string* out, const char* key, const std::vector<TuneCell>& cells) {
  char buf[160];
  *out += "  \"";
  *out += key;
  *out += "\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const TuneCell& c = cells[i];
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"backend\": %d, \"layout\": %d, \"w\": %d, "
                  "\"region_bytes\": %zu, \"mbps\": %.17g}",
                  i ? "," : "", c.backend, c.layout, c.w, c.region_bytes, c.mbps);
    *out += buf;
  }
  *out += cells.empty() ? "]" : "\n  ]";
}

// Minimal JSON scanner: just enough structure (objects, arrays, strings,
// numbers, bools) to re-read to_json output plus hand-edited variants.
struct JsonScanner {
  const char* p;
  const char* end;

  explicit JsonScanner(const std::string& s) : p(s.data()), end(s.data() + s.size()) {}

  void skip_ws() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }
  bool consume(char ch) {
    skip_ws();
    if (p < end && *p == ch) {
      ++p;
      return true;
    }
    return false;
  }
  bool peek(char ch) {
    skip_ws();
    return p < end && *p == ch;
  }
  bool string(std::string* out) {
    skip_ws();
    if (p >= end || *p != '"') return false;
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\' && p + 1 < end) ++p;
      out->push_back(*p++);
    }
    if (p >= end) return false;
    ++p;
    return true;
  }
  bool number(double* out) {
    skip_ws();
    char* done = nullptr;
    *out = std::strtod(p, &done);
    if (done == p) return false;
    p = done;
    return true;
  }
  bool boolean(bool* out) {
    skip_ws();
    if (end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
      *out = true;
      p += 4;
      return true;
    }
    if (end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
      *out = false;
      p += 5;
      return true;
    }
    return false;
  }
  // Skips any value (used for unknown keys — forward compatibility).
  bool skip_value() {
    skip_ws();
    if (p >= end) return false;
    if (*p == '"') {
      std::string s;
      return string(&s);
    }
    if (*p == '{' || *p == '[') {
      const char open = *p, close = open == '{' ? '}' : ']';
      int depth = 0;
      bool in_string = false;
      for (; p < end; ++p) {
        if (in_string) {
          if (*p == '\\') ++p;
          else if (*p == '"') in_string = false;
        } else if (*p == '"') {
          in_string = true;
        } else if (*p == open) {
          ++depth;
        } else if (*p == close) {
          if (--depth == 0) {
            ++p;
            return true;
          }
        }
      }
      return false;
    }
    bool b;
    if (boolean(&b)) return true;
    double d;
    return number(&d);
  }
};

bool parse_cell(JsonScanner* js, TuneCell* cell) {
  if (!js->consume('{')) return false;
  if (js->consume('}')) return true;
  do {
    std::string key;
    if (!js->string(&key) || !js->consume(':')) return false;
    double v = 0.0;
    if (!js->number(&v)) return false;
    if (key == "backend") cell->backend = static_cast<int>(v);
    else if (key == "layout") cell->layout = static_cast<int>(v);
    else if (key == "w") cell->w = static_cast<int>(v);
    else if (key == "region_bytes") cell->region_bytes = static_cast<std::size_t>(v);
    else if (key == "mbps") cell->mbps = v;
  } while (js->consume(','));
  return js->consume('}');
}

bool parse_cells(JsonScanner* js, std::vector<TuneCell>* cells) {
  if (!js->consume('[')) return false;
  if (js->consume(']')) return true;
  do {
    TuneCell cell;
    if (!parse_cell(js, &cell)) return false;
    cells->push_back(cell);
  } while (js->consume(','));
  return js->consume(']');
}

}  // namespace

std::string TuneProfile::to_json() const {
  std::string out = "{\n";
  char buf[128];
  std::snprintf(buf, sizeof buf, "  \"version\": %d,\n", version);
  out += buf;
  out += "  \"fingerprint\": ";
  append_escaped(&out, fingerprint);
  out += ",\n";
  std::snprintf(buf, sizeof buf, "  \"measured\": %s,\n", measured ? "true" : "false");
  out += buf;
  std::snprintf(buf, sizeof buf, "  \"memcpy_mbps\": %.17g,\n", memcpy_mbps);
  out += buf;
  std::snprintf(buf, sizeof buf, "  \"xor_mbps\": %.17g,\n", xor_mbps);
  out += buf;
  std::snprintf(buf, sizeof buf, "  \"dispatch_overhead_ns\": %.17g,\n", dispatch_overhead_ns);
  out += buf;
  std::snprintf(buf, sizeof buf, "  \"cache_budget_bytes\": %zu,\n", cache_budget_bytes);
  out += buf;
  append_cells(&out, "cells", cells);
  out += ",\n";
  append_cells(&out, "convert", convert_cells);
  out += "\n}\n";
  return out;
}

bool TuneProfile::from_json(const std::string& text, TuneProfile* out) {
  TuneProfile p;
  p.version = 0;
  JsonScanner js(text);
  if (!js.consume('{')) return false;
  if (!js.consume('}')) {
    do {
      std::string key;
      if (!js.string(&key) || !js.consume(':')) return false;
      bool ok = true;
      double v = 0.0;
      if (key == "version") {
        ok = js.number(&v);
        p.version = static_cast<int>(v);
      } else if (key == "fingerprint") {
        ok = js.string(&p.fingerprint);
      } else if (key == "measured") {
        ok = js.boolean(&p.measured);
      } else if (key == "memcpy_mbps") {
        ok = js.number(&p.memcpy_mbps);
      } else if (key == "xor_mbps") {
        ok = js.number(&p.xor_mbps);
      } else if (key == "dispatch_overhead_ns") {
        ok = js.number(&p.dispatch_overhead_ns);
      } else if (key == "cache_budget_bytes") {
        ok = js.number(&v);
        p.cache_budget_bytes = static_cast<std::size_t>(v);
      } else if (key == "cells") {
        ok = parse_cells(&js, &p.cells);
      } else if (key == "convert") {
        ok = parse_cells(&js, &p.convert_cells);
      } else {
        ok = js.skip_value();
      }
      if (!ok) return false;
    } while (js.consume(','));
    if (!js.consume('}')) return false;
  }
  *out = std::move(p);
  return true;
}

// ---------------------------------------------------------------------------
// Probe
// ---------------------------------------------------------------------------

std::string Autotune::cpu_fingerprint() {
  std::string brand;
#if defined(__x86_64__) || defined(__i386__)
  unsigned a, b, c, d;
  if (__get_cpuid(0x80000000u, &a, &b, &c, &d) && a >= 0x80000004u) {
    char raw[49] = {};
    unsigned* words = reinterpret_cast<unsigned*>(raw);
    for (unsigned leaf = 0; leaf < 3; ++leaf) {
      __get_cpuid(0x80000002u + leaf, &a, &b, &c, &d);
      words[4 * leaf + 0] = a;
      words[4 * leaf + 1] = b;
      words[4 * leaf + 2] = c;
      words[4 * leaf + 3] = d;
    }
    brand = raw;
    // Trim the brand string's padding spaces.
    while (!brand.empty() && (brand.back() == ' ' || brand.back() == '\0')) brand.pop_back();
  }
#endif
  if (brand.empty()) brand = "unknown-cpu";
  std::string backends;
  for (gf::Backend bk :
       {gf::Backend::kScalar, gf::Backend::kSsse3, gf::Backend::kAvx2, gf::Backend::kGfni,
        gf::Backend::kAvx512})
    if (gf::backend_supported(bk)) {
      if (!backends.empty()) backends += '+';
      backends += gf::backend_name(bk);
    }
  return brand + " [" + backends + "]";
}

namespace {

// Streams a Mult_XOR over (src, dst) in `layout`; returns MB/s counting the
// bytes the kernel reads+writes per pass (src + dst load + dst store would
// be 3x, but MB/s here is a comparator, not a bandwidth claim — only ratios
// between cells matter, so count region bytes once like the benches do).
double probe_mult_xor(const gf::CompiledKernel& kernel, gf::RegionLayout layout,
                      std::uint8_t* src, std::uint8_t* dst, std::size_t bytes) {
  return measure_mbps(bytes, [&] {
    kernel.mult_xor({src, bytes}, {dst, bytes}, layout);
  });
}

double probe_convert(int w, std::uint8_t* data, std::size_t bytes) {
  // Round trip: to altmap and back. Count both passes — the boundary
  // conversion a replay pays is exactly this pair.
  return measure_mbps(2 * bytes, [&] {
    gf::convert_region(w, gf::RegionLayout::kStandard, gf::RegionLayout::kAltmap,
                       {data, bytes});
    gf::convert_region(w, gf::RegionLayout::kAltmap, gf::RegionLayout::kStandard,
                       {data, bytes});
  });
}

double probe_dispatch_overhead_ns() {
  ThreadPool& pool = ThreadPool::default_pool();
  constexpr int kTasks = 256;
  // Warm the queue paths once.
  std::atomic<int> remaining{kTasks};
  const auto run = [&] {
    remaining.store(kTasks, std::memory_order_relaxed);
    for (int i = 0; i < kTasks; ++i)
      pool.submit([&remaining] { remaining.fetch_sub(1, std::memory_order_relaxed); });
    while (remaining.load(std::memory_order_relaxed) > 0) {
      if (!pool.try_run_one()) std::this_thread::yield();
    }
  };
  run();
  Stopwatch sw;
  run();
  run();
  const double seconds = sw.elapsed_seconds();
  return seconds / (2.0 * kTasks) * 1e9;
}

// Streaming-size sweep: throughput of the active backend's w = 8 Mult_XOR
// at growing region sizes; the cache budget is twice the largest size that
// still holds near-peak throughput (src + dst = 2 regions resident).
std::size_t probe_cache_budget(const gf::Field& f8) {
  constexpr std::size_t kSweep[] = {32 * 1024, 128 * 1024, 512 * 1024, 2 * 1024 * 1024};
  const auto kernel = gf::compiled_kernel(f8, 7);
  AlignedBuffer src(kSweep[3]), dst(kSweep[3]);
  std::memset(src.data(), 0xa5, src.size());
  std::memset(dst.data(), 0x3c, dst.size());
  // Per-size max over repeats: on a shared host, interference only ever
  // lowers a sample, so max is the right estimator of the quiet rate.
  double best = 0.0;
  double mbps[4] = {};
  for (int rep = 0; rep < 3; ++rep)
    for (int i = 0; i < 4; ++i)
      mbps[i] = std::max(mbps[i], probe_mult_xor(*kernel, gf::RegionLayout::kStandard,
                                                 src.data(), dst.data(), kSweep[i]));
  for (int i = 0; i < 4; ++i) best = std::max(best, mbps[i]);
  std::size_t resident = kSweep[0];
  for (int i = 0; i < 4; ++i)
    if (mbps[i] >= 0.85 * best) resident = kSweep[i];
  std::size_t budget = std::clamp<std::size_t>(2 * resident, 128 * 1024, 8 * 1024 * 1024);
  // A transient dip in the sweep must never shrink the strip budget below
  // what the reported cache hierarchy provably holds — the measurement can
  // only raise the detection-based default (e.g. when streaming from a big
  // L3 measures flat), not undercut it.
  if (const std::size_t l2 = gf::detected_l2_cache_bytes())
    budget = std::max(budget, std::clamp<std::size_t>(l2 / 2, 128 * 1024, 8 * 1024 * 1024));
  return budget;
}

}  // namespace

TuneProfile Autotune::probe_now() {
  TuneProfile p;
  p.fingerprint = cpu_fingerprint();

  constexpr std::size_t kMaxProbe = kProbeSizes[1];
  AlignedBuffer src(kMaxProbe), dst(kMaxProbe);
  std::memset(src.data(), 0xa5, src.size());
  std::memset(dst.data(), 0x3c, dst.size());

  // Baseline bandwidths.
  p.memcpy_mbps = measure_mbps(kMaxProbe, [&] {
    std::memcpy(dst.data(), src.data(), kMaxProbe);
  });
  p.xor_mbps = measure_mbps(kMaxProbe, [&] {
    gf::xor_region({src.data(), kMaxProbe}, {dst.data(), kMaxProbe});
  });
  p.dispatch_overhead_ns = probe_dispatch_overhead_ns();

  // Mult_XOR surface: every supported backend x layout x width x size.
  // Forcing a backend changes only which code path runs — results are
  // bit-identical — so flipping through them mid-process is safe; the
  // active backend is restored afterwards.
  const gf::Backend saved = gf::active_backend();
  for (gf::Backend bk :
       {gf::Backend::kScalar, gf::Backend::kSsse3, gf::Backend::kAvx2, gf::Backend::kGfni,
        gf::Backend::kAvx512}) {
    if (!gf::backend_supported(bk)) continue;
    gf::force_backend(bk);
    for (int w : {4, 8, 16, 32}) {
      const gf::Field f(w);
      const auto kernel = gf::compiled_kernel(f, 7);
      for (gf::RegionLayout layout : {gf::RegionLayout::kStandard, gf::RegionLayout::kAltmap}) {
        if (layout == gf::RegionLayout::kAltmap && w < 16) continue;  // layouts coincide
        for (std::size_t bytes : kProbeSizes) {
          TuneCell cell;
          cell.backend = static_cast<int>(bk);
          cell.layout = static_cast<int>(layout);
          cell.w = w;
          cell.region_bytes = bytes;
          cell.mbps = probe_mult_xor(*kernel, layout, src.data(), dst.data(), bytes);
          p.cells.push_back(cell);
        }
      }
      if (w >= 16) {
        TuneCell conv;
        conv.backend = static_cast<int>(bk);
        conv.layout = static_cast<int>(gf::RegionLayout::kAltmap);
        conv.w = w;
        conv.region_bytes = kProbeSizes[0];
        conv.mbps = probe_convert(w, src.data(), kProbeSizes[0]);
        p.convert_cells.push_back(conv);
      }
    }
  }
  gf::force_backend(saved);

  {
    const gf::Field f8(8);
    p.cache_budget_bytes = probe_cache_budget(f8);
  }
  p.measured = true;
  return p;
}

// ---------------------------------------------------------------------------
// File cache
// ---------------------------------------------------------------------------

std::string Autotune::default_tune_path() {
  if (const char* env = std::getenv("STAIR_TUNE_FILE")) {
    return *env ? std::string(env) : std::string();
  }
  if (const char* home = std::getenv("HOME")) {
    if (*home) return std::string(home) + "/.cache/stair_tune.json";
  }
  return {};
}

bool Autotune::save_profile(const TuneProfile& p, const std::string& path) {
  if (path.empty()) return false;
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) {
    // Create the parent chain recursively: STAIR_TUNE_FILE may point
    // arbitrarily deep (/a/b/c/tune.json), and a silent failure here means
    // the probe re-runs in every process — the cache must either exist or
    // the caller must hear that it can't.
    const std::size_t slash = path.rfind('/');
    if (slash == std::string::npos) return false;
    std::error_code ec;
    std::filesystem::create_directories(path.substr(0, slash), ec);
    if (ec) return false;
    f = std::fopen(tmp.c_str(), "w");
    if (!f) return false;
  }
  const std::string json = p.to_json();
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool Autotune::load_profile(const std::string& path, TuneProfile* out) {
  if (path.empty()) return false;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return false;
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  return TuneProfile::from_json(text, out);
}

// ---------------------------------------------------------------------------
// Singleton + decisions
// ---------------------------------------------------------------------------

Autotune& Autotune::instance() {
  static Autotune tuner;
  return tuner;
}

bool Autotune::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (enabled_override_ >= 0) return enabled_override_ != 0;
  const char* env = std::getenv("STAIR_AUTOTUNE");
  return !(env && std::strcmp(env, "0") == 0);
}

void Autotune::ensure() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (ensured_) return;
  ensured_ = true;  // even on failure: don't re-probe every construction
  const std::string path = default_tune_path();
  TuneProfile loaded;
  if (load_profile(path, &loaded) && loaded.version == kTuneProfileVersion &&
      loaded.measured && loaded.fingerprint == cpu_fingerprint()) {
    profile_ = std::move(loaded);
  } else {
    profile_ = probe_now();
    (void)save_profile(profile_, path);  // best-effort
  }
  if (profile_.measured && profile_.cache_budget_bytes)
    gf::set_region_cache_budget(profile_.cache_budget_bytes);
}

const TuneProfile& Autotune::profile() {
  ensure();
  std::lock_guard<std::mutex> lock(mu_);
  return profile_;
}

gf::RegionLayout Autotune::choose_layout(int w, double mult_xors_per_region,
                                         std::size_t region_bytes) {
  if (w < 16 || !enabled() || gf::layout_forced()) return gf::preferred_layout(w);
  ensure();
  const gf::Backend bk = gf::active_backend();
  double std_mbps, alt_mbps, conv_mbps;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!profile_.measured) return gf::preferred_layout(w);
    std_mbps = profile_.mult_xor_mbps(bk, gf::RegionLayout::kStandard, w, region_bytes);
    alt_mbps = profile_.mult_xor_mbps(bk, gf::RegionLayout::kAltmap, w, region_bytes);
    conv_mbps = profile_.convert_mbps(bk, w);
  }
  if (std_mbps <= 0.0 || alt_mbps <= 0.0 || conv_mbps <= 0.0)
    return gf::preferred_layout(w);
  // Regions shorter than one altmap block never convert — altmap would run
  // the standard tail loop plus two (no-op) boundary passes for nothing.
  if (region_bytes < gf::kAltmapBlockBytes) return gf::RegionLayout::kStandard;
  const double ops = std::max(1.0, mult_xors_per_region);
  // Cost per byte of one referenced region across a replay: `ops` kernel
  // passes, plus (altmap only) the round-trip boundary conversion. The
  // convert cell already counts both passes, so its cost per byte is
  // 2 / conv_mbps.
  const double cost_std = ops / std_mbps;
  const double cost_alt = ops / alt_mbps + 2.0 / conv_mbps;
  return cost_alt < cost_std ? gf::RegionLayout::kAltmap : gf::RegionLayout::kStandard;
}

std::size_t Autotune::min_slice_bytes(int w, gf::RegionLayout layout) {
  constexpr std::size_t kFallback = 4096;
  if (!enabled()) return kFallback;
  ensure();
  const gf::Backend bk = gf::active_backend();
  double mbps, overhead_ns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!profile_.measured) return kFallback;
    mbps = profile_.mult_xor_mbps(bk, layout, w, 0);
    overhead_ns = profile_.dispatch_overhead_ns;
  }
  if (mbps <= 0.0 || overhead_ns <= 0.0) return kFallback;
  // A slice is worth dispatching when its compute time is a healthy
  // multiple of the submit round trip. bytes = alpha * overhead * rate;
  // MB/s => bytes/ns = mbps / 1000.
  constexpr double kAlpha = 8.0;
  const double bytes = kAlpha * overhead_ns * (mbps / 1000.0);
  const std::size_t rounded =
      std::clamp<std::size_t>(static_cast<std::size_t>(bytes), 1024, 256 * 1024);
  return (rounded + 63) & ~std::size_t{63};
}

void Autotune::set_profile_for_testing(TuneProfile p) {
  std::lock_guard<std::mutex> lock(mu_);
  profile_ = std::move(p);
  ensured_ = true;
}

void Autotune::set_enabled_for_testing(int mode) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_override_ = mode;
}

void Autotune::reset_for_testing() {
  std::lock_guard<std::mutex> lock(mu_);
  profile_ = TuneProfile{};
  ensured_ = false;
  enabled_override_ = -1;
}

}  // namespace stair
