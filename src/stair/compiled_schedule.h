// Compiled schedule replay — the hot-path execution format.
//
// Schedule (stair/schedule.h) is the portable description of a coding plan:
// symbol ids and GF coefficients. Replaying one directly re-resolves every
// coefficient on every call and walks each output region twice (zero-fill,
// then per-term XOR passes). CompiledSchedule lowers a Schedule once into the
// form the machine actually wants to run:
//
//  * every coefficient is resolved up front to a cached split-table kernel
//    (gf/kernel.h), so replay performs zero table construction;
//  * the first term of each op overwrites its output (copy-mult) instead of
//    zero-fill + XOR, saving one full pass over every output region;
//  * the whole op list is strip-mined into L2-sized byte strips (region ops
//    are pointwise, so any byte slicing is exact): all terms of an op run
//    back-to-back on a strip while the destination is cache-resident, and
//    inputs reused by later ops are still hot — large stripes stream from
//    DRAM once instead of once per referencing op;
//  * replay takes a RegionLayout: with kAltmap every kernel call runs the
//    planar fast path that lifts w = 16/32 to full SIMD (gf/region.h). The
//    symbol table must then hold altmap regions; convert_user_regions()
//    performs the boundary conversion for the caller-owned regions (scratch
//    symbols live permanently in altmap — they start zeroed, which is
//    layout-invariant, and never escape a replay), and it only touches
//    regions the plan references, so a sparse decode never pays for the
//    whole stripe. Conversion commutes with 64-byte-granular range slicing,
//    so parallel replays convert exactly the range they execute.
//
// Replay is byte-identical to Schedule::execute on the same symbol table
// (after conversion, for altmap replays).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gf/kernel.h"
#include "stair/schedule.h"

namespace stair {

class CompiledSchedule {
 public:
  CompiledSchedule() = default;

  /// Lowers `schedule`. `strip_bytes` pins the replay strip size (rounded to
  /// 64-byte granularity; mainly for tests); 0 derives it from the number of
  /// distinct symbols so one strip of every referenced region fits in L2
  /// together (STAIR_STRIP_BYTES overrides the cache budget).
  explicit CompiledSchedule(const Schedule& schedule, std::size_t strip_bytes = 0);

  bool empty() const { return ops_.empty(); }

  /// Resolved Mult_XOR region operations per replay (zero-coefficient terms
  /// are dropped at compile time).
  std::size_t mult_xor_count() const;

  /// Replays over `symbols` — same contract and same bytes as
  /// Schedule::execute on the source schedule. With kAltmap, every region
  /// the plan references must already be in altmap layout.
  void execute(std::span<const std::span<std::uint8_t>> symbols,
               gf::RegionLayout layout = gf::RegionLayout::kStandard) const;

  /// Replays only bytes [offset, offset + length) of every region. Region
  /// ops are pointwise (and altmap blocks 64-byte-aligned), so running
  /// disjoint ranges (in any order, on any threads) is byte-identical to one
  /// full execute(); this is the parallel engine's building block — workers
  /// share one symbol table instead of building per-thread sliced copies.
  /// `offset` must be a multiple of 64 (keeps every slice symbol- and
  /// block-aligned for all w).
  void execute_range(std::span<const std::span<std::uint8_t>> symbols,
                     std::size_t offset, std::size_t length,
                     gf::RegionLayout layout = gf::RegionLayout::kStandard) const;

  /// One byte range of a replay with the boundary-conversion sandwich —
  /// the single implementation of the layout contract every layout-aware
  /// caller (StairCode's serial/pooled replays, Codec subtasks) goes
  /// through: convert the referenced caller-owned regions of the range to
  /// `layout`, execute_range in it, convert them back to standard. With
  /// kStandard this is exactly execute_range. Conversion commutes with the
  /// 64-byte-granular slicing, so disjoint ranges run independently and
  /// each byte converts exactly once per call, at the range boundary.
  void execute_range_converted(std::span<const std::span<std::uint8_t>> symbols,
                               const std::vector<bool>& caller_owned,
                               gf::RegionLayout layout, std::size_t offset,
                               std::size_t length) const;

  /// Boundary conversion for an altmap replay: converts bytes
  /// [offset, offset + length) of the plan-referenced regions whose ids are
  /// marked in `caller_owned` (regions backed by caller memory that must
  /// stay standard outside the replay; scratch stays planar forever).
  /// Towards altmap, regions never read before their first write are
  /// skipped — the replay fully overwrites them before any read, so
  /// converting their stale bytes would be wasted work. Towards standard,
  /// every referenced caller-owned region converts back. `offset` must be a
  /// multiple of 64. No-op for byte-linear widths (w = 4/8).
  void convert_user_regions(std::span<const std::span<std::uint8_t>> symbols,
                            const std::vector<bool>& caller_owned,
                            gf::RegionLayout to, std::size_t offset,
                            std::size_t length) const;

  /// Distinct symbol ids referenced — the working-set width cache-aware
  /// slicing divides its budget by.
  std::size_t touched_symbols() const { return touched_.size(); }

  /// Word width of the field the schedule was compiled over (0 if empty).
  int w() const { return w_; }

 private:
  struct Term {
    std::shared_ptr<const gf::CompiledKernel> kernel;
    std::uint32_t input = 0;
  };
  struct Op {
    std::uint32_t output = 0;
    // True when the op must keep the legacy zero-fill + accumulate order:
    // no surviving terms, or a self-referencing term (input == output).
    bool zero_fill = false;
    std::vector<Term> terms;
  };
  // One entry per distinct referenced symbol id; `read` marks ids whose
  // pre-replay bytes a surviving term can observe — i.e. ids read before
  // their first write. Ids first referenced as an output stay read=false
  // even when later ops read them: replay fully overwrites them (per strip,
  // in op order) first, so inbound conversion skips their dead bytes.
  struct Touched {
    std::uint32_t id = 0;
    bool read = false;
  };

  std::size_t strip_size(std::size_t symbol_size) const;

  std::vector<Op> ops_;
  std::vector<Touched> touched_;  // sorted by id
  std::size_t forced_strip_ = 0;  // nonzero = caller-pinned strip size
  int w_ = 0;
};

}  // namespace stair
