// Cluster-simulation bench: runs ClusterSim over a grid of (m, s) coverage
// configs and scrub periods, reporting simulated durability (losses per
// user-PB-year) next to the §7 analytic prediction with its Poisson band —
// the model-vs-measured table README quotes, and the CI divergence gate's
// input (a simulated loss count drifting outside ~10x of the analytic
// expectation means either the simulator or the model regressed).
//
// Knobs:
//   STAIR_BENCH_SMOKE=1  small grid, short horizon (the CI configuration)
//   STAIR_SIM_HOURS      simulated hours per config (default 20000 full,
//                        auto-sized in smoke)
//   STAIR_SIM_SEED       master seed (nightly CI passes the run id, so every
//                        nightly explores a fresh trajectory that can still
//                        be replayed verbatim from the JSON)
//
// Results land in BENCH_cluster_sim.json.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "reliability/prediction.h"
#include "sim/cluster_sim.h"

using namespace stair;
using namespace stair::bench;

namespace {

struct Case {
  const char* label;
  StairConfig code;
  double fixed_p_sec;
  double scrub_period_hours;  // < 0: fixed-p_sec mode (scrub moot)
};

double env_double(const char* name, double fallback) {
  if (const char* s = std::getenv(name)) {
    char* end = nullptr;
    const double v = std::strtod(s, &end);
    if (end != s && v > 0.0) return v;
    std::cerr << name << ": unparseable value '" << s << "'\n";
    std::exit(2);
  }
  return fallback;
}

std::uint64_t env_seed() {
  if (const char* s = std::getenv("STAIR_SIM_SEED")) {
    const unsigned long long v = std::strtoull(s, nullptr, 10);
    if (v != 0) return v;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = parse_env(argc, argv);
  const std::uint64_t seed = env_seed();

  // Inflated failure rates (the §7.2 cross-validation trick): real MTTDLs
  // are centuries, so the bench runs a cluster whose episodes are frequent
  // enough to *count* and compares against the prediction for the same
  // inflated rates — agreement there validates the pipeline everywhere.
  std::vector<Case> cases = {
      {"stair e={1}", {.n = 4, .r = 4, .m = 1, .e = {1}, .w = 8}, 0.02, -1.0},
      {"stair e={2}", {.n = 4, .r = 4, .m = 1, .e = {2}, .w = 8}, 0.03, -1.0},
      {"stair e={1,2}", {.n = 6, .r = 4, .m = 1, .e = {1, 2}, .w = 8}, 0.02, -1.0},
  };
  if (!env.smoke) {
    cases.push_back({"stair e={1} weekly-scrub",
                     {.n = 8, .r = 16, .m = 1, .e = {1}, .w = 8},
                     -1.0,
                     7.0 * 24.0});
    cases.push_back({"stair e={1,2} daily-scrub",
                     {.n = 8, .r = 16, .m = 1, .e = {1, 2}, .w = 8},
                     -1.0,
                     24.0});
  }

  const double sim_hours = env_double("STAIR_SIM_HOURS", env.smoke ? 0.0 : 20000.0);

  struct Row {
    const char* label;
    sim::ClusterReport report;
    double expected;
  };
  std::vector<Row> rows;
  bool diverged = false;

  for (const auto& c : cases) {
    sim::ClusterConfig cfg;
    cfg.code = c.code;
    cfg.arrays = 32;
    cfg.stripes_per_array = 64;
    cfg.device_bytes = 32.0 * 1024 * 1024;
    cfg.mttf_hours = 500.0;
    cfg.repair_mbps_per_array = 128.0;
    cfg.seed = seed;
    cfg.record_trace = false;
    if (c.fixed_p_sec >= 0.0) {
      cfg.fixed_p_sec = c.fixed_p_sec;
      cfg.scrub_period_hours = -1.0;
    } else {
      cfg.scrub_period_hours = c.scrub_period_hours;
      cfg.latent_error_rate_per_hour = 1e-5;
      cfg.scrub_scan_mbps = 64.0;
    }

    sim::ClusterSim sim(cfg);
    if (sim_hours > 0.0) {
      cfg.sim_hours = sim_hours;
    } else {
      // Smoke: size each config for ~60 expected events so the run is fast
      // and the band still means something.
      const auto p = reliability::predict_reliability(sim.prediction_query());
      cfg.sim_hours = 60.0 * p.mttdl_renewal_hours / static_cast<double>(cfg.arrays);
    }
    sim::ClusterSim sized(cfg);
    Row row{c.label, sized.run(), 0.0};
    row.expected = row.report.band.expected;
    // The >10x divergence gate: simulated-vs-analytic disagreement beyond
    // the Poisson band *and* an order of magnitude means a regression, not
    // sampling noise.
    const double observed = static_cast<double>(row.report.loss_events);
    if (!row.report.within_band &&
        (observed > 10.0 * row.expected + 10.0 ||
         (row.expected > 0.0 && observed * 10.0 + 10.0 < row.expected)))
      diverged = true;

    std::printf(
        "%-26s losses=%zu expected=%.1f band=[%.1f, %.1f] %s  "
        "pb-years=%.3e sim-loss/PBy=%.3e model-loss/PBy=%.3e ampl=%.2f\n",
        c.label, row.report.loss_events, row.report.band.expected,
        row.report.band.lo, row.report.band.hi,
        row.report.within_band ? "in-band" : "OUT-OF-BAND",
        row.report.user_pb_years, row.report.losses_per_pb_year,
        row.report.prediction.loss_per_pb_year, row.report.repair_amplification);
    rows.push_back(std::move(row));
  }

  const std::string path = json_output_path("BENCH_cluster_sim.json", env.smoke);
  {
    std::ofstream out(path);
    out << "{\n  \"bench\": \"cluster_sim\",\n"
        << "  \"smoke\": " << (env.smoke ? "true" : "false") << ",\n"
        << "  \"seed\": " << seed << ",\n"
        << "  \"diverged\": " << (diverged ? "true" : "false") << ",\n"
        << "  \"cases\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i].report;
      out << "    {\"label\": \"" << rows[i].label << "\", \"sim_hours\": "
          << r.sim_hours << ", \"seed\": " << r.seed
          << ", \"loss_events\": " << r.loss_events
          << ", \"device_overflow_losses\": " << r.device_overflow_losses
          << ", \"sector_losses\": " << r.sector_losses
          << ", \"expected_events\": " << r.band.expected
          << ", \"band_lo\": " << r.band.lo << ", \"band_hi\": " << r.band.hi
          << ", \"within_band\": " << (r.within_band ? "true" : "false")
          << ",\n     \"user_pb_years\": " << r.user_pb_years
          << ", \"sim_loss_per_pb_year\": " << r.losses_per_pb_year
          << ", \"model_loss_per_pb_year\": " << r.prediction.loss_per_pb_year
          << ", \"mttdl_markov_hours\": " << r.prediction.mttdl_hours
          << ", \"mttdl_renewal_hours\": " << r.prediction.mttdl_renewal_hours
          << ", \"repair_amplification\": " << r.repair_amplification
          << ", \"max_concurrent_rebuilds\": " << r.max_concurrent_rebuilds
          << ", \"max_aggregate_repair_mbps\": " << r.max_aggregate_repair_mbps
          << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }
  std::cout << "\nWrote " << path << "\n"
            << "Shape check: every case in-band (simulated losses inside the\n"
               "z=4 Poisson band of the renewal prediction); the Markov vs\n"
               "renewal MTTDL gap is the exponential-repair assumption, not\n"
               "a bug.\n";
  return diverged ? 1 : 0;
}
