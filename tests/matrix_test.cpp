// Matrix-over-GF tests: inversion, rank, selection, and the MDS-enabling
// properties of the Cauchy and systematic-Vandermonde constructions.

#include <gtest/gtest.h>

#include <functional>
#include <numeric>

#include "matrix/cauchy.h"
#include "matrix/matrix.h"
#include "matrix/vandermonde.h"
#include "util/rng.h"

namespace stair {
namespace {

Matrix random_matrix(const gf::Field& f, std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(f, rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      m.set(i, j, static_cast<std::uint32_t>(rng.next_u64() & f.max_element()));
  return m;
}

TEST(MatrixTest, IdentityMultiplication) {
  const auto& f = gf::field(8);
  Rng rng(1);
  const Matrix a = random_matrix(f, 5, 5, rng);
  const Matrix i = Matrix::identity(f, 5);
  EXPECT_EQ(a.mul(i), a);
  EXPECT_EQ(i.mul(a), a);
}

TEST(MatrixTest, InverseRoundTripsOnRandomNonsingularMatrices) {
  const auto& f = gf::field(8);
  Rng rng(2);
  std::size_t tested = 0;
  for (std::size_t trial = 0; trial < 40 && tested < 20; ++trial) {
    const Matrix a = random_matrix(f, 6, 6, rng);
    auto inv = a.inverse();
    if (!inv) continue;
    ++tested;
    EXPECT_EQ(a.mul(*inv), Matrix::identity(f, 6));
    EXPECT_EQ(inv->mul(a), Matrix::identity(f, 6));
  }
  EXPECT_GE(tested, 10u) << "random GF(256) matrices are almost surely invertible";
}

TEST(MatrixTest, SingularMatrixDetected) {
  const auto& f = gf::field(8);
  Matrix a(f, 3, 3);
  // Row 2 = row 0 + row 1 (XOR): singular by construction.
  const std::uint32_t rows[2][3] = {{1, 2, 3}, {4, 5, 6}};
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j) a.set(i, j, rows[i][j]);
  for (int j = 0; j < 3; ++j) a.set(2, j, rows[0][j] ^ rows[1][j]);
  EXPECT_FALSE(a.inverse().has_value());
  EXPECT_FALSE(a.is_invertible());
  EXPECT_EQ(a.rank(), 2u);
}

TEST(MatrixTest, RankOfRandomTallMatrix) {
  const auto& f = gf::field(8);
  Rng rng(3);
  const Matrix a = random_matrix(f, 8, 4, rng);
  EXPECT_LE(a.rank(), 4u);
  // Duplicate a column: rank of [a | a_col0] stays the same.
  Matrix b(f, 8, 5);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 4; ++j) b.set(i, j, a.at(i, j));
    b.set(i, 4, a.at(i, 0));
  }
  EXPECT_EQ(b.rank(), a.rank());
}

TEST(MatrixTest, SolveRecoversKnownVector) {
  const auto& f = gf::field(8);
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const Matrix a = random_matrix(f, 5, 5, rng);
    if (!a.is_invertible()) continue;
    std::vector<std::uint32_t> x(5);
    for (auto& v : x) v = static_cast<std::uint32_t>(rng.next_u64() & 0xff);
    const auto b = a.mul_vec(x);
    const auto solved = solve(a, b);
    ASSERT_TRUE(solved.has_value());
    EXPECT_EQ(*solved, x);
  }
}

TEST(MatrixTest, SelectAndConcat) {
  const auto& f = gf::field(8);
  Rng rng(5);
  const Matrix a = random_matrix(f, 4, 6, rng);
  const std::vector<std::size_t> rows{2, 0};
  const std::vector<std::size_t> cols{5, 1, 3};
  const Matrix s = a.select(rows, cols);
  ASSERT_EQ(s.rows(), 2u);
  ASSERT_EQ(s.cols(), 3u);
  EXPECT_EQ(s.at(0, 0), a.at(2, 5));
  EXPECT_EQ(s.at(1, 2), a.at(0, 3));

  const Matrix c = a.concat_cols(a);
  ASSERT_EQ(c.cols(), 12u);
  EXPECT_EQ(c.at(3, 7), a.at(3, 1));
}

class CauchyTest : public ::testing::TestWithParam<int> {};

TEST_P(CauchyTest, EverySquareSubmatrixNonsingular) {
  const auto& f = gf::field(GetParam());
  const std::size_t rows = 4, cols = 4;
  const Matrix c = cauchy_matrix(f, rows, cols);

  // Exhaust all square submatrices up to size 3, plus the full 4x4.
  for (std::size_t size = 1; size <= 3; ++size) {
    std::vector<std::size_t> rod(size, 0), cod(size, 0);
    std::function<void(std::size_t, std::size_t)> rec_r = [&](std::size_t depth,
                                                              std::size_t start) {
      if (depth == size) {
        std::function<void(std::size_t, std::size_t)> rec_c = [&](std::size_t d2,
                                                                  std::size_t s2) {
          if (d2 == size) {
            EXPECT_TRUE(c.select(rod, cod).is_invertible());
            return;
          }
          for (std::size_t j = s2; j < cols; ++j) {
            cod[d2] = j;
            rec_c(d2 + 1, j + 1);
          }
        };
        rec_c(0, 0);
        return;
      }
      for (std::size_t i = start; i < rows; ++i) {
        rod[depth] = i;
        rec_r(depth + 1, i + 1);
      }
    };
    rec_r(0, 0);
  }
  std::vector<std::size_t> all{0, 1, 2, 3};
  EXPECT_TRUE(c.select(all, all).is_invertible());
}

INSTANTIATE_TEST_SUITE_P(WordSizes, CauchyTest, ::testing::Values(4, 8, 16),
                         [](const auto& info) { return "w" + std::to_string(info.param); });

TEST(CauchyTest, RejectsOverlappingPointSets) {
  const auto& f = gf::field(8);
  const std::vector<std::uint32_t> x{1, 2}, y{2, 3};
  EXPECT_THROW(cauchy_matrix_from_points(f, x, y), std::invalid_argument);
}

TEST(CauchyTest, RejectsOversizedShape) {
  EXPECT_THROW(cauchy_matrix(gf::field(4), 10, 8), std::invalid_argument);
}

TEST(VandermondeTest, SystematicGeneratorHasIdentityPrefix) {
  const auto& f = gf::field(8);
  const Matrix g = systematic_vandermonde_generator(f, 4, 7);
  ASSERT_EQ(g.rows(), 4u);
  ASSERT_EQ(g.cols(), 7u);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_EQ(g.at(i, j), i == j ? 1u : 0u);
}

TEST(VandermondeTest, SystematicGeneratorIsMds) {
  const auto& f = gf::field(8);
  const std::size_t kappa = 4, eta = 8;
  const Matrix g = systematic_vandermonde_generator(f, kappa, eta);

  // MDS <=> every kappa columns of G are independent. Exhaust all C(8,4).
  std::vector<std::size_t> rows(kappa);
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<std::size_t> cols(kappa);
  std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t depth,
                                                          std::size_t start) {
    if (depth == kappa) {
      EXPECT_TRUE(g.select(rows, cols).is_invertible());
      return;
    }
    for (std::size_t j = start; j < eta; ++j) {
      cols[depth] = j;
      rec(depth + 1, j + 1);
    }
  };
  rec(0, 0);
}

}  // namespace
}  // namespace stair
