// Region (bulk) Galois-field operations — the Mult_XOR primitive of the paper.
//
// Mult_XOR(R1, R2, a): multiply region R1 by the w-bit constant a in GF(2^w)
// and XOR the product into region R2 (paper §5.3, after [Plank FAST'13]).
// All erasure-code throughput in this library reduces to calls here.
//
// Layout: a region is an array of w-bit symbols. For w = 8 that is plain
// bytes; for w = 16/32, little-endian words (region sizes must be multiples
// of w/8 bytes). For w = 4, two field elements are packed per byte and the
// kernel operates on both nibbles at once.
//
// Fast paths: every word size dispatches to runtime-selected split-table
// kernels (scalar / SSSE3 pshufb / AVX2 vpshufb — the technique GF-Complete's
// SPLIT implementations use) with per-coefficient tables cached across calls.
// Backend selection, overrides, and the kernel cache live in gf/kernel.h;
// all backends produce bit-identical results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "gf/gf.h"

namespace stair::gf {

/// dst[i] ^= a * src[i] for every symbol i (the paper's Mult_XOR).
/// src and dst must be the same size, a multiple of the symbol width.
void mult_xor_region(const Field& f, std::uint32_t a,
                     std::span<const std::uint8_t> src, std::span<std::uint8_t> dst);

/// dst[i] = a * src[i] (overwrites dst; never reads it, so exact aliasing
/// src == dst is allowed — partial overlap is not).
void mult_region(const Field& f, std::uint32_t a,
                 std::span<const std::uint8_t> src, std::span<std::uint8_t> dst);

/// dst[i] ^= src[i] — the a = 1 special case, kept separate because it
/// needs no tables and vectorizes trivially.
void xor_region(std::span<const std::uint8_t> src, std::span<std::uint8_t> dst);

/// True if the active backend (see gf/kernel.h) is a SIMD one.
bool has_simd_w8();

/// Cache-aware byte-slice size for splitting region work across
/// `participants` threads. Region ops are pointwise, so any 64-byte-granular
/// slicing is exact; this picks the slice so that
///  * there are at least ~2 slices per participant (load balance without a
///    work-stealing scheduler), and
///  * one slice of every one of the `touched_regions` regions a replay
///    references fits an L2-sized budget together (STAIR_STRIP_BYTES
///    overrides; same budget compiled-schedule strip-mining uses), so a
///    slice's working set stays cache-resident instead of streaming the
///    whole stripe through L3 per thread.
/// Returns a multiple of 64 in [64, region_bytes] (region_bytes if smaller).
std::size_t cache_aware_slice_bytes(std::size_t region_bytes, std::size_t participants,
                                    std::size_t touched_regions);

/// The cache budget behind cache_aware_slice_bytes and compiled-schedule
/// strip-mining: the combined footprint allowed for one strip of every
/// referenced region. Half a typical L2 by default so split tables and
/// bookkeeping fit alongside; STAIR_STRIP_BYTES overrides (read once).
std::size_t region_cache_budget();

}  // namespace stair::gf
