#include "util/stripe_io.h"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <string_view>
#include <thread>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define STAIR_HAVE_URING_SYSCALLS 1
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#endif

namespace stair::io {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kAuto: return "auto";
    case Backend::kThreads: return "threads";
    case Backend::kUring: return "uring";
  }
  return "?";
}

Backend backend_from_env() {
  const char* v = std::getenv("STAIR_IO_BACKEND");
  if (!v || !*v) return Backend::kAuto;
  const std::string_view s(v);
  if (s == "auto") return Backend::kAuto;
  if (s == "threads") return Backend::kThreads;
  if (s == "uring") return Backend::kUring;
  throw std::runtime_error("STAIR_IO_BACKEND: unknown value \"" + std::string(s) +
                           "\" (expected auto | threads | uring)");
}

namespace {

/// Strict boolean env parse: unset/empty -> false, 1/true/yes/on -> true,
/// 0/false/no/off -> false, anything else throws. A typo in an IO-mode knob
/// must not silently run the wrong benchmark configuration.
bool truthy_env(const char* name) {
  const char* v = std::getenv(name);
  if (!v || !*v) return false;
  const std::string_view s(v);
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  throw std::runtime_error(std::string(name) + ": unknown value \"" + std::string(s) +
                           "\" (expected 1/true/yes/on or 0/false/no/off)");
}

IoPhase& phase_slot() {
  thread_local IoPhase phase = IoPhase::kForeground;
  return phase;
}

std::uint64_t load_relaxed(const std::atomic<std::uint64_t>& a) {
  return a.load(std::memory_order_relaxed);
}

void bump(std::atomic<std::uint64_t>& a, std::uint64_t n = 1) {
  a.fetch_add(n, std::memory_order_relaxed);
}

/// Raises `hw` to at least `v` (relaxed CAS max — contended only by stats).
void raise_high_water(std::atomic<std::uint64_t>& hw, std::uint64_t v) {
  std::uint64_t cur = hw.load(std::memory_order_relaxed);
  while (cur < v && !hw.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// open(2) honoring OpenMode: a kDirect request (when the engine allows
/// direct at all) first tries O_DIRECT and falls back to a plain open when
/// the filesystem refuses — tmpfs/procfs style EINVAL — counting both
/// outcomes so benches and tests can see which mode actually engaged.
int open_with_mode(const char* path, int flags, OpenMode mode, bool allow_direct,
                   std::atomic<std::uint64_t>& direct_opens,
                   std::atomic<std::uint64_t>& direct_fallbacks) {
#ifdef O_DIRECT
  if (mode == OpenMode::kDirect && allow_direct) {
    const int fd = ::open(path, flags | O_DIRECT, 0644);
    if (fd >= 0) {
      bump(direct_opens);
      return fd;
    }
    bump(direct_fallbacks);
  }
#else
  (void)mode;
  (void)allow_direct;
  (void)direct_opens;
  (void)direct_fallbacks;
#endif
  return ::open(path, flags, 0644);
}

}  // namespace

bool direct_from_env() { return truthy_env("STAIR_IO_DIRECT"); }

bool sqpoll_from_env() { return truthy_env("STAIR_IO_SQPOLL"); }

IoPhase current_phase() { return phase_slot(); }

PhaseScope::PhaseScope(IoPhase phase) : prev_(phase_slot()) { phase_slot() = phase; }

PhaseScope::~PhaseScope() { phase_slot() = prev_; }

int Engine::open_read(const std::string& path, OpenMode mode) {
  return open_with_mode(path.c_str(), O_RDONLY | O_CLOEXEC, mode, options_.direct,
                        counters_.direct_opens, counters_.direct_fallbacks);
}

int Engine::open_write(const std::string& path, OpenMode mode) {
  return open_with_mode(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, mode,
                        options_.direct, counters_.direct_opens,
                        counters_.direct_fallbacks);
}

int Engine::open_update(const std::string& path, OpenMode mode) {
  return open_with_mode(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, mode,
                        options_.direct, counters_.direct_opens,
                        counters_.direct_fallbacks);
}

void Engine::close(int fd) {
  if (fd >= 0) ::close(fd);
}

std::uint64_t Engine::file_size(int fd) const {
  struct stat st;
  if (::fstat(fd, &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

int Engine::truncate(int fd, std::uint64_t size) {
  return ::ftruncate(fd, static_cast<off_t>(size)) == 0 ? 0 : errno;
}

void Engine::read_fixed(int fd, std::uint64_t offset, std::span<std::uint8_t> buf,
                        int buf_index, Callback cb) {
  // Base path: no registration support, every fixed request degrades.
  (void)buf_index;
  bump(counters_.fixed_fallbacks);
  read(fd, offset, buf, std::move(cb));
}

void Engine::write_fixed(int fd, std::uint64_t offset,
                         std::span<const std::uint8_t> buf, int buf_index,
                         Callback cb) {
  (void)buf_index;
  bump(counters_.fixed_fallbacks);
  write(fd, offset, buf, std::move(cb));
}

int Engine::register_buffers(std::span<const std::span<std::uint8_t>> regions) {
  (void)regions;
  return ENOTSUP;
}

void Engine::unregister_buffers() {}

int Engine::register_files(std::span<const int> fds) {
  (void)fds;
  return ENOTSUP;
}

void Engine::unregister_files() {}

Engine::Stats Engine::stats() const {
  Stats s;
  s.reads = load_relaxed(counters_.reads);
  s.writes = load_relaxed(counters_.writes);
  s.fixed_reads = load_relaxed(counters_.fixed_reads);
  s.fixed_writes = load_relaxed(counters_.fixed_writes);
  s.fixed_fallbacks = load_relaxed(counters_.fixed_fallbacks);
  s.direct_opens = load_relaxed(counters_.direct_opens);
  s.direct_fallbacks = load_relaxed(counters_.direct_fallbacks);
  return s;
}

namespace {

/// Full-transfer pread loop: retries short reads, stops at EOF or error.
Result read_full(int fd, std::uint64_t offset, std::span<std::uint8_t> buf) {
  std::size_t done = 0;
  while (done < buf.size()) {
    const ssize_t n = ::pread(fd, buf.data() + done, buf.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return {errno, done};
    }
    if (n == 0) break;  // EOF
    done += static_cast<std::size_t>(n);
  }
  return {0, done};
}

/// Full-transfer pwrite loop.
Result write_full(int fd, std::uint64_t offset, std::span<const std::uint8_t> buf) {
  std::size_t done = 0;
  while (done < buf.size()) {
    const ssize_t n = ::pwrite(fd, buf.data() + done, buf.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return {errno, done};
    }
    done += static_cast<std::size_t>(n);
  }
  return {0, done};
}

// ---------------------------------------------------------------------------
// Thread backend: a small pool of pread/pwrite workers draining a queue.
// ---------------------------------------------------------------------------

class ThreadEngine : public Engine {
 public:
  explicit ThreadEngine(Options options) : Engine(options) {
    const std::size_t n = options.threads ? options.threads : 1;
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~ThreadEngine() override {
    flush();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  Backend backend() const override { return Backend::kThreads; }

  void read(int fd, std::uint64_t offset, std::span<std::uint8_t> buf,
            Callback cb) override {
    bump(counters_.reads);
    enqueue({false, fd, offset, buf.data(), nullptr, buf.size(), std::move(cb)});
  }

  void write(int fd, std::uint64_t offset, std::span<const std::uint8_t> buf,
             Callback cb) override {
    bump(counters_.writes);
    enqueue({true, fd, offset, nullptr, buf.data(), buf.size(), std::move(cb)});
  }

  void flush() override {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  }

 private:
  struct Op {
    bool is_write;
    int fd;
    std::uint64_t offset;
    std::uint8_t* rbuf;
    const std::uint8_t* wbuf;
    std::size_t len;
    Callback cb;
  };

  void enqueue(Op op) {
    // Notify under the lock: an unlocked notify can touch the cv after a
    // racing completion let flush() return and the destructor tear it down.
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(op));
    cv_.notify_one();
  }

  void worker_loop() {
    for (;;) {
      Op op;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ && drained
        op = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
      }
      const Result r = op.is_write ? write_full(op.fd, op.offset, {op.wbuf, op.len})
                                   : read_full(op.fd, op.offset, {op.rbuf, op.len});
      op.cb(r);
      {
        // Notify under the lock (see enqueue): after --active_ reaches the
        // flush predicate, the engine may be destroyed.
        std::lock_guard<std::mutex> lock(mu_);
        --active_;
        idle_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_, idle_cv_;
  std::deque<Op> queue_;   // guarded by mu_
  std::size_t active_ = 0; // guarded by mu_
  bool stop_ = false;      // guarded by mu_
};

// ---------------------------------------------------------------------------
// io_uring backend, through raw syscalls (no liburing). One submission mutex,
// one completion-reaper thread dispatching callbacks; short transfers are
// continued from the reaper so callers always see whole-or-nothing results.
//
// Raw-device additions: fixed buffers (IORING_REGISTER_BUFFERS +
// READ_FIXED/WRITE_FIXED), fixed files (IORING_REGISTER_FILES +
// IOSQE_FIXED_FILE), and opt-in SQPOLL. Each degrades independently: an
// invalid buffer index takes the plain opcode, an unregistered fd submits by
// number, and a kernel that refuses IORING_SETUP_SQPOLL gets a normal ring.
// ---------------------------------------------------------------------------

#ifdef STAIR_HAVE_URING_SYSCALLS

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete, unsigned flags) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, nullptr, 0));
}

int sys_io_uring_register(int fd, unsigned opcode, void* arg, unsigned nr_args) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

class UringEngine : public Engine {
 public:
  /// Throws std::runtime_error when the ring cannot be set up (caller falls
  /// back to the thread backend).
  explicit UringEngine(Options options) : Engine(options) {
    unsigned entries = 8;
    while (entries < options.queue_depth && entries < 4096) entries *= 2;
    std::memset(&params_, 0, sizeof params_);
    if (options.sqpoll) {
      // Ask for a kernel submission poller; if this kernel (or sandbox)
      // refuses, retry as a normal ring — SQPOLL is a perf mode, never a
      // functional requirement.
      params_.flags = IORING_SETUP_SQPOLL;
      params_.sq_thread_idle = 100;  // ms before the poller naps
      ring_fd_ = sys_io_uring_setup(entries, &params_);
      if (ring_fd_ >= 0) {
        sqpoll_active_ = true;
      } else {
        std::memset(&params_, 0, sizeof params_);
      }
    }
    if (ring_fd_ < 0) ring_fd_ = sys_io_uring_setup(entries, &params_);
    if (ring_fd_ < 0) throw std::runtime_error("io_uring_setup failed");

    sq_ring_bytes_ = params_.sq_off.array + params_.sq_entries * sizeof(unsigned);
    cq_ring_bytes_ = params_.cq_off.cqes + params_.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap = params_.features & IORING_FEAT_SINGLE_MMAP;
    if (single_mmap) sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);

    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    cq_ring_ = single_mmap
                   ? sq_ring_
                   : ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    sqes_ = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, params_.sq_entries * sizeof(io_uring_sqe), PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sq_ring_ == MAP_FAILED || cq_ring_ == MAP_FAILED ||
        sqes_ == static_cast<void*>(MAP_FAILED)) {
      teardown();
      throw std::runtime_error("io_uring ring mmap failed");
    }

    auto* sq = static_cast<std::uint8_t*>(sq_ring_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + params_.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + params_.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + params_.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params_.sq_off.array);
    sq_flags_ = reinterpret_cast<unsigned*>(sq + params_.sq_off.flags);
    auto* cq = static_cast<std::uint8_t*>(cq_ring_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + params_.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + params_.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + params_.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params_.cq_off.cqes);

    // The cq holds 2x sq_entries; capping in-flight below it means a cqe slot
    // always exists, so completions can never be dropped on overflow.
    max_in_flight_ = params_.cq_entries - 1;
    reaper_ = std::thread([this] { reaper_loop(); });
  }

  ~UringEngine() override {
    flush();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      push_sqe_locked(IORING_OP_NOP, -1, 0, nullptr, 0, nullptr, -1, 0);  // wake the reaper
    }
    reaper_.join();
    teardown();
  }

  Backend backend() const override { return Backend::kUring; }

  void read(int fd, std::uint64_t offset, std::span<std::uint8_t> buf,
            Callback cb) override {
    submit(false, fd, offset, buf.data(), buf.size(), -1, false, std::move(cb));
  }

  void write(int fd, std::uint64_t offset, std::span<const std::uint8_t> buf,
             Callback cb) override {
    submit(true, fd, offset, const_cast<std::uint8_t*>(buf.data()), buf.size(), -1,
           false, std::move(cb));
  }

  void read_fixed(int fd, std::uint64_t offset, std::span<std::uint8_t> buf,
                  int buf_index, Callback cb) override {
    submit(false, fd, offset, buf.data(), buf.size(), buf_index, true, std::move(cb));
  }

  void write_fixed(int fd, std::uint64_t offset, std::span<const std::uint8_t> buf,
                   int buf_index, Callback cb) override {
    submit(true, fd, offset, const_cast<std::uint8_t*>(buf.data()), buf.size(),
           buf_index, true, std::move(cb));
  }

  void flush() override {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }

  int register_buffers(std::span<const std::span<std::uint8_t>> regions) override {
    if (!options_.fixed_buffers) return ENOTSUP;
    std::lock_guard<std::mutex> lock(mu_);
    if (!regions_.empty()) {
      sys_io_uring_register(ring_fd_, IORING_UNREGISTER_BUFFERS, nullptr, 0);
      regions_.clear();
      n_registered_buffers_.store(0, std::memory_order_relaxed);
    }
    if (regions.empty()) return 0;
    std::vector<iovec> iov(regions.size());
    for (std::size_t i = 0; i < regions.size(); ++i)
      iov[i] = {regions[i].data(), regions[i].size()};
    if (sys_io_uring_register(ring_fd_, IORING_REGISTER_BUFFERS, iov.data(),
                              static_cast<unsigned>(iov.size())) != 0)
      return errno;  // EBUSY/ENOMEM/...: caller proceeds unregistered
    regions_.assign(regions.begin(), regions.end());
    n_registered_buffers_.store(regions.size(), std::memory_order_relaxed);
    return 0;
  }

  void unregister_buffers() override {
    std::lock_guard<std::mutex> lock(mu_);
    if (regions_.empty()) return;
    sys_io_uring_register(ring_fd_, IORING_UNREGISTER_BUFFERS, nullptr, 0);
    regions_.clear();
    n_registered_buffers_.store(0, std::memory_order_relaxed);
  }

  int register_files(std::span<const int> fds) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (!fd_index_.empty()) {
      sys_io_uring_register(ring_fd_, IORING_UNREGISTER_FILES, nullptr, 0);
      fd_index_.clear();
      n_registered_files_.store(0, std::memory_order_relaxed);
    }
    if (fds.empty()) return 0;
    std::vector<std::int32_t> raw(fds.begin(), fds.end());
    if (sys_io_uring_register(ring_fd_, IORING_REGISTER_FILES, raw.data(),
                              static_cast<unsigned>(raw.size())) != 0)
      return errno;
    fd_index_.reserve(fds.size());
    for (std::size_t i = 0; i < fds.size(); ++i)
      fd_index_.emplace_back(fds[i], static_cast<int>(i));
    n_registered_files_.store(fds.size(), std::memory_order_relaxed);
    return 0;
  }

  void unregister_files() override {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_index_.empty()) return;
    sys_io_uring_register(ring_fd_, IORING_UNREGISTER_FILES, nullptr, 0);
    fd_index_.clear();
    n_registered_files_.store(0, std::memory_order_relaxed);
  }

  Stats stats() const override {
    Stats s = Engine::stats();
    s.sq_depth_high_water = load_relaxed(sq_depth_hw_);
    s.cq_backlog_high_water = load_relaxed(cq_backlog_hw_);
    s.enters = load_relaxed(enters_);
    s.sqpoll_wakeups = load_relaxed(sqpoll_wakeups_);
    s.registered_buffers = n_registered_buffers_.load(std::memory_order_relaxed);
    s.registered_files = n_registered_files_.load(std::memory_order_relaxed);
    s.sqpoll_active = sqpoll_active_;
    return s;
  }

 private:
  // One logical transfer; lives on the heap until fully retired. `done`
  // tracks bytes from completed sqes so short transfers continue where they
  // stopped. buf_index/file_index are the RESOLVED registrations (-1 =
  // plain), reused verbatim by short-transfer continuations.
  struct Op {
    bool is_write;
    int fd;
    std::uint64_t offset;
    std::uint8_t* buf;
    std::size_t len;
    std::size_t done = 0;
    int buf_index = -1;
    int file_index = -1;
    Callback cb;
  };

  void teardown() {
    if (sqes_ && sqes_ != static_cast<void*>(MAP_FAILED))
      ::munmap(sqes_, params_.sq_entries * sizeof(io_uring_sqe));
    if (cq_ring_ && cq_ring_ != MAP_FAILED && cq_ring_ != sq_ring_)
      ::munmap(cq_ring_, cq_ring_bytes_);
    if (sq_ring_ && sq_ring_ != MAP_FAILED) ::munmap(sq_ring_, sq_ring_bytes_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  // Fills one sqe and submits it to the kernel. Caller holds mu_.
  //
  // Normal ring: the enter() consumes the sqe immediately, so the sq ring
  // cannot fill up under the lock and pushes from the reaper (continuations)
  // can never block. SQPOLL ring: the kernel poller consumes sqes on its
  // own clock, so this waits for sq space (kernel progress does not depend
  // on any of our threads, so spinning under mu_ is deadlock-free), then
  // publishes the sqe with no syscall at all unless the poller napped and
  // needs an IORING_ENTER_SQ_WAKEUP kick.
  //
  // Returns 0 or the errno the submission ultimately failed with — a
  // dropped submission must not be silent (its op would never complete and
  // flush() would hang on in_flight_ forever).
  int push_sqe_locked(unsigned op, int fd, std::uint64_t offset, void* addr,
                      std::size_t len, Op* user, int buf_index, unsigned sqe_flags) {
    const unsigned tail = *sq_tail_;
    if (sqpoll_active_) {
      while (tail - __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE) >= params_.sq_entries)
        std::this_thread::yield();
    }
    const unsigned idx = tail & sq_mask_;
    io_uring_sqe& sqe = sqes_[idx];
    std::memset(&sqe, 0, sizeof sqe);
    sqe.opcode = static_cast<std::uint8_t>(op);
    sqe.flags = static_cast<std::uint8_t>(sqe_flags);
    sqe.fd = fd;
    sqe.off = offset;
    sqe.addr = reinterpret_cast<std::uint64_t>(addr);
    sqe.len = static_cast<unsigned>(len);
    if (buf_index >= 0) sqe.buf_index = static_cast<std::uint16_t>(buf_index);
    sqe.user_data = reinterpret_cast<std::uint64_t>(user);
    sq_array_[idx] = idx;
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
    if (sqpoll_active_) {
      // Submission errors surface as cqes in this mode; the only syscall is
      // the occasional poller wakeup.
      if (__atomic_load_n(sq_flags_, __ATOMIC_ACQUIRE) & IORING_SQ_NEED_WAKEUP) {
        bump(enters_);
        bump(sqpoll_wakeups_);
        for (;;) {
          if (sys_io_uring_enter(ring_fd_, 1, 0, IORING_ENTER_SQ_WAKEUP) >= 0) break;
          if (errno == EINTR || errno == EBUSY || errno == EAGAIN) continue;
          return errno;
        }
      }
      return 0;
    }
    for (;;) {
      bump(enters_);
      if (sys_io_uring_enter(ring_fd_, 1, 0, 0) >= 0) return 0;
      // EBUSY/EAGAIN: the kernel wants completions reaped (cq backlog) or
      // memory freed first — the reaper drains concurrently, so yield and
      // retry. Anything else is a hard failure the caller must surface.
      if (errno == EINTR) continue;
      if (errno == EBUSY || errno == EAGAIN) {
        std::this_thread::yield();
        continue;
      }
      return errno;
    }
  }

  // push_sqe_locked for a transfer op. Returns the submission errno (0 on
  // success); on failure the CALLER must finish(op, ...) after releasing
  // mu_ — finishing takes the lock and runs the callback.
  int push_op_locked(Op* op, std::uint64_t offset, std::uint8_t* buf, std::size_t len) {
    unsigned opcode;
    if (op->buf_index >= 0)
      opcode = op->is_write ? IORING_OP_WRITE_FIXED : IORING_OP_READ_FIXED;
    else
      opcode = op->is_write ? IORING_OP_WRITE : IORING_OP_READ;
    const int fd = op->file_index >= 0 ? op->file_index : op->fd;
    const unsigned flags = op->file_index >= 0 ? IOSQE_FIXED_FILE : 0;
    return push_sqe_locked(opcode, fd, offset, buf, len, op, op->buf_index, flags);
  }

  void submit(bool is_write, int fd, std::uint64_t offset, std::uint8_t* buf,
              std::size_t len, int want_buf_index, bool fixed_call, Callback cb) {
    bump(is_write ? counters_.writes : counters_.reads);
    auto* op = new Op{is_write, fd, offset, buf, len, 0, -1, -1, std::move(cb)};
    int err;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Keep a free cqe slot per transfer (see max_in_flight_) — but never
      // block the reaper thread itself: callbacks run there and may chain new
      // submissions, and a parked reaper retires nothing. Completion-driven
      // overshoot is absorbed by the kernel's no-drop overflow queue.
      if (std::this_thread::get_id() != reaper_.get_id())
        idle_cv_.wait(lock, [this] { return in_flight_ < max_in_flight_; });
      ++in_flight_;
      raise_high_water(sq_depth_hw_, in_flight_);
      // Resolve registrations under mu_ (register_* mutate under it too).
      // An index that is out of range or whose span does not contain the
      // transfer degrades to the plain opcode — counted, never an error.
      if (want_buf_index >= 0 &&
          static_cast<std::size_t>(want_buf_index) < regions_.size()) {
        const auto& region = regions_[static_cast<std::size_t>(want_buf_index)];
        if (buf >= region.data() && buf + len <= region.data() + region.size())
          op->buf_index = want_buf_index;
      }
      if (fixed_call) {
        if (op->buf_index >= 0)
          bump(is_write ? counters_.fixed_writes : counters_.fixed_reads);
        else
          bump(counters_.fixed_fallbacks);
      }
      for (const auto& [f, idx] : fd_index_)
        if (f == fd) {
          op->file_index = idx;
          break;
        }
      if (broken_) {
        err = EIO;  // the reaper found the ring dead; nothing will complete
      } else {
        live_.push_back(op);
        err = push_op_locked(op, offset, buf, len);
      }
    }
    if (err != 0) finish(op, {err, 0});
  }

  void reaper_loop() {
    for (;;) {
      unsigned head = *cq_head_;
      const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      if (head == tail) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (stop_ && in_flight_ == 0) return;
        }
        const int rc = sys_io_uring_enter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
        if (rc < 0 && errno != EINTR && errno != EAGAIN && errno != EBUSY) {
          // The ring is broken (ENOMEM, EBADF, ...): no more cqes will ever
          // arrive, so fail every live op out — leaving them would hang the
          // caller's flush()/drain forever instead of surfacing an error.
          fail_all_live(errno);
          return;
        }
        continue;
      }
      raise_high_water(cq_backlog_hw_, tail - head);
      const io_uring_cqe cqe = cqes_[head & cq_mask_];
      __atomic_store_n(cq_head_, head + 1, __ATOMIC_RELEASE);
      Op* op = reinterpret_cast<Op*>(cqe.user_data);
      if (!op) continue;  // stop NOP: not a transfer, nothing to retire
      // The op's fields were written by the submitter under mu_ and handed
      // over through the kernel ring, whose ordering the memory model (and
      // TSan) cannot see. Taking mu_ once per completion recreates the
      // submit-unlock -> here edge explicitly before the fields are read.
      { std::lock_guard<std::mutex> lock(mu_); }
      if (cqe.res < 0) {
        finish(op, {-cqe.res, op->done});
      } else {
        op->done += static_cast<std::size_t>(cqe.res);
        if (cqe.res == 0 || op->done >= op->len) {
          finish(op, {0, op->done});  // EOF or complete
        } else {
          // Short transfer: continue the remainder in-place (same in-flight
          // slot, so this never waits).
          int err;
          {
            std::lock_guard<std::mutex> lock(mu_);
            err = push_op_locked(op, op->offset + op->done, op->buf + op->done,
                                 op->len - op->done);
          }
          if (err != 0) finish(op, {err, op->done});
        }
      }
    }
  }

  void finish(Op* op, const Result& r) {
    op->cb(r);
    delete op;
    // Notify under the lock: once in_flight_ hits the flush predicate the
    // engine may be destroyed, so the cv must not be touched after unlock.
    std::lock_guard<std::mutex> lock(mu_);
    std::erase(live_, op);
    --in_flight_;
    idle_cv_.notify_all();
  }

  void fail_all_live(int err) {
    std::vector<Op*> doomed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      broken_ = true;  // later submits fail fast instead of being orphaned
      doomed.swap(live_);
    }
    for (Op* op : doomed) finish(op, {err, op->done});
  }

  io_uring_params params_{};
  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sq_ring_bytes_ = 0, cq_ring_bytes_ = 0;
  unsigned *sq_head_ = nullptr, *sq_tail_ = nullptr, *sq_array_ = nullptr;
  unsigned* sq_flags_ = nullptr;
  unsigned *cq_head_ = nullptr, *cq_tail_ = nullptr;
  unsigned sq_mask_ = 0, cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  bool sqpoll_active_ = false;  // set in ctor, immutable after

  std::mutex mu_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;  // guarded by mu_
  std::vector<Op*> live_;      // guarded by mu_; ops awaiting completion
  std::vector<std::span<std::uint8_t>> regions_;     // guarded by mu_
  std::vector<std::pair<int, int>> fd_index_;        // guarded by mu_; fd -> index
  std::size_t max_in_flight_ = 0;
  bool stop_ = false;    // guarded by mu_
  bool broken_ = false;  // guarded by mu_; reaper hit a hard ring error
  std::thread reaper_;

  std::atomic<std::uint64_t> sq_depth_hw_{0}, cq_backlog_hw_{0};
  std::atomic<std::uint64_t> enters_{0}, sqpoll_wakeups_{0};
  std::atomic<std::size_t> n_registered_buffers_{0}, n_registered_files_{0};
};

#endif  // STAIR_HAVE_URING_SYSCALLS

}  // namespace

bool Engine::uring_supported() {
#if defined(STAIR_HAVE_URING_SYSCALLS) && defined(IORING_REGISTER_PROBE)
  static const bool supported = [] {
    io_uring_params p;
    std::memset(&p, 0, sizeof p);
    const int fd = sys_io_uring_setup(4, &p);
    if (fd < 0) return false;
    // setup succeeding is not enough: the engine needs IORING_OP_READ/WRITE
    // (5.6+), so probe the opcodes. Kernels too old for the probe (also
    // 5.6+) lack the opcodes too and correctly fall back to threads. The
    // *_FIXED variants predate READ/WRITE (5.1), so they need no probe.
    bool ok = false;
    std::vector<std::uint8_t> mem(
        sizeof(io_uring_probe) + IORING_OP_LAST * sizeof(io_uring_probe_op), 0);
    auto* probe = reinterpret_cast<io_uring_probe*>(mem.data());
    if (sys_io_uring_register(fd, IORING_REGISTER_PROBE, probe, IORING_OP_LAST) == 0) {
      const auto op_supported = [&](unsigned op) {
        return op < probe->ops_len && (probe->ops[op].flags & IO_URING_OP_SUPPORTED);
      };
      ok = op_supported(IORING_OP_READ) && op_supported(IORING_OP_WRITE) &&
           op_supported(IORING_OP_NOP);
    }
    ::close(fd);
    return ok;
  }();
  return supported;
#else
  return false;
#endif
}

std::unique_ptr<Engine> Engine::create(Backend requested) {
  Options options;
  options.sqpoll = sqpoll_from_env();
  return create(requested, options);
}

std::unique_ptr<Engine> Engine::create(Backend requested, Options options) {
#ifdef STAIR_HAVE_URING_SYSCALLS
  if (requested != Backend::kThreads && uring_supported()) {
    try {
      return std::make_unique<UringEngine>(options);
    } catch (...) {
      // Probe raced a sandbox/rlimit change; the thread backend always works.
    }
  }
#endif
  (void)requested;
  return std::make_unique<ThreadEngine>(options);
}

// ---------------------------------------------------------------------------
// FaultInjectingEngine
// ---------------------------------------------------------------------------

namespace {

std::string final_component(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

FaultInjectingEngine::FaultInjectingEngine(std::unique_ptr<Engine> inner)
    : inner_(std::move(inner)) {}

FaultInjectingEngine::~FaultInjectingEngine() = default;

void FaultInjectingEngine::add_fault(Fault fault) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.push_back(std::move(fault));
}

void FaultInjectingEngine::clear_faults() {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
}

std::uint64_t FaultInjectingEngine::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

void FaultInjectingEngine::set_reject_direct(bool reject) {
  reject_direct_.store(reject, std::memory_order_relaxed);
}

OpenMode FaultInjectingEngine::effective_mode(OpenMode requested) {
  if (requested == OpenMode::kDirect &&
      reject_direct_.load(std::memory_order_relaxed)) {
    // Simulated "filesystem refuses O_DIRECT": downgrade before the inner
    // engine sees the request, and surface the fallback in stats() exactly
    // like a real EINVAL would.
    bump(counters_.direct_fallbacks);
    return OpenMode::kBuffered;
  }
  return requested;
}

int FaultInjectingEngine::record_open(int fd, const std::string& path) {
  if (fd >= 0) {
    std::lock_guard<std::mutex> lock(mu_);
    files_.emplace_back(fd, final_component(path));
  }
  return fd;
}

int FaultInjectingEngine::open_read(const std::string& path, OpenMode mode) {
  return record_open(inner_->open_read(path, effective_mode(mode)), path);
}

int FaultInjectingEngine::open_write(const std::string& path, OpenMode mode) {
  return record_open(inner_->open_write(path, effective_mode(mode)), path);
}

int FaultInjectingEngine::open_update(const std::string& path, OpenMode mode) {
  return record_open(inner_->open_update(path, effective_mode(mode)), path);
}

void FaultInjectingEngine::close(int fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::erase_if(files_, [fd](const auto& e) { return e.first == fd; });
  }
  inner_->close(fd);
}

std::optional<Fault> FaultInjectingEngine::match(bool is_write, int fd,
                                                 std::uint64_t offset,
                                                 std::uint64_t length) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string* name = nullptr;
  for (const auto& [f, n] : files_)
    if (f == fd) {
      name = &n;
      break;
    }
  if (!name) return std::nullopt;
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    const Fault& rule = faults_[i];
    const bool write_kind =
        rule.kind == Fault::Kind::kWriteError || rule.kind == Fault::Kind::kTornWrite;
    if (write_kind != is_write || rule.file != *name) continue;
    if (rule.phase && *rule.phase != current_phase()) continue;
    const std::uint64_t rule_end =
        rule.length == ~0ULL ? ~0ULL : rule.offset + rule.length;
    if (offset + length <= rule.offset || offset >= rule_end) continue;
    Fault hit = rule;
    ++hits_;
    if (rule.once) faults_.erase(faults_.begin() + static_cast<std::ptrdiff_t>(i));
    return hit;
  }
  return std::nullopt;
}

void FaultInjectingEngine::read(int fd, std::uint64_t offset,
                                std::span<std::uint8_t> buf, Callback cb) {
  const auto fault = match(false, fd, offset, buf.size());
  if (!fault) {
    inner_->read(fd, offset, buf, std::move(cb));
    return;
  }
  switch (fault->kind) {
    case Fault::Kind::kReadError:
      cb(Result{fault->error, 0});
      return;
    case Fault::Kind::kShortRead: {
      // Deliver a genuine prefix, then under-report: the bytes the "device"
      // managed before giving up.
      const std::size_t keep = std::min(fault->keep_bytes, buf.size());
      inner_->read(fd, offset, buf, [cb = std::move(cb), keep](const Result& r) {
        cb(Result{0, std::min(keep, r.bytes)});
      });
      return;
    }
    default:  // write kinds never match reads
      inner_->read(fd, offset, buf, std::move(cb));
      return;
  }
}

void FaultInjectingEngine::read_fixed(int fd, std::uint64_t offset,
                                      std::span<std::uint8_t> buf, int buf_index,
                                      Callback cb) {
  const auto fault = match(false, fd, offset, buf.size());
  if (!fault) {
    inner_->read_fixed(fd, offset, buf, buf_index, std::move(cb));
    return;
  }
  switch (fault->kind) {
    case Fault::Kind::kReadError:
      cb(Result{fault->error, 0});
      return;
    case Fault::Kind::kShortRead: {
      const std::size_t keep = std::min(fault->keep_bytes, buf.size());
      inner_->read_fixed(fd, offset, buf, buf_index,
                         [cb = std::move(cb), keep](const Result& r) {
                           cb(Result{0, std::min(keep, r.bytes)});
                         });
      return;
    }
    default:
      inner_->read_fixed(fd, offset, buf, buf_index, std::move(cb));
      return;
  }
}

void FaultInjectingEngine::write(int fd, std::uint64_t offset,
                                 std::span<const std::uint8_t> buf, Callback cb) {
  const auto fault = match(true, fd, offset, buf.size());
  if (!fault) {
    inner_->write(fd, offset, buf, std::move(cb));
    return;
  }
  switch (fault->kind) {
    case Fault::Kind::kWriteError:
      cb(Result{fault->error, 0});
      return;
    case Fault::Kind::kTornWrite: {
      // The prefix lands; the report claims everything did. The lie is what
      // per-chunk checksums exist to catch on the next read.
      const std::size_t keep = std::min(fault->keep_bytes, buf.size());
      const std::size_t full = buf.size();
      if (keep == 0) {
        cb(Result{0, full});
        return;
      }
      inner_->write(fd, offset, buf.first(keep),
                    [cb = std::move(cb), full](const Result&) { cb(Result{0, full}); });
      return;
    }
    default:
      inner_->write(fd, offset, buf, std::move(cb));
      return;
  }
}

void FaultInjectingEngine::write_fixed(int fd, std::uint64_t offset,
                                       std::span<const std::uint8_t> buf,
                                       int buf_index, Callback cb) {
  const auto fault = match(true, fd, offset, buf.size());
  if (!fault) {
    inner_->write_fixed(fd, offset, buf, buf_index, std::move(cb));
    return;
  }
  switch (fault->kind) {
    case Fault::Kind::kWriteError:
      cb(Result{fault->error, 0});
      return;
    case Fault::Kind::kTornWrite: {
      const std::size_t keep = std::min(fault->keep_bytes, buf.size());
      const std::size_t full = buf.size();
      if (keep == 0) {
        cb(Result{0, full});
        return;
      }
      inner_->write_fixed(
          fd, offset, buf.first(keep), buf_index,
          [cb = std::move(cb), full](const Result&) { cb(Result{0, full}); });
      return;
    }
    default:
      inner_->write_fixed(fd, offset, buf, buf_index, std::move(cb));
      return;
  }
}

Engine::Stats FaultInjectingEngine::stats() const {
  Stats s = inner_->stats();
  // Direct rejections simulated by this decorator never reached the inner
  // engine; add them so the pipeline sees one coherent fallback count.
  s.direct_fallbacks += load_relaxed(counters_.direct_fallbacks);
  return s;
}

}  // namespace stair::io
