#include "stair/io_pipeline.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>

#include <unistd.h>

#include "util/thread_pool.h"

namespace stair {

std::vector<std::size_t> parse_coverage_list(const std::string& text) {
  std::vector<std::size_t> values;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t next = text.find(',', pos);
    if (next == std::string::npos) next = text.size();
    values.push_back(std::strtoull(text.substr(pos, next - pos).c_str(), nullptr, 10));
    pos = next + 1;
  }
  return values;
}

std::uint64_t content_hash64(std::span<const std::uint8_t> bytes) {
  // 8 input bytes per multiply+rotate round; sectors are hashed on the hot
  // pipeline path, so this must keep pace with the region kernels.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ (bytes.size() * 0x100000001b3ULL);
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t w;
    std::memcpy(&w, bytes.data() + i, 8);
    h ^= w;
    h *= 0xff51afd7ed558ccdULL;
    h = (h << 31) | (h >> 33);
  }
  std::uint64_t tail = 0;
  for (int k = 0; i < bytes.size(); ++i, k += 8) tail |= std::uint64_t{bytes[i]} << k;
  h ^= tail ^ 0xc4ceb9fe1a85ec53ULL;
  h *= 0xc4ceb9fe1a85ec53ULL;
  return h ^ (h >> 29);
}

// Stripes retire out of order; folding their already-computed hashes in
// index order stays deterministic and never rereads content bytes.
std::uint64_t combine_hashes(std::span<const std::uint64_t> hashes) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(hashes.size() * 8);
  for (std::uint64_t h : hashes)
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(h >> (8 * i)));
  return content_hash64(bytes);
}

// ---------------------------------------------------------------------------
// StripeStore
// ---------------------------------------------------------------------------

std::string StripeStore::device_path(const std::string& dir, std::size_t device) {
  char name[32];
  std::snprintf(name, sizeof name, "dev_%02zu.bin", device);
  return dir + "/" + name;
}

std::string StripeStore::manifest_path(const std::string& dir) {
  return dir + "/manifest.txt";
}

void StripeStore::save(const std::string& dir) const {
  // Write-aside + rename: the manifest is the store's recovery point, so it
  // must never be observable half-written. The temp name is unique per call
  // (concurrent savers — e.g. a repair pass racing another — each rename a
  // complete file; last rename wins atomically).
  static std::atomic<std::uint64_t> save_seq{0};
  const std::string path = manifest_path(dir);
  const std::string tmp =
      path + ".tmp" + std::to_string(save_seq.fetch_add(1, std::memory_order_relaxed)) +
      "." + std::to_string(static_cast<unsigned long>(::getpid()));
  std::ofstream out(tmp, std::ios::trunc);
  if (!out) throw std::runtime_error("StripeStore: cannot write " + tmp);
  out << "stair_store 1\n"
      << "n " << cfg.n << "\nr " << cfg.r << "\nm " << cfg.m << "\ne ";
  for (std::size_t i = 0; i < cfg.e.size(); ++i) out << (i ? "," : "") << cfg.e[i];
  if (cfg.e.empty()) out << "-";
  out << "\nw " << cfg.w << "\nsymbol " << symbol_bytes << "\nblock " << block_bytes
      << "\nfile_size " << file_size << "\nstripes " << stripes << "\ndata_checksum "
      << data_checksum << "\n";
  // One line per (stripe, device) chunk: its r sector checksums in row order.
  for (std::size_t s = 0; s < stripes; ++s)
    for (std::size_t j = 0; j < cfg.n; ++j) {
      out << "chunk " << s << " " << j;
      for (std::size_t i = 0; i < cfg.r; ++i)
        out << " " << sector_checksums[(s * cfg.n + j) * cfg.r + i];
      out << "\n";
    }
  out.flush();
  out.close();
  if (!out) {
    std::remove(tmp.c_str());
    throw std::runtime_error("StripeStore: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("StripeStore: cannot publish " + path);
  }
}

namespace {

[[noreturn]] void manifest_fail(const std::string& what) {
  throw std::runtime_error("StripeStore: manifest " + what);
}

/// Checked extraction: a truncated or garbled manifest must fail the parse,
/// not hand back a zero that happens to pass a later range check.
template <typename T>
T manifest_read(std::istream& in, const char* what) {
  T value;
  if (!(in >> value)) manifest_fail(std::string("truncated or garbled at ") + what);
  return value;
}

}  // namespace

StripeStore StripeStore::load(const std::string& dir) {
  std::ifstream in(manifest_path(dir));
  if (!in) manifest_fail("missing: " + manifest_path(dir));
  // Every value below is parse-checked as it is read, and the geometry is
  // overflow- and plausibility-checked *before* it sizes or indexes
  // sector_checksums: the unchecked (stripe * n + device) * r + row
  // arithmetic everywhere else relies on a loaded store being
  // self-consistent, so an adversarial manifest has to be stopped here.
  constexpr std::size_t kMaxSectors = std::size_t{1} << 32;  // 2^32 checksums = 32 GiB
  StripeStore store;
  std::size_t chunk_lines = 0;
  std::vector<bool> seen;
  std::string key;
  while (in >> key) {
    if (key == "stair_store") {
      if (manifest_read<int>(in, "version") != 1) manifest_fail("version unsupported");
    } else if (key == "n") {
      store.cfg.n = manifest_read<std::size_t>(in, "n");
    } else if (key == "r") {
      store.cfg.r = manifest_read<std::size_t>(in, "r");
    } else if (key == "m") {
      store.cfg.m = manifest_read<std::size_t>(in, "m");
    } else if (key == "e") {
      const auto v = manifest_read<std::string>(in, "e");
      store.cfg.e = v == "-" ? std::vector<std::size_t>{} : parse_coverage_list(v);
    } else if (key == "w") {
      store.cfg.w = manifest_read<int>(in, "w");
    } else if (key == "symbol") {
      store.symbol_bytes = manifest_read<std::size_t>(in, "symbol");
    } else if (key == "block") {
      // Layout block (padding stride). Absent in pre-raw-IO manifests, whose
      // stores are unpadded: block_bytes keeps its default of 1.
      store.block_bytes = manifest_read<std::size_t>(in, "block");
      if (store.block_bytes == 0) manifest_fail("block size zero");
      if (store.block_bytes > (std::size_t{1} << 24)) manifest_fail("block size implausible");
    } else if (key == "file_size") {
      store.file_size = manifest_read<std::size_t>(in, "file_size");
    } else if (key == "stripes") {
      store.stripes = manifest_read<std::size_t>(in, "stripes");
    } else if (key == "data_checksum") {
      store.data_checksum = manifest_read<std::uint64_t>(in, "data_checksum");
    } else if (key == "chunk") {
      // Header keys precede chunk lines (we write the manifest), so the
      // geometry is known — and validated — here, before the first index.
      if (store.cfg.n == 0 || store.cfg.r == 0) manifest_fail("chunk line before geometry");
      if (store.sector_checksums.empty()) {
        try {
          store.cfg.validate();
        } catch (const std::exception& e) {
          manifest_fail(std::string("geometry invalid: ") + e.what());
        }
        if (store.cfg.n > kMaxSectors / store.cfg.r ||
            store.stripes > kMaxSectors / (store.cfg.n * store.cfg.r))
          manifest_fail("geometry implausible (stripes * n * r overflows)");
        store.sector_checksums.assign(store.stripes * store.cfg.n * store.cfg.r, 0);
        seen.assign(store.stripes * store.cfg.n, false);
      }
      const auto s = manifest_read<std::size_t>(in, "chunk stripe");
      const auto j = manifest_read<std::size_t>(in, "chunk device");
      if (s >= store.stripes || j >= store.cfg.n) manifest_fail("chunk line out of range");
      if (seen[s * store.cfg.n + j]) manifest_fail("duplicate chunk line");
      seen[s * store.cfg.n + j] = true;
      ++chunk_lines;
      for (std::size_t i = 0; i < store.cfg.r; ++i)
        store.sector_checksums[(s * store.cfg.n + j) * store.cfg.r + i] =
            manifest_read<std::uint64_t>(in, "sector checksum");
    } else {
      manifest_fail("has unknown key '" + key + "'");
    }
  }
  if (in.bad()) manifest_fail("read failed: " + manifest_path(dir));
  try {
    store.cfg.validate();
  } catch (const std::exception& e) {
    manifest_fail(std::string("geometry invalid: ") + e.what());
  }
  if (store.symbol_bytes == 0) manifest_fail("missing symbol size");
  if (chunk_lines != store.stripes * store.cfg.n)
    manifest_fail("truncated: " + std::to_string(chunk_lines) + " of " +
                  std::to_string(store.stripes * store.cfg.n) + " chunk lines");
  return store;
}

// ---------------------------------------------------------------------------
// IoPipeline
// ---------------------------------------------------------------------------

/// One leased stripe slot: the StripeBuffer the Codec works on plus the
/// staging the IO side reads into / writes from. Reused warm via the pool.
struct IoPipeline::Slot {
  std::optional<StripeBuffer> buf;
  std::vector<std::uint8_t> data;  // flat stripe data staging (user file side)
  // Per-device chunk staging: aligned leases from the pipeline's buffer
  // pool, so chunk transfers satisfy O_DIRECT alignment and (when the pool
  // is registered) ride the fixed-buffer path. A reused slot keeps its
  // leases warm; prepare_slot re-leases only on geometry change.
  std::vector<IoBufferPool::Lease> chunks;
  std::vector<io::Result> results;      // decode: per-chunk outcome
  std::vector<bool> mask;               // decode: erased symbols
  std::atomic<std::size_t> pending{0};  // countdown to stage change
};

/// Per-operation shared state. Lives on the encode_file/decode_file stack;
/// drain() guarantees no callback outlives it.
struct IoPipeline::Run {
  const StripeStore* store = nullptr;
  int file_fd = -1;  // input (encode) / output (decode)
  std::vector<int> dev_fds;
  std::size_t symbol_bytes = 0;
  std::size_t stripe_data = 0;  // data bytes per stripe
  std::size_t chunk_bytes = 0;
  std::size_t padded_chunk = 0;  // on-disk chunk stride (chunk_bytes rounded up)
  bool use_fixed = false;        // chunk transfers take the *_fixed path
  bool files_registered = false; // dev fds registered with the engine
  // Data-symbol positions in data order: canonical ids from the layout,
  // decomposed to (row, device) once so the hash fold below needs no layout.
  std::vector<std::pair<std::size_t, std::size_t>> data_positions;
  std::vector<std::uint64_t> stripe_hashes;  // disjoint per-stripe writes
  std::vector<std::uint64_t>* sector_checksums = nullptr;  // encode fills these

  void set_data_positions(const StairLayout& layout) {
    data_positions.clear();
    data_positions.reserve(layout.data_ids().size());
    for (std::uint32_t id : layout.data_ids())
      data_positions.emplace_back(layout.row_of(id), layout.col_of(id));
  }

  /// The stripe's data hash: its data sectors' hashes folded in data order.
  /// `hash_of(row, device)` supplies each sector's hash (manifest/computed).
  template <typename HashOf>
  std::uint64_t stripe_data_hash(HashOf&& hash_of) const {
    std::vector<std::uint64_t> hashes;
    hashes.reserve(data_positions.size());
    for (const auto& [row, dev] : data_positions) hashes.push_back(hash_of(row, dev));
    return combine_hashes(hashes);
  }

  std::mutex mu;
  std::condition_variable cv;
  std::size_t in_flight = 0;  // stripes currently owning a slot; guarded by mu
  std::string error;          // first fatal failure; guarded by mu

  std::atomic<std::size_t> degraded{0}, failed{0}, missing{0}, corrupt{0};
  std::atomic<std::uint64_t> bytes_read{0}, bytes_written{0};

  bool has_fatal() {
    std::lock_guard<std::mutex> lock(mu);
    return !error.empty();
  }
};

IoPipeline::IoPipeline(Codec& codec) : IoPipeline(codec, Options{}) {}

IoPipeline::IoPipeline(Codec& codec, Options options)
    : codec_(codec), options_(options) {
  if (options_.queue_depth == 0) options_.queue_depth = 1;
  if (options_.engine) {
    engine_ = options_.engine;
  } else {
    // kAuto defers to STAIR_IO_BACKEND; an explicit option wins over the env.
    const io::Backend requested = options_.backend == io::Backend::kAuto
                                      ? io::backend_from_env()
                                      : options_.backend;
    owned_engine_ = io::Engine::create(requested, options_.io);
    engine_ = owned_engine_.get();
  }
}

IoPipeline::~IoPipeline() {
  // The staging pool outlives every run but not the engine registration:
  // unpin before the pool (and, for owned engines, the ring) goes away.
  if (fixed_active_) engine_->unregister_buffers();
}

void IoPipeline::ensure_buffers(std::size_t bytes, std::size_t alignment,
                                std::size_t capacity) {
  const std::size_t target = (bytes + alignment - 1) / alignment * alignment;
  if (!buffers_ || buffers_->buffer_bytes() != target ||
      buffers_->alignment() != alignment) {
    if (fixed_active_) {
      engine_->unregister_buffers();
      fixed_active_ = false;
    }
    // Old leases (held by warm slots) keep the old pool's backing store
    // alive until prepare_slot swaps them for right-sized ones.
    buffers_ = std::make_unique<IoBufferPool>(bytes, alignment, capacity);
  }
  if (options_.fixed_buffers && !fixed_active_) {
    const auto regions = buffers_->regions();
    // ENOTSUP (thread backend) or EBUSY/ENOMEM just mean the plain path:
    // the buffers stay aligned and valid either way.
    fixed_active_ =
        engine_->register_buffers({regions.data(), regions.size()}) == 0;
  }
}

IoPipeline::SlotLease IoPipeline::acquire_slot(Run& run) {
  {
    std::unique_lock<std::mutex> lock(run.mu);
    run.cv.wait(lock, [&] { return run.in_flight < options_.queue_depth; });
    ++run.in_flight;
  }
  return slots_.acquire();
}

void IoPipeline::retire_slot(Run& run) {
  // Notify under the lock: once in_flight hits 0 a racing drain() returns
  // and the stack-allocated Run (and its cv) is destroyed.
  std::lock_guard<std::mutex> lock(run.mu);
  --run.in_flight;
  run.cv.notify_all();
}

void IoPipeline::fatal(Run& run, std::string message) {
  std::lock_guard<std::mutex> lock(run.mu);
  if (run.error.empty()) run.error = std::move(message);
}

void IoPipeline::drain(Run& run) {
  std::unique_lock<std::mutex> lock(run.mu);
  run.cv.wait(lock, [&] { return run.in_flight == 0; });
}

namespace {

std::string errno_text(int err) {
  return err ? std::string(std::strerror(err)) : std::string("short transfer");
}

}  // namespace

void IoPipeline::prepare_slot(Slot& slot, const StairCode& code, const Run& run,
                              std::size_t devices) {
  if (!slot.buf || slot.buf->symbol_size() != run.symbol_bytes)
    slot.buf.emplace(code, run.symbol_bytes);
  slot.data.resize(run.stripe_data);
  slot.chunks.resize(devices);
  for (auto& lease : slot.chunks)
    if (!lease || lease->bytes < run.padded_chunk) lease = buffers_->acquire();
  slot.results.resize(devices);
}

IoPipeline::Stats IoPipeline::encode_file(const std::string& input_path,
                                          const std::string& store_dir) {
  Stats st;
  const StairCode& code = codec_.code();
  const StairConfig& cfg = code.config();

  std::error_code ec;
  std::filesystem::create_directories(store_dir, ec);

  const int in_fd = engine_->open_read(input_path);
  if (in_fd < 0) {
    st.error = "cannot open input " + input_path;
    return st;
  }
  const std::uint64_t file_size = engine_->file_size(in_fd);

  Run run;
  run.symbol_bytes = options_.symbol_bytes;
  run.stripe_data = code.data_symbol_count() * run.symbol_bytes;
  run.chunk_bytes = cfg.r * run.symbol_bytes;
  run.set_data_positions(code.layout());
  const std::size_t stripes =
      file_size ? static_cast<std::size_t>((file_size + run.stripe_data - 1) / run.stripe_data)
                : 0;

  // Raw-device mode decides the layout, not just the open flags: chunk rows
  // are padded to the block so every transfer is aligned, and the geometry
  // goes in the manifest. The layout is chosen by the *request*, never by
  // whether O_DIRECT actually engaged, so a store encoded on tmpfs (where
  // direct falls back to buffered) is byte-identical to one from a real fs.
  const std::size_t block =
      options_.direct && options_.block_bytes > 1 ? options_.block_bytes : 1;
  const io::OpenMode dev_mode =
      block > 1 ? io::OpenMode::kDirect : io::OpenMode::kBuffered;

  StripeStore store;
  store.cfg = cfg;
  store.symbol_bytes = run.symbol_bytes;
  store.block_bytes = block;
  store.file_size = static_cast<std::size_t>(file_size);
  store.stripes = stripes;
  store.sector_checksums.assign(stripes * cfg.n * cfg.r, 0);
  run.store = &store;
  run.sector_checksums = &store.sector_checksums;
  run.stripe_hashes.assign(stripes, 0);
  run.file_fd = in_fd;
  run.padded_chunk = store.padded_chunk_bytes();
  ensure_buffers(run.padded_chunk, std::max<std::size_t>(block, 64),
                 options_.queue_depth * cfg.n);
  run.use_fixed = fixed_active_;

  run.dev_fds.assign(cfg.n, -1);
  for (std::size_t j = 0; j < cfg.n; ++j) {
    run.dev_fds[j] = engine_->open_write(StripeStore::device_path(store_dir, j), dev_mode);
    if (run.dev_fds[j] < 0)
      fatal(run, "cannot create " + StripeStore::device_path(store_dir, j));
  }
  // Long-lived chunk fds: register so uring submissions skip the per-IO fd
  // lookup/refcount (IOSQE_FIXED_FILE). Optional like everything else here.
  if (options_.fixed_buffers && !run.has_fatal())
    run.files_registered = engine_->register_files(run.dev_fds) == 0;

  if (!run.has_fatal()) {
    for (std::size_t s = 0; s < stripes; ++s) {
      if (run.has_fatal()) break;
      SlotLease slot = acquire_slot(run);
      prepare_slot(*slot, code, run, cfg.n);
      const std::size_t offset = s * run.stripe_data;
      const std::size_t len =
          std::min<std::size_t>(run.stripe_data, static_cast<std::size_t>(file_size) - offset);
      std::fill(slot->data.begin() + static_cast<std::ptrdiff_t>(len), slot->data.end(), 0);
      Slot* raw = slot.get();
      // The continuation (1+ MB set_data + submit) is bounced onto the codec
      // pool: IO completion threads — the single uring reaper in particular —
      // must stay free to complete transfers, not process stripes.
      engine_->read(run.file_fd, offset, std::span(raw->data.data(), len),
                    [this, &run, slot = std::move(slot), s, len](const io::Result& r) mutable {
                      codec_.pool().submit([this, &run, slot = std::move(slot), s, len, r]() mutable {
                        encode_on_input_read(run, std::move(slot), s, len, r);
                      });
                    });
    }
  }
  drain(run);
  engine_->flush();
  if (run.files_registered) engine_->unregister_files();
  engine_->close(in_fd);
  for (int fd : run.dev_fds) engine_->close(fd);

  st.stripes = stripes;
  st.bytes_read = run.bytes_read.load();
  st.bytes_written = run.bytes_written.load();
  {
    std::lock_guard<std::mutex> lock(run.mu);
    st.error = run.error;
  }
  if (st.error.empty()) {
    store.data_checksum = combine_hashes(run.stripe_hashes);
    try {
      store.save(store_dir);
      st.ok = true;
    } catch (const std::exception& e) {
      st.error = e.what();
    }
  }
  return st;
}

void IoPipeline::encode_on_input_read(Run& run, SlotLease slot, std::size_t stripe,
                                      std::size_t data_len, const io::Result& r) {
  run.bytes_read.fetch_add(r.bytes, std::memory_order_relaxed);
  if (r.error || r.bytes < data_len) {
    fatal(run, "input read failed at stripe " + std::to_string(stripe) + ": " +
                   errno_text(r.error));
    slot.reset();
    retire_slot(run);
    return;
  }
  try {
    slot->buf->set_data(slot->data);
    Slot* raw = slot.get();
    codec_.submit_encode(raw->buf->view(), options_.method,
                         [this, &run, slot = std::move(slot), stripe](bool ok) mutable {
                           encode_on_encoded(run, std::move(slot), stripe, ok);
                         });
  } catch (const std::exception& e) {
    fatal(run, std::string("submit_encode failed: ") + e.what());
    retire_slot(run);
  }
}

void IoPipeline::encode_on_encoded(Run& run, SlotLease slot, std::size_t stripe, bool ok) {
  if (!ok) {
    fatal(run, "encode job failed at stripe " + std::to_string(stripe));
    slot.reset();
    retire_slot(run);
    return;
  }
  try {
    const StairConfig& cfg = codec_.code().config();
    Slot& sl = *slot;
    // Gather each device's chunk (its r symbols, stripe-contiguous on disk)
    // and fingerprint every sector; the manifest rows are disjoint per stripe.
    for (std::size_t j = 0; j < cfg.n; ++j) {
      IoBuffer& chunk = *sl.chunks[j];
      for (std::size_t i = 0; i < cfg.r; ++i) {
        const auto symbol = sl.buf->symbol(i, j);
        std::memcpy(chunk.data + i * run.symbol_bytes, symbol.data(), run.symbol_bytes);
        (*run.sector_checksums)[(stripe * cfg.n + j) * cfg.r + i] = content_hash64(symbol);
      }
      // Pad bytes are written (zeroed) rather than skipped: the whole padded
      // row transfers in one aligned write, and the files stay identical
      // whether or not O_DIRECT engaged.
      if (run.padded_chunk > run.chunk_bytes)
        std::memset(chunk.data + run.chunk_bytes, 0, run.padded_chunk - run.chunk_bytes);
    }
    // The stripe's data hash folds the data sectors' hashes just computed —
    // no second pass over the bytes.
    run.stripe_hashes[stripe] = run.stripe_data_hash([&](std::size_t row, std::size_t dev) {
      return (*run.sector_checksums)[(stripe * cfg.n + dev) * cfg.r + row];
    });
    sl.pending.store(cfg.n, std::memory_order_relaxed);
    for (std::size_t j = 0; j < cfg.n; ++j) {
      Slot* raw = slot.get();
      const IoBuffer& chunk = *raw->chunks[j];
      const std::span<const std::uint8_t> out(chunk.data, run.padded_chunk);
      auto done = [this, &run, slot](const io::Result& r) mutable {
        run.bytes_written.fetch_add(r.bytes, std::memory_order_relaxed);
        if (r.error || r.bytes < run.padded_chunk)
          fatal(run, "device write failed: " + errno_text(r.error));
        if (slot->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          slot.reset();
          retire_slot(run);
        }
      };
      if (run.use_fixed)
        engine_->write_fixed(run.dev_fds[j], stripe * run.padded_chunk, out,
                             chunk.index, std::move(done));
      else
        engine_->write(run.dev_fds[j], stripe * run.padded_chunk, out, std::move(done));
    }
  } catch (const std::exception& e) {
    fatal(run, std::string("encode completion failed: ") + e.what());
    retire_slot(run);
  }
}

IoPipeline::Stats IoPipeline::decode_file(const std::string& store_dir,
                                          const std::string& output_path) {
  Stats st;
  StripeStore store;
  try {
    store = StripeStore::load(store_dir);
  } catch (const std::exception& e) {
    // A bad manifest is a counted, clean failure — the store's recovery
    // point is gone, which callers distinguish from a recoverable stripe.
    st.manifest_errors = 1;
    st.error = e.what();
    return st;
  }
  const StairCode& code = codec_.code();
  if (!(store.cfg == code.config())) {
    st.error = "store config " + store.cfg.to_string() + " does not match codec config " +
               code.config().to_string();
    return st;
  }

  Run run;
  run.store = &store;
  run.symbol_bytes = store.symbol_bytes;
  run.stripe_data = code.data_symbol_count() * store.symbol_bytes;
  run.chunk_bytes = store.chunk_bytes();
  run.padded_chunk = store.padded_chunk_bytes();
  run.set_data_positions(code.layout());
  run.stripe_hashes.assign(store.stripes, 0);
  ensure_buffers(run.padded_chunk, std::max<std::size_t>(store.block_bytes, 64),
                 options_.queue_depth * store.cfg.n);
  run.use_fixed = fixed_active_;

  // O_DIRECT needs the padded layout; a legacy (block 1) store is read
  // buffered even when direct mode is requested, since its rows and offsets
  // have no alignment to offer.
  const io::OpenMode dev_mode = options_.direct && store.block_bytes > 1
                                    ? io::OpenMode::kDirect
                                    : io::OpenMode::kBuffered;
  run.dev_fds.assign(store.cfg.n, -1);
  bool all_devs_open = true;
  for (std::size_t j = 0; j < store.cfg.n; ++j) {
    run.dev_fds[j] = engine_->open_read(StripeStore::device_path(store_dir, j), dev_mode);
    all_devs_open = all_devs_open && run.dev_fds[j] >= 0;
  }
  // Fixed files only when every device opened: sparse registrations (-1
  // entries) predate some kernels this runs on, and a degraded decode is
  // not the case to optimize anyway.
  if (options_.fixed_buffers && all_devs_open)
    run.files_registered = engine_->register_files(run.dev_fds) == 0;

  run.file_fd = engine_->open_write(output_path);
  if (run.file_fd < 0) {
    if (run.files_registered) engine_->unregister_files();
    for (int fd : run.dev_fds) engine_->close(fd);
    st.error = "cannot create output " + output_path;
    return st;
  }

  for (std::size_t s = 0; s < store.stripes; ++s) {
    if (run.has_fatal()) break;
    SlotLease slot = acquire_slot(run);
    prepare_slot(*slot, code, run, store.cfg.n);
    std::fill(slot->results.begin(), slot->results.end(), io::Result{});
    slot->pending.store(store.cfg.n, std::memory_order_relaxed);
    Slot* raw = slot.get();
    for (std::size_t j = 0; j < store.cfg.n; ++j) {
      if (run.dev_fds[j] < 0) {
        decode_on_chunk_read(run, slot, s, j, io::Result{ENOENT, 0});
        continue;
      }
      const IoBuffer& chunk = *raw->chunks[j];
      const std::span<std::uint8_t> in(chunk.data, run.padded_chunk);
      auto done = [this, &run, slot, s, j](const io::Result& r) mutable {
        decode_on_chunk_read(run, std::move(slot), s, j, r);
      };
      if (run.use_fixed)
        engine_->read_fixed(run.dev_fds[j], s * run.padded_chunk, in, chunk.index,
                            std::move(done));
      else
        engine_->read(run.dev_fds[j], s * run.padded_chunk, in, std::move(done));
    }
    slot.reset();  // stages own their copies now
  }
  drain(run);
  engine_->flush();
  if (run.files_registered) engine_->unregister_files();
  // Failed trailing stripes must not shorten the file silently; recoverable
  // content has been written at its exact offsets either way.
  if (engine_->truncate(run.file_fd, store.file_size) != 0)
    fatal(run, "truncate on output failed");
  engine_->close(run.file_fd);
  for (int fd : run.dev_fds) engine_->close(fd);

  st.stripes = store.stripes;
  st.degraded_stripes = run.degraded.load();
  st.failed_stripes = run.failed.load();
  st.chunks_missing = run.missing.load();
  st.sectors_corrupt = run.corrupt.load();
  st.bytes_read = run.bytes_read.load();
  st.bytes_written = run.bytes_written.load();
  {
    std::lock_guard<std::mutex> lock(run.mu);
    st.error = run.error;
  }
  if (st.error.empty()) {
    if (st.failed_stripes) {
      st.error = std::to_string(st.failed_stripes) + " stripe(s) unrecoverable";
    } else if (combine_hashes(run.stripe_hashes) != store.data_checksum) {
      st.error = "reassembled data does not match the manifest checksum";
    } else {
      st.ok = true;
    }
  }
  return st;
}

namespace {

/// Per-stripe completion gate for the synchronous ranged-read path: waits
/// for exactly this stripe's transfers, unlike Engine::flush() which would
/// also wait out unrelated in-flight IO (a background scrub pass sharing
/// the engine, rebuild traffic) and so couple foreground latency to it.
struct CompletionLatch {
  explicit CompletionLatch(std::size_t n) : remaining(n) {}
  void done() {
    std::lock_guard<std::mutex> lock(mu);
    if (--remaining == 0) cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return remaining == 0; });
  }
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining;
};

}  // namespace

IoPipeline::Stats IoPipeline::read_range(const std::string& store_dir, std::uint64_t offset,
                                         std::span<std::uint8_t> out) {
  Stats st;
  StripeStore store;
  try {
    store = StripeStore::load(store_dir);
  } catch (const std::exception& e) {
    st.manifest_errors = 1;
    st.error = e.what();
    return st;
  }
  return read_range(store, store_dir, offset, out);
}

IoPipeline::Stats IoPipeline::read_range(const StripeStore& store,
                                         const std::string& store_dir, std::uint64_t offset,
                                         std::span<std::uint8_t> out) {
  Stats st;
  const StairCode& code = codec_.code();
  if (!(store.cfg == code.config())) {
    st.error = "store config " + store.cfg.to_string() + " does not match codec config " +
               code.config().to_string();
    return st;
  }
  if (out.empty()) {
    st.ok = true;
    return st;
  }
  if (offset > store.file_size || out.size() > store.file_size - offset) {
    st.error = "range exceeds file size " + std::to_string(store.file_size);
    return st;
  }

  const std::size_t symbol = store.symbol_bytes;
  const std::size_t chunk_bytes = store.chunk_bytes();
  const std::size_t padded = store.padded_chunk_bytes();
  const std::size_t block = store.block_bytes;
  // Aligned mode: O_DIRECT chunk fds accept only block-aligned transfers,
  // so sector reads widen to the enclosing block window inside the padded
  // chunk (read into an aligned lease, copy out the wanted span). A legacy
  // unpadded store, or direct mode off, keeps exact positioned reads.
  const bool aligned = options_.direct && block > 1;
  const io::OpenMode dev_mode = aligned ? io::OpenMode::kDirect : io::OpenMode::kBuffered;
  ensure_buffers(padded, std::max<std::size_t>(block, 64),
                 options_.queue_depth * store.cfg.n);
  const std::size_t stripe_data = code.data_symbol_count() * symbol;
  const StairLayout& layout = code.layout();
  // (row, device) of each data symbol, in data order — the same order
  // set_data/get_data use, so data index d of stripe k covers original-file
  // bytes [k * stripe_data + d * symbol, ... + symbol).
  std::vector<std::pair<std::size_t, std::size_t>> pos;
  pos.reserve(layout.data_ids().size());
  for (std::uint32_t id : layout.data_ids())
    pos.emplace_back(layout.row_of(id), layout.col_of(id));

  // Devices are opened lazily: a short range touches few of them.
  std::vector<int> fds(store.cfg.n, -2);
  auto dev_fd = [&](std::size_t j) {
    if (fds[j] == -2)
      fds[j] = engine_->open_read(StripeStore::device_path(store_dir, j), dev_mode);
    return fds[j];
  };

  std::vector<std::uint8_t> sectors;  // wanted-sector staging, happy path
  const std::size_t first_stripe = offset / stripe_data;
  const std::size_t last_stripe = (offset + out.size() - 1) / stripe_data;
  for (std::size_t s = first_stripe; s <= last_stripe && st.error.empty(); ++s) {
    ++st.stripes;
    const std::uint64_t base = std::uint64_t{s} * stripe_data;
    const std::size_t lo = static_cast<std::size_t>(std::max(offset, base) - base);
    const std::size_t hi = static_cast<std::size_t>(
        std::min<std::uint64_t>(offset + out.size(), base + stripe_data) - base);
    const std::size_t d_lo = lo / symbol;
    const std::size_t d_hi = (hi - 1) / symbol;
    const std::size_t count = d_hi - d_lo + 1;

    // Happy path: positioned reads of exactly the sectors the range needs
    // (widened to block windows in aligned mode), each verified against the
    // manifest before a byte is copied out.
    sectors.assign(count * symbol, 0);
    std::vector<io::Result> results(count);
    std::vector<IoBufferPool::Lease> window_leases;
    std::vector<std::pair<std::size_t, std::size_t>> windows;  // {start, len} per k
    if (aligned) {
      window_leases.resize(count);
      windows.resize(count);
    }
    {
      CompletionLatch latch(count);
      for (std::size_t k = 0; k < count; ++k) {
        const auto [row, dev] = pos[d_lo + k];
        const int fd = dev_fd(dev);
        if (fd < 0) {
          results[k] = io::Result{ENOENT, 0};
          latch.done();
          continue;
        }
        const std::size_t sec_off = row * symbol;
        auto done = [&results, &latch, k](const io::Result& r) {
          results[k] = r;
          latch.done();
        };
        if (aligned) {
          const std::size_t wlo = sec_off / block * block;
          const std::size_t whi =
              std::min(padded, (sec_off + symbol + block - 1) / block * block);
          windows[k] = {wlo, whi - wlo};
          window_leases[k] = buffers_->acquire();
          engine_->read(fd, std::uint64_t{s} * padded + wlo,
                        std::span(window_leases[k]->data, whi - wlo), std::move(done));
        } else {
          engine_->read(fd, std::uint64_t{s} * padded + sec_off,
                        std::span(sectors.data() + k * symbol, symbol), std::move(done));
        }
      }
      latch.wait();
    }
    bool clean = true;
    for (std::size_t k = 0; k < count; ++k) {
      const auto [row, dev] = pos[d_lo + k];
      st.bytes_read += results[k].bytes;
      const std::size_t expected = aligned ? windows[k].second : symbol;
      const bool got = results[k].ok() && results[k].bytes == expected;
      if (got && aligned)
        std::memcpy(sectors.data() + k * symbol,
                    window_leases[k]->data + (row * symbol - windows[k].first), symbol);
      clean = clean && got &&
              content_hash64(std::span<const std::uint8_t>(sectors.data() + k * symbol,
                                                           symbol)) ==
                  store.sector_checksum(s, dev, row);
    }
    const std::size_t out_at = static_cast<std::size_t>(base + lo - offset);
    if (clean) {
      std::memcpy(out.data() + out_at, sectors.data() + (lo - d_lo * symbol), hi - lo);
      continue;
    }

    // Degraded: something the range needs is missing or lying. Read the
    // whole stripe, build the true erasure mask from per-sector verifies,
    // and decode only the wanted symbols — the backward slice that
    // build_degraded_read_schedule cuts from the full decode plan.
    ++st.degraded_stripes;
    std::vector<IoBufferPool::Lease> chunk_leases(store.cfg.n);
    std::vector<io::Result> chunk_results(store.cfg.n);
    {
      CompletionLatch latch(store.cfg.n);
      for (std::size_t j = 0; j < store.cfg.n; ++j) {
        const int fd = dev_fd(j);
        if (fd < 0) {
          chunk_results[j] = io::Result{ENOENT, 0};
          latch.done();
          continue;
        }
        chunk_leases[j] = buffers_->acquire();
        engine_->read(fd, std::uint64_t{s} * padded,
                      std::span(chunk_leases[j]->data, padded),
                      [&chunk_results, &latch, j](const io::Result& r) {
                        chunk_results[j] = r;
                        latch.done();
                      });
      }
      latch.wait();
    }
    try {
      StripeBuffer buf(code, symbol);
      std::vector<bool> mask(store.cfg.r * store.cfg.n, false);
      for (std::size_t j = 0; j < store.cfg.n; ++j) {
        st.bytes_read += chunk_results[j].bytes;
        if (!chunk_leases[j] || !chunk_results[j].ok() ||
            chunk_results[j].bytes != padded) {
          ++st.chunks_missing;
          for (std::size_t i = 0; i < store.cfg.r; ++i) mask[i * store.cfg.n + j] = true;
          continue;
        }
        for (std::size_t i = 0; i < store.cfg.r; ++i) {
          auto dst = buf.symbol(i, j);
          std::memcpy(dst.data(), chunk_leases[j]->data + i * symbol, symbol);
          if (content_hash64(std::span<const std::uint8_t>(dst)) !=
              store.sector_checksum(s, j, i)) {
            ++st.sectors_corrupt;
            mask[i * store.cfg.n + j] = true;
          }
        }
      }
      std::vector<std::size_t> wanted;
      wanted.reserve(count);
      for (std::size_t k = 0; k < count; ++k) {
        const auto [row, dev] = pos[d_lo + k];
        wanted.push_back(layout.stored_index(row, dev));
      }
      auto slice = code.build_degraded_read_schedule(mask, wanted);
      if (!slice) {
        ++st.failed_stripes;
        st.error = "stripe " + std::to_string(s) + " unrecoverable for ranged read";
        break;
      }
      code.execute(*slice, buf.view());
      // The end-to-end guard: every wanted symbol — read or reconstructed —
      // must match its manifest checksum before its bytes are served.
      for (std::size_t k = 0; k < count && st.error.empty(); ++k) {
        const auto [row, dev] = pos[d_lo + k];
        if (content_hash64(std::span<const std::uint8_t>(buf.symbol(row, dev))) !=
            store.sector_checksum(s, dev, row)) {
          ++st.failed_stripes;
          st.error = "stripe " + std::to_string(s) + " reconstruction failed verification";
        }
      }
      if (!st.error.empty()) break;
      for (std::size_t k = 0; k < count; ++k) {
        const auto [row, dev] = pos[d_lo + k];
        const std::size_t sym_lo = std::max(lo, (d_lo + k) * symbol);
        const std::size_t sym_hi = std::min(hi, (d_lo + k + 1) * symbol);
        std::memcpy(out.data() + (base + sym_lo - offset),
                    buf.symbol(row, dev).data() + (sym_lo - (d_lo + k) * symbol),
                    sym_hi - sym_lo);
      }
    } catch (const std::exception& e) {
      st.error = std::string("ranged degraded read failed: ") + e.what();
    }
  }
  for (int fd : fds)
    if (fd >= 0) engine_->close(fd);
  st.ok = st.error.empty();
  return st;
}

void IoPipeline::decode_on_chunk_read(Run& run, SlotLease slot, std::size_t stripe,
                                      std::size_t device, const io::Result& r) {
  run.bytes_read.fetch_add(r.bytes, std::memory_order_relaxed);
  slot->results[device] = r;  // devices are disjoint; countdown publishes
  if (slot->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Assembly (per-sector verify + stripe scatter) is real work: bounce it
    // onto the codec pool so IO completion threads keep completing IO and
    // clean-stripe decode parallelizes across the pool, not the reaper.
    codec_.pool().submit([this, &run, slot = std::move(slot), stripe]() mutable {
      decode_assemble(run, std::move(slot), stripe);
    });
  }
}

void IoPipeline::decode_assemble(Run& run, SlotLease slot, std::size_t stripe) {
  try {
    const StairConfig& cfg = run.store->cfg;
    Slot& sl = *slot;
    sl.mask.assign(cfg.r * cfg.n, false);
    std::vector<bool>& mask = sl.mask;
    bool degraded = false;
    for (std::size_t j = 0; j < cfg.n; ++j) {
      const io::Result& r = sl.results[j];
      if (r.error != 0 || r.bytes != run.padded_chunk) {
        // The transfer itself failed (missing device, EIO, short chunk):
        // nothing in this chunk can be trusted — erase the whole column.
        run.missing.fetch_add(1, std::memory_order_relaxed);
        for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + j] = true;
        degraded = true;
        continue;
      }
      // The transfer succeeded: verify sector by sector, erasing exactly the
      // sectors whose content lies (torn write, bit rot). This is what turns
      // a scribbled-on chunk into a *sector* failure pattern for the code's
      // e coverage instead of burning one of its m device credits.
      for (std::size_t i = 0; i < cfg.r; ++i) {
        std::memcpy(sl.buf->symbol(i, j).data(), sl.chunks[j]->data + i * run.symbol_bytes,
                    run.symbol_bytes);
        if (content_hash64(sl.buf->symbol(i, j)) != run.store->sector_checksum(stripe, j, i)) {
          run.corrupt.fetch_add(1, std::memory_order_relaxed);
          mask[i * cfg.n + j] = true;
          degraded = true;
        }
      }
    }
    if (!degraded) {
      decode_write_data(run, std::move(slot), stripe);
      return;
    }
    run.degraded.fetch_add(1, std::memory_order_relaxed);
    Slot* raw = slot.get();
    // The degraded-read path: the mask resolves through the session's plan
    // cache, so every stripe of a failure epoch replays one compiled plan.
    codec_.submit_decode(raw->buf->view(), mask,
                         [this, &run, slot = std::move(slot), stripe](bool ok) mutable {
                           if (!ok) {
                             // Outside the code's coverage: a failed stripe,
                             // counted, not thrown.
                             run.failed.fetch_add(1, std::memory_order_relaxed);
                             slot.reset();
                             retire_slot(run);
                             return;
                           }
                           decode_write_data(run, std::move(slot), stripe);
                         });
  } catch (const std::exception& e) {
    fatal(run, std::string("decode assemble failed: ") + e.what());
    retire_slot(run);
  }
}

void IoPipeline::decode_write_data(Run& run, SlotLease slot, std::size_t stripe) {
  try {
    const StairConfig& cfg = run.store->cfg;
    Slot& sl = *slot;
    // Fold the stripe's data hash from sector hashes: verified sectors reuse
    // the manifest value (verification just recomputed it), reconstructed
    // sectors are hashed fresh — the end-to-end check covers decode output.
    run.stripe_hashes[stripe] = run.stripe_data_hash([&](std::size_t row, std::size_t dev) {
      return sl.mask[row * cfg.n + dev]
                 ? content_hash64(sl.buf->symbol(row, dev))
                 : run.store->sector_checksum(stripe, dev, row);
    });
    sl.buf->get_data(sl.data);
    const std::size_t offset = stripe * run.stripe_data;
    const std::size_t len = std::min(run.stripe_data, run.store->file_size - offset);
    Slot* raw = slot.get();
    engine_->write(run.file_fd, offset, std::span(raw->data.data(), len),
                   [this, &run, slot = std::move(slot), len](const io::Result& r) mutable {
                     run.bytes_written.fetch_add(r.bytes, std::memory_order_relaxed);
                     if (r.error || r.bytes < len)
                       fatal(run, "output write failed: " + errno_text(r.error));
                     slot.reset();
                     retire_slot(run);
                   });
  } catch (const std::exception& e) {
    fatal(run, std::string("decode write failed: ") + e.what());
    retire_slot(run);
  }
}

}  // namespace stair
