// STAIR encoding tests (§3, §5): the three methods produce identical
// parities; upstairs/downstairs schedule sizes equal Eqs. 5/6 exactly;
// method auto-selection picks the cheapest; inside- and outside-global modes
// are consistent; Cauchy and Vandermonde row/column codes both work.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "stair/cost_model.h"
#include "stair/stair_code.h"
#include "util/rng.h"

namespace stair {
namespace {

struct EncCase {
  StairConfig cfg;
  GlobalParityMode mode = GlobalParityMode::kInside;

  std::string name() const {
    std::string s = "n" + std::to_string(cfg.n) + "r" + std::to_string(cfg.r) + "m" +
                    std::to_string(cfg.m) + "e";
    for (std::size_t v : cfg.e) s += std::to_string(v) + "_";
    s += mode == GlobalParityMode::kInside ? "in" : "out";
    return s;
  }
};

std::vector<EncCase> encoding_cases() {
  std::vector<EncCase> cases;
  const std::vector<StairConfig> cfgs{
      {.n = 8, .r = 4, .m = 2, .e = {1, 1, 2}},   // the paper's exemplar
      {.n = 8, .r = 4, .m = 2, .e = {4}},
      {.n = 8, .r = 4, .m = 2, .e = {1, 3}},
      {.n = 8, .r = 4, .m = 2, .e = {2, 2}},
      {.n = 8, .r = 4, .m = 2, .e = {1, 1, 1, 1}},
      {.n = 6, .r = 6, .m = 1, .e = {1, 2}},
      {.n = 6, .r = 5, .m = 3, .e = {2}},
      {.n = 5, .r = 4, .m = 0, .e = {1, 2}},      // no row parity chunks at all
      {.n = 9, .r = 3, .m = 2, .e = {1, 1, 3}},
      {.n = 16, .r = 16, .m = 2, .e = {1, 4}},
      {.n = 6, .r = 4, .m = 2, .e = {1, 1, 1, 1}},  // m' = n - m (IDR-like)
      {.n = 8, .r = 4, .m = 2, .e = {1}},           // PMDS/SD-equivalent s = 1
  };
  for (const auto& cfg : cfgs) {
    cases.push_back({cfg, GlobalParityMode::kInside});
    cases.push_back({cfg, GlobalParityMode::kOutside});
  }
  return cases;
}

class StairEncodingTest : public ::testing::TestWithParam<EncCase> {
 protected:
  // Encodes a seeded random stripe with `method` and returns all bytes
  // (stored symbols followed by outside globals, if any).
  std::vector<std::uint8_t> encode_bytes(const StairCode& code, EncodingMethod method,
                                         std::size_t symbol = 16) const {
    StripeBuffer stripe(code, symbol);
    std::vector<std::uint8_t> data(stripe.data_size());
    Rng rng(2024);
    rng.fill(data);
    stripe.set_data(data);
    code.encode(stripe.view(), method);

    std::vector<std::uint8_t> out;
    for (const auto& region : stripe.view().stored)
      out.insert(out.end(), region.begin(), region.end());
    for (const auto& region : stripe.view().outside_globals)
      out.insert(out.end(), region.begin(), region.end());
    return out;
  }
};

TEST_P(StairEncodingTest, ThreeMethodsProduceIdenticalParities) {
  const StairCode code(GetParam().cfg, GetParam().mode);
  const auto up = encode_bytes(code, EncodingMethod::kUpstairs);
  const auto down = encode_bytes(code, EncodingMethod::kDownstairs);
  const auto std_bytes = encode_bytes(code, EncodingMethod::kStandard);
  EXPECT_EQ(up, down) << "§5.1.3: upstairs and downstairs must agree";
  EXPECT_EQ(up, std_bytes) << "standard encoding must agree with parity reuse";
}

TEST_P(StairEncodingTest, ScheduleCostsMatchClosedForms) {
  const StairCode code(GetParam().cfg, GetParam().mode);
  EXPECT_EQ(code.mult_xor_count(EncodingMethod::kUpstairs),
            upstairs_mult_xors(GetParam().cfg))
      << "Eq. 5";
  EXPECT_EQ(code.mult_xor_count(EncodingMethod::kDownstairs),
            downstairs_mult_xors(GetParam().cfg))
      << "Eq. 6";
}

TEST_P(StairEncodingTest, AutoSelectionPicksCheapestMethod) {
  const StairCode code(GetParam().cfg, GetParam().mode);
  const EncodingCosts costs = analyze_costs(code);
  const EncodingMethod best = code.select_method();
  const std::size_t best_cost = code.mult_xor_count(best);
  EXPECT_LE(best_cost, costs.standard);
  EXPECT_LE(best_cost, costs.upstairs);
  EXPECT_LE(best_cost, costs.downstairs);
  EXPECT_EQ(best, costs.best);
}

TEST_P(StairEncodingTest, EncodeIsDeterministicAndDataPreserving) {
  const StairCode code(GetParam().cfg, GetParam().mode);
  StripeBuffer stripe(code, 24);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(5);
  rng.fill(data);
  stripe.set_data(data);
  code.encode(stripe.view());

  std::vector<std::uint8_t> roundtrip(stripe.data_size());
  stripe.get_data(roundtrip);
  EXPECT_EQ(roundtrip, data) << "systematic: encoding must not disturb data";

  // Re-encoding is idempotent.
  std::vector<std::uint8_t> before;
  for (const auto& region : stripe.view().stored)
    before.insert(before.end(), region.begin(), region.end());
  code.encode(stripe.view());
  std::vector<std::uint8_t> after;
  for (const auto& region : stripe.view().stored)
    after.insert(after.end(), region.begin(), region.end());
  EXPECT_EQ(before, after);
}

TEST_P(StairEncodingTest, WorkspaceReuseMatchesFreshWorkspace) {
  const StairCode code(GetParam().cfg, GetParam().mode);
  Workspace ws;
  StripeBuffer a(code, 16), b(code, 16);
  std::vector<std::uint8_t> data(a.data_size());
  Rng rng(6);
  rng.fill(data);
  a.set_data(data);
  b.set_data(data);
  code.encode(a.view(), EncodingMethod::kUpstairs, &ws);
  code.encode(a.view(), EncodingMethod::kDownstairs, &ws);  // dirty the scratch
  code.encode(a.view(), EncodingMethod::kUpstairs, &ws);
  code.encode(b.view(), EncodingMethod::kUpstairs);
  for (std::size_t i = 0; i < a.view().stored.size(); ++i)
    ASSERT_EQ(0, std::memcmp(a.view().stored[i].data(), b.view().stored[i].data(), 16));
}

INSTANTIATE_TEST_SUITE_P(Sweep, StairEncodingTest, ::testing::ValuesIn(encoding_cases()),
                         [](const auto& info) { return info.param.name(); });

TEST(StairEncodingSpecial, VandermondeKindAgreesWithItself) {
  const StairConfig cfg{.n = 8, .r = 4, .m = 2, .e = {1, 2}};
  const StairCode code(cfg, GlobalParityMode::kInside,
                       SystematicMdsCode::Kind::kVandermonde);
  StripeBuffer stripe(code, 16);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(1);
  rng.fill(data);
  stripe.set_data(data);
  code.encode(stripe.view(), EncodingMethod::kUpstairs);
  std::vector<std::uint8_t> up;
  for (const auto& r : stripe.view().stored) up.insert(up.end(), r.begin(), r.end());
  code.encode(stripe.view(), EncodingMethod::kDownstairs);
  std::vector<std::uint8_t> down;
  for (const auto& r : stripe.view().stored) down.insert(down.end(), r.begin(), r.end());
  EXPECT_EQ(up, down);
}

TEST(StairEncodingSpecial, Figure9CostOrderingHolds) {
  // §5.3's qualitative claim: small m' favours downstairs, large m' upstairs.
  const StairConfig down_friendly{.n = 8, .r = 16, .m = 2, .e = {4}};     // m' = 1
  const StairConfig up_friendly{.n = 8, .r = 16, .m = 2, .e = {1, 1, 1, 1}};  // m' = 4
  EXPECT_LT(downstairs_mult_xors(down_friendly), upstairs_mult_xors(down_friendly));
  EXPECT_LT(upstairs_mult_xors(up_friendly), downstairs_mult_xors(up_friendly));
}

TEST(StairEncodingSpecial, ZeroSkippedScheduleStillCorrectAndSmaller) {
  const StairConfig cfg{.n = 8, .r = 4, .m = 2, .e = {1, 1, 2}};
  const StairCode code(cfg);
  const Schedule& up = code.encoding_schedule(EncodingMethod::kUpstairs);

  // Mark the outside-global ids (fixed zeros in inside mode) as zero symbols.
  std::vector<bool> zeros(code.layout().total_symbols(), false);
  for (std::uint32_t g : code.layout().outside_global_ids()) zeros[g] = true;
  const Schedule trimmed = up.optimized(zeros);
  EXPECT_LT(trimmed.mult_xor_count(), up.mult_xor_count());

  StripeBuffer a(code, 16), b(code, 16);
  std::vector<std::uint8_t> data(a.data_size());
  Rng rng(9);
  rng.fill(data);
  a.set_data(data);
  b.set_data(data);
  code.execute(up, a.view());
  code.execute(trimmed, b.view());
  for (std::size_t i = 0; i < a.view().stored.size(); ++i)
    ASSERT_EQ(0, std::memcmp(a.view().stored[i].data(), b.view().stored[i].data(), 16));
}

TEST(StairEncodingSpecial, StripeBufferValidatesSizes) {
  const StairCode code({.n = 8, .r = 4, .m = 2, .e = {1, 2}});
  EXPECT_THROW(StripeBuffer(code, 0), std::invalid_argument);
  StripeBuffer stripe(code, 16);
  std::vector<std::uint8_t> wrong(stripe.data_size() + 1);
  EXPECT_THROW(stripe.set_data(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace stair
