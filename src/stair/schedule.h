// Linear-combination schedules — the execution format for all coding paths.
//
// Every encoding method and every decoding instance compiles to a Schedule:
// an ordered list of "output := XOR of coeff * input" region operations over
// symbol ids. Replaying a schedule is the only thing that touches bulk data,
// so throughput is uniform across methods, and the paper's Mult_XOR counts
// (§5.3) are exactly the schedules' term counts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gf/region.h"

namespace stair {

class CompiledSchedule;

/// One linear combination: symbols[output] = XOR over terms of coeff * symbols[input].
struct ScheduleOp {
  std::uint32_t output = 0;

  struct Term {
    std::uint32_t coeff = 0;
    std::uint32_t input = 0;
  };
  std::vector<Term> terms;
};

/// An ordered operation list over a symbol table (vector of equally sized
/// byte regions indexed by symbol id).
class Schedule {
 public:
  explicit Schedule(const gf::Field& f) : field_(&f) {}

  const gf::Field& field() const { return *field_; }

  void add_op(ScheduleOp op) { ops_.push_back(std::move(op)); }
  const std::vector<ScheduleOp>& ops() const { return ops_; }
  bool empty() const { return ops_.empty(); }

  /// Total number of Mult_XOR region operations a replay performs — the
  /// paper's encoding-complexity metric (Figure 9, Eqs. 5-6).
  std::size_t mult_xor_count() const;

  /// Replays the schedule over `symbols`; symbols[id] must be valid for every
  /// id any op references. Output regions are overwritten. This is the
  /// straightforward reference replay; hot paths compile() once and replay
  /// the CompiledSchedule (identical bytes, cached kernels, cache-blocked).
  void execute(std::span<const std::span<std::uint8_t>> symbols) const;

  /// Replays only bytes [offset, offset + length) of every region — the
  /// uncompiled counterpart of CompiledSchedule::execute_range, byte-
  /// identical to a full execute() over the union of disjoint ranges.
  /// `offset` must be 64-byte-granular so slices stay symbol-aligned.
  void execute_range(std::span<const std::span<std::uint8_t>> symbols,
                     std::size_t offset, std::size_t length) const;

  /// Distinct symbol ids referenced by any op (outputs and inputs).
  std::size_t touched_symbol_count() const;

  /// Lowers this schedule for fast repeated replay (see
  /// stair/compiled_schedule.h). `strip_bytes` = 0 picks the strip size
  /// automatically.
  CompiledSchedule compile(std::size_t strip_bytes = 0) const;

  /// Copy with all zero-coefficient terms removed — the "don't multiply by
  /// known zeros" optimization the ablation benchmark measures against the
  /// paper-faithful schedule. `zero_symbols[id]` marks symbols known to be
  /// zero (outside globals in inside mode); terms reading them are dropped
  /// too. Pass an empty vector to drop only zero coefficients.
  Schedule optimized(const std::vector<bool>& zero_symbols = {}) const;

  /// Backward slice: the minimal sub-schedule whose replay produces the
  /// symbols in `wanted_outputs`. Ops not (transitively) feeding a wanted
  /// output are dropped. This powers degraded reads — recovering one lost
  /// sector without repairing the whole stripe. Requires the single-writer
  /// property all builders here maintain (each symbol written at most once).
  Schedule pruned_for(const std::vector<std::uint32_t>& wanted_outputs) const;

 private:
  const gf::Field* field_;
  std::vector<ScheduleOp> ops_;
};

}  // namespace stair
