// Codec session-pipeline battery: batch results through submit_encode /
// submit_decode / submit_update must be byte-identical to serial per-stripe
// calls across configs x batch sizes x pool widths; plan-cache and
// workspace-pool amortization must hold across batches; the workspace
// cross-code reuse hazard must stay fixed. Also runs under the TSan CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <optional>
#include <vector>

#include "gf/kernel.h"
#include "gf/region.h"
#include "stair/codec.h"
#include "stair/stair_code.h"
#include "stair/update_engine.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/workspace_pool.h"

namespace stair {
namespace {

// Force a multi-worker default pool even on single-vCPU hosts (overwrite=0
// keeps an explicit user STAIR_THREADS), so submits really run on workers
// everywhere this suite runs. Must precede the first default_pool() use.
const std::size_t g_pool_width = [] {
  ::setenv("STAIR_THREADS", "4", /*overwrite=*/0);
  return ThreadPool::default_pool().concurrency();
}();

std::vector<std::uint8_t> all_bytes(const StripeView& view) {
  std::vector<std::uint8_t> out;
  for (const auto& r : view.stored) out.insert(out.end(), r.begin(), r.end());
  for (const auto& r : view.outside_globals) out.insert(out.end(), r.begin(), r.end());
  return out;
}

struct ConfigCase {
  StairConfig cfg;
  GlobalParityMode mode;
};

std::vector<ConfigCase> config_matrix() {
  return {
      {{.n = 8, .r = 8, .m = 2, .e = {1, 2}}, GlobalParityMode::kInside},
      {{.n = 6, .r = 4, .m = 1, .e = {1, 1}}, GlobalParityMode::kInside},
      {{.n = 8, .r = 6, .m = 2, .e = {2}}, GlobalParityMode::kOutside},
  };
}

// Batch of stripes with per-stripe random data, serially encoded reference.
struct Batch {
  std::vector<StripeBuffer> stripes;
  std::vector<std::vector<std::uint8_t>> data;
  std::vector<std::vector<std::uint8_t>> encoded;  // expected bytes

  Batch(const StairCode& code, std::size_t count, std::size_t symbol, std::uint64_t seed) {
    Workspace ws;
    for (std::size_t i = 0; i < count; ++i) {
      stripes.emplace_back(code, symbol);
      data.emplace_back(stripes[i].data_size());
      Rng rng(seed + i);
      rng.fill(data[i]);
      stripes[i].set_data(data[i]);
      StripeBuffer reference(code, symbol);
      reference.set_data(data[i]);
      code.encode(reference.view(), EncodingMethod::kAuto, &ws);
      encoded.push_back(all_bytes(reference.view()));
    }
  }
};

TEST(CodecPipeline, EncodeBatchMatchesSerialAcrossMatrix) {
  // min_slice_bytes=256 so mid-size symbols exercise the range-sliced path
  // (batch smaller than the pool) as well as the stripe-per-task path.
  for (const auto& c : config_matrix()) {
    const StairCode code(c.cfg, c.mode);
    Codec codec(code, {.min_slice_bytes = 256});
    for (std::size_t symbol : {std::size_t{72}, std::size_t{1000}, std::size_t{4096 + 64}}) {
      for (std::size_t count : {std::size_t{1}, std::size_t{3}, std::size_t{8}, std::size_t{17}}) {
        Batch batch(code, count, symbol, 1000 + symbol + count);
        std::vector<Codec::Handle> handles;
        for (auto& stripe : batch.stripes)
          handles.push_back(codec.submit_encode(stripe.view()));
        for (std::size_t i = 0; i < count; ++i) {
          EXPECT_TRUE(handles[i].ok());
          ASSERT_EQ(all_bytes(batch.stripes[i].view()), batch.encoded[i])
              << c.cfg.to_string() << " symbol=" << symbol << " batch=" << count
              << " stripe=" << i;
        }
      }
    }
    codec.wait_all();
    EXPECT_EQ(codec.jobs_in_flight(), 0u);
  }
}

// The submit pipeline replaying in altmap (the default on SIMD backends for
// the wide widths) must be byte-identical to the standard-layout serial
// path — encode and cached-plan decode, across the sliced and
// stripe-per-task regimes — and must hand user buffers back in standard
// layout (the byte comparison proves both at once). Symbol size includes a
// partial trailing altmap block.
TEST(CodecPipeline, WideWidthAltmapPipelineMatchesStandardSerial) {
  struct LayoutGuard {
    ~LayoutGuard() { gf::reset_layout(); }
  } layout_guard;

  for (int w : {16, 32}) {
    const StairConfig cfg{.n = 8, .r = 6, .m = 2, .e = {1, 2}, .w = w};
    const StairCode code(cfg);
    const std::size_t symbol = 4096 + 72;  // 65 blocks + 8-byte standard tail
    const std::size_t count = 6;

    gf::force_layout(gf::RegionLayout::kStandard);
    Batch batch(code, count, symbol, 9000 + w);  // reference built standard
    gf::force_layout(gf::RegionLayout::kAltmap);

    Codec codec(code, {.min_slice_bytes = 256});
    std::vector<Codec::Handle> handles;
    for (auto& stripe : batch.stripes) handles.push_back(codec.submit_encode(stripe.view()));
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_TRUE(handles[i].ok());
      ASSERT_EQ(all_bytes(batch.stripes[i].view()), batch.encoded[i])
          << "encode w=" << w << " stripe=" << i;
    }

    // Failure epoch decoded through the session plan cache, still altmap.
    std::vector<bool> mask(cfg.n * cfg.r, false);
    for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + 3] = true;
    mask[2 * cfg.n + 5] = true;
    ASSERT_TRUE(code.is_recoverable(mask));
    Rng garbage(31 + w);
    handles.clear();
    for (auto& stripe : batch.stripes) {
      for (std::size_t idx = 0; idx < mask.size(); ++idx)
        if (mask[idx]) garbage.fill(stripe.view().stored[idx]);
      handles.push_back(codec.submit_decode(stripe.view(), mask));
    }
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_TRUE(handles[i].ok());
      ASSERT_EQ(all_bytes(batch.stripes[i].view()), batch.encoded[i])
          << "decode w=" << w << " stripe=" << i;
    }
    gf::reset_layout();
  }
}

TEST(CodecPipeline, EncodeBatchMatchesSerialAcrossPoolWidths) {
  const StairConfig cfg{.n = 8, .r = 8, .m = 2, .e = {1, 2}};
  const StairCode code(cfg);
  const std::size_t symbol = 4096 + 64;
  for (std::size_t width : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    ThreadPool pool(width);
    Codec codec(code, {.pool = &pool, .min_slice_bytes = 256});
    Batch batch(code, 6, symbol, 77 + width);
    std::vector<Codec::Handle> handles;
    for (auto& stripe : batch.stripes) handles.push_back(codec.submit_encode(stripe.view()));
    codec.wait_all();
    for (std::size_t i = 0; i < batch.stripes.size(); ++i) {
      EXPECT_TRUE(handles[i].done());
      ASSERT_EQ(all_bytes(batch.stripes[i].view()), batch.encoded[i])
          << "width=" << width << " stripe=" << i;
    }
  }
}

TEST(CodecPipeline, DecodeBatchRecoversAndSharesPlans) {
  for (const auto& c : config_matrix()) {
    const StairCode code(c.cfg, c.mode);
    Codec codec(code, {.min_slice_bytes = 256});
    const std::size_t symbol = 1000, count = 12;
    Batch batch(code, count, symbol, 500);

    // Two distinct failure-epoch masks alternating across the batch: one
    // whole chunk, and one chunk plus an extra sector.
    std::vector<std::vector<bool>> masks(2, std::vector<bool>(c.cfg.n * c.cfg.r, false));
    for (std::size_t i = 0; i < c.cfg.r; ++i) masks[0][i * c.cfg.n + 0] = true;
    for (std::size_t i = 0; i < c.cfg.r; ++i) masks[1][i * c.cfg.n + 1] = true;
    masks[1][(c.cfg.r - 1) * c.cfg.n + 3] = true;

    Rng garbage(9);
    for (std::size_t i = 0; i < count; ++i) {
      code.encode(batch.stripes[i].view());
      const auto& mask = masks[i % 2];
      for (std::size_t idx = 0; idx < mask.size(); ++idx)
        if (mask[idx]) garbage.fill(batch.stripes[i].view().stored[idx]);
    }

    std::vector<Codec::Handle> handles;
    for (std::size_t i = 0; i < count; ++i)
      handles.push_back(codec.submit_decode(batch.stripes[i].view(), masks[i % 2]));
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_TRUE(handles[i].ok()) << c.cfg.to_string() << " stripe=" << i;
      std::vector<std::uint8_t> out(batch.stripes[i].data_size());
      batch.stripes[i].get_data(out);
      ASSERT_EQ(out, batch.data[i]) << c.cfg.to_string() << " stripe=" << i;
    }
    // Epoch amortization: each distinct mask inverted and compiled once.
    EXPECT_EQ(codec.plan_cache().misses(), 2u) << c.cfg.to_string();
    EXPECT_EQ(codec.plan_cache().hits(), count - 2) << c.cfg.to_string();
  }
}

TEST(CodecPipeline, UnrecoverableMaskCompletesNotOk) {
  const StairConfig cfg{.n = 8, .r = 8, .m = 2, .e = {1, 2}};
  Codec codec(cfg);
  const StairCode& code = codec.code();
  StripeBuffer stripe(code, 512);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(3);
  rng.fill(data);
  stripe.set_data(data);
  code.encode(stripe.view());
  const auto before = all_bytes(stripe.view());

  // m + m' + 1 = 5 whole chunks: outside any STAIR coverage.
  std::vector<bool> mask(cfg.n * cfg.r, false);
  for (std::size_t j = 0; j < 5; ++j)
    for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + j] = true;

  Codec::Handle handle = codec.submit_decode(stripe.view(), mask);
  EXPECT_TRUE(handle.done());
  EXPECT_FALSE(handle.ok());
  EXPECT_EQ(all_bytes(stripe.view()), before);  // stripe untouched

  // The session keeps serving recoverable work afterwards.
  std::vector<bool> small(cfg.n * cfg.r, false);
  small[0] = true;
  Rng garbage(4);
  garbage.fill(stripe.view().stored[0]);
  EXPECT_TRUE(codec.submit_decode(stripe.view(), small).ok());
  std::vector<std::uint8_t> out(stripe.data_size());
  stripe.get_data(out);
  EXPECT_EQ(out, data);
}

TEST(CodecPipeline, UpdateBatchMatchesSerialAcrossMatrix) {
  for (const auto& c : config_matrix()) {
    const StairCode code(c.cfg, c.mode);
    const UpdateEngine engine(code);
    Codec codec(code, {.min_slice_bytes = 256});
    const std::size_t symbol = 4096 + 64, count = 7;

    Batch serial(code, count, symbol, 42);
    Batch batched(code, count, symbol, 42);

    // One update per stripe (disjoint stripes may run concurrently).
    std::vector<std::vector<std::uint8_t>> fresh(count, std::vector<std::uint8_t>(symbol));
    Rng rng(11);
    std::vector<Codec::Handle> handles;
    for (std::size_t i = 0; i < count; ++i) {
      rng.fill(fresh[i]);
      const std::size_t idx = (i * 3) % code.data_symbol_count();
      engine.update(serial.stripes[i].view(), idx, fresh[i]);
      handles.push_back(codec.submit_update(batched.stripes[i].view(), idx, fresh[i]));
    }
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_TRUE(handles[i].ok());
      ASSERT_EQ(all_bytes(batched.stripes[i].view()), all_bytes(serial.stripes[i].view()))
          << c.cfg.to_string() << " stripe=" << i;
    }
  }
}

TEST(CodecPipeline, MixedPipelineRoundTrips) {
  const StairConfig cfg{.n = 8, .r = 8, .m = 2, .e = {1, 2}};
  Codec codec(cfg, {.min_slice_bytes = 256});
  const StairCode& code = codec.code();
  const std::size_t symbol = 1000, count = 9;
  Batch batch(code, count, symbol, 314);

  std::vector<Codec::Handle> encodes;
  for (auto& stripe : batch.stripes) encodes.push_back(codec.submit_encode(stripe.view()));
  for (auto& h : encodes) h.wait();

  std::vector<bool> mask(cfg.n * cfg.r, false);
  for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + 2] = true;
  Rng garbage(13);
  for (auto& stripe : batch.stripes)
    for (std::size_t idx = 0; idx < mask.size(); ++idx)
      if (mask[idx]) garbage.fill(stripe.view().stored[idx]);

  std::vector<Codec::Handle> decodes;
  for (auto& stripe : batch.stripes) decodes.push_back(codec.submit_decode(stripe.view(), mask));
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_TRUE(decodes[i].ok());
    std::vector<std::uint8_t> out(batch.stripes[i].data_size());
    batch.stripes[i].get_data(out);
    ASSERT_EQ(out, batch.data[i]) << "stripe=" << i;
  }
  EXPECT_EQ(codec.jobs_submitted(), 2u * count);
  EXPECT_EQ(codec.jobs_completed(), 2u * count);
}

TEST(CodecPipeline, WorkspacesSettleAtHighWaterMark) {
  const StairConfig cfg{.n = 8, .r = 8, .m = 2, .e = {1, 2}};
  Codec codec(cfg);
  const StairCode& code = codec.code();
  const std::size_t symbol = 512, count = 6, waves = 5;
  Batch batch(code, count, symbol, 2718);

  for (std::size_t wave = 0; wave < waves; ++wave) {
    std::vector<Codec::Handle> handles;
    for (auto& stripe : batch.stripes) handles.push_back(codec.submit_encode(stripe.view()));
    codec.wait_all();
    for (auto& h : handles) EXPECT_TRUE(h.ok());
  }
  // Millions of stripes must not mean millions of workspaces: slots grow only
  // to the concurrent high-water mark, later waves lease released ones.
  EXPECT_LE(codec.workspaces_created(), count);
  EXPECT_GE(codec.workspaces_created(), 1u);
}

TEST(CodecPipeline, SubmitValidatesOnCallerThread) {
  const StairConfig cfg{.n = 8, .r = 8, .m = 2, .e = {1, 2}};
  Codec codec(cfg);
  StripeBuffer stripe(codec.code(), 512);
  StripeView bad = stripe.view();
  bad.stored.pop_back();
  EXPECT_THROW(codec.submit_encode(bad), std::invalid_argument);
  EXPECT_THROW(codec.submit_decode(bad, std::vector<bool>(cfg.n * cfg.r, false)),
               std::invalid_argument);

  std::vector<std::uint8_t> content(512);
  EXPECT_THROW(codec.submit_update(stripe.view(), codec.code().data_symbol_count(), content),
               std::invalid_argument);
  std::vector<std::uint8_t> short_content(100);
  EXPECT_THROW(codec.submit_update(stripe.view(), 0, short_content), std::invalid_argument);
  codec.wait_all();
}

TEST(CodecPipeline, HandleSemantics) {
  Codec::Handle invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_TRUE(invalid.done());
  invalid.wait();  // no-op
  EXPECT_TRUE(invalid.ok());

  const StairConfig cfg{.n = 6, .r = 4, .m = 1, .e = {1, 1}};
  Codec codec(cfg);
  StripeBuffer stripe(codec.code(), 256);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(1);
  rng.fill(data);
  stripe.set_data(data);
  Codec::Handle h = codec.submit_encode(stripe.view());
  EXPECT_TRUE(h.valid());
  h.wait();
  h.wait();  // idempotent
  EXPECT_TRUE(h.done());
  EXPECT_TRUE(h.ok());
  Codec::Handle copy = h;  // handles are shareable
  EXPECT_TRUE(copy.done());
}

// Regression for the workspace-reuse hazard: a Workspace carried from one
// StairCode to another with the *same* scratch footprint must not leak the
// first code's written intermediates into regions the second code requires
// to be structurally zero. Before the owner check, same-size reuse skipped
// re-establishing the zeroed scratch and produced wrong parities.
TEST(CodecPipeline, WorkspaceReuseAcrossCodesRegression) {
  // This exact pair reproduced the bug (one of dozens found by sweeping all
  // equal-footprint config pairs): A's upstairs encode leaves written
  // intermediates on scratch cells B's upstairs schedule requires to be
  // structurally zero.
  const StairCode a({.n = 6, .r = 6, .m = 1, .e = {1, 1}});
  const StairCode b({.n = 6, .r = 6, .m = 1, .e = {2}});
  // The hazard requires identical footprints (otherwise the size check
  // already reallocates).
  ASSERT_EQ(a.layout().total_symbols() - a.layout().stored_count(),
            b.layout().total_symbols() - b.layout().stored_count());

  const std::size_t symbol = 256;
  StripeBuffer sa(a, symbol), sb(b, symbol), sb_fresh(b, symbol);
  std::vector<std::uint8_t> da(sa.data_size()), db(sb.data_size());
  Rng rng(21);
  rng.fill(da);
  rng.fill(db);
  sa.set_data(da);
  sb.set_data(db);
  sb_fresh.set_data(db);

  Workspace shared, fresh;
  a.encode(sa.view(), EncodingMethod::kUpstairs, &shared);  // dirties the scratch
  b.encode(sb.view(), EncodingMethod::kUpstairs, &shared);  // reused across codes
  b.encode(sb_fresh.view(), EncodingMethod::kUpstairs, &fresh);
  EXPECT_EQ(all_bytes(sb.view()), all_bytes(sb_fresh.view()));

  // And decode through the re-dirtied workspace round-trips too.
  std::vector<bool> mask(6 * 6, false);
  for (std::size_t i = 0; i < 6; ++i) mask[i * 6 + 1] = true;
  Rng garbage(5);
  for (std::size_t idx = 0; idx < mask.size(); ++idx)
    if (mask[idx]) garbage.fill(sb.view().stored[idx]);
  a.encode(sa.view(), EncodingMethod::kUpstairs, &shared);
  ASSERT_TRUE(b.decode(sb.view(), mask, &shared));
  std::vector<std::uint8_t> out(sb.data_size());
  sb.get_data(out);
  EXPECT_EQ(out, db);
}

// The ABA variant of the hazard above: successive codes constructed in the
// same storage (stack reuse, optional re-emplace) must not be mistaken for
// the previous owner — reuse is keyed on a generation id, not the address.
TEST(CodecPipeline, WorkspaceReuseAcrossSameAddressCodesRegression) {
  const std::size_t symbol = 256;
  Workspace shared;
  std::optional<StairCode> code;

  code.emplace(StairConfig{.n = 6, .r = 6, .m = 1, .e = {1, 1}});
  StripeBuffer sa(*code, symbol);
  std::vector<std::uint8_t> da(sa.data_size());
  Rng rng(33);
  rng.fill(da);
  sa.set_data(da);
  code->encode(sa.view(), EncodingMethod::kUpstairs, &shared);  // dirty scratch

  code.emplace(StairConfig{.n = 6, .r = 6, .m = 1, .e = {2}});  // same address
  StripeBuffer sb(*code, symbol), sb_fresh(*code, symbol);
  std::vector<std::uint8_t> db(sb.data_size());
  rng.fill(db);
  sb.set_data(db);
  sb_fresh.set_data(db);
  Workspace fresh;
  code->encode(sb.view(), EncodingMethod::kUpstairs, &shared);
  code->encode(sb_fresh.view(), EncodingMethod::kUpstairs, &fresh);
  EXPECT_EQ(all_bytes(sb.view()), all_bytes(sb_fresh.view()));
}

TEST(CodecPipeline, WorkspacePoolLeaseLifecycle) {
  WorkspacePool<int> pool;
  EXPECT_EQ(pool.created(), 0u);
  {
    auto a = pool.acquire();
    auto b = pool.acquire();
    *a = 7;
    *b = 9;
    EXPECT_EQ(pool.created(), 2u);
    EXPECT_EQ(pool.in_use(), 2u);
  }
  EXPECT_EQ(pool.in_use(), 0u);
  // Most-recently-released first (scope exit destroys b, then a), intact.
  auto c = pool.acquire();
  EXPECT_EQ(pool.created(), 2u);
  EXPECT_EQ(*c, 7);
  EXPECT_EQ(pool.reused(), 1u);
  // Lease copies share the slot; the last copy releases it.
  auto d = c;
  c.reset();
  EXPECT_EQ(pool.in_use(), 1u);
  d.reset();
  EXPECT_EQ(pool.in_use(), 0u);
}


// jobs_in_flight() is the scrubber's idle-slot gate and the service layer's
// pressure signal, read from arbitrary threads while submits and completions
// race. A relaxed-ordering bug here once let an observer see a completion
// before its submission, underflowing submitted - completed to ~2^64 — which
// reads as "codec saturated" and would wedge every gate built on it. Hammer
// the counter from concurrent submitters + observers: it must never exceed
// what was actually submitted, never underflow, and must return to zero.
TEST(CodecPipeline, JobsInFlightNeverUnderflowsUnderConcurrency) {
  const StairConfig cfg{.n = 6, .r = 4, .m = 1, .e = {1, 2}};
  Codec codec(cfg);
  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kJobsEach = 200;
  constexpr std::size_t kTotal = kSubmitters * kJobsEach;

  std::atomic<bool> go{false}, done{false};
  std::atomic<std::uint64_t> underflows{0}, observations{0};

  // Observers: spin on the gate exactly like the scrubber does.
  std::vector<std::thread> observers;
  for (int o = 0; o < 3; ++o) {
    observers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        const std::size_t in_flight = codec.jobs_in_flight();
        observations.fetch_add(1, std::memory_order_relaxed);
        // An underflow shows up as a number vastly beyond anything
        // submittable; a correct reading is bounded by the total workload.
        if (in_flight > kTotal) underflows.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      // A ring of stripes, each slot's previous job waited before the buffer
      // is resubmitted: many jobs in flight per submitter, but never two
      // writing the same parity bytes.
      constexpr std::size_t kSlots = 8;
      std::vector<StripeBuffer> stripes;
      std::vector<Codec::Handle> pending(kSlots);
      Rng rng(1000 + t);
      for (std::size_t s = 0; s < kSlots; ++s) {
        stripes.emplace_back(codec.code(), 64);
        std::vector<std::uint8_t> data(stripes[s].data_size());
        rng.fill(data);
        stripes[s].set_data(data);
      }
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < kJobsEach; ++i) {
        // Mix eagerly-waited and ring-deferred submissions so completions
        // land both on pool workers and via the helping wait path.
        const std::size_t slot = i % kSlots;
        if (pending[slot].valid()) pending[slot].wait();
        Codec::Handle h = codec.submit_encode(stripes[slot].view());
        if (i % 3 == 0) {
          h.wait();
        } else {
          pending[slot] = std::move(h);
        }
      }
      codec.wait_all();
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : submitters) t.join();
  codec.wait_all();
  done.store(true, std::memory_order_relaxed);
  for (auto& t : observers) t.join();

  EXPECT_EQ(underflows.load(), 0u);
  EXPECT_GT(observations.load(), 0u);
  EXPECT_EQ(codec.jobs_in_flight(), 0u);
  EXPECT_EQ(codec.jobs_submitted(), kTotal);
  EXPECT_EQ(codec.jobs_completed(), kTotal);
}

}  // namespace
}  // namespace stair
