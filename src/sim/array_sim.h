// Storage-array simulation.
//
// Two simulators live here:
//  * MonteCarlo MTTDL estimation — an event-driven rendition of the §7.1.1
//    Markov model (device failure -> critical mode -> rebuild race against a
//    second failure and latent sector errors), used to cross-validate the
//    analytic MTTDL formulas at inflated failure rates.
//  * DataPathArray — a real array of STAIR-encoded stripes with byte-exact
//    write / corrupt / repair / verify, the substrate for the integration
//    tests and the raid_array_sim example.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/failure_injector.h"
#include "stair/codec.h"
#include "stair/stair_code.h"

namespace stair::sim {

/// Decides whether a stripe-level erasure mask (stored index = row*n + col)
/// is recoverable by the code under study.
using RecoverabilityCheck = std::function<bool(const std::vector<bool>&)>;

/// Monte-Carlo array parameters. Rates are per-hour means like §7.2's.
struct MonteCarloParams {
  std::size_t n = 8;            ///< devices
  std::size_t r = 16;           ///< sectors per chunk
  std::size_t stripes = 1000;   ///< stripes per array
  double mttf_hours = 1000.0;   ///< mean time to device failure (per device)
  double rebuild_hours = 10.0;  ///< mean rebuild time
  InjectorParams sector;        ///< latent-sector-error model in critical mode
  std::size_t episodes = 1000;  ///< device-failure episodes to simulate
  std::uint64_t seed = 1;
};

/// Result of a Monte-Carlo run.
struct MonteCarloResult {
  double mttdl_hours = 0;          ///< simulated_hours / data_loss_events
  std::size_t data_loss_events = 0;
  std::size_t sector_loss_events = 0;  ///< losses caused by sector failures
  std::size_t device_loss_events = 0;  ///< losses caused by a second device
  double simulated_hours = 0;
};

/// Runs the critical-mode race: each episode waits for a device failure,
/// then rebuilds while exposed to a second failure and to latent sector
/// errors whose stripe-level recoverability `check` decides.
MonteCarloResult simulate_array_mttdl(const MonteCarloParams& params,
                                      const RecoverabilityCheck& check);

/// A live array of STAIR stripes holding real bytes. All coding runs through
/// a Codec session: initial encoding and repair submit every stripe as one
/// batch (many stripes in flight on the process pool — the serving-path
/// data layout a real array has), with repair plans shared per failure epoch
/// through the session's decode-plan cache.
class DataPathArray {
 public:
  /// Allocates `stripes` stripes of the code with `symbol_size`-byte sectors
  /// and fills them with seeded random data (batch-encoded at construction).
  DataPathArray(const StairCode& code, std::size_t stripes, std::size_t symbol_size,
                std::uint64_t seed);

  std::size_t stripe_count() const { return stripes_.size(); }

  /// Overwrites the masked symbols with garbage and records them as lost.
  void corrupt(std::size_t stripe, const std::vector<bool>& mask);

  /// Marks a whole device failed across all stripes (chunk column).
  void fail_device(std::size_t device);

  /// Attempts to repair every damaged stripe — one batch of decodes in
  /// flight; returns the number of stripes that could not be recovered
  /// (0 means full recovery).
  std::size_t repair_all();

  /// True iff every stripe's data symbols match the originally written bytes.
  bool verify() const;

  const StairCode& code() const { return *code_; }
  /// The array's codec session (plan-cache stats etc.).
  const Codec& codec() const { return codec_; }

 private:
  const StairCode* code_;
  std::size_t symbol_size_;
  std::vector<StripeBuffer> stripes_;
  std::vector<std::vector<bool>> damage_;          // per stripe stored mask
  std::vector<std::vector<std::uint8_t>> golden_;  // reference data bytes
  Rng rng_;
  // Last member on purpose: destroyed first, so ~Codec's wait_all drains any
  // in-flight jobs before the stripe buffers they reference are freed (an
  // exception unwinding out of repair_all or the constructor otherwise
  // leaves workers writing into freed stripes).
  Codec codec_;
};

}  // namespace stair::sim
