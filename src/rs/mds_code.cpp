#include "rs/mds_code.h"

#include <stdexcept>

#include "matrix/cauchy.h"
#include "matrix/vandermonde.h"

namespace stair {

namespace {

Matrix build_generator(const gf::Field& f, std::size_t kappa, std::size_t eta,
                       SystematicMdsCode::Kind kind) {
  if (kappa == 0 || kappa >= eta)
    throw std::invalid_argument("SystematicMdsCode: need 0 < kappa < eta");
  if (eta > f.order())
    throw std::invalid_argument("SystematicMdsCode: eta exceeds field size");
  if (kind == SystematicMdsCode::Kind::kVandermonde)
    return systematic_vandermonde_generator(f, kappa, eta);
  return Matrix::identity(f, kappa).concat_cols(cauchy_matrix(f, kappa, eta - kappa));
}

}  // namespace

SystematicMdsCode::SystematicMdsCode(const gf::Field& f, std::size_t kappa,
                                     std::size_t eta, Kind kind)
    : field_(&f), kappa_(kappa), eta_(eta), generator_(build_generator(f, kappa, eta, kind)) {}

Matrix SystematicMdsCode::recovery_matrix(std::span<const std::size_t> available,
                                          std::span<const std::size_t> targets) const {
  if (available.size() != kappa_)
    throw std::invalid_argument("recovery_matrix: need exactly kappa available positions");
  for (std::size_t p : available)
    if (p >= eta_) throw std::invalid_argument("recovery_matrix: position out of range");
  for (std::size_t p : targets)
    if (p >= eta_) throw std::invalid_argument("recovery_matrix: target out of range");

  // codeword = u * G. With G_A = columns(available) and G_T = columns(targets):
  // u = avail * G_A^{-1}, so targets = avail * (G_A^{-1} * G_T).
  std::vector<std::size_t> all_rows(kappa_);
  for (std::size_t i = 0; i < kappa_; ++i) all_rows[i] = i;

  const Matrix g_a = generator_.select(all_rows, available);
  auto g_a_inv = g_a.inverse();
  if (!g_a_inv)
    throw std::logic_error("recovery_matrix: MDS violation — submatrix singular");
  const Matrix g_t = generator_.select(all_rows, targets);
  const Matrix m = g_a_inv->mul(g_t);  // kappa x targets

  Matrix r(*field_, targets.size(), kappa_);
  for (std::size_t t = 0; t < targets.size(); ++t)
    for (std::size_t j = 0; j < kappa_; ++j) r.set(t, j, m.at(j, t));
  return r;
}

void SystematicMdsCode::encode(std::span<const std::span<const std::uint8_t>> data,
                               std::span<const std::span<std::uint8_t>> parity) const {
  if (data.size() != kappa_ || parity.size() != parity_count())
    throw std::invalid_argument("encode: wrong number of regions");
  for (std::size_t p = 0; p < parity.size(); ++p) {
    auto dst = parity[p];
    std::fill(dst.begin(), dst.end(), std::uint8_t{0});
    for (std::size_t j = 0; j < kappa_; ++j)
      gf::mult_xor_region(*field_, generator_.at(j, kappa_ + p), data[j], dst);
  }
}

void SystematicMdsCode::decode(
    std::span<const std::size_t> available,
    std::span<const std::span<const std::uint8_t>> available_regions,
    std::span<const std::size_t> erased,
    std::span<const std::span<std::uint8_t>> erased_regions) const {
  if (available.size() != available_regions.size() || erased.size() != erased_regions.size())
    throw std::invalid_argument("decode: positions/regions size mismatch");
  const Matrix r = recovery_matrix(available, erased);
  for (std::size_t t = 0; t < erased.size(); ++t) {
    auto dst = erased_regions[t];
    std::fill(dst.begin(), dst.end(), std::uint8_t{0});
    for (std::size_t j = 0; j < kappa_; ++j)
      gf::mult_xor_region(*field_, r.at(t, j), available_regions[j], dst);
  }
}

}  // namespace stair
