#include "util/thread_pool.h"

#include <cstdlib>

namespace stair {

std::size_t ThreadPool::resolve_concurrency(const char* env_value, std::size_t hardware) {
  if (hardware == 0) hardware = 1;
  if (env_value) {
    char* end = nullptr;
    const long v = std::strtol(env_value, &end, 10);
    if (end != env_value && *end == '\0' && v > 0) {
      // Backstop against typos like STAIR_THREADS=10000 starving the system.
      constexpr long kMax = 1024;
      return static_cast<std::size_t>(v < kMax ? v : kMax);
    }
  }
  return hardware;
}

std::size_t ThreadPool::default_concurrency() {
  return resolve_concurrency(std::getenv("STAIR_THREADS"),
                             std::thread::hardware_concurrency());
}

ThreadPool& ThreadPool::default_pool() {
  static ThreadPool pool(default_concurrency());
  return pool;
}

ThreadPool::ThreadPool(std::size_t concurrency) {
  if (concurrency == 0) concurrency = default_concurrency();
  workers_.reserve(concurrency - 1);
  for (std::size_t i = 0; i + 1 < concurrency; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Entry entry;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to help with
      entry = std::move(queue_.front());
      queue_.pop_front();
    }
    if (entry.batch) {
      drain(*entry.batch);
    } else {
      entry.task();
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::submit(std::function<void()> fn) {
  if (workers_.empty()) {
    fn();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Entry{nullptr, std::move(fn)});
  }
  cv_.notify_one();
}

bool ThreadPool::try_run_one() {
  Entry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    entry = std::move(queue_.front());
    queue_.pop_front();
  }
  if (entry.batch) {
    drain(*entry.batch);
  } else {
    entry.task();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void ThreadPool::drain(Batch& batch) {
  std::size_t retired = 0;
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) break;
    // After a failure the batch only retires its remaining indices (so the
    // caller's wait terminates); it stops running user work.
    if (!batch.failed.load(std::memory_order_relaxed)) {
      try {
        batch.fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch.mu);
        if (!batch.error) batch.error = std::current_exception();
        batch.failed.store(true, std::memory_order_relaxed);
      }
    }
    ++retired;
  }
  if (retired == 0) return;
  indices_run_.fetch_add(retired, std::memory_order_relaxed);
  bool last;
  {
    std::lock_guard<std::mutex> lock(batch.mu);
    batch.done += retired;
    last = batch.done == batch.count;
  }
  if (last) batch.cv.notify_all();
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                              std::size_t max_participants) {
  if (count == 0) return;
  std::size_t participants = concurrency();
  if (max_participants != 0 && max_participants < participants)
    participants = max_participants;
  if (participants > count) participants = count;

  auto batch = std::make_shared<Batch>(count, fn);
  const std::size_t helpers = participants - 1;  // the caller is one participant
  if (helpers > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (std::size_t i = 0; i < helpers; ++i) queue_.push_back(Entry{batch, {}});
    }
    if (helpers == 1)
      cv_.notify_one();
    else
      cv_.notify_all();
  }

  drain(*batch);

  std::unique_lock<std::mutex> lock(batch->mu);
  batch->cv.wait(lock, [&] { return batch->done == batch->count; });
  batches_run_.fetch_add(1, std::memory_order_relaxed);
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace stair
