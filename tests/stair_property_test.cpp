// Structural property tests: the homomorphic property (Theorem A.1), the
// uneven parity relations (Property 5.1, Figure 8), and update-penalty
// consistency between the coefficient analysis and actual re-encoding.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "stair/stair_code.h"
#include "stair/update_analysis.h"
#include "util/rng.h"

namespace stair {
namespace {

// Scalar canonical stripe: every symbol of the (r+e_max) x (n+m') grid as a
// single GF(2^8) element, built from an encoded stripe with 1-byte symbols.
class CanonicalStripe {
 public:
  explicit CanonicalStripe(const StairCode& code, std::uint64_t seed = 77)
      : code_(code), layout_(code.layout()) {
    StripeBuffer stripe(code, 1);
    std::vector<std::uint8_t> data(stripe.data_size());
    Rng rng(seed);
    rng.fill(data);
    stripe.set_data(data);
    code.encode(stripe.view());

    const StairConfig& cfg = code.config();
    grid_.assign(layout_.total_symbols(), 0);
    for (std::size_t i = 0; i < cfg.r; ++i)
      for (std::size_t j = 0; j < cfg.n; ++j)
        grid_[layout_.id(i, j)] = stripe.symbol(i, j)[0];

    // Intermediate parities: Crow over each stored row.
    const auto& f = code.field();
    for (std::size_t i = 0; i < cfg.r; ++i)
      for (std::size_t l = 0; l < cfg.m_prime(); ++l)
        grid_[layout_.id(i, cfg.n + l)] = row_project(i, cfg.n + l);

    // Augmented rows: Ccol over every canonical column (stored chunks and
    // intermediate columns alike).
    for (std::size_t col = 0; col < layout_.canonical_cols(); ++col)
      for (std::size_t h = 0; h < cfg.e_max(); ++h) {
        std::uint32_t acc = 0;
        for (std::size_t i = 0; i < cfg.r; ++i)
          acc ^= f.mul(code.ccol().generator().at(i, cfg.r + h), grid_[layout_.id(i, col)]);
        grid_[layout_.id(cfg.r + h, col)] = acc;
      }
  }

  std::uint32_t at(std::size_t row, std::size_t col) const {
    return grid_[layout_.id(row, col)];
  }

  // Crow parity position `pos` recomputed from the data positions of
  // canonical row `row`.
  std::uint32_t row_project(std::size_t row, std::size_t pos) const {
    const auto& f = code_.field();
    std::uint32_t acc = 0;
    for (std::size_t j = 0; j < code_.crow().kappa(); ++j)
      acc ^= f.mul(code_.crow().generator().at(j, pos), grid_[layout_.id(row, j)]);
    return acc;
  }

 private:
  const StairCode& code_;
  const StairLayout& layout_;
  std::vector<std::uint32_t> grid_;
};

class HomomorphicTest : public ::testing::TestWithParam<StairConfig> {};

TEST_P(HomomorphicTest, EveryAugmentedRowIsACrowCodeword) {
  const StairCode code(GetParam(), GlobalParityMode::kInside);
  const CanonicalStripe canon(code);
  const StairConfig& cfg = GetParam();
  for (std::size_t h = 0; h < cfg.e_max(); ++h)
    for (std::size_t pos = cfg.n - cfg.m; pos < cfg.n + cfg.m_prime(); ++pos)
      EXPECT_EQ(canon.at(cfg.r + h, pos), canon.row_project(cfg.r + h, pos))
          << "augmented row " << h << " position " << pos;
}

TEST_P(HomomorphicTest, OutsideGlobalsAreZeroInInsideMode) {
  // §5.1.1 fixes g_{h,l} = 0; the canonical stripe must reproduce that.
  const StairCode code(GetParam(), GlobalParityMode::kInside);
  const CanonicalStripe canon(code);
  const StairConfig& cfg = GetParam();
  for (std::size_t l = 0; l < cfg.m_prime(); ++l)
    for (std::size_t h = 0; h < cfg.e[l]; ++h)
      EXPECT_EQ(canon.at(cfg.r + h, cfg.n + l), 0u) << "g_{" << h << "," << l << "}";
}

TEST_P(HomomorphicTest, OutsideModeStoresTheGlobals) {
  const StairCode code(GetParam(), GlobalParityMode::kOutside);
  StripeBuffer stripe(code, 1);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(77);
  rng.fill(data);
  stripe.set_data(data);
  code.encode(stripe.view());

  // Recompute each global from its intermediate column: g_{h,l} must equal
  // the Ccol projection of intermediates, which we get via the coefficients
  // of a parallel inside-mode canonical check — here simply assert they are
  // not all zero (they are real parity now) and that decoding uses them.
  bool any_nonzero = false;
  for (const auto& g : stripe.view().outside_globals)
    if (g[0] != 0) any_nonzero = true;
  EXPECT_TRUE(any_nonzero) << "outside globals should carry parity";
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HomomorphicTest,
    ::testing::Values(StairConfig{.n = 8, .r = 4, .m = 2, .e = {1, 1, 2}},
                      StairConfig{.n = 6, .r = 5, .m = 1, .e = {2, 3}},
                      StairConfig{.n = 6, .r = 4, .m = 2, .e = {1, 1, 1, 1}},
                      StairConfig{.n = 9, .r = 3, .m = 3, .e = {1, 2}}),
    [](const auto& info) {
      std::string s = "n" + std::to_string(info.param.n) + "r" + std::to_string(info.param.r) +
                      "m" + std::to_string(info.param.m) + "e";
      for (auto v : info.param.e) s += std::to_string(v) + "_";
      return s;
    });

// ---------------------------------------------------------------------------
// Property 5.1: uneven parity relations
// ---------------------------------------------------------------------------

class ParityRelationTest : public ::testing::Test {
 protected:
  ParityRelationTest() : code_({.n = 8, .r = 4, .m = 2, .e = {1, 1, 2}}) {}

  // Coefficient of parity id `pid` on data at (i, j); 0 if (i, j) is not data.
  std::uint32_t coeff(std::uint32_t pid, std::size_t i, std::size_t j) const {
    const auto& layout = code_.layout();
    const auto& ids = layout.data_ids();
    const auto it = std::find(ids.begin(), ids.end(), layout.id(i, j));
    if (it == ids.end()) return 0;
    const auto& pids = layout.parity_ids();
    const auto pit = std::find(pids.begin(), pids.end(), pid);
    EXPECT_NE(pit, pids.end());
    return code_.coefficients().at(pit - pids.begin(), it - ids.begin());
  }

  StairCode code_;
};

TEST_F(ParityRelationTest, ParityDependsOnlyOnUpLeftData) {
  const auto& layout = code_.layout();
  const StairConfig& cfg = code_.config();
  for (std::uint32_t pid : layout.parity_ids()) {
    const std::size_t i0 = layout.row_of(pid);
    const std::size_t j0 = layout.col_of(pid);
    for (std::size_t i = 0; i < cfg.r; ++i)
      for (std::size_t j = 0; j < cfg.n; ++j) {
        if (!layout.is_data(i, j)) continue;
        if (i > i0 || j > j0) {
          EXPECT_EQ(coeff(pid, i, j), 0u)
              << "parity (" << i0 << "," << j0 << ") vs data (" << i << "," << j << ")";
        }
      }
  }
}

TEST_F(ParityRelationTest, TreadColumnsAreMutuallyUnrelated) {
  // e = (1, 1, 2): slots 0 and 1 (columns 3 and 4) share a tread. The global
  // in column 4 must not involve data in column 3 and vice versa (Figure 8).
  const auto& layout = code_.layout();
  const std::uint32_t g01 = layout.id(3, 4);  // ĝ_{0,1}
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(coeff(g01, i, 3), 0u);
  const std::uint32_t g00 = layout.id(3, 3);  // ĝ_{0,0}
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(coeff(g00, i, 4), 0u);
}

TEST_F(ParityRelationTest, RiserRowsAreMutuallyUnrelated) {
  // Rows 0 and 1 sit on the same riser (above the whole stair): p_{1,k} must
  // not involve any data in row 0 (Figure 8's right panel).
  const auto& layout = code_.layout();
  for (std::size_t k = 0; k < 2; ++k) {
    const std::uint32_t p1k = layout.id(1, 6 + k);
    for (std::size_t j = 0; j < 6; ++j) EXPECT_EQ(coeff(p1k, 0, j), 0u);
  }
}

TEST_F(ParityRelationTest, RowParityAboveStairIsRowLocal) {
  // Rows untouched by the stair (rows 0 and 1 here) have purely row-local
  // parities: each depends on exactly its own n - m - ... row data.
  const auto& layout = code_.layout();
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t k = 0; k < 2; ++k) {
      const std::uint32_t pid = layout.id(i, 6 + k);
      for (std::size_t ii = 0; ii < 4; ++ii)
        for (std::size_t j = 0; j < 6; ++j) {
          if (!layout.is_data(ii, j)) continue;
          const bool expect_nonzero = (ii == i);
          if (expect_nonzero)
            EXPECT_NE(coeff(pid, ii, j), 0u) << "row parity must cover its row";
          else
            EXPECT_EQ(coeff(pid, ii, j), 0u);
        }
    }
}

// ---------------------------------------------------------------------------
// Update penalty
// ---------------------------------------------------------------------------

class UpdatePenaltyTest : public ::testing::TestWithParam<StairConfig> {};

TEST_P(UpdatePenaltyTest, CoefficientCountsMatchActualReencoding) {
  const StairCode code(GetParam(), GlobalParityMode::kInside);
  const UpdatePenaltyStats stats = update_penalty(code);
  const auto& layout = code.layout();

  StripeBuffer stripe(code, 1);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(3);
  rng.fill(data);
  stripe.set_data(data);
  code.encode(stripe.view());

  // Flip a handful of data symbols; the number of parity bytes that change
  // must equal the analytic per-symbol count.
  for (std::size_t idx = 0; idx < stats.per_symbol.size(); idx += 3) {
    std::vector<std::uint8_t> before;
    for (std::uint32_t pid : layout.parity_ids())
      before.push_back(stripe.symbol(layout.row_of(pid), layout.col_of(pid))[0]);

    data[idx] ^= 0x5a;
    stripe.set_data(data);
    code.encode(stripe.view());

    std::size_t changed = 0;
    std::size_t p = 0;
    for (std::uint32_t pid : layout.parity_ids()) {
      if (stripe.symbol(layout.row_of(pid), layout.col_of(pid))[0] != before[p]) ++changed;
      ++p;
    }
    EXPECT_EQ(changed, stats.per_symbol[idx]) << "data symbol " << idx;
  }
}

TEST_P(UpdatePenaltyTest, PenaltyBoundsAreSane) {
  const StairCode code(GetParam(), GlobalParityMode::kInside);
  const UpdatePenaltyStats stats = update_penalty(code);
  const StairConfig& cfg = GetParam();
  // Every data symbol affects at least its m row parities; none can affect
  // more than every parity in the stripe.
  EXPECT_GE(stats.min, cfg.m);
  EXPECT_LE(stats.max, code.parity_symbol_count());
  EXPECT_GE(stats.average, static_cast<double>(stats.min));
  EXPECT_LE(stats.average, static_cast<double>(stats.max));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, UpdatePenaltyTest,
    ::testing::Values(StairConfig{.n = 8, .r = 4, .m = 2, .e = {1, 1, 2}},
                      StairConfig{.n = 6, .r = 5, .m = 1, .e = {2}},
                      StairConfig{.n = 8, .r = 4, .m = 3, .e = {1, 3}}),
    [](const auto& info) {
      std::string s = "n" + std::to_string(info.param.n) + "r" + std::to_string(info.param.r) +
                      "m" + std::to_string(info.param.m) + "e";
      for (auto v : info.param.e) s += std::to_string(v) + "_";
      return s;
    });

}  // namespace
}  // namespace stair
