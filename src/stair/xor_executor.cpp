#include "stair/xor_executor.h"

#include <algorithm>
#include <cassert>

namespace stair {

XorExecutor::XorExecutor(const Schedule& schedule, const gf::Field& f) : field_(&f) {
  ops_.reserve(schedule.ops().size());
  for (const auto& op : schedule.ops()) {
    Op lowered;
    lowered.output = op.output;
    for (const auto& term : op.terms) {
      if (term.coeff == 0) continue;
      Term t{gf::multiplication_bitmatrix(f, term.coeff), term.input};
      xor_ops_ += gf::bitmatrix_xor_count(t.bitmatrix);
      lowered.terms.push_back(std::move(t));
    }
    ops_.push_back(std::move(lowered));
  }
}

void XorExecutor::execute(std::span<const std::span<std::uint8_t>> symbols) const {
  for (const auto& op : ops_) {
    assert(op.output < symbols.size());
    auto dst = symbols[op.output];
    // First term writes dst directly (copy-mult) rather than zero-fill +
    // XOR — one fewer full pass per output. Self-referencing ops would read
    // what they just wrote, so they keep the zero-fill order.
    bool self_ref = false;
    for (const auto& term : op.terms)
      if (term.input == op.output) self_ref = true;
    std::size_t first = 0;
    if (self_ref || op.terms.empty()) {
      std::fill(dst.begin(), dst.end(), std::uint8_t{0});
    } else {
      const auto& lead = op.terms.front();
      assert(lead.input < symbols.size());
      gf::bitmatrix_mult_region(lead.bitmatrix, field_->w(), symbols[lead.input], dst);
      first = 1;
    }
    for (std::size_t t = first; t < op.terms.size(); ++t) {
      const auto& term = op.terms[t];
      assert(term.input < symbols.size());
      gf::bitmatrix_mult_xor_region(term.bitmatrix, field_->w(), symbols[term.input], dst);
    }
  }
}

}  // namespace stair
