// file_codec: STAIR-protect a real file across per-device chunk files.
//
//   $ ./file_codec encode <input> <dir> [n=8] [r=16] [m=2] [e=1,2]
//   $ ./file_codec damage <dir> <device> [device...]
//   $ ./file_codec corrupt <dir> <device> <stripe> [bytes=256]
//   $ ./file_codec decode <dir> <output>
//   $ ./file_codec            # self-demo: encode -> damage+corrupt -> decode
//
// encode splits the input into stripes and writes a StripeStore: one
// dev_NN.bin per device plus a manifest with per-chunk checksums. damage
// deletes whole device files (device failures); corrupt scribbles over one
// chunk (a torn write / latent sector error, caught by the checksums).
// decode reconstructs the original file from whatever survives, serving
// damaged stripes through the Codec session's plan cache — the degraded-read
// path.
//
// All file IO runs through the async stripe-IO pipeline (stair/io_pipeline.h):
// chunk reads/writes for stripe k+d overlap the coding work for stripe k
// through a bounded ring of leased stripe slots, on the io_uring backend when
// the kernel offers it (STAIR_IO_BACKEND=threads|uring|auto overrides). This
// replaced the example's original hand-rolled ring, whose slots kept
// workspace leases across stripe boundaries; the pipeline's slots are leased
// per stripe and every workspace passes the session's owner-generation check.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "stair/io_pipeline.h"
#include "util/rng.h"

namespace fs = std::filesystem;
using namespace stair;

namespace {

constexpr std::size_t kSymbolBytes = 4096;

void print_stats(const char* op, const IoPipeline::Stats& st, io::Backend backend) {
  std::printf("%s: %zu stripes (%zu degraded, %zu unrecoverable), "
              "%zu chunks missing, %zu sectors corrupt, %.1f MB read, %.1f MB written [%s IO]\n",
              op, st.stripes, st.degraded_stripes, st.failed_stripes, st.chunks_missing,
              st.sectors_corrupt, st.bytes_read / (1024.0 * 1024.0),
              st.bytes_written / (1024.0 * 1024.0), io::backend_name(backend));
  if (!st.ok) std::fprintf(stderr, "%s failed: %s\n", op, st.error.c_str());
}

int cmd_encode(const fs::path& input, const fs::path& dir, StairConfig cfg) {
  cfg.w = std::max(cfg.minimum_w(), 8);
  cfg.validate();
  Codec codec(cfg);
  IoPipeline pipeline(codec, {.symbol_bytes = kSymbolBytes});
  const IoPipeline::Stats st = pipeline.encode_file(input.string(), dir.string());
  print_stats("encode", st, pipeline.engine().backend());
  if (st.ok)
    std::printf("encoded into %zu stripes across %zu device files (%s)\n", st.stripes,
                cfg.n, cfg.to_string().c_str());
  return st.ok ? 0 : 1;
}

int cmd_damage(const fs::path& dir, const std::vector<std::size_t>& devices) {
  for (std::size_t j : devices) {
    const std::string path = StripeStore::device_path(dir.string(), j);
    if (fs::remove(path))
      std::printf("destroyed device %zu (%s)\n", j, path.c_str());
    else
      std::printf("device %zu already missing\n", j);
  }
  return 0;
}

int cmd_corrupt(const fs::path& dir, std::size_t device, std::size_t stripe,
                std::size_t bytes) {
  const StripeStore store = StripeStore::load(dir.string());
  const std::string path = StripeStore::device_path(dir.string(), device);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  bytes = std::min(bytes, store.chunk_bytes());
  std::vector<std::uint8_t> garbage(bytes);
  Rng rng(stripe * 1000 + device);
  rng.fill(garbage);
  f.seekp(static_cast<std::streamoff>(stripe * store.chunk_bytes()));
  f.write(reinterpret_cast<const char*>(garbage.data()),
          static_cast<std::streamsize>(garbage.size()));
  std::printf("corrupted %zu bytes of chunk (stripe %zu, device %zu) in %s\n", bytes,
              stripe, device, path.c_str());
  return 0;
}

int cmd_decode(const fs::path& dir, const fs::path& output) {
  const StripeStore store = StripeStore::load(dir.string());
  Codec codec(store.cfg);
  IoPipeline pipeline(codec);
  const IoPipeline::Stats st = pipeline.decode_file(dir.string(), output.string());
  print_stats("decode", st, pipeline.engine().backend());
  if (st.ok)
    std::printf("recovered %zu bytes to %s (checksums verified)\n", store.file_size,
                output.string().c_str());
  return st.ok ? 0 : 1;
}

int self_demo() {
  const fs::path dir = fs::temp_directory_path() / "stair_file_codec_demo";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // A 1.5 MB random file.
  const fs::path input = dir / "original.bin";
  std::vector<std::uint8_t> bytes(3 * 512 * 1024 / 2);
  {
    Rng rng(99);
    rng.fill(bytes);
    std::ofstream out(input, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  const fs::path store = dir / "store";
  if (cmd_encode(input, store, {.n = 8, .r = 16, .m = 2, .e = {1, 2}})) return 1;
  // One whole device lost, plus a torn chunk on a surviving device: the mixed
  // device+sector pattern the paper's coverage exists for.
  if (cmd_damage(store, {6})) return 1;
  if (cmd_corrupt(store, 1, 0, 512)) return 1;
  const fs::path restored = dir / "restored.bin";
  if (cmd_decode(store, restored)) return 1;

  std::ifstream in(restored, std::ios::binary);
  std::vector<std::uint8_t> recovered((std::istreambuf_iterator<char>(in)),
                                      std::istreambuf_iterator<char>());
  if (recovered != bytes) {
    std::fprintf(stderr, "self-demo FAILED: restored bytes differ\n");
    return 1;
  }
  std::printf("self-demo passed; artifacts in %s\n", dir.string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return self_demo();
  const std::string cmd = argv[1];
  try {
    if (cmd == "encode" && argc >= 4) {
      StairConfig cfg{.n = 8, .r = 16, .m = 2, .e = {1, 2}};
      if (argc > 4) cfg.n = std::strtoull(argv[4], nullptr, 10);
      if (argc > 5) cfg.r = std::strtoull(argv[5], nullptr, 10);
      if (argc > 6) cfg.m = std::strtoull(argv[6], nullptr, 10);
      if (argc > 7) cfg.e = parse_coverage_list(argv[7]);
      return cmd_encode(argv[2], argv[3], cfg);
    }
    if (cmd == "damage" && argc >= 4) {
      std::vector<std::size_t> devices;
      for (int i = 3; i < argc; ++i) devices.push_back(std::strtoull(argv[i], nullptr, 10));
      return cmd_damage(argv[2], devices);
    }
    if (cmd == "corrupt" && argc >= 5) {
      return cmd_corrupt(argv[2], std::strtoull(argv[3], nullptr, 10),
                         std::strtoull(argv[4], nullptr, 10),
                         argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 256);
    }
    if (cmd == "decode" && argc >= 4) return cmd_decode(argv[2], argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage: %s encode <input> <dir> [n r m e] | damage <dir> <dev...> |\n"
               "       %s corrupt <dir> <dev> <stripe> [bytes] | %s decode <dir> <output> |\n"
               "       %s (self-demo)\n",
               argv[0], argv[0], argv[0], argv[0]);
  return 2;
}
