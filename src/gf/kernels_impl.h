// Region-kernel bodies, compiled once per backend translation unit.
//
// Included by kernels_scalar.cpp / kernels_ssse3.cpp / kernels_avx2.cpp,
// each built with different ISA flags; the preprocessor selects the widest
// loop those flags allow, so one source yields three distinct binary kernel
// sets. Every function here is `static` on purpose: each TU must get its own
// copy compiled under its own flags — a shared inline definition would let
// the linker pick, say, the AVX2 instantiation for the scalar backend and
// fault on pre-AVX2 machines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "gf/kernel.h"

#if defined(__SSSE3__)
#include <tmmintrin.h>
#endif
#if defined(__AVX2__) || defined(__GFNI__)
#include <immintrin.h>
#endif

namespace stair::gf::detail {

// ---------------------------------------------------------------------------
// Scalar loops. Full kernels for the scalar backend; tail handlers (resuming
// at byte `i`) for the SIMD backends.
// ---------------------------------------------------------------------------

template <bool Accum>
static void scalar_w4(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n, std::size_t i = 0) {
  for (; i < n; ++i) {
    const std::uint8_t p = t.pack4[src[i]];
    dst[i] = Accum ? static_cast<std::uint8_t>(dst[i] ^ p) : p;
  }
}

template <bool Accum>
static void scalar_w8(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n, std::size_t i = 0) {
  const std::uint8_t* row = t.row8;
  for (; i < n; ++i) {
    const std::uint8_t p = row[src[i]];
    dst[i] = Accum ? static_cast<std::uint8_t>(dst[i] ^ p) : p;
  }
}

template <bool Accum>
static void scalar_w16(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n, std::size_t i = 0) {
  const std::uint16_t* lo = t.wide16.data();
  const std::uint16_t* hi = t.wide16.data() + 256;
  for (; i < n; i += 2) {
    std::uint16_t x;
    std::memcpy(&x, src + i, 2);
    std::uint16_t p = static_cast<std::uint16_t>(lo[x & 0xff] ^ hi[x >> 8]);
    if (Accum) {
      std::uint16_t d;
      std::memcpy(&d, dst + i, 2);
      p ^= d;
    }
    std::memcpy(dst + i, &p, 2);
  }
}

template <bool Accum>
static void scalar_w32(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n, std::size_t i = 0) {
  const std::uint32_t* tb = t.wide32.data();
  for (; i < n; i += 4) {
    std::uint32_t x;
    std::memcpy(&x, src + i, 4);
    std::uint32_t p = tb[x & 0xff] ^ tb[256 + ((x >> 8) & 0xff)] ^
                      tb[512 + ((x >> 16) & 0xff)] ^ tb[768 + (x >> 24)];
    if (Accum) {
      std::uint32_t d;
      std::memcpy(&d, dst + i, 4);
      p ^= d;
    }
    std::memcpy(dst + i, &p, 4);
  }
}

// ---------------------------------------------------------------------------
// AVX2: 32 bytes per iteration, vpshufb over 128-bit-broadcast nibble tables.
// ---------------------------------------------------------------------------

#if defined(__AVX2__)

static inline __m256i bcast128(const std::uint8_t* table16) {
  return _mm256_broadcastsi128_si256(_mm_load_si128(reinterpret_cast<const __m128i*>(table16)));
}

template <bool Accum>
static inline void store_prod256(std::uint8_t* dst, __m256i prod) {
  if (Accum)
    prod = _mm256_xor_si256(prod, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst)));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), prod);
}

#if defined(__GFNI__)

// GFNI: multiplication by a constant is an 8x8 GF(2) matrix per byte (any
// primitive polynomial), so GF2P8AFFINEQB computes 32 products in one
// instruction — w = 4 packs two independent 4x4 blocks into the same matrix.
template <bool Accum>
static inline void gfni_byte_linear(std::uint64_t matrix, const std::uint8_t* src,
                                    std::uint8_t* dst, std::size_t n, std::size_t& done) {
  const __m256i m = _mm256_set1_epi64x(static_cast<long long>(matrix));
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    store_prod256<Accum>(dst + i, _mm256_gf2p8affine_epi64_epi8(x, m, 0));
  }
  done = i;
}

template <bool Accum>
static void kernel_w4(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  std::size_t i = 0;
  gfni_byte_linear<Accum>(t.affine8, src, dst, n, i);
  scalar_w4<Accum>(t, src, dst, n, i);
}

template <bool Accum>
static void kernel_w8(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  std::size_t i = 0;
  gfni_byte_linear<Accum>(t.affine8, src, dst, n, i);
  scalar_w8<Accum>(t, src, dst, n, i);
}

#else

// w = 4/8 share one shape: two 16-entry tables, one lookup per nibble. For
// w = 4, nib[1][0] holds the high-nibble product pre-shifted left 4 so the
// two pshufb results just OR/XOR together. Only the scalar tail differs
// between the widths.
template <bool Accum>
static void nib2_loop(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n, std::size_t& done) {
  const __m256i tlo = bcast128(t.nib[0][0]);
  const __m256i thi = bcast128(t.nib[1][0]);
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i plo = _mm256_shuffle_epi8(tlo, _mm256_and_si256(x, mask));
    const __m256i phi =
        _mm256_shuffle_epi8(thi, _mm256_and_si256(_mm256_srli_epi64(x, 4), mask));
    store_prod256<Accum>(dst + i, _mm256_xor_si256(plo, phi));
  }
  done = i;
}

template <bool Accum>
static void kernel_w4(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  std::size_t i = 0;
  nib2_loop<Accum>(t, src, dst, n, i);
  scalar_w4<Accum>(t, src, dst, n, i);
}

template <bool Accum>
static void kernel_w8(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  std::size_t i = 0;
  nib2_loop<Accum>(t, src, dst, n, i);
  scalar_w8<Accum>(t, src, dst, n, i);
}

#endif  // __GFNI__

// w = 16: nibble indices extracted in 16-bit lanes (odd bytes zero; every
// table maps 0 -> 0 so they contribute nothing), low/high product bytes
// looked up separately and recombined with a lane shift.
template <bool Accum>
static void kernel_w16(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n) {
  __m256i lo[4], hi[4];
  for (int k = 0; k < 4; ++k) {
    lo[k] = bcast128(t.nib[k][0]);
    hi[k] = bcast128(t.nib[k][1]);
  }
  const __m256i nibm = _mm256_set1_epi16(0x000f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i plo = _mm256_setzero_si256(), phi = _mm256_setzero_si256();
    const __m256i idx[4] = {
        _mm256_and_si256(x, nibm), _mm256_and_si256(_mm256_srli_epi16(x, 4), nibm),
        _mm256_and_si256(_mm256_srli_epi16(x, 8), nibm),
        _mm256_and_si256(_mm256_srli_epi16(x, 12), nibm)};
    for (int k = 0; k < 4; ++k) {
      plo = _mm256_xor_si256(plo, _mm256_shuffle_epi8(lo[k], idx[k]));
      phi = _mm256_xor_si256(phi, _mm256_shuffle_epi8(hi[k], idx[k]));
    }
    store_prod256<Accum>(dst + i, _mm256_xor_si256(plo, _mm256_slli_epi16(phi, 8)));
  }
  scalar_w16<Accum>(t, src, dst, n, i);
}

// w = 32: the nibble-split shuffle needs 8 positions x 4 product bytes =
// 32 table loads + shuffles + lane shifts per vector, which measures *slower*
// than the four 256-entry wide tables (~1.9 vs ~3.4 GB/s on AVX2 hardware),
// so every backend uses the scalar wide-table loop for this width.
template <bool Accum>
static void kernel_w32(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n) {
  scalar_w32<Accum>(t, src, dst, n);
}

// ---------------------------------------------------------------------------
// SSSE3: same algorithms at 16 bytes per iteration.
// ---------------------------------------------------------------------------

#elif defined(__SSSE3__)

static inline __m128i load_table(const std::uint8_t* table16) {
  return _mm_load_si128(reinterpret_cast<const __m128i*>(table16));
}

template <bool Accum>
static inline void store_prod128(std::uint8_t* dst, __m128i prod) {
  if (Accum)
    prod = _mm_xor_si128(prod, _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst)));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), prod);
}

// Shared two-nibble-table loop for w = 4/8; only the scalar tail differs.
template <bool Accum>
static void nib2_loop(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n, std::size_t& done) {
  const __m128i tlo = load_table(t.nib[0][0]);
  const __m128i thi = load_table(t.nib[1][0]);
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i plo = _mm_shuffle_epi8(tlo, _mm_and_si128(x, mask));
    const __m128i phi = _mm_shuffle_epi8(thi, _mm_and_si128(_mm_srli_epi64(x, 4), mask));
    store_prod128<Accum>(dst + i, _mm_xor_si128(plo, phi));
  }
  done = i;
}

template <bool Accum>
static void kernel_w4(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  std::size_t i = 0;
  nib2_loop<Accum>(t, src, dst, n, i);
  scalar_w4<Accum>(t, src, dst, n, i);
}

template <bool Accum>
static void kernel_w8(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  std::size_t i = 0;
  nib2_loop<Accum>(t, src, dst, n, i);
  scalar_w8<Accum>(t, src, dst, n, i);
}

template <bool Accum>
static void kernel_w16(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n) {
  __m128i lo[4], hi[4];
  for (int k = 0; k < 4; ++k) {
    lo[k] = load_table(t.nib[k][0]);
    hi[k] = load_table(t.nib[k][1]);
  }
  const __m128i nibm = _mm_set1_epi16(0x000f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i idx[4] = {_mm_and_si128(x, nibm),
                            _mm_and_si128(_mm_srli_epi16(x, 4), nibm),
                            _mm_and_si128(_mm_srli_epi16(x, 8), nibm),
                            _mm_and_si128(_mm_srli_epi16(x, 12), nibm)};
    __m128i plo = _mm_setzero_si128(), phi = _mm_setzero_si128();
    for (int k = 0; k < 4; ++k) {
      plo = _mm_xor_si128(plo, _mm_shuffle_epi8(lo[k], idx[k]));
      phi = _mm_xor_si128(phi, _mm_shuffle_epi8(hi[k], idx[k]));
    }
    store_prod128<Accum>(dst + i, _mm_xor_si128(plo, _mm_slli_epi16(phi, 8)));
  }
  scalar_w16<Accum>(t, src, dst, n, i);
}

// See the AVX2 note: the 32-shuffle nibble split loses to the wide tables
// for w = 32, so the scalar loop is the kernel here too.
template <bool Accum>
static void kernel_w32(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n) {
  scalar_w32<Accum>(t, src, dst, n);
}

// ---------------------------------------------------------------------------
// No SIMD flags: the scalar loops are the kernels.
// ---------------------------------------------------------------------------

#else

template <bool Accum>
static void kernel_w4(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  scalar_w4<Accum>(t, src, dst, n);
}

template <bool Accum>
static void kernel_w8(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  scalar_w8<Accum>(t, src, dst, n);
}

template <bool Accum>
static void kernel_w16(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n) {
  scalar_w16<Accum>(t, src, dst, n);
}

template <bool Accum>
static void kernel_w32(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n) {
  scalar_w32<Accum>(t, src, dst, n);
}

#endif

static KernelFns impl_kernel_fns() {
  KernelFns fns;
  fns.mult_xor[0] = kernel_w4<true>;
  fns.mult_xor[1] = kernel_w8<true>;
  fns.mult_xor[2] = kernel_w16<true>;
  fns.mult_xor[3] = kernel_w32<true>;
  fns.mult[0] = kernel_w4<false>;
  fns.mult[1] = kernel_w8<false>;
  fns.mult[2] = kernel_w16<false>;
  fns.mult[3] = kernel_w32<false>;
  return fns;
}

}  // namespace stair::gf::detail
