// ClusterSim battery: analytic-vs-simulated agreement with an explicit
// Poisson band for two (m, s) configs, seeded determinism (bit-identical
// event traces, single-loss replay from the recorded child seed), the
// cluster-wide repair-bandwidth cap under a trace-driven concurrent-failure
// storm (processor sharing stretches completions to k x solo), and the
// data-path validation harness that replays drawn masks — including
// correlated bursts — onto a real on-disk StripeStore through the
// production Scrubber and per-sector checksum path.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "reliability/prediction.h"
#include "sim/cluster_sim.h"
#include "sim/scrubber.h"

namespace stair::sim {
namespace {

// Small arrays + inflated rates: enough loss events for a tight band while
// the whole run stays well under a second.
ClusterConfig agreement_config(StairConfig code, double fixed_p_sec,
                               std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.code = std::move(code);
  cfg.arrays = 32;
  cfg.stripes_per_array = 64;
  cfg.device_bytes = 32.0 * 1024 * 1024;
  cfg.mttf_hours = 500.0;
  cfg.repair_mbps_per_array = 128.0;  // solo rebuild ~0.25 s: tiny vs mttf
  cfg.scrub_period_hours = -1.0;      // fixed-p_sec mode: scrubbing is moot
  cfg.fixed_p_sec = fixed_p_sec;
  cfg.seed = seed;
  cfg.record_trace = false;  // agreement runs are long; skip the strings
  return cfg;
}

// Sizes sim_hours for ~`target` expected loss events, so the Poisson band is
// meaningful without hand-tuning per config.
double hours_for_expected_events(const ClusterConfig& cfg, double target) {
  ClusterSim sim(cfg);
  const auto prediction = reliability::predict_reliability(sim.prediction_query());
  EXPECT_TRUE(std::isfinite(prediction.mttdl_renewal_hours));
  EXPECT_GT(prediction.p_arr, 1e-3) << "config too reliable for a cheap test";
  return target * prediction.mttdl_renewal_hours / static_cast<double>(cfg.arrays);
}

void expect_agreement(ClusterConfig cfg, const char* label) {
  cfg.sim_hours = hours_for_expected_events(cfg, 120.0);
  ClusterSim sim(cfg);
  const auto report = sim.run();
  EXPECT_GT(report.loss_events, 0u) << label;
  EXPECT_TRUE(report.within_band)
      << label << ": observed " << report.loss_events << " losses vs band ["
      << report.band.lo << ", " << report.band.hi << "] (expected "
      << report.band.expected << ", z = " << report.band.z << ")";
  // Roll-up sanity: exposure and the headline unit are populated, and the
  // measured repair amplification is the n-chunk rebuild fan-in.
  EXPECT_GT(report.user_pb_years, 0.0);
  EXPECT_GT(report.losses_per_pb_year, 0.0);
  EXPECT_GT(report.rebuilds_completed, 0u);
  EXPECT_NEAR(report.repair_amplification, static_cast<double>(cfg.code.n), 0.05)
      << label;
}

TEST(ClusterSimAgreement, StairE1WithinBand) {
  expect_agreement(
      agreement_config({.n = 4, .r = 4, .m = 1, .e = {1}, .w = 8}, 0.01, 11), "e={1}");
}

TEST(ClusterSimAgreement, StairE12WithinBand) {
  expect_agreement(
      agreement_config({.n = 6, .r = 4, .m = 1, .e = {1, 2}, .w = 8}, 0.02, 12),
      "e={1,2}");
}

TEST(ClusterSimAgreement, PredictionQueryInvertsStripeGeometry) {
  const auto cfg = agreement_config({.n = 4, .r = 4, .m = 1, .e = {1}, .w = 8}, 0.01, 1);
  const auto q = ClusterSim(cfg).prediction_query();
  // Eq. 11's stripes-per-array, C / (S * r), must land exactly on the
  // simulated count — that is what makes p_arr comparable.
  EXPECT_EQ(static_cast<std::size_t>(
                std::floor(q.system.device_bytes /
                           (q.system.sector_bytes * static_cast<double>(q.system.r)))),
            cfg.stripes_per_array);
  const double solo_hours =
      cfg.device_bytes / (cfg.repair_mbps_per_array * 1024.0 * 1024.0 * 3600.0);
  EXPECT_NEAR(q.system.rebuild_hours, solo_hours, 1e-12);
}

// --- seeded determinism -----------------------------------------------------

TEST(ClusterSimReplay, TracesAreBitIdenticalForAFixedSeed) {
  auto cfg = agreement_config({.n = 4, .r = 4, .m = 1, .e = {1}, .w = 8}, 0.02, 42);
  cfg.record_trace = true;
  cfg.sim_hours = 400.0;
  const auto a = ClusterSim(cfg).run();
  const auto b = ClusterSim(cfg).run();
  ASSERT_GT(a.trace.size(), 0u);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i)
    ASSERT_EQ(a.trace[i], b.trace[i]) << "trace diverges at event " << i;
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (std::size_t i = 0; i < a.losses.size(); ++i) {
    EXPECT_EQ(a.losses[i].time_hours, b.losses[i].time_hours);
    EXPECT_EQ(a.losses[i].episode_seed, b.losses[i].episode_seed);
    EXPECT_EQ(a.losses[i].mask, b.losses[i].mask);
  }
}

TEST(ClusterSimReplay, LossEventsReplayFromChildSeedAlone) {
  auto cfg = agreement_config({.n = 4, .r = 4, .m = 1, .e = {1}, .w = 8}, 0.02, 7);
  cfg.sim_hours = 600.0;
  ClusterSim sim(cfg);
  const auto report = sim.run();
  std::size_t replayed = 0;
  for (const auto& ev : report.losses) {
    if (ev.kind != LossKind::kSectorLoss) continue;
    const auto again = sim.replay_loss(ev);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->stripe, ev.stripe);
    EXPECT_EQ(again->mask, ev.mask);
    if (++replayed == 5) break;
  }
  EXPECT_GT(replayed, 0u) << "run produced no sector-loss events to replay";
}

// --- repair-bandwidth cap ---------------------------------------------------

TEST(ClusterSimRepairCap, ConcurrentRebuildsShareTheCap) {
  ClusterConfig cfg;
  cfg.code = {.n = 4, .r = 4, .m = 1, .e = {1}, .w = 8};
  cfg.arrays = 8;
  cfg.stripes_per_array = 16;
  cfg.device_bytes = 8.0 * 1024 * 1024;
  cfg.mttf_hours = 1e12;  // no natural failures: the trace drives everything
  cfg.repair_mbps_per_array = 256.0;
  cfg.repair_cap_mbps = 256.0;  // three rebuilds -> each gets a third
  cfg.scrub_period_hours = -1.0;
  cfg.sim_hours = 1.0;
  cfg.seed = 3;
  const double t0 = 0.001;
  for (std::size_t a = 0; a < 3; ++a)
    cfg.injected_failures.push_back({t0, a, 0});

  const auto report = ClusterSim(cfg).run();
  EXPECT_EQ(report.device_failures, 3u);
  EXPECT_EQ(report.rebuilds_completed, 3u);
  EXPECT_EQ(report.max_concurrent_rebuilds, 3u);
  EXPECT_LE(report.max_aggregate_repair_mbps, cfg.repair_cap_mbps * 1.0001);
  EXPECT_EQ(report.loss_events, 0u);

  // Fair sharing: all three finish together at t0 + 3 x solo rebuild time.
  const double solo_hours =
      cfg.device_bytes / (cfg.repair_mbps_per_array * 1024.0 * 1024.0 * 3600.0);
  std::vector<double> done_at;
  for (const auto& line : report.trace) {
    if (line.find("rebuilt") == std::string::npos) continue;
    done_at.push_back(std::strtod(line.c_str() + 2, nullptr));  // "t=..."
  }
  // Tolerance = the trace's %.9f timestamp resolution.
  ASSERT_EQ(done_at.size(), 3u) << "expected three rebuilt trace lines";
  for (double t : done_at) EXPECT_NEAR(t, t0 + 3.0 * solo_hours, 1e-9);

  // Control: uncapped, the same storm rebuilds at full per-array speed.
  cfg.repair_cap_mbps = 0.0;
  const auto solo = ClusterSim(cfg).run();
  EXPECT_NEAR(solo.max_aggregate_repair_mbps, 3.0 * cfg.repair_mbps_per_array, 1e-6);
  std::vector<double> solo_done;
  for (const auto& line : solo.trace)
    if (line.find("rebuilt") != std::string::npos)
      solo_done.push_back(std::strtod(line.c_str() + 2, nullptr));
  ASSERT_EQ(solo_done.size(), 3u);
  for (double t : solo_done) EXPECT_NEAR(t, t0 + solo_hours, 1e-9);
}

TEST(ClusterSimRepairCap, OverflowWhenSecondInjectedFailureLandsMidRebuild) {
  ClusterConfig cfg;
  cfg.code = {.n = 4, .r = 4, .m = 1, .e = {1}, .w = 8};
  cfg.arrays = 2;
  cfg.stripes_per_array = 16;
  cfg.device_bytes = 64.0 * 1024 * 1024;
  cfg.mttf_hours = 1e12;
  cfg.repair_mbps_per_array = 1.0;  // rebuild takes ~0.018 h: room to overlap
  cfg.scrub_period_hours = -1.0;
  cfg.sim_hours = 1.0;
  cfg.seed = 4;
  cfg.injected_failures.push_back({0.001, 0, 0});
  cfg.injected_failures.push_back({0.002, 0, 2});  // same array, mid-rebuild

  const auto report = ClusterSim(cfg).run();
  ASSERT_EQ(report.loss_events, 1u);
  EXPECT_EQ(report.device_overflow_losses, 1u);
  EXPECT_EQ(report.losses[0].kind, LossKind::kDeviceOverflow);
  EXPECT_EQ(report.losses[0].failed_devices, (std::vector<std::size_t>{0, 2}));
  EXPECT_NEAR(report.losses[0].time_hours, 0.002, 1e-9);
}

// --- data-path validation ---------------------------------------------------

LossEvent craft_loss_event(const ClusterConfig& cfg) {
  const StairCode code(cfg.code);
  InjectorParams sector;
  sector.model = cfg.sector_model;
  sector.p_sec = 0.25;
  sector.b1 = cfg.b1;
  sector.alpha = cfg.alpha;
  for (std::uint64_t seed = 1; seed < 200; ++seed) {
    auto loss = ClusterSim::sample_critical_loss(code, cfg.stripes_per_array,
                                                 sector, {1}, seed);
    if (!loss) continue;
    LossEvent ev;
    ev.time_hours = 1.0;
    ev.array = 0;
    ev.kind = LossKind::kSectorLoss;
    ev.failed_devices = {1};
    ev.episode_seed = seed;
    ev.p_latent = sector.p_sec;
    ev.stripe = loss->stripe;
    ev.mask = loss->mask;
    return ev;
  }
  ADD_FAILURE() << "no seed in [1, 200) produced a loss at p_sec = 0.25";
  return {};
}

TEST(ClusterSimDataPath, CorrelatedBurstLossAgreesWithRealScrubPath) {
  ClusterConfig cfg;
  cfg.code = {.n = 4, .r = 4, .m = 1, .e = {1}, .w = 8};
  cfg.stripes_per_array = 4;
  cfg.sector_model = SectorModel::kCorrelated;  // bursts, end to end
  cfg.validation_stripes = 4;
  cfg.validation_symbol_bytes = 1024;
  cfg.seed = 9;
  const LossEvent ev = craft_loss_event(cfg);
  ASSERT_FALSE(ev.mask.empty());

  ClusterSim sim(cfg);
  // The drawn burst mask replays bit-exactly from its child seed first.
  const auto again = sim.replay_loss(ev);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->mask, ev.mask);

  ValidationStats stats;
  sim.validate_on_data_path(ev, stats);
  stats.finalize();
  EXPECT_TRUE(stats.error.empty()) << stats.error;
  EXPECT_EQ(stats.events_checked, 1u);
  EXPECT_EQ(stats.mismatches, 0u)
      << "production repair path disagreed with the coverage verdict";
  EXPECT_GT(stats.sectors_repaired, 0u);
  EXPECT_GT(stats.calm_samples, 0u);
  EXPECT_GT(stats.storm_samples, 0u);
  EXPECT_GT(stats.rebuild_mbps, 0.0);
}

TEST(ClusterSimDataPath, FullRunValidatesItsOwnLossEvents) {
  ClusterConfig cfg;
  cfg.code = {.n = 4, .r = 4, .m = 1, .e = {1}, .w = 8};
  cfg.arrays = 8;
  cfg.stripes_per_array = 8;
  cfg.device_bytes = 4.0 * 1024 * 1024;
  cfg.mttf_hours = 200.0;
  cfg.repair_mbps_per_array = 128.0;
  cfg.scrub_period_hours = -1.0;
  cfg.fixed_p_sec = 0.05;
  cfg.sim_hours = 2000.0;
  cfg.seed = 21;
  cfg.validation = ValidationMode::kDataPath;
  cfg.max_validated_events = 1;
  cfg.validation_stripes = 4;
  cfg.validation_symbol_bytes = 1024;

  const auto report = ClusterSim(cfg).run();
  ASSERT_GT(report.sector_losses, 0u) << "sim too short to draw a sector loss";
  EXPECT_EQ(report.validation.events_checked, 1u);
  EXPECT_TRUE(report.validation.error.empty()) << report.validation.error;
  EXPECT_EQ(report.validation.mismatches, 0u);
  EXPECT_GT(report.validation.calm_samples, 0u);
}

}  // namespace
}  // namespace stair::sim
