// Incremental data updates (§6.3 in practice).
//
// Rewriting one data sector in place must patch every parity symbol that
// depends on it. Re-encoding the whole stripe costs the full Eq. 5/6 work;
// the linear structure allows the minimal alternative
//     parity ^= coeff * (old_data ^ new_data)
// touching exactly the symbols the update-penalty analysis counts. This is
// the read-modify-write path storage systems actually run, and the reason
// §6.3 steers STAIR at WORM/backup workloads: `parity_writes()` per update is
// the device-write amplification.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stair/stair_code.h"

namespace stair {

/// Pre-compiled per-data-symbol parity patch lists for one code.
class UpdateEngine {
 public:
  /// Builds the patch lists from the code's generator coefficients (triggers
  /// coefficient derivation on first use; cached thereafter).
  explicit UpdateEngine(const StairCode& code);

  const StairCode& code() const { return *code_; }

  /// Overwrites data symbol `data_index` (index into layout().data_ids())
  /// with `new_content` and incrementally patches all dependent parities.
  /// The stripe must be consistently encoded beforehand; it is consistently
  /// encoded afterwards. With a sliced policy the delta computation and
  /// every parity patch are spread over up to policy.threads pool
  /// participants (0 = pool width) in cache-aware byte slices — each slice
  /// computes its delta range and applies all patches while that range is
  /// cache-resident. Byte-identical across policies; slicing is worthwhile
  /// for megabyte symbols.
  void update(const StripeView& stripe, std::size_t data_index,
              std::span<const std::uint8_t> new_content,
              ExecPolicy policy = ExecPolicy::serial()) const;

  /// Thin wrapper over update() with ExecPolicy::sliced(threads).
  void update_parallel(const StripeView& stripe, std::size_t data_index,
                       std::span<const std::uint8_t> new_content,
                       std::size_t threads = 0) const {
    update(stripe, data_index, new_content, ExecPolicy::sliced(threads));
  }

  /// The per-range body every update path replays (also the building block
  /// Codec's pipelined submit_update slices over): computes
  /// delta[off, off+len) = old ^ new into `delta_scratch` (a caller-owned
  /// buffer of at least symbol_size bytes), overwrites the data range, and
  /// mult_xors every dependent parity's range. Disjoint ranges may run
  /// concurrently; the full [0, symbol_size) range equals one serial update.
  /// Arguments are validated by the callers, not here (hot path).
  void update_range(const StripeView& stripe, std::size_t data_index,
                    std::span<const std::uint8_t> new_content,
                    std::span<std::uint8_t> delta_scratch, std::size_t offset,
                    std::size_t length) const;

  /// Working-set width of one update of `data_index` (delta + data + every
  /// patched parity) — what cache-aware slicing divides its budget by.
  std::size_t touched_regions(std::size_t data_index) const {
    return 2 + patches_[data_index].size();
  }

  /// Number of parity symbols rewritten by an update of `data_index` —
  /// exactly the §6.3 update penalty of that symbol.
  std::size_t parity_writes(std::size_t data_index) const {
    return patches_[data_index].size();
  }

  /// Mult_XOR count of one update (1 delta + one per parity patch).
  std::size_t update_cost(std::size_t data_index) const {
    return 1 + patches_[data_index].size();
  }

 private:
  struct Patch {
    std::uint32_t coeff;
    // The coefficient resolved to its cached split-table kernel at engine
    // build time, so the per-update patch loop performs no table work.
    std::shared_ptr<const gf::CompiledKernel> kernel;
    std::size_t stored_index;  // row * n + col of the parity symbol
    std::size_t global_index;  // index into outside_globals, or SIZE_MAX
  };

  const StairCode* code_;
  std::vector<std::vector<Patch>> patches_;  // indexed by data symbol
};

}  // namespace stair
