// CompiledSchedule equivalence: the compiled (kernel-resolved, copy-mult,
// strip-mined) replay must be byte-identical to the reference
// Schedule::execute on the same symbol table — including edge ops (no terms,
// zero coefficients, a = 1 terms, chained outputs) and strip sizes that
// force multiple passes over the regions.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "stair/compiled_schedule.h"
#include "stair/schedule.h"
#include "util/buffer.h"
#include "util/rng.h"

namespace stair {
namespace {

class CompiledScheduleTest : public ::testing::TestWithParam<int> {
 protected:
  const gf::Field& f() const { return gf::field(GetParam()); }
  std::size_t symbol_bytes() const { return GetParam() >= 8 ? GetParam() / 8 : 1; }

  // Builds a random schedule over `symbols` ids with chained dependencies:
  // later ops may read earlier outputs, like real up/downstairs schedules.
  Schedule random_schedule(Rng& rng, std::size_t symbols, std::size_t ops) const {
    Schedule s(f());
    for (std::size_t o = 0; o < ops; ++o) {
      ScheduleOp op;
      op.output = static_cast<std::uint32_t>(rng.next_below(symbols));
      const std::size_t terms = 1 + rng.next_below(5);
      for (std::size_t t = 0; t < terms; ++t) {
        ScheduleOp::Term term;
        term.coeff = static_cast<std::uint32_t>(rng.next_u64()) & f().max_element();
        do {
          term.input = static_cast<std::uint32_t>(rng.next_below(symbols));
        } while (term.input == op.output);
        op.terms.push_back(term);
      }
      s.add_op(std::move(op));
    }
    return s;
  }

  void expect_equivalent(const Schedule& s, std::size_t symbols, std::size_t size,
                         std::size_t strip_bytes, Rng& rng) {
    std::vector<AlignedBuffer> ref_bufs, cmp_bufs;
    std::vector<std::span<std::uint8_t>> ref, cmp;
    for (std::size_t i = 0; i < symbols; ++i) {
      ref_bufs.emplace_back(size);
      cmp_bufs.emplace_back(size);
      rng.fill(ref_bufs.back().span());
      std::memcpy(cmp_bufs.back().data(), ref_bufs.back().data(), size);
      ref.push_back(ref_bufs.back().span());
      cmp.push_back(cmp_bufs.back().span());
    }

    s.execute(ref);
    const CompiledSchedule compiled(s, strip_bytes);
    compiled.execute(cmp);

    for (std::size_t i = 0; i < symbols; ++i)
      ASSERT_EQ(std::memcmp(ref_bufs[i].data(), cmp_bufs[i].data(), size), 0)
          << "symbol " << i << " w=" << GetParam() << " size=" << size
          << " strip=" << strip_bytes;
  }
};

TEST_P(CompiledScheduleTest, RandomSchedulesMatchReferenceReplay) {
  Rng rng(23 + GetParam());
  for (std::size_t size : {std::size_t{64}, std::size_t{96}, std::size_t{256},
                           std::size_t{1024}}) {
    if (size % symbol_bytes() != 0) continue;
    const Schedule s = random_schedule(rng, /*symbols=*/10, /*ops=*/12);
    // strip 0 = auto; 64 forces many strips; huge = single pass.
    for (std::size_t strip : {std::size_t{0}, std::size_t{64}, std::size_t{1} << 20})
      expect_equivalent(s, 10, size, strip, rng);
  }
}

TEST_P(CompiledScheduleTest, EdgeOpsMatchReferenceReplay) {
  Rng rng(41 + GetParam());
  Schedule s(f());

  // Op with no terms: output must be zeroed.
  s.add_op({.output = 0, .terms = {}});
  // Op whose terms are all zero coefficients: also zeroed.
  s.add_op({.output = 1, .terms = {{0, 2}, {0, 3}}});
  // Leading zero coefficient before a real term (copy-mult must skip it).
  s.add_op({.output = 2, .terms = {{0, 3}, {1, 4}, {3 & f().max_element() ? 3u : 2u, 5}}});
  // Pure a = 1 chain (XOR/copy shortcut path).
  s.add_op({.output = 3, .terms = {{1, 4}, {1, 5}}});
  // Chained dependency on an output written above.
  s.add_op({.output = 6, .terms = {{2, 2}, {1, 3}}});

  for (std::size_t strip : {std::size_t{0}, std::size_t{64}})
    expect_equivalent(s, 8, 192, strip, rng);
}

TEST_P(CompiledScheduleTest, MultXorCountDropsZeroCoefficients) {
  Schedule s(f());
  s.add_op({.output = 0, .terms = {{0, 1}, {1, 2}, {2, 3}}});
  s.add_op({.output = 4, .terms = {{0, 1}}});
  EXPECT_EQ(s.mult_xor_count(), 4u);  // the paper metric counts listed terms
  EXPECT_EQ(CompiledSchedule(s).mult_xor_count(), 2u);  // replay work
}

TEST_P(CompiledScheduleTest, PrunedScheduleCompilesAndMatches) {
  Rng rng(59 + GetParam());
  Schedule s = random_schedule(rng, 10, 12);
  const Schedule sliced = s.pruned_for({s.ops().back().output});
  expect_equivalent(sliced, 10, 256, 0, rng);
}

INSTANTIATE_TEST_SUITE_P(AllWordSizes, CompiledScheduleTest, ::testing::Values(4, 8, 16, 32),
                         [](const auto& info) { return "w" + std::to_string(info.param); });

}  // namespace
}  // namespace stair
