#include "sim/array_sim.h"

#include <algorithm>
#include <utility>

namespace stair::sim {

MonteCarloResult simulate_array_mttdl(const MonteCarloParams& params,
                                      const RecoverabilityCheck& check) {
  MonteCarloResult result;
  FailureInjector injector(params.sector, params.seed);
  Rng& rng = injector.rng();

  for (std::size_t episode = 0; episode < params.episodes; ++episode) {
    // State 0 -> 1: first device failure after Exp(mttf / n).
    result.simulated_hours +=
        rng.next_exponential(params.mttf_hours / static_cast<double>(params.n));
    const std::size_t failed_device = rng.next_below(params.n);

    // Critical mode: rebuild races a second failure.
    const double rebuild = rng.next_exponential(params.rebuild_hours);
    const double second_failure =
        rng.next_exponential(params.mttf_hours / static_cast<double>(params.n - 1));
    if (second_failure < rebuild) {
      result.simulated_hours += second_failure;
      ++result.data_loss_events;
      ++result.device_loss_events;
      continue;
    }

    // Survived the race; check latent sector errors discovered during rebuild.
    result.simulated_hours += rebuild;
    bool lost = false;
    for (std::size_t s = 0; s < params.stripes && !lost; ++s) {
      const std::vector<bool> mask =
          injector.sample_stripe_mask(params.n, params.r, {failed_device});
      bool has_sector_failure = false;
      for (std::size_t i = 0; i < params.r && !has_sector_failure; ++i)
        for (std::size_t j = 0; j < params.n; ++j)
          if (j != failed_device && mask[i * params.n + j]) {
            has_sector_failure = true;
            break;
          }
      if (has_sector_failure && !check(mask)) lost = true;
    }
    if (lost) {
      ++result.data_loss_events;
      ++result.sector_loss_events;
    }
  }

  result.mttdl_hours = result.data_loss_events == 0
                           ? result.simulated_hours  // lower bound
                           : result.simulated_hours /
                                 static_cast<double>(result.data_loss_events);
  return result;
}

DataPathArray::DataPathArray(const StairCode& code, std::size_t stripes,
                             std::size_t symbol_size, std::uint64_t seed)
    : code_(&code), symbol_size_(symbol_size), rng_(seed), codec_(code) {
  stripes_.reserve(stripes);
  damage_.resize(stripes);
  golden_.resize(stripes);
  std::vector<Codec::Handle> handles;
  handles.reserve(stripes);
  for (std::size_t s = 0; s < stripes; ++s) {
    stripes_.emplace_back(code, symbol_size);
    golden_[s].resize(stripes_[s].data_size());
    rng_.fill(golden_[s]);
    stripes_[s].set_data(golden_[s]);
    handles.push_back(codec_.submit_encode(stripes_[s].view()));
    damage_[s].assign(code.layout().stored_count(), false);
  }
  for (auto& h : handles) h.wait();
}

void DataPathArray::corrupt(std::size_t stripe, const std::vector<bool>& mask) {
  StripeBuffer& buf = stripes_[stripe];
  const StairConfig& cfg = code_->config();
  for (std::size_t i = 0; i < cfg.r; ++i)
    for (std::size_t j = 0; j < cfg.n; ++j) {
      const std::size_t idx = i * cfg.n + j;
      if (!mask[idx]) continue;
      rng_.fill(buf.symbol(i, j));  // garbage, so stale reads are caught
      damage_[stripe][idx] = true;
    }
}

void DataPathArray::fail_device(std::size_t device) {
  const StairConfig& cfg = code_->config();
  for (std::size_t s = 0; s < stripes_.size(); ++s) {
    std::vector<bool> mask(cfg.r * cfg.n, false);
    for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + device] = true;
    corrupt(s, mask);
  }
}

std::size_t DataPathArray::repair_all() {
  // One batch of decodes in flight: a failure epoch shares its mask across
  // stripes, so the session cache compiles each distinct plan once and every
  // other stripe replays it concurrently.
  std::vector<std::pair<std::size_t, Codec::Handle>> pending;
  for (std::size_t s = 0; s < stripes_.size(); ++s) {
    if (std::none_of(damage_[s].begin(), damage_[s].end(), [](bool b) { return b; }))
      continue;
    pending.emplace_back(s, codec_.submit_decode(stripes_[s].view(), damage_[s]));
  }
  std::size_t unrecoverable = 0;
  for (auto& [s, handle] : pending) {
    if (handle.ok()) {
      std::fill(damage_[s].begin(), damage_[s].end(), false);
    } else {
      ++unrecoverable;
    }
  }
  return unrecoverable;
}

bool DataPathArray::verify() const {
  std::vector<std::uint8_t> out;
  for (std::size_t s = 0; s < stripes_.size(); ++s) {
    out.resize(golden_[s].size());
    stripes_[s].get_data(out);
    if (out != golden_[s]) return false;
  }
  return true;
}

}  // namespace stair::sim
