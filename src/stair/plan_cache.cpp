#include "stair/plan_cache.h"

#include <mutex>
#include <stdexcept>

namespace stair {

DecodePlanCache::DecodePlanCache(const StairCode& code, std::size_t capacity)
    : code_(&code), capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("DecodePlanCache: capacity must be >= 1");
}

std::size_t DecodePlanCache::MaskHash::operator()(const std::vector<bool>& mask) const {
  // FNV-1a over the bits, 64 per step.
  std::uint64_t h = 1469598103934665603ULL;
  std::uint64_t word = 0;
  int bits = 0;
  auto mix = [&h](std::uint64_t w) {
    h ^= w;
    h *= 1099511628211ULL;
  };
  for (bool b : mask) {
    word = (word << 1) | (b ? 1 : 0);
    if (++bits == 64) {
      mix(word);
      word = 0;
      bits = 0;
    }
  }
  mix(word ^ (static_cast<std::uint64_t>(mask.size()) << 32));
  return static_cast<std::size_t>(h);
}

std::size_t DecodePlanCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return map_.size();
}

DecodePlanCache::PlanPtr DecodePlanCache::plan(const std::vector<bool>& erased) {
  const std::uint64_t now = tick_.fetch_add(1, std::memory_order_relaxed) + 1;

  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = map_.find(erased);
    if (it != map_.end()) {
      it->second->stamp.store(now, std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->plan;
    }
  }

  // Miss: build and compile outside the lock so a slow construction never
  // blocks other masks' hits. Two threads racing on the same fresh mask both
  // build; the insert below keeps whichever landed first.
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto schedule = code_->build_decode_schedule(erased);
  PlanPtr compiled =
      schedule ? std::make_shared<const CompiledSchedule>(*schedule) : nullptr;

  // Re-stamp with a fresh tick: the build above may have taken long enough
  // that `now` is stale, and inserting with it would make this brand-new
  // entry the immediate eviction victim under concurrent churn.
  const std::uint64_t fresh = tick_.fetch_add(1, std::memory_order_relaxed) + 1;

  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = map_.find(erased);
  if (it != map_.end()) {
    it->second->stamp.store(fresh, std::memory_order_relaxed);
    return it->second->plan;
  }
  if (map_.size() >= capacity_) {
    // Evict the stalest entry. O(capacity) scan, but misses are once per
    // epoch mask; replay hits never pay for this.
    auto victim = map_.begin();
    std::uint64_t oldest = victim->second->stamp.load(std::memory_order_relaxed);
    for (auto scan = map_.begin(); scan != map_.end(); ++scan) {
      const std::uint64_t s = scan->second->stamp.load(std::memory_order_relaxed);
      if (s < oldest) {
        oldest = s;
        victim = scan;
      }
    }
    map_.erase(victim);
  }
  map_.emplace(erased, std::make_unique<Entry>(compiled, fresh));
  return compiled;
}

}  // namespace stair
