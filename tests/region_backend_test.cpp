// Region-kernel backend equivalence: every compiled backend (scalar, SSSE3,
// AVX2, GFNI — selected via force_backend) must produce bit-identical
// results to plain scalar GF arithmetic for every word size, including
// unaligned buffers, odd tail lengths, aliasing, and the a = 0 / a = 1 edge
// coefficients — in both region layouts. The altmap property tests pin the
// layout spec itself (an independent transform written from the region.h
// comment) and the round trip convert -> mult_xor(altmap) -> convert-back
// against the standard-layout scalar reference. This is the safety net
// under the runtime dispatcher.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "gf/gf.h"
#include "gf/kernel.h"
#include "gf/region.h"
#include "util/buffer.h"
#include "util/rng.h"

namespace stair::gf {
namespace {

std::vector<Backend> available_backends() {
  std::vector<Backend> v;
  for (Backend b : {Backend::kScalar, Backend::kSsse3, Backend::kAvx2, Backend::kGfni,
                    Backend::kAvx512})
    if (backend_supported(b)) v.push_back(b);
  return v;
}

// Independent reference: symbol-at-a-time multiply via Field::mul only.
void reference_mult_xor(const Field& f, std::uint32_t a,
                        std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  if (f.w() == 4) {
    for (std::size_t i = 0; i < src.size(); ++i) {
      const std::uint32_t lo = f.mul(a, src[i] & 0xf);
      const std::uint32_t hi = f.mul(a, src[i] >> 4);
      dst[i] ^= static_cast<std::uint8_t>(lo | (hi << 4));
    }
    return;
  }
  const std::size_t bytes = static_cast<std::size_t>(f.w()) / 8;
  for (std::size_t i = 0; i < src.size(); i += bytes) {
    std::uint32_t x = 0, d = 0;
    std::memcpy(&x, src.data() + i, bytes);
    std::memcpy(&d, dst.data() + i, bytes);
    d ^= f.mul(a, x);
    std::memcpy(dst.data() + i, &d, bytes);
  }
}

// Pins a backend for the duration of one test, restoring auto-detect after.
struct BackendGuard {
  explicit BackendGuard(Backend b) { EXPECT_TRUE(force_backend(b)); }
  ~BackendGuard() { reset_backend(); }
};

// Independent altmap reference, written from the layout spec in region.h:
// each full 64-byte block is transposed so byte b of the block's symbols is
// contiguous at plane offset b * (64 / (w/8)); the tail stays standard.
std::vector<std::uint8_t> spec_to_altmap(int w, std::span<const std::uint8_t> in) {
  std::vector<std::uint8_t> out(in.begin(), in.end());
  if (w < 16) return out;
  const std::size_t bytes = static_cast<std::size_t>(w) / 8;
  const std::size_t symbols_per_block = 64 / bytes;
  for (std::size_t i = 0; i + 64 <= in.size(); i += 64)
    for (std::size_t j = 0; j < symbols_per_block; ++j)
      for (std::size_t b = 0; b < bytes; ++b)
        out[i + b * symbols_per_block + j] = in[i + j * bytes + b];
  return out;
}

class RegionBackendTest : public ::testing::TestWithParam<std::tuple<int, Backend>> {
 protected:
  int w() const { return std::get<0>(GetParam()); }
  Backend backend() const { return std::get<1>(GetParam()); }
  const Field& f() const { return field(w()); }
  std::size_t symbol_bytes() const { return w() >= 8 ? w() / 8 : 1; }

  std::vector<std::uint32_t> coefficients(Rng& rng) const {
    std::vector<std::uint32_t> v{0, 1, 2, 3, f().max_element()};
    for (int i = 0; i < 6; ++i) {
      const std::uint32_t a = static_cast<std::uint32_t>(rng.next_u64()) & f().max_element();
      v.push_back(a ? a : 2);
    }
    return v;
  }
};

TEST_P(RegionBackendTest, MultXorMatchesScalarArithmetic) {
  if (!backend_supported(backend())) GTEST_SKIP() << "backend not supported here";
  BackendGuard guard(backend());
  Rng rng(101 + w());

  // Sizes straddle the 16- and 32-byte SIMD block sizes and leave odd tails.
  for (std::size_t base : {std::size_t{4}, std::size_t{16}, std::size_t{32},
                           std::size_t{60}, std::size_t{100}, std::size_t{1000},
                           std::size_t{4096}}) {
    const std::size_t size = base - base % symbol_bytes();
    if (size == 0) continue;
    AlignedBuffer src(size), dst(size), ref(size);
    rng.fill(src.span());
    rng.fill(dst.span());
    std::memcpy(ref.data(), dst.data(), size);

    for (std::uint32_t a : coefficients(rng)) {
      mult_xor_region(f(), a, src.span(), dst.span());
      reference_mult_xor(f(), a, src.span(), ref.span());
      ASSERT_EQ(std::memcmp(dst.data(), ref.data(), size), 0)
          << backend_name(backend()) << " w=" << w() << " a=" << a << " size=" << size;
    }
  }
}

TEST_P(RegionBackendTest, UnalignedBuffersAndOddTails) {
  if (!backend_supported(backend())) GTEST_SKIP() << "backend not supported here";
  BackendGuard guard(backend());
  Rng rng(211 + w());
  const std::size_t bytes = symbol_bytes();

  AlignedBuffer src(1024), dst(1024), ref(1024);
  rng.fill(src.span());
  rng.fill(dst.span());
  std::memcpy(ref.data(), dst.data(), 1024);

  // Offsets misalign the pointers relative to any SIMD width while keeping
  // lengths symbol-granular; lengths avoid multiples of 16/32 to force tails.
  for (std::size_t offset : {bytes, 3 * bytes, 5 * bytes, 9 * bytes}) {
    for (std::size_t symbols : {std::size_t{1}, std::size_t{7}, std::size_t{33},
                                std::size_t{101}}) {
      const std::size_t len = symbols * bytes;
      if (offset + len > 1024) continue;
      const std::uint32_t a =
          1 + static_cast<std::uint32_t>(rng.next_below(f().max_element()));
      mult_xor_region(f(), a, src.region(offset, len), dst.region(offset, len));
      reference_mult_xor(f(), a, src.region(offset, len), ref.region(offset, len));
      ASSERT_EQ(std::memcmp(dst.data(), ref.data(), 1024), 0)
          << backend_name(backend()) << " w=" << w() << " offset=" << offset
          << " len=" << len;
    }
  }
}

TEST_P(RegionBackendTest, MultOverwritesAndAllowsExactAliasing) {
  if (!backend_supported(backend())) GTEST_SKIP() << "backend not supported here";
  BackendGuard guard(backend());
  Rng rng(307 + w());
  const std::size_t size = 480;  // multiple of 32 plus none: 480 = 15*32

  AlignedBuffer src(size), dst(size), inplace(size), expect(size);
  rng.fill(src.span());
  rng.fill(dst.span());  // stale contents must be ignored by mult
  std::memcpy(inplace.data(), src.data(), size);

  for (std::uint32_t a : coefficients(rng)) {
    std::memset(expect.data(), 0, size);
    reference_mult_xor(f(), a, src.span(), expect.span());

    mult_region(f(), a, src.span(), dst.span());
    ASSERT_EQ(std::memcmp(dst.data(), expect.data(), size), 0)
        << backend_name(backend()) << " w=" << w() << " a=" << a;

    std::memcpy(inplace.data(), src.data(), size);
    mult_region(f(), a, inplace.span(), inplace.span());
    ASSERT_EQ(std::memcmp(inplace.data(), expect.data(), size), 0)
        << "in-place, " << backend_name(backend()) << " w=" << w() << " a=" << a;
  }
}

TEST_P(RegionBackendTest, CompiledKernelCacheReturnsWorkingKernels) {
  if (!backend_supported(backend())) GTEST_SKIP() << "backend not supported here";
  BackendGuard guard(backend());
  Rng rng(401 + w());
  const std::size_t size = 256;

  for (std::uint32_t a : coefficients(rng)) {
    auto k1 = compiled_kernel(f(), a);
    auto k2 = compiled_kernel(f(), a);
    EXPECT_EQ(k1.get(), k2.get()) << "cache must return the same kernel instance";

    AlignedBuffer src(size), dst(size), ref(size);
    rng.fill(src.span());
    rng.fill(dst.span());
    std::memcpy(ref.data(), dst.data(), size);
    k1->mult_xor(src.span(), dst.span());
    reference_mult_xor(f(), a, src.span(), ref.span());
    ASSERT_EQ(std::memcmp(dst.data(), ref.data(), size), 0)
        << backend_name(backend()) << " w=" << w() << " a=" << a;
  }
}

TEST_P(RegionBackendTest, ConversionMatchesSpecAndRoundTrips) {
  if (!backend_supported(backend())) GTEST_SKIP() << "backend not supported here";
  BackendGuard guard(backend());
  Rng rng(503 + w());
  const std::size_t bytes = symbol_bytes();

  // Sizes cover: shorter than a block, exact blocks, odd tails, many blocks;
  // offsets misalign the base pointer relative to every SIMD width.
  for (std::size_t base : {std::size_t{16}, std::size_t{60}, std::size_t{64},
                           std::size_t{128}, std::size_t{200}, std::size_t{1000},
                           std::size_t{4096}}) {
    const std::size_t size = base - base % bytes;
    for (std::size_t offset : {std::size_t{0}, bytes, 5 * bytes}) {
      AlignedBuffer buf(offset + size);
      rng.fill(buf.span());
      std::vector<std::uint8_t> original(buf.data() + offset, buf.data() + offset + size);

      convert_region(w(), RegionLayout::kStandard, RegionLayout::kAltmap,
                     buf.region(offset, size));
      const std::vector<std::uint8_t> expected = spec_to_altmap(w(), original);
      ASSERT_EQ(std::memcmp(buf.data() + offset, expected.data(), size), 0)
          << "to_altmap spec, " << backend_name(backend()) << " w=" << w()
          << " size=" << size << " offset=" << offset;

      convert_region(w(), RegionLayout::kAltmap, RegionLayout::kStandard,
                     buf.region(offset, size));
      ASSERT_EQ(std::memcmp(buf.data() + offset, original.data(), size), 0)
          << "round trip, " << backend_name(backend()) << " w=" << w()
          << " size=" << size << " offset=" << offset;
    }
  }
}

TEST_P(RegionBackendTest, AltmapMultXorMatchesStandardScalarReference) {
  if (!backend_supported(backend())) GTEST_SKIP() << "backend not supported here";
  BackendGuard guard(backend());
  Rng rng(601 + w());
  const std::size_t bytes = symbol_bytes();

  for (std::size_t base : {std::size_t{32}, std::size_t{64}, std::size_t{100},
                           std::size_t{192}, std::size_t{1000}, std::size_t{4160}}) {
    const std::size_t size = base - base % bytes;
    for (std::size_t offset : {std::size_t{0}, 3 * bytes}) {
      AlignedBuffer src(offset + size), dst(offset + size), ref(offset + size);
      rng.fill(src.span());
      rng.fill(dst.span());
      std::memcpy(ref.data(), dst.data(), offset + size);

      for (std::uint32_t a : coefficients(rng)) {
        auto src_r = src.region(offset, size), dst_r = dst.region(offset, size);
        // Altmap path: convert both operands, multiply planar, convert back.
        convert_region(w(), RegionLayout::kStandard, RegionLayout::kAltmap, src_r);
        convert_region(w(), RegionLayout::kStandard, RegionLayout::kAltmap, dst_r);
        mult_xor_region(f(), a, src_r, dst_r, RegionLayout::kAltmap);
        convert_region(w(), RegionLayout::kAltmap, RegionLayout::kStandard, src_r);
        convert_region(w(), RegionLayout::kAltmap, RegionLayout::kStandard, dst_r);

        reference_mult_xor(f(), a, src_r, ref.region(offset, size));
        ASSERT_EQ(std::memcmp(dst.data(), ref.data(), offset + size), 0)
            << backend_name(backend()) << " w=" << w() << " a=" << a
            << " size=" << size << " offset=" << offset;
      }
    }
  }
}

TEST_P(RegionBackendTest, AltmapMultOverwritesAndAllowsExactAliasing) {
  if (!backend_supported(backend())) GTEST_SKIP() << "backend not supported here";
  BackendGuard guard(backend());
  Rng rng(701 + w());
  const std::size_t size = 992;  // 15 full blocks + a 32-byte tail

  AlignedBuffer src(size), dst(size), inplace(size), expect(size);
  rng.fill(src.span());

  for (std::uint32_t a : coefficients(rng)) {
    std::memset(expect.data(), 0, size);
    reference_mult_xor(f(), a, src.span(), expect.span());
    const std::vector<std::uint8_t> expect_alt = spec_to_altmap(w(), expect.span());

    // Overwrite form reads nothing from dst: stale bytes must be ignored.
    rng.fill(dst.span());
    std::vector<std::uint8_t> src_alt = spec_to_altmap(w(), src.span());
    mult_region(f(), a, src_alt, dst.span(), RegionLayout::kAltmap);
    ASSERT_EQ(std::memcmp(dst.data(), expect_alt.data(), size), 0)
        << backend_name(backend()) << " w=" << w() << " a=" << a;

    // Exact aliasing (in-place scale) over altmap blocks.
    std::memcpy(inplace.data(), src_alt.data(), size);
    mult_region(f(), a, inplace.span(), inplace.span(), RegionLayout::kAltmap);
    ASSERT_EQ(std::memcmp(inplace.data(), expect_alt.data(), size), 0)
        << "in-place, " << backend_name(backend()) << " w=" << w() << " a=" << a;

    // mult_xor aliasing: dst ^= a*dst == (a^1)*dst elementwise.
    std::memcpy(inplace.data(), src_alt.data(), size);
    mult_xor_region(f(), a, inplace.span(), inplace.span(), RegionLayout::kAltmap);
    AlignedBuffer xor_expect(size);
    std::memset(xor_expect.data(), 0, size);
    reference_mult_xor(f(), a ^ 1u, src.span(), xor_expect.span());
    const std::vector<std::uint8_t> xor_expect_alt = spec_to_altmap(w(), xor_expect.span());
    ASSERT_EQ(std::memcmp(inplace.data(), xor_expect_alt.data(), size), 0)
        << "xor-aliasing, " << backend_name(backend()) << " w=" << w() << " a=" << a;
  }
}

TEST(RegionLayoutDispatchTest, PreferredLayoutFollowsBackendAndForceOverrides) {
  if (std::getenv("STAIR_GF_LAYOUT"))
    GTEST_SKIP() << "auto-detection expectations void when the env pins the layout";
  for (Backend b : available_backends()) {
    BackendGuard guard(b);
    // Byte-linear widths never prefer altmap (the layouts coincide).
    EXPECT_EQ(preferred_layout(4), RegionLayout::kStandard);
    EXPECT_EQ(preferred_layout(8), RegionLayout::kStandard);
    const RegionLayout wide = b == Backend::kScalar ? RegionLayout::kStandard
                                                    : RegionLayout::kAltmap;
    EXPECT_EQ(preferred_layout(16), wide) << backend_name(b);
    EXPECT_EQ(preferred_layout(32), wide) << backend_name(b);

    force_layout(RegionLayout::kStandard);
    EXPECT_EQ(preferred_layout(32), RegionLayout::kStandard);
    force_layout(RegionLayout::kAltmap);
    EXPECT_EQ(preferred_layout(32), RegionLayout::kAltmap);
    EXPECT_EQ(preferred_layout(8), RegionLayout::kStandard) << "force never touches w<16";
    reset_layout();
    EXPECT_EQ(preferred_layout(32), wide) << backend_name(b);
  }
}

TEST(RegionLayoutDispatchTest, HasSimdIsPerWidth) {
  if (std::getenv("STAIR_GF_LAYOUT"))
    GTEST_SKIP() << "auto-detection expectations void when the env pins the layout";
  for (Backend b : available_backends()) {
    BackendGuard guard(b);
    const bool simd = b != Backend::kScalar;
    EXPECT_EQ(has_simd(4), simd) << backend_name(b);
    EXPECT_EQ(has_simd(8), simd) << backend_name(b);
    EXPECT_EQ(has_simd(16), simd) << backend_name(b);
    // w = 32 vectorizes only through altmap.
    EXPECT_EQ(has_simd(32), simd) << backend_name(b);
    force_layout(RegionLayout::kStandard);
    EXPECT_FALSE(has_simd(32)) << backend_name(b);
    reset_layout();
  }
}

// The avx512 backend holds two kernel sets — zmm vpshufb (Skylake-SP era)
// and vgf2p8affineqb (Ice Lake+) — and dispatch auto-upgrades to the GFNI
// set whenever the CPU has it, which would leave the vpshufb variant
// untested exactly on the machines that run these tests. Drive its raw
// function pointers directly against the scalar reference: both layouts,
// odd tails, unaligned bases, exact aliasing.
TEST(Avx512ShuffleVariantTest, MatchesScalarReferenceInBothLayouts) {
  KernelFns fns;
  if (!avx512_shuffle_variant_fns(&fns))
    GTEST_SKIP() << "avx512 backend not compiled in or not supported here";
  Rng rng(811);

  for (int w : {4, 8, 16, 32}) {
    const Field& f = field(w);
    const int widx = w == 4 ? 0 : w == 8 ? 1 : w == 16 ? 2 : 3;
    const std::size_t bytes = w >= 8 ? static_cast<std::size_t>(w) / 8 : 1;

    for (std::size_t base : {std::size_t{64}, std::size_t{100}, std::size_t{192},
                             std::size_t{1000}, std::size_t{4160}}) {
      const std::size_t size = base - base % bytes;
      for (std::size_t offset : {std::size_t{0}, 3 * bytes}) {
        for (std::uint32_t a : {std::uint32_t{0}, std::uint32_t{1}, std::uint32_t{3},
                                1 + static_cast<std::uint32_t>(
                                        rng.next_below(f.max_element()))}) {
          const CompiledKernel kernel(f, a);

          AlignedBuffer src(offset + size), dst(offset + size), ref(offset + size);
          rng.fill(src.span());
          rng.fill(dst.span());
          std::memcpy(ref.data(), dst.data(), offset + size);
          const std::vector<std::uint8_t> dst0(dst.data() + offset,
                                               dst.data() + offset + size);

          // Standard layout, raw mult_xor pointer on an unaligned base.
          fns.mult_xor[0][widx](kernel.tables(), src.data() + offset,
                                dst.data() + offset, size);
          reference_mult_xor(f, a, src.region(offset, size), ref.region(offset, size));
          ASSERT_EQ(std::memcmp(dst.data(), ref.data(), offset + size), 0)
              << "standard w=" << w << " a=" << a << " size=" << size
              << " offset=" << offset;

          // Altmap layout: operands transformed by the independent spec
          // reference, result compared in altmap space.
          std::vector<std::uint8_t> src_alt = spec_to_altmap(w, src.region(offset, size));
          std::vector<std::uint8_t> dst_alt = spec_to_altmap(w, dst0);
          fns.mult_xor[1][widx](kernel.tables(), src_alt.data(), dst_alt.data(), size);
          const std::vector<std::uint8_t> expect_alt =
              spec_to_altmap(w, ref.region(offset, size));
          ASSERT_EQ(std::memcmp(dst_alt.data(), expect_alt.data(), size), 0)
              << "altmap w=" << w << " a=" << a << " size=" << size
              << " offset=" << offset;

          // Overwrite form with exact aliasing (in-place scale), both layouts.
          std::vector<std::uint8_t> inplace(src.data() + offset,
                                            src.data() + offset + size);
          fns.mult[0][widx](kernel.tables(), inplace.data(), inplace.data(), size);
          std::vector<std::uint8_t> expect(size, 0);
          reference_mult_xor(f, a, src.region(offset, size), expect);
          ASSERT_EQ(std::memcmp(inplace.data(), expect.data(), size), 0)
              << "in-place standard w=" << w << " a=" << a << " size=" << size;

          std::vector<std::uint8_t> inplace_alt =
              spec_to_altmap(w, src.region(offset, size));
          fns.mult[1][widx](kernel.tables(), inplace_alt.data(), inplace_alt.data(),
                            size);
          const std::vector<std::uint8_t> expect_ip_alt = spec_to_altmap(w, expect);
          ASSERT_EQ(std::memcmp(inplace_alt.data(), expect_ip_alt.data(), size), 0)
              << "in-place altmap w=" << w << " a=" << a << " size=" << size;
        }
      }
    }
  }
}

TEST(RegionBackendDispatchTest, ScalarAlwaysSupportedAndActiveIsSupported) {
  EXPECT_TRUE(backend_supported(Backend::kScalar));
  EXPECT_TRUE(backend_supported(active_backend()));
  EXPECT_TRUE(backend_compiled(active_backend()));
}

TEST(RegionBackendDispatchTest, ForceBackendRoundTrips) {
  const Backend original = active_backend();
  for (Backend b : available_backends()) {
    ASSERT_TRUE(force_backend(b));
    EXPECT_EQ(active_backend(), b);
  }
  reset_backend();
  EXPECT_EQ(active_backend(), original);
}

std::string case_name(const ::testing::TestParamInfo<std::tuple<int, Backend>>& info) {
  return "w" + std::to_string(std::get<0>(info.param)) + "_" +
         backend_name(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllWidthsAllBackends, RegionBackendTest,
    ::testing::Combine(::testing::Values(4, 8, 16, 32),
                       ::testing::Values(Backend::kScalar, Backend::kSsse3, Backend::kAvx2,
                                         Backend::kGfni, Backend::kAvx512)),
    case_name);

}  // namespace
}  // namespace stair::gf
