// Utility tests: RNG determinism and distribution sanity, aligned buffers,
// the IO buffer pool's registered/overflow lease discipline, and the table
// printer the benchmark binaries rely on.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <utility>
#include <vector>

#include "util/buffer.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/workspace_pool.h"

namespace stair {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(8);
  int counts[10] = {};
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) EXPECT_NEAR(c, trials / 10, trials / 50);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasConfiguredMean) {
  Rng rng(10);
  double sum = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += rng.next_exponential(42.0);
  EXPECT_NEAR(sum / trials, 42.0, 1.5);
}

TEST(RngTest, FillCoversOddSizes) {
  Rng rng(11);
  for (std::size_t size : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u}) {
    std::vector<std::uint8_t> buf(size, 0);
    rng.fill(buf);
    if (size >= 16) {
      // Extremely unlikely to be all zeros.
      bool any = false;
      for (auto b : buf) any |= b != 0;
      EXPECT_TRUE(any);
    }
  }
}

TEST(AlignedBufferTest, AlignmentAndZeroInit) {
  for (std::size_t size : {1u, 64u, 100u, 4096u}) {
    AlignedBuffer buf(size);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % AlignedBuffer::kAlignment, 0u);
    for (std::size_t i = 0; i < size; ++i) EXPECT_EQ(buf[i], 0);
  }
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer a(128);
  a[5] = 42;
  const std::uint8_t* ptr = a.data();
  AlignedBuffer b = std::move(a);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b[5], 42);
  EXPECT_EQ(b.size(), 128u);
}

TEST(AlignedBufferTest, RegionAndClear) {
  AlignedBuffer buf(64);
  auto region = buf.region(16, 8);
  EXPECT_EQ(region.size(), 8u);
  region[0] = 7;
  EXPECT_EQ(buf[16], 7);
  buf.clear();
  EXPECT_EQ(buf[16], 0);
}

TEST(TablePrinterTest, AlignsColumnsAndPadsRaggedRows) {
  TablePrinter t("demo");
  t.set_header({"a", "long_header"});
  t.add_row({"xx", "1"});
  t.add_row({"y"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("## demo"), std::string::npos);
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t;
  t.set_header({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(IoBufferPoolTest, RegisteredSetIsAlignedStableAndIndexed) {
  IoBufferPool pool(1000, 4096, 3);  // bytes round up to the alignment
  EXPECT_EQ(pool.buffer_bytes(), 4096u);
  EXPECT_EQ(pool.registered_capacity(), 3u);

  const auto regions = pool.regions();
  ASSERT_EQ(regions.size(), 3u);
  for (const auto& r : regions) {
    EXPECT_EQ(r.size(), 4096u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(r.data()) % 4096, 0u);
  }

  // Leases drain the registered set first; each carries its stable index and
  // points into the region registered under that index.
  std::vector<IoBufferPool::Lease> leases;
  std::vector<bool> seen(3, false);
  for (int i = 0; i < 3; ++i) {
    auto l = pool.acquire();
    ASSERT_GE(l->index, 0);
    ASSERT_LT(l->index, 3);
    EXPECT_FALSE(seen[static_cast<std::size_t>(l->index)]) << "index handed out twice";
    seen[static_cast<std::size_t>(l->index)] = true;
    EXPECT_EQ(l->data, regions[static_cast<std::size_t>(l->index)].data());
    leases.push_back(std::move(l));
  }
  // regions() must not move while leases are live (the engine pinned them).
  const auto again = pool.regions();
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(again[i].data(), regions[i].data());
  EXPECT_EQ(pool.overflow_allocs(), 0u);
}

TEST(IoBufferPoolTest, ExhaustionOverflowsToUnregisteredLeases) {
  IoBufferPool pool(512, 512, 2);
  auto a = pool.acquire();
  auto b = pool.acquire();
  auto c = pool.acquire();  // outran the registered set
  EXPECT_EQ(c->index, -1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c->data) % 512, 0u);
  EXPECT_EQ(pool.overflow_allocs(), 1u);
  EXPECT_EQ(pool.in_use(), 3u);

  // Released registered slots come back before new overflow is minted.
  const int freed = a->index;
  a.reset();
  auto d = pool.acquire();
  EXPECT_EQ(d->index, freed);
  EXPECT_EQ(pool.overflow_allocs(), 1u);
}

TEST(FormatSigTest, Formats) {
  EXPECT_EQ(format_sig(0.0), "0");
  EXPECT_EQ(format_sig(1234.5678, 4), "1235");
  EXPECT_EQ(format_sig(0.00012345, 3), "0.000123");
  EXPECT_EQ(format_sig(1e300 * 1e300), "inf");
}

}  // namespace
}  // namespace stair
