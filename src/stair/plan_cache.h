// Decode-plan cache.
//
// Building a decode schedule means matrix inversions; replaying one is pure
// region arithmetic. Real arrays see the same erasure pattern for every
// stripe of a failure epoch (a dead device yields one mask shape), so
// caching plans by mask amortizes construction across millions of stripes.
// A small LRU keyed by the erasure mask does it.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "stair/stair_code.h"

namespace stair {

/// LRU cache of decode schedules keyed by erasure mask. Not thread-safe.
class DecodePlanCache {
 public:
  /// `capacity` is the number of distinct masks kept (>= 1).
  explicit DecodePlanCache(const StairCode& code, std::size_t capacity = 64);

  /// The decode schedule for `erased`, built on miss; nullptr if the pattern
  /// is outside the coverage (negative results are cached too). The pointer
  /// stays valid until the entry is evicted (capacity misses later).
  const Schedule* plan(const std::vector<bool>& erased);

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  struct Entry {
    std::vector<bool> mask;
    std::optional<Schedule> schedule;  // nullopt = unrecoverable
  };
  using Lru = std::list<Entry>;

  static std::uint64_t hash_mask(const std::vector<bool>& mask);

  const StairCode* code_;
  std::size_t capacity_;
  Lru lru_;  // front = most recent
  std::unordered_multimap<std::uint64_t, Lru::iterator> index_;
  std::size_t hits_ = 0, misses_ = 0;
};

}  // namespace stair
