// Figure 17: MTTDL_sys versus P_bit under the independent sector-failure
// model, for Reed-Solomon (s = 0), STAIR/SD s = 1, STAIR e = (2) / (1,1) and
// SD s = 2 (panel a), and the three s = 3 STAIR coverages (panel b).
// Also reproduces the §7.2 N_arr table.
//
// Expected shape: RS falls as a power law in P_bit while s >= 1 codes hold
// flat until ~1e-12 and then fall; e = (1,2) is the most reliable s = 3
// coverage (beats both (3) and (1,1,1)).

#include <cmath>
#include <functional>
#include <iostream>

#include "reliability/mttdl.h"
#include "reliability/pstr.h"
#include "reliability/sector_models.h"
#include "util/table.h"

using namespace stair;
using namespace stair::reliability;

int main() {
  const SystemParams p;  // U=10PB, C=300GB, n=8, r=16, m=1 (§7.2)
  std::cout << "=== Figure 17: MTTDL_sys vs P_bit, independent sector failures ===\n\n";

  {
    TablePrinter narr("§7.2: number of arrays N_arr for s = 0..12");
    narr.set_header({"s", "N_arr"});
    for (std::size_t s = 0; s <= 12; ++s)
      narr.add_row({std::to_string(s),
                    std::to_string(num_arrays(p, storage_efficiency(p.n, p.r, p.m, s)))});
    narr.print(std::cout);
  }

  const std::size_t chunks = p.n - p.m;
  struct Series {
    std::string label;
    std::size_t s;
    std::function<double(std::span<const double>)> pstr;
  };
  const std::vector<std::size_t> e1{1}, e2{2}, e11{1, 1}, e3{3}, e12{1, 2}, e111{1, 1, 1};
  const std::vector<Series> series{
      {"RS s=0", 0, [&](auto pchk) { return pstr_rs(pchk, chunks); }},
      {"STAIR/SD s=1", 1, [&](auto pchk) { return pstr_stair(pchk, chunks, e1); }},
      {"STAIR e=(2)", 2, [&](auto pchk) { return pstr_stair(pchk, chunks, e2); }},
      {"STAIR e=(1,1)", 2, [&](auto pchk) { return pstr_stair(pchk, chunks, e11); }},
      {"SD s=2", 2, [&](auto pchk) { return pstr_sd(pchk, chunks, 2); }},
      {"STAIR e=(3)", 3, [&](auto pchk) { return pstr_stair(pchk, chunks, e3); }},
      {"STAIR e=(1,2)", 3, [&](auto pchk) { return pstr_stair(pchk, chunks, e12); }},
      {"STAIR e=(1,1,1)", 3, [&](auto pchk) { return pstr_stair(pchk, chunks, e111); }},
      {"SD s=3", 3, [&](auto pchk) { return pstr_sd(pchk, chunks, 3); }},
  };

  TablePrinter table("MTTDL_sys (hours) vs P_bit");
  std::vector<std::string> header{"P_bit"};
  for (const auto& s : series) header.push_back(s.label);
  table.set_header(header);

  for (double exp10 = -14.0; exp10 <= -10.0 + 1e-9; exp10 += 0.5) {
    const double p_bit = std::pow(10.0, exp10);
    const double p_sec = sector_failure_prob(p_bit, static_cast<std::size_t>(p.sector_bytes));
    const auto pchk = independent_chunk_pmf(p_sec, p.r);
    std::vector<std::string> row{"1e" + format_sig(exp10, 3)};
    for (const auto& s : series)
      row.push_back(format_sig(mttdl_system(p, s.s, s.pstr(pchk)), 4));
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "Shape check: RS decays as a power law over the whole range; s>=1\n"
               "codes stay flat until P_bit ~ 1e-12 then decay; at 1e-14 the s=1\n"
               "codes beat RS by >2 orders of magnitude; e=(1,2) is the best s=3\n"
               "coverage under independent failures (§7.2.1).\n";
  return 0;
}
