#include "reliability/coverage_advisor.h"

#include <algorithm>
#include <functional>

#include "reliability/pstr.h"

namespace stair::reliability {

namespace {

// Ascending coverage vectors with sum <= budget, entries <= r, length <= max_len.
void enumerate(std::size_t budget, std::size_t max_entry, std::size_t max_len,
               std::vector<std::size_t>& prefix,
               const std::function<void(const std::vector<std::size_t>&)>& emit) {
  if (!prefix.empty()) emit(prefix);
  if (prefix.size() == max_len) return;
  std::size_t used = 0;
  for (std::size_t v : prefix) used += v;
  const std::size_t lo = prefix.empty() ? 1 : prefix.back();
  for (std::size_t v = lo; used + v <= budget && v <= max_entry; ++v) {
    prefix.push_back(v);
    enumerate(budget, max_entry, max_len, prefix, emit);
    prefix.pop_back();
  }
}

}  // namespace

std::vector<CoverageCandidate> rank_coverage_vectors(const AdvisorQuery& query) {
  const SystemParams& sys = query.system;
  const std::size_t budget =
      query.max_sectors ? query.max_sectors : std::min(query.beta + 3, sys.r);
  if (query.beta > sys.r || query.beta > budget) return {};

  const double p_sec =
      sector_failure_prob(query.p_bit, static_cast<std::size_t>(sys.sector_bytes));
  const std::vector<double> pchk =
      query.correlated
          ? correlated_chunk_pmf(p_sec, BurstDistribution(query.b1, query.alpha), sys.r)
          : independent_chunk_pmf(p_sec, sys.r);
  const std::size_t chunks = sys.n - sys.m;

  std::vector<CoverageCandidate> out;
  std::vector<std::size_t> prefix;
  enumerate(budget, sys.r, sys.n - sys.m, prefix, [&](const std::vector<std::size_t>& e) {
    if (e.back() < query.beta) return;
    CoverageCandidate cand;
    cand.e = e;
    for (std::size_t v : e) cand.s += v;
    if (cand.s >= sys.r * (sys.n - sys.m)) return;  // coverage would eat all data
    cand.pstr = pstr_stair(pchk, chunks, e);
    cand.mttdl_hours = mttdl_system(sys, cand.s, cand.pstr);
    out.push_back(std::move(cand));
  });

  std::sort(out.begin(), out.end(), [](const CoverageCandidate& a, const CoverageCandidate& b) {
    if (a.mttdl_hours != b.mttdl_hours) return a.mttdl_hours > b.mttdl_hours;
    if (a.s != b.s) return a.s < b.s;
    return a.e < b.e;
  });
  return out;
}

std::vector<std::size_t> recommend_coverage(const AdvisorQuery& query) {
  const auto ranked = rank_coverage_vectors(query);
  return ranked.empty() ? std::vector<std::size_t>{} : ranked.front().e;
}

}  // namespace stair::reliability
