// Stripe-batch pipeline throughput: aggregate MB/s with N stripes in flight
// through a Codec session — the serving-path regime (millions of users means
// many stripes concurrently, not one big stripe sliced ever thinner).
//
//   batch=1  — the session range-slices the lone stripe across the idle pool,
//              so it should match the classic pooled encode_parallel call;
//   batch>=pool width — one stripe per task, workers never idle between
//              stripes, no intra-stripe synchronization at all.
//
// Sweeps stripes-in-flight for encode and for cached-plan decode (one
// failure-epoch mask shared by the whole batch), against the single-stripe
// pooled baseline. Every cell is measured twice, interleaved in time —
// autotuned decisions vs the fixed heuristics (STAIR_AUTOTUNE=0 behavior,
// toggled in-process so host drift between separate runs cannot masquerade
// as a tuner effect) — and both land in BENCH_batch_throughput.json; the CI
// gate asserts the tuned half keeps up with the fixed constants on every
// cell. STAIR_BENCH_SMOKE=1 (or --smoke) runs smaller stripes — the CI
// smoke configuration (which also redirects the JSON to the repo root; see
// bench::json_output_path).
//
// Expected shape: batch=1 ≈ pooled baseline (same execution path); MB/s
// non-decreasing with batch up to the pool width, then flat — on a
// single-vCPU host all cells are flat by construction.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gf/kernel.h"
#include "stair/autotune.h"
#include "stair/codec.h"

using namespace stair;
using namespace stair::bench;

namespace {

struct Cell {
  std::string op;  // "encode" | "decode"
  std::size_t batch;
  bool autotune;   // measured with tuner decisions (true) or fixed heuristics
  double mbps;
  double speedup;  // vs the same op at batch=1 (same autotune half)
};

// Switches the process between tuner-driven and fixed-heuristic execution:
// the decision entry points consult Autotune::enabled() per submit, and the
// measured cache budget is installed/uninstalled to match.
void set_tuned(bool tuned) {
  auto& tuner = stair::Autotune::instance();
  tuner.set_enabled_for_testing(tuned ? 1 : 0);
  if (tuned) {
    const auto& p = tuner.profile();  // ensure()s; probes on first need
    if (p.measured && p.cache_budget_bytes) gf::set_region_cache_budget(p.cache_budget_bytes);
  } else {
    gf::set_region_cache_budget(0);  // back to sysfs/CPUID detection
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = parse_env(argc, argv);
  const StairConfig cfg{.n = 16, .r = 16, .m = 2, .e = {1, 1, 2}};
  const std::size_t symbol = env.smoke ? (16u * 1024) : (64u * 1024);
  const std::size_t stripe_bytes = symbol * cfg.n * cfg.r;

  std::vector<std::size_t> batches{1, 2, 4, 8, 16};
  if (env.pool_width() > 16) batches.push_back(env.pool_width());
  const std::size_t max_batch = batches.back();

  const StairCode code(cfg);
  Codec codec(code);
  // The process-default tuner state (env), recorded before the interleaved
  // sweep overrides it per half.
  const bool autotune_default = Autotune::instance().enabled();

  std::cout << "=== Stripe-batch pipeline: stripes-in-flight sweep (Codec sessions) ===\n"
            << cfg.to_string() << ", " << (stripe_bytes >> 20) << " MB stripes, pool width "
            << env.pool_width() << ", " << env.hardware_threads << " hardware threads"
            << (env.smoke ? "  [smoke]" : "") << "\n\n";

  // One stripe set, sized for the largest batch; encoded so decode has
  // consistent parities to start from.
  std::vector<StripeBuffer> stripes;
  for (std::size_t i = 0; i < max_batch; ++i)
    stripes.push_back(make_encoded_stripe(code, symbol, 42 + i));

  // Baseline: the classic single-stripe pooled call (full pool width).
  Workspace baseline_ws;
  const double encode_pooled = measure_mbps(
      [&] { code.encode_parallel(stripes[0].view(), 0, EncodingMethod::kAuto, &baseline_ws); },
      stripe_bytes);

  // Failure-epoch mask: one whole chunk lost. The decode baseline replays
  // the compiled plan through the session cache like the batch path does.
  std::vector<bool> mask(cfg.n * cfg.r, false);
  for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + 2] = true;
  const double decode_pooled = measure_mbps(
      [&] {
        code.decode_parallel(stripes[0].view(), mask, 0, &baseline_ws, &codec.plan_cache());
      },
      stripe_bytes);

  std::printf("single-stripe pooled baseline: encode %.0f MB/s, decode %.0f MB/s\n\n",
              encode_pooled, decode_pooled);

  std::vector<Cell> cells;
  TablePrinter table("aggregate throughput (MB/s) vs stripes in flight, tuned/untuned");
  table.set_header({"batch", "encode MB/s", "enc x", "enc tuned/fix", "decode MB/s", "dec x",
                    "dec tuned/fix"});
  double encode_base[2] = {0.0, 0.0}, decode_base[2] = {0.0, 0.0};
  for (std::size_t batch : batches) {
    // Both halves of each cell measured interleaved in time (t, f, t, f),
    // keeping the best of two rounds per half: adjacency cancels slow host
    // drift out of the tuned/fixed ratio, and the max discards one-off
    // interference dips (noise only ever lowers a sample).
    double enc[2] = {0.0, 0.0}, dec[2] = {0.0, 0.0};
    for (int round = 0; round < 2; ++round) {
      for (int tuned = 1; tuned >= 0; --tuned) {
        set_tuned(tuned != 0);
        enc[tuned] = std::max(
            enc[tuned],
            measure_mbps(
                [&] {
                  std::vector<Codec::Handle> handles;
                  handles.reserve(batch);
                  for (std::size_t i = 0; i < batch; ++i)
                    handles.push_back(codec.submit_encode(stripes[i].view()));
                  codec.wait_all();
                },
                stripe_bytes * batch));
        dec[tuned] = std::max(
            dec[tuned],
            measure_mbps(
                [&] {
                  std::vector<Codec::Handle> handles;
                  handles.reserve(batch);
                  for (std::size_t i = 0; i < batch; ++i)
                    handles.push_back(codec.submit_decode(stripes[i].view(), mask));
                  codec.wait_all();
                },
                stripe_bytes * batch));
      }
    }
    for (int tuned = 1; tuned >= 0; --tuned) {
      if (batch == 1) {
        encode_base[tuned] = enc[tuned];
        decode_base[tuned] = dec[tuned];
      }
      cells.push_back({"encode", batch, tuned != 0, enc[tuned], enc[tuned] / encode_base[tuned]});
      cells.push_back({"decode", batch, tuned != 0, dec[tuned], dec[tuned] / decode_base[tuned]});
    }
    table.add_row({std::to_string(batch), format_sig(enc[1], 4),
                   format_sig(enc[1] / encode_base[1], 3) + "x",
                   format_sig(enc[1] / enc[0], 3) + "x", format_sig(dec[1], 4),
                   format_sig(dec[1] / decode_base[1], 3) + "x",
                   format_sig(dec[1] / dec[0], 3) + "x"});
  }
  set_tuned(true);  // leave the process in the default state
  table.print(std::cout);

  const std::string path = json_output_path("BENCH_batch_throughput.json", env.smoke);
  {
    std::ofstream out(path);
    out << "{\n  \"bench\": \"batch_throughput\",\n"
        << "  \"backend\": \"" << gf::backend_name(gf::active_backend()) << "\",\n"
        << "  \"smoke\": " << (env.smoke ? "true" : "false") << ",\n"
        << "  \"autotune\": " << (autotune_default ? "true" : "false") << ",\n"
        << "  \"hardware_threads\": " << env.hardware_threads << ",\n"
        << "  \"pool_width\": " << env.pool_width() << ",\n"
        << "  \"stripe_bytes\": " << stripe_bytes << ",\n"
        << "  \"encode_pooled_single_mbps\": " << encode_pooled << ",\n"
        << "  \"decode_pooled_single_mbps\": " << decode_pooled << ",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      out << "    {\"op\": \"" << c.op << "\", \"batch\": " << c.batch
          << ", \"autotune\": " << (c.autotune ? "true" : "false")
          << ", \"mbps\": " << c.mbps << ", \"speedup\": " << c.speedup << "}"
          << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }
  std::cout << "\nWrote " << cells.size() << " cells to " << path << "\n";

  std::cout << "Shape check: batch=1 >= the single-stripe pooled baseline (same\n"
               "execution path, submit overhead in the noise); MB/s non-decreasing\n"
               "with batch up to the pool width (flat on a single-vCPU host);\n"
               "tuned/fixed ~ 1.0x or better on every cell (the tuner's decisions\n"
               "never regress the fixed heuristics).\n";
  return 0;
}
