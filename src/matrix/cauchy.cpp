#include "matrix/cauchy.h"

#include <stdexcept>
#include <vector>

namespace stair {

Matrix cauchy_matrix_from_points(const gf::Field& f,
                                 std::span<const std::uint32_t> x,
                                 std::span<const std::uint32_t> y) {
  Matrix m(f, x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = 0; j < y.size(); ++j) {
      const std::uint32_t denom = gf::Field::add(x[i], y[j]);
      if (denom == 0)
        throw std::invalid_argument("cauchy_matrix: x and y sets must be disjoint");
      m.set(i, j, f.inv(denom));
    }
  }
  return m;
}

Matrix cauchy_matrix(const gf::Field& f, std::size_t rows, std::size_t cols) {
  if (rows + cols > f.order())
    throw std::invalid_argument("cauchy_matrix: rows + cols exceeds field size");
  std::vector<std::uint32_t> x(rows), y(cols);
  for (std::size_t i = 0; i < rows; ++i) x[i] = static_cast<std::uint32_t>(i);
  for (std::size_t j = 0; j < cols; ++j) y[j] = static_cast<std::uint32_t>(rows + j);
  return cauchy_matrix_from_points(f, x, y);
}

}  // namespace stair
