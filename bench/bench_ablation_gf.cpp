// Ablation A2 (§6.2): Galois-field word-size cost. Measures the Mult_XOR
// region kernel at w = 4/8/16/32 plus plain XOR — the reason SD codes, which
// are forced onto w = 16 once n*r > 255 (e.g. n = r = 16), lose throughput
// that STAIR keeps by staying on w = 8.
//
// Expected: w = 8 (SSSE3 pshufb) fastest among multiplying kernels; w = 16/32
// split-table kernels noticeably slower; XOR fastest overall.

#include <benchmark/benchmark.h>

#include "gf/kernel.h"
#include "gf/region.h"
#include "util/buffer.h"
#include "util/rng.h"

using namespace stair;

namespace {

constexpr std::size_t kRegion = 1u << 20;  // 1 MiB regions

void BM_MultXor(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  const auto& f = gf::field(w);
  AlignedBuffer src(kRegion), dst(kRegion);
  Rng rng(1);
  rng.fill(src.span());
  rng.fill(dst.span());
  const std::uint32_t a = 0x53 & f.max_element() ? (0x53 & f.max_element()) : 3;
  for (auto _ : state) {
    gf::mult_xor_region(f, a, src.span(), dst.span());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kRegion);
  state.counters["simd_w8"] = gf::has_simd_w8() ? 1 : 0;
  // 0 = scalar, 1 = ssse3, 2 = avx2, 3 = gfni (see gf/kernel.h).
  state.counters["backend"] = static_cast<double>(gf::active_backend());
}

void BM_Xor(benchmark::State& state) {
  AlignedBuffer src(kRegion), dst(kRegion);
  Rng rng(2);
  rng.fill(src.span());
  rng.fill(dst.span());
  for (auto _ : state) {
    gf::xor_region(src.span(), dst.span());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kRegion);
}

}  // namespace

BENCHMARK(BM_MultXor)->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_Xor);

BENCHMARK_MAIN();
