// Deterministic pseudo-random number generation used across the library.
//
// All randomized tests, workload generators, and simulators take an explicit
// seed so every run is reproducible. The engine is xoshiro256**, which is
// fast enough to fill benchmark buffers without dominating setup time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace stair {

/// Small, fast, seedable PRNG (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator; distinct seeds yield independent-looking streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform byte.
  std::uint8_t next_byte() { return static_cast<std::uint8_t>(next_u64()); }

  /// Fills `out` with random bytes.
  void fill(std::span<std::uint8_t> out);

  /// Bernoulli trial with success probability `p`.
  bool chance(double p) { return next_double() < p; }

  /// Exponentially distributed sample with the given mean (> 0).
  double next_exponential(double mean);

 private:
  std::uint64_t state_[4];
};

}  // namespace stair
