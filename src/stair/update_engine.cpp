#include "stair/update_engine.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "gf/region.h"
#include "util/buffer.h"
#include "util/thread_pool.h"

namespace stair {

UpdateEngine::UpdateEngine(const StairCode& code) : code_(&code) {
  const StairLayout& layout = code.layout();
  const Matrix& coeff = code.coefficients();
  const auto& parity_ids = layout.parity_ids();
  const auto& global_ids = layout.outside_global_ids();

  patches_.resize(layout.data_ids().size());
  for (std::size_t p = 0; p < parity_ids.size(); ++p) {
    const std::uint32_t pid = parity_ids[p];
    const std::size_t row = layout.row_of(pid);
    const std::size_t col = layout.col_of(pid);

    Patch proto{};
    if (layout.is_stored(row, col)) {
      proto.stored_index = layout.stored_index(row, col);
      proto.global_index = SIZE_MAX;
    } else {
      // Outside-global parity: locate its slot in the external regions.
      proto.stored_index = SIZE_MAX;
      proto.global_index = SIZE_MAX;
      for (std::size_t g = 0; g < global_ids.size(); ++g)
        if (global_ids[g] == pid) proto.global_index = g;
      if (proto.global_index == SIZE_MAX)
        throw std::logic_error("UpdateEngine: parity id is neither stored nor global");
    }

    for (std::size_t k = 0; k < coeff.cols(); ++k) {
      if (coeff.at(p, k) == 0) continue;
      Patch patch = proto;
      patch.coeff = coeff.at(p, k);
      patch.kernel = gf::compiled_kernel(code.field(), patch.coeff);
      patches_[k].push_back(patch);
    }
  }
}

void UpdateEngine::update_range(const StripeView& stripe, std::size_t data_index,
                                std::span<const std::uint8_t> new_content,
                                std::span<std::uint8_t> delta_scratch, std::size_t offset,
                                std::size_t length) const {
  const StairLayout& layout = code_->layout();
  const std::uint32_t did = layout.data_ids()[data_index];
  auto data_region =
      stripe.stored[layout.stored_index(layout.row_of(did), layout.col_of(did))];

  // delta = old ^ new; then data := new and parity ^= coeff * delta, all on
  // [offset, offset + length) while that range is cache-resident.
  const std::span<std::uint8_t> d = delta_scratch.subspan(offset, length);
  std::memcpy(d.data(), data_region.data() + offset, length);
  gf::xor_region(new_content.subspan(offset, length), d);
  std::memcpy(data_region.data() + offset, new_content.data() + offset, length);

  for (const Patch& patch : patches_[data_index]) {
    auto parity = patch.stored_index != SIZE_MAX ? stripe.stored[patch.stored_index]
                                                 : stripe.outside_globals[patch.global_index];
    patch.kernel->mult_xor(d, parity.subspan(offset, length));
  }
}

void UpdateEngine::update(const StripeView& stripe, std::size_t data_index,
                          std::span<const std::uint8_t> new_content, ExecPolicy policy) const {
  if (data_index >= patches_.size())
    throw std::invalid_argument("UpdateEngine::update: data index out of range");
  if (new_content.size() != stripe.symbol_size)
    throw std::invalid_argument("UpdateEngine::update: wrong symbol size");

  const std::size_t size = stripe.symbol_size;
  std::size_t participants = 1;
  ThreadPool& pool = ThreadPool::default_pool();
  if (policy.mode == ExecPolicy::Mode::kSliced) {
    const std::size_t threads = policy.threads == 0 ? pool.concurrency() : policy.threads;
    participants = std::min(threads, pool.concurrency());
  }

  // One delta buffer either way; slices write disjoint ranges of it.
  AlignedBuffer delta(size);
  if (participants <= 1 || size < 128) {
    update_range(stripe, data_index, new_content, delta.span(), 0, size);
    return;
  }

  const std::size_t slice =
      gf::cache_aware_slice_bytes(size, participants, touched_regions(data_index));
  const std::size_t slices = (size + slice - 1) / slice;
  pool.parallel_for(
      slices,
      [&](std::size_t i) {
        const std::size_t off = i * slice;
        if (off >= size) return;
        update_range(stripe, data_index, new_content, delta.span(), off,
                     std::min(slice, size - off));
      },
      participants);
}

}  // namespace stair
