#include "gf/region.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>

#include "gf/kernel.h"

namespace stair::gf {

void xor_region(std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  std::size_t i = 0;
  const std::size_t n = src.size();
  // Word-at-a-time XOR; compilers vectorize this loop readily.
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, src.data() + i, 8);
    std::memcpy(&b, dst.data() + i, 8);
    b ^= a;
    std::memcpy(dst.data() + i, &b, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void mult_xor_region(const Field& f, std::uint32_t a,
                     std::span<const std::uint8_t> src, std::span<std::uint8_t> dst,
                     RegionLayout layout) {
  assert(src.size() == dst.size());
  if (a == 0 || src.empty()) return;
  if (a == 1) {
    xor_region(src, dst);
    return;
  }
  compiled_kernel(f, a)->mult_xor(src, dst, layout);
}

void mult_region(const Field& f, std::uint32_t a,
                 std::span<const std::uint8_t> src, std::span<std::uint8_t> dst,
                 RegionLayout layout) {
  assert(src.size() == dst.size());
  if (a == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (a == 1) {
    if (dst.data() != src.data()) std::memcpy(dst.data(), src.data(), src.size());
    return;
  }
  if (src.empty()) return;
  // The overwrite kernels never read dst, so exact aliasing (in-place scale)
  // is safe: every block is fully loaded before it is stored.
  compiled_kernel(f, a)->mult(src, dst, layout);
}

bool has_simd(int w) {
  if (active_backend() == Backend::kScalar) return false;
  // Standard-layout w = 32 is the scalar wide-table loop on every backend;
  // the width only vectorizes through altmap. w = 16 has a (partially
  // vectorized) standard SIMD kernel, so it counts in either layout.
  if (w == 32) return preferred_layout(w) == RegionLayout::kAltmap;
  return true;
}

std::size_t region_cache_budget() {
  static const std::size_t budget = [] {
    if (const char* env = std::getenv("STAIR_STRIP_BYTES")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{768} * 1024;
  }();
  return budget;
}

std::size_t cache_aware_slice_bytes(std::size_t region_bytes, std::size_t participants,
                                    std::size_t touched_regions) {
  if (participants == 0) participants = 1;
  if (region_bytes <= 64) return region_bytes;
  // ~2 slices per participant balances load; fewer would make the slowest
  // slice the critical path, many more would pay per-slice dispatch.
  std::size_t slice = (region_bytes + 2 * participants - 1) / (2 * participants);
  // 64-byte granularity keeps slices symbol-aligned for every supported w.
  std::size_t cache_cap = region_cache_budget() / (touched_regions ? touched_regions : 1);
  cache_cap = std::max<std::size_t>(64, cache_cap & ~std::size_t{63});
  if (slice > cache_cap) slice = cache_cap;
  slice &= ~std::size_t{63};
  if (slice < 64) slice = 64;
  // Dispatch-overhead floor — don't shred big regions into tiny slices —
  // capped by cache_cap so the budget guarantee above is never violated.
  const std::size_t floor_bytes = std::min<std::size_t>(4096, cache_cap);
  if (slice < floor_bytes && region_bytes > participants * floor_bytes) slice = floor_bytes;
  return slice < region_bytes ? slice : region_bytes;
}

}  // namespace stair::gf
