// XOR-only schedule execution (the CRS array-code transform of §8).
//
// Compiles any Schedule into bit-matrix form: every GF(2^w) coefficient
// becomes a w x w binary matrix and replay uses only packet XORs — no
// multiplication tables, no SIMD shuffles, attractive on hardware without
// byte-shuffle units. Symbol regions must be in the bit-plane layout of
// gf/bitmatrix.h (convert with to_bitplane()/from_bitplane()).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gf/bitmatrix.h"
#include "stair/schedule.h"

namespace stair {

/// A Schedule lowered to GF(2): same ops, coefficients as bit matrices.
class XorExecutor {
 public:
  XorExecutor(const Schedule& schedule, const gf::Field& f);

  /// Total packet-XOR operations per replay — the CRS XOR-cost metric.
  std::size_t xor_op_count() const { return xor_ops_; }

  /// Replays over bit-plane-layout symbol regions (same indexing as the
  /// source schedule; every region size divisible by w).
  void execute(std::span<const std::span<std::uint8_t>> symbols) const;

 private:
  struct Term {
    std::vector<std::uint32_t> bitmatrix;
    std::uint32_t input;
  };
  struct Op {
    std::uint32_t output;
    std::vector<Term> terms;
  };

  const gf::Field* field_;
  std::vector<Op> ops_;
  std::size_t xor_ops_ = 0;
};

}  // namespace stair
