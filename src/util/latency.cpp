#include "util/latency.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <thread>

namespace stair {

std::size_t LatencyHistogram::bucket_index(std::uint64_t nanos) {
  if ((nanos >> kSubBits) == 0) return static_cast<std::size_t>(nanos);
  const int exp = std::bit_width(nanos) - 1 - kSubBits;
  return (static_cast<std::size_t>(exp) + 1) * kSubBuckets +
         static_cast<std::size_t>((nanos >> exp) - kSubBuckets);
}

std::uint64_t LatencyHistogram::bucket_lower(std::size_t index) {
  const std::size_t octave = index / kSubBuckets;
  const std::uint64_t sub = index % kSubBuckets;
  if (octave == 0) return sub;
  return (sub + kSubBuckets) << (octave - 1);
}

std::uint64_t LatencyHistogram::bucket_upper(std::size_t index) {
  const std::size_t octave = index / kSubBuckets;
  if (octave == 0) return index;
  return bucket_lower(index) + ((std::uint64_t{1} << (octave - 1)) - 1);
}

void LatencyHistogram::record(std::uint64_t nanos) {
  ++counts_[bucket_index(nanos)];
  ++count_;
  sum_ += nanos;
}

void LatencyHistogram::record_seconds(double seconds) {
  if (seconds <= 0) {
    record(0);
    return;
  }
  record(static_cast<std::uint64_t>(std::llround(seconds * 1e9)));
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::clear() {
  counts_.fill(0);
  count_ = 0;
  sum_ = 0;
}

double LatencyHistogram::mean_nanos() const {
  return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
}

std::uint64_t LatencyHistogram::min_nanos() const {
  for (std::size_t i = 0; i < kBucketCount; ++i)
    if (counts_[i]) return bucket_lower(i);
  return 0;
}

std::uint64_t LatencyHistogram::max_nanos() const {
  for (std::size_t i = kBucketCount; i-- > 0;)
    if (counts_[i]) return bucket_upper(i);
  return 0;
}

std::uint64_t LatencyHistogram::percentile_nanos(double pct) const {
  if (count_ == 0) return 0;
  pct = std::clamp(pct, 0.0, 100.0);
  // The ceil(pct% * count)-th smallest sample, at least the 1st.
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(pct / 100.0 * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) return bucket_upper(i);
  }
  return max_nanos();
}

// ---------------------------------------------------------------------------
// ConcurrentHistogram
// ---------------------------------------------------------------------------

ConcurrentHistogram::ConcurrentHistogram(std::size_t shards) {
  if (shards == 0) {
    shards = std::min<std::size_t>(
        16, std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  }
  shard_count_ = std::bit_ceil(shards);
  mask_ = shard_count_ - 1;
  shards_ = std::make_unique<Shard[]>(shard_count_);
  for (std::size_t s = 0; s < shard_count_; ++s) {
    for (auto& c : shards_[s].counts) c.store(0, std::memory_order_relaxed);
  }
}

std::size_t ConcurrentHistogram::thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void ConcurrentHistogram::record(std::uint64_t nanos) {
  Shard& shard = shards_[thread_slot() & mask_];
  shard.counts[LatencyHistogram::bucket_index(nanos)].fetch_add(
      1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(nanos, std::memory_order_relaxed);
}

void ConcurrentHistogram::record_seconds(double seconds) {
  record(seconds <= 0 ? 0
                      : static_cast<std::uint64_t>(std::llround(seconds * 1e9)));
}

LatencyHistogram ConcurrentHistogram::snapshot() const {
  LatencyHistogram merged;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const Shard& shard = shards_[s];
    std::uint64_t shard_total = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
      const std::uint64_t c = shard.counts[i].load(std::memory_order_relaxed);
      merged.counts_[i] += c;
      shard_total += c;
    }
    // Count from the buckets actually read, so count() == sum of buckets
    // even when records race the snapshot.
    merged.count_ += shard_total;
    merged.sum_ += shard.sum.load(std::memory_order_relaxed);
  }
  return merged;
}

std::uint64_t ConcurrentHistogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s)
    total += shards_[s].count.load(std::memory_order_relaxed);
  return total;
}

}  // namespace stair
