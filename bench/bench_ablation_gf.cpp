// Ablation A2 (§6.2): Galois-field word-size and region-layout cost.
// Measures the Mult_XOR region kernel at w = 4/8/16/32 in both layouts
// (standard little-endian vs altmap planar blocks — gf/region.h) across
// EVERY compiled backend (scalar / ssse3 / avx2 / gfni / avx512), plus the
// layout-conversion transforms and plain XOR.
//
// This is the reason SD codes, which are forced onto w = 16 once n*r > 255
// (e.g. n = r = 16), lose throughput that STAIR keeps by staying on w = 8 —
// and the measurement behind the altmap lift: in the standard layout only
// w = 4/8 reach full SIMD (w = 32 runs the scalar wide-table loop on every
// backend), while altmap lifts w = 16/32 to the same per-byte split-table /
// GFNI-affine chain.
//
// Every cell is written to BENCH_gf_widths.json. Backends this host cannot
// run still emit their cells with "status": "skipped" (mbps 0), so the
// perf trajectory stays comparable across hosts; the CI bench job asserts
// altmap w = 16/32 >= 2x the scalar standard loop on AVX2+ hosts, and
// avx512 >= avx2 at w = 8/16/32 where the runner supports both.
// STAIR_BENCH_SMOKE=1 (or --smoke) shrinks the measurement time.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gf/kernel.h"
#include "gf/region.h"
#include "util/buffer.h"
#include "util/rng.h"
#include "util/table.h"

using namespace stair;
using namespace stair::bench;

namespace {

constexpr std::size_t kRegion = 1u << 20;  // 1 MiB regions

constexpr gf::Backend kAllBackends[] = {gf::Backend::kScalar, gf::Backend::kSsse3,
                                        gf::Backend::kAvx2, gf::Backend::kGfni,
                                        gf::Backend::kAvx512};

struct Cell {
  int w;
  std::string op;       // "mult_xor" | "convert" | "xor"
  std::string layout;   // "standard" | "altmap" | "-"
  std::string backend;  // backend the cell ran on (or would have)
  double mbps;
  bool skipped = false;  // backend not compiled in or not supported here
};

std::string json_cell(const Cell& c) {
  return "    {\"w\": " + std::to_string(c.w) + ", \"op\": \"" + c.op +
         "\", \"layout\": \"" + c.layout + "\", \"backend\": \"" + c.backend +
         "\", \"mbps\": " + format_sig(c.mbps, 5) +
         ", \"status\": \"" + (c.skipped ? "skipped" : "ok") + "\"}";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = parse_env(argc, argv);
  const double secs = env.smoke ? 0.05 : 0.25;
  const gf::Backend active = gf::active_backend();

  AlignedBuffer src(kRegion), dst(kRegion);
  Rng rng(1);
  rng.fill(src.span());
  rng.fill(dst.span());

  std::cout << "=== Ablation: Mult_XOR word-size x layout x backend cost (§6.2) ===\n"
            << "active backend " << gf::backend_name(active) << ", 1 MiB regions"
            << (env.smoke ? "  [smoke]" : "") << "\n\n";

  std::vector<Cell> cells;

  // One sweep per backend: skipped backends still emit every cell so the
  // JSON schema is host-independent.
  for (gf::Backend backend : kAllBackends) {
    const std::string name = gf::backend_name(backend);
    const bool runnable = gf::backend_supported(backend);
    if (runnable) gf::force_backend(backend);
    for (int w : {4, 8, 16, 32}) {
      const auto& f = gf::field(w);
      const std::uint32_t a = (0x1353 & f.max_element()) ? (0x1353 & f.max_element()) : 3;
      auto kernel = gf::compiled_kernel(f, a);
      // Best-of-3 per cell: interference only ever lowers a sample, and the
      // CI backend-vs-backend ratio gates need cells stable against the
      // host's timing noise, not a one-shot draw.
      const auto bench_mult_xor = [&](gf::RegionLayout layout) {
        double best = 0.0;
        for (int rep = 0; rep < 3; ++rep)
          best = std::max(
              best, measure_mbps([&] { kernel->mult_xor(src.span(), dst.span(), layout); },
                                 kRegion, secs));
        return best;
      };
      const double std_mbps = runnable ? bench_mult_xor(gf::RegionLayout::kStandard) : 0.0;
      const double alt_mbps = runnable ? bench_mult_xor(gf::RegionLayout::kAltmap) : 0.0;
      cells.push_back({w, "mult_xor", "standard", name, std_mbps, !runnable});
      cells.push_back({w, "mult_xor", "altmap", name, alt_mbps, !runnable});
      if (w >= 16) {
        // Conversion cost (round trip halves count as one pass each): what a
        // boundary conversion pays per stripe byte. Identity for w = 4/8.
        double conv_mbps = 0.0;
        for (int rep = 0; runnable && rep < 3; ++rep)
          conv_mbps = std::max(
              conv_mbps, measure_mbps(
                             [&] {
                               gf::convert_region(w, gf::RegionLayout::kStandard,
                                                  gf::RegionLayout::kAltmap, dst.span());
                               gf::convert_region(w, gf::RegionLayout::kAltmap,
                                                  gf::RegionLayout::kStandard, dst.span());
                             },
                             2 * kRegion, secs));
        cells.push_back({w, "convert", "-", name, conv_mbps, !runnable});
      }
    }
    if (runnable) gf::force_backend(active);
  }
  gf::reset_backend();

  const double xor_mbps =
      measure_mbps([&] { gf::xor_region(src.span(), dst.span()); }, kRegion, secs);
  cells.push_back({0, "xor", "-", gf::backend_name(active), xor_mbps, false});

  // Console table: per width, the standard/altmap pair of every backend
  // measured here ("-" = skipped on this host).
  const auto cell_mbps = [&](int w, const std::string& op, const std::string& layout,
                             const std::string& backend) -> const Cell* {
    for (const Cell& c : cells)
      if (c.w == w && c.op == op && c.layout == layout && c.backend == backend) return &c;
    return nullptr;
  };
  TablePrinter table("Mult_XOR throughput (MB/s): backend std/alt by word size");
  std::vector<std::string> header{"w"};
  for (gf::Backend backend : kAllBackends)
    header.push_back(std::string(gf::backend_name(backend)) + " std/alt");
  header.push_back("simd");
  table.set_header(header);
  for (int w : {4, 8, 16, 32}) {
    std::vector<std::string> row{std::to_string(w)};
    for (gf::Backend backend : kAllBackends) {
      const Cell* s = cell_mbps(w, "mult_xor", "standard", gf::backend_name(backend));
      const Cell* alt = cell_mbps(w, "mult_xor", "altmap", gf::backend_name(backend));
      if (!s || s->skipped) {
        row.push_back("-");
      } else {
        row.push_back(format_sig(s->mbps, 4) + "/" + format_sig(alt->mbps, 4));
      }
    }
    row.push_back(gf::has_simd(w) ? "yes" : "no");
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "plain XOR: " << format_sig(xor_mbps, 4) << " MB/s\n";

  {
    const std::string path = json_output_path("BENCH_gf_widths.json", env.smoke);
    std::ofstream out(path);
    out << "{\n  \"bench\": \"ablation_gf_widths\",\n"
        << "  \"backend\": \"" << gf::backend_name(active) << "\",\n"
        << "  \"smoke\": " << (env.smoke ? "true" : "false") << ",\n"
        << "  \"region_bytes\": " << kRegion << ",\n  \"backends\": [\n";
    for (std::size_t i = 0; i < std::size(kAllBackends); ++i) {
      const gf::Backend b = kAllBackends[i];
      out << "    {\"name\": \"" << gf::backend_name(b) << "\", \"compiled\": "
          << (gf::backend_compiled(b) ? "true" : "false") << ", \"supported\": "
          << (gf::backend_supported(b) ? "true" : "false") << "}"
          << (i + 1 < std::size(kAllBackends) ? "," : "") << "\n";
    }
    out << "  ],\n  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i)
      out << json_cell(cells[i]) << (i + 1 < cells.size() ? "," : "") << "\n";
    out << "  ]\n}\n";
    std::cout << "\nWrote " << cells.size() << " cells to " << path << "\n";
  }

  std::cout << "Shape check: w = 8 fastest multiplying width; altmap >= standard at\n"
               "w = 16/32 on SIMD backends (>= 2x the scalar standard loop on AVX2+);\n"
               "avx512 >= avx2 where both run; XOR fastest overall.\n";
  return 0;
}
