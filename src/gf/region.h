// Region (bulk) Galois-field operations — the Mult_XOR primitive of the paper.
//
// Mult_XOR(R1, R2, a): multiply region R1 by the w-bit constant a in GF(2^w)
// and XOR the product into region R2 (paper §5.3, after [Plank FAST'13]).
// All erasure-code throughput in this library reduces to calls here.
//
// Layout: a region is an array of w-bit symbols. For w = 8 that is plain
// bytes; for w = 16/32, little-endian words (region sizes must be multiples
// of w/8 bytes). For w = 4, two field elements are packed per byte and the
// kernel operates on both nibbles at once.
//
// Fast paths: every word size dispatches to runtime-selected split-table
// kernels (scalar / SSSE3 pshufb / AVX2 vpshufb — the technique GF-Complete's
// SPLIT implementations use) with per-coefficient tables cached across calls.
// Backend selection, overrides, and the kernel cache live in gf/kernel.h;
// all backends produce bit-identical results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "gf/gf.h"

namespace stair::gf {

/// dst[i] ^= a * src[i] for every symbol i (the paper's Mult_XOR).
/// src and dst must be the same size, a multiple of the symbol width.
void mult_xor_region(const Field& f, std::uint32_t a,
                     std::span<const std::uint8_t> src, std::span<std::uint8_t> dst);

/// dst[i] = a * src[i] (overwrites dst; never reads it, so exact aliasing
/// src == dst is allowed — partial overlap is not).
void mult_region(const Field& f, std::uint32_t a,
                 std::span<const std::uint8_t> src, std::span<std::uint8_t> dst);

/// dst[i] ^= src[i] — the a = 1 special case, kept separate because it
/// needs no tables and vectorizes trivially.
void xor_region(std::span<const std::uint8_t> src, std::span<std::uint8_t> dst);

/// True if the active backend (see gf/kernel.h) is a SIMD one.
bool has_simd_w8();

}  // namespace stair::gf
