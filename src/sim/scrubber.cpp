#include "sim/scrubber.h"

#include <cmath>

namespace stair::sim {

double latent_error_probability(const ScrubPolicy& policy) {
  const double rate = policy.error_rate_per_hour;
  const double t = policy.period_hours;
  // Limits, not just guards: as rate -> 0 no errors arrive, and as T -> 0 a
  // sector is rechecked the instant anything could land — both drive the
  // expectation to 0. (NaN rate/period also lands here, as "no model".)
  if (!(rate > 0.0) || !(t > 0.0)) return 0.0;
  const double x = rate * t;
  // E_{U~Unif(0,T)}[1 - e^(-rate*U)] = 1 - (1 - e^(-rate*T)) / (rate*T).
  // The closed form is 0/0 once x underflows to zero, and for small positive
  // x it subtracts two values ~1 apart by ~x/2 — catastrophic cancellation
  // that leaves only a few significant digits by x ~ 1e-12. The series
  // x/2 - x^2/6 + x^3/24 (error O(x^4)) is exact to double precision below
  // the switch point and agrees with the closed form above it.
  if (x < 1e-4) return x / 2.0 - x * x / 6.0 + x * x * x / 24.0;
  return 1.0 - (-std::expm1(-x)) / x;
}

double scrubbed_p_sec(double error_rate_per_hour, double period_hours) {
  return latent_error_probability({period_hours, error_rate_per_hour});
}

double pass_rate_mbps(double store_bytes, double period_hours) {
  if (!(store_bytes > 0.0) || !(period_hours > 0.0)) return 0.0;
  return store_bytes / (period_hours * 3600.0) / (1024.0 * 1024.0);
}

double effective_scrub_period(double period_hours, double store_bytes,
                              double scan_mbps) {
  const double requested = period_hours > 0.0 ? period_hours : 0.0;
  if (!(store_bytes > 0.0) || !(scan_mbps > 0.0)) return requested;
  const double pass_hours = store_bytes / (scan_mbps * 1024.0 * 1024.0) / 3600.0;
  return std::max(requested, pass_hours);
}

}  // namespace stair::sim
