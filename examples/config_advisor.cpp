// config_advisor: pick a sector-failure coverage vector e for your array.
//
//   $ ./config_advisor [n=8] [r=16] [m=2] [beta=2] [p_bit=1e-12] [indep]
//
// Given the array shape, the worst burst length beta to survive (§2), and
// the device's unrecoverable bit error rate, ranks every candidate coverage
// vector by reliability (correlated-burst MTTDL by default, independent
// model with the `indep` flag; §7) and reports space cost, encoding cost,
// and update penalty for each — the §7.2.2 configuration discussion as a
// tool, backed by reliability::rank_coverage_vectors().

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "reliability/coverage_advisor.h"
#include "stair/cost_model.h"
#include "stair/update_analysis.h"
#include "util/table.h"

using namespace stair;
using namespace stair::reliability;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  const std::size_t r = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16;
  const std::size_t m = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2;
  const std::size_t beta = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 2;
  const double p_bit = argc > 5 ? std::strtod(argv[5], nullptr) : 1e-12;
  const bool correlated = !(argc > 6 && std::strcmp(argv[6], "indep") == 0);

  std::printf("advising for n=%zu r=%zu m=%zu, burst tolerance beta=%zu, P_bit=%g, %s model\n\n",
              n, r, m, beta, p_bit, correlated ? "correlated-burst" : "independent");

  AdvisorQuery query;
  query.system.n = n;
  query.system.r = r;
  query.system.m = 1;  // the §7 Markov model; the ranking is what matters
  query.p_bit = p_bit;
  query.beta = beta;
  query.correlated = correlated;
  const auto ranked = rank_coverage_vectors(query);
  if (ranked.empty()) {
    std::printf("no coverage vector satisfies the constraints (beta too large?)\n");
    return 1;
  }

  TablePrinter table("candidates with e_max >= beta, ranked by MTTDL");
  table.set_header({"rank", "e", "s (extra sectors)", "MTTDL_sys (h)", "encode Mult_XORs",
                    "update penalty"});
  const std::size_t show = std::min<std::size_t>(ranked.size(), 12);
  for (std::size_t i = 0; i < show; ++i) {
    const auto& c = ranked[i];
    std::string e_str = "(";
    for (std::size_t k = 0; k < c.e.size(); ++k)
      e_str += (k ? "," : "") + std::to_string(c.e[k]);
    e_str += ")";

    // Cost and update columns use the *requested* m, not the model's m = 1.
    StairConfig cfg{.n = n, .r = r, .m = m, .e = c.e};
    std::string cost = "-", penalty = "-";
    try {
      cfg.w = std::max(cfg.minimum_w(), 8);
      cfg.validate();
      const StairCode code(cfg);
      cost = std::to_string(std::min(upstairs_mult_xors(cfg), downstairs_mult_xors(cfg)));
      penalty = format_sig(update_penalty(code).average, 4);
    } catch (...) {
      // coverage valid for the m = 1 reliability model but not for this m
    }
    table.add_row({std::to_string(i + 1), e_str, std::to_string(c.s),
                   format_sig(c.mttdl_hours, 4), cost, penalty});
  }
  table.print(std::cout);

  const auto& best = ranked.front();
  std::string e_str;
  for (std::size_t k = 0; k < best.e.size(); ++k)
    e_str += (k ? "," : "") + std::to_string(best.e[k]);
  std::printf("recommendation: e = (%s) — tolerates a beta=%zu burst at %zu extra parity\n"
              "sectors per stripe (IDR would need %zu extra sectors for the same burst).\n",
              e_str.c_str(), beta, best.s, beta * (n - m));
  return 0;
}
