// Sector-disk (SD) codes [Plank & Blaum, FAST'13 / ToS'14] — the paper's
// main comparator.
//
// An SD code over an r x n stripe devotes m whole disks plus s individual
// sectors to parity and tolerates the failure of any m disks plus any s
// further sectors. We implement the Blaum-Plank parity-check construction:
//   per-row equations   sum_j alpha^(u*j) * c_{i,j} = 0          (u < m)
//   global equations    sum_{i,j} alpha^((m+t)*(i*n+j)) * c_{i,j} = 0 (t < s)
// with a deterministic randomized-coefficient fallback for the global rows
// when a configuration makes the parity submatrix singular. Known SD
// constructions exist only for s <= 3 (the paper's point); we keep the same
// restriction by default and verify tolerance exhaustively in tests for the
// small configurations they use.
//
// Encoding deliberately follows the authors' released implementation: every
// parity symbol is a dense linear combination of all data symbols ("encoding
// in a decoding manner", §6.2) with no parity reuse — this is the behaviour
// STAIR's reuse is measured against. The word size is the smallest
// w in {8, 16, 32} with n*r <= 2^w - 1, reproducing SD's word-size penalty.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "matrix/matrix.h"
#include "stair/schedule.h"

namespace stair {

/// SD code parameters. `w = 0` selects the smallest feasible word size.
struct SdConfig {
  std::size_t n = 0;  ///< disks per stripe
  std::size_t r = 0;  ///< sectors per disk
  std::size_t m = 0;  ///< parity disks
  std::size_t s = 0;  ///< extra parity sectors
  int w = 0;          ///< GF word size; 0 = auto

  /// Smallest w in {8, 16, 32} with n * r <= 2^w - 1.
  static int choose_w(std::size_t n, std::size_t r);

  void validate() const;
};

/// One SD erasure code. Symbols are addressed row-major over the stored
/// stripe: index = row * n + col. Parity positions: the m rightmost disks
/// (all rows) plus the s sectors at the right end of the bottom data row(s).
class SdCode {
 public:
  explicit SdCode(SdConfig cfg);

  const SdConfig& config() const { return cfg_; }
  const gf::Field& field() const { return *field_; }

  std::size_t symbol_count() const { return cfg_.r * cfg_.n; }
  std::size_t parity_count() const { return cfg_.m * cfg_.r + cfg_.s; }
  std::size_t data_count() const { return symbol_count() - parity_count(); }

  /// Stored indices of parity symbols (row-parity disks then global sectors).
  const std::vector<std::size_t>& parity_positions() const { return parity_pos_; }
  /// Stored indices of data symbols, ascending.
  const std::vector<std::size_t>& data_positions() const { return data_pos_; }

  /// Dense encode schedule (no parity reuse); its Mult_XOR count is what
  /// Figure 9/11-13 compare STAIR's reuse against.
  const Schedule& encoding_schedule() const { return encode_; }

  /// Fills all parity regions from the data regions; `symbols` holds the
  /// r*n equally-sized stored regions.
  void encode(std::span<const std::span<std::uint8_t>> symbols) const;

  /// Compiles a decode schedule for the erased positions, or nullopt if the
  /// pattern is unsolvable (outside coverage, or a rare construction gap).
  std::optional<Schedule> build_decode_schedule(const std::vector<bool>& erased) const;

  /// Recovers erased regions in place; false if not solvable.
  bool decode(std::span<const std::span<std::uint8_t>> symbols,
              const std::vector<bool>& erased) const;

  /// True if the pattern is within the nominal SD coverage: at most m disks
  /// wholly failed plus at most s further lost sectors.
  bool within_coverage(const std::vector<bool>& erased) const;

  /// Average parity symbols touched per data-symbol update (Figure 15).
  double update_penalty() const;

 private:
  SdConfig cfg_;
  const gf::Field* field_;
  Matrix h_;                           // (m*r + s) x (n*r) parity check
  std::vector<std::size_t> parity_pos_;
  std::vector<std::size_t> data_pos_;
  Matrix encode_matrix_;               // parity_count x data_count
  Schedule encode_;
};

}  // namespace stair
