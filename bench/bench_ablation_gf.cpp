// Ablation A2 (§6.2): Galois-field word-size and region-layout cost.
// Measures the Mult_XOR region kernel at w = 4/8/16/32 in both layouts
// (standard little-endian vs altmap planar blocks — gf/region.h), plus the
// layout-conversion transforms and plain XOR, against the forced
// scalar-backend standard-layout loop as the common baseline.
//
// This is the reason SD codes, which are forced onto w = 16 once n*r > 255
// (e.g. n = r = 16), lose throughput that STAIR keeps by staying on w = 8 —
// and the measurement behind the altmap lift: in the standard layout only
// w = 4/8 reach full SIMD (w = 32 runs the scalar wide-table loop on every
// backend), while altmap lifts w = 16/32 to the same per-byte split-table /
// GFNI-affine chain.
//
// Every cell is written to BENCH_gf_widths.json; the CI bench job asserts
// from it that altmap w = 16/32 is >= 2x the scalar standard loop on AVX2+
// hosts. STAIR_BENCH_SMOKE=1 (or --smoke) shrinks the measurement time.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gf/kernel.h"
#include "gf/region.h"
#include "util/buffer.h"
#include "util/rng.h"
#include "util/table.h"

using namespace stair;
using namespace stair::bench;

namespace {

constexpr std::size_t kRegion = 1u << 20;  // 1 MiB regions

struct Cell {
  int w;
  std::string op;       // "mult_xor" | "convert" | "xor"
  std::string layout;   // "standard" | "altmap" | "-"
  std::string backend;  // backend the cell ran on
  double mbps;
};

std::string json_cell(const Cell& c) {
  return "    {\"w\": " + std::to_string(c.w) + ", \"op\": \"" + c.op +
         "\", \"layout\": \"" + c.layout + "\", \"backend\": \"" + c.backend +
         "\", \"mbps\": " + format_sig(c.mbps, 5) + "}";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = parse_env(argc, argv);
  const double secs = env.smoke ? 0.05 : 0.25;
  const gf::Backend active = gf::active_backend();

  AlignedBuffer src(kRegion), dst(kRegion);
  Rng rng(1);
  rng.fill(src.span());
  rng.fill(dst.span());

  std::cout << "=== Ablation: Mult_XOR word-size x layout cost (§6.2) ===\n"
            << "active backend " << gf::backend_name(active) << ", 1 MiB regions"
            << (env.smoke ? "  [smoke]" : "") << "\n\n";

  std::vector<Cell> cells;
  TablePrinter table("Mult_XOR throughput (MB/s) by word size and layout");
  table.set_header({"w", "scalar std", "std", "altmap", "convert", "alt/scalar", "simd"});

  for (int w : {4, 8, 16, 32}) {
    const auto& f = gf::field(w);
    const std::uint32_t a = (0x1353 & f.max_element()) ? (0x1353 & f.max_element()) : 3;
    auto kernel = gf::compiled_kernel(f, a);
    const auto bench_mult_xor = [&](gf::RegionLayout layout) {
      return measure_mbps(
          [&] { kernel->mult_xor(src.span(), dst.span(), layout); }, kRegion, secs);
    };

    // Baseline: the scalar backend's standard-layout loop (what every width
    // ran in the seed, and what standard w = 32 still runs everywhere).
    gf::force_backend(gf::Backend::kScalar);
    const double scalar_std = bench_mult_xor(gf::RegionLayout::kStandard);
    gf::force_backend(active);
    cells.push_back({w, "mult_xor", "standard", "scalar", scalar_std});

    const double std_mbps = bench_mult_xor(gf::RegionLayout::kStandard);
    const double alt_mbps = bench_mult_xor(gf::RegionLayout::kAltmap);
    cells.push_back({w, "mult_xor", "standard", gf::backend_name(active), std_mbps});
    cells.push_back({w, "mult_xor", "altmap", gf::backend_name(active), alt_mbps});

    // Conversion cost (round trip halves count as one pass each): what a
    // boundary conversion pays per stripe byte. Identity for w = 4/8.
    double conv_mbps = 0.0;
    if (w >= 16) {
      conv_mbps = measure_mbps(
          [&] {
            gf::convert_region(w, gf::RegionLayout::kStandard, gf::RegionLayout::kAltmap,
                               dst.span());
            gf::convert_region(w, gf::RegionLayout::kAltmap, gf::RegionLayout::kStandard,
                               dst.span());
          },
          2 * kRegion, secs);
      cells.push_back({w, "convert", "-", gf::backend_name(active), conv_mbps});
    }

    table.add_row({std::to_string(w), format_sig(scalar_std, 4), format_sig(std_mbps, 4),
                   format_sig(alt_mbps, 4), w >= 16 ? format_sig(conv_mbps, 4) : "-",
                   format_sig(alt_mbps / scalar_std, 3) + "x",
                   gf::has_simd(w) ? "yes" : "no"});
  }
  gf::reset_backend();

  const double xor_mbps =
      measure_mbps([&] { gf::xor_region(src.span(), dst.span()); }, kRegion, secs);
  cells.push_back({0, "xor", "-", gf::backend_name(active), xor_mbps});

  table.print(std::cout);
  std::cout << "plain XOR: " << format_sig(xor_mbps, 4) << " MB/s\n";

  {
    const std::string path = json_output_path("BENCH_gf_widths.json", env.smoke);
    std::ofstream out(path);
    out << "{\n  \"bench\": \"ablation_gf_widths\",\n"
        << "  \"backend\": \"" << gf::backend_name(active) << "\",\n"
        << "  \"smoke\": " << (env.smoke ? "true" : "false") << ",\n"
        << "  \"region_bytes\": " << kRegion << ",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i)
      out << json_cell(cells[i]) << (i + 1 < cells.size() ? "," : "") << "\n";
    out << "  ]\n}\n";
    std::cout << "\nWrote " << cells.size() << " cells to " << path << "\n";
  }

  std::cout << "Shape check: w = 8 fastest multiplying width; altmap >= standard at\n"
               "w = 16/32 on SIMD backends (>= 2x the scalar standard loop on AVX2+);\n"
               "XOR fastest overall.\n";
  return 0;
}
