#include "util/buffer.h"

#include <cstring>
#include <new>

namespace stair {

AlignedBuffer::AlignedBuffer(std::size_t size) : size_(size) {
  if (size == 0) return;
  auto* raw = static_cast<std::uint8_t*>(::operator new[](size, std::align_val_t{kAlignment}));
  std::memset(raw, 0, size);
  data_.reset(raw);
}

void AlignedBuffer::clear() {
  if (size_ != 0) std::memset(data_.get(), 0, size_);
}

}  // namespace stair
