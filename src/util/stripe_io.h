// Async stripe-chunk IO engine — the disk side of the serving pipeline.
//
// The Codec session keeps N stripes of *compute* in flight; this engine keeps
// their chunk reads and writes in flight alongside, so IO for stripe k+d
// overlaps region work for stripe k instead of serializing in front of it.
// The model is a tiny completion-callback engine, deliberately smaller than a
// general event loop:
//
//   * read/write submit one positioned transfer (pread/pwrite semantics) and
//     return immediately; the callback fires on an engine thread when the
//     transfer has fully completed (or failed),
//   * transfers are whole-or-nothing: the engine internally continues short
//     transfers, so the callback sees bytes < requested only at end-of-file
//     (reads) or with a nonzero errno,
//   * flush() blocks the caller until every submitted transfer has retired.
//
// Two backends, selected at runtime (STAIR_IO_BACKEND = threads | uring |
// auto, or Engine::create's argument): a portable pread/pwrite thread pool,
// and a Linux io_uring ring driven through raw syscalls (no liburing
// dependency). kAuto prefers io_uring and silently falls back when the
// kernel or a seccomp sandbox refuses io_uring_setup — backend() reports
// what was actually built, and every backend produces identical results.
//
// Callbacks run on engine threads and must not throw. They MAY submit new
// transfers (that is how the pipeline chains read -> encode -> write), and
// submission never blocks on completions, so callback-driven chains cannot
// deadlock; backpressure is the caller's job (the IoPipeline bounds stripes
// in flight, which bounds transfers at stripes x (n + 1)).
//
// FaultInjectingEngine wraps any engine with a deterministic fault plan —
// EIO reads, short reads, torn writes, failed writes — keyed on file name
// and byte range, which is how the test battery simulates lost sectors and
// dying devices underneath an unmodified pipeline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace stair::io {

enum class Backend : std::uint8_t { kAuto = 0, kThreads = 1, kUring = 2 };

/// What a submission is doing for the system, as opposed to what it does to
/// bytes: foreground client traffic vs the background maintenance phases
/// (scrub verify reads, targeted repair writes, whole-device rebuild).
/// Thread-local — a submitter tags its own submissions via PhaseScope and
/// the tag is read synchronously at submit time, so chained callbacks on
/// engine threads keep the phase of whoever submitted them.
enum class IoPhase : std::uint8_t { kForeground = 0, kScrub = 1, kRepair = 2, kRebuild = 3 };

/// The phase submissions from this thread currently carry.
IoPhase current_phase();

/// RAII tag: submissions made on this thread while the scope is alive carry
/// `phase`. Nests; restores the previous phase on destruction.
class PhaseScope {
 public:
  explicit PhaseScope(IoPhase phase);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  IoPhase prev_;
};

/// "auto" / "threads" / "uring".
const char* backend_name(Backend b);

/// STAIR_IO_BACKEND environment override (threads | uring | auto); kAuto
/// when unset or unparseable.
Backend backend_from_env();

/// One completed transfer: `error` is an errno value (0 = success) and
/// `bytes` the total bytes transferred. A successful read reports
/// bytes < requested only when the file ended first.
struct Result {
  int error = 0;
  std::size_t bytes = 0;

  bool ok() const { return error == 0; }
};

using Callback = std::function<void(const Result&)>;

class Engine {
 public:
  struct Options {
    /// io_uring submission-queue entries (rounded up to a power of two) and
    /// the cap on transfers in flight before submit briefly yields to the
    /// completion reaper. Thread backend: soft queue sizing only.
    std::size_t queue_depth = 64;
    /// Worker threads performing pread/pwrite (thread backend only).
    std::size_t threads = 2;
  };

  virtual ~Engine() = default;

  /// The backend actually running (kAuto never; create() resolves it).
  virtual Backend backend() const = 0;

  /// Submits one positioned read of buf.size() bytes at `offset`; cb fires
  /// on an engine thread once the transfer retires. Never blocks on other
  /// transfers' completions.
  virtual void read(int fd, std::uint64_t offset, std::span<std::uint8_t> buf,
                    Callback cb) = 0;

  /// Submits one positioned write; same contract as read().
  virtual void write(int fd, std::uint64_t offset, std::span<const std::uint8_t> buf,
                     Callback cb) = 0;

  /// Blocks until every transfer submitted so far has retired (callbacks
  /// included). Not for use from callbacks.
  virtual void flush() = 0;

  // File handles flow through the engine so a wrapping engine (fault
  // injection) can key faults on the path behind an fd. Base implementations
  // are plain open/close.

  /// Opens for reading; -1 with errno set on failure (missing device file).
  virtual int open_read(const std::string& path);
  /// Opens for writing, created/truncated; -1 with errno on failure.
  virtual int open_write(const std::string& path);
  /// Opens read-write, created if missing but NOT truncated — in-place
  /// sector repair must patch the damaged ranges of a chunk file without
  /// destroying the healthy ones.
  virtual int open_update(const std::string& path);
  virtual void close(int fd);

  /// Size of a file opened through this engine, in bytes (fstat; 0 on
  /// failure). Virtual so engines with synthetic fds (in-memory benchmark
  /// baseline) can answer for their own handles.
  virtual std::uint64_t file_size(int fd) const;

  /// Sets the file's length (ftruncate). Returns 0 or an errno value.
  virtual int truncate(int fd, std::uint64_t size);

  /// True when io_uring_setup succeeds on this kernel/sandbox (probed once).
  static bool uring_supported();

  /// Builds the requested backend; kAuto (and kUring when unsupported)
  /// resolve to io_uring if available, else threads.
  static std::unique_ptr<Engine> create(Backend requested, Options options);
  static std::unique_ptr<Engine> create(Backend requested = backend_from_env());
};

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// One injected fault, matched against transfers on (file, byte range). A
/// transfer matches when its fd was opened through this engine for a path
/// whose final component equals `file` and its byte range intersects
/// [offset, offset + length). Matching is deterministic: rules are checked
/// in registration order, first match wins.
struct Fault {
  enum class Kind : std::uint8_t {
    kReadError,   // read fails with `error`, no bytes transferred
    kShortRead,   // read succeeds but reports only `keep_bytes` bytes
    kWriteError,  // write fails with `error`, nothing written
    kTornWrite,   // only the first `keep_bytes` hit the file, but the write
                  // REPORTS full success — silent corruption for checksums
                  // to catch on the next read
  };

  Kind kind = Kind::kReadError;
  std::string file;                // final path component, e.g. "dev_03.bin"
  std::uint64_t offset = 0;        // start of the faulty byte range
  std::uint64_t length = ~0ULL;    // range length (default: whole file)
  int error = 5;                   // EIO; reported by the *Error kinds
  std::size_t keep_bytes = 0;      // kShortRead / kTornWrite prefix
  bool once = false;               // consume the rule after its first hit
  /// When set, the rule only matches transfers submitted under this IoPhase
  /// (see PhaseScope) — a scrub-phase fault plan can fail every scrub read
  /// of a range while foreground reads of the same bytes stay healthy.
  std::optional<IoPhase> phase;
};

/// Deterministic fault-injecting decorator: delegates to an inner engine,
/// applying the registered fault plan. Thread-safe; rules may be added
/// between operations but not concurrently with them.
class FaultInjectingEngine : public Engine {
 public:
  explicit FaultInjectingEngine(std::unique_ptr<Engine> inner);
  ~FaultInjectingEngine() override;

  void add_fault(Fault fault);
  void clear_faults();
  /// Faults applied so far (tests assert the plan actually fired).
  std::uint64_t hits() const;

  Backend backend() const override { return inner_->backend(); }
  void read(int fd, std::uint64_t offset, std::span<std::uint8_t> buf,
            Callback cb) override;
  void write(int fd, std::uint64_t offset, std::span<const std::uint8_t> buf,
             Callback cb) override;
  void flush() override { inner_->flush(); }

  int open_read(const std::string& path) override;
  int open_write(const std::string& path) override;
  int open_update(const std::string& path) override;
  void close(int fd) override;
  std::uint64_t file_size(int fd) const override { return inner_->file_size(fd); }
  int truncate(int fd, std::uint64_t size) override { return inner_->truncate(fd, size); }

 private:
  /// First matching rule for the op, applying `once` consumption; nullopt
  /// when the transfer should pass through untouched.
  std::optional<Fault> match(bool is_write, int fd, std::uint64_t offset,
                             std::uint64_t length);

  std::unique_ptr<Engine> inner_;
  mutable std::mutex mu_;
  std::vector<Fault> faults_;            // guarded by mu_
  std::vector<std::pair<int, std::string>> files_;  // fd -> final component
  std::uint64_t hits_ = 0;               // guarded by mu_
};

}  // namespace stair::io
