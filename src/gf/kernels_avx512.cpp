// AVX-512 backend: the kernels_impl.h algorithms widened to zmm (64 bytes
// per iteration), compiled with -mavx512f -mavx512bw -mavx512vl (+AVX2 and
// GFNI so the shared helpers and the composed-affine bodies are available
// under EVEX encodings).
//
// Unlike the other TUs, this one carries TWO complete kernel variants and
// picks between them once per process:
//
//  * the vpshufb variant — zmm VPSHUFB over 128-bit-broadcast nibble tables,
//    the widening of the AVX2 split-table kernels. This is all a
//    Skylake-SP-era part (AVX-512 without GFNI) can run, so it is the
//    dispatch default when CPUID lacks GFNI;
//  * the composed-affine variant — zmm VGF2P8AFFINEQB, the widening of the
//    GFNI backend's byte-linear and (w/8 x w/8) affine-grid kernels, chosen
//    when the CPU reports GFNI.
//
// Backend support (kernel.cpp) requires only AVX512F+BW+VL, so the variant
// split keeps the backend usable across both CPU generations while tests
// can pin the vpshufb set explicitly via avx512_shuffle_variant_fns().
//
// Tail and block handling follow the backend contract exactly: altmap
// kernels process whole 64-byte blocks (odd trailing blocks drop to the
// shared xmm block forms), and every kernel hands the final partial word
// run to the scalar standard loops, resuming at the first unprocessed byte.
#include "gf/kernels_impl.h"

#if !defined(__AVX512F__) || !defined(__AVX512BW__)
#error "kernels_avx512.cpp must be compiled with AVX-512 flags"
#endif

namespace stair::gf::detail {

namespace {

inline __m512i loadu512(const std::uint8_t* p) {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}

inline void storeu512(std::uint8_t* p, __m512i v) {
  _mm512_storeu_si512(reinterpret_cast<void*>(p), v);
}

// A 16-byte nibble table broadcast to all four 128-bit lanes (VPSHUFB
// indexes within each lane, same as the AVX2 bcast128 idiom).
inline __m512i bcast128_512(const std::uint8_t* table16) {
  return _mm512_broadcast_i32x4(_mm_load_si128(reinterpret_cast<const __m128i*>(table16)));
}

template <bool Accum>
inline void store_prod512(std::uint8_t* dst, __m512i prod) {
  if (Accum) prod = _mm512_xor_si512(prod, loadu512(dst));
  storeu512(dst, prod);
}

// Two 32-byte plane halves of consecutive 64-byte altmap blocks in one zmm
// (the w = 16 altmap kernels run 128 bytes — two blocks — per iteration).
inline __m512i load_planes32(const std::uint8_t* block0, const std::uint8_t* block1) {
  return _mm512_inserti64x4(_mm512_castsi256_si512(loadu256(block0)), loadu256(block1), 1);
}

template <bool Accum>
inline void store_planes32(std::uint8_t* block0, std::uint8_t* block1, __m512i prod) {
  if (Accum) prod = _mm512_xor_si512(prod, load_planes32(block0, block1));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(block0), _mm512_castsi512_si256(prod));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(block1),
                      _mm512_extracti64x4_epi64(prod, 1));
}

// Four 16-byte planes of consecutive 64-byte altmap blocks in one zmm (the
// w = 32 altmap kernels run 256 bytes — four blocks — per iteration).
inline __m512i load_planes16(const std::uint8_t* p0, const std::uint8_t* p1,
                             const std::uint8_t* p2, const std::uint8_t* p3) {
  __m512i v = _mm512_castsi128_si512(loadu128(p0));
  v = _mm512_inserti32x4(v, loadu128(p1), 1);
  v = _mm512_inserti32x4(v, loadu128(p2), 2);
  v = _mm512_inserti32x4(v, loadu128(p3), 3);
  return v;
}

template <bool Accum>
inline void store_planes16(std::uint8_t* p0, std::uint8_t* p1, std::uint8_t* p2,
                           std::uint8_t* p3, __m512i prod) {
  if (Accum) prod = _mm512_xor_si512(prod, load_planes16(p0, p1, p2, p3));
  storeu128(p0, _mm512_castsi512_si128(prod));
  storeu128(p1, _mm512_extracti32x4_epi32(prod, 1));
  storeu128(p2, _mm512_extracti32x4_epi32(prod, 2));
  storeu128(p3, _mm512_extracti32x4_epi32(prod, 3));
}

// ---------------------------------------------------------------------------
// Byte-linear widths (w = 4/8): one zmm per 64 bytes — a single
// VGF2P8AFFINEQB, or two VPSHUFB lookups through the nibble tables.
// ---------------------------------------------------------------------------

template <bool Accum, bool UseGfni>
inline void byte_linear_loop512(const KernelTables& t, const std::uint8_t* src,
                                std::uint8_t* dst, std::size_t n, std::size_t& done) {
  std::size_t i = 0;
  if constexpr (UseGfni) {
    const __m512i m = _mm512_set1_epi64(static_cast<long long>(t.affine8));
    for (; i + 64 <= n; i += 64)
      store_prod512<Accum>(dst + i, _mm512_gf2p8affine_epi64_epi8(loadu512(src + i), m, 0));
  } else {
    const __m512i tlo = bcast128_512(t.nib[0][0]);
    const __m512i thi = bcast128_512(t.nib[1][0]);
    const __m512i mask = _mm512_set1_epi8(0x0f);
    for (; i + 64 <= n; i += 64) {
      const __m512i x = loadu512(src + i);
      const __m512i plo = _mm512_shuffle_epi8(tlo, _mm512_and_si512(x, mask));
      const __m512i phi =
          _mm512_shuffle_epi8(thi, _mm512_and_si512(_mm512_srli_epi64(x, 4), mask));
      store_prod512<Accum>(dst + i, _mm512_xor_si512(plo, phi));
    }
  }
  done = i;
}

template <bool Accum, bool UseGfni>
void k512_w4(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
             std::size_t n) {
  std::size_t i = 0;
  byte_linear_loop512<Accum, UseGfni>(t, src, dst, n, i);
  scalar_w4<Accum>(t, src, dst, n, i);
}

template <bool Accum, bool UseGfni>
void k512_w8(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
             std::size_t n) {
  std::size_t i = 0;
  byte_linear_loop512<Accum, UseGfni>(t, src, dst, n, i);
  scalar_w8<Accum>(t, src, dst, n, i);
}

// ---------------------------------------------------------------------------
// w = 16, standard layout: the AVX2 16-bit-lane nibble kernel at zmm width.
// GFNI buys nothing here (the composed-affine trick needs planar bytes), so
// both variants share it.
// ---------------------------------------------------------------------------

template <bool Accum>
void k512_w16(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
              std::size_t n) {
  __m512i lo[4], hi[4];
  for (int k = 0; k < 4; ++k) {
    lo[k] = bcast128_512(t.nib[k][0]);
    hi[k] = bcast128_512(t.nib[k][1]);
  }
  const __m512i nibm = _mm512_set1_epi16(0x000f);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i x = loadu512(src + i);
    const __m512i idx[4] = {
        _mm512_and_si512(x, nibm), _mm512_and_si512(_mm512_srli_epi16(x, 4), nibm),
        _mm512_and_si512(_mm512_srli_epi16(x, 8), nibm),
        _mm512_and_si512(_mm512_srli_epi16(x, 12), nibm)};
    __m512i plo = _mm512_setzero_si512(), phi = _mm512_setzero_si512();
    for (int k = 0; k < 4; ++k) {
      plo = _mm512_xor_si512(plo, _mm512_shuffle_epi8(lo[k], idx[k]));
      phi = _mm512_xor_si512(phi, _mm512_shuffle_epi8(hi[k], idx[k]));
    }
    store_prod512<Accum>(dst + i, _mm512_xor_si512(plo, _mm512_slli_epi16(phi, 8)));
  }
  scalar_w16<Accum>(t, src, dst, n, i);
}

// w = 32, standard layout: the wide-table scalar loop wins on every backend
// (see the kernels_impl.h note); altmap is this width's vectorized path.
template <bool Accum>
void k512_w32(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
              std::size_t n) {
  scalar_w32<Accum>(t, src, dst, n);
}

// ---------------------------------------------------------------------------
// w = 16, altmap: two 64-byte blocks per iteration — the blocks' lo-byte
// planes fill one zmm, the hi-byte planes another.
// ---------------------------------------------------------------------------

template <bool Accum, bool UseGfni>
void k512_w16_alt(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                  std::size_t n) {
  std::size_t i = 0;
  if constexpr (UseGfni) {
    const __m512i m00 = _mm512_set1_epi64(static_cast<long long>(t.affine_wide[0][0]));
    const __m512i m01 = _mm512_set1_epi64(static_cast<long long>(t.affine_wide[0][1]));
    const __m512i m10 = _mm512_set1_epi64(static_cast<long long>(t.affine_wide[1][0]));
    const __m512i m11 = _mm512_set1_epi64(static_cast<long long>(t.affine_wide[1][1]));
    for (; i + 128 <= n; i += 128) {
      const __m512i lo = load_planes32(src + i, src + i + 64);
      const __m512i hi = load_planes32(src + i + 32, src + i + 96);
      store_planes32<Accum>(dst + i, dst + i + 64,
                            _mm512_xor_si512(_mm512_gf2p8affine_epi64_epi8(lo, m00, 0),
                                             _mm512_gf2p8affine_epi64_epi8(hi, m01, 0)));
      store_planes32<Accum>(dst + i + 32, dst + i + 96,
                            _mm512_xor_si512(_mm512_gf2p8affine_epi64_epi8(lo, m10, 0),
                                             _mm512_gf2p8affine_epi64_epi8(hi, m11, 0)));
    }
  } else {
    __m512i tlo[4], thi[4];
    for (int k = 0; k < 4; ++k) {
      tlo[k] = bcast128_512(t.nib[k][0]);
      thi[k] = bcast128_512(t.nib[k][1]);
    }
    const __m512i mask = _mm512_set1_epi8(0x0f);
    for (; i + 128 <= n; i += 128) {
      const __m512i lo_bytes = load_planes32(src + i, src + i + 64);
      const __m512i hi_bytes = load_planes32(src + i + 32, src + i + 96);
      const __m512i idx[4] = {
          _mm512_and_si512(lo_bytes, mask),
          _mm512_and_si512(_mm512_srli_epi64(lo_bytes, 4), mask),
          _mm512_and_si512(hi_bytes, mask),
          _mm512_and_si512(_mm512_srli_epi64(hi_bytes, 4), mask)};
      __m512i out_lo = _mm512_setzero_si512(), out_hi = _mm512_setzero_si512();
      for (int k = 0; k < 4; ++k) {
        out_lo = _mm512_xor_si512(out_lo, _mm512_shuffle_epi8(tlo[k], idx[k]));
        out_hi = _mm512_xor_si512(out_hi, _mm512_shuffle_epi8(thi[k], idx[k]));
      }
      store_planes32<Accum>(dst + i, dst + i + 64, out_lo);
      store_planes32<Accum>(dst + i + 32, dst + i + 96, out_hi);
    }
  }
  if (i + 64 <= n) {  // odd trailing block: the shared xmm block form
    altmap_w16_block128<Accum>(t, src + i, dst + i);
    i += 64;
  }
  scalar_w16<Accum>(t, src, dst, n, i);
}

// ---------------------------------------------------------------------------
// w = 32, altmap: four 64-byte blocks per iteration — plane c of all four
// blocks fills one zmm.
// ---------------------------------------------------------------------------

template <bool Accum, bool UseGfni>
void k512_w32_alt(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                  std::size_t n) {
  std::size_t i = 0;
  if constexpr (UseGfni) {
    __m512i m[4][4];
    for (int b = 0; b < 4; ++b)
      for (int c = 0; c < 4; ++c)
        m[b][c] = _mm512_set1_epi64(static_cast<long long>(t.affine_wide[b][c]));
    for (; i + 256 <= n; i += 256) {
      __m512i plane[4];
      for (int c = 0; c < 4; ++c)
        plane[c] = load_planes16(src + i + 16 * c, src + i + 64 + 16 * c,
                                 src + i + 128 + 16 * c, src + i + 192 + 16 * c);
      for (int b = 0; b < 4; ++b) {
        __m512i out = _mm512_gf2p8affine_epi64_epi8(plane[0], m[b][0], 0);
        for (int c = 1; c < 4; ++c)
          out = _mm512_xor_si512(out, _mm512_gf2p8affine_epi64_epi8(plane[c], m[b][c], 0));
        store_planes16<Accum>(dst + i + 16 * b, dst + i + 64 + 16 * b,
                              dst + i + 128 + 16 * b, dst + i + 192 + 16 * b, out);
      }
    }
  } else {
    const __m512i mask = _mm512_set1_epi8(0x0f);
    for (; i + 256 <= n; i += 256) {
      __m512i idx[8];
      for (int c = 0; c < 4; ++c) {
        const __m512i plane = load_planes16(src + i + 16 * c, src + i + 64 + 16 * c,
                                            src + i + 128 + 16 * c, src + i + 192 + 16 * c);
        idx[2 * c] = _mm512_and_si512(plane, mask);
        idx[2 * c + 1] = _mm512_and_si512(_mm512_srli_epi64(plane, 4), mask);
      }
      for (int b = 0; b < 4; ++b) {
        __m512i out = _mm512_setzero_si512();
        for (int k = 0; k < 8; ++k)
          out = _mm512_xor_si512(out, _mm512_shuffle_epi8(bcast128_512(t.nib[k][b]), idx[k]));
        store_planes16<Accum>(dst + i + 16 * b, dst + i + 64 + 16 * b,
                              dst + i + 128 + 16 * b, dst + i + 192 + 16 * b, out);
      }
    }
  }
  for (; i + 64 <= n; i += 64)  // up to three trailing blocks: xmm width
    altmap_w32_block128<Accum>(t, src + i, dst + i);
  scalar_w32<Accum>(t, src, dst, n, i);
}

template <bool UseGfni>
KernelFns make_avx512_fns() {
  constexpr int kStd = static_cast<int>(RegionLayout::kStandard);
  constexpr int kAlt = static_cast<int>(RegionLayout::kAltmap);
  // Start from the impl table (built here as the AVX2+GFNI set) for the
  // conversion kernels, then override every multiply entry with the zmm
  // forms — including the w = 4/8 altmap aliases, which must not keep the
  // base table's GFNI bodies in the vpshufb variant.
  KernelFns fns = impl_kernel_fns();
  fns.mult_xor[kStd][0] = k512_w4<true, UseGfni>;
  fns.mult_xor[kStd][1] = k512_w8<true, UseGfni>;
  fns.mult_xor[kStd][2] = k512_w16<true>;
  fns.mult_xor[kStd][3] = k512_w32<true>;
  fns.mult[kStd][0] = k512_w4<false, UseGfni>;
  fns.mult[kStd][1] = k512_w8<false, UseGfni>;
  fns.mult[kStd][2] = k512_w16<false>;
  fns.mult[kStd][3] = k512_w32<false>;
  fns.mult_xor[kAlt][0] = k512_w4<true, UseGfni>;
  fns.mult_xor[kAlt][1] = k512_w8<true, UseGfni>;
  fns.mult_xor[kAlt][2] = k512_w16_alt<true, UseGfni>;
  fns.mult_xor[kAlt][3] = k512_w32_alt<true, UseGfni>;
  fns.mult[kAlt][0] = k512_w4<false, UseGfni>;
  fns.mult[kAlt][1] = k512_w8<false, UseGfni>;
  fns.mult[kAlt][2] = k512_w16_alt<false, UseGfni>;
  fns.mult[kAlt][3] = k512_w32_alt<false, UseGfni>;
  return fns;
}

}  // namespace

KernelFns avx512_kernel_fns_variant(bool use_gfni) {
  return use_gfni ? make_avx512_fns<true>() : make_avx512_fns<false>();
}

KernelFns avx512_kernel_fns() {
#if defined(__x86_64__) || defined(__i386__)
  return avx512_kernel_fns_variant(__builtin_cpu_supports("gfni"));
#else
  return avx512_kernel_fns_variant(false);
#endif
}

}  // namespace stair::gf::detail
