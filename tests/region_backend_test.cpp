// Region-kernel backend equivalence: every compiled backend (scalar, SSSE3,
// AVX2 — selected via force_backend) must produce bit-identical results to
// plain scalar GF arithmetic for every word size, including unaligned
// buffers, odd tail lengths, aliasing, and the a = 0 / a = 1 edge
// coefficients. This is the safety net under the runtime dispatcher.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "gf/gf.h"
#include "gf/kernel.h"
#include "gf/region.h"
#include "util/buffer.h"
#include "util/rng.h"

namespace stair::gf {
namespace {

std::vector<Backend> available_backends() {
  std::vector<Backend> v;
  for (Backend b : {Backend::kScalar, Backend::kSsse3, Backend::kAvx2, Backend::kGfni})
    if (backend_supported(b)) v.push_back(b);
  return v;
}

// Independent reference: symbol-at-a-time multiply via Field::mul only.
void reference_mult_xor(const Field& f, std::uint32_t a,
                        std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  if (f.w() == 4) {
    for (std::size_t i = 0; i < src.size(); ++i) {
      const std::uint32_t lo = f.mul(a, src[i] & 0xf);
      const std::uint32_t hi = f.mul(a, src[i] >> 4);
      dst[i] ^= static_cast<std::uint8_t>(lo | (hi << 4));
    }
    return;
  }
  const std::size_t bytes = static_cast<std::size_t>(f.w()) / 8;
  for (std::size_t i = 0; i < src.size(); i += bytes) {
    std::uint32_t x = 0, d = 0;
    std::memcpy(&x, src.data() + i, bytes);
    std::memcpy(&d, dst.data() + i, bytes);
    d ^= f.mul(a, x);
    std::memcpy(dst.data() + i, &d, bytes);
  }
}

// Pins a backend for the duration of one test, restoring auto-detect after.
struct BackendGuard {
  explicit BackendGuard(Backend b) { EXPECT_TRUE(force_backend(b)); }
  ~BackendGuard() { reset_backend(); }
};

class RegionBackendTest : public ::testing::TestWithParam<std::tuple<int, Backend>> {
 protected:
  int w() const { return std::get<0>(GetParam()); }
  Backend backend() const { return std::get<1>(GetParam()); }
  const Field& f() const { return field(w()); }
  std::size_t symbol_bytes() const { return w() >= 8 ? w() / 8 : 1; }

  std::vector<std::uint32_t> coefficients(Rng& rng) const {
    std::vector<std::uint32_t> v{0, 1, 2, 3, f().max_element()};
    for (int i = 0; i < 6; ++i) {
      const std::uint32_t a = static_cast<std::uint32_t>(rng.next_u64()) & f().max_element();
      v.push_back(a ? a : 2);
    }
    return v;
  }
};

TEST_P(RegionBackendTest, MultXorMatchesScalarArithmetic) {
  if (!backend_supported(backend())) GTEST_SKIP() << "backend not supported here";
  BackendGuard guard(backend());
  Rng rng(101 + w());

  // Sizes straddle the 16- and 32-byte SIMD block sizes and leave odd tails.
  for (std::size_t base : {std::size_t{4}, std::size_t{16}, std::size_t{32},
                           std::size_t{60}, std::size_t{100}, std::size_t{1000},
                           std::size_t{4096}}) {
    const std::size_t size = base - base % symbol_bytes();
    if (size == 0) continue;
    AlignedBuffer src(size), dst(size), ref(size);
    rng.fill(src.span());
    rng.fill(dst.span());
    std::memcpy(ref.data(), dst.data(), size);

    for (std::uint32_t a : coefficients(rng)) {
      mult_xor_region(f(), a, src.span(), dst.span());
      reference_mult_xor(f(), a, src.span(), ref.span());
      ASSERT_EQ(std::memcmp(dst.data(), ref.data(), size), 0)
          << backend_name(backend()) << " w=" << w() << " a=" << a << " size=" << size;
    }
  }
}

TEST_P(RegionBackendTest, UnalignedBuffersAndOddTails) {
  if (!backend_supported(backend())) GTEST_SKIP() << "backend not supported here";
  BackendGuard guard(backend());
  Rng rng(211 + w());
  const std::size_t bytes = symbol_bytes();

  AlignedBuffer src(1024), dst(1024), ref(1024);
  rng.fill(src.span());
  rng.fill(dst.span());
  std::memcpy(ref.data(), dst.data(), 1024);

  // Offsets misalign the pointers relative to any SIMD width while keeping
  // lengths symbol-granular; lengths avoid multiples of 16/32 to force tails.
  for (std::size_t offset : {bytes, 3 * bytes, 5 * bytes, 9 * bytes}) {
    for (std::size_t symbols : {std::size_t{1}, std::size_t{7}, std::size_t{33},
                                std::size_t{101}}) {
      const std::size_t len = symbols * bytes;
      if (offset + len > 1024) continue;
      const std::uint32_t a =
          1 + static_cast<std::uint32_t>(rng.next_below(f().max_element()));
      mult_xor_region(f(), a, src.region(offset, len), dst.region(offset, len));
      reference_mult_xor(f(), a, src.region(offset, len), ref.region(offset, len));
      ASSERT_EQ(std::memcmp(dst.data(), ref.data(), 1024), 0)
          << backend_name(backend()) << " w=" << w() << " offset=" << offset
          << " len=" << len;
    }
  }
}

TEST_P(RegionBackendTest, MultOverwritesAndAllowsExactAliasing) {
  if (!backend_supported(backend())) GTEST_SKIP() << "backend not supported here";
  BackendGuard guard(backend());
  Rng rng(307 + w());
  const std::size_t size = 480;  // multiple of 32 plus none: 480 = 15*32

  AlignedBuffer src(size), dst(size), inplace(size), expect(size);
  rng.fill(src.span());
  rng.fill(dst.span());  // stale contents must be ignored by mult
  std::memcpy(inplace.data(), src.data(), size);

  for (std::uint32_t a : coefficients(rng)) {
    std::memset(expect.data(), 0, size);
    reference_mult_xor(f(), a, src.span(), expect.span());

    mult_region(f(), a, src.span(), dst.span());
    ASSERT_EQ(std::memcmp(dst.data(), expect.data(), size), 0)
        << backend_name(backend()) << " w=" << w() << " a=" << a;

    std::memcpy(inplace.data(), src.data(), size);
    mult_region(f(), a, inplace.span(), inplace.span());
    ASSERT_EQ(std::memcmp(inplace.data(), expect.data(), size), 0)
        << "in-place, " << backend_name(backend()) << " w=" << w() << " a=" << a;
  }
}

TEST_P(RegionBackendTest, CompiledKernelCacheReturnsWorkingKernels) {
  if (!backend_supported(backend())) GTEST_SKIP() << "backend not supported here";
  BackendGuard guard(backend());
  Rng rng(401 + w());
  const std::size_t size = 256;

  for (std::uint32_t a : coefficients(rng)) {
    auto k1 = compiled_kernel(f(), a);
    auto k2 = compiled_kernel(f(), a);
    EXPECT_EQ(k1.get(), k2.get()) << "cache must return the same kernel instance";

    AlignedBuffer src(size), dst(size), ref(size);
    rng.fill(src.span());
    rng.fill(dst.span());
    std::memcpy(ref.data(), dst.data(), size);
    k1->mult_xor(src.span(), dst.span());
    reference_mult_xor(f(), a, src.span(), ref.span());
    ASSERT_EQ(std::memcmp(dst.data(), ref.data(), size), 0)
        << backend_name(backend()) << " w=" << w() << " a=" << a;
  }
}

TEST(RegionBackendDispatchTest, ScalarAlwaysSupportedAndActiveIsSupported) {
  EXPECT_TRUE(backend_supported(Backend::kScalar));
  EXPECT_TRUE(backend_supported(active_backend()));
  EXPECT_TRUE(backend_compiled(active_backend()));
}

TEST(RegionBackendDispatchTest, ForceBackendRoundTrips) {
  const Backend original = active_backend();
  for (Backend b : available_backends()) {
    ASSERT_TRUE(force_backend(b));
    EXPECT_EQ(active_backend(), b);
  }
  reset_backend();
  EXPECT_EQ(active_backend(), original);
}

std::string case_name(const ::testing::TestParamInfo<std::tuple<int, Backend>>& info) {
  return "w" + std::to_string(std::get<0>(info.param)) + "_" +
         backend_name(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllWidthsAllBackends, RegionBackendTest,
    ::testing::Combine(::testing::Values(4, 8, 16, 32),
                       ::testing::Values(Backend::kScalar, Backend::kSsse3, Backend::kAvx2,
                                         Backend::kGfni)),
    case_name);

}  // namespace
}  // namespace stair::gf
