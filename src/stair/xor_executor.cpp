#include "stair/xor_executor.h"

#include <algorithm>
#include <cassert>

namespace stair {

XorExecutor::XorExecutor(const Schedule& schedule, const gf::Field& f) : field_(&f) {
  ops_.reserve(schedule.ops().size());
  for (const auto& op : schedule.ops()) {
    Op lowered;
    lowered.output = op.output;
    for (const auto& term : op.terms) {
      if (term.coeff == 0) continue;
      Term t{gf::multiplication_bitmatrix(f, term.coeff), term.input};
      xor_ops_ += gf::bitmatrix_xor_count(t.bitmatrix);
      lowered.terms.push_back(std::move(t));
    }
    ops_.push_back(std::move(lowered));
  }
}

void XorExecutor::execute(std::span<const std::span<std::uint8_t>> symbols) const {
  for (const auto& op : ops_) {
    assert(op.output < symbols.size());
    auto dst = symbols[op.output];
    std::fill(dst.begin(), dst.end(), std::uint8_t{0});
    for (const auto& term : op.terms) {
      assert(term.input < symbols.size());
      gf::bitmatrix_mult_xor_region(term.bitmatrix, field_->w(), symbols[term.input], dst);
    }
  }
}

}  // namespace stair
