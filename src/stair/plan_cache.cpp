#include "stair/plan_cache.h"

#include <stdexcept>

namespace stair {

DecodePlanCache::DecodePlanCache(const StairCode& code, std::size_t capacity)
    : code_(&code), capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("DecodePlanCache: capacity must be >= 1");
}

std::uint64_t DecodePlanCache::hash_mask(const std::vector<bool>& mask) {
  // FNV-1a over the bits, 64 per step.
  std::uint64_t h = 1469598103934665603ULL;
  std::uint64_t word = 0;
  int bits = 0;
  auto mix = [&h](std::uint64_t w) {
    h ^= w;
    h *= 1099511628211ULL;
  };
  for (bool b : mask) {
    word = (word << 1) | (b ? 1 : 0);
    if (++bits == 64) {
      mix(word);
      word = 0;
      bits = 0;
    }
  }
  mix(word ^ (static_cast<std::uint64_t>(mask.size()) << 32));
  return h;
}

const Schedule* DecodePlanCache::plan(const std::vector<bool>& erased) {
  const std::uint64_t h = hash_mask(erased);
  auto [begin, end] = index_.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    if (it->second->mask != erased) continue;  // hash collision
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    return lru_.front().schedule ? &*lru_.front().schedule : nullptr;
  }

  ++misses_;
  lru_.push_front({erased, code_->build_decode_schedule(erased)});
  index_.emplace(h, lru_.begin());

  if (lru_.size() > capacity_) {
    const auto victim = std::prev(lru_.end());
    const std::uint64_t vh = hash_mask(victim->mask);
    auto [vb, ve] = index_.equal_range(vh);
    for (auto it = vb; it != ve; ++it)
      if (it->second == victim) {
        index_.erase(it);
        break;
      }
    lru_.pop_back();
  }
  return lru_.front().schedule ? &*lru_.front().schedule : nullptr;
}

}  // namespace stair
