// Async stripe-chunk IO engine — the disk side of the serving pipeline.
//
// The Codec session keeps N stripes of *compute* in flight; this engine keeps
// their chunk reads and writes in flight alongside, so IO for stripe k+d
// overlaps region work for stripe k instead of serializing in front of it.
// The model is a tiny completion-callback engine, deliberately smaller than a
// general event loop:
//
//   * read/write submit one positioned transfer (pread/pwrite semantics) and
//     return immediately; the callback fires on an engine thread when the
//     transfer has fully completed (or failed),
//   * transfers are whole-or-nothing: the engine internally continues short
//     transfers, so the callback sees bytes < requested only at end-of-file
//     (reads) or with a nonzero errno,
//   * flush() blocks the caller until every submitted transfer has retired.
//
// Two backends, selected at runtime (STAIR_IO_BACKEND = threads | uring |
// auto, or Engine::create's argument): a portable pread/pwrite thread pool,
// and a Linux io_uring ring driven through raw syscalls (no liburing
// dependency). kAuto prefers io_uring and silently falls back when the
// kernel or a seccomp sandbox refuses io_uring_setup — backend() reports
// what was actually built, and every backend produces identical results.
// An unknown STAIR_IO_BACKEND value is a loud failure, not a silent auto.
//
// Raw-device mode (the page-cache bypass tier):
//
//   * open_* take an OpenMode; OpenMode::kDirect attempts O_DIRECT and falls
//     back to a buffered open when the filesystem refuses (historically
//     tmpfs EINVAL) — counted in stats().direct_fallbacks, never an error.
//     Callers own alignment: direct transfers need block-aligned buffers,
//     offsets, and lengths (util/workspace_pool's IoBufferPool).
//   * register_buffers() pins a set of aligned staging buffers with the
//     backend (io_uring IORING_REGISTER_BUFFERS); read_fixed/write_fixed
//     carry the buffer's registration index and the uring backend issues
//     READ_FIXED/WRITE_FIXED — zero per-IO get_user_pages. An index of -1
//     (an overflow lease) or an unregistered backend degrades to the plain
//     path, counted in stats().fixed_fallbacks.
//   * register_files() registers long-lived chunk fds (IORING_REGISTER_FILES,
//     IOSQE_FIXED_FILE) so each submission skips the per-IO fd refcount.
//   * Options::sqpoll (STAIR_IO_SQPOLL=1) opts the uring backend into
//     IORING_SETUP_SQPOLL: the kernel polls the sq and submissions become
//     syscall-free while the poller is awake (stats().sqpoll_wakeups counts
//     the enters needed to re-wake it). Downgrades to a normal ring when the
//     kernel refuses.
//
// Every raw-device feature degrades gracefully and independently: buffered
// engines ignore registration, fixed ops fall back to plain ones, O_DIRECT
// falls back to buffered — the pipeline above never branches on support,
// it just reads stats() to see what actually happened.
//
// Callbacks run on engine threads and must not throw. They MAY submit new
// transfers (that is how the pipeline chains read -> encode -> write), and
// submission never blocks on completions, so callback-driven chains cannot
// deadlock; backpressure is the caller's job (the IoPipeline bounds stripes
// in flight, which bounds transfers at stripes x (n + 1)).
//
// FaultInjectingEngine wraps any engine with a deterministic fault plan —
// EIO reads, short reads, torn writes, failed writes — keyed on file name
// and byte range, which is how the test battery simulates lost sectors and
// dying devices underneath an unmodified pipeline.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace stair::io {

enum class Backend : std::uint8_t { kAuto = 0, kThreads = 1, kUring = 2 };

/// How a file should be opened: kDirect attempts O_DIRECT (raw-device IO,
/// caller guarantees block alignment of every transfer) and falls back to a
/// buffered open — counted, never fatal — when the filesystem refuses.
enum class OpenMode : std::uint8_t { kBuffered = 0, kDirect = 1 };

/// What a submission is doing for the system, as opposed to what it does to
/// bytes: foreground client traffic vs the background maintenance phases
/// (scrub verify reads, targeted repair writes, whole-device rebuild).
/// Thread-local — a submitter tags its own submissions via PhaseScope and
/// the tag is read synchronously at submit time, so chained callbacks on
/// engine threads keep the phase of whoever submitted them.
enum class IoPhase : std::uint8_t { kForeground = 0, kScrub = 1, kRepair = 2, kRebuild = 3 };

/// The phase submissions from this thread currently carry.
IoPhase current_phase();

/// RAII tag: submissions made on this thread while the scope is alive carry
/// `phase`. Nests; restores the previous phase on destruction.
class PhaseScope {
 public:
  explicit PhaseScope(IoPhase phase);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  IoPhase prev_;
};

/// "auto" / "threads" / "uring".
const char* backend_name(Backend b);

/// STAIR_IO_BACKEND environment override (threads | uring | auto); kAuto
/// when unset or empty. Any other value throws std::runtime_error naming
/// the bad value — a typo must not silently become kAuto.
Backend backend_from_env();

/// STAIR_IO_DIRECT: truthy (1/true/yes/on) requests O_DIRECT chunk IO from
/// the layers that can use it (IoPipeline, Scrubber). Falsy/unset: buffered.
/// Unrecognized values throw, like backend_from_env.
bool direct_from_env();

/// STAIR_IO_SQPOLL: truthy requests IORING_SETUP_SQPOLL for uring engines
/// built with default options. Same parse rules as direct_from_env.
bool sqpoll_from_env();

/// One completed transfer: `error` is an errno value (0 = success) and
/// `bytes` the total bytes transferred. A successful read reports
/// bytes < requested only when the file ended first.
struct Result {
  int error = 0;
  std::size_t bytes = 0;

  bool ok() const { return error == 0; }
};

using Callback = std::function<void(const Result&)>;

// X-macro of every Engine virtual. stripe_io_decorator_test.cpp expands it
// into static_asserts proving FaultInjectingEngine overrides each one — when
// you add a virtual to Engine, add it HERE and the decorator, or that test
// fails to compile (PR 7 shipped a decorator that missed open_update; this
// is the guard that makes that class of bug unshippable).
#define STAIR_IO_ENGINE_VIRTUALS(X) \
  X(backend)                        \
  X(read)                           \
  X(write)                          \
  X(read_fixed)                     \
  X(write_fixed)                    \
  X(flush)                          \
  X(open_read)                      \
  X(open_write)                     \
  X(open_update)                    \
  X(close)                          \
  X(file_size)                      \
  X(truncate)                       \
  X(register_buffers)               \
  X(unregister_buffers)             \
  X(register_files)                 \
  X(unregister_files)               \
  X(stats)

class Engine {
 public:
  struct Options {
    /// io_uring submission-queue entries (rounded up to a power of two) and
    /// the cap on transfers in flight before submit briefly yields to the
    /// completion reaper. Thread backend: soft queue sizing only.
    std::size_t queue_depth = 64;
    /// Worker threads performing pread/pwrite (thread backend only).
    std::size_t threads = 2;
    /// Honor OpenMode::kDirect (false: every open is buffered regardless of
    /// the requested mode — the big switch for A/B benches).
    bool direct = true;
    /// Allow register_buffers to actually pin with the backend (false: it
    /// reports ENOTSUP and every fixed op takes the plain path — the other
    /// half of the A/B matrix).
    bool fixed_buffers = true;
    /// uring: request IORING_SETUP_SQPOLL (kernel-side submission polling).
    /// Downgrades to a normal ring when the kernel refuses.
    bool sqpoll = false;
  };

  /// What actually happened, per engine: the observability the raw-device
  /// path needs because every feature degrades silently by design.
  struct Stats {
    std::uint64_t reads = 0, writes = 0;        // transfers submitted
    std::uint64_t fixed_reads = 0, fixed_writes = 0;  // went through *_FIXED
    /// Fixed ops that degraded to the plain path (index -1 overflow lease,
    /// no registration, or a non-uring backend). Hit rate = fixed_* / (fixed_*
    /// + fixed_fallbacks).
    std::uint64_t fixed_fallbacks = 0;
    std::uint64_t direct_opens = 0;      // O_DIRECT succeeded
    std::uint64_t direct_fallbacks = 0;  // O_DIRECT refused -> buffered retry
    std::uint64_t sq_depth_high_water = 0;  // max transfers in flight
    std::uint64_t cq_backlog_high_water = 0;  // max completions found queued
    std::uint64_t enters = 0;            // submission-side io_uring_enter calls
    std::uint64_t sqpoll_wakeups = 0;    // enters that re-woke the sq poller
    std::size_t registered_buffers = 0;
    std::size_t registered_files = 0;
    bool sqpoll_active = false;
  };

  Engine() = default;
  explicit Engine(Options options) : options_(options) {}
  virtual ~Engine() = default;

  /// The backend actually running (kAuto never; create() resolves it).
  virtual Backend backend() const = 0;

  /// Submits one positioned read of buf.size() bytes at `offset`; cb fires
  /// on an engine thread once the transfer retires. Never blocks on other
  /// transfers' completions.
  virtual void read(int fd, std::uint64_t offset, std::span<std::uint8_t> buf,
                    Callback cb) = 0;

  /// Submits one positioned write; same contract as read().
  virtual void write(int fd, std::uint64_t offset, std::span<const std::uint8_t> buf,
                     Callback cb) = 0;

  /// read() through a registered buffer: `buf` must lie inside the region
  /// registered at `buf_index`. Index -1 (or an engine without registration)
  /// degrades to plain read(), counted in stats().fixed_fallbacks.
  virtual void read_fixed(int fd, std::uint64_t offset, std::span<std::uint8_t> buf,
                          int buf_index, Callback cb);

  /// write() through a registered buffer; same contract as read_fixed().
  virtual void write_fixed(int fd, std::uint64_t offset,
                           std::span<const std::uint8_t> buf, int buf_index,
                           Callback cb);

  /// Blocks until every transfer submitted so far has retired (callbacks
  /// included). Not for use from callbacks.
  virtual void flush() = 0;

  // File handles flow through the engine so a wrapping engine (fault
  // injection) can key faults on the path behind an fd. Base implementations
  // are plain open/close with the O_DIRECT attempt+fallback described above.

  /// Opens for reading; -1 with errno set on failure (missing device file).
  virtual int open_read(const std::string& path, OpenMode mode = OpenMode::kBuffered);
  /// Opens for writing, created/truncated; -1 with errno on failure.
  virtual int open_write(const std::string& path, OpenMode mode = OpenMode::kBuffered);
  /// Opens read-write, created if missing but NOT truncated — in-place
  /// sector repair must patch the damaged ranges of a chunk file without
  /// destroying the healthy ones.
  virtual int open_update(const std::string& path, OpenMode mode = OpenMode::kBuffered);
  virtual void close(int fd);

  /// Size of a file opened through this engine, in bytes (fstat; 0 on
  /// failure). Virtual so engines with synthetic fds (in-memory benchmark
  /// baseline) can answer for their own handles.
  virtual std::uint64_t file_size(int fd) const;

  /// Sets the file's length (ftruncate). Returns 0 or an errno value.
  virtual int truncate(int fd, std::uint64_t size);

  /// Registers `regions` as the engine's fixed-buffer set (uring:
  /// IORING_REGISTER_BUFFERS — the pages are pinned once, and *_fixed
  /// transfers inside them skip per-IO pinning). Replaces any previous set;
  /// call with no transfers in flight. Returns 0 on success or an errno-like
  /// value (ENOTSUP: backend has no registration — fixed ops still work via
  /// fallback, so callers may ignore the return and read stats() instead).
  virtual int register_buffers(std::span<const std::span<std::uint8_t>> regions);
  virtual void unregister_buffers();

  /// Registers long-lived fds (uring: IORING_REGISTER_FILES). Transfers on a
  /// registered fd are submitted by fixed-file index (IOSQE_FIXED_FILE).
  /// Replaces any previous set; unregister before closing the fds. Same
  /// return contract as register_buffers.
  virtual int register_files(std::span<const int> fds);
  virtual void unregister_files();

  virtual Stats stats() const;

  /// True when io_uring_setup succeeds on this kernel/sandbox (probed once).
  static bool uring_supported();

  /// Builds the requested backend; kAuto (and kUring when unsupported)
  /// resolve to io_uring if available, else threads. The single-argument
  /// form also takes sqpoll from STAIR_IO_SQPOLL.
  static std::unique_ptr<Engine> create(Backend requested, Options options);
  static std::unique_ptr<Engine> create(Backend requested = backend_from_env());

 protected:
  /// Base-path counters shared by every backend (atomics: submissions race).
  struct Counters {
    std::atomic<std::uint64_t> reads{0}, writes{0};
    std::atomic<std::uint64_t> fixed_reads{0}, fixed_writes{0}, fixed_fallbacks{0};
    std::atomic<std::uint64_t> direct_opens{0}, direct_fallbacks{0};
  };

  Options options_{};
  Counters counters_;
};

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// One injected fault, matched against transfers on (file, byte range). A
/// transfer matches when its fd was opened through this engine for a path
/// whose final component equals `file` and its byte range intersects
/// [offset, offset + length). Matching is deterministic: rules are checked
/// in registration order, first match wins.
struct Fault {
  enum class Kind : std::uint8_t {
    kReadError,   // read fails with `error`, no bytes transferred
    kShortRead,   // read succeeds but reports only `keep_bytes` bytes
    kWriteError,  // write fails with `error`, nothing written
    kTornWrite,   // only the first `keep_bytes` hit the file, but the write
                  // REPORTS full success — silent corruption for checksums
                  // to catch on the next read
  };

  Kind kind = Kind::kReadError;
  std::string file;                // final path component, e.g. "dev_03.bin"
  std::uint64_t offset = 0;        // start of the faulty byte range
  std::uint64_t length = ~0ULL;    // range length (default: whole file)
  int error = 5;                   // EIO; reported by the *Error kinds
  std::size_t keep_bytes = 0;      // kShortRead / kTornWrite prefix
  bool once = false;               // consume the rule after its first hit
  /// When set, the rule only matches transfers submitted under this IoPhase
  /// (see PhaseScope) — a scrub-phase fault plan can fail every scrub read
  /// of a range while foreground reads of the same bytes stay healthy.
  std::optional<IoPhase> phase;
};

/// Deterministic fault-injecting decorator: delegates to an inner engine,
/// applying the registered fault plan. Thread-safe; rules may be added
/// between operations but not concurrently with them. Overrides EVERY
/// Engine virtual (see STAIR_IO_ENGINE_VIRTUALS) so wrapped pipelines see
/// the full raw-device feature set of the inner engine.
class FaultInjectingEngine : public Engine {
 public:
  explicit FaultInjectingEngine(std::unique_ptr<Engine> inner);
  ~FaultInjectingEngine() override;

  void add_fault(Fault fault);
  void clear_faults();
  /// Faults applied so far (tests assert the plan actually fired).
  std::uint64_t hits() const;

  /// When true (default false), opens requested with OpenMode::kDirect fail
  /// the direct attempt before reaching the inner engine, exercising the
  /// buffered-fallback path deterministically — the "this filesystem
  /// rejects O_DIRECT" simulation for hosts whose tmpfs accepts it.
  void set_reject_direct(bool reject);

  Backend backend() const override { return inner_->backend(); }
  void read(int fd, std::uint64_t offset, std::span<std::uint8_t> buf,
            Callback cb) override;
  void write(int fd, std::uint64_t offset, std::span<const std::uint8_t> buf,
             Callback cb) override;
  void read_fixed(int fd, std::uint64_t offset, std::span<std::uint8_t> buf,
                  int buf_index, Callback cb) override;
  void write_fixed(int fd, std::uint64_t offset, std::span<const std::uint8_t> buf,
                   int buf_index, Callback cb) override;
  void flush() override { inner_->flush(); }

  int open_read(const std::string& path, OpenMode mode = OpenMode::kBuffered) override;
  int open_write(const std::string& path, OpenMode mode = OpenMode::kBuffered) override;
  int open_update(const std::string& path, OpenMode mode = OpenMode::kBuffered) override;
  void close(int fd) override;
  std::uint64_t file_size(int fd) const override { return inner_->file_size(fd); }
  int truncate(int fd, std::uint64_t size) override { return inner_->truncate(fd, size); }

  int register_buffers(std::span<const std::span<std::uint8_t>> regions) override {
    return inner_->register_buffers(regions);
  }
  void unregister_buffers() override { inner_->unregister_buffers(); }
  int register_files(std::span<const int> fds) override {
    return inner_->register_files(fds);
  }
  void unregister_files() override { inner_->unregister_files(); }
  Stats stats() const override;

 private:
  /// First matching rule for the op, applying `once` consumption; nullopt
  /// when the transfer should pass through untouched.
  std::optional<Fault> match(bool is_write, int fd, std::uint64_t offset,
                             std::uint64_t length);
  int record_open(int fd, const std::string& path);
  OpenMode effective_mode(OpenMode requested);

  std::unique_ptr<Engine> inner_;
  mutable std::mutex mu_;
  std::vector<Fault> faults_;            // guarded by mu_
  std::vector<std::pair<int, std::string>> files_;  // fd -> final component
  std::uint64_t hits_ = 0;               // guarded by mu_
  std::atomic<bool> reject_direct_{false};
};

}  // namespace stair::io
