// Bit-matrix (pure-XOR) coding backend.
//
// §8 notes that Cauchy Reed-Solomon codes "can be further transformed into
// array codes, whose encoding computations purely build on efficient XOR
// operations" [Plank & Xu, NCA'06]. This module implements that transform:
// multiplication by a constant a in GF(2^w) is a linear map over GF(2)^w, so
// it becomes a w x w binary matrix, and a region operation becomes XORs of
// bit-plane "packets".
//
// Packet layout (the jerasure convention): a region of S bytes (S divisible
// by w) is viewed as w packets of S/w bytes; bit i of field element k lives
// at bit position k of packet i. to_bitplane()/from_bitplane() convert
// between this layout and the ordinary little-endian word layout.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gf/gf.h"

namespace stair::gf {

/// The w x w GF(2) matrix of multiplication by `a`: row i is a bitmask whose
/// bit j is set iff bit i of (a * alpha_j) is set, alpha_j = 2^j. Applying it
/// to the bit-vector of x yields the bit-vector of a*x.
std::vector<std::uint32_t> multiplication_bitmatrix(const Field& f, std::uint32_t a);

/// Number of XOR packet operations the matrix costs (its popcount) — the
/// XOR-count metric of CRS array codes.
std::size_t bitmatrix_xor_count(std::span<const std::uint32_t> rows);

/// dst (bit-plane layout) ^= M * src (bit-plane layout). Both regions have
/// identical sizes divisible by w; each is w packets of size/w bytes.
void bitmatrix_mult_xor_region(std::span<const std::uint32_t> rows, int w,
                               std::span<const std::uint8_t> src,
                               std::span<std::uint8_t> dst);

/// dst (bit-plane layout) = M * src (bit-plane layout): the first packet
/// feeding each output packet is copied instead of XORed, so dst's prior
/// contents are never read (and need no zero-fill). src and dst must not
/// overlap.
void bitmatrix_mult_region(std::span<const std::uint32_t> rows, int w,
                           std::span<const std::uint8_t> src,
                           std::span<std::uint8_t> dst);

/// Converts an ordinary-layout region (consecutive little-endian w-bit
/// symbols) into the bit-plane packet layout. size must be divisible by w.
void to_bitplane(const Field& f, std::span<const std::uint8_t> in,
                 std::span<std::uint8_t> out);

/// Inverse of to_bitplane().
void from_bitplane(const Field& f, std::span<const std::uint8_t> in,
                   std::span<std::uint8_t> out);

}  // namespace stair::gf
