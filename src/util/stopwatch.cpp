#include "util/stopwatch.h"

// Header-only in practice; this translation unit exists so the target has a
// concrete object file and the header stays warning-checked by the build.
