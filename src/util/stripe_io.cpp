#include "util/stripe_io.h"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <string_view>
#include <thread>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define STAIR_HAVE_URING_SYSCALLS 1
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#endif

namespace stair::io {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kAuto: return "auto";
    case Backend::kThreads: return "threads";
    case Backend::kUring: return "uring";
  }
  return "?";
}

Backend backend_from_env() {
  const char* v = std::getenv("STAIR_IO_BACKEND");
  if (!v) return Backend::kAuto;
  const std::string_view s(v);
  if (s == "threads") return Backend::kThreads;
  if (s == "uring") return Backend::kUring;
  return Backend::kAuto;
}

namespace {

IoPhase& phase_slot() {
  thread_local IoPhase phase = IoPhase::kForeground;
  return phase;
}

}  // namespace

IoPhase current_phase() { return phase_slot(); }

PhaseScope::PhaseScope(IoPhase phase) : prev_(phase_slot()) { phase_slot() = phase; }

PhaseScope::~PhaseScope() { phase_slot() = prev_; }

int Engine::open_read(const std::string& path) {
  return ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
}

int Engine::open_write(const std::string& path) {
  return ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
}

int Engine::open_update(const std::string& path) {
  return ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
}

void Engine::close(int fd) {
  if (fd >= 0) ::close(fd);
}

std::uint64_t Engine::file_size(int fd) const {
  struct stat st;
  if (::fstat(fd, &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

int Engine::truncate(int fd, std::uint64_t size) {
  return ::ftruncate(fd, static_cast<off_t>(size)) == 0 ? 0 : errno;
}

namespace {

/// Full-transfer pread loop: retries short reads, stops at EOF or error.
Result read_full(int fd, std::uint64_t offset, std::span<std::uint8_t> buf) {
  std::size_t done = 0;
  while (done < buf.size()) {
    const ssize_t n = ::pread(fd, buf.data() + done, buf.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return {errno, done};
    }
    if (n == 0) break;  // EOF
    done += static_cast<std::size_t>(n);
  }
  return {0, done};
}

/// Full-transfer pwrite loop.
Result write_full(int fd, std::uint64_t offset, std::span<const std::uint8_t> buf) {
  std::size_t done = 0;
  while (done < buf.size()) {
    const ssize_t n = ::pwrite(fd, buf.data() + done, buf.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return {errno, done};
    }
    done += static_cast<std::size_t>(n);
  }
  return {0, done};
}

// ---------------------------------------------------------------------------
// Thread backend: a small pool of pread/pwrite workers draining a queue.
// ---------------------------------------------------------------------------

class ThreadEngine : public Engine {
 public:
  explicit ThreadEngine(Options options) {
    const std::size_t n = options.threads ? options.threads : 1;
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~ThreadEngine() override {
    flush();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  Backend backend() const override { return Backend::kThreads; }

  void read(int fd, std::uint64_t offset, std::span<std::uint8_t> buf,
            Callback cb) override {
    enqueue({false, fd, offset, buf.data(), nullptr, buf.size(), std::move(cb)});
  }

  void write(int fd, std::uint64_t offset, std::span<const std::uint8_t> buf,
             Callback cb) override {
    enqueue({true, fd, offset, nullptr, buf.data(), buf.size(), std::move(cb)});
  }

  void flush() override {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  }

 private:
  struct Op {
    bool is_write;
    int fd;
    std::uint64_t offset;
    std::uint8_t* rbuf;
    const std::uint8_t* wbuf;
    std::size_t len;
    Callback cb;
  };

  void enqueue(Op op) {
    // Notify under the lock: an unlocked notify can touch the cv after a
    // racing completion let flush() return and the destructor tear it down.
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(op));
    cv_.notify_one();
  }

  void worker_loop() {
    for (;;) {
      Op op;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ && drained
        op = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
      }
      const Result r = op.is_write ? write_full(op.fd, op.offset, {op.wbuf, op.len})
                                   : read_full(op.fd, op.offset, {op.rbuf, op.len});
      op.cb(r);
      {
        // Notify under the lock (see enqueue): after --active_ reaches the
        // flush predicate, the engine may be destroyed.
        std::lock_guard<std::mutex> lock(mu_);
        --active_;
        idle_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_, idle_cv_;
  std::deque<Op> queue_;   // guarded by mu_
  std::size_t active_ = 0; // guarded by mu_
  bool stop_ = false;      // guarded by mu_
};

// ---------------------------------------------------------------------------
// io_uring backend, through raw syscalls (no liburing). One submission mutex,
// one completion-reaper thread dispatching callbacks; short transfers are
// continued from the reaper so callers always see whole-or-nothing results.
// ---------------------------------------------------------------------------

#ifdef STAIR_HAVE_URING_SYSCALLS

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete, unsigned flags) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, nullptr, 0));
}

int sys_io_uring_register(int fd, unsigned opcode, void* arg, unsigned nr_args) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

class UringEngine : public Engine {
 public:
  /// Throws std::runtime_error when the ring cannot be set up (caller falls
  /// back to the thread backend).
  explicit UringEngine(Options options) {
    unsigned entries = 8;
    while (entries < options.queue_depth && entries < 4096) entries *= 2;
    std::memset(&params_, 0, sizeof params_);
    ring_fd_ = sys_io_uring_setup(entries, &params_);
    if (ring_fd_ < 0) throw std::runtime_error("io_uring_setup failed");

    sq_ring_bytes_ = params_.sq_off.array + params_.sq_entries * sizeof(unsigned);
    cq_ring_bytes_ = params_.cq_off.cqes + params_.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap = params_.features & IORING_FEAT_SINGLE_MMAP;
    if (single_mmap) sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);

    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    cq_ring_ = single_mmap
                   ? sq_ring_
                   : ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    sqes_ = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, params_.sq_entries * sizeof(io_uring_sqe), PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sq_ring_ == MAP_FAILED || cq_ring_ == MAP_FAILED ||
        sqes_ == static_cast<void*>(MAP_FAILED)) {
      teardown();
      throw std::runtime_error("io_uring ring mmap failed");
    }

    auto* sq = static_cast<std::uint8_t*>(sq_ring_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + params_.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + params_.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + params_.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params_.sq_off.array);
    auto* cq = static_cast<std::uint8_t*>(cq_ring_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + params_.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + params_.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + params_.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params_.cq_off.cqes);

    // The cq holds 2x sq_entries; capping in-flight below it means a cqe slot
    // always exists, so completions can never be dropped on overflow.
    max_in_flight_ = params_.cq_entries - 1;
    reaper_ = std::thread([this] { reaper_loop(); });
  }

  ~UringEngine() override {
    flush();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      push_sqe_locked(IORING_OP_NOP, -1, 0, nullptr, 0, nullptr);  // wake the reaper
    }
    reaper_.join();
    teardown();
  }

  Backend backend() const override { return Backend::kUring; }

  void read(int fd, std::uint64_t offset, std::span<std::uint8_t> buf,
            Callback cb) override {
    submit(false, fd, offset, buf.data(), buf.size(), std::move(cb));
  }

  void write(int fd, std::uint64_t offset, std::span<const std::uint8_t> buf,
             Callback cb) override {
    submit(true, fd, offset, const_cast<std::uint8_t*>(buf.data()), buf.size(),
           std::move(cb));
  }

  void flush() override {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }

 private:
  // One logical transfer; lives on the heap until fully retired. `done`
  // tracks bytes from completed sqes so short transfers continue where they
  // stopped.
  struct Op {
    bool is_write;
    int fd;
    std::uint64_t offset;
    std::uint8_t* buf;
    std::size_t len;
    std::size_t done = 0;
    Callback cb;
  };

  void teardown() {
    if (sqes_ && sqes_ != static_cast<void*>(MAP_FAILED))
      ::munmap(sqes_, params_.sq_entries * sizeof(io_uring_sqe));
    if (cq_ring_ && cq_ring_ != MAP_FAILED && cq_ring_ != sq_ring_)
      ::munmap(cq_ring_, cq_ring_bytes_);
    if (sq_ring_ && sq_ring_ != MAP_FAILED) ::munmap(sq_ring_, sq_ring_bytes_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  // Fills one sqe and submits it to the kernel. Caller holds mu_; the enter()
  // consumes the sqe immediately, so the sq ring cannot fill up under the
  // lock and pushes from the reaper (continuations) can never block.
  // Returns 0 or the errno the submission ultimately failed with — a
  // dropped submission must not be silent (its op would never complete and
  // flush() would hang on in_flight_ forever).
  int push_sqe_locked(unsigned op, int fd, std::uint64_t offset, void* addr,
                      std::size_t len, Op* user) {
    const unsigned tail = *sq_tail_;
    const unsigned idx = tail & sq_mask_;
    io_uring_sqe& sqe = sqes_[idx];
    std::memset(&sqe, 0, sizeof sqe);
    sqe.opcode = static_cast<std::uint8_t>(op);
    sqe.fd = fd;
    sqe.off = offset;
    sqe.addr = reinterpret_cast<std::uint64_t>(addr);
    sqe.len = static_cast<unsigned>(len);
    sqe.user_data = reinterpret_cast<std::uint64_t>(user);
    sq_array_[idx] = idx;
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
    for (;;) {
      if (sys_io_uring_enter(ring_fd_, 1, 0, 0) >= 0) return 0;
      // EBUSY/EAGAIN: the kernel wants completions reaped (cq backlog) or
      // memory freed first — the reaper drains concurrently, so yield and
      // retry. Anything else is a hard failure the caller must surface.
      if (errno == EINTR) continue;
      if (errno == EBUSY || errno == EAGAIN) {
        std::this_thread::yield();
        continue;
      }
      return errno;
    }
  }

  // push_sqe_locked for a transfer op. Returns the submission errno (0 on
  // success); on failure the CALLER must finish(op, ...) after releasing
  // mu_ — finishing takes the lock and runs the callback.
  int push_op_locked(Op* op, std::uint64_t offset, std::uint8_t* buf, std::size_t len) {
    return push_sqe_locked(op->is_write ? IORING_OP_WRITE : IORING_OP_READ, op->fd,
                           offset, buf, len, op);
  }

  void submit(bool is_write, int fd, std::uint64_t offset, std::uint8_t* buf,
              std::size_t len, Callback cb) {
    auto* op = new Op{is_write, fd, offset, buf, len, 0, std::move(cb)};
    int err;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Keep a free cqe slot per transfer (see max_in_flight_) — but never
      // block the reaper thread itself: callbacks run there and may chain new
      // submissions, and a parked reaper retires nothing. Completion-driven
      // overshoot is absorbed by the kernel's no-drop overflow queue.
      if (std::this_thread::get_id() != reaper_.get_id())
        idle_cv_.wait(lock, [this] { return in_flight_ < max_in_flight_; });
      ++in_flight_;
      if (broken_) {
        err = EIO;  // the reaper found the ring dead; nothing will complete
      } else {
        live_.push_back(op);
        err = push_op_locked(op, offset, buf, len);
      }
    }
    if (err != 0) finish(op, {err, 0});
  }

  void reaper_loop() {
    for (;;) {
      unsigned head = *cq_head_;
      if (head == __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE)) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (stop_ && in_flight_ == 0) return;
        }
        const int rc = sys_io_uring_enter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
        if (rc < 0 && errno != EINTR && errno != EAGAIN && errno != EBUSY) {
          // The ring is broken (ENOMEM, EBADF, ...): no more cqes will ever
          // arrive, so fail every live op out — leaving them would hang the
          // caller's flush()/drain forever instead of surfacing an error.
          fail_all_live(errno);
          return;
        }
        continue;
      }
      const io_uring_cqe cqe = cqes_[head & cq_mask_];
      __atomic_store_n(cq_head_, head + 1, __ATOMIC_RELEASE);
      Op* op = reinterpret_cast<Op*>(cqe.user_data);
      if (!op) continue;  // stop NOP: not a transfer, nothing to retire
      // The op's fields were written by the submitter under mu_ and handed
      // over through the kernel ring, whose ordering the memory model (and
      // TSan) cannot see. Taking mu_ once per completion recreates the
      // submit-unlock -> here edge explicitly before the fields are read.
      { std::lock_guard<std::mutex> lock(mu_); }
      if (cqe.res < 0) {
        finish(op, {-cqe.res, op->done});
      } else {
        op->done += static_cast<std::size_t>(cqe.res);
        if (cqe.res == 0 || op->done >= op->len) {
          finish(op, {0, op->done});  // EOF or complete
        } else {
          // Short transfer: continue the remainder in-place (same in-flight
          // slot, so this never waits).
          int err;
          {
            std::lock_guard<std::mutex> lock(mu_);
            err = push_op_locked(op, op->offset + op->done, op->buf + op->done,
                                 op->len - op->done);
          }
          if (err != 0) finish(op, {err, op->done});
        }
      }
    }
  }

  void finish(Op* op, const Result& r) {
    op->cb(r);
    delete op;
    // Notify under the lock: once in_flight_ hits the flush predicate the
    // engine may be destroyed, so the cv must not be touched after unlock.
    std::lock_guard<std::mutex> lock(mu_);
    std::erase(live_, op);
    --in_flight_;
    idle_cv_.notify_all();
  }

  void fail_all_live(int err) {
    std::vector<Op*> doomed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      broken_ = true;  // later submits fail fast instead of being orphaned
      doomed.swap(live_);
    }
    for (Op* op : doomed) finish(op, {err, op->done});
  }

  io_uring_params params_{};
  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sq_ring_bytes_ = 0, cq_ring_bytes_ = 0;
  unsigned *sq_head_ = nullptr, *sq_tail_ = nullptr, *sq_array_ = nullptr;
  unsigned *cq_head_ = nullptr, *cq_tail_ = nullptr;
  unsigned sq_mask_ = 0, cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  std::mutex mu_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;  // guarded by mu_
  std::vector<Op*> live_;      // guarded by mu_; ops awaiting completion
  std::size_t max_in_flight_ = 0;
  bool stop_ = false;    // guarded by mu_
  bool broken_ = false;  // guarded by mu_; reaper hit a hard ring error
  std::thread reaper_;
};

#endif  // STAIR_HAVE_URING_SYSCALLS

}  // namespace

bool Engine::uring_supported() {
#if defined(STAIR_HAVE_URING_SYSCALLS) && defined(IORING_REGISTER_PROBE)
  static const bool supported = [] {
    io_uring_params p;
    std::memset(&p, 0, sizeof p);
    const int fd = sys_io_uring_setup(4, &p);
    if (fd < 0) return false;
    // setup succeeding is not enough: the engine needs IORING_OP_READ/WRITE
    // (5.6+), so probe the opcodes. Kernels too old for the probe (also
    // 5.6+) lack the opcodes too and correctly fall back to threads.
    bool ok = false;
    std::vector<std::uint8_t> mem(
        sizeof(io_uring_probe) + IORING_OP_LAST * sizeof(io_uring_probe_op), 0);
    auto* probe = reinterpret_cast<io_uring_probe*>(mem.data());
    if (sys_io_uring_register(fd, IORING_REGISTER_PROBE, probe, IORING_OP_LAST) == 0) {
      const auto op_supported = [&](unsigned op) {
        return op < probe->ops_len && (probe->ops[op].flags & IO_URING_OP_SUPPORTED);
      };
      ok = op_supported(IORING_OP_READ) && op_supported(IORING_OP_WRITE) &&
           op_supported(IORING_OP_NOP);
    }
    ::close(fd);
    return ok;
  }();
  return supported;
#else
  return false;
#endif
}

std::unique_ptr<Engine> Engine::create(Backend requested) { return create(requested, Options{}); }

std::unique_ptr<Engine> Engine::create(Backend requested, Options options) {
#ifdef STAIR_HAVE_URING_SYSCALLS
  if (requested != Backend::kThreads && uring_supported()) {
    try {
      return std::make_unique<UringEngine>(options);
    } catch (...) {
      // Probe raced a sandbox/rlimit change; the thread backend always works.
    }
  }
#endif
  (void)requested;
  return std::make_unique<ThreadEngine>(options);
}

// ---------------------------------------------------------------------------
// FaultInjectingEngine
// ---------------------------------------------------------------------------

namespace {

std::string final_component(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

FaultInjectingEngine::FaultInjectingEngine(std::unique_ptr<Engine> inner)
    : inner_(std::move(inner)) {}

FaultInjectingEngine::~FaultInjectingEngine() = default;

void FaultInjectingEngine::add_fault(Fault fault) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.push_back(std::move(fault));
}

void FaultInjectingEngine::clear_faults() {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
}

std::uint64_t FaultInjectingEngine::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int FaultInjectingEngine::open_read(const std::string& path) {
  const int fd = inner_->open_read(path);
  if (fd >= 0) {
    std::lock_guard<std::mutex> lock(mu_);
    files_.emplace_back(fd, final_component(path));
  }
  return fd;
}

int FaultInjectingEngine::open_write(const std::string& path) {
  const int fd = inner_->open_write(path);
  if (fd >= 0) {
    std::lock_guard<std::mutex> lock(mu_);
    files_.emplace_back(fd, final_component(path));
  }
  return fd;
}

int FaultInjectingEngine::open_update(const std::string& path) {
  const int fd = inner_->open_update(path);
  if (fd >= 0) {
    std::lock_guard<std::mutex> lock(mu_);
    files_.emplace_back(fd, final_component(path));
  }
  return fd;
}

void FaultInjectingEngine::close(int fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::erase_if(files_, [fd](const auto& e) { return e.first == fd; });
  }
  inner_->close(fd);
}

std::optional<Fault> FaultInjectingEngine::match(bool is_write, int fd,
                                                 std::uint64_t offset,
                                                 std::uint64_t length) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string* name = nullptr;
  for (const auto& [f, n] : files_)
    if (f == fd) {
      name = &n;
      break;
    }
  if (!name) return std::nullopt;
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    const Fault& rule = faults_[i];
    const bool write_kind =
        rule.kind == Fault::Kind::kWriteError || rule.kind == Fault::Kind::kTornWrite;
    if (write_kind != is_write || rule.file != *name) continue;
    if (rule.phase && *rule.phase != current_phase()) continue;
    const std::uint64_t rule_end =
        rule.length == ~0ULL ? ~0ULL : rule.offset + rule.length;
    if (offset + length <= rule.offset || offset >= rule_end) continue;
    Fault hit = rule;
    ++hits_;
    if (rule.once) faults_.erase(faults_.begin() + static_cast<std::ptrdiff_t>(i));
    return hit;
  }
  return std::nullopt;
}

void FaultInjectingEngine::read(int fd, std::uint64_t offset,
                                std::span<std::uint8_t> buf, Callback cb) {
  const auto fault = match(false, fd, offset, buf.size());
  if (!fault) {
    inner_->read(fd, offset, buf, std::move(cb));
    return;
  }
  switch (fault->kind) {
    case Fault::Kind::kReadError:
      cb(Result{fault->error, 0});
      return;
    case Fault::Kind::kShortRead: {
      // Deliver a genuine prefix, then under-report: the bytes the "device"
      // managed before giving up.
      const std::size_t keep = std::min(fault->keep_bytes, buf.size());
      inner_->read(fd, offset, buf, [cb = std::move(cb), keep](const Result& r) {
        cb(Result{0, std::min(keep, r.bytes)});
      });
      return;
    }
    default:  // write kinds never match reads
      inner_->read(fd, offset, buf, std::move(cb));
      return;
  }
}

void FaultInjectingEngine::write(int fd, std::uint64_t offset,
                                 std::span<const std::uint8_t> buf, Callback cb) {
  const auto fault = match(true, fd, offset, buf.size());
  if (!fault) {
    inner_->write(fd, offset, buf, std::move(cb));
    return;
  }
  switch (fault->kind) {
    case Fault::Kind::kWriteError:
      cb(Result{fault->error, 0});
      return;
    case Fault::Kind::kTornWrite: {
      // The prefix lands; the report claims everything did. The lie is what
      // per-chunk checksums exist to catch on the next read.
      const std::size_t keep = std::min(fault->keep_bytes, buf.size());
      const std::size_t full = buf.size();
      if (keep == 0) {
        cb(Result{0, full});
        return;
      }
      inner_->write(fd, offset, buf.first(keep),
                    [cb = std::move(cb), full](const Result&) { cb(Result{0, full}); });
      return;
    }
    default:
      inner_->write(fd, offset, buf, std::move(cb));
      return;
  }
}

}  // namespace stair::io
