// Autotuner decision logic under an injected (deterministic) probe table:
// layout crossover, slice-threshold scaling and clamping, fallback paths
// (disabled, unmeasured, forced layout), profile JSON round-trips, the tune
// file save/load cycle, and the measured cache-budget hook into
// gf::region_cache_budget. No probing runs here — every profile is faked via
// set_profile_for_testing, so the assertions are exact arithmetic.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "gf/kernel.h"
#include "gf/region.h"
#include "stair/autotune.h"

namespace stair {
namespace {

// Restores every global the tests poke: tuner profile/override, installed
// cache budget, layout pin.
struct TunerGuard {
  ~TunerGuard() {
    Autotune::instance().reset_for_testing();
    gf::set_region_cache_budget(0);
    gf::reset_layout();
  }
};

TuneCell cell(gf::Backend b, gf::RegionLayout l, int w, std::size_t bytes, double mbps) {
  return TuneCell{static_cast<int>(b), static_cast<int>(l), w, bytes, mbps};
}

// A fully deterministic profile for the currently active backend:
//   w=16: standard 1000 MB/s, altmap 8000 MB/s, convert 500 MB/s
//   w=8:  standard 50000 MB/s (exercises the slice-threshold upper clamp)
//   w=32: left unmeasured (exercises the fallback)
//   dispatch overhead 2000 ns
// Layout crossover at w=16: cost_std = ops/1000, cost_alt = ops/8000 + 2/500
// — equal at ops = (2/500) / (1/1000 - 1/8000) ≈ 4.57.
TuneProfile fake_profile() {
  const gf::Backend bk = gf::active_backend();
  TuneProfile p;
  p.measured = true;
  p.fingerprint = "fake";
  p.dispatch_overhead_ns = 2000.0;
  p.cells.push_back(cell(bk, gf::RegionLayout::kStandard, 16, 65536, 1000.0));
  p.cells.push_back(cell(bk, gf::RegionLayout::kAltmap, 16, 65536, 8000.0));
  p.cells.push_back(cell(bk, gf::RegionLayout::kStandard, 8, 65536, 50000.0));
  p.convert_cells.push_back(cell(bk, gf::RegionLayout::kAltmap, 16, 65536, 500.0));
  return p;
}

bool layout_env_pinned() { return std::getenv("STAIR_GF_LAYOUT") != nullptr; }

TEST(AutotuneDecisionTest, LayoutCrossoverFollowsMeasuredCosts) {
  if (layout_env_pinned()) GTEST_SKIP() << "STAIR_GF_LAYOUT pins the layout";
  TunerGuard guard;
  auto& tuner = Autotune::instance();
  tuner.set_enabled_for_testing(1);
  tuner.set_profile_for_testing(fake_profile());

  // Below the measured crossover (~4.57 ops/region) the conversion round
  // trip costs more than the altmap speedup recovers.
  EXPECT_EQ(tuner.choose_layout(16, 1.0, 65536), gf::RegionLayout::kStandard);
  EXPECT_EQ(tuner.choose_layout(16, 4.0, 65536), gf::RegionLayout::kStandard);
  // Above it, altmap wins.
  EXPECT_EQ(tuner.choose_layout(16, 5.0, 65536), gf::RegionLayout::kAltmap);
  EXPECT_EQ(tuner.choose_layout(16, 100.0, 65536), gf::RegionLayout::kAltmap);
}

TEST(AutotuneDecisionTest, TinyRegionsNeverConvert) {
  if (layout_env_pinned()) GTEST_SKIP() << "STAIR_GF_LAYOUT pins the layout";
  TunerGuard guard;
  auto& tuner = Autotune::instance();
  tuner.set_enabled_for_testing(1);
  tuner.set_profile_for_testing(fake_profile());

  // Shorter than one altmap block: conversion is pure overhead regardless
  // of the measured gap.
  EXPECT_EQ(tuner.choose_layout(16, 1000.0, gf::kAltmapBlockBytes - 1),
            gf::RegionLayout::kStandard);
  EXPECT_EQ(tuner.choose_layout(16, 1000.0, gf::kAltmapBlockBytes),
            gf::RegionLayout::kAltmap);
}

TEST(AutotuneDecisionTest, FallbacksDeferToFixedHeuristics) {
  if (layout_env_pinned()) GTEST_SKIP() << "STAIR_GF_LAYOUT pins the layout";
  TunerGuard guard;
  auto& tuner = Autotune::instance();
  tuner.set_enabled_for_testing(1);
  tuner.set_profile_for_testing(fake_profile());

  // Byte-linear widths never consult the table (layouts coincide).
  EXPECT_EQ(tuner.choose_layout(8, 100.0, 65536), gf::RegionLayout::kStandard);
  // w=32 cells are unmeasured in the fake profile -> preferred_layout.
  EXPECT_EQ(tuner.choose_layout(32, 100.0, 65536), gf::preferred_layout(32));

  // Disabled -> preferred_layout and the fixed 4096 threshold, even with a
  // profile installed.
  tuner.set_enabled_for_testing(0);
  EXPECT_EQ(tuner.choose_layout(16, 1.0, 65536), gf::preferred_layout(16));
  EXPECT_EQ(tuner.min_slice_bytes(16, gf::RegionLayout::kAltmap), 4096u);
  tuner.set_enabled_for_testing(1);

  // A forced layout always wins over the measured decision.
  gf::force_layout(gf::RegionLayout::kAltmap);
  EXPECT_EQ(tuner.choose_layout(16, 1.0, 65536), gf::RegionLayout::kAltmap);
  gf::force_layout(gf::RegionLayout::kStandard);
  EXPECT_EQ(tuner.choose_layout(16, 100.0, 65536), gf::RegionLayout::kStandard);
  gf::reset_layout();
}

TEST(AutotuneDecisionTest, SliceThresholdScalesWithMeasuredRates) {
  TunerGuard guard;
  auto& tuner = Autotune::instance();
  tuner.set_enabled_for_testing(1);
  tuner.set_profile_for_testing(fake_profile());

  // bytes = 8 * overhead_ns * (mbps / 1000): faster kernels need bigger
  // slices to amortize the same dispatch overhead.
  EXPECT_EQ(tuner.min_slice_bytes(16, gf::RegionLayout::kStandard),
            std::size_t{16000});  // 8 * 2000 * 1.0
  EXPECT_EQ(tuner.min_slice_bytes(16, gf::RegionLayout::kAltmap),
            std::size_t{128000});  // 8 * 2000 * 8.0
  // w=8 standard at 50 GB/s hits the 256 KiB upper clamp.
  EXPECT_EQ(tuner.min_slice_bytes(8, gf::RegionLayout::kStandard),
            std::size_t{256 * 1024});
  // Unmeasured (w=32) -> fixed fallback.
  EXPECT_EQ(tuner.min_slice_bytes(32, gf::RegionLayout::kStandard), 4096u);

  // A glacial kernel hits the lower clamp (and stays 64-byte granular).
  TuneProfile slow = fake_profile();
  slow.cells.push_back(
      cell(gf::active_backend(), gf::RegionLayout::kStandard, 32, 65536, 0.001));
  tuner.set_profile_for_testing(slow);
  EXPECT_EQ(tuner.min_slice_bytes(32, gf::RegionLayout::kStandard), 1024u);
}

TEST(AutotuneProfileTest, CellLookupPicksClosestSize) {
  const gf::Backend bk = gf::active_backend();
  TuneProfile p;
  p.measured = true;
  p.cells.push_back(cell(bk, gf::RegionLayout::kStandard, 16, 64 * 1024, 111.0));
  p.cells.push_back(cell(bk, gf::RegionLayout::kStandard, 16, 256 * 1024, 222.0));

  EXPECT_DOUBLE_EQ(p.mult_xor_mbps(bk, gf::RegionLayout::kStandard, 16, 70000), 111.0);
  EXPECT_DOUBLE_EQ(p.mult_xor_mbps(bk, gf::RegionLayout::kStandard, 16, 1 << 20), 222.0);
  // 0 = "the largest measured size".
  EXPECT_DOUBLE_EQ(p.mult_xor_mbps(bk, gf::RegionLayout::kStandard, 16, 0), 222.0);
  // Unmeasured coordinates return 0.
  EXPECT_DOUBLE_EQ(p.mult_xor_mbps(bk, gf::RegionLayout::kAltmap, 16, 0), 0.0);
  EXPECT_DOUBLE_EQ(p.convert_mbps(bk, 16), 0.0);
}

TEST(AutotuneProfileTest, JsonRoundTripPreservesEveryField) {
  TuneProfile p = fake_profile();
  p.memcpy_mbps = 12345.5;
  p.xor_mbps = 9876.25;
  p.cache_budget_bytes = 1536 * 1024;
  p.fingerprint = "Fake CPU \"quoted\" [scalar+avx2]";  // escaping must survive

  TuneProfile q;
  ASSERT_TRUE(TuneProfile::from_json(p.to_json(), &q));
  EXPECT_EQ(q.version, p.version);
  EXPECT_EQ(q.fingerprint, p.fingerprint);
  EXPECT_EQ(q.measured, p.measured);
  EXPECT_DOUBLE_EQ(q.memcpy_mbps, p.memcpy_mbps);
  EXPECT_DOUBLE_EQ(q.xor_mbps, p.xor_mbps);
  EXPECT_DOUBLE_EQ(q.dispatch_overhead_ns, p.dispatch_overhead_ns);
  EXPECT_EQ(q.cache_budget_bytes, p.cache_budget_bytes);
  ASSERT_EQ(q.cells.size(), p.cells.size());
  for (std::size_t i = 0; i < p.cells.size(); ++i) {
    EXPECT_EQ(q.cells[i].backend, p.cells[i].backend);
    EXPECT_EQ(q.cells[i].layout, p.cells[i].layout);
    EXPECT_EQ(q.cells[i].w, p.cells[i].w);
    EXPECT_EQ(q.cells[i].region_bytes, p.cells[i].region_bytes);
    EXPECT_DOUBLE_EQ(q.cells[i].mbps, p.cells[i].mbps);
  }
  ASSERT_EQ(q.convert_cells.size(), p.convert_cells.size());
  EXPECT_DOUBLE_EQ(q.convert_cells[0].mbps, p.convert_cells[0].mbps);
}

TEST(AutotuneProfileTest, MalformedJsonIsRejected) {
  TuneProfile q;
  q.memcpy_mbps = 42.0;  // sentinel: must stay untouched on failure
  EXPECT_FALSE(TuneProfile::from_json("", &q));
  EXPECT_FALSE(TuneProfile::from_json("not json at all", &q));
  EXPECT_FALSE(TuneProfile::from_json("{\"version\": ", &q));
  EXPECT_DOUBLE_EQ(q.memcpy_mbps, 42.0);
}

TEST(AutotuneProfileTest, TuneFileSaveLoadRoundTrips) {
  const std::string path = ::testing::TempDir() + "stair_autotune_test.json";
  std::remove(path.c_str());

  TuneProfile p = fake_profile();
  p.cache_budget_bytes = 2048 * 1024;
  ASSERT_TRUE(Autotune::save_profile(p, path));

  TuneProfile q;
  ASSERT_TRUE(Autotune::load_profile(path, &q));
  EXPECT_EQ(q.fingerprint, p.fingerprint);
  EXPECT_EQ(q.cache_budget_bytes, p.cache_budget_bytes);
  ASSERT_EQ(q.cells.size(), p.cells.size());
  EXPECT_DOUBLE_EQ(q.cells[1].mbps, p.cells[1].mbps);

  EXPECT_FALSE(Autotune::load_profile(path + ".missing", &q));
  std::remove(path.c_str());
}

TEST(AutotuneProfileTest, SaveProfileCreatesNestedParentDirs) {
  // XDG-style tune paths are several levels deep under a cache dir that may
  // not exist yet; save_profile must create the whole chain, not one level.
  const std::string base = ::testing::TempDir() + "stair_autotune_nest";
  const std::string path = base + "/a/b/c/tune.json";
  std::filesystem::remove_all(base);

  TuneProfile p = fake_profile();
  ASSERT_TRUE(Autotune::save_profile(p, path));

  TuneProfile q;
  ASSERT_TRUE(Autotune::load_profile(path, &q));
  EXPECT_EQ(q.fingerprint, p.fingerprint);
  std::filesystem::remove_all(base);
}

TEST(AutotuneProfileTest, SaveProfileSurfacesUnwritablePath) {
  // A regular file sitting where a parent dir should be: save must report
  // failure instead of silently dropping the profile.
  const std::string base = ::testing::TempDir() + "stair_autotune_blocker";
  std::filesystem::remove_all(base);
  {
    std::ofstream blocker(base);
    blocker << "not a directory\n";
  }
  EXPECT_FALSE(Autotune::save_profile(fake_profile(), base + "/sub/tune.json"));
  std::filesystem::remove_all(base);
}

TEST(AutotuneCacheBudgetTest, InstalledBudgetDrivesRegionCacheBudget) {
  if (std::getenv("STAIR_STRIP_BYTES"))
    GTEST_SKIP() << "STAIR_STRIP_BYTES overrides the installed budget";
  TunerGuard guard;

  const std::size_t detected = gf::region_cache_budget();
  EXPECT_GE(detected, 128u * 1024);

  gf::set_region_cache_budget(512 * 1024);
  EXPECT_EQ(gf::region_cache_budget(), 512u * 1024);

  // The budget feeds straight into slice sizing: a tighter budget can only
  // shrink (never grow) the cache-aware slice for the same workload.
  const std::size_t tight = gf::cache_aware_slice_bytes(1 << 20, 4, 8);
  gf::set_region_cache_budget(4 * 1024 * 1024);
  const std::size_t roomy = gf::cache_aware_slice_bytes(1 << 20, 4, 8);
  EXPECT_LE(tight, roomy);

  // 0 reverts to detection.
  gf::set_region_cache_budget(0);
  EXPECT_EQ(gf::region_cache_budget(), detected);
}

TEST(AutotuneFingerprintTest, FingerprintIsStableAndNamesBackends) {
  const std::string fp1 = Autotune::cpu_fingerprint();
  const std::string fp2 = Autotune::cpu_fingerprint();
  EXPECT_EQ(fp1, fp2);
  EXPECT_FALSE(fp1.empty());
  // The supported-backend set rides in brackets; scalar is always there.
  EXPECT_NE(fp1.find("scalar"), std::string::npos);
}

}  // namespace
}  // namespace stair
