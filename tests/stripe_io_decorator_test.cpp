// Engine-decorator shape battery plus the raw-device fallback paths that
// live at the engine layer: the X-macro expansion proves FaultInjectingEngine
// overrides every Engine virtual at compile time (the PR 7 missed-override
// class of bug), a recording inner engine proves each override actually
// forwards, and live engines prove O_DIRECT-refusing files and unregistered
// buffer indices degrade to the plain paths with the stats to show for it.

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include <unistd.h>

#include "util/stripe_io.h"
#include "util/workspace_pool.h"

namespace stair::io {
namespace {

namespace fs = std::filesystem;

struct TempDirGuard {
  fs::path path;

  TempDirGuard() {
    path = fs::temp_directory_path() /
           ("stair_decorator_test_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDirGuard() { fs::remove_all(path); }
};

// --- static shape -----------------------------------------------------------

// The class a pointer-to-member was taken from. For a virtual the decorator
// does NOT redeclare, &FaultInjectingEngine::name decays to a pointer into
// Engine and the static_assert below names the missing override.
template <typename T>
struct member_of;
template <typename R, typename C, typename... A>
struct member_of<R (C::*)(A...)> {
  using type = C;
};
template <typename R, typename C, typename... A>
struct member_of<R (C::*)(A...) const> {
  using type = C;
};

#define STAIR_CHECK_OVERRIDE(name)                                      \
  static_assert(                                                        \
      std::is_same_v<member_of<decltype(&FaultInjectingEngine::name)>::type, \
                     FaultInjectingEngine>,                             \
      "FaultInjectingEngine must override Engine::" #name               \
      " (add it to the decorator or drop it from STAIR_IO_ENGINE_VIRTUALS)");
STAIR_IO_ENGINE_VIRTUALS(STAIR_CHECK_OVERRIDE)
#undef STAIR_CHECK_OVERRIDE

// --- dynamic forwarding -----------------------------------------------------

/// Inner engine that records every call and completes transfers inline.
class RecordingEngine final : public Engine {
 public:
  mutable std::map<std::string, int> calls;
  OpenMode last_mode = OpenMode::kBuffered;

  Backend backend() const override {
    ++calls["backend"];
    return Backend::kThreads;
  }
  void read(int, std::uint64_t, std::span<std::uint8_t> buf, Callback cb) override {
    ++calls["read"];
    cb(Result{0, buf.size()});
  }
  void write(int, std::uint64_t, std::span<const std::uint8_t> buf,
             Callback cb) override {
    ++calls["write"];
    cb(Result{0, buf.size()});
  }
  void read_fixed(int, std::uint64_t, std::span<std::uint8_t> buf, int,
                  Callback cb) override {
    ++calls["read_fixed"];
    cb(Result{0, buf.size()});
  }
  void write_fixed(int, std::uint64_t, std::span<const std::uint8_t> buf, int,
                   Callback cb) override {
    ++calls["write_fixed"];
    cb(Result{0, buf.size()});
  }
  void flush() override { ++calls["flush"]; }
  int open_read(const std::string&, OpenMode mode) override {
    ++calls["open_read"];
    last_mode = mode;
    return next_fd_++;
  }
  int open_write(const std::string&, OpenMode mode) override {
    ++calls["open_write"];
    last_mode = mode;
    return next_fd_++;
  }
  int open_update(const std::string&, OpenMode mode) override {
    ++calls["open_update"];
    last_mode = mode;
    return next_fd_++;
  }
  void close(int) override { ++calls["close"]; }
  std::uint64_t file_size(int) const override {
    ++calls["file_size"];
    return 0;
  }
  int truncate(int, std::uint64_t) override {
    ++calls["truncate"];
    return 0;
  }
  int register_buffers(std::span<const std::span<std::uint8_t>>) override {
    ++calls["register_buffers"];
    return 0;
  }
  void unregister_buffers() override { ++calls["unregister_buffers"]; }
  int register_files(std::span<const int>) override {
    ++calls["register_files"];
    return 0;
  }
  void unregister_files() override { ++calls["unregister_files"]; }
  Stats stats() const override {
    ++calls["stats"];
    return {};
  }

 private:
  int next_fd_ = 100;
};

TEST(DecoratorForwarding, EveryVirtualReachesTheInnerEngine) {
  auto owned = std::make_unique<RecordingEngine>();
  RecordingEngine* inner = owned.get();
  FaultInjectingEngine outer(std::move(owned));

  std::vector<std::uint8_t> buf(64);
  std::array<std::span<std::uint8_t>, 1> regions{std::span(buf)};
  std::array<int, 1> fds{3};

  (void)outer.backend();
  outer.read(3, 0, buf, [](const Result&) {});
  outer.write(3, 0, buf, [](const Result&) {});
  outer.read_fixed(3, 0, buf, 0, [](const Result&) {});
  outer.write_fixed(3, 0, buf, 0, [](const Result&) {});
  outer.flush();
  outer.close(outer.open_read("a"));
  outer.close(outer.open_write("b"));
  outer.close(outer.open_update("c"));
  (void)outer.file_size(3);
  (void)outer.truncate(3, 0);
  (void)outer.register_buffers(regions);
  outer.unregister_buffers();
  (void)outer.register_files(fds);
  outer.unregister_files();
  (void)outer.stats();

  // The same X-macro drives the runtime check, so a virtual added to the
  // list above is automatically demanded here too.
#define STAIR_EXPECT_FORWARDED(name) \
  EXPECT_GE(inner->calls[#name], 1) << #name " never reached the inner engine";
  STAIR_IO_ENGINE_VIRTUALS(STAIR_EXPECT_FORWARDED)
#undef STAIR_EXPECT_FORWARDED
}

TEST(DecoratorForwarding, RejectDirectDowngradesOpensBeforeTheInnerEngine) {
  auto owned = std::make_unique<RecordingEngine>();
  RecordingEngine* inner = owned.get();
  FaultInjectingEngine outer(std::move(owned));

  outer.close(outer.open_read("x", OpenMode::kDirect));
  EXPECT_EQ(inner->last_mode, OpenMode::kDirect);

  outer.set_reject_direct(true);
  outer.close(outer.open_read("x", OpenMode::kDirect));
  EXPECT_EQ(inner->last_mode, OpenMode::kBuffered);
  outer.close(outer.open_write("y", OpenMode::kDirect));
  EXPECT_EQ(inner->last_mode, OpenMode::kBuffered);
  outer.close(outer.open_update("z", OpenMode::kDirect));
  EXPECT_EQ(inner->last_mode, OpenMode::kBuffered);

  // Buffered requests are untouched either way.
  outer.close(outer.open_read("x", OpenMode::kBuffered));
  EXPECT_EQ(inner->last_mode, OpenMode::kBuffered);
  outer.set_reject_direct(false);
  outer.close(outer.open_read("x", OpenMode::kDirect));
  EXPECT_EQ(inner->last_mode, OpenMode::kDirect);
}

// --- live-engine fallback paths ---------------------------------------------

std::vector<Backend> live_backends() {
  std::vector<Backend> b{Backend::kThreads};
  if (Engine::uring_supported()) b.push_back(Backend::kUring);
  return b;
}

Result wait_read(Engine& eng, int fd, std::uint64_t off, std::span<std::uint8_t> buf,
                 int buf_index) {
  std::promise<Result> done;
  eng.read_fixed(fd, off, buf, buf_index, [&](const Result& r) { done.set_value(r); });
  return done.get_future().get();
}

// O_DIRECT is a property of the file, not just the mount: procfs refuses it
// with EINVAL on every kernel we target, which makes it the deterministic
// "this file cannot do direct IO" probe. The open must still succeed —
// buffered, counted in direct_fallbacks — because a pipeline pointed at an
// uncooperative filesystem has to keep working.
TEST(DirectFallback, UncooperativeFileOpensBufferedAndCountsTheFallback) {
  for (Backend b : live_backends()) {
    SCOPED_TRACE(backend_name(b));
    auto eng = Engine::create(b, {});
    const int fd = eng->open_read("/proc/self/status", OpenMode::kDirect);
    ASSERT_GE(fd, 0) << "direct-refusing file must still open buffered";
    const auto st = eng->stats();
    EXPECT_GE(st.direct_fallbacks, 1u);
    EXPECT_EQ(st.direct_opens, 0u);
    eng->close(fd);
  }
}

TEST(DirectFallback, UnregisteredIndexDegradesToPlainReadWithCorrectBytes) {
  TempDirGuard dir;
  const fs::path file = dir.path / "blob.bin";
  std::vector<std::uint8_t> payload(8192);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 131 + 7);
  {
    std::ofstream out(file, std::ios::binary);
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  }

  for (Backend b : live_backends()) {
    SCOPED_TRACE(backend_name(b));
    auto eng = Engine::create(b, {});

    // A pool one registered slot wide: the second lease is overflow
    // (index -1), exactly what the pipeline hands the engine when the
    // registered set is exhausted.
    IoBufferPool pool(4096, 4096, 1);
    (void)eng->register_buffers(pool.regions());
    auto reg = pool.acquire();
    auto overflow = pool.acquire();
    ASSERT_EQ(overflow->index, -1);

    const int fd = eng->open_read(file.string());
    ASSERT_GE(fd, 0);

    Result r1 = wait_read(*eng, fd, 0, reg->span(4096), reg->index);
    ASSERT_TRUE(r1.ok()) << strerror(r1.error);
    ASSERT_EQ(r1.bytes, 4096u);
    EXPECT_EQ(std::memcmp(reg->data, payload.data(), 4096), 0);

    Result r2 = wait_read(*eng, fd, 4096, overflow->span(4096), overflow->index);
    ASSERT_TRUE(r2.ok()) << strerror(r2.error);
    ASSERT_EQ(r2.bytes, 4096u);
    EXPECT_EQ(std::memcmp(overflow->data, payload.data() + 4096, 4096), 0);

    // The overflow transfer must show up as a fixed fallback; on uring the
    // registered one must not.
    const auto st = eng->stats();
    EXPECT_GE(st.fixed_fallbacks, 1u);
    if (b == Backend::kUring && st.registered_buffers == 1) {
      EXPECT_EQ(st.fixed_reads, 1u);
      EXPECT_EQ(st.fixed_fallbacks, 1u);
    }

    eng->close(fd);
    eng->unregister_buffers();
  }
}

}  // namespace
}  // namespace stair::io
