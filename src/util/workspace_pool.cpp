#include "util/workspace_pool.h"

namespace stair::detail {

std::size_t PoolCore::acquire_locked() {
  acquired_.fetch_add(1, std::memory_order_relaxed);
  if (free_.empty()) return kGrow;
  const std::size_t slot = free_.back();
  free_.pop_back();
  reused_.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

std::size_t PoolCore::register_locked() { return created_++; }

void PoolCore::release(std::size_t slot) {
  std::lock_guard<std::mutex> guard(mu_);
  free_.push_back(slot);
}

std::size_t PoolCore::created() const {
  std::lock_guard<std::mutex> guard(mu_);
  return created_;
}

std::size_t PoolCore::in_use() const {
  std::lock_guard<std::mutex> guard(mu_);
  return created_ - free_.size();
}

}  // namespace stair::detail
