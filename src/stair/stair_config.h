// STAIR code configuration (paper §2, Table 1).
//
// A STAIR code is parameterized by:
//   n — chunks (devices) per stripe,
//   r — symbols (sectors) per chunk,
//   m — tolerable whole-chunk (device) failures per stripe,
//   e — the sector-failure coverage vector (e_0 <= e_1 <= ... <= e_{m'-1}):
//       besides the m failed chunks, up to m' = |e| further chunks may have
//       sector failures, the i-th worst of them at most e_i symbols.
// Derived: m' = |e|, s = sum(e), e_max = e_{m'-1}.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace stair {

/// Validated parameter set for one STAIR code.
struct StairConfig {
  std::size_t n = 0;                ///< chunks per stripe (devices)
  std::size_t r = 0;                ///< symbols per chunk (sectors)
  std::size_t m = 0;                ///< tolerable device failures
  std::vector<std::size_t> e;       ///< sector-failure coverage, ascending
  int w = 8;                        ///< GF(2^w) word size

  std::size_t m_prime() const { return e.size(); }
  std::size_t s() const;
  std::size_t e_max() const { return e.empty() ? 0 : e.back(); }

  /// Number of stored data symbols per stripe when the s global parity
  /// symbols live inside the stripe (§5): r*(n-m) - s.
  std::size_t data_symbols_inside() const { return r * (n - m) - s(); }

  /// Storage efficiency E (Eq. 8): fraction of the stripe holding user data.
  double storage_efficiency() const;

  /// Devices saved versus a traditional erasure code that needs m + m' parity
  /// chunks for the same coverage (§6.1): m' - s/r.
  double devices_saved() const;

  /// Smallest word size in {4, 8, 16, 32} satisfying n + m' <= 2^w and
  /// r + e_max <= 2^w.
  int minimum_w() const;

  /// Throws std::invalid_argument with a message if any constraint is broken
  /// (shape bounds, e ordering, word size).
  void validate() const;

  /// "STAIR(n=8, r=4, m=2, e=(1,1,2))" — for logs and benchmark labels.
  std::string to_string() const;

  bool operator==(const StairConfig& o) const = default;
};

/// All coverage vectors e with sum s, entries in [1, max_entry], ascending,
/// and at most max_m_prime entries. Used for the paper's "worst e for a given
/// s" sweeps (§6.2.1) and the e-axis of Figures 9 and 14.
std::vector<std::vector<std::size_t>> enumerate_coverage_vectors(
    std::size_t s, std::size_t max_entry, std::size_t max_m_prime);

}  // namespace stair
