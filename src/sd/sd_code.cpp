#include "sd/sd_code.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace stair {

int SdConfig::choose_w(std::size_t n, std::size_t r) {
  for (int w : {8, 16, 32})
    if (n * r <= (std::size_t{1} << w) - 1) return w;
  throw std::invalid_argument("SdConfig: stripe too large for supported word sizes");
}

void SdConfig::validate() const {
  if (n < 2 || r < 1) throw std::invalid_argument("SdConfig: need n >= 2, r >= 1");
  if (m >= n) throw std::invalid_argument("SdConfig: m must be < n");
  if (s == 0) throw std::invalid_argument("SdConfig: s must be positive (use RS for s = 0)");
  if (s > n - m)
    throw std::invalid_argument("SdConfig: s must be at most n - m (bottom-row placement)");
  if (w != 0 && w != 8 && w != 16 && w != 32)
    throw std::invalid_argument("SdConfig: w must be 0 (auto), 8, 16 or 32");
}

namespace {

Matrix build_parity_check(const gf::Field& f, const SdConfig& cfg, std::uint64_t salt) {
  const std::size_t n = cfg.n, r = cfg.r, m = cfg.m, s = cfg.s;
  Matrix h(f, m * r + s, n * r);
  // Per-row disk-parity equations: row i, exponent u.
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t u = 0; u < m; ++u)
      for (std::size_t j = 0; j < n; ++j)
        h.set(i * m + u, i * n + j, f.exp(u * j));
  // Global equations over flattened symbol index z = i*n + j.
  Rng rng(0x5d5d5d5dULL + salt);
  for (std::size_t t = 0; t < s; ++t)
    for (std::size_t z = 0; z < n * r; ++z) {
      std::uint32_t coeff = f.exp((m + t) * z);
      if (salt != 0) coeff = 1 + static_cast<std::uint32_t>(rng.next_below(f.max_element()));
      h.set(m * r + t, z, coeff);
    }
  return h;
}

}  // namespace

SdCode::SdCode(SdConfig cfg)
    : cfg_([&] {
        cfg.validate();
        if (cfg.w == 0) cfg.w = SdConfig::choose_w(cfg.n, cfg.r);
        if (cfg.n * cfg.r > (std::size_t{1} << cfg.w) - 1)
          throw std::invalid_argument("SdCode: n*r exceeds 2^w - 1");
        return cfg;
      }()),
      field_(&gf::field(cfg_.w)),
      h_(*field_, 1, 1),
      encode_matrix_(*field_, 1, 1),
      encode_(*field_) {
  const std::size_t n = cfg_.n, r = cfg_.r, m = cfg_.m, s = cfg_.s;

  // Parity placement: the m rightmost disks, plus s sectors at the right end
  // of the bottom data row.
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = n - m; j < n; ++j) parity_pos_.push_back(i * n + j);
  for (std::size_t q = 0; q < s; ++q)
    parity_pos_.push_back((r - 1) * n + (n - m - s) + q);
  std::vector<bool> is_parity(n * r, false);
  for (std::size_t p : parity_pos_) is_parity[p] = true;
  for (std::size_t z = 0; z < n * r; ++z)
    if (!is_parity[z]) data_pos_.push_back(z);

  // Solve the parity symbols from the parity-check system. If the canonical
  // Blaum-Plank coefficients leave the parity submatrix singular for this
  // configuration, retry with deterministic random global-equation rows (the
  // published constructions themselves resort to searches, §1/§8).
  for (std::uint64_t salt = 0; ; ++salt) {
    h_ = build_parity_check(*field_, cfg_, salt);
    const std::vector<std::size_t> all_eqs = [&] {
      std::vector<std::size_t> v(h_.rows());
      for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
      return v;
    }();
    const Matrix h_p = h_.select(all_eqs, parity_pos_);
    auto h_p_inv = h_p.inverse();
    if (!h_p_inv) {
      if (salt > 32)
        throw std::runtime_error("SdCode: could not construct invertible parity system");
      continue;
    }
    const Matrix h_d = h_.select(all_eqs, data_pos_);
    // parity = (H_P^-1 * H_D) * data  (XOR arithmetic: signs are moot).
    encode_matrix_ = h_p_inv->mul(h_d);
    break;
  }

  for (std::size_t p = 0; p < parity_pos_.size(); ++p) {
    ScheduleOp op;
    op.output = static_cast<std::uint32_t>(parity_pos_[p]);
    for (std::size_t k = 0; k < data_pos_.size(); ++k)
      if (encode_matrix_.at(p, k) != 0)
        op.terms.push_back({encode_matrix_.at(p, k),
                            static_cast<std::uint32_t>(data_pos_[k])});
    encode_.add_op(std::move(op));
  }
}

void SdCode::encode(std::span<const std::span<std::uint8_t>> symbols) const {
  if (symbols.size() != symbol_count())
    throw std::invalid_argument("SdCode::encode: wrong symbol count");
  encode_.execute(symbols);
}

bool SdCode::within_coverage(const std::vector<bool>& erased) const {
  const std::size_t n = cfg_.n, r = cfg_.r;
  if (erased.size() != n * r) return false;
  std::vector<std::size_t> count(n, 0);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (erased[i * n + j]) ++count[j];
  std::vector<std::size_t> sorted = count;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  std::size_t disks = 0;
  while (disks < cfg_.m && disks < n && sorted[disks] > 0) ++disks;
  std::size_t sectors = 0;
  for (std::size_t j = disks; j < n; ++j) sectors += sorted[j];
  return sectors <= cfg_.s;
}

std::optional<Schedule> SdCode::build_decode_schedule(const std::vector<bool>& erased) const {
  const std::size_t total = symbol_count();
  if (erased.size() != total)
    throw std::invalid_argument("SdCode: erasure mask must cover r*n symbols");

  std::vector<std::size_t> lost, known;
  for (std::size_t z = 0; z < total; ++z) (erased[z] ? lost : known).push_back(z);
  if (lost.empty()) return Schedule(*field_);
  if (lost.size() > h_.rows()) return std::nullopt;

  // Row-reduce [H_E | H_K] to find lost.size() equations whose H_E block is
  // invertible, then x_E = inv(H_E_sel) * H_K_sel * x_K.
  const std::vector<std::size_t> all_eqs = [&] {
    std::vector<std::size_t> v(h_.rows());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
    return v;
  }();
  Matrix h_e = h_.select(all_eqs, lost);

  // Select independent equations by Gaussian elimination on a copy.
  std::vector<std::size_t> chosen;
  {
    Matrix work = h_e;
    std::vector<std::size_t> eq_of_row = all_eqs;
    std::size_t pivot_row = 0;
    for (std::size_t col = 0; col < lost.size() && pivot_row < work.rows(); ++col) {
      std::size_t p = pivot_row;
      while (p < work.rows() && work.at(p, col) == 0) ++p;
      if (p == work.rows()) return std::nullopt;  // rank deficient
      if (p != pivot_row) {
        for (std::size_t j = 0; j < work.cols(); ++j)
          std::swap(work.row(p)[j], work.row(pivot_row)[j]);
        std::swap(eq_of_row[p], eq_of_row[pivot_row]);
      }
      chosen.push_back(eq_of_row[pivot_row]);
      const std::uint32_t pinv = field_->inv(work.at(pivot_row, col));
      for (std::size_t j = 0; j < work.cols(); ++j)
        work.set(pivot_row, j, field_->mul(work.at(pivot_row, j), pinv));
      for (std::size_t rr = pivot_row + 1; rr < work.rows(); ++rr) {
        const std::uint32_t factor = work.at(rr, col);
        if (factor == 0) continue;
        for (std::size_t j = 0; j < work.cols(); ++j)
          work.set(rr, j, gf::Field::add(work.at(rr, j), field_->mul(factor, work.at(pivot_row, j))));
      }
      ++pivot_row;
    }
    if (chosen.size() != lost.size()) return std::nullopt;
  }

  const Matrix h_e_sel = h_.select(chosen, lost);
  auto h_e_inv = h_e_sel.inverse();
  if (!h_e_inv) return std::nullopt;
  const Matrix h_k_sel = h_.select(chosen, known);
  const Matrix solve = h_e_inv->mul(h_k_sel);  // lost x known

  Schedule sch(*field_);
  for (std::size_t t = 0; t < lost.size(); ++t) {
    ScheduleOp op;
    op.output = static_cast<std::uint32_t>(lost[t]);
    for (std::size_t k = 0; k < known.size(); ++k)
      if (solve.at(t, k) != 0)
        op.terms.push_back({solve.at(t, k), static_cast<std::uint32_t>(known[k])});
    sch.add_op(std::move(op));
  }
  return sch;
}

bool SdCode::decode(std::span<const std::span<std::uint8_t>> symbols,
                    const std::vector<bool>& erased) const {
  auto sch = build_decode_schedule(erased);
  if (!sch) return false;
  sch->execute(symbols);
  return true;
}

double SdCode::update_penalty() const {
  std::vector<std::size_t> per_data(data_pos_.size(), 0);
  for (std::size_t p = 0; p < encode_matrix_.rows(); ++p)
    for (std::size_t k = 0; k < encode_matrix_.cols(); ++k)
      if (encode_matrix_.at(p, k) != 0) ++per_data[k];
  std::size_t total = 0;
  for (std::size_t c : per_data) total += c;
  return per_data.empty() ? 0.0
                          : static_cast<double>(total) / static_cast<double>(per_data.size());
}

}  // namespace stair
