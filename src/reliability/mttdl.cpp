#include "reliability/mttdl.h"

#include <cmath>
#include <stdexcept>

namespace stair::reliability {

double storage_efficiency(std::size_t n, std::size_t r, std::size_t m, std::size_t s) {
  return static_cast<double>(r * (n - m) - s) / static_cast<double>(r * n);
}

std::size_t num_arrays(const SystemParams& p, double efficiency) {
  if (efficiency <= 0.0) throw std::invalid_argument("num_arrays: efficiency must be > 0");
  const double arrays = p.user_bytes / efficiency /
                        (p.device_bytes * static_cast<double>(p.n));
  return static_cast<std::size_t>(std::ceil(arrays - 1e-9));
}

double p_arr(const SystemParams& p, double pstr) {
  const double stripes = std::floor(p.device_bytes / (p.sector_bytes * static_cast<double>(p.r)));
  // Exact complement form; the paper's linear approximation holds for small
  // pstr but saturates wrongly for large ones.
  const double parr = -std::expm1(stripes * std::log1p(-pstr));
  return parr;
}

double mttdl_array(const SystemParams& p, double parr) {
  if (p.m != 1)
    throw std::invalid_argument("mttdl_array: the §7 Markov model covers m = 1 only");
  const double lambda = 1.0 / p.mttf_hours;
  const double mu = 1.0 / p.rebuild_hours;
  const double n = static_cast<double>(p.n);
  return ((2.0 * n - 1.0) * lambda + mu) /
         (n * lambda * ((n - 1.0) * lambda + mu * parr));
}

double mttdl_system(const SystemParams& p, std::size_t s, double pstr) {
  const double eff = storage_efficiency(p.n, p.r, p.m, s);
  const std::size_t arrays = num_arrays(p, eff);
  return mttdl_array(p, p_arr(p, pstr)) / static_cast<double>(arrays);
}

}  // namespace stair::reliability
