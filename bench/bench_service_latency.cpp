// Service tail latency vs offered load — the StorageNode measured the way a
// served system is judged (sweep load, read the whole distribution), not the
// way a library is (one caller, MB/s).
//
// A closed-loop multi-client load generator drives two tenants against one
// node: each client thread submits a read/write/scan mix with a small think
// time, waits for its Future, and records end-to-end (admission ->
// completion) latency into a per-thread LatencyHistogram, merged per tier at
// the end of the step. Offered load is swept by clients-per-tenant; each
// step runs in two modes —
//
//   plain — node alone (the baseline tail),
//   scrub — node with its background Scrubber on (repair + hold gate wired
//           to foreground pressure); the acceptance shape, gated in CI: at
//           moderate load, scrub-on read p99 stays within 2x of plain
//           (skipped on starved runners with pool_width < 4).
//
// plus one rebuild step at moderate load: a device file is deleted before
// the node starts and a whole-device rebuild runs concurrently with the
// client load, so the read tier's tail includes degraded reads racing a
// rebuild — the worst honest operating point.
//
// Results land in BENCH_service_latency.json (p50/p99/p999 per tier per
// step, per-tenant completion/reject counts); STAIR_BENCH_SMOKE=1 is the CI
// configuration.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "gf/kernel.h"
#include "stair/scrub_repair.h"
#include "stair/service.h"
#include "util/latency.h"

using namespace stair;
using namespace stair::bench;

namespace fs = std::filesystem;

namespace {

struct TierResult {
  LatencyHistogram hist;
  std::uint64_t issued = 0;
};

struct StepResult {
  std::string mode;  // "plain" | "scrub" | "rebuild"
  std::size_t clients_per_tenant = 0;
  double seconds = 0.0;
  double achieved_rps = 0.0;
  std::uint64_t completed = 0, rejected = 0, failed = 0;
  std::uint64_t degraded_reads = 0, batched_reads = 0;
  std::array<TierResult, kRequestClasses> tiers;  // indexed by RequestType
  std::vector<StorageNode::TenantStats> per_tenant;
  io::Engine::Stats io;  // the node's engine counters (direct/fixed engagement)
};

constexpr std::size_t kTenants = 2;

const char* tier_name(std::size_t cls) {
  static const char* names[kRequestClasses] = {"read", "write", "scan"};
  return names[cls];
}

/// One client thread's closed loop: draw from the mix, submit, wait, record,
/// think. Latencies land in thread-local histograms merged by the caller.
void client_loop(StorageNode& node, std::size_t tenant, std::uint64_t seed,
                 std::size_t file_bytes, std::size_t stripes, std::size_t stripe_data,
                 std::size_t read_bytes, std::size_t scan_bytes,
                 const std::atomic<bool>& stop_flag,
                 std::array<TierResult, kRequestClasses>& out) {
  Rng rng(seed);
  std::vector<std::uint8_t> read_buf(read_bytes), scan_buf(scan_bytes);
  std::vector<std::uint8_t> write_buf(stripe_data);
  rng.fill(write_buf);

  while (!stop_flag.load(std::memory_order_relaxed)) {
    // Mix: 70% point reads, 15% writes, 15% scans (drawn per iteration).
    const std::uint64_t draw = rng.next_below(100);
    Request req;
    req.tenant = tenant;
    if (draw < 70) {
      req.type = RequestType::kRead;
      req.offset = rng.next_below(file_bytes - read_bytes);
      req.out = read_buf;
    } else if (draw < 85) {
      req.type = RequestType::kWrite;
      req.stripe = rng.next_below(stripes);
      // Perturb one byte so successive writes aren't byte-identical.
      write_buf[rng.next_below(write_buf.size())] ^= 0x5A;
      req.data = write_buf;
    } else {
      req.type = RequestType::kScan;
      req.offset = rng.next_below(file_bytes - scan_bytes);
      req.out = scan_buf;
    }

    const std::size_t cls = static_cast<std::size_t>(req.type);
    ++out[cls].issued;
    const Response resp = node.submit(req).wait();
    if (resp.ok) out[cls].hist.record_seconds(resp.queue_seconds + resp.service_seconds);

    // Think time: the closed loop's pacing — without it every client hammers
    // the queue back-to-back and "offered load" collapses to worker count.
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

/// Runs one load step: start a node over `store`, drive kTenants *
/// clients_per_tenant closed-loop clients for `seconds`, optionally racing a
/// whole-device rebuild, and fold the per-thread histograms per tier.
StepResult run_step(Codec& codec, const std::string& store, const std::string& mode,
                    std::size_t clients_per_tenant, double seconds,
                    std::size_t file_bytes, std::size_t stripes, std::size_t stripe_data,
                    std::size_t read_bytes, std::size_t scan_bytes, std::size_t victim) {
  StorageNode::Options opt;
  opt.tenants = kTenants;
  if (mode == "scrub") {
    opt.scrub = true;
    opt.scrub_options = {.stripes_in_flight = 2, .rate_mbps = 128.0};
  }
  StorageNode node(codec, store, opt);
  node.start();

  std::thread rebuild_thread;
  Scrubber rebuilder(codec, {.stripes_in_flight = 2});
  if (mode == "rebuild") {
    rebuild_thread = std::thread([&] {
      const ScrubReport rep = rebuilder.rebuild_device(store, victim);
      if (!rep.ok)
        std::fprintf(stderr, "concurrent rebuild reported: %s\n", rep.error.c_str());
    });
  }

  const std::size_t clients = kTenants * clients_per_tenant;
  std::vector<std::array<TierResult, kRequestClasses>> per_client(clients);
  std::atomic<bool> stop_flag{false};
  std::vector<std::thread> threads;
  Stopwatch watch;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back(client_loop, std::ref(node), c % kTenants,
                         std::uint64_t{1000} * (c + 1) + clients_per_tenant,
                         file_bytes, stripes, stripe_data, read_bytes, scan_bytes,
                         std::cref(stop_flag), std::ref(per_client[c]));
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(seconds * 1000)));
  stop_flag.store(true);
  for (auto& t : threads) t.join();
  const double elapsed = watch.elapsed_seconds();
  if (rebuild_thread.joinable()) rebuild_thread.join();

  const StorageNode::Stats stats = node.stats();
  node.stop();

  StepResult step;
  step.mode = mode;
  step.clients_per_tenant = clients_per_tenant;
  step.seconds = elapsed;
  for (auto& client : per_client)
    for (std::size_t cls = 0; cls < kRequestClasses; ++cls) {
      step.tiers[cls].hist.merge(client[cls].hist);
      step.tiers[cls].issued += client[cls].issued;
    }
  for (const auto& t : stats.tenants) {
    step.completed += t.completed;
    step.rejected += t.rejected;
  }
  step.failed = stats.failed_requests;
  step.degraded_reads = stats.degraded_reads;
  step.batched_reads = stats.batched_reads;
  step.io = stats.io;
  step.per_tenant = stats.tenants;
  step.achieved_rps = elapsed > 0 ? static_cast<double>(step.completed) / elapsed : 0.0;
  return step;
}

void print_step(const StepResult& s) {
  std::printf("%-8s %2zu clients/tenant  %7.0f req/s  rej %llu  degraded %llu\n",
              s.mode.c_str(), s.clients_per_tenant, s.achieved_rps,
              (unsigned long long)s.rejected, (unsigned long long)s.degraded_reads);
  for (std::size_t cls = 0; cls < kRequestClasses; ++cls) {
    const auto& h = s.tiers[cls].hist;
    if (h.count() == 0) continue;
    std::printf("  %-5s p50 %8.3f ms  p99 %8.3f ms  p999 %8.3f ms  (%llu samples)\n",
                tier_name(cls), h.percentile_ms(50), h.percentile_ms(99),
                h.percentile_ms(99.9), (unsigned long long)h.count());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = parse_env(argc, argv);
  const StairConfig cfg{.n = 6, .r = 4, .m = 1, .e = {1, 2}};
  const std::size_t symbol = env.smoke ? (4u * 1024) : (16u * 1024);
  const std::size_t stripes = env.smoke ? 8 : 32;
  const double step_seconds = env.smoke ? 0.25 : 1.5;
  const std::size_t read_bytes = 16 * 1024;

  const StairCode code(cfg);
  Codec codec(code);
  const std::size_t stripe_data = code.data_symbol_count() * symbol;
  // Whole stripes only: every write carries exactly stripe_data bytes, no
  // tail special case in the client loop.
  const std::size_t file_bytes = stripes * stripe_data;
  const std::size_t scan_bytes = std::min<std::size_t>(file_bytes / 2, 4 * stripe_data);
  const std::size_t victim = 2;

  const fs::path dir = fs::temp_directory_path() / "stair_bench_service_latency";
  fs::remove_all(dir);
  fs::create_directories(dir);

  auto encode_store = [&](const std::string& name) {
    const fs::path input = dir / (name + "_input.bin");
    {
      std::vector<std::uint8_t> bytes(file_bytes);
      Rng rng(17);
      rng.fill(bytes);
      std::ofstream out(input, std::ios::binary);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    }
    const std::string store = (dir / name).string();
    IoPipeline pipeline(codec, {.symbol_bytes = symbol});
    const auto st = pipeline.encode_file(input.string(), store);
    if (!st.ok) {
      std::fprintf(stderr, "encode failed: %s\n", st.error.c_str());
      std::exit(1);
    }
    return store;
  };

  const std::string store = encode_store("store");
  const char* io_backend = io::backend_name(IoPipeline(codec, {}).engine().backend());

  std::cout << "=== service latency: tail vs offered load, " << kTenants
            << " tenants, closed loop ===\n"
            << cfg.to_string() << ", " << stripes << " stripes ("
            << (file_bytes >> 10) << " KB), " << (read_bytes >> 10)
            << " KB reads / " << (scan_bytes >> 10) << " KB scans, mix 70/15/15, "
            << "pool width " << env.pool_width() << ", IO backend " << io_backend
            << (env.smoke ? "  [smoke]" : "") << "\n\n";

  const std::vector<std::size_t> sweep =
      env.smoke ? std::vector<std::size_t>{1, 4} : std::vector<std::size_t>{1, 2, 4, 8};
  const std::size_t moderate = sweep[sweep.size() / 2];

  std::vector<StepResult> steps;
  for (const std::string mode : {"plain", "scrub"})
    for (std::size_t c : sweep) {
      steps.push_back(run_step(codec, store, mode, c, step_seconds, file_bytes,
                               stripes, stripe_data, read_bytes, scan_bytes, victim));
      print_step(steps.back());
    }

  // Rebuild step: fresh store (the sweep above mutated `store`), one device
  // deleted before the node opens it, rebuild racing the clients.
  {
    const std::string rb_store = encode_store("store_rebuild");
    fs::remove(StripeStore::device_path(rb_store, victim));
    steps.push_back(run_step(codec, rb_store, "rebuild", moderate, step_seconds,
                             file_bytes, stripes, stripe_data, read_bytes, scan_bytes,
                             victim));
    print_step(steps.back());
  }

  // The CI gate's inputs, surfaced in stdout too: read p99 plain vs scrub at
  // the moderate step.
  double p99_plain = 0, p99_scrub = 0;
  for (const auto& s : steps) {
    if (s.clients_per_tenant != moderate) continue;
    const double p99 = s.tiers[0].hist.percentile_ms(99);
    if (s.mode == "plain") p99_plain = p99;
    if (s.mode == "scrub") p99_scrub = p99;
  }
  const double ratio = p99_plain > 0 ? p99_scrub / p99_plain : 0.0;
  std::printf("\nread p99 at %zu clients/tenant: plain %.3f ms, scrub %.3f ms (ratio %.2fx)\n",
              moderate, p99_plain, p99_scrub, ratio);

  // Engine counters from the final step (cumulative over the node's life):
  // the direct-io CI leg keys its p99 gate on direct_opens > 0 &&
  // direct_fallbacks == 0 — i.e. O_DIRECT genuinely engaged, never silently
  // degraded to buffered.
  const io::Engine::Stats last_io = steps.empty() ? io::Engine::Stats{} : steps.back().io;

  const std::string path = json_output_path("BENCH_service_latency.json", env.smoke);
  {
    std::ofstream out(path);
    out << "{\n  \"bench\": \"service_latency\",\n"
        << "  \"backend\": \"" << gf::backend_name(gf::active_backend()) << "\",\n"
        << "  \"io_backend\": \"" << io_backend << "\",\n"
        << "  \"smoke\": " << (env.smoke ? "true" : "false") << ",\n"
        << "  \"hardware_threads\": " << env.hardware_threads << ",\n"
        << "  \"pool_width\": " << env.pool_width() << ",\n"
        << "  \"tenants\": " << kTenants << ",\n"
        << "  \"file_bytes\": " << file_bytes << ",\n"
        << "  \"read_bytes\": " << read_bytes << ",\n"
        << "  \"scan_bytes\": " << scan_bytes << ",\n"
        << "  \"mix\": {\"read\": 0.70, \"write\": 0.15, \"scan\": 0.15},\n"
        << "  \"moderate_clients_per_tenant\": " << moderate << ",\n"
        << "  \"read_p99_plain_ms\": " << p99_plain << ",\n"
        << "  \"read_p99_scrub_ms\": " << p99_scrub << ",\n"
        << "  \"read_p99_scrub_ratio\": " << ratio << ",\n"
        << "  \"direct_opens\": " << last_io.direct_opens << ",\n"
        << "  \"direct_fallbacks\": " << last_io.direct_fallbacks << ",\n"
        << "  \"fixed_reads\": " << last_io.fixed_reads << ",\n"
        << "  \"fixed_writes\": " << last_io.fixed_writes << ",\n"
        << "  \"fixed_fallbacks\": " << last_io.fixed_fallbacks << ",\n"
        << "  \"steps\": [\n";
    for (std::size_t i = 0; i < steps.size(); ++i) {
      const auto& s = steps[i];
      out << "    {\"mode\": \"" << s.mode << "\", \"clients_per_tenant\": "
          << s.clients_per_tenant << ", \"seconds\": " << s.seconds
          << ", \"achieved_rps\": " << s.achieved_rps
          << ", \"completed\": " << s.completed << ", \"rejected\": " << s.rejected
          << ", \"failed\": " << s.failed
          << ", \"degraded_reads\": " << s.degraded_reads
          << ", \"batched_reads\": " << s.batched_reads << ",\n"
          << "     \"tiers\": {";
      for (std::size_t cls = 0; cls < kRequestClasses; ++cls) {
        const auto& h = s.tiers[cls].hist;
        out << (cls ? ", " : "") << "\"" << tier_name(cls) << "\": {\"samples\": "
            << h.count() << ", \"p50_ms\": " << h.percentile_ms(50)
            << ", \"p99_ms\": " << h.percentile_ms(99)
            << ", \"p999_ms\": " << h.percentile_ms(99.9) << "}";
      }
      out << "},\n     \"per_tenant\": [";
      for (std::size_t t = 0; t < s.per_tenant.size(); ++t)
        out << (t ? ", " : "") << "{\"completed\": " << s.per_tenant[t].completed
            << ", \"rejected\": " << s.per_tenant[t].rejected
            << ", \"batched\": " << s.per_tenant[t].batched << "}";
      out << "]}" << (i + 1 < steps.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }
  std::cout << "\nWrote " << path << "\n"
            << "Shape check: read p99 flat-ish across the sweep until workers\n"
               "saturate; scrub mode within 2x of plain at moderate load (the\n"
               "hold gate earning its keep); the rebuild step's tail higher but\n"
               "every read still correct (degraded path).\n";
  fs::remove_all(dir);
  return 0;
}
