// Sector-failure models (§7.1.2): the probability P_chk(i) that a chunk of r
// sectors suffers exactly i sector failures, under the independent model
// (Eq. 13) and the correlated burst model (Eqs. 15-17) with the Pareto
// burst-length distribution of Schroeder et al. parameterized by (b1, alpha).
#pragma once

#include <cstddef>
#include <vector>

namespace stair::reliability {

/// Eq. 12: probability of a sector failure given an unrecoverable bit error
/// rate and the sector size in bytes.
double sector_failure_prob(double p_bit, std::size_t sector_bytes);

/// Eq. 13: independent-model pmf; element i (0..r) is P_chk(i).
std::vector<double> independent_chunk_pmf(double p_sec, std::size_t r);

/// Burst-length distribution fitted by (b1, alpha): a point mass b1 at
/// length 1 and, conditional on length >= 2, a discrete Pareto with scale 2
/// and tail index alpha: P(L >= i | L >= 2) = (i/2)^-alpha. Lengths are
/// truncated at r_max with the tail mass lumped into the last bin (§7.1.2
/// assumes bursts never exceed a chunk). This discretization choice is the
/// paper's open detail; DESIGN.md §3 records it.
class BurstDistribution {
 public:
  BurstDistribution(double b1, double alpha) : b1_(b1), alpha_(alpha) {}

  double b1() const { return b1_; }
  double alpha() const { return alpha_; }

  /// b_i for i = 1..r_max; element [i] is b_i ([0] unused, zero).
  std::vector<double> pmf(std::size_t r_max) const;

  /// Cumulative P(L <= i), i = 1..r_max — the Figure 19(a) curves.
  std::vector<double> cdf(std::size_t r_max) const;

  /// Eq. 14: average burst length B.
  double mean(std::size_t r_max) const;

 private:
  double b1_, alpha_;
};

/// Eqs. 15 + 17: correlated-model pmf; element i (0..r) is P_chk(i).
/// P_chk(0) absorbs the remainder so the pmf sums to exactly one.
std::vector<double> correlated_chunk_pmf(double p_sec, const BurstDistribution& bursts,
                                         std::size_t r);

}  // namespace stair::reliability
