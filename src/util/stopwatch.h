// Wall-clock stopwatch for the benchmark harness.
#pragma once

#include <chrono>

namespace stair {

/// Monotonic wall-clock timer. Construction starts it.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace stair
