// MTTDL analytics (§7.1.1): storage efficiency (Eq. 8), array count (Eq. 7),
// the critical-mode Markov model of Figure 16 (Eq. 10), and the array/system
// roll-ups (Eqs. 9, 11). The m = 1 restriction matches the paper's analysis.
#pragma once

#include <cstddef>

namespace stair::reliability {

/// Storage-system parameters (Table 4). Binary units: the paper's N_arr
/// table reproduces exactly with 1 PB = 2^50 bytes and C = 300 * 2^30 bytes.
struct SystemParams {
  double user_bytes = 10.0 * 1125899906842624.0;  ///< U, default 10 PB (2^50)
  double device_bytes = 300.0 * 1073741824.0;     ///< C, default 300 GB (2^30)
  double sector_bytes = 512.0;                    ///< S
  double mttf_hours = 500000.0;                   ///< 1/lambda
  double rebuild_hours = 17.8;                    ///< 1/mu
  std::size_t n = 8;                              ///< devices per array
  std::size_t r = 16;                             ///< sectors per chunk
  std::size_t m = 1;                              ///< parity devices
};

/// Eq. 8: E = (r*(n-m) - s) / (r*n). s = 0 gives Reed-Solomon's efficiency.
double storage_efficiency(std::size_t n, std::size_t r, std::size_t m, std::size_t s);

/// Eq. 7: number of arrays needed for U bytes of user data.
std::size_t num_arrays(const SystemParams& p, double efficiency);

/// Eq. 11: probability that an array in critical mode hits unrecoverable
/// sector failures, from the per-stripe probability.
double p_arr(const SystemParams& p, double pstr);

/// Eq. 10: MTTDL of one array (hours) under the m = 1 Markov model.
double mttdl_array(const SystemParams& p, double parr);

/// Eq. 9 + plumbing: system MTTDL (hours) for a code with `s` parity sectors
/// per stripe and critical-mode stripe failure probability `pstr`.
double mttdl_system(const SystemParams& p, std::size_t s, double pstr);

}  // namespace stair::reliability
