// Coverage-advisor tests: the §7.2.2 rankings come out of the API — bursty
// models prefer e = (s), independent models prefer split vectors, the burst
// constraint is honored, and degenerate queries fail cleanly.

#include <gtest/gtest.h>

#include "reliability/coverage_advisor.h"

namespace stair::reliability {
namespace {

AdvisorQuery base_query() {
  AdvisorQuery q;
  q.system = SystemParams{};  // n=8, r=16, m=1
  q.p_bit = 1e-12;
  return q;
}

TEST(CoverageAdvisor, BurstyModelPrefersConcentratedCoverage) {
  AdvisorQuery q = base_query();
  q.beta = 1;
  q.max_sectors = 3;
  q.correlated = true;
  q.b1 = 0.9;
  q.alpha = 1.0;  // heavy bursts
  const auto best = recommend_coverage(q);
  ASSERT_FALSE(best.empty());
  // §7.2.2: under bursty failures e = (s) dominates; the top pick must be a
  // single-element vector at the budget.
  EXPECT_EQ(best.size(), 1u);
  EXPECT_EQ(best[0], 3u);
}

TEST(CoverageAdvisor, IndependentModelPrefersSplitCoverage) {
  AdvisorQuery q = base_query();
  q.beta = 1;
  q.max_sectors = 3;
  q.correlated = false;
  q.p_bit = 1e-11;  // high enough that multi-chunk patterns matter
  const auto ranked = rank_coverage_vectors(q);
  ASSERT_FALSE(ranked.empty());
  // Under independent failures, the winner must spread coverage over more
  // than one chunk (§7.2.1: e = (1,2) beats (3)).
  EXPECT_GT(ranked.front().e.size(), 1u);
  // And specifically (1,2) must outrank (3).
  double mttdl_12 = 0, mttdl_3 = 0;
  for (const auto& c : ranked) {
    if (c.e == std::vector<std::size_t>{1, 2}) mttdl_12 = c.mttdl_hours;
    if (c.e == std::vector<std::size_t>{3}) mttdl_3 = c.mttdl_hours;
  }
  ASSERT_GT(mttdl_12, 0.0);
  ASSERT_GT(mttdl_3, 0.0);
  EXPECT_GT(mttdl_12, mttdl_3);
}

TEST(CoverageAdvisor, BurstConstraintIsHonored) {
  AdvisorQuery q = base_query();
  q.beta = 4;
  const auto ranked = rank_coverage_vectors(q);
  ASSERT_FALSE(ranked.empty());
  for (const auto& c : ranked) EXPECT_GE(c.e.back(), 4u);
}

TEST(CoverageAdvisor, BudgetIsHonored) {
  AdvisorQuery q = base_query();
  q.beta = 2;
  q.max_sectors = 4;
  for (const auto& c : rank_coverage_vectors(q)) EXPECT_LE(c.s, 4u);
}

TEST(CoverageAdvisor, RankingIsSortedByMttdl) {
  AdvisorQuery q = base_query();
  q.beta = 1;
  q.max_sectors = 4;
  const auto ranked = rank_coverage_vectors(q);
  ASSERT_GT(ranked.size(), 3u);
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_GE(ranked[i - 1].mttdl_hours, ranked[i].mttdl_hours);
}

TEST(CoverageAdvisor, ImpossibleQueriesReturnEmpty) {
  AdvisorQuery q = base_query();
  q.beta = q.system.r + 1;  // burst longer than a chunk
  EXPECT_TRUE(rank_coverage_vectors(q).empty());
  EXPECT_TRUE(recommend_coverage(q).empty());

  q = base_query();
  q.beta = 5;
  q.max_sectors = 4;  // budget below beta
  EXPECT_TRUE(rank_coverage_vectors(q).empty());
}

TEST(CoverageAdvisor, MoreBudgetNeverHurts) {
  AdvisorQuery small = base_query();
  small.beta = 1;
  small.max_sectors = 2;
  AdvisorQuery big = small;
  big.max_sectors = 5;
  const auto best_small = rank_coverage_vectors(small);
  const auto best_big = rank_coverage_vectors(big);
  ASSERT_FALSE(best_small.empty());
  ASSERT_FALSE(best_big.empty());
  EXPECT_GE(best_big.front().mttdl_hours, best_small.front().mttdl_hours);
}

}  // namespace
}  // namespace stair::reliability
