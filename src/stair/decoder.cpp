// Decoding (§4.2, §4.3).
//
// Practical decoding runs three phases:
//   A. Row-local repair: any stripe row with at most m lost symbols is
//      recovered with Crow alone (cheap, touches one row).
//   B. Upstairs pass: defer the m most-damaged chunks; the remaining damaged
//      chunks must fit the coverage vector e (sorted counts c_i <= e_{m'-k+i}).
//      Compute virtual symbols for intact columns, then alternate
//      augmented-row Crow decodes with Ccol chunk repairs, bottom-up.
//   C. The deferred chunks are recovered row by row with Crow.
//
// The paper places sector failures at chunk bottoms WLOG; this implementation
// handles arbitrary positions because Ccol decodes any r of its r + e_max
// codeword symbols.

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "stair/builders.h"
#include "stair/stair_code.h"

namespace stair::internal {

namespace {

struct Analysis {
  bool ok = false;
  std::vector<bool> after_a;                       // erasures left after phase A
  std::vector<std::vector<std::size_t>> row_fixes; // per row: cols repaired in A
  std::vector<std::size_t> deferred;               // chunks left to phase C
  std::vector<std::size_t> sector;                 // chunks for phase B, count asc
  std::vector<std::size_t> count;                  // remaining erasures per chunk
};

Analysis analyze(const StairCode& code, const std::vector<bool>& erased) {
  const StairConfig& cfg = code.config();
  const std::size_t n = cfg.n, r = cfg.r, m = cfg.m, mp = cfg.m_prime();
  if (erased.size() != r * n)
    throw std::invalid_argument("erasure mask must cover the r*n stored symbols");

  Analysis a;
  a.after_a = erased;
  a.row_fixes.resize(r);
  for (std::size_t i = 0; i < r; ++i) {
    std::vector<std::size_t> cols;
    for (std::size_t j = 0; j < n; ++j)
      if (erased[i * n + j]) cols.push_back(j);
    if (!cols.empty() && cols.size() <= m) {
      a.row_fixes[i] = cols;
      for (std::size_t j : cols) a.after_a[i * n + j] = false;
    }
  }

  a.count.assign(n, 0);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (a.after_a[i * n + j]) ++a.count[j];

  std::vector<std::size_t> failed;
  for (std::size_t j = 0; j < n; ++j)
    if (a.count[j] > 0) failed.push_back(j);
  // Defer the m chunks with the most losses (§4.3); the rest must fit e.
  std::stable_sort(failed.begin(), failed.end(),
                   [&](std::size_t x, std::size_t y) { return a.count[x] > a.count[y]; });
  const std::size_t defer = std::min(m, failed.size());
  a.deferred.assign(failed.begin(), failed.begin() + defer);
  a.sector.assign(failed.begin() + defer, failed.end());
  std::stable_sort(a.sector.begin(), a.sector.end(),
                   [&](std::size_t x, std::size_t y) { return a.count[x] < a.count[y]; });

  const std::size_t k = a.sector.size();
  if (k > mp) return a;  // ok = false
  for (std::size_t i = 0; i < k; ++i)
    if (a.count[a.sector[i]] > cfg.e[mp - k + i]) return a;
  a.ok = true;
  return a;
}

std::vector<std::size_t> iota_vec(std::size_t count, std::size_t start = 0) {
  std::vector<std::size_t> v(count);
  std::iota(v.begin(), v.end(), start);
  return v;
}

}  // namespace

bool pattern_recoverable(const StairCode& code, const std::vector<bool>& erased) {
  return analyze(code, erased).ok;
}

std::optional<Schedule> build_decode_schedule(const StairCode& code,
                                              const std::vector<bool>& erased) {
  const StairConfig& cfg = code.config();
  const StairLayout& layout = code.layout();
  const std::size_t n = cfg.n, r = cfg.r, m = cfg.m, mp = cfg.m_prime();

  const Analysis a = analyze(code, erased);
  if (!a.ok) return std::nullopt;

  Schedule sch(code.field());
  auto row_ops = [&](std::size_t row, std::span<const std::size_t> available,
                     std::span<const std::size_t> targets) {
    emit_recovery_ops(sch, code.crow(), available, targets,
                      [&](std::size_t col) { return layout.id(row, col); });
  };
  auto col_ops = [&](std::size_t col, std::span<const std::size_t> available,
                     std::span<const std::size_t> targets) {
    emit_recovery_ops(sch, code.ccol(), available, targets,
                      [&](std::size_t row) { return layout.id(row, col); });
  };

  // --- Phase A: row-local repairs -----------------------------------------
  for (std::size_t i = 0; i < r; ++i) {
    if (a.row_fixes[i].empty()) continue;
    std::vector<std::size_t> available;
    for (std::size_t j = 0; j < n && available.size() < n - m; ++j)
      if (!erased[i * n + j]) available.push_back(j);
    row_ops(i, available, a.row_fixes[i]);
  }

  const std::size_t k = a.sector.size();
  if (k == 0) return sch;  // phase A covered everything

  // --- Phase B: upstairs pass ----------------------------------------------
  const std::size_t hmax = a.count[a.sector.back()];

  // Virtual symbols of every intact column (data *and* row-parity chunks).
  std::vector<std::size_t> good_cols;
  for (std::size_t j = 0; j < n; ++j)
    if (a.count[j] == 0) good_cols.push_back(j);
  {
    const std::vector<std::size_t> col_rows = iota_vec(r);
    const std::vector<std::size_t> virt_rows = iota_vec(hmax, r);
    for (std::size_t j : good_cols) col_ops(j, col_rows, virt_rows);
  }

  std::vector<std::size_t> repaired;  // sector chunks recovered so far
  std::size_t decoded_h = 0;
  for (std::size_t idx = 0; idx < k; ++idx) {
    const std::size_t col = a.sector[idx];
    const std::size_t c = a.count[col];

    // Decode augmented rows up to this chunk's erasure count (§4.2.2).
    while (decoded_h < c) {
      const std::size_t h = decoded_h;
      std::vector<std::size_t> available = good_cols;
      available.insert(available.end(), repaired.begin(), repaired.end());
      for (std::size_t l = 0; l < mp && available.size() < n - m; ++l)
        if (cfg.e[l] > h) available.push_back(n + l);
      available.resize(n - m);
      std::vector<std::size_t> targets;
      for (std::size_t t = idx; t < k; ++t) targets.push_back(a.sector[t]);
      row_ops(r + h, available, targets);
      ++decoded_h;
    }

    // Repair the chunk: r knowns = its intact stored rows + the c decoded
    // virtual rows; targets = its erased rows + the virtual rows later
    // augmented-row decodes still need.
    std::vector<std::size_t> available;
    std::vector<std::size_t> targets;
    for (std::size_t i = 0; i < r; ++i)
      (a.after_a[i * n + col] ? targets : available).push_back(i);
    for (std::size_t h = 0; h < c; ++h) available.push_back(r + h);
    for (std::size_t h = c; h < hmax; ++h) targets.push_back(r + h);
    col_ops(col, available, targets);
    repaired.push_back(col);
  }

  // --- Phase C: deferred chunks, row by row ---------------------------------
  for (std::size_t i = 0; i < r; ++i) {
    std::vector<std::size_t> targets;
    for (std::size_t j : a.deferred)
      if (a.after_a[i * n + j]) targets.push_back(j);
    if (targets.empty()) continue;
    std::vector<std::size_t> available;
    for (std::size_t j = 0; j < n && available.size() < n - m; ++j) {
      const bool unknown = a.after_a[i * n + j] &&
                           std::find(a.deferred.begin(), a.deferred.end(), j) != a.deferred.end();
      if (!unknown) available.push_back(j);
    }
    row_ops(i, available, targets);
  }

  return sch;
}

}  // namespace stair::internal
