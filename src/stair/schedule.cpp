#include "stair/schedule.h"

#include <algorithm>
#include <cassert>

namespace stair {

std::size_t Schedule::mult_xor_count() const {
  std::size_t count = 0;
  for (const auto& op : ops_) count += op.terms.size();
  return count;
}

void Schedule::execute(std::span<const std::span<std::uint8_t>> symbols) const {
  execute_range(symbols, 0, ops_.empty() ? 0 : symbols[ops_.front().output].size());
}

void Schedule::execute_range(std::span<const std::span<std::uint8_t>> symbols,
                             std::size_t offset, std::size_t length) const {
  assert(offset % 64 == 0);
  if (length == 0) return;
  for (const auto& op : ops_) {
    assert(op.output < symbols.size());
    assert(symbols[op.output].size() >= offset + length);
    auto dst = symbols[op.output].subspan(offset, length);
    // The first surviving term overwrites dst (copy-mult) instead of the
    // historical zero-fill + XOR, saving one full pass over every output
    // region. Ops with no nonzero term — or a self-referencing one, whose
    // value depends on the zeroed output — keep the zero-fill order.
    std::size_t first = 0;
    bool self_ref = false;
    for (const auto& term : op.terms) {
      if (term.coeff != 0 && term.input == op.output) self_ref = true;
    }
    while (first < op.terms.size() && op.terms[first].coeff == 0) ++first;
    if (self_ref || first == op.terms.size()) {
      std::fill(dst.begin(), dst.end(), std::uint8_t{0});
      first = 0;
    } else {
      const auto& lead = op.terms[first];
      assert(lead.input < symbols.size());
      gf::mult_region(*field_, lead.coeff, symbols[lead.input].subspan(offset, length), dst);
      ++first;
    }
    for (std::size_t t = first; t < op.terms.size(); ++t) {
      const auto& term = op.terms[t];
      assert(term.input < symbols.size());
      gf::mult_xor_region(*field_, term.coeff, symbols[term.input].subspan(offset, length),
                          dst);
    }
  }
}

std::size_t Schedule::touched_symbol_count() const {
  std::vector<bool> seen;
  auto mark = [&seen](std::uint32_t id) {
    if (id >= seen.size()) seen.resize(id + 1, false);
    seen[id] = true;
  };
  for (const auto& op : ops_) {
    mark(op.output);
    for (const auto& t : op.terms) mark(t.input);
  }
  std::size_t count = 0;
  for (bool b : seen) count += b;
  return count;
}

Schedule Schedule::pruned_for(const std::vector<std::uint32_t>& wanted_outputs) const {
  // Reverse sweep: an op survives iff its output is needed; surviving ops
  // promote their inputs to needed.
  std::size_t max_id = 0;
  for (const auto& op : ops_) {
    max_id = std::max(max_id, static_cast<std::size_t>(op.output));
    for (const auto& t : op.terms) max_id = std::max(max_id, static_cast<std::size_t>(t.input));
  }
  for (std::uint32_t w : wanted_outputs) max_id = std::max(max_id, static_cast<std::size_t>(w));

  std::vector<bool> needed(max_id + 1, false);
  for (std::uint32_t w : wanted_outputs) needed[w] = true;

  std::vector<bool> keep(ops_.size(), false);
  for (std::size_t i = ops_.size(); i-- > 0;) {
    const auto& op = ops_[i];
    if (!needed[op.output]) continue;
    keep[i] = true;
    for (const auto& t : op.terms) needed[t.input] = true;
  }

  Schedule out(*field_);
  for (std::size_t i = 0; i < ops_.size(); ++i)
    if (keep[i]) out.add_op(ops_[i]);
  return out;
}

Schedule Schedule::optimized(const std::vector<bool>& zero_symbols) const {
  Schedule out(*field_);
  for (const auto& op : ops_) {
    ScheduleOp trimmed;
    trimmed.output = op.output;
    for (const auto& term : op.terms) {
      if (term.coeff == 0) continue;
      if (term.input < zero_symbols.size() && zero_symbols[term.input]) continue;
      trimmed.terms.push_back(term);
    }
    out.add_op(std::move(trimmed));
  }
  return out;
}

}  // namespace stair
