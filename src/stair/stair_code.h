// STAIR codes — the paper's contribution (Li & Lee, FAST'14).
//
// A StairCode ties together the two orthogonal systematic MDS codes of §3
// (Crow across stripe rows, Ccol down chunks), compiles the three encoding
// methods (standard §5.3, upstairs §5.1.1, downstairs §5.1.2) into replayable
// schedules, picks the cheapest automatically, and decodes any failure
// pattern inside the coverage defined by m and e via upstairs decoding
// (§4.2) with the practical row-local-first fast path (§4.3).
//
// Usage sketch:
//   StairCode code({.n = 8, .r = 16, .m = 2, .e = {1, 2}});
//   StripeBuffer stripe(code, /*symbol_size=*/4096);
//   stripe.set_data(my_bytes);
//   code.encode(stripe.view());
//   ... lose chunks/sectors, mark them in an erasure mask ...
//   bool ok = code.decode(stripe.view(), erased_mask);
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "rs/mds_code.h"
#include "stair/compiled_schedule.h"
#include "stair/schedule.h"
#include "stair/stair_layout.h"
#include "util/buffer.h"

namespace stair {

class Codec;
class DecodePlanCache;
class StairCode;

/// How parity symbols are computed (§5.3). kAuto picks the method with the
/// fewest Mult_XORs for this configuration, as the paper's implementation does.
enum class EncodingMethod { kStandard, kUpstairs, kDownstairs, kAuto };

/// How an operation's region work is executed — the one knob the unified
/// execution layer takes. Every encode/decode/execute/update entry point is
/// one implementation parameterized by this; the `*_parallel` names are thin
/// wrappers that pass sliced(threads).
///
///   serial()   — all region work on the calling thread (the default);
///   sliced(t)  — region work cut into cache-aware byte slices claimed by up
///                to t participants of the persistent pool (caller included);
///   pooled()   — sliced across the pool's full width.
struct ExecPolicy {
  enum class Mode : std::uint8_t { kSerial, kSliced };

  Mode mode = Mode::kSerial;
  std::size_t threads = 1;  // kSliced: max pool participants; 0 = pool width

  static constexpr ExecPolicy serial() { return {Mode::kSerial, 1}; }
  static constexpr ExecPolicy sliced(std::size_t threads) { return {Mode::kSliced, threads}; }
  static constexpr ExecPolicy pooled() { return {Mode::kSliced, 0}; }
};

/// Non-owning view of one stripe's symbol regions.
///
/// `stored[row * n + col]` is the symbol at stripe position (row, col); all
/// regions share `symbol_size` bytes. `outside_globals` (size s, (l, h)
/// order) is used only by codes in GlobalParityMode::kOutside.
struct StripeView {
  std::vector<std::span<std::uint8_t>> stored;
  std::vector<std::span<std::uint8_t>> outside_globals;
  std::size_t symbol_size = 0;
};

/// Reusable scratch for encode/decode calls. Optional — the calls allocate
/// internally when given none — but reusing one across calls avoids repeated
/// allocation on hot paths (all speed benchmarks do). Safe to carry across
/// calls with different symbol sizes and even different StairCode instances:
/// the scratch is re-established (fresh and zeroed) whenever the owning code
/// or the geometry changes, never silently reused (the fixed-zero scratch
/// regions of one code may be written intermediates of another).
///
/// Layouts: when a compiled replay runs in altmap (gf/region.h), the scratch
/// regions live in altmap permanently — they start zeroed (zero bytes are
/// layout-invariant) and every non-structural-zero scratch read is preceded
/// by a write in the same replay (the builders' single-writer property), so
/// no conversion is ever needed or performed on scratch. Only the
/// caller-owned stripe regions convert at the replay boundaries.
class Workspace {
 public:
  Workspace() = default;

 private:
  friend class Codec;
  friend struct CodecJob;
  friend class StairCode;
  AlignedBuffer scratch_;
  std::vector<std::span<std::uint8_t>> symbols_;
  // caller_owned_[id]: symbols_[id] is backed by the caller's stripe view
  // (not session scratch) — the set the altmap boundary conversion touches.
  std::vector<bool> caller_owned_;
  std::size_t scratch_symbols_ = 0, symbol_size_ = 0;
  // Identity of the code the scratch was prepared for. Two codes with equal
  // scratch footprints still must not share bytes, so reuse is keyed on the
  // instance — via its process-unique generation id, not its address, which
  // a successor code could reuse (stack/heap ABA). 0 = never prepared.
  std::uint64_t owner_uid_ = 0;
};

/// A STAIR erasure code instance. Immutable after construction except for
/// internal lazy caches, which are mutex-guarded: one instance can be shared
/// freely across encoder/decoder threads (the lock covers only lazy
/// construction and pointer reads, never region work).
class StairCode {
 public:
  /// Builds the code. `cfg` is validated; Crow is an (n + m', n - m) code and
  /// Ccol an (r + e_max, r) code of the given MDS kind over GF(2^cfg.w).
  explicit StairCode(StairConfig cfg,
                     GlobalParityMode mode = GlobalParityMode::kInside,
                     SystematicMdsCode::Kind kind = SystematicMdsCode::Kind::kCauchy);

  const StairConfig& config() const { return layout_.config(); }
  const StairLayout& layout() const { return layout_; }
  GlobalParityMode mode() const { return layout_.mode(); }
  const SystematicMdsCode& crow() const { return crow_; }
  const SystematicMdsCode& ccol() const { return ccol_; }
  const gf::Field& field() const { return crow_.field(); }

  /// Stored data symbols per stripe (excludes parities and inside globals).
  std::size_t data_symbol_count() const { return layout_.data_ids().size(); }
  /// Stored parity symbols per stripe: m*r row parities + s globals.
  std::size_t parity_symbol_count() const { return layout_.parity_ids().size(); }

  // --- encoding -------------------------------------------------------------

  /// The schedule for a concrete method (not kAuto); built lazily and cached.
  const Schedule& encoding_schedule(EncodingMethod method) const;

  /// The compiled (kernel-resolved, cache-blocked) form of a concrete
  /// method's schedule; built lazily and cached. encode() replays this.
  const CompiledSchedule& compiled_encoding_schedule(EncodingMethod method) const;

  /// Method kAuto resolves to: the fewest-Mult_XORs schedule (§5.3).
  EncodingMethod select_method() const;

  /// Mult_XOR count of a method's schedule — the Figure 9 metric. For
  /// kUpstairs/kDownstairs these equal Eqs. 5/6 exactly (tested).
  std::size_t mult_xor_count(EncodingMethod method) const;

  /// Computes all parity regions of the stripe from its data regions.
  /// `policy` selects the execution path (serial by default; see ExecPolicy).
  void encode(const StripeView& stripe, EncodingMethod method = EncodingMethod::kAuto,
              Workspace* ws = nullptr, ExecPolicy policy = ExecPolicy::serial()) const;

  /// encode() on up to `threads` pool participants (0 = pool width). Thin
  /// wrapper over encode() with ExecPolicy::sliced.
  void encode_parallel(const StripeView& stripe, std::size_t threads,
                       EncodingMethod method = EncodingMethod::kAuto,
                       Workspace* ws = nullptr) const {
    encode(stripe, method, ws, ExecPolicy::sliced(threads));
  }

  // --- decoding -------------------------------------------------------------

  /// Fast pattern check: is this set of lost stored symbols within the
  /// guaranteed coverage (m whole-or-partial chunks deferred to row decoding
  /// plus m' chunks fitting e)? `erased[row * n + col]`, size r*n.
  bool is_recoverable(const std::vector<bool>& erased) const;

  /// Compiles a decode schedule for the pattern, or nullopt if it is outside
  /// the coverage. Deterministic per pattern; callers replay it many times in
  /// benchmarks.
  std::optional<Schedule> build_decode_schedule(const std::vector<bool>& erased) const;

  /// Recovers all erased regions in place. Returns false (stripe untouched)
  /// if the pattern is outside the coverage. With a `cache`, the compiled
  /// plan for the mask is fetched from (or built into) it, so every decode
  /// after the first with a given mask skips both matrix inversion and
  /// kernel-table resolution — the failure-epoch replay path. `policy`
  /// selects the execution path for the region work.
  bool decode(const StripeView& stripe, const std::vector<bool>& erased,
              Workspace* ws = nullptr, DecodePlanCache* cache = nullptr,
              ExecPolicy policy = ExecPolicy::serial()) const;

  /// decode() with the region work spread over `threads` pool participants
  /// (0 = the default pool's full width). Thin wrapper over decode().
  bool decode_parallel(const StripeView& stripe, const std::vector<bool>& erased,
                       std::size_t threads, Workspace* ws = nullptr,
                       DecodePlanCache* cache = nullptr) const {
    return decode(stripe, erased, ws, cache, ExecPolicy::sliced(threads));
  }

  /// Degraded read: the minimal schedule recovering only the stored symbols
  /// listed in `wanted` (stored indices, row * n + col) under the erasure
  /// pattern `erased` — a backward slice of the full decode plan, so reading
  /// one lost sector does not pay for repairing the stripe. Other erased
  /// regions are left untouched (still invalid) after execution.
  std::optional<Schedule> build_degraded_read_schedule(
      const std::vector<bool>& erased, const std::vector<std::size_t>& wanted) const;

  // --- analysis --------------------------------------------------------------

  /// Generator coefficients: row t is parity_ids()[t] expressed over
  /// data_ids() (paper §5.2's uneven parity relations, used for the standard
  /// method, Figure 9's standard cost, and Figures 14-15's update penalty).
  const Matrix& coefficients() const;

  /// Executes `schedule` over this stripe via the uncompiled reference
  /// replay (advanced: one-shot plans, equivalence tests). Repeated replays
  /// should compile() once and use the CompiledSchedule overload. With a
  /// sliced policy, region operations — which are pointwise — are cut into
  /// cache-aware byte slices claimed by up to policy.threads participants of
  /// the persistent process pool (util/thread_pool.h): §6.2.1's "encoding
  /// can be parallelized with modern multi-core CPUs" without per-call
  /// thread spawns. Byte-identical across policies, and `ws` is reused
  /// identically (workers share the one symbol table; nothing is re-sliced
  /// per call).
  void execute(const Schedule& schedule, const StripeView& stripe,
               Workspace* ws = nullptr, ExecPolicy policy = ExecPolicy::serial()) const;

  /// Executes a pre-compiled schedule over this stripe — the hot path all
  /// encode/decode calls use. Byte-identical to the Schedule overload.
  /// Internally replays in the active backend's preferred region layout for
  /// the code's width (gf::preferred_layout — altmap for w = 16/32 on SIMD
  /// backends), converting the plan-referenced stripe regions exactly once
  /// at the call boundaries; caller buffers are always standard-layout
  /// outside a call, and the workspace scratch stays altmap forever.
  void execute(const CompiledSchedule& schedule, const StripeView& stripe,
               Workspace* ws = nullptr, ExecPolicy policy = ExecPolicy::serial()) const;

  /// Thin wrappers over execute() with ExecPolicy::sliced(threads).
  void execute_parallel(const Schedule& schedule, const StripeView& stripe,
                        std::size_t threads, Workspace* ws = nullptr) const {
    execute(schedule, stripe, ws, ExecPolicy::sliced(threads));
  }
  void execute_parallel(const CompiledSchedule& schedule, const StripeView& stripe,
                        std::size_t threads, Workspace* ws = nullptr) const {
    execute(schedule, stripe, ws, ExecPolicy::sliced(threads));
  }

 private:
  friend class Codec;  // the session layer drives prepare_workspace +
                       // execute_range directly for its submit pipeline

  void prepare_workspace(const StripeView& stripe, Workspace& ws) const;

  // The one execution engine behind every execute/encode/decode entry point:
  // prepares the workspace, then replays serially or pool-sliced per policy.
  template <typename Sched>
  void run_schedule(const Sched& schedule, const StripeView& stripe, Workspace* ws,
                    ExecPolicy policy, std::size_t touched) const;

  StairLayout layout_;
  SystematicMdsCode crow_, ccol_;
  // Process-unique instance id (monotone counter, assigned at construction);
  // what Workspace reuse is keyed on — see Workspace::owner_uid_.
  std::uint64_t uid_;

  // Guards the lazy caches below (build-once; the built objects themselves
  // are immutable and replayed lock-free). Recursive because the lazy
  // builders chain: standard schedule -> coefficients -> upstairs schedule.
  mutable std::recursive_mutex lazy_mu_;
  mutable std::unique_ptr<Schedule> standard_, upstairs_, downstairs_;
  mutable std::unique_ptr<CompiledSchedule> standard_c_, upstairs_c_, downstairs_c_;
  mutable std::unique_ptr<Matrix> coefficients_;
};

/// Owning stripe storage: allocates one aligned block for all r*n stored
/// symbols (plus the s outside globals when the code keeps them outside) and
/// exposes a StripeView plus flat-data import/export helpers.
class StripeBuffer {
 public:
  StripeBuffer(const StairCode& code, std::size_t symbol_size);

  const StripeView& view() const { return view_; }
  std::size_t symbol_size() const { return symbol_size_; }

  /// Region of the stored symbol at (row, col).
  std::span<std::uint8_t> symbol(std::size_t row, std::size_t col);
  std::span<const std::uint8_t> symbol(std::size_t row, std::size_t col) const;

  /// Total user-data bytes per stripe.
  std::size_t data_size() const;

  /// Copies `data` (exactly data_size() bytes) into the data positions in
  /// row-major order.
  void set_data(std::span<const std::uint8_t> data);

  /// Copies the data positions back out (exactly data_size() bytes).
  void get_data(std::span<std::uint8_t> out) const;

 private:
  const StairCode* code_;
  std::size_t symbol_size_;
  AlignedBuffer storage_;
  StripeView view_;
};

}  // namespace stair
