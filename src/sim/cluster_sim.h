// ClusterSim — discrete-event, trace-driven cluster simulator that closes
// the loop between the §7 analytic reliability pipeline and the real data
// path.
//
// A cluster is `arrays` identical STAIR arrays. Each array runs the renewal
// process the analytic model describes — exponential device failures at
// 1/mttf per device, a critical-mode race between a bandwidth-capped rebuild
// and a second failure, and a latent-sector check when the rebuild lands —
// except nothing here is a closed form: failures are *drawn*, rebuilds take
// device_bytes / (their current share of the cluster repair cap), latent
// sector errors age since the array's last scrub pass (per-array phase
// offsets, period from sim::effective_scrub_period) and are sampled per
// stripe through the same FailureInjector the §7.1.2 models parameterize,
// with loss decided by StairCode::is_recoverable on the drawn mask. The
// simulator therefore measures what the model predicts:
//
//   * delivered durability — loss events per user-PB-year, compared against
//     predict_reliability's renewal MTTDL with an explicit poisson_band;
//   * repair-traffic amplification — bytes moved per byte re-protected,
//     under a cluster-wide repair-bandwidth cap shared by every concurrently
//     rebuilding array (processor sharing: k rebuilds each get cap / k);
//   * foreground tail latency during failure storms — measured on the real
//     IoPipeline::read_range path while a real Scrubber rebuild runs
//     (ValidationMode::kDataPath), calm vs storm.
//
// Determinism and replay: every stochastic draw flows from the config seed
// through one master Rng in event order, so a run is bit-reproducible — the
// formatted event trace of two runs with the same seed compares equal. Each
// rebuild completion additionally draws a child seed for its sector
// sampling and records it in any LossEvent it produces, so a single loss
// can be replayed in isolation (replay_loss) and reproduces the exact
// stripe and erasure mask without re-running the cluster.
//
// Trace-driven: injected_failures merges deterministic device failures into
// the event stream at fixed times — the tool for repair-cap tests (three
// simultaneous failures must finish in ~3x the solo rebuild time under fair
// sharing) and storm reproductions.
//
// Data-path validation (kDataPath): the first max_validated_events loss
// events are replayed onto a real on-disk StripeStore — encode_file, sector
// corruption at the manifest's exact on-disk offsets, device-file deletion,
// a real Scrubber rebuild paced by SharedBandwidth — checking that coverage
// verdicts and the production repair path agree end to end (a mask
// is_recoverable called lost must fail there too, and its recoverable
// sibling must repair byte-exactly).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "reliability/prediction.h"
#include "sim/failure_injector.h"
#include "stair/stair_code.h"

namespace stair::sim {

inline constexpr std::size_t kNoDevice = static_cast<std::size_t>(-1);

/// A deterministic device failure merged into the event stream at a fixed
/// time. device = kNoDevice draws the device from the master Rng.
struct InjectedFailure {
  double time_hours = 0.0;
  std::size_t array = 0;
  std::size_t device = kNoDevice;
};

/// How loss events are validated against the real data path.
enum class ValidationMode {
  kCoverage,  ///< coverage-check only (pure DES; fast)
  kDataPath,  ///< replay bounded loss events onto a real on-disk StripeStore
};

struct ClusterConfig {
  /// Arrays in the cluster; all share the code and the repair cap.
  std::size_t arrays = 32;
  /// The code under study. The analytic comparison needs m = 1 (§7's Markov
  /// restriction); the simulator itself runs any valid config.
  StairConfig code;
  /// Stripes per array — with `code`, fixes the (simulated) sector size:
  /// device_bytes / (stripes_per_array * r).
  std::size_t stripes_per_array = 128;
  /// Bytes per device (small values inflate nothing — they just shrink
  /// rebuild time; what matters for the analytics is rebuild_hours).
  double device_bytes = 64.0 * 1024 * 1024;
  double mttf_hours = 500000.0;  ///< per-device MTTF (1 / lambda)

  /// Solo rebuild speed of one array (MB/s of rebuilt device bytes).
  double repair_mbps_per_array = 64.0;
  /// Cluster-wide repair-bandwidth cap shared by all concurrently
  /// rebuilding arrays (processor sharing). <= 0 = uncapped.
  double repair_cap_mbps = 0.0;

  /// Requested scrub period; run through effective_scrub_period with
  /// scrub_scan_mbps before use, so "0 = continuous" and "shorter than one
  /// pass" both behave. < 0 disables scrubbing entirely.
  double scrub_period_hours = 7.0 * 24.0;
  /// Per-array scrub scan bandwidth (MB/s over n * device_bytes). <= 0 =
  /// unbounded (a pass is instantaneous).
  double scrub_scan_mbps = 0.0;

  /// Latent-sector-error model. Rate mode: errors arrive per sector at
  /// latent_error_rate_per_hour and age since the array's last scrub pass or
  /// rebuild; the analytic counterpart is scrubbed_p_sec(rate, period).
  /// Fixed mode (fixed_p_sec >= 0): every rebuild completion sees exactly
  /// this per-sector probability — the models' direct input, for tight
  /// agreement tests.
  double latent_error_rate_per_hour = 0.0;
  double fixed_p_sec = -1.0;
  /// Sector-failure shape (§7.1.2): independent or correlated bursts.
  SectorModel sector_model = SectorModel::kIndependent;
  double b1 = 0.98;
  double alpha = 1.79;

  double sim_hours = 24.0 * 365.0;
  std::uint64_t seed = 1;
  std::vector<InjectedFailure> injected_failures;

  ValidationMode validation = ValidationMode::kCoverage;
  /// Loss events replayed on the real data path in kDataPath mode.
  std::size_t max_validated_events = 2;
  /// Geometry of the validation store (kept small: validation replays the
  /// *mask*, not the simulated array size).
  std::size_t validation_stripes = 4;
  std::size_t validation_symbol_bytes = 4096;

  /// Record the formatted event trace (the bit-identical replay artifact).
  bool record_trace = true;
  std::size_t trace_limit = 65536;
};

enum class LossKind {
  kDeviceOverflow,  ///< second device failure mid-rebuild (m = 1 exceeded)
  kSectorLoss,      ///< latent sectors outside the coverage at rebuild end
};

/// One data-loss event, carrying everything needed to replay it.
struct LossEvent {
  double time_hours = 0.0;
  std::size_t array = 0;
  LossKind kind = LossKind::kDeviceOverflow;
  std::vector<std::size_t> failed_devices;  ///< 1 entry (sector) or 2 (overflow)
  std::uint64_t episode_seed = 0;  ///< child seed of the sector draw
  double p_latent = 0.0;           ///< effective p_sec at the draw
  std::size_t stripe = kNoDevice;  ///< first unrecoverable stripe (sector loss)
  std::vector<bool> mask;          ///< its stored mask (row * n + col)
};

/// A drawn critical-mode loss: the first unrecoverable stripe and its mask.
struct CriticalLoss {
  std::size_t stripe = 0;
  std::vector<bool> mask;
};

/// Aggregates of the real-data-path validation pass (kDataPath only).
struct ValidationStats {
  std::size_t events_checked = 0;
  /// Real-path verdict disagreed with the coverage verdict: the production
  /// Scrubber recovered a mask is_recoverable called lost, failed one it
  /// called recoverable, or the recoverable sibling decode was not
  /// byte-exact. 0 is the pass criterion.
  std::size_t mismatches = 0;
  std::size_t sectors_repaired = 0;  ///< across the recoverable replays
  double rebuild_mbps = 0.0;         ///< measured real-rebuild throughput
  /// read_range latency percentiles, quiet store vs during a real rebuild.
  double calm_p50_ms = 0.0, calm_p99_ms = 0.0;
  double storm_p50_ms = 0.0, storm_p99_ms = 0.0;
  std::size_t calm_samples = 0, storm_samples = 0;
  std::string error;  ///< first validation-harness failure (empty when clean)

  /// Raw probe samples (validate_on_data_path appends; finalize() collapses
  /// them into the percentile fields above).
  std::vector<double> calm_ms, storm_ms;
  void finalize();
};

struct ClusterReport {
  // Measured.
  double sim_hours = 0.0;
  std::size_t device_failures = 0;
  std::size_t rebuilds_completed = 0;
  std::size_t loss_events = 0;
  std::size_t device_overflow_losses = 0;
  std::size_t sector_losses = 0;
  double user_pb_years = 0.0;       ///< exposure: arrays * user PB * years
  double losses_per_pb_year = 0.0;  ///< headline delivered durability
  double repair_traffic_bytes = 0.0;
  double rebuilt_bytes = 0.0;
  double repair_amplification = 0.0;  ///< traffic / re-protected bytes (~n)
  double scrub_bytes = 0.0;
  double scrub_passes = 0.0;
  std::size_t max_concurrent_rebuilds = 0;
  double max_aggregate_repair_mbps = 0.0;
  double effective_scrub_period_hours = 0.0;

  // Analytic comparison.
  reliability::ReliabilityPrediction prediction;
  reliability::AgreementBand band;  ///< on the loss-event count
  bool within_band = false;

  // Validation (kDataPath).
  ValidationStats validation;

  // Replay artifacts.
  std::uint64_t seed = 0;
  std::vector<LossEvent> losses;
  std::vector<std::string> trace;
};

class ClusterSim {
 public:
  explicit ClusterSim(ClusterConfig config);

  /// Runs the full simulation (and, in kDataPath mode, the bounded
  /// validation replays). Deterministic for a given config.
  ClusterReport run();

  const ClusterConfig& config() const { return config_; }

  /// The analytic query this cluster corresponds to: rebuild_hours from the
  /// solo repair bandwidth, sector_bytes from the stripe geometry, p_sec
  /// from the scrub policy (rate mode) or fixed_p_sec.
  reliability::PredictionQuery prediction_query() const;

  /// The critical-mode sector draw shared by run() and replay: walks
  /// `stripes` stripes of masks from a FailureInjector seeded with `seed`
  /// (p_sec = p_latent), returning the first stripe whose mask falls outside
  /// `code`'s coverage, or nullopt when the array survives. Bit-exact for a
  /// given (code, stripes, params, failed, seed).
  static std::optional<CriticalLoss> sample_critical_loss(
      const StairCode& code, std::size_t stripes, InjectorParams sector,
      const std::vector<std::size_t>& failed_devices, std::uint64_t seed);

  /// Replays one recorded loss event from its child seed alone; the result
  /// reproduces event.stripe / event.mask exactly (the seeded-replay
  /// regression contract). Overflow events return nullopt (no mask).
  std::optional<CriticalLoss> replay_loss(const LossEvent& event) const;

  /// Replays `event` onto a real on-disk StripeStore and checks the
  /// production repair path against the coverage verdict; folds latency and
  /// mismatch counts into `stats`. Exposed so tests can validate crafted
  /// events without a full run. `scratch_dir` empty = std::filesystem's
  /// temp directory.
  void validate_on_data_path(const LossEvent& event, ValidationStats& stats,
                             const std::string& scratch_dir = "") const;

 private:
  ClusterConfig config_;
};

}  // namespace stair::sim
