#include "stair/stair_config.h"

#include <numeric>
#include <sstream>
#include <stdexcept>

namespace stair {

std::size_t StairConfig::s() const {
  return std::accumulate(e.begin(), e.end(), std::size_t{0});
}

double StairConfig::storage_efficiency() const {
  return static_cast<double>(r * (n - m) - s()) / static_cast<double>(r * n);
}

double StairConfig::devices_saved() const {
  return static_cast<double>(m_prime()) - static_cast<double>(s()) / static_cast<double>(r);
}

int StairConfig::minimum_w() const {
  for (int cand : {4, 8, 16, 32}) {
    const std::size_t order = std::size_t{1} << cand;
    if (n + m_prime() <= order && r + e_max() <= order) return cand;
  }
  throw std::invalid_argument("StairConfig: no supported word size fits n + m' and r + e_max");
}

void StairConfig::validate() const {
  auto fail = [](const std::string& msg) { throw std::invalid_argument("StairConfig: " + msg); };
  if (n < 2) fail("need at least 2 chunks per stripe");
  if (r < 1) fail("need at least 1 symbol per chunk");
  if (m >= n) fail("m must be smaller than n");
  if (e.empty()) fail("coverage vector e must be non-empty (use plain RS for s = 0)");
  for (std::size_t i = 0; i < e.size(); ++i) {
    if (e[i] == 0) fail("coverage entries must be positive");
    if (i > 0 && e[i] < e[i - 1]) fail("coverage vector e must be sorted ascending");
  }
  if (e.back() > r) fail("e_max cannot exceed r");
  if (m_prime() > n - m) fail("m' cannot exceed n - m");
  if (s() >= r * (n - m)) fail("coverage consumes the entire data area");
  if (w != 4 && w != 8 && w != 16 && w != 32) fail("w must be one of {4, 8, 16, 32}");
  const std::size_t order = std::size_t{1} << w;
  if (n + m_prime() > order) fail("n + m' exceeds 2^w; raise w");
  if (r + e_max() > order) fail("r + e_max exceeds 2^w; raise w");
}

std::string StairConfig::to_string() const {
  std::ostringstream os;
  os << "STAIR(n=" << n << ", r=" << r << ", m=" << m << ", e=(";
  for (std::size_t i = 0; i < e.size(); ++i) {
    if (i) os << ",";
    os << e[i];
  }
  os << "))";
  return os.str();
}

namespace {

void enumerate_rec(std::size_t remaining, std::size_t min_entry, std::size_t max_entry,
                   std::size_t slots_left, std::vector<std::size_t>& prefix,
                   std::vector<std::vector<std::size_t>>& out) {
  if (remaining == 0) {
    if (!prefix.empty()) out.push_back(prefix);
    return;
  }
  if (slots_left == 0) return;
  for (std::size_t v = min_entry; v <= std::min(remaining, max_entry); ++v) {
    prefix.push_back(v);
    enumerate_rec(remaining - v, v, max_entry, slots_left - 1, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

std::vector<std::vector<std::size_t>> enumerate_coverage_vectors(
    std::size_t s, std::size_t max_entry, std::size_t max_m_prime) {
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> prefix;
  enumerate_rec(s, 1, max_entry, max_m_prime, prefix, out);
  return out;
}

}  // namespace stair
