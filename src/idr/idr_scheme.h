// Intra-device redundancy (IDR) [Dholakia et al., ToS'08] — the space-saving
// comparator of §2.
//
// IDR reserves the last `eps` sectors of every data chunk for an inner
// systematic (r, r - eps) code computed within the chunk, on top of an outer
// RAID layer of m parity disks. It tolerates m device failures plus up to
// eps sector failures in *every* surviving chunk — the coverage STAIR
// matches with e = (eps, ..., eps) at a fraction of the redundancy when the
// full vector is unnecessary.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "rs/mds_code.h"

namespace stair {

/// IDR parameters.
struct IdrConfig {
  std::size_t n = 0;    ///< devices per stripe
  std::size_t r = 0;    ///< sectors per chunk
  std::size_t m = 0;    ///< outer parity devices
  std::size_t eps = 0;  ///< redundant sectors per data chunk
  int w = 8;

  void validate() const;

  /// Redundant sectors per stripe: m*r outer + eps*(n - m) inner.
  std::size_t redundancy() const { return m * r + eps * (n - m); }
  std::size_t data_symbols() const { return (r - eps) * (n - m); }
};

/// The IDR scheme over an r x n stripe (row-major symbol index = row*n + col).
/// Data occupies the first r - eps rows of the n - m data chunks; the inner
/// parities fill the chunk bottoms and the outer parities the m last chunks.
class IdrScheme {
 public:
  explicit IdrScheme(IdrConfig cfg);

  const IdrConfig& config() const { return cfg_; }

  /// Fills inner chunk parities then outer device parities.
  void encode(std::span<const std::span<std::uint8_t>> symbols) const;

  /// Recovers erased symbols if the pattern is within coverage: after inner
  /// repair (<= eps losses per surviving chunk), at most m chunks may remain
  /// damaged. Returns false otherwise.
  bool decode(std::span<const std::span<std::uint8_t>> symbols,
              const std::vector<bool>& erased) const;

  /// Pattern-only coverage check mirroring decode().
  bool is_recoverable(const std::vector<bool>& erased) const;

 private:
  IdrConfig cfg_;
  SystematicMdsCode inner_;  // (r, r - eps) down each chunk
  SystematicMdsCode outer_;  // (n, n - m) across each row
};

}  // namespace stair
