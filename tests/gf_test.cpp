// Galois-field unit and property tests: field axioms, table consistency,
// and region-kernel equivalence with scalar arithmetic, across word sizes.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gf/gf.h"
#include "gf/region.h"
#include "util/buffer.h"
#include "util/rng.h"

namespace stair::gf {
namespace {

class FieldTest : public ::testing::TestWithParam<int> {
 protected:
  const Field& f() const { return field(GetParam()); }

  // A spread of interesting elements: small values, the top of the range,
  // and seeded random samples.
  std::vector<std::uint32_t> sample_elements(std::size_t extra = 24) const {
    const std::uint32_t top = f().max_element();
    std::vector<std::uint32_t> v{0, 1, 2, 3, top, static_cast<std::uint32_t>(top - 1)};
    Rng rng(42 + GetParam());
    for (std::size_t i = 0; i < extra; ++i)
      v.push_back(static_cast<std::uint32_t>(rng.next_u64() & top));
    return v;
  }
};

TEST_P(FieldTest, MultiplicativeIdentityAndZero) {
  for (std::uint32_t a : sample_elements()) {
    EXPECT_EQ(f().mul(a, 1), a);
    EXPECT_EQ(f().mul(1, a), a);
    EXPECT_EQ(f().mul(a, 0), 0u);
    EXPECT_EQ(f().mul(0, a), 0u);
  }
}

TEST_P(FieldTest, MultiplicationCommutes) {
  const auto elems = sample_elements();
  for (std::uint32_t a : elems)
    for (std::uint32_t b : elems) EXPECT_EQ(f().mul(a, b), f().mul(b, a));
}

TEST_P(FieldTest, MultiplicationAssociates) {
  const auto elems = sample_elements(8);
  for (std::uint32_t a : elems)
    for (std::uint32_t b : elems)
      for (std::uint32_t c : elems)
        EXPECT_EQ(f().mul(f().mul(a, b), c), f().mul(a, f().mul(b, c)));
}

TEST_P(FieldTest, DistributesOverAddition) {
  const auto elems = sample_elements(8);
  for (std::uint32_t a : elems)
    for (std::uint32_t b : elems)
      for (std::uint32_t c : elems)
        EXPECT_EQ(f().mul(a, Field::add(b, c)),
                  Field::add(f().mul(a, b), f().mul(a, c)));
}

TEST_P(FieldTest, InverseRoundTrips) {
  for (std::uint32_t a : sample_elements()) {
    if (a == 0) continue;
    EXPECT_EQ(f().mul(a, f().inv(a)), 1u) << "a=" << a;
  }
}

TEST_P(FieldTest, DivisionInvertsMultiplication) {
  const auto elems = sample_elements();
  for (std::uint32_t a : elems)
    for (std::uint32_t b : elems) {
      if (b == 0) continue;
      EXPECT_EQ(f().div(f().mul(a, b), b), a);
    }
}

TEST_P(FieldTest, ExpLogConsistent) {
  if (GetParam() > 16) GTEST_SKIP() << "log for w=32 is test-only and slow";
  for (std::uint32_t a : sample_elements()) {
    if (a == 0) continue;
    EXPECT_EQ(f().exp(f().log(a)), a);
  }
}

TEST_P(FieldTest, PowMatchesRepeatedMultiplication) {
  for (std::uint32_t a : sample_elements(6)) {
    std::uint32_t acc = 1;
    for (std::uint64_t e = 0; e < 8; ++e) {
      EXPECT_EQ(f().pow(a, e), acc);
      acc = f().mul(acc, a);
    }
  }
}

TEST_P(FieldTest, PrimitiveElementGeneratesGroup) {
  if (GetParam() > 8) GTEST_SKIP() << "full group walk only for small fields";
  std::vector<bool> seen(f().order(), false);
  std::uint32_t x = 1;
  for (std::uint64_t i = 0; i < f().order() - 1; ++i) {
    EXPECT_FALSE(seen[x]) << "cycle shorter than group order at step " << i;
    seen[x] = true;
    x = f().mul(x, 2);
  }
  EXPECT_EQ(x, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllWordSizes, FieldTest, ::testing::Values(4, 8, 16, 32),
                         [](const auto& info) { return "w" + std::to_string(info.param); });

// ---------------------------------------------------------------------------
// Region kernels
// ---------------------------------------------------------------------------

class RegionTest : public ::testing::TestWithParam<int> {
 protected:
  const Field& f() const { return field(GetParam()); }
  std::size_t symbol_bytes() const { return GetParam() >= 8 ? GetParam() / 8 : 1; }

  // Scalar reference: interpret regions as packed words and multiply each.
  void reference_mult_xor(std::uint32_t a, std::span<const std::uint8_t> src,
                          std::span<std::uint8_t> dst) const {
    const int w = GetParam();
    if (w == 4) {
      for (std::size_t i = 0; i < src.size(); ++i) {
        const std::uint32_t lo = f().mul(a, src[i] & 0xf);
        const std::uint32_t hi = f().mul(a, src[i] >> 4);
        dst[i] ^= static_cast<std::uint8_t>(lo | (hi << 4));
      }
      return;
    }
    const std::size_t bytes = symbol_bytes();
    for (std::size_t i = 0; i < src.size(); i += bytes) {
      std::uint32_t x = 0, d = 0;
      std::memcpy(&x, src.data() + i, bytes);
      std::memcpy(&d, dst.data() + i, bytes);
      d ^= f().mul(a, x);
      std::memcpy(dst.data() + i, &d, bytes);
    }
  }
};

TEST_P(RegionTest, MultXorMatchesScalarReference) {
  Rng rng(7 + GetParam());
  // Sizes chosen to cross the 16-byte SIMD boundary and exercise tails.
  for (std::size_t size : {std::size_t{16}, std::size_t{64}, std::size_t{100},
                           std::size_t{1000}, std::size_t{4096}}) {
    if (size % symbol_bytes() != 0) continue;
    AlignedBuffer src(size), dst(size), ref(size);
    rng.fill(src.span());
    rng.fill(dst.span());
    std::memcpy(ref.data(), dst.data(), size);

    for (std::uint32_t a :
         {std::uint32_t{0}, std::uint32_t{1}, std::uint32_t{2}, std::uint32_t{7},
          f().max_element(),
          static_cast<std::uint32_t>(rng.next_u64() & f().max_element())}) {
      mult_xor_region(f(), a, src.span(), dst.span());
      reference_mult_xor(a, src.span(), ref.span());
      ASSERT_EQ(std::memcmp(dst.data(), ref.data(), size), 0)
          << "w=" << GetParam() << " a=" << a << " size=" << size;
    }
  }
}

TEST_P(RegionTest, MultXorUnalignedOffsetsMatch) {
  Rng rng(11 + GetParam());
  const std::size_t bytes = symbol_bytes();
  AlignedBuffer src(512 + 64), dst(512 + 64), ref(512 + 64);
  rng.fill(src.span());
  rng.fill(dst.span());
  std::memcpy(ref.data(), dst.data(), ref.size());

  for (std::size_t offset : {bytes, 3 * bytes, 7 * bytes}) {
    const std::size_t len = 512 - offset - (512 - offset) % bytes;
    const std::uint32_t a = 1 + static_cast<std::uint32_t>(
                                    rng.next_below(f().max_element()));
    mult_xor_region(f(), a, src.region(offset, len), dst.region(offset, len));
    reference_mult_xor(a, src.region(offset, len), ref.region(offset, len));
    ASSERT_EQ(std::memcmp(dst.data(), ref.data(), dst.size()), 0) << "offset=" << offset;
  }
}

TEST_P(RegionTest, MultRegionOverwritesAndInPlaceWorks) {
  Rng rng(13 + GetParam());
  const std::size_t size = 256;
  AlignedBuffer src(size), dst(size), inplace(size);
  rng.fill(src.span());
  rng.fill(dst.span());  // pre-existing garbage must be ignored
  std::memcpy(inplace.data(), src.data(), size);

  const std::uint32_t a = 3 & f().max_element() ? 3 : 2;
  mult_region(f(), a, src.span(), dst.span());
  mult_region(f(), a, inplace.span(), inplace.span());
  ASSERT_EQ(std::memcmp(dst.data(), inplace.data(), size), 0);

  // dst == a * src symbol-wise, via the xor kernel as a cross-check.
  AlignedBuffer check(size);
  mult_xor_region(f(), a, src.span(), check.span());
  ASSERT_EQ(std::memcmp(dst.data(), check.data(), size), 0);
}

TEST_P(RegionTest, XorRegionIsAddition) {
  Rng rng(17);
  AlignedBuffer a(333), b(333), expect(333);
  rng.fill(a.span());
  rng.fill(b.span());
  for (std::size_t i = 0; i < a.size(); ++i) expect[i] = a[i] ^ b[i];
  xor_region(a.span(), b.span());
  ASSERT_EQ(std::memcmp(b.data(), expect.data(), b.size()), 0);
}

TEST_P(RegionTest, MultXorByZeroAndOneShortcuts) {
  Rng rng(19);
  AlignedBuffer src(128), dst(128), orig(128);
  rng.fill(src.span());
  rng.fill(dst.span());
  std::memcpy(orig.data(), dst.data(), 128);

  mult_xor_region(f(), 0, src.span(), dst.span());
  ASSERT_EQ(std::memcmp(dst.data(), orig.data(), 128), 0) << "a=0 must be a no-op";

  mult_xor_region(f(), 1, src.span(), dst.span());
  for (std::size_t i = 0; i < 128; ++i) ASSERT_EQ(dst[i], orig[i] ^ src[i]);
}

INSTANTIATE_TEST_SUITE_P(AllWordSizes, RegionTest, ::testing::Values(4, 8, 16, 32),
                         [](const auto& info) { return "w" + std::to_string(info.param); });

}  // namespace
}  // namespace stair::gf
