// Ablation A3 (§4.3): the practical row-local-first decode path. Compares,
// at equal lost-symbol counts, patterns the row-local phase can absorb
// (failures spread over rows, <= m per row) against patterns that force the
// global upstairs pass (failures stacked beyond row capacity), in both
// schedule cost (Mult_XORs) and measured MB/s.
//
// Expected: row-local repair is several times cheaper per lost symbol — the
// reason §4.3 recovers locally whenever possible.

#include <iostream>

#include "bench_util.h"

using namespace stair;
using namespace stair::bench;

namespace {

constexpr std::size_t kStripeBytes = 32u << 20;

struct Probe {
  std::string label;
  std::vector<bool> mask;
};

void run(const StairCode& code, const Probe& probe, TablePrinter& table) {
  const StairConfig& cfg = code.config();
  auto schedule = code.build_decode_schedule(probe.mask);
  if (!schedule) {
    table.add_row({probe.label, "-", "-", "-"});
    return;
  }
  const std::size_t symbol = symbol_size_for_stripe(kStripeBytes, cfg.n, cfg.r);
  StripeBuffer stripe = make_encoded_stripe(code, symbol);
  const CompiledSchedule plan(*schedule);  // compile once, replay many times
  Workspace ws;
  const double mbps = measure_mbps(
      [&] { code.execute(plan, stripe.view(), &ws); }, symbol * cfg.n * cfg.r);
  std::size_t losses = 0;
  for (bool b : probe.mask) losses += b;
  table.add_row({probe.label, std::to_string(losses),
                 std::to_string(schedule->mult_xor_count()), format_sig(mbps, 4)});
}

}  // namespace

int main() {
  const StairConfig cfg{.n = 16, .r = 16, .m = 2, .e = {1, 1, 2}};
  const StairCode code(cfg);
  std::cout << "=== Ablation: row-local repair (§4.3) vs the global upstairs pass ===\n"
            << cfg.to_string() << ", 32 MB stripes\n\n";

  TablePrinter table("decode cost by failure placement");
  table.set_header({"pattern", "lost symbols", "Mult_XORs", "MB/s"});

  // 4 sectors over 4 distinct rows, one per row: all row-local.
  Probe spread{"4 sectors, 1 per row (row-local)", std::vector<bool>(cfg.n * cfg.r, false)};
  for (std::size_t i = 0; i < 4; ++i) spread.mask[i * cfg.n + (i % 4)] = true;
  run(code, spread, table);

  // 4 sectors as 2-per-row over 2 rows: still row-local (m = 2).
  Probe pairs{"4 sectors, 2 per row (row-local)", std::vector<bool>(cfg.n * cfg.r, false)};
  for (std::size_t i = 0; i < 2; ++i) {
    pairs.mask[i * cfg.n + 0] = true;
    pairs.mask[i * cfg.n + 5] = true;
  }
  run(code, pairs, table);

  // Same count packed into one row across 4 chunks (> m per row): the fit
  // is exactly e = (1,1,2) with a deferred chunk, forcing the upstairs pass.
  Probe stacked{"4 sectors in one row (global)", std::vector<bool>(cfg.n * cfg.r, false)};
  for (std::size_t j : {2, 5, 7, 9}) stacked.mask[15 * cfg.n + j] = true;
  run(code, stacked, table);

  // Worst case: both parity chunks dead + the full stair.
  Probe worst{"m chunks + full stair (worst case)", std::vector<bool>(cfg.n * cfg.r, false)};
  for (std::size_t d = 0; d < cfg.m; ++d)
    for (std::size_t i = 0; i < cfg.r; ++i) worst.mask[i * cfg.n + d] = true;
  for (std::size_t l = 0; l < cfg.m_prime(); ++l)
    for (std::size_t q = 0; q < cfg.e[l]; ++q)
      worst.mask[(cfg.r - 1 - q) * cfg.n + cfg.m + l] = true;
  run(code, worst, table);

  table.print(std::cout);

  std::cout << "Shape check: equal-loss row-local patterns decode with far fewer\n"
               "Mult_XORs and far higher MB/s than patterns forcing the global pass.\n";
  return 0;
}
