// Runtime-dispatched region kernels and the compiled-kernel cache.
//
// The paper's throughput results rest entirely on the cost of the Mult_XOR
// region primitive (§5.3, after [Plank FAST'13]). This module turns that
// primitive into a subsystem:
//
//  * Backend dispatch. The region kernels exist in five builds — scalar,
//    SSSE3 (pshufb, 16 B/iter), AVX2 (vpshufb, 32 B/iter), GFNI
//    (gf2p8affineqb over AVX2 widths) and AVX-512 (zmm vpshufb at
//    64 B/iter, upgrading to vgf2p8affineqb when the CPU also has GFNI) —
//    all compiled into one binary (each in its own translation unit with
//    its own ISA flags) and selected once at startup via CPUID.
//    `force_backend()` or the STAIR_GF_BACKEND environment variable
//    (scalar | ssse3 | avx2 | gfni | avx512) override the choice for
//    testing and benchmarking.
//
//  * Layout dispatch. Each backend's function table is indexed by
//    (RegionLayout, word size): the standard little-endian kernels, the
//    altmap (planar 64-byte-block) kernels that lift w = 16/32 to the full
//    SIMD split-table / composed-affine paths, and the to/from-altmap
//    conversion kernels. See gf/region.h for the layout spec.
//
//  * CompiledKernel. Multiplying a region by a constant `a` needs split
//    product tables derived from `a`. The seed rebuilt them on every call;
//    a CompiledKernel builds them once, and `compiled_kernel(f, a)` caches
//    kernels per (field, coefficient) so schedule replay pays zero table
//    construction. Tables are backend- and layout-independent, so kernels
//    stay valid across force_backend() / force_layout() switches.
//
// All backends produce bit-identical results in both layouts; tests
// cross-check every backend against scalar GF arithmetic for every word
// size and layout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gf/gf.h"
#include "gf/region.h"

namespace stair::gf {

/// Kernel instruction-set backends, in ascending capability order. kGfni is
/// AVX2-width with GF2P8AFFINEQB: one instruction per 32 bytes for the
/// byte-linear widths (w = 4/8), and a (w/8 x w/8) grid of composed affine
/// ops per altmap block for w = 16/32. kAvx512 runs the same algorithms at
/// zmm width (64 B/iter; requires AVX512F+BW+VL) and picks per process
/// between a pure-vpshufb kernel set and the composed-affine set when the
/// CPU also reports GFNI — so it covers both Skylake-SP-era parts (AVX-512
/// without GFNI) and Ice-Lake-and-later ones.
enum class Backend { kScalar = 0, kSsse3 = 1, kAvx2 = 2, kGfni = 3, kAvx512 = 4 };

/// "scalar" / "ssse3" / "avx2" / "gfni" / "avx512".
const char* backend_name(Backend b);

/// True if this binary contains kernels for `b` (compile-time property).
bool backend_compiled(Backend b);

/// True if `b` is compiled in and the CPU supports it.
bool backend_supported(Backend b);

/// The backend region kernels currently dispatch to. First call detects the
/// best supported backend (honouring STAIR_GF_BACKEND if set and supported).
Backend active_backend();

/// Pins dispatch to `b`; returns false (no change) if unsupported. Intended
/// for tests and benchmarks; call before compiling schedules you compare.
bool force_backend(Backend b);

/// Reverts force_backend(): re-runs auto-detection (env override included).
void reset_backend();

/// Split product tables for one (field, coefficient) pair. Layout:
///  * nib[k][b][v]: byte `b` of a * (v << 4k) — the pshufb tables. Valid
///    nibble positions k < w/4 and product bytes b < w/8 (w = 4 packs the
///    low-nibble product in nib[0][0] and the high-nibble product, already
///    shifted left 4, in nib[1][0]). The standard w = 16 kernel uses
///    (k, b < 2); the altmap kernels index the full (k, b) grid directly
///    since planar blocks put every nibble in a per-byte lane.
///  * pack4: w = 4 only — packed-byte table, both nibbles multiplied at once.
///  * row8: w = 8 only — a copy of row `a` of the field's full 256x256
///    product table (copied so cached kernels never dangle into a
///    caller-owned Field).
///  * wide16: w = 16 only — [x] = a*x, [256 + x] = a*(x << 8).
///  * wide32: w = 32 only — [256b + x] = a*(x << 8b), b < 4.
///  * affine8: w = 4/8 only — the byte -> byte multiply map as the 8x8 GF(2)
///    matrix operand GF2P8AFFINEQB expects (row for output bit i in byte
///    7-i). Multiplication by a constant is linear over GF(2), so this works
///    for any primitive polynomial, not just the instruction's native 0x11B.
///  * affine_wide[b][c]: w = 16/32 only — the GF2P8AFFINEQB matrix of the
///    map "source byte c -> byte b of the product", i.e. x -> byte_b of
///    a * (x << 8c). Because multiplication is GF(2)-linear, product byte b
///    of a symbol is the XOR over c of these per-byte maps — the composed
///    affine decomposition the GFNI altmap kernels run as a (w/8 x w/8)
///    grid of affine ops over planar blocks. Valid b, c < w/8.
struct KernelTables {
  alignas(32) std::uint8_t nib[8][4][16];
  std::uint8_t pack4[256];
  std::uint8_t row8[256];
  std::vector<std::uint16_t> wide16;
  std::vector<std::uint32_t> wide32;
  std::uint64_t affine8 = 0;
  std::uint64_t affine_wide[4][4] = {};
};

/// A region kernel: dst (op)= a * src over n bytes, tables precomputed.
using RegionKernelFn = void (*)(const KernelTables&, const std::uint8_t* src,
                                std::uint8_t* dst, std::size_t n);

/// An in-place layout conversion over n bytes (full 64-byte blocks
/// transformed, tail untouched — see gf/region.h).
using LayoutConvertFn = void (*)(std::uint8_t* data, std::size_t n);

/// One backend's kernel set, indexed by [layout][word size] (layouts as in
/// RegionLayout; word sizes 0..3 = w 4/8/16/32); mult_xor accumulates
/// (dst ^= a*src), mult overwrites (dst = a*src). For w = 4/8 the altmap
/// entries alias the standard kernels and the conversions are no-ops (the
/// layouts coincide).
struct KernelFns {
  RegionKernelFn mult_xor[2][4];
  RegionKernelFn mult[2][4];
  LayoutConvertFn to_altmap[4];
  LayoutConvertFn from_altmap[4];
};

namespace detail {
KernelFns scalar_kernel_fns();
#ifdef STAIR_HAVE_SSSE3
KernelFns ssse3_kernel_fns();
#endif
#ifdef STAIR_HAVE_AVX2
KernelFns avx2_kernel_fns();
#endif
#ifdef STAIR_HAVE_GFNI
KernelFns gfni_kernel_fns();
#endif
#ifdef STAIR_HAVE_AVX512
// The dispatch-time table: the vgf2p8affineqb variant when the CPU reports
// GFNI, the zmm-vpshufb variant otherwise.
KernelFns avx512_kernel_fns();
// Both variants, selectable explicitly (tests cross-check the vpshufb set
// on GFNI machines, where auto-selection would hide it).
KernelFns avx512_kernel_fns_variant(bool use_gfni);
#endif
}  // namespace detail

/// Fills `out` with the avx512 backend's pure-vpshufb kernel variant — the
/// set a GFNI-less AVX-512 part would dispatch to. Returns false (out
/// untouched) when the avx512 TU isn't compiled in or this CPU can't run
/// it. Lets tests drive the raw kernels (via CompiledKernel::tables()) on
/// GFNI machines where normal dispatch auto-upgrades past them.
bool avx512_shuffle_variant_fns(KernelFns* out);

/// Precomputed multiply-by-`a` region kernel over GF(2^w). Immutable after
/// construction; safe to share across threads. Dispatches to the active
/// backend at call time, so a kernel built before force_backend() still
/// runs the newly selected code path.
class CompiledKernel {
 public:
  CompiledKernel(const Field& f, std::uint32_t a);

  std::uint32_t coeff() const { return a_; }
  int w() const { return w_; }

  /// dst ^= a * src. Regions must be equal-sized, a multiple of w/8 bytes
  /// (any alignment), both in `layout`. Exact aliasing (src == dst) is
  /// allowed.
  void mult_xor(std::span<const std::uint8_t> src, std::span<std::uint8_t> dst,
                RegionLayout layout = RegionLayout::kStandard) const;

  /// dst = a * src (no read of dst's prior contents). Exact aliasing is
  /// allowed; partial overlap is not.
  void mult(std::span<const std::uint8_t> src, std::span<std::uint8_t> dst,
            RegionLayout layout = RegionLayout::kStandard) const;

  const KernelTables& tables() const { return t_; }

 private:
  KernelTables t_;
  std::uint32_t a_;
  int w_;
  int widx_;  // 0..3 for w 4/8/16/32
};

/// Shared thread-safe cache: the compiled kernel for (f, a), built on first
/// request. This is what amortizes split-table construction across every
/// schedule replay and incremental update in the process.
std::shared_ptr<const CompiledKernel> compiled_kernel(const Field& f, std::uint32_t a);

/// Process-lifetime count of CompiledKernel constructions (split-table
/// builds). Tests snapshot it around hot paths to prove replay performs zero
/// table construction — e.g. a plan-cache hit must not move it.
std::uint64_t kernel_build_count();

}  // namespace stair::gf
