// Figure 18: MTTDL_sys versus P_bit under the correlated (bursty) model with
// b1 = 0.98, alpha = 1.79 (drive model "D-2" of Schroeder et al.):
// RS, STAIR/SD s = 1, STAIR e = (2)/(1,1) and SD s = 2 (panel a);
// STAIR s = 3 coverages and SD s = 1..3 (panel b).
//
// Expected shape: everything decays as a power law (bursts defeat flatness);
// STAIR e = (e_0..e_max) tracks SD s = e_max; e = (s) is the best coverage
// for a given s because bursts hit one chunk.

#include <cmath>
#include <functional>
#include <iostream>

#include "reliability/mttdl.h"
#include "reliability/pstr.h"
#include "reliability/sector_models.h"
#include "util/table.h"

using namespace stair;
using namespace stair::reliability;

int main() {
  const SystemParams p;
  const BurstDistribution bursts(0.98, 1.79);
  std::cout << "=== Figure 18: MTTDL_sys vs P_bit, correlated bursts (b1=0.98, a=1.79) ===\n\n";

  const std::size_t chunks = p.n - p.m;
  struct Series {
    std::string label;
    std::size_t s;
    std::function<double(std::span<const double>)> pstr;
  };
  const std::vector<std::size_t> e1{1}, e2{2}, e11{1, 1}, e3{3}, e12{1, 2}, e111{1, 1, 1};
  const std::vector<Series> series{
      {"RS", 0, [&](auto pchk) { return pstr_rs(pchk, chunks); }},
      {"STAIR/SD s=1", 1, [&](auto pchk) { return pstr_stair(pchk, chunks, e1); }},
      {"STAIR e=(2)", 2, [&](auto pchk) { return pstr_stair(pchk, chunks, e2); }},
      {"STAIR e=(1,1)", 2, [&](auto pchk) { return pstr_stair(pchk, chunks, e11); }},
      {"SD s=2", 2, [&](auto pchk) { return pstr_sd(pchk, chunks, 2); }},
      {"STAIR e=(3)", 3, [&](auto pchk) { return pstr_stair(pchk, chunks, e3); }},
      {"STAIR e=(1,2)", 3, [&](auto pchk) { return pstr_stair(pchk, chunks, e12); }},
      {"STAIR e=(1,1,1)", 3, [&](auto pchk) { return pstr_stair(pchk, chunks, e111); }},
      {"SD s=3", 3, [&](auto pchk) { return pstr_sd(pchk, chunks, 3); }},
  };

  TablePrinter table("MTTDL_sys (hours) vs P_bit");
  std::vector<std::string> header{"P_bit"};
  for (const auto& s : series) header.push_back(s.label);
  table.set_header(header);

  for (double exp10 = -14.0; exp10 <= -10.0 + 1e-9; exp10 += 0.5) {
    const double p_bit = std::pow(10.0, exp10);
    const double p_sec = sector_failure_prob(p_bit, static_cast<std::size_t>(p.sector_bytes));
    const auto pchk = correlated_chunk_pmf(p_sec, bursts, p.r);
    std::vector<std::string> row{"1e" + format_sig(exp10, 3)};
    for (const auto& s : series)
      row.push_back(format_sig(mttdl_system(p, s.s, s.pstr(pchk)), 4));
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "Shape check: power-law decay everywhere; STAIR e=(1,2) ~= SD s=2 and\n"
               "STAIR e=(3) ~= SD s=3; e=(s) is the best coverage per s under\n"
               "bursts — the opposite ranking from Figure 17 (§7.2.2).\n";
  return 0;
}
