// Figure 11: encoding speed (MB/s) of STAIR codes (worst e per s, method
// auto-selected) versus SD codes (dense standard encoding, auto word size):
//   (a) varying n at r = 16,  (b) varying r at n = 16,  m in {1, 2, 3},
// STAIR s in {1..4}, SD s in {1..3}; ~32 MB stripes as in the paper.
//
// Expected shape: STAIR well above SD throughout (paper: +106% on average);
// both rise with n and r as the parity fraction shrinks; SD dips further
// when n*r > 255 forces it onto w = 16.
//
// Besides the human-readable tables, every measured cell is appended to
// BENCH_encoding_speed.json (machine-readable, for the perf trajectory the
// CI tracks). STAIR_BENCH_SMOKE=1 (or --smoke) runs a reduced matrix on
// smaller stripes — the CI smoke configuration.

#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gf/kernel.h"

using namespace stair;
using namespace stair::bench;

namespace {

bool g_smoke = false;
std::size_t stripe_bytes() { return g_smoke ? (8u << 20) : (32u << 20); }

struct Cell {
  std::string code;  // "stair" | "sd"
  char axis;         // 'n' or 'r' sweep
  std::size_t n, r, m, s;
  double mbps;
};
std::vector<Cell> g_cells;

double stair_speed(std::size_t n, std::size_t r, std::size_t m, std::size_t s) {
  const auto e = worst_e_for_s(n, r, m, s, 8);
  if (e.empty()) return 0.0;
  StairConfig cfg{.n = n, .r = r, .m = m, .e = e};
  if (cfg.minimum_w() > 8) cfg.w = cfg.minimum_w();
  const StairCode code(cfg);
  const std::size_t symbol = symbol_size_for_stripe(stripe_bytes(), n, r);
  StripeBuffer stripe = make_encoded_stripe(code, symbol);
  Workspace ws;
  const std::size_t bytes = symbol * n * r;
  return measure_mbps([&] { code.encode(stripe.view(), EncodingMethod::kAuto, &ws); },
                      bytes);
}

std::optional<double> sd_speed(std::size_t n, std::size_t r, std::size_t m, std::size_t s) {
  if (s > n - m) return std::nullopt;
  const SdCode code({.n = n, .r = r, .m = m, .s = s});
  const std::size_t symbol = symbol_size_for_stripe(stripe_bytes(), n, r);
  SdStripe stripe(code, symbol);
  const std::size_t bytes = symbol * n * r;
  return measure_mbps([&] { code.encode(stripe.regions); }, bytes);
}

void run_axis(const std::string& title, bool vary_n) {
  const std::vector<std::size_t> ms = g_smoke ? std::vector<std::size_t>{2}
                                              : std::vector<std::size_t>{1, 2, 3};
  const std::vector<std::size_t> vs =
      g_smoke ? std::vector<std::size_t>{8, 16}
              : std::vector<std::size_t>{4, 8, 12, 16, 20, 24, 28, 32};
  const std::size_t max_stair_s = g_smoke ? 2 : 4;
  const std::size_t max_sd_s = g_smoke ? 1 : 3;

  for (std::size_t m : ms) {
    TablePrinter table(title + ", m = " + std::to_string(m) + "  (MB/s)");
    std::vector<std::string> header{vary_n ? "n" : "r"};
    for (std::size_t s = 1; s <= max_sd_s; ++s) header.push_back("SD s=" + std::to_string(s));
    for (std::size_t s = 1; s <= max_stair_s; ++s)
      header.push_back("STAIR s=" + std::to_string(s));
    table.set_header(header);
    for (std::size_t v : vs) {
      const std::size_t n = vary_n ? v : 16;
      const std::size_t r = vary_n ? 16 : v;
      if (n <= m + 4) continue;  // leave room for data chunks
      std::vector<std::string> row{std::to_string(v)};
      for (std::size_t s = 1; s <= max_sd_s; ++s) {
        const auto speed = sd_speed(n, r, m, s);
        if (speed) g_cells.push_back({"sd", vary_n ? 'n' : 'r', n, r, m, s, *speed});
        row.push_back(speed ? format_sig(*speed, 4) : "-");
      }
      for (std::size_t s = 1; s <= max_stair_s; ++s) {
        const double speed = stair_speed(n, r, m, s);
        if (speed > 0) g_cells.push_back({"stair", vary_n ? 'n' : 'r', n, r, m, s, speed});
        row.push_back(format_sig(speed, 4));
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }
}

void write_json(const std::string& filename) {
  const std::string path = json_output_path(filename, g_smoke);
  std::ofstream out(path);
  out << "{\n  \"bench\": \"fig11_encoding_speed\",\n"
      << "  \"backend\": \"" << gf::backend_name(gf::active_backend()) << "\",\n"
      << "  \"smoke\": " << (g_smoke ? "true" : "false") << ",\n"
      << "  \"stripe_bytes\": " << stripe_bytes() << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < g_cells.size(); ++i) {
    const Cell& c = g_cells[i];
    out << "    {\"code\": \"" << c.code << "\", \"axis\": \"" << c.axis
        << "\", \"n\": " << c.n << ", \"r\": " << c.r << ", \"m\": " << c.m
        << ", \"s\": " << c.s << ", \"mbps\": " << c.mbps << "}"
        << (i + 1 < g_cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nWrote " << g_cells.size() << " cells to " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  g_smoke = parse_env(argc, argv).smoke;

  std::cout << "=== Figure 11: encoding speed, STAIR (worst e per s) vs SD ===\n";
  std::cout << "GF region backend: " << gf::backend_name(gf::active_backend())
            << (g_smoke ? "  [smoke matrix]" : "") << "\n\n";
  run_axis("(a) varying n, r = 16", /*vary_n=*/true);
  run_axis("(b) varying r, n = 16", /*vary_n=*/false);
  write_json("BENCH_encoding_speed.json");
  std::cout << "Shape check: STAIR > SD in every cell; speeds rise with n and r;\n"
               "STAIR mostly above 1000 MB/s.\n";
  return 0;
}
