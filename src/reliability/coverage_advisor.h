// Coverage configuration (§7.2.2 as a library API): given an array shape, a
// burst-tolerance requirement, a failure model, and a redundancy budget,
// enumerate and rank the candidate coverage vectors e by system MTTDL.
//
// The §7.2.2 findings this automates: under bursty sector failures e = (s)
// dominates; under independent failures split vectors like e = (1, s-1) win;
// and the largest element must be at least the worst burst length beta.
#pragma once

#include <cstddef>
#include <vector>

#include "reliability/mttdl.h"
#include "reliability/sector_models.h"

namespace stair::reliability {

/// What the advisor optimizes against.
struct AdvisorQuery {
  SystemParams system;          ///< array shape and rates (m = 1 model)
  double p_bit = 1e-12;         ///< unrecoverable bit error rate
  std::size_t beta = 1;         ///< minimum tolerable burst length (e_max >= beta)
  std::size_t max_sectors = 0;  ///< redundancy budget s_max; 0 = beta + 3
  bool correlated = true;       ///< burst model (true) or independent (false)
  double b1 = 0.98;             ///< burst-length mass at 1 (correlated model)
  double alpha = 1.79;          ///< Pareto tail index (correlated model)
};

/// One ranked candidate.
struct CoverageCandidate {
  std::vector<std::size_t> e;
  std::size_t s = 0;          ///< redundant sectors per stripe
  double pstr = 0;            ///< critical-mode stripe failure probability
  double mttdl_hours = 0;     ///< system MTTDL
};

/// All coverage vectors with e_max >= beta and sum <= the budget, ranked by
/// MTTDL descending (ties: fewer redundant sectors first). Empty result means
/// the constraints are unsatisfiable (e.g. beta > r).
std::vector<CoverageCandidate> rank_coverage_vectors(const AdvisorQuery& query);

/// The top-ranked candidate's e, or empty if none qualifies.
std::vector<std::size_t> recommend_coverage(const AdvisorQuery& query);

}  // namespace stair::reliability
