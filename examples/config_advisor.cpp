// config_advisor: pick a sector-failure coverage vector e for your array.
//
//   $ ./config_advisor [n=8] [r=16] [m=2] [beta=2] [p_bit=1e-12] [indep]
//
// Given the array shape, the worst burst length beta to survive (§2), and
// the device's unrecoverable bit error rate, ranks every candidate coverage
// vector by reliability (correlated-burst MTTDL by default, independent
// model with the `indep` flag; §7) and reports space cost, encoding cost,
// and update penalty for each — the §7.2.2 configuration discussion as a
// tool, backed by reliability::rank_coverage_vectors().
//
// Cluster mode — recommend (e, scrub period) from hardware, not tables:
//
//   $ ./config_advisor cluster [n=8] [r=16] [beta=2] [device_gib=300]
//       [mttf_khours=500] [repair_mbps=64] [scan_mbps=64]
//       [rate_per_hour=1e-8] [target_years=10000]
//
// Rebuild time is *derived* from device capacity / repair bandwidth, the
// effective per-sector error probability from the latent-error rate under
// each candidate scrub period (sim::effective_scrub_period — so "scrub
// continuously" really means back-to-back passes at scan_mbps), and the
// recommendation is the cheapest policy meeting the MTTDL target: fewest
// extra parity sectors first, then the longest (least scrub-I/O) period.
// The top candidates are then *validated* with a short inflated-rate
// ClusterSim run: simulated loss events must fall inside the Poisson band
// of the same analytic pipeline, printed as measured-vs-analytic columns.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "reliability/coverage_advisor.h"
#include "reliability/prediction.h"
#include "sim/cluster_sim.h"
#include "sim/scrubber.h"
#include "stair/cost_model.h"
#include "stair/update_analysis.h"
#include "util/table.h"

using namespace stair;
using namespace stair::reliability;

namespace {

std::string format_e(const std::vector<std::size_t>& e) {
  std::string s = "(";
  for (std::size_t k = 0; k < e.size(); ++k)
    s += (k ? "," : "") + std::to_string(e[k]);
  return s + ")";
}

/// One (coverage vector, scrub period) policy with its analytic prediction
/// at the real rates and — for the top candidates — the inflated-rate
/// simulated cross-check.
struct Policy {
  std::vector<std::size_t> e;
  std::size_t s = 0;
  double period_hours = 0.0;     ///< delivered (effective) scrub period
  double p_sec = 0.0;            ///< scrubbed_p_sec(rate, period)
  double mttdl_hours = 0.0;      ///< renewal MTTDL at the real rates
  double loss_per_pb_year = 0.0;
  bool meets_target = false;
  // Simulated validation (inflated rates; run for the top few only).
  bool simulated = false;
  std::size_t sim_losses = 0;
  AgreementBand sim_band;
  bool sim_in_band = false;
};

/// Inflated-rate cross-check: same code, failure processes frequent enough
/// to count. Picks a fixed p_sec that makes critical-mode losses likely
/// enough to measure for *this* coverage vector (bigger s needs a bigger
/// probe probability), sizes the horizon for ~40 expected events, and runs
/// the full DES.
void simulate_policy(Policy& policy, std::size_t n, std::size_t r) {
  sim::ClusterConfig cfg;
  cfg.code = StairConfig{.n = n, .r = r, .m = 1, .e = policy.e};
  cfg.code.w = std::max(cfg.code.minimum_w(), 8);
  cfg.arrays = 32;
  cfg.stripes_per_array = 64;
  cfg.device_bytes = 32.0 * 1024 * 1024;
  cfg.mttf_hours = 500.0;
  cfg.repair_mbps_per_array = 128.0;
  cfg.scrub_period_hours = -1.0;
  cfg.seed = 1;
  cfg.record_trace = false;

  // Descend the probe ladder until losses are out of saturation: at a
  // too-large p every critical episode is a loss regardless of e, and the
  // check degenerates to counting episodes. Target loss_per_episode <= 0.5
  // (floored so events stay countable) — there the drawn masks straddle the
  // coverage boundary and a mis-ranked pstr would shift the count.
  for (double p : {0.05, 0.02, 0.01, 5e-3, 2e-3, 1e-3, 5e-4, 2e-4, 1e-4}) {
    cfg.fixed_p_sec = p;
    const auto pred =
        predict_reliability(sim::ClusterSim(cfg).prediction_query());
    cfg.sim_hours =
        40.0 * pred.mttdl_renewal_hours / static_cast<double>(cfg.arrays);
    if (pred.loss_per_episode <= 0.5) break;
  }

  const auto report = sim::ClusterSim(cfg).run();
  policy.simulated = true;
  policy.sim_losses = report.loss_events;
  policy.sim_band = report.band;
  policy.sim_in_band = report.within_band;
}

int advise_cluster(int argc, char** argv) {
  const std::size_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;
  const std::size_t r = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 16;
  const std::size_t beta = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 2;
  const double device_gib = argc > 5 ? std::strtod(argv[5], nullptr) : 300.0;
  const double mttf_hours =
      (argc > 6 ? std::strtod(argv[6], nullptr) : 500.0) * 1000.0;
  const double repair_mbps = argc > 7 ? std::strtod(argv[7], nullptr) : 64.0;
  const double scan_mbps = argc > 8 ? std::strtod(argv[8], nullptr) : 64.0;
  const double rate = argc > 9 ? std::strtod(argv[9], nullptr) : 1e-8;
  const double target_hours =
      (argc > 10 ? std::strtod(argv[10], nullptr) : 10000.0) * 8766.0;

  const double device_bytes = device_gib * 1024.0 * 1024.0 * 1024.0;
  // The derived quantities static tables hard-code:
  const double rebuild_hours = device_bytes / (repair_mbps * 1024.0 * 1024.0) / 3600.0;
  const double store_bytes = static_cast<double>(n) * device_bytes;

  std::printf(
      "cluster advisor: n=%zu r=%zu beta=%zu, C=%g GiB, MTTF=%g h,\n"
      "repair=%g MB/s -> rebuild=%.2f h, scrub scan=%g MB/s, latent rate=%g /h,\n"
      "MTTDL target=%g years\n\n",
      n, r, beta, device_gib, mttf_hours, repair_mbps, rebuild_hours,
      scan_mbps, rate, target_hours / 8766.0);

  // Candidate coverage vectors (e_max >= beta, bounded budget); the advisor
  // re-ranks them below from the hardware-derived rates, so the nominal
  // p_bit used for this enumeration does not matter.
  AdvisorQuery query;
  query.system.n = n;
  query.system.r = r;
  query.system.m = 1;  // the §7 analytic restriction
  query.beta = beta;
  const auto candidates = rank_coverage_vectors(query);
  if (candidates.empty()) {
    std::printf("no coverage vector satisfies the constraints (beta > r?)\n");
    return 1;
  }

  // Scrub-period ladder, cheapest (longest) first; 0 = continuous, which
  // effective_scrub_period turns into back-to-back passes at scan_mbps.
  const double ladder[] = {720.0, 336.0, 168.0, 72.0, 24.0, 6.0, 0.0};

  std::vector<Policy> policies;
  for (const auto& c : candidates) {
    Policy best;
    bool have = false;
    for (double period : ladder) {
      const double eff = sim::effective_scrub_period(period, store_bytes, scan_mbps);
      PredictionQuery pq;
      pq.system.n = n;
      pq.system.r = r;
      pq.system.device_bytes = device_bytes;
      pq.system.mttf_hours = mttf_hours;
      pq.system.rebuild_hours = rebuild_hours;
      pq.e = c.e;
      pq.p_sec = sim::scrubbed_p_sec(rate, eff);
      const auto pred = predict_reliability(pq);

      Policy p;
      p.e = c.e;
      p.s = c.s;
      p.period_hours = eff;
      p.p_sec = pq.p_sec;
      p.mttdl_hours = pred.mttdl_renewal_hours;
      p.loss_per_pb_year = pred.loss_per_pb_year;
      p.meets_target = pred.mttdl_renewal_hours >= target_hours;
      if (!have) {
        best = p;  // fallback: the most aggressive scrub still misses target
        have = true;
      }
      if (p.meets_target) {
        best = p;  // ladder is cheapest-first: first hit wins
        break;
      }
      best = p;  // keep tightening until the ladder runs out
    }
    policies.push_back(best);
  }

  // Cheapest policy first: meets-target, then fewest extra sectors, then
  // longest scrub period (least scrub I/O), then higher MTTDL.
  std::stable_sort(policies.begin(), policies.end(),
                   [](const Policy& a, const Policy& b) {
                     if (a.meets_target != b.meets_target) return a.meets_target;
                     if (a.s != b.s) return a.s < b.s;
                     if (a.period_hours != b.period_hours)
                       return a.period_hours > b.period_hours;
                     return a.mttdl_hours > b.mttdl_hours;
                   });

  // Measured cross-check for the top candidates: a short inflated-rate
  // ClusterSim run of the same code must land inside the analytic band.
  const std::size_t to_sim = std::min<std::size_t>(policies.size(), 3);
  for (std::size_t i = 0; i < to_sim; ++i) simulate_policy(policies[i], n, r);

  TablePrinter table("policies ranked cheapest-first (analytic at real rates, "
                     "sim at inflated rates)");
  table.set_header({"rank", "e", "s", "scrub (h)", "p_sec", "MTTDL (h)",
                    "target", "sim losses", "band", "agree"});
  const std::size_t show = std::min<std::size_t>(policies.size(), 10);
  for (std::size_t i = 0; i < show; ++i) {
    const auto& p = policies[i];
    char band[64] = "-";
    char losses[32] = "-";
    if (p.simulated) {
      std::snprintf(losses, sizeof losses, "%zu", p.sim_losses);
      std::snprintf(band, sizeof band, "[%.0f, %.0f]", p.sim_band.lo,
                    p.sim_band.hi);
    }
    table.add_row({std::to_string(i + 1), format_e(p.e), std::to_string(p.s),
                   format_sig(p.period_hours, 3), format_sig(p.p_sec, 3),
                   format_sig(p.mttdl_hours, 4), p.meets_target ? "met" : "MISS",
                   losses, band,
                   p.simulated ? (p.sim_in_band ? "in-band" : "DIVERGED") : "-"});
  }
  table.print(std::cout);

  const auto& best = policies.front();
  if (!best.meets_target) {
    std::printf(
        "no (e, scrub) policy reaches %g years even scrubbing continuously —\n"
        "add parity sectors (raise the budget), speed up repair, or relax the "
        "target.\n",
        target_hours / 8766.0);
    return 1;
  }
  std::printf(
      "recommendation: e = %s with a %.3g h scrub period — cheapest policy\n"
      "meeting the target (p_sec=%.3g, MTTDL=%.3g h ~ %.3g years)%s.\n",
      format_e(best.e).c_str(), best.period_hours, best.p_sec,
      best.mttdl_hours, best.mttdl_hours / 8766.0,
      best.simulated
          ? (best.sim_in_band ? "; simulated losses agree with the model"
                              : "; WARNING: simulation diverged from the model")
          : "");
  return best.simulated && !best.sim_in_band ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "cluster") == 0)
    return advise_cluster(argc, argv);
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  const std::size_t r = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16;
  const std::size_t m = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2;
  const std::size_t beta = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 2;
  const double p_bit = argc > 5 ? std::strtod(argv[5], nullptr) : 1e-12;
  const bool correlated = !(argc > 6 && std::strcmp(argv[6], "indep") == 0);

  std::printf("advising for n=%zu r=%zu m=%zu, burst tolerance beta=%zu, P_bit=%g, %s model\n\n",
              n, r, m, beta, p_bit, correlated ? "correlated-burst" : "independent");

  AdvisorQuery query;
  query.system.n = n;
  query.system.r = r;
  query.system.m = 1;  // the §7 Markov model; the ranking is what matters
  query.p_bit = p_bit;
  query.beta = beta;
  query.correlated = correlated;
  const auto ranked = rank_coverage_vectors(query);
  if (ranked.empty()) {
    std::printf("no coverage vector satisfies the constraints (beta too large?)\n");
    return 1;
  }

  TablePrinter table("candidates with e_max >= beta, ranked by MTTDL");
  table.set_header({"rank", "e", "s (extra sectors)", "MTTDL_sys (h)", "encode Mult_XORs",
                    "update penalty"});
  const std::size_t show = std::min<std::size_t>(ranked.size(), 12);
  for (std::size_t i = 0; i < show; ++i) {
    const auto& c = ranked[i];
    std::string e_str = "(";
    for (std::size_t k = 0; k < c.e.size(); ++k)
      e_str += (k ? "," : "") + std::to_string(c.e[k]);
    e_str += ")";

    // Cost and update columns use the *requested* m, not the model's m = 1.
    StairConfig cfg{.n = n, .r = r, .m = m, .e = c.e};
    std::string cost = "-", penalty = "-";
    try {
      cfg.w = std::max(cfg.minimum_w(), 8);
      cfg.validate();
      const StairCode code(cfg);
      cost = std::to_string(std::min(upstairs_mult_xors(cfg), downstairs_mult_xors(cfg)));
      penalty = format_sig(update_penalty(code).average, 4);
    } catch (...) {
      // coverage valid for the m = 1 reliability model but not for this m
    }
    table.add_row({std::to_string(i + 1), e_str, std::to_string(c.s),
                   format_sig(c.mttdl_hours, 4), cost, penalty});
  }
  table.print(std::cout);

  const auto& best = ranked.front();
  std::string e_str;
  for (std::size_t k = 0; k < best.e.size(); ++k)
    e_str += (k ? "," : "") + std::to_string(best.e[k]);
  std::printf("recommendation: e = (%s) — tolerates a beta=%zu burst at %zu extra parity\n"
              "sectors per stripe (IDR would need %zu extra sectors for the same burst).\n",
              e_str.c_str(), beta, best.s, beta * (n - m));
  return 0;
}
