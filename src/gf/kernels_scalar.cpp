// Scalar backend: kernels_impl.h compiled with the project's baseline flags
// (no SIMD ISA extensions), so this kernel set runs on any CPU.
#include "gf/kernels_impl.h"

namespace stair::gf::detail {

KernelFns scalar_kernel_fns() { return impl_kernel_fns(); }

}  // namespace stair::gf::detail
