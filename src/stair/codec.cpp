#include "stair/codec.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "gf/region.h"
#include "stair/autotune.h"
#include "util/thread_pool.h"

namespace stair {

// One submitted job: its inputs, its leased scratch, and its completion
// state. Subtasks share the job read-only except for the completion fields
// (guarded by mu) and the disjoint byte ranges they each own.
struct CodecJob {
  enum class Kind { kEncode, kDecode, kUpdate };

  Kind kind = Kind::kEncode;
  // Set at launch; lets a blocked Handle::wait() help drain this pool
  // (null on immediately-done jobs).
  ThreadPool* pool = nullptr;
  std::size_t symbol_size = 0;
  // slice_bytes == 0 means one subtask running the whole range (the
  // full-batch regime: stripe per task); nonzero means range-sliced.
  std::size_t slice_bytes = 0;

  // Encode/decode: the compiled plan to replay over the prepared workspace's
  // symbol table. `plan_keepalive` pins decode plans across cache evictions;
  // encode plans are owned by the StairCode's lazy cache (session-lived).
  const CompiledSchedule* plan = nullptr;
  std::shared_ptr<const CompiledSchedule> plan_keepalive;
  WorkspacePool<Workspace>::Lease ws;
  // Region layout the plan replays in (resolved once at submit). With
  // kAltmap, each subtask converts the plan-referenced stripe regions of its
  // byte range in, replays, and converts back — ranges are disjoint and
  // altmap blocks 64-byte-aligned, so each stripe byte converts exactly once
  // per job, at the submit/complete boundary of its range, never inside the
  // strip-mined replay loop. Leased workspace scratch stays altmap forever.
  gf::RegionLayout layout = gf::RegionLayout::kStandard;

  // Update: the per-range body needs the original view plus delta scratch.
  const UpdateEngine* engine = nullptr;
  StripeView stripe;
  std::size_t data_index = 0;
  std::span<const std::uint8_t> new_content;
  WorkspacePool<AlignedBuffer>::Lease delta;

  // Completion state. `done` is atomic so Handle::done() can poll without
  // the lock; it is still written under mu (the cv wait predicate reads it).
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining = 0;  // guarded by mu
  std::atomic<bool> done{false};
  bool ok = true;                  // immutable after submit
  std::exception_ptr error;        // guarded by mu; first failure wins
  Codec::Completion then;          // immutable after submit; run by the last
                                   // subtask (see Codec::Completion contract)

  void replay(std::size_t offset, std::size_t length) const {
    plan->execute_range_converted(ws->symbols_, ws->caller_owned_, layout, offset, length);
  }

  void run_range(std::size_t offset, std::size_t length) const {
    switch (kind) {
      case Kind::kEncode:
      case Kind::kDecode:
        replay(offset, length);
        break;
      case Kind::kUpdate:
        engine->update_range(stripe, data_index, new_content, delta->span(), offset, length);
        break;
    }
  }

  void run_full() const {
    switch (kind) {
      case Kind::kEncode:
      case Kind::kDecode:
        replay(0, symbol_size);  // full replay keeps the strip-mined path
        break;
      case Kind::kUpdate:
        engine->update_range(stripe, data_index, new_content, delta->span(), 0, symbol_size);
        break;
    }
  }
};

namespace {

// Subtask body: run the owned byte range, capture the first exception, and
// retire. The last subtask to retire releases the leased scratch (back to
// the session pool) before waking waiters.
void run_subtask(const std::shared_ptr<CodecJob>& job, std::size_t index) {
  try {
    if (job->slice_bytes == 0) {
      job->run_full();
    } else {
      const std::size_t offset = index * job->slice_bytes;
      if (offset < job->symbol_size)
        job->run_range(offset, std::min(job->slice_bytes, job->symbol_size - offset));
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(job->mu);
    if (!job->error) job->error = std::current_exception();
  }
}

}  // namespace

Codec::Codec(StairConfig cfg) : Codec(std::move(cfg), Options{}) {}

Codec::Codec(const StairCode& code) : Codec(code, Options{}) {}

Codec::Codec(StairConfig cfg, Options options)
    : owned_code_(std::make_unique<StairCode>(std::move(cfg))),
      code_(owned_code_.get()),
      pool_(options.pool ? options.pool : &ThreadPool::default_pool()),
      options_(options),
      plan_cache_(*code_, options.plan_cache_capacity) {
  // First construction in the process runs (or loads) the measured probe;
  // afterwards this is a cheap flag check.
  Autotune::instance().ensure();
}

Codec::Codec(const StairCode& code, Options options)
    : code_(&code),
      pool_(options.pool ? options.pool : &ThreadPool::default_pool()),
      options_(options),
      plan_cache_(code, options.plan_cache_capacity) {
  Autotune::instance().ensure();
}

Codec::~Codec() { wait_all(); }

const UpdateEngine& Codec::update_engine() const {
  std::lock_guard<std::mutex> lock(engine_mu_);
  if (!update_engine_) update_engine_ = std::make_unique<UpdateEngine>(*code_);
  return *update_engine_;
}

std::size_t Codec::decide_subtasks(std::size_t symbol_size, std::size_t touched,
                                   gf::RegionLayout layout, std::size_t* slice_bytes) const {
  *slice_bytes = 0;
  // Width counts the workers plus one waiting caller: Handle::wait/wait_all
  // help drain the queue (try_run_one), so the submit pipeline runs on the
  // same participant set as parallel_for.
  const std::size_t width = pool_->concurrency();
  if (width <= 1) return 1;
  // The batch-vs-slice crossover: 0 delegates to the measured tuner (a
  // slice must out-compute the pool's submit overhead), a nonzero option
  // pins the classic fixed threshold.
  const std::size_t min_slice =
      options_.min_slice_bytes
          ? options_.min_slice_bytes
          : Autotune::instance().min_slice_bytes(code_->field().w(), layout);
  if (symbol_size < min_slice) return 1;
  // Range-slice only when the batch is too small to fill the pool: claimed
  // lanes run whole stripes; idle lanes are filled with slices of this one.
  const std::size_t busy = subtasks_in_flight_.load(std::memory_order_relaxed);
  if (busy + 1 >= width) return 1;
  const std::size_t idle = width - busy;
  std::size_t slice = gf::cache_aware_slice_bytes(symbol_size, idle, touched);
  // Dispatch-overhead floor at the measured (or pinned) threshold: slices
  // below it spend more time in the queue than in the kernels. Keep the
  // 64-byte granularity every layout/width requires.
  if (slice < min_slice) slice = (min_slice + 63) & ~std::size_t{63};
  const std::size_t subtasks = (symbol_size + slice - 1) / slice;
  if (subtasks <= 1) return 1;
  *slice_bytes = slice;
  return subtasks;
}

Codec::Handle Codec::launch(const std::shared_ptr<CodecJob>& job, std::size_t subtasks) {
  job->pool = pool_;
  job->remaining = subtasks;
  jobs_submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    ++jobs_open_;
  }
  subtasks_in_flight_.fetch_add(subtasks, std::memory_order_relaxed);
  for (std::size_t i = 0; i < subtasks; ++i) {
    pool_->submit([this, job, i] {
      run_subtask(job, i);
      subtasks_in_flight_.fetch_sub(1, std::memory_order_relaxed);
      bool last;
      {
        std::lock_guard<std::mutex> lock(job->mu);
        last = --job->remaining == 0;
        if (last) {
          // Return the leased scratch before signalling completion, so a
          // caller chaining the next submit off wait() reuses it warm.
          job->ws.reset();
          job->delta.reset();
          job->done.store(true, std::memory_order_release);
        }
      }
      if (!last) return;
      job->cv.notify_all();  // job outlives this: the lambda owns a shared_ptr
      // After `done` is visible, `error` has its final value (no more
      // subtask writers), so the continuation's ok is stable. Runs before
      // the jobs_open_ decrement: wait_all() returning implies every
      // continuation has finished.
      if (job->then) job->then(job->ok && !job->error);
      // Release pairs with the acquire load in jobs_in_flight(): observers
      // that see this completion also see the submission it retires.
      jobs_completed_.fetch_add(1, std::memory_order_release);
      {
        // Notify under the lock: once jobs_open_ hits 0 a waiter may return
        // from wait_all and destroy the Codec, so the cv access must be
        // ordered before the waiter can re-acquire jobs_mu_.
        std::lock_guard<std::mutex> lock(jobs_mu_);
        --jobs_open_;
        jobs_cv_.notify_all();
      }
    });
  }
  return Handle(job);
}

Codec::Handle Codec::submit_encode(const StripeView& stripe, EncodingMethod method,
                                   Completion then) {
  if (method == EncodingMethod::kAuto) method = code_->select_method();
  const CompiledSchedule& plan = code_->compiled_encoding_schedule(method);

  auto job = std::make_shared<CodecJob>();
  job->then = std::move(then);
  job->kind = CodecJob::Kind::kEncode;
  job->symbol_size = stripe.symbol_size;
  job->plan = &plan;
  // Tuned layout: altmap only when the measured throughput gap beats the
  // boundary conversion at this plan's ops-per-region and stripe size.
  job->layout = Autotune::instance().choose_layout(
      code_->field().w(),
      static_cast<double>(plan.mult_xor_count()) / std::max<std::size_t>(1, plan.touched_symbols()),
      stripe.symbol_size);
  job->ws = workspaces_.acquire();
  code_->prepare_workspace(stripe, *job->ws);  // validates the view; throws here

  std::size_t slice = 0;
  const std::size_t subtasks =
      decide_subtasks(stripe.symbol_size, plan.touched_symbols(), job->layout, &slice);
  job->slice_bytes = slice;
  return launch(job, subtasks);
}

Codec::Handle Codec::submit_decode(const StripeView& stripe, const std::vector<bool>& erased,
                                   Completion then) {
  auto plan = plan_cache_.plan(erased);
  if (!plan) {
    // Outside the coverage: complete immediately (stripe untouched) so the
    // caller sees the same contract as StairCode::decode returning false.
    auto job = std::make_shared<CodecJob>();
    job->kind = CodecJob::Kind::kDecode;
    job->ok = false;
    job->done.store(true, std::memory_order_release);
    jobs_submitted_.fetch_add(1, std::memory_order_relaxed);
    jobs_completed_.fetch_add(1, std::memory_order_release);
    if (then) then(false);
    return Handle(job);
  }

  auto job = std::make_shared<CodecJob>();
  job->then = std::move(then);
  job->kind = CodecJob::Kind::kDecode;
  job->symbol_size = stripe.symbol_size;
  job->plan = plan.get();
  job->plan_keepalive = std::move(plan);
  job->layout = Autotune::instance().choose_layout(
      code_->field().w(),
      static_cast<double>(job->plan->mult_xor_count()) /
          std::max<std::size_t>(1, job->plan->touched_symbols()),
      stripe.symbol_size);
  job->ws = workspaces_.acquire();
  code_->prepare_workspace(stripe, *job->ws);

  std::size_t slice = 0;
  const std::size_t subtasks =
      decide_subtasks(stripe.symbol_size, job->plan->touched_symbols(), job->layout, &slice);
  job->slice_bytes = slice;
  return launch(job, subtasks);
}

Codec::Handle Codec::submit_update(const StripeView& stripe, std::size_t data_index,
                                   std::span<const std::uint8_t> new_content,
                                   Completion then) {
  const UpdateEngine& engine = update_engine();
  if (stripe.stored.size() != code_->layout().stored_count())
    throw std::invalid_argument("Codec::submit_update: stripe view has wrong stored count");
  if (code_->mode() == GlobalParityMode::kOutside &&
      stripe.outside_globals.size() != code_->config().s())
    throw std::invalid_argument("Codec::submit_update: outside-global mode needs s regions");
  if (data_index >= code_->data_symbol_count())
    throw std::invalid_argument("Codec::submit_update: data index out of range");
  if (new_content.size() != stripe.symbol_size)
    throw std::invalid_argument("Codec::submit_update: wrong symbol size");

  auto job = std::make_shared<CodecJob>();
  job->then = std::move(then);
  job->kind = CodecJob::Kind::kUpdate;
  job->symbol_size = stripe.symbol_size;
  job->engine = &engine;
  job->stripe = stripe;
  job->data_index = data_index;
  job->new_content = new_content;
  job->delta = delta_buffers_.acquire();
  if (job->delta->size() < stripe.symbol_size)
    *job->delta = AlignedBuffer(stripe.symbol_size);

  std::size_t slice = 0;
  // Updates run the standard-layout patch kernels (update_engine.cpp).
  const std::size_t subtasks = decide_subtasks(
      stripe.symbol_size, engine.touched_regions(data_index), gf::RegionLayout::kStandard, &slice);
  job->slice_bytes = slice;
  return launch(job, subtasks);
}

void Codec::wait_all() {
  // A waiting caller is an idle core: help drain the pool queue (our own
  // subtasks are in it) before parking. This is what keeps batch submits at
  // the pool's full concurrency — workers plus the waiting caller — exactly
  // like parallel_for's caller participation.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      if (jobs_open_ == 0) return;
    }
    if (!pool_->try_run_one()) break;  // nothing queued: subtasks are running
  }
  std::unique_lock<std::mutex> lock(jobs_mu_);
  jobs_cv_.wait(lock, [this] { return jobs_open_ == 0; });
}

std::size_t Codec::jobs_in_flight() const {
  // Load order matters: every completed increment (release) is preceded —
  // through the pool-queue handoff — by its job's submitted increment, so an
  // acquire load of `completed` guarantees the subsequent `submitted` read
  // covers at least those jobs. Reading submitted first (or both relaxed)
  // lets a racing observer see a completion before its submission and the
  // difference transiently underflow to a huge value — which the scrubber's
  // idle-slot gate would misread as unbounded foreground pressure.
  const std::uint64_t completed = jobs_completed_.load(std::memory_order_acquire);
  const std::uint64_t submitted = jobs_submitted_.load(std::memory_order_relaxed);
  return static_cast<std::size_t>(submitted - completed);
}

// --- Handle -----------------------------------------------------------------

bool Codec::Handle::done() const {
  return !job_ || job_->done.load(std::memory_order_acquire);
}

void Codec::Handle::wait() const {
  if (!job_) return;
  // Help drain the pool while this job is unfinished (see Codec::wait_all);
  // fall through to the cv once the queue is empty — the remaining subtasks
  // are running on other threads.
  while (!job_->done.load(std::memory_order_acquire)) {
    if (!job_->pool || !job_->pool->try_run_one()) break;
  }
  std::unique_lock<std::mutex> lock(job_->mu);
  job_->cv.wait(lock, [this] { return job_->done.load(std::memory_order_relaxed); });
  if (job_->error) std::rethrow_exception(job_->error);
}

bool Codec::Handle::ok() const {
  wait();
  return !job_ || job_->ok;
}

}  // namespace stair
