// Bit-matrix backend tests: the GF(2) lowering of multiplication, layout
// conversion round trips, region-op equivalence with the table kernels, and
// full STAIR encoding through the XOR-only executor.

#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <vector>

#include "gf/bitmatrix.h"
#include "stair/stair_code.h"
#include "stair/xor_executor.h"
#include "util/buffer.h"
#include "util/rng.h"

namespace stair {
namespace {

class BitmatrixTest : public ::testing::TestWithParam<int> {
 protected:
  const gf::Field& f() const { return gf::field(GetParam()); }
};

TEST_P(BitmatrixTest, MatrixAppliesMultiplication) {
  const auto& field = f();
  Rng rng(1);
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint32_t a =
        static_cast<std::uint32_t>(rng.next_u64() & field.max_element());
    const std::uint32_t x =
        static_cast<std::uint32_t>(rng.next_u64() & field.max_element());
    const auto rows = gf::multiplication_bitmatrix(field, a);
    std::uint32_t result = 0;
    for (int i = 0; i < field.w(); ++i) {
      // Row i dot x over GF(2) = parity of (rows[i] & x).
      if (std::popcount(rows[i] & x) & 1) result |= std::uint32_t{1} << i;
    }
    EXPECT_EQ(result, field.mul(a, x)) << "a=" << a << " x=" << x;
  }
}

TEST_P(BitmatrixTest, IdentityAndZeroMatrices) {
  const auto one = gf::multiplication_bitmatrix(f(), 1);
  for (int i = 0; i < f().w(); ++i) EXPECT_EQ(one[i], std::uint32_t{1} << i);
  EXPECT_EQ(gf::bitmatrix_xor_count(one), static_cast<std::size_t>(f().w()));
  const auto zero = gf::multiplication_bitmatrix(f(), 0);
  EXPECT_EQ(gf::bitmatrix_xor_count(zero), 0u);
}

TEST_P(BitmatrixTest, BitplaneConversionRoundTrips) {
  const std::size_t size = 16 * static_cast<std::size_t>(f().w());
  AlignedBuffer in(size), planes(size), back(size);
  Rng rng(2);
  rng.fill(in.span());
  gf::to_bitplane(f(), in.span(), planes.span());
  gf::from_bitplane(f(), planes.span(), back.span());
  EXPECT_EQ(0, std::memcmp(in.data(), back.data(), size));
}

TEST_P(BitmatrixTest, RegionOpMatchesTableKernelThroughLayouts) {
  const auto& field = f();
  const std::size_t size = 8 * static_cast<std::size_t>(field.w());
  Rng rng(3);
  AlignedBuffer src(size), dst(size);
  rng.fill(src.span());
  rng.fill(dst.span());

  const std::uint32_t a = 1 + static_cast<std::uint32_t>(
                                  rng.next_below(field.max_element()));
  // Path 1: ordinary kernel.
  AlignedBuffer expect(size);
  std::memcpy(expect.data(), dst.data(), size);
  gf::mult_xor_region(field, a, src.span(), expect.span());

  // Path 2: convert to planes, bit-matrix op, convert back.
  AlignedBuffer src_p(size), dst_p(size), got(size);
  gf::to_bitplane(field, src.span(), src_p.span());
  gf::to_bitplane(field, dst.span(), dst_p.span());
  const auto rows = gf::multiplication_bitmatrix(field, a);
  gf::bitmatrix_mult_xor_region(rows, field.w(), src_p.span(), dst_p.span());
  gf::from_bitplane(field, dst_p.span(), got.span());

  EXPECT_EQ(0, std::memcmp(expect.data(), got.data(), size));
}

INSTANTIATE_TEST_SUITE_P(WordSizes, BitmatrixTest, ::testing::Values(8, 16, 32),
                         [](const auto& info) { return "w" + std::to_string(info.param); });

TEST(XorExecutorTest, StairEncodingMatchesTableBackend) {
  // Encode the same stripe through the GF(2^8) kernels and through the pure
  // XOR executor (in bit-plane space); results must agree symbol for symbol.
  const StairConfig cfg{.n = 8, .r = 4, .m = 2, .e = {1, 1, 2}};
  const StairCode code(cfg);
  const std::size_t symbol = 64;

  StripeBuffer table_stripe(code, symbol);
  std::vector<std::uint8_t> data(table_stripe.data_size());
  Rng rng(4);
  rng.fill(data);
  table_stripe.set_data(data);
  code.encode(table_stripe.view(), EncodingMethod::kUpstairs);

  // XOR path: build the full canonical symbol table in bit-plane layout.
  const auto& layout = code.layout();
  const Schedule& sch = code.encoding_schedule(EncodingMethod::kUpstairs);
  const XorExecutor xor_exec(sch, code.field());
  EXPECT_GT(xor_exec.xor_op_count(), sch.mult_xor_count())
      << "each Mult_XOR lowers to several packet XORs";

  StripeBuffer xor_stripe(code, symbol);
  xor_stripe.set_data(data);
  std::vector<AlignedBuffer> planes;
  std::vector<std::span<std::uint8_t>> plane_spans;
  for (std::size_t id = 0; id < layout.total_symbols(); ++id) planes.emplace_back(symbol);
  for (auto& p : planes) plane_spans.push_back(p.span());
  for (std::size_t row = 0; row < cfg.r; ++row)
    for (std::size_t col = 0; col < cfg.n; ++col)
      gf::to_bitplane(code.field(), xor_stripe.symbol(row, col),
                      plane_spans[layout.id(row, col)]);

  xor_exec.execute(plane_spans);

  for (std::size_t row = 0; row < cfg.r; ++row)
    for (std::size_t col = 0; col < cfg.n; ++col) {
      AlignedBuffer back(symbol);
      gf::from_bitplane(code.field(), plane_spans[layout.id(row, col)], back.span());
      ASSERT_EQ(0, std::memcmp(back.data(), table_stripe.symbol(row, col).data(), symbol))
          << "symbol (" << row << "," << col << ")";
    }
}

TEST(XorExecutorTest, DecodeScheduleAlsoLowers) {
  const StairConfig cfg{.n = 6, .r = 4, .m = 1, .e = {1, 1}};
  const StairCode code(cfg);
  std::vector<bool> mask(cfg.n * cfg.r, false);
  for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + 2] = true;
  auto sch = code.build_decode_schedule(mask);
  ASSERT_TRUE(sch.has_value());
  const XorExecutor xor_exec(*sch, code.field());
  EXPECT_GT(xor_exec.xor_op_count(), 0u);
  // w = 8: each nonzero coefficient costs between w and w*w XORs.
  EXPECT_LE(xor_exec.xor_op_count(), sch->mult_xor_count() * 64u);
  EXPECT_GE(xor_exec.xor_op_count(), sch->mult_xor_count() * 1u);
}

}  // namespace
}  // namespace stair
