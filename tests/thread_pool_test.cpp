// Thread-pool unit tests: task completion, exception propagation, reuse
// across thousands of submits (no thread leak), and STAIR_THREADS sizing.
// This suite also runs under the ThreadSanitizer CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace stair {
namespace {

// Kernel threads of this process as the OS sees them (linux /proc); 0 if
// unreadable. Lets the leak test check the process, not just pool internals.
std::size_t os_thread_count() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line))
    if (line.rfind("Threads:", 0) == 0) return std::stoul(line.substr(8));
  return 0;
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(counts.size(), [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ZeroWorkerPoolDegradesToSerial) {
  ThreadPool pool(1);  // caller-only
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.concurrency(), 1u);
  std::vector<int> hits(64, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] = 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EmptyBatchIsANoOp) {
  ThreadPool pool(4);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "must not run"; });
  EXPECT_EQ(pool.batches_run(), 0u);
}

TEST(ThreadPool, CountSmallerThanConcurrency) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> counts(3);
  pool.parallel_for(counts.size(), [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, MaxParticipantsCapsButCompletes) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> counts(100);
  pool.parallel_for(
      counts.size(), [&](std::size_t i) { counts[i].fetch_add(1); },
      /*max_participants=*/2);
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);

  // The pool must still work after a failed batch.
  std::atomic<int> ok{0};
  pool.parallel_for(50, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 50);
}

TEST(ThreadPool, ThousandsOfSubmitsReuseTheSameWorkers) {
  ThreadPool pool(4);
  const std::size_t before_os = os_thread_count();
  const std::size_t workers = pool.size();

  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 2000; ++round)
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });

  EXPECT_EQ(total.load(), 16000u);
  EXPECT_EQ(pool.size(), workers);  // worker set is fixed at construction
  EXPECT_EQ(pool.batches_run(), 2000u);
  EXPECT_EQ(pool.indices_run(), 16000u);
  if (before_os != 0) {
    // No thread leak: the process thread count must not have grown with the
    // number of submits (tolerate unrelated runtime threads +/- a couple).
    EXPECT_LE(os_thread_count(), before_os + 2);
  }
}

TEST(ThreadPool, ConcurrentExternalSubmitters) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  auto submitter = [&] {
    for (int round = 0; round < 200; ++round)
      pool.parallel_for(16, [&](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  };
  std::thread a(submitter), b(submitter);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2u * 200u * 16u);
}

TEST(ThreadPool, ResolveConcurrencyRule) {
  EXPECT_EQ(ThreadPool::resolve_concurrency("3", 8), 3u);
  EXPECT_EQ(ThreadPool::resolve_concurrency("1", 8), 1u);
  EXPECT_EQ(ThreadPool::resolve_concurrency(nullptr, 8), 8u);
  EXPECT_EQ(ThreadPool::resolve_concurrency(nullptr, 0), 1u);  // hw unknown
  EXPECT_EQ(ThreadPool::resolve_concurrency("0", 8), 8u);      // non-positive: fall back
  EXPECT_EQ(ThreadPool::resolve_concurrency("-2", 8), 8u);
  EXPECT_EQ(ThreadPool::resolve_concurrency("garbage", 8), 8u);
  EXPECT_EQ(ThreadPool::resolve_concurrency("12x", 8), 8u);    // trailing junk
  EXPECT_EQ(ThreadPool::resolve_concurrency("999999", 8), 1024u);  // clamped
}

TEST(ThreadPool, StairThreadsOverridesAutoSizing) {
  ::setenv("STAIR_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_concurrency(), 3u);
  ThreadPool pool;  // auto-sized: reads the override at construction
  EXPECT_EQ(pool.concurrency(), 3u);
  EXPECT_EQ(pool.size(), 2u);
  ::unsetenv("STAIR_THREADS");
  EXPECT_GE(ThreadPool::default_concurrency(), 1u);
}

TEST(ThreadPool, DefaultPoolIsASingleton) {
  ThreadPool& a = ThreadPool::default_pool();
  ThreadPool& b = ThreadPool::default_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.concurrency(), 1u);
}

TEST(ThreadPool, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 500;
  std::atomic<std::size_t> ran{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  for (std::size_t i = 0; i < kTasks; ++i) {
    pool.submit([&] {
      ran.fetch_add(1);
      if (done.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done.load() == kTasks; });
  EXPECT_EQ(ran.load(), kTasks);
  // The pool's stat is bumped after the task body returns, so it can trail
  // the in-task counter by the tasks still unwinding.
  while (pool.tasks_run() < kTasks) std::this_thread::yield();
  EXPECT_EQ(pool.tasks_run(), kTasks);
}

TEST(ThreadPool, SubmitOnZeroWorkerPoolRunsInline) {
  ThreadPool pool(1);  // caller-only: no workers to hand the task to
  bool ran = false;
  pool.submit([&] { ran = true; });
  EXPECT_TRUE(ran);  // ran before submit returned
  EXPECT_EQ(pool.tasks_run(), 1u);
}

TEST(ThreadPool, SubmitAndParallelForInterleave) {
  ThreadPool pool(4);
  std::atomic<std::size_t> task_runs{0};
  for (int round = 0; round < 50; ++round) {
    pool.submit([&] { task_runs.fetch_add(1); });
    std::atomic<std::size_t> indices{0};
    pool.parallel_for(16, [&](std::size_t) { indices.fetch_add(1); });
    EXPECT_EQ(indices.load(), 16u);
  }
  // Queued tasks are drained by destruction (workers finish the queue).
  while (pool.tasks_run() < 50) std::this_thread::yield();
  EXPECT_EQ(task_runs.load(), 50u);
}

}  // namespace
}  // namespace stair
