#include "stair/update_analysis.h"

#include <algorithm>

namespace stair {

UpdatePenaltyStats update_penalty(const StairCode& code) {
  const Matrix& coeff = code.coefficients();
  UpdatePenaltyStats stats;
  stats.per_symbol.assign(coeff.cols(), 0);
  for (std::size_t p = 0; p < coeff.rows(); ++p)
    for (std::size_t k = 0; k < coeff.cols(); ++k)
      if (coeff.at(p, k) != 0) ++stats.per_symbol[k];

  if (stats.per_symbol.empty()) return stats;
  std::size_t total = 0;
  stats.min = stats.per_symbol.front();
  stats.max = stats.per_symbol.front();
  for (std::size_t c : stats.per_symbol) {
    total += c;
    stats.min = std::min(stats.min, c);
    stats.max = std::max(stats.max, c);
  }
  stats.average = static_cast<double>(total) / static_cast<double>(stats.per_symbol.size());
  return stats;
}

}  // namespace stair
