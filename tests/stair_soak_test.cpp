// Randomized soak: seeded sweeps of config x erasure-pattern x batch-size x
// pool-width driving the Codec session end-to-end (encode -> corrupt ->
// decode -> update), asserting byte-exactness against the serial reference
// path on every iteration.
//
// ctest-labeled `soak`: CI runs it PR-short and can run it nightly-long.
// Iteration count and base seed come from the environment:
//
//   STAIR_SOAK_ITERS=<n>     iterations (default 6; nightly uses 64+)
//   STAIR_SOAK_SEED=<seed>   base seed (default 0xC0FFEE)
//
// Every iteration logs its own derived seed. To reproduce iteration k's
// failure directly, run STAIR_SOAK_SEED=<logged seed> STAIR_SOAK_ITERS=1 —
// the first iteration of that seed regenerates the identical config,
// stripes, erasure patterns, and update, regardless of which k it was.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "stair/codec.h"
#include "stair/io_pipeline.h"
#include "stair/scrub_repair.h"
#include "stair/stair_code.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace stair {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return std::strtoull(v, nullptr, 0);
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

StairConfig random_config(Rng& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    StairConfig cfg;
    cfg.n = 4 + rng.next_below(7);   // 4..10
    cfg.r = 2 + rng.next_below(7);   // 2..8
    cfg.m = rng.next_below(std::min<std::size_t>(cfg.n - 2, 2) + 1);  // 0..2
    const std::size_t mp = 1 + rng.next_below(std::min<std::size_t>(cfg.n - cfg.m - 1, 3));
    cfg.e.clear();
    for (std::size_t l = 0; l < mp; ++l)
      cfg.e.push_back(1 + rng.next_below(std::min<std::size_t>(cfg.r, 3)));
    std::sort(cfg.e.begin(), cfg.e.end());
    cfg.w = rng.chance(0.2) ? 16 : 8;
    if (cfg.minimum_w() > cfg.w) cfg.w = cfg.minimum_w();
    try {
      cfg.validate();
      return cfg;
    } catch (...) {
    }
  }
  return {.n = 6, .r = 4, .m = 1, .e = {1, 2}, .w = 8};  // always valid
}

/// A random erasure pattern inside the guaranteed coverage: up to m whole
/// chunks plus sector errors fitting e (chunk k gets <= e[k] errors, which
/// sorted still fits e element-wise).
std::vector<bool> random_recoverable_mask(const StairConfig& cfg, Rng& rng) {
  std::vector<bool> mask(cfg.r * cfg.n, false);
  std::vector<std::size_t> devices(cfg.n);
  for (std::size_t j = 0; j < cfg.n; ++j) devices[j] = j;
  for (std::size_t j = cfg.n; j > 1; --j)
    std::swap(devices[j - 1], devices[rng.next_below(j)]);

  std::size_t pick = 0;
  const std::size_t full = rng.next_below(cfg.m + 1);
  for (std::size_t f = 0; f < full; ++f) {
    const std::size_t dev = devices[pick++];
    for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + dev] = true;
  }
  for (std::size_t k = 0; k < cfg.e.size() && pick < cfg.n; ++k) {
    if (rng.chance(0.3)) continue;  // not every e slot used every time
    const std::size_t dev = devices[pick++];
    const std::size_t errors = 1 + rng.next_below(cfg.e[k]);
    for (std::size_t t = 0; t < errors; ++t)
      mask[rng.next_below(cfg.r) * cfg.n + dev] = true;  // dup rows collapse
  }
  return mask;
}

std::vector<std::uint8_t> stripe_bytes(const StripeBuffer& stripe) {
  std::vector<std::uint8_t> bytes;
  for (const auto& region : stripe.view().stored)
    bytes.insert(bytes.end(), region.begin(), region.end());
  return bytes;
}

TEST(StairSoak, SessionEndToEndSweep) {
  const std::uint64_t iters = env_u64("STAIR_SOAK_ITERS", 6);
  const std::uint64_t base_seed = env_u64("STAIR_SOAK_SEED", 0xC0FFEE);

  for (std::uint64_t iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = iter == 0 ? base_seed : splitmix64(base_seed + iter);
    SCOPED_TRACE("iteration " + std::to_string(iter) + " seed 0x" +
                 [&] { char b[32]; std::snprintf(b, sizeof b, "%llx",
                                                 (unsigned long long)seed); return std::string(b); }());
    Rng rng(seed);

    const StairConfig cfg = random_config(rng);
    const std::size_t word = static_cast<std::size_t>(cfg.w) / 8;
    std::size_t symbol = (1 + rng.next_below(7)) * 64 + word * rng.next_below(4);
    // A quarter of iterations use symbols past Codec's min_slice_bytes so
    // the intra-stripe range-slicing path (small batch, idle pool lanes)
    // soaks too, not just the stripe-per-task path.
    if (rng.chance(0.25)) symbol = 4096 + 64 * rng.next_below(65);
    const std::size_t batch = 1 + rng.next_below(8);
    const std::size_t width = std::size_t{1} << rng.next_below(3);  // 1/2/4
    SCOPED_TRACE(cfg.to_string() + " symbol=" + std::to_string(symbol) + " batch=" +
                 std::to_string(batch) + " pool=" + std::to_string(width));

    const StairCode code(cfg);
    ThreadPool pool(width);
    Codec codec(code, {.pool = &pool});

    // --- encode the batch through the session; reference-encode serially ---
    std::vector<StripeBuffer> stripes;
    std::vector<StripeBuffer> reference;
    std::vector<std::vector<std::uint8_t>> data(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      stripes.emplace_back(code, symbol);
      reference.emplace_back(code, symbol);
      data[b].resize(stripes[b].data_size());
      rng.fill(data[b]);
      stripes[b].set_data(data[b]);
      reference[b].set_data(data[b]);
      code.encode(reference[b].view());  // serial reference path
    }
    {
      std::vector<Codec::Handle> handles;
      for (auto& s : stripes) handles.push_back(codec.submit_encode(s.view()));
      for (auto& h : handles) {
        h.wait();
        ASSERT_TRUE(h.ok());
      }
    }
    for (std::size_t b = 0; b < batch; ++b)
      ASSERT_EQ(stripe_bytes(stripes[b]), stripe_bytes(reference[b]))
          << "batch encode diverged from serial at stripe " << b;

    // --- erase per-stripe random coverage patterns, decode the batch -------
    std::vector<std::vector<bool>> masks;
    for (std::size_t b = 0; b < batch; ++b) {
      masks.push_back(random_recoverable_mask(cfg, rng));
      ASSERT_TRUE(code.is_recoverable(masks[b]));
      for (std::size_t idx = 0; idx < masks[b].size(); ++idx)
        if (masks[b][idx]) rng.fill(stripes[b].view().stored[idx]);
    }
    {
      std::vector<Codec::Handle> handles;
      for (std::size_t b = 0; b < batch; ++b)
        handles.push_back(codec.submit_decode(stripes[b].view(), masks[b]));
      for (auto& h : handles) ASSERT_TRUE(h.ok());
    }
    for (std::size_t b = 0; b < batch; ++b)
      ASSERT_EQ(stripe_bytes(stripes[b]), stripe_bytes(reference[b]))
          << "decode diverged at stripe " << b;

    // --- one random incremental update vs full re-encode -------------------
    const std::size_t target = rng.next_below(batch);
    const std::size_t data_index = rng.next_below(code.data_symbol_count());
    std::vector<std::uint8_t> fresh(symbol);
    rng.fill(fresh);
    codec.submit_update(stripes[target].view(), data_index, fresh).wait();
    // Reference: splice the new symbol into the data and re-encode serially.
    std::memcpy(data[target].data() + data_index * symbol, fresh.data(), symbol);
    reference[target].set_data(data[target]);
    code.encode(reference[target].view());
    ASSERT_EQ(stripe_bytes(stripes[target]), stripe_bytes(reference[target]))
        << "incremental update diverged from re-encode";

    codec.wait_all();
  }
}

// Scrub-on dimension: random config x store geometry x random in-coverage
// corruption, through the on-disk path — encode a store, damage it, let a
// Scrubber pass detect + repair, then prove the repair with a second pass
// (zero hits) and a byte-identical decode. Same seed discipline as above.
TEST(StairSoak, ScrubRepairSweep) {
  namespace fs = std::filesystem;
  const std::uint64_t iters = env_u64("STAIR_SOAK_ITERS", 6);
  const std::uint64_t base_seed = env_u64("STAIR_SOAK_SEED", 0xC0FFEE);

  const fs::path root = fs::temp_directory_path() /
                        ("stair_soak_scrub_" + std::to_string(::getpid()));
  fs::remove_all(root);
  fs::create_directories(root);

  for (std::uint64_t iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = iter == 0 ? base_seed : splitmix64(base_seed + iter);
    SCOPED_TRACE("iteration " + std::to_string(iter) + " seed 0x" +
                 [&] { char b[32]; std::snprintf(b, sizeof b, "%llx",
                                                 (unsigned long long)seed); return std::string(b); }());
    Rng rng(seed);

    const StairConfig cfg = random_config(rng);
    const std::size_t symbol = (1 + rng.next_below(4)) * 64;
    const StairCode code(cfg);
    const std::size_t data_bytes = code.layout().data_ids().size() * symbol;
    const std::size_t stripes = 2 + rng.next_below(4);
    // Shave a partial symbol off the end so the padded tail stripe soaks too.
    const std::size_t bytes = stripes * data_bytes - rng.next_below(symbol);
    SCOPED_TRACE(cfg.to_string() + " symbol=" + std::to_string(symbol) +
                 " stripes=" + std::to_string(stripes));

    const fs::path dir = root / ("iter_" + std::to_string(iter));
    fs::create_directories(dir);
    std::vector<std::uint8_t> data(bytes);
    rng.fill(data);
    {
      std::ofstream out(dir / "input.bin", std::ios::binary);
      out.write(reinterpret_cast<const char*>(data.data()),
                static_cast<std::streamsize>(data.size()));
    }

    Codec codec(cfg);
    IoPipeline pipeline(codec, {.symbol_bytes = symbol});
    const auto enc = pipeline.encode_file((dir / "input.bin").string(),
                                          (dir / "store").string());
    ASSERT_TRUE(enc.ok) << enc.error;

    // Per-stripe random in-coverage damage, applied straight to the device
    // files (mask index row * n + device == the stored sector at that row).
    // Offsets come from the loaded manifest, not r * symbol arithmetic:
    // under STAIR_IO_DIRECT=1 the chunk rows are block-padded.
    std::size_t damaged = 0;
    const auto store = StripeStore::load((dir / "store").string());
    for (std::size_t s = 0; s < stripes; ++s) {
      const auto mask = random_recoverable_mask(cfg, rng);
      ASSERT_TRUE(code.is_recoverable(mask));
      for (std::size_t i = 0; i < cfg.r; ++i)
        for (std::size_t j = 0; j < cfg.n; ++j) {
          if (!mask[i * cfg.n + j]) continue;
          const auto path = StripeStore::device_path((dir / "store").string(), j);
          std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
          ASSERT_TRUE(f) << path;
          const std::streamoff at =
              static_cast<std::streamoff>(store.chunk_offset(s) + i * symbol);
          char buf[16];
          f.seekg(at).read(buf, sizeof buf);
          for (char& ch : buf) ch = static_cast<char>(ch ^ 0xA5);
          f.seekp(at).write(buf, sizeof buf);
          ++damaged;
        }
    }

    Scrubber scrubber(codec, {.stripes_in_flight = 1 + rng.next_below(3)});
    const ScrubReport rep = scrubber.scrub((dir / "store").string());
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_EQ(rep.sectors_corrupt, damaged);
    EXPECT_EQ(rep.sectors_repaired, damaged);
    EXPECT_EQ(rep.stripes_unrecoverable, 0u);

    const ScrubReport again = scrubber.scrub((dir / "store").string());
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.sectors_corrupt, 0u);
    EXPECT_EQ(again.chunks_missing, 0u);
    EXPECT_EQ(again.stripes_degraded, 0u);

    const auto dec = pipeline.decode_file((dir / "store").string(),
                                          (dir / "output.bin").string());
    ASSERT_TRUE(dec.ok) << dec.error;
    std::ifstream in(dir / "output.bin", std::ios::binary);
    const std::vector<std::uint8_t> out(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    ASSERT_EQ(out, data) << "post-repair decode diverged";
    EXPECT_EQ(dec.degraded_stripes, 0u) << "repair left residual damage";

    fs::remove_all(dir);
  }
  fs::remove_all(root);
}

}  // namespace
}  // namespace stair
