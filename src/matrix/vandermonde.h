// Vandermonde matrices and the systematic transform for "standard"
// Reed-Solomon generator construction (Plank's tutorial + 2005 correction).
//
// A raw Vandermonde generator is MDS but not systematic; the transform
// reduces it by elementary column operations to the form [I | A] while
// preserving the MDS property.
#pragma once

#include <cstddef>

#include "matrix/matrix.h"

namespace stair {

/// rows x cols Vandermonde matrix v_ij = i^j (element i of the field raised
/// to the integer power j). Requires rows <= 2^w.
Matrix vandermonde_matrix(const gf::Field& f, std::size_t rows, std::size_t cols);

/// Systematic kappa x eta Reed-Solomon generator [I_kappa | A] derived from an
/// eta x kappa Vandermonde matrix by column reduction, transposed to the
/// generator convention (codeword = data_row * G). Requires eta <= 2^w.
Matrix systematic_vandermonde_generator(const gf::Field& f, std::size_t kappa,
                                        std::size_t eta);

}  // namespace stair
