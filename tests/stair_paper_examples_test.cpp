// Fidelity tests against the paper's worked examples: the Table 2 upstairs
// decoding and Table 3 downstairs encoding step structure for the exemplar
// configuration (n=8, r=4, m=2, e=(1,1,2)), and the §2 configuration-space
// claims (wide arrays, long bursts, equivalences) that SD codes cannot cover.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sd/sd_code.h"
#include "stair/stair_code.h"
#include "util/rng.h"

namespace stair {
namespace {

StairConfig exemplar() { return {.n = 8, .r = 4, .m = 2, .e = {1, 1, 2}}; }

// Groups schedule outputs by kind for structural comparison with the paper's
// step tables.
struct OpCensus {
  std::size_t row_parity = 0;   // p_{i,k}
  std::size_t inside_global = 0;  // hat-g
  std::size_t intermediate = 0;   // p'_{i,l}
  std::size_t virtual_sym = 0;    // d*/p*
  std::size_t outside_global = 0; // g (outside mode)
  std::size_t data = 0;           // recovered data symbols (decode only)
};

OpCensus census(const StairCode& code, const Schedule& sch) {
  const StairLayout& layout = code.layout();
  OpCensus c;
  for (const auto& op : sch.ops()) {
    const std::size_t row = layout.row_of(op.output);
    const std::size_t col = layout.col_of(op.output);
    if (layout.is_row_parity(row, col)) ++c.row_parity;
    else if (layout.is_inside_global(row, col)) ++c.inside_global;
    else if (layout.is_intermediate(row, col)) ++c.intermediate;
    else if (layout.is_virtual(row, col)) ++c.virtual_sym;
    else if (row >= code.config().r) ++c.outside_global;
    else ++c.data;
  }
  return c;
}

TEST(PaperExemplar, UpstairsEncodingReproducesFigure4Structure) {
  // Figure 4 / §5.1.1 for the exemplar: the upstairs encode generates
  //  - 2 virtual symbols for each of the 3 good data columns (steps 1-3) and
  //    per stair column the remainder: total (n-m)*e_max = 12 column outputs,
  //    of which s = 4 are the inside globals;
  //  - s = 4 virtual symbols via augmented-row decodes (steps 4, 7);
  //  - m*r = 8 row parities (steps 9-12).
  const StairCode code(exemplar());
  const Schedule& up = code.encoding_schedule(EncodingMethod::kUpstairs);
  const OpCensus c = census(code, up);
  EXPECT_EQ(c.inside_global, 4u);
  EXPECT_EQ(c.row_parity, 8u);
  EXPECT_EQ(c.virtual_sym, (8u - 2u) * 2u - 4u + 4u);  // 12 col outputs - 4 globals + 4 row-decoded
  EXPECT_EQ(c.intermediate, 0u);
  EXPECT_EQ(c.data, 0u);
  EXPECT_EQ(up.mult_xor_count(), 6u * (2u * 4u + 4u) + 4u * 6u * 2u);  // Eq. 5 = 120
}

TEST(PaperExemplar, DownstairsEncodingReproducesTable3Structure) {
  // Table 3: steps 1, 2, 4, 7 are Crow row solves producing 5 outputs each
  // (20 total: 8 row parities + 4 inside globals + 8 intermediates); steps
  // 3, 5, 6 are Ccol column solves producing the other s = 4 intermediates.
  const StairCode code(exemplar());
  const Schedule& down = code.encoding_schedule(EncodingMethod::kDownstairs);
  const OpCensus c = census(code, down);
  EXPECT_EQ(c.row_parity, 8u);
  EXPECT_EQ(c.inside_global, 4u);
  EXPECT_EQ(c.intermediate, 3u * 4u);  // m' * r
  EXPECT_EQ(c.virtual_sym, 0u);
  EXPECT_EQ(down.mult_xor_count(), 6u * 5u * 4u + 4u * 4u);  // Eq. 6 = 136
}

TEST(PaperExemplar, UpstairsDecodingReproducesTable2Structure) {
  // Table 2's worst case: chunks 6, 7 dead; chunk 3, 4 lose 1 bottom sector,
  // chunk 5 loses 2. The schedule must contain: 6 virtual symbols from the
  // good columns (steps 1-3), 4 virtual symbols from augmented-row decodes
  // (steps 4, 7), the 4 lost sectors (steps 5, 6, 8), 2 spare virtuals from
  // the stair-column repairs, and 8 row-decoded symbols of the dead chunks
  // (steps 9-12).
  // (The paper's Table 2 uses the outside-global layout with failures at the
  // chunk bottoms; with inside globals those positions hold the globals, so
  // we keep the same counts but at the chunk tops — positions are WLOG.)
  const StairConfig cfg = exemplar();
  const StairCode code(cfg);
  std::vector<bool> mask(cfg.n * cfg.r, false);
  for (std::size_t j : {6, 7})
    for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + j] = true;
  mask[0 * cfg.n + 3] = true;
  mask[0 * cfg.n + 4] = true;
  mask[0 * cfg.n + 5] = true;
  mask[1 * cfg.n + 5] = true;

  auto sch = code.build_decode_schedule(mask);
  ASSERT_TRUE(sch.has_value());
  const OpCensus c = census(code, *sch);
  EXPECT_EQ(c.data, 4u);        // the four lost sectors
  EXPECT_EQ(c.row_parity, 8u);  // both dead chunks are parity chunks here
  // Virtual symbols: good cols 0,1,2 contribute 2 each; augmented-row
  // decodes produce d*_{0,3..5} and d*_{1,5}; stair repairs of cols 3 and 4
  // produce their row-1 virtuals. Total 6 + 4 + 2 = 12.
  EXPECT_EQ(c.virtual_sym, 12u);
}

TEST(PaperScope, WideArrayBeyondByteFieldWorks) {
  // §2/§6: STAIR has no restriction on array size — a 300-device stripe
  // needs w = 16 and just works (SD constructions stop at s <= 3 and small
  // fields; nothing like this exists for them).
  StairConfig cfg{.n = 300, .r = 4, .m = 2, .e = {1, 2}};
  cfg.w = cfg.minimum_w();
  EXPECT_EQ(cfg.w, 16);
  const StairCode code(cfg);
  StripeBuffer stripe(code, 8);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(1);
  rng.fill(data);
  stripe.set_data(data);
  code.encode(stripe.view());

  std::vector<bool> lost(cfg.n * cfg.r, false);
  for (std::size_t i = 0; i < cfg.r; ++i) {
    lost[i * cfg.n + 17] = true;
    lost[i * cfg.n + 200] = true;
  }
  lost[1 * cfg.n + 5] = true;
  lost[2 * cfg.n + 90] = true;
  lost[3 * cfg.n + 90] = true;
  Rng garbage(2);
  for (std::size_t idx = 0; idx < lost.size(); ++idx)
    if (lost[idx]) garbage.fill(stripe.view().stored[idx]);
  ASSERT_TRUE(code.decode(stripe.view(), lost));
  std::vector<std::uint8_t> out(stripe.data_size());
  stripe.get_data(out);
  EXPECT_EQ(out, data);
}

TEST(PaperScope, LongBurstBeyondSdLimitWorks) {
  // §2's beta = 4 example: e = (1, 4) tolerates a burst of four sector
  // failures plus one more elsewhere — beyond any known SD construction.
  const StairConfig cfg{.n = 8, .r = 16, .m = 2, .e = {1, 4}};
  const StairCode code(cfg);
  StripeBuffer stripe(code, 16);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(3);
  rng.fill(data);
  stripe.set_data(data);
  code.encode(stripe.view());

  std::vector<bool> lost(cfg.n * cfg.r, false);
  for (std::size_t i = 0; i < cfg.r; ++i) {
    lost[i * cfg.n + 6] = true;  // dead device
    lost[i * cfg.n + 7] = true;  // dead device
  }
  for (std::size_t q = 0; q < 4; ++q) lost[(6 + q) * cfg.n + 2] = true;  // beta=4 burst
  lost[11 * cfg.n + 4] = true;                                           // plus one
  Rng garbage(4);
  for (std::size_t idx = 0; idx < lost.size(); ++idx)
    if (lost[idx]) garbage.fill(stripe.view().stored[idx]);
  ASSERT_TRUE(code.decode(stripe.view(), lost));
  std::vector<std::uint8_t> out(stripe.data_size());
  stripe.get_data(out);
  EXPECT_EQ(out, data);
}

TEST(PaperScope, EqualsExtraParityChunkWhenEIsR) {
  // §2: e = (r) has the same function as a systematic (n, n-m-1)-code — it
  // tolerates m + 1 whole-chunk failures.
  const StairConfig cfg{.n = 8, .r = 4, .m = 2, .e = {4}};
  const StairCode code(cfg);
  StripeBuffer stripe(code, 16);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(7);
  rng.fill(data);
  stripe.set_data(data);
  code.encode(stripe.view());

  std::vector<bool> lost(cfg.n * cfg.r, false);
  for (std::size_t j : {0, 4, 7})  // m + 1 = 3 dead chunks
    for (std::size_t i = 0; i < cfg.r; ++i) lost[i * cfg.n + j] = true;
  EXPECT_TRUE(code.is_recoverable(lost));
  Rng garbage(8);
  for (std::size_t idx = 0; idx < lost.size(); ++idx)
    if (lost[idx]) garbage.fill(stripe.view().stored[idx]);
  ASSERT_TRUE(code.decode(stripe.view(), lost));
  std::vector<std::uint8_t> out(stripe.data_size());
  stripe.get_data(out);
  EXPECT_EQ(out, data);

  // But m + 2 dead chunks exceed it.
  for (std::size_t i = 0; i < cfg.r; ++i) lost[i * cfg.n + 2] = true;
  EXPECT_FALSE(code.is_recoverable(lost));
}

TEST(PaperScope, EqualsIdrWhenEIsUniformFull) {
  // §2: e = (eps, ..., eps) with m' = n - m matches the IDR scheme's
  // coverage — every surviving chunk may lose up to eps sectors at once.
  const std::size_t eps = 2;
  const StairConfig cfg{.n = 6, .r = 6, .m = 2, .e = {eps, eps, eps, eps}};
  const StairCode code(cfg);
  StripeBuffer stripe(code, 8);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(9);
  rng.fill(data);
  stripe.set_data(data);
  code.encode(stripe.view());

  std::vector<bool> lost(cfg.n * cfg.r, false);
  for (std::size_t i = 0; i < cfg.r; ++i) {
    lost[i * cfg.n + 1] = true;  // dead data chunk
    lost[i * cfg.n + 5] = true;  // dead parity chunk
  }
  for (std::size_t j : {0, 2, 3, 4})  // every surviving chunk: eps losses
    for (std::size_t q = 0; q < eps; ++q) lost[((j + q) % cfg.r) * cfg.n + j] = true;
  EXPECT_TRUE(code.is_recoverable(lost));
  Rng garbage(10);
  for (std::size_t idx = 0; idx < lost.size(); ++idx)
    if (lost[idx]) garbage.fill(stripe.view().stored[idx]);
  ASSERT_TRUE(code.decode(stripe.view(), lost));
  std::vector<std::uint8_t> out(stripe.data_size());
  stripe.get_data(out);
  EXPECT_EQ(out, data);
}

TEST(PaperScope, StairE1CoversEverySdS1Pattern) {
  // §2: e = (1) is a new construction of a PMDS/SD code with s = 1: every
  // pattern inside SD's nominal coverage (m disks + any 1 further sector)
  // must be recoverable by the STAIR code. (STAIR's practical decoder also
  // accepts extra patterns — e.g. singletons spread over distinct rows that
  // row-local repair absorbs — so the containment is strict, not equality.)
  const StairConfig scfg{.n = 6, .r = 3, .m = 1, .e = {1}};
  const StairCode stair(scfg);
  const SdCode sd({.n = 6, .r = 3, .m = 1, .s = 1});

  Rng rng(11);
  std::size_t covered = 0, extra = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<bool> mask(18, false);
    const std::size_t losses = rng.next_below(7);
    for (std::size_t q = 0; q < losses; ++q) {
      if (rng.chance(0.3)) {
        const std::size_t j = rng.next_below(6);
        for (std::size_t i = 0; i < 3; ++i) mask[i * 6 + j] = true;
      } else {
        mask[rng.next_below(18)] = true;
      }
    }
    if (sd.within_coverage(mask)) {
      ++covered;
      EXPECT_TRUE(stair.is_recoverable(mask)) << "trial " << trial;
    } else if (stair.is_recoverable(mask)) {
      ++extra;
    }
  }
  EXPECT_GT(covered, 50u);
  EXPECT_GT(extra, 0u) << "the practical decoder should beat the nominal coverage";
}

TEST(PaperScope, TallChunksNeedW16ColumnCode) {
  // r + e_max > 256 forces w = 16 through the column code; still works.
  StairConfig cfg{.n = 6, .r = 255, .m = 1, .e = {1, 2}};
  cfg.w = cfg.minimum_w();
  EXPECT_EQ(cfg.w, 16);
  const StairCode code(cfg);
  StripeBuffer stripe(code, 4);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(5);
  rng.fill(data);
  stripe.set_data(data);
  code.encode(stripe.view());

  std::vector<bool> lost(cfg.n * cfg.r, false);
  for (std::size_t i = 0; i < cfg.r; ++i) lost[i * cfg.n + 0] = true;
  lost[100 * cfg.n + 2] = true;
  lost[101 * cfg.n + 2] = true;
  lost[250 * cfg.n + 3] = true;
  Rng garbage(6);
  for (std::size_t idx = 0; idx < lost.size(); ++idx)
    if (lost[idx]) garbage.fill(stripe.view().stored[idx]);
  ASSERT_TRUE(code.decode(stripe.view(), lost));
  std::vector<std::uint8_t> out(stripe.data_size());
  stripe.get_data(out);
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace stair
